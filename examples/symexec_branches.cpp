//===- examples/symexec_branches.cpp - Symbolic-execution use case ----------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
// The paper's motivating application (Sec. 1): "a disequality may be
// generated in symbolic execution at every else-branch of a program that
// tests the equality of strings." This example symbolically executes a
// toy request router:
//
//   def route(path, user):
//     if path.startswith("a/"):  ...
//     elif path == "cc":           ...
//     elif not user.startswith("a") and path.endswith("/b"): ...
//     else: ...
//
// (literals shrunk to a toy alphabet to keep the demo instant)
//
// and asks, for every leaf of the branch tree, whether the path
// condition is feasible — printing a concrete input when it is.
//
//===----------------------------------------------------------------------===//

#include "solver/PositionSolver.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace postr;
using strings::AssertKind;
using strings::Problem;
using strings::StrElem;

namespace {

struct Branch {
  const char *Desc;
  // Literal tests along the program path; Positive selects the then-side.
  struct Test {
    AssertKind ThenKind, ElseKind;
    const char *OnVar;
    const char *Lit;
  };
  std::vector<std::pair<Branch::Test, bool>> Path;
};

} // namespace

int main() {
  using Test = Branch::Test;
  Test StartsApi{AssertKind::Prefixof, AssertKind::NotPrefixof, "path",
                 "a/"};
  Test IsHealth{AssertKind::WordEq, AssertKind::Diseq, "path", "cc"};
  Test AnonUser{AssertKind::Prefixof, AssertKind::NotPrefixof, "user",
                "a"};
  Test AdminSuffix{AssertKind::Suffixof, AssertKind::NotSuffixof, "path",
                   "/b"};

  // Enumerate the leaves of the branch tree (the path conditions a
  // symbolic executor would emit).
  std::vector<std::pair<const char *,
                        std::vector<std::pair<Test, bool>>>>
      Leaves = {
          {"api handler", {{StartsApi, true}}},
          {"health probe", {{StartsApi, false}, {IsHealth, true}}},
          {"admin panel",
           {{StartsApi, false},
            {IsHealth, false},
            {AnonUser, false},
            {AdminSuffix, true}}},
          {"fallthrough (anon)",
           {{StartsApi, false},
            {IsHealth, false},
            {AnonUser, true},
            {AdminSuffix, true}}},
          {"fallthrough (no admin)",
           {{StartsApi, false},
            {IsHealth, false},
            {AnonUser, false},
            {AdminSuffix, false}}},
          // An infeasible combination: the path cannot both equal
          // "cc" and start with "a/".
          {"dead code?",
           {{StartsApi, true}, {IsHealth, true}}},
      };

  for (auto &[Desc, Path] : Leaves) {
    Problem P;
    VarId PathVar = P.strVar("path");
    VarId UserVar = P.strVar("user");
    P.assertInRe(PathVar, "[abc/]{0,6}");
    P.assertInRe(UserVar, "[ab]{0,4}");
    for (auto &[T, TakeThen] : Path) {
      VarId V = P.strVar(T.OnVar);
      AssertKind K = TakeThen ? T.ThenKind : T.ElseKind;
      if (K == AssertKind::WordEq)
        P.assertWordEq({StrElem::var(V)}, {StrElem::lit(T.Lit)});
      else if (K == AssertKind::Diseq)
        P.assertDiseq({StrElem::var(V)}, {StrElem::lit(T.Lit)});
      else
        P.assertPred(K, {StrElem::lit(T.Lit)}, {StrElem::var(V)});
    }
    solver::SolveOptions Opts;
    Opts.TimeoutMs = 30000;
    solver::SolveResult R = solver::solveProblem(P, Opts);
    std::printf("%-24s %s", Desc, verdictName(R.V));
    if (R.V == Verdict::Sat) {
      auto Render = [&](VarId X) {
        std::string S;
        auto It = R.Words.find(X);
        if (It == R.Words.end())
          return S;
        // Demo problems only use interned printable characters; recover
        // them through a scratch evaluator-quality mapping: the solver
        // reports symbols in interning order of the problem alphabet,
        // which for this example is not needed — print lengths instead.
        return "len=" + std::to_string(It->second.size());
      };
      std::printf("   path %s, user %s", Render(PathVar).c_str(),
                  Render(UserVar).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
