//===- examples/quickstart.cpp - First steps with PosTr ---------------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
// Build the paper's running examples directly against the public API:
// declare variables, constrain them with regexes, assert position
// constraints, solve, and read back a witness.
//
//===----------------------------------------------------------------------===//

#include "solver/PositionSolver.h"

#include <cstdio>

using namespace postr;
using strings::AssertKind;
using strings::Problem;
using strings::StrElem;

static void report(const char *What, const solver::SolveResult &R,
                   const Problem &P) {
  std::printf("%-40s -> %s", What, verdictName(R.V));
  if (R.V == Verdict::Sat) {
    std::printf("  (");
    bool First = true;
    for (const auto &[X, W] : R.Words) {
      if (X >= P.numStrVars())
        continue;
      std::printf("%s%s=\"", First ? "" : ", ", P.strVarName(X).c_str());
      for (Symbol S : W)
        std::printf("%c", static_cast<char>('a' + S)); // demo alphabets
      std::printf("\"");
      First = false;
    }
    std::printf(")");
  }
  std::printf("\n");
}

int main() {
  {
    // Fig. 2's disequality: x ≠ y with x ∈ (ab)*, y ∈ (ac)*.
    Problem P;
    VarId X = P.strVar("x"), Y = P.strVar("y");
    P.assertInRe(X, "(ab)*");
    P.assertInRe(Y, "(ac)*");
    P.assertDiseq({StrElem::var(X)}, {StrElem::var(Y)});
    report("x != y, x in (ab)*, y in (ac)*", solver::solveProblem(P), P);
  }
  {
    // Fig. 3's self-referential disequality xy ≠ yx; over a single
    // iterated word the two sides always commute — unsatisfiable.
    Problem P;
    VarId X = P.strVar("x"), Y = P.strVar("y");
    P.assertInRe(X, "(ab)*");
    P.assertInRe(Y, "(ab)*");
    P.assertDiseq({StrElem::var(X), StrElem::var(Y)},
                  {StrElem::var(Y), StrElem::var(X)});
    report("xy != yx, x,y in (ab)*", solver::solveProblem(P), P);
  }
  {
    // Sec. 6.4's ¬contains example shape: a needle that must avoid every
    // alignment in the haystack.
    Problem P;
    VarId X = P.strVar("x"), Y = P.strVar("y");
    P.assertInRe(X, "a|b");
    P.assertInRe(Y, "(ab)*");
    P.assertPred(AssertKind::NotContains, {StrElem::var(X)},
                 {StrElem::var(Y)});
    report("not contains(x in y)", solver::solveProblem(P), P);
  }
  {
    // Combining E, R, I and P: a word equation, a length constraint, and
    // a disequality at once (the paper's full pipeline, Sec. 3).
    Problem P;
    VarId U = P.strVar("u"), V = P.strVar("v"), W = P.strVar("w");
    P.assertInRe(U, "(a|b)*");
    P.assertInRe(V, "a*");
    P.assertInRe(W, "(a|b)*");
    P.assertWordEq({StrElem::var(U), StrElem::var(V)},
                   {StrElem::var(V), StrElem::var(W)});
    P.assertDiseq({StrElem::var(U)}, {StrElem::var(W)});
    P.assertIntAtom(strings::IntTerm::lenOf(U), lia::Cmp::Ge,
                    strings::IntTerm::constant(2));
    report("uv = vw  &&  u != w  &&  |u| >= 2", solver::solveProblem(P), P);
  }
  return 0;
}
