//===- examples/smtlib_cli.cpp - SMT-LIB command line front-end -------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
// A minimal `postr file.smt2` driver for the supported QF_S(LIA) subset.
// With no argument it solves a built-in demo problem, so the binary is
// runnable from the bench/examples sweep without fixtures.
//
//===----------------------------------------------------------------------===//

#include "smtlib/Reader.h"
#include "solver/PositionSolver.h"

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace postr;

/// Exit codes: 0 sat/unsat, 1 parse error, 2 unknown (no recorded
/// reason), then one per resource stop so scripts can tell a timeout
/// from a memout without scraping stdout; 7 means the self-check
/// rejected the solver's own answer (a bug worth reporting).
static int exitCodeFor(const solver::SolveResult &R) {
  if (R.Validation.Failed)
    return 7;
  if (R.V != Verdict::Unknown)
    return 0;
  switch (R.Stop) {
  case StopReason::None:
    return 2;
  case StopReason::Timeout:
    return 3;
  case StopReason::Cancelled:
    return 4;
  case StopReason::MemOut:
    return 5;
  case StopReason::StepBudget:
    return 6;
  }
  return 2;
}

/// With POSTR_PROOF_DIR set and a certificate in hand (certification on
/// and the verdict Unsat, or a rejected certificate kept as evidence),
/// writes it to `<dir>/<input-stem>.postrcert` for out-of-process
/// re-checking with `tools/postr_check`.
static void maybeWriteCert(const solver::SolveResult &R, const char *Input) {
  const char *Dir = std::getenv("POSTR_PROOF_DIR");
  if (!Dir || !*Dir || R.CertText.empty())
    return;
  std::string Stem = Input ? Input : "demo";
  if (size_t Slash = Stem.find_last_of('/'); Slash != std::string::npos)
    Stem = Stem.substr(Slash + 1);
  if (size_t Dot = Stem.rfind('.'); Dot != std::string::npos && Dot > 0)
    Stem = Stem.substr(0, Dot);
  std::string Path = std::string(Dir) + "/" + Stem + ".postrcert";
  if (std::FILE *F = std::fopen(Path.c_str(), "w")) {
    std::fwrite(R.CertText.data(), 1, R.CertText.size(), F);
    std::fclose(F);
    std::printf("; certificate written to %s\n", Path.c_str());
  } else {
    std::fprintf(stderr, "warning: cannot write certificate to %s\n",
                 Path.c_str());
  }
}

static const char *Demo = R"((set-logic QF_S)
(declare-fun x () String)
(declare-fun y () String)
(assert (str.in_re x (re.* (re.++ (str.to_re "a") (str.to_re "b")))))
(assert (str.in_re y (re.union (str.to_re "a") (str.to_re "b"))))
(assert (not (= (str.++ x y) (str.++ y x))))
(assert (not (str.prefixof y x)))
(check-sat)
)";

int main(int Argc, char **Argv) {
  Result<strings::Problem> P =
      Argc > 1 ? smtlib::parseFile(Argv[1]) : smtlib::parseString(Demo);
  if (!P) {
    std::fprintf(stderr, "parse error: %s\n", P.error().c_str());
    return 1;
  }
  if (Argc == 1)
    std::printf("; solving the built-in demo (pass a .smt2 path to solve "
                "a file)\n%s", Demo);
  solver::SolveOptions Opts;
  // A scripted (set-option :timeout N) bounds the solve; the default
  // matches what the postr-serve daemon enforces as its per-request cap,
  // so one-shot and served behavior stay comparable.
  Opts.TimeoutMs = P->timeoutMs() ? P->timeoutMs() : 60000;
  solver::SolveResult R = solver::solveProblem(*P, Opts);
  switch (R.V) {
  case Verdict::Sat:
    std::printf("sat\n");
    for (const auto &[X, W] : R.Words)
      if (X < P->numStrVars())
        std::printf("; %s has length %zu\n", P->strVarName(X).c_str(),
                    W.size());
    break;
  case Verdict::Unsat:
    std::printf("unsat\n");
    break;
  case Verdict::Unknown:
    if (R.Validation.Failed)
      std::printf("unknown (self-check failed)\n");
    else if (R.Stop != StopReason::None)
      std::printf("unknown (%s)\n", stopReasonName(R.Stop));
    else
      std::printf("unknown\n");
    break;
  }
  if (R.Validation.Failed)
    std::printf("; validation failure: %s\n", R.Validation.Detail.c_str());
  // In-protocol answer to a scripted (get-info :reason-unknown): the
  // structured stop/validation/certification reason, not just exit codes
  // and the stats comment.
  if (P->wantsReasonUnknown()) {
    if (R.V != Verdict::Unknown)
      std::printf("(error \"reason-unknown: last check-sat was not "
                  "unknown\")\n");
    else if (R.Validation.Failed)
      std::printf("(:reason-unknown \"%s\")\n", R.Validation.Detail.c_str());
    else if (R.Stop != StopReason::None)
      std::printf("(:reason-unknown \"%s\")\n", stopReasonName(R.Stop));
    else
      std::printf("(:reason-unknown \"incomplete\")\n");
  }
  std::printf("; stats {\"stop_reason\": \"%s\", \"disjuncts\": %u, "
              "\"budget_trips\": %u, \"degraded_retries\": %u, "
              "\"models_validated\": %u, \"validation_failures\": %u, "
              "\"paranoid_checks\": %u, \"proof_counters\": "
              "{\"unsats_certified\": %u, \"certification_failures\": %u}}\n",
              stopReasonName(R.Stop), R.Stats.Disjuncts,
              R.Stats.BudgetTrips, R.Stats.DegradedRetries,
              R.Stats.ModelsValidated, R.Stats.ValidationFailures,
              R.Stats.ParanoidChecks, R.Stats.UnsatsCertified,
              R.Stats.CertificationFailures);
  maybeWriteCert(R, Argc > 1 ? Argv[1] : nullptr);
  return exitCodeFor(R);
}
