//===- examples/primitive_words.cpp - The position-hard family --------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
// Footnote 10's inspiration: testing primitiveness of a word. A word w
// is primitive iff it is not a proper power, iff (classically) w does
// not occur in the interior of ww. These formulae look trivial but
// cannot be cracked by assignment guessing — the domain where the
// paper's procedure uniquely succeeds (Sec. 8.2, position-hard).
//
//===----------------------------------------------------------------------===//

#include "solver/PositionSolver.h"

#include <cstdio>

using namespace postr;
using strings::AssertKind;
using strings::Problem;
using strings::StrElem;

static void run(const char *What, const Problem &P) {
  solver::SolveOptions Opts;
  Opts.TimeoutMs = 30000;
  solver::SolveResult R = solver::solveProblem(P, Opts);
  std::printf("%-52s -> %s\n", What, verdictName(R.V));
}

int main() {
  {
    // Powers of one primitive word commute: xy = yx whenever x and y
    // iterate the same block. The disequality is unsatisfiable, but only
    // position reasoning sees it.
    Problem P;
    VarId X = P.strVar("x"), Y = P.strVar("y");
    P.assertInRe(X, "(abc)*");
    P.assertInRe(Y, "(abc)*");
    P.assertDiseq({StrElem::var(X), StrElem::var(Y)},
                  {StrElem::var(Y), StrElem::var(X)});
    run("xy != yx over (abc)*  [commuting powers]", P);
  }
  {
    // Rotation containment: yx is a rotation of xy of the same length;
    // over a single iterated block the two are equal, so the needle is
    // always contained.
    Problem P;
    VarId X = P.strVar("x"), Y = P.strVar("y");
    P.assertInRe(X, "(ab)*");
    P.assertInRe(Y, "(ab)*");
    P.assertPred(AssertKind::NotContains,
                 {StrElem::var(X), StrElem::var(Y)},
                 {StrElem::var(Y), StrElem::var(X)});
    run("not contains(xy in yx) over (ab)*", P);
  }
  {
    // Different blocks break the symmetry: a witness exists (and the
    // solver must find it through the mismatch-position encoding).
    Problem P;
    VarId X = P.strVar("x"), Y = P.strVar("y");
    P.assertInRe(X, "(ab)*");
    P.assertInRe(Y, "(ba)*");
    P.assertDiseq({StrElem::var(X), StrElem::var(Y)},
                  {StrElem::var(Y), StrElem::var(X)});
    P.assertIntAtom(strings::IntTerm::lenOf(X), lia::Cmp::Ge,
                    strings::IntTerm::constant(2));
    run("xy != yx with x in (ab)*, y in (ba)*, |x|>=2", P);
  }
  {
    // The primitiveness schema itself on a bounded candidate: w in the
    // interior of ww would certify non-primitiveness; asking for
    // ¬contains over the flat candidate language tests the whole family
    // at once.
    Problem P;
    VarId W = P.strVar("w"), Pad = P.strVar("p");
    P.assertInRe(W, "(ab)*");
    P.assertInRe(Pad, "(ab)*");
    // w never occurs strictly inside ww for primitive w; over (ab)* the
    // inner occurrences exist only at even offsets — the solver must
    // reason about all alignments.
    P.assertPred(AssertKind::NotContains,
                 {StrElem::var(W), StrElem::var(Pad)},
                 {StrElem::var(W), StrElem::var(W)});
    P.assertIntAtom(strings::IntTerm::lenOf(Pad), lia::Cmp::Ge,
                    strings::IntTerm::constant(1));
    run("not contains(wp in ww), |p|>=1 over (ab)*", P);
  }
  return 0;
}
