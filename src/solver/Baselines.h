//===- solver/Baselines.h - Comparison solvers -------------------*- C++ -*-===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two baseline solvers the benchmark harness compares against,
/// standing in for the paper's comparison systems (Sec. 8):
///
///  * `solveEqReduction` — the pre-paper automata-solver route: every
///    position predicate is reduced to word equations + length
///    constraints with per-letter case splits (the reduction of [24]
///    that Sec. 3 describes as "making their word equations potentially
///    much harder to process"), then each branch goes through
///    stabilization + Parikh/LIA. This plays the role of Z3-Noodler 1.3.
///
///  * `solveEnum` — a guess-a-model enumeration solver with a growing
///    length bound: strong on satisfiable instances, diverges on
///    unsatisfiable position constraints unless every language is
///    finite. This mirrors the solver profile the paper attributes to
///    cvc5 ("may be able to guess the right solution for satisfiable
///    position constraints with ease", Sec. 1).
///
//===----------------------------------------------------------------------===//

#ifndef POSTR_SOLVER_BASELINES_H
#define POSTR_SOLVER_BASELINES_H

#include "solver/PositionSolver.h"

namespace postr {
namespace solver {

struct EqReductionOptions {
  uint64_t TimeoutMs = 0;
  /// Hard cap on expanded predicate branches (the cross product over
  /// predicates); beyond it the solver answers Unknown.
  uint32_t MaxBranches = 4096;
  /// Optional shared resource budget; when null one is built from
  /// TimeoutMs. Threaded into stabilization and every branch solve.
  postr::Budget *Budget = nullptr;
  eq::StabilizeOptions Stabilize;
  tagaut::MpOptions Mp;
};

/// Classical eq-reduction baseline.
SolveResult solveEqReduction(const strings::Problem &P,
                             const EqReductionOptions &Opts = {});

struct EnumOptions {
  uint64_t TimeoutMs = 0;
  /// Words per variable are enumerated up to this length.
  uint32_t MaxWordLen = 8;
  /// Integer variables are enumerated over [-1, MaxIntValue]; more than
  /// MaxIntVars integer variables yields Unknown.
  int64_t MaxIntValue = 16;
  uint32_t MaxIntVars = 2;
  /// Optional shared resource budget, probed every 64 evaluation steps
  /// ("solver.enum"). Composes with TimeoutMs: both are probed, the
  /// tighter limit wins.
  postr::Budget *Budget = nullptr;
};

/// Enumeration baseline.
SolveResult solveEnum(const strings::Problem &P,
                      const EnumOptions &Opts = {});

} // namespace solver
} // namespace postr

#endif // POSTR_SOLVER_BASELINES_H
