//===- solver/Semantics.cpp - Direct predicate semantics -------------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "solver/Semantics.h"

#include <algorithm>

using namespace postr;
using namespace postr::solver;
using tagaut::PosPredicate;
using tagaut::PredKind;

Word postr::solver::concatOccs(const std::vector<VarId> &Occs,
                               const std::map<VarId, Word> &Assignment) {
  Word Out;
  for (VarId X : Occs) {
    auto It = Assignment.find(X);
    assert(It != Assignment.end() && "assignment misses a variable");
    Out.insert(Out.end(), It->second.begin(), It->second.end());
  }
  return Out;
}

bool postr::solver::isPrefix(const Word &Prefix, const Word &W) {
  if (Prefix.size() > W.size())
    return false;
  return std::equal(Prefix.begin(), Prefix.end(), W.begin());
}

bool postr::solver::isSuffix(const Word &Suffix, const Word &W) {
  if (Suffix.size() > W.size())
    return false;
  return std::equal(Suffix.rbegin(), Suffix.rend(), W.rbegin());
}

bool postr::solver::containsFactor(const Word &Needle, const Word &W) {
  if (Needle.empty())
    return true;
  if (Needle.size() > W.size())
    return false;
  return std::search(W.begin(), W.end(), Needle.begin(), Needle.end()) !=
         W.end();
}

bool postr::solver::evalPredicate(const PosPredicate &Pred,
                                  const std::map<VarId, Word> &Assignment,
                                  int64_t AtPosValue) {
  Word L = concatOccs(Pred.Lhs, Assignment);
  Word R = concatOccs(Pred.Rhs, Assignment);
  switch (Pred.Kind) {
  case PredKind::Diseq:
    return L != R;
  case PredKind::NotPrefix:
    return !isPrefix(L, R);
  case PredKind::NotSuffix:
    return !isSuffix(L, R);
  case PredKind::NotContains:
    return !containsFactor(L, R);
  case PredKind::StrAtEq:
  case PredKind::StrAtNe: {
    // Fig. 1: str.at(t, i) is w[i] for 0 <= i < |w| and ε otherwise.
    Word At;
    if (AtPosValue >= 0 && AtPosValue < static_cast<int64_t>(R.size()))
      At.push_back(R[static_cast<size_t>(AtPosValue)]);
    bool Equal = L == At;
    return Pred.Kind == PredKind::StrAtEq ? Equal : !Equal;
  }
  }
  assert(false && "bad predicate kind");
  return false;
}

bool postr::solver::evalSystem(const std::vector<PosPredicate> &Preds,
                               const std::map<VarId, Word> &Assignment,
                               const std::vector<int64_t> *AtPosValues) {
  for (size_t I = 0; I < Preds.size(); ++I) {
    int64_t AtPos = 0;
    if (AtPosValues) {
      AtPos = (*AtPosValues)[I];
    } else if (Preds[I].Kind == PredKind::StrAtEq ||
               Preds[I].Kind == PredKind::StrAtNe) {
      assert(Preds[I].AtPos.isConstant() &&
             "non-constant AtPos needs explicit values");
      AtPos = Preds[I].AtPos.constant();
    }
    if (!evalPredicate(Preds[I], Assignment, AtPos))
      return false;
  }
  return true;
}
