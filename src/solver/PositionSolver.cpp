//===- solver/PositionSolver.cpp - The Z3-Noodler-pos pipeline -------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "solver/PositionSolver.h"

#include "base/Budget.h"
#include "solver/Baselines.h"
#include "strings/Eval.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>

using namespace postr;
using namespace postr::solver;
using namespace postr::strings;
using automata::Nfa;
using tagaut::PosPredicate;
using tagaut::PredKind;

namespace {

/// POSTR_SELFCHECK=paranoid turns on the Unsat-vs-enumeration cross-check
/// process-wide, without touching SolveOptions (read once; the usual
/// pattern for deployment knobs in this codebase).
bool paranoidSelfCheckEnv() {
  static const bool On = [] {
    const char *E = std::getenv("POSTR_SELFCHECK");
    return E && std::strcmp(E, "paranoid") == 0;
  }();
  return On;
}

/// POSTR_SELFCHECK=certify turns on certificate production + in-process
/// kernel verification for every Unsat, process-wide (see
/// SolveOptions::CertifyUnsat).
bool certifySelfCheckEnv() {
  static const bool On = [] {
    const char *E = std::getenv("POSTR_SELFCHECK");
    return E && std::strcmp(E, "certify") == 0;
  }();
  return On;
}

class Pipeline {
public:
  Pipeline(const Problem &P, const SolveOptions &Opts)
      : P(P), Opts(Opts),
        RootBud(Budget::Limits{Opts.TimeoutMs, Opts.MemLimitBytes,
                               Opts.StepLimit, nullptr}),
        Root(Opts.Budget ? Opts.Budget : &RootBud) {}

  SolveResult run();

private:
  SolveResult runImpl();

  /// The shared model-validation evaluator, built once on first use
  /// (regex compilation is the expensive part; disjunct workers share
  /// the compiled automata, which are immutable after construction).
  const ConcreteEvaluator &evaluator() const {
    std::call_once(EvalOnce,
                   [&] { Eval = std::make_unique<ConcreteEvaluator>(
                             P, NF.Sigma); });
    return *Eval;
  }
  /// Root budget probe between disjuncts; \p StopOut records the first
  /// trip reason.
  bool stopped(StopReason &StopOut) const {
    if (Root->checkpoint("solver.disjunct"))
      return false;
    if (StopOut == StopReason::None)
      StopOut = Root->reason();
    return true;
  }
  /// Limits of one disjunct's child budget: the root's remaining time
  /// (capped by \p CapMs when nonzero), the full memory/step allowance
  /// (disjunct state is independent and freed when the disjunct
  /// finishes), and a parent link so a root trip stops the disjunct
  /// mid-solve. All the deadline math lives in Budget::childLimits.
  Budget::Limits childLimits(const std::atomic<bool> *Cancel,
                             uint64_t CapMs = 0) const {
    return Root->childLimits(CapMs, Opts.MemLimitBytes, Opts.StepLimit,
                             Cancel);
  }

  /// Applies a decomposition's substitution to an occurrence sequence.
  static std::vector<VarId> substSeq(const eq::Decomposition &D,
                                     const std::vector<VarId> &Occs) {
    std::vector<VarId> Out;
    for (VarId X : Occs) {
      const std::vector<VarId> &Rep = D.Subst.at(X);
      Out.insert(Out.end(), Rep.begin(), Rep.end());
    }
    return Out;
  }

  /// Solves one decomposition. Thread-safe: all mutable state is local or
  /// reached through \p Result and \p St, which each worker owns; \p
  /// Cancel (may be null) cooperatively aborts the underlying engines.
  /// On an Unknown caused by resource exhaustion, \p StopOut receives
  /// the reason (first one wins). A disjunct stopping on MemOut or
  /// StepBudget is retried once in degraded mode — Bland pivoting,
  /// reduced MBQI bounds — on a fresh child budget before giving up.
  Verdict solveDisjunct(const eq::Decomposition &D, SolveResult &Result,
                        SolveStats &St, const std::atomic<bool> *Cancel,
                        StopReason &StopOut,
                        proof::DisjunctCert *CertOut) const;

  const Problem &P;
  SolveOptions Opts;
  Budget RootBud; ///< used when Opts.Budget is null
  Budget *Root;
  NormalForm NF;
  SolveStats Stats;
  /// Certification state: on, the per-disjunct refutations (slot per
  /// stabilization disjunct, written by whichever worker solves it), and
  /// whether stabilization covered the whole problem.
  bool CertifyOn = false;
  std::vector<proof::DisjunctCert> Certs;
  bool CertComplete = false;
  mutable std::once_flag EvalOnce;
  mutable std::unique_ptr<ConcreteEvaluator> Eval;
  /// First self-check rejection across all disjuncts/workers.
  mutable std::mutex FailMu;
  mutable ValidationFailure FirstFail;
};

Verdict Pipeline::solveDisjunct(const eq::Decomposition &D,
                                SolveResult &Result, SolveStats &St,
                                const std::atomic<bool> *Cancel,
                                StopReason &StopOut,
                                proof::DisjunctCert *CertOut) const {
  std::map<VarId, Nfa> Langs = D.Langs;
  VarId NextLocal = NF.NextFresh + 1000000; // disjunct-local fresh ids
  auto EnsureNonEmptySeq = [&](std::vector<VarId> &Seq) {
    if (!Seq.empty())
      return;
    VarId E = NextLocal++;
    Langs.emplace(E, Nfa::epsilonLanguage(NF.Sigma.size()));
    Seq.push_back(E);
  };

  // The per-disjunct LIA arena exists up-front so that str.at position
  // terms (which may mention integer variables) can be lowered while the
  // predicates are substituted. Length handles are tied to the Parikh
  // image later, inside the IntConstraintBuilder callback.
  lia::Arena A;
  std::vector<lia::Var> IntHandles;
  for (IntVarId V = 0; V < NF.NumIntVars; ++V)
    IntHandles.push_back(A.freshVar("int." + P.intVarName(V)));
  std::map<VarId, lia::Var> LenHandles;
  auto LenHandle = [&](VarId X) {
    auto [It, Inserted] = LenHandles.try_emplace(X, 0);
    if (Inserted)
      It->second = A.freshVar("len.x" + std::to_string(X), 0);
    return It->second;
  };
  auto ToLinTerm = [&](const IntTerm &T) {
    lia::LinTerm Out(T.Const);
    for (auto [V, C] : T.IntVars)
      Out += lia::LinTerm::variable(IntHandles[V], C);
    for (auto [X, C] : T.LenVars)
      Out += lia::LinTerm::variable(LenHandle(X), C);
    return Out;
  };

  // Substitute the decomposition into P; divert non-flat ¬contains into
  // the |u| > |v| under-approximation (Sec. 8 heuristic).
  std::vector<PosPredicate> Preds;
  std::vector<std::pair<std::vector<VarId>, std::vector<VarId>>> ApproxLenGt;
  for (const NormPred &NP : NF.Preds) {
    PosPredicate Pred;
    Pred.Kind = NP.Kind;
    Pred.Lhs = substSeq(D, NP.Lhs);
    Pred.Rhs = substSeq(D, NP.Rhs);
    if (Pred.Kind == PredKind::StrAtEq || Pred.Kind == PredKind::StrAtNe) {
      EnsureNonEmptySeq(Pred.Lhs);
      Pred.AtPos = ToLinTerm(NP.AtPos);
    }
    if (Pred.Kind == PredKind::NotContains &&
        !tagaut::notContainsVarsFlat(Langs, {Pred})) {
      ApproxLenGt.push_back({Pred.Lhs, Pred.Rhs});
      continue;
    }
    Preds.push_back(std::move(Pred));
  }
  bool Approximated = !ApproxLenGt.empty();
  if (Approximated)
    St.UsedApproximation = true;
  bool HasIntSide = !NF.IntAtoms.empty() || Approximated;

  if (Cancel && Cancel->load(std::memory_order_relaxed))
    return Verdict::Unknown; // a sibling disjunct already answered Sat

  // PTime fast path (Thm. 7.1): a single eligible predicate, no I part.
  if (Opts.UseOcaFastPath && !HasIntSide && counter::isEligible(Preds)) {
    Verdict V = counter::decideSinglePredicate(Langs, Preds.front(),
                                               NF.Sigma.size());
    if (V == Verdict::Unsat) {
      ++St.FastPathDecisions;
      if (CertOut) {
        // The PTime one-counter decision (Thm. 7.1) is a trusted engine;
        // its refutation is recorded by name (proof/Proof.h).
        CertOut->IsRule = true;
        CertOut->Rule = "one-counter";
      }
      return Verdict::Unsat;
    }
    if (V == Verdict::Sat && !Opts.BuildModel) {
      ++St.FastPathDecisions;
      return Verdict::Sat;
    }
    // Sat with a model requested, or Unknown: the LIA path below also
    // produces the witness.
  }

  ++St.MpCalls;
  for (const PosPredicate &Pred : Preds)
    if (Pred.Kind == PredKind::NotContains)
      St.UsedMbqi = true;

  tagaut::IntConstraintBuilder IntBuilder =
      [&](lia::Arena &Ar,
          const std::map<VarId, lia::LinTerm> &LenTerms) -> lia::FormulaId {
    std::vector<lia::FormulaId> Parts;
    // Convert the atoms first: ToLinTerm lazily mints length handles, and
    // every handle minted anywhere must be tied to the Parikh image below.
    for (const NormIntAtom &Atom : NF.IntAtoms)
      Parts.push_back(
          Ar.cmp(ToLinTerm(Atom.Lhs), Atom.Op, ToLinTerm(Atom.Rhs)));
    for (const auto &[U, V] : ApproxLenGt) {
      lia::LinTerm SumU, SumV;
      for (VarId T : U)
        SumU += LenTerms.at(T);
      for (VarId T : V)
        SumV += LenTerms.at(T);
      Parts.push_back(Ar.cmp(SumU, lia::Cmp::Gt, SumV));
    }
    // Tie every length handle to the Parikh length of its substitution.
    for (const auto &[X, Handle] : LenHandles) {
      lia::LinTerm Sum;
      for (VarId T : D.Subst.at(X))
        Sum += LenTerms.at(T);
      Parts.push_back(
          Ar.cmp(lia::LinTerm::variable(Handle), lia::Cmp::Eq, Sum));
    }
    return Ar.conj(std::move(Parts));
  };

  tagaut::MpOptions MpOpts = Opts.Mp;
  MpOpts.Certify = CertOut != nullptr;
  // Adaptive pivot-rule family, decided where the disjunct is created: a
  // decomposition whose substitution actually split or renamed a
  // variable came out of word-equation solving (the thefuck/django
  // shapes — equality tests, positive prefix/suffix dispatch — whose
  // pipelines the A/B measured as Bland territory), with the subfamily
  // picked from the substituted predicate mix: any
  // prefix/suffix/at/contains predicate means the wide per-position tag
  // blocks (WordEqPosition), otherwise — disequalities only, or no
  // predicates left after substitution — the narrow diseq shape
  // (WordEqDiseq). Identity decompositions stay Unknown and
  // tagaut/MpSolver refines from the predicate mix; MBQI contexts
  // classify themselves (lia/Mbqi).
  if (MpOpts.Qf.Pivot.Family == lia::InstanceFamily::Unknown) {
    for (const auto &[X, Rep] : D.Subst)
      if (Rep.size() != 1 || Rep.front() != X) {
        lia::InstanceFamily F = tagaut::classifyFamily(Preds);
        MpOpts.Qf.Pivot.Family = F == lia::InstanceFamily::WordEqPosition
                                     ? F
                                     : lia::InstanceFamily::WordEqDiseq;
        break;
      }
  }
  if (!MpOpts.Cancel)
    MpOpts.Cancel = Cancel;

  // Child budget: the root's remaining time plus the full memory/step
  // allowance; a caller-set Mp deadline still caps the child.
  Budget Child(childLimits(Cancel, MpOpts.TimeoutMs));
  MpOpts.Budget = &Child;
  tagaut::MpResult R =
      tagaut::solveMP(A, Langs, Preds, NF.Sigma.size(), IntBuilder, MpOpts);
  // Root-level accounting: the disjunct's cumulative charges count
  // against the root cap too (the run loop's probe notices the trip).
  Root->chargeMem(Child.memCharged());

  // Graceful degradation: a disjunct stopping on MemOut/StepBudget gets
  // one cheaper shot — Bland pivoting (bounded fill-in) and reduced MBQI
  // bounds — on a fresh child budget. Timeout/Cancelled are not retried:
  // there is no time left to spend.
  if (R.V == Verdict::Unknown &&
      (R.Stop == StopReason::MemOut || R.Stop == StopReason::StepBudget) &&
      !(Cancel && Cancel->load(std::memory_order_relaxed))) {
    ++St.DegradedRetries;
    tagaut::MpOptions Deg = MpOpts;
    Deg.Qf.Pivot.Rule = lia::PivotRule::Bland;
    Deg.Mbqi.Qf.Pivot.Rule = lia::PivotRule::Bland;
    Deg.Mbqi.MaxCandidates = std::min<uint32_t>(Deg.Mbqi.MaxCandidates, 16);
    Deg.Mbqi.MaxOffsets = std::min<int64_t>(Deg.Mbqi.MaxOffsets, 512);
    // Fresh limits: the root's remaining time has shrunk by the first
    // attempt, so re-derive rather than reuse.
    Budget RetryBud(childLimits(Cancel, MpOpts.TimeoutMs));
    Deg.Budget = &RetryBud;
    R = tagaut::solveMP(A, Langs, Preds, NF.Sigma.size(), IntBuilder, Deg);
    Root->chargeMem(RetryBud.memCharged());
  }
  if (R.V == Verdict::Unknown && R.Stop != StopReason::None) {
    ++St.BudgetTrips;
    if (StopOut == StopReason::None)
      StopOut = R.Stop;
  }

  if (R.V == Verdict::Sat) {
    // Project onto the original variables through the substitution map.
    Result.Words.clear();
    for (VarId X = 0; X < NF.NumOriginalVars; ++X) {
      Word W;
      for (VarId T : D.Subst.at(X)) {
        const Word &Part = R.Assignment.at(T);
        W.insert(W.end(), Part.begin(), Part.end());
      }
      Result.Words[X] = std::move(W);
    }
    Result.Ints.clear();
    for (IntVarId V = 0; V < NF.NumIntVars; ++V)
      Result.Ints[V] = R.Model[IntHandles[V]];
    if (Opts.TamperModel)
      Opts.TamperModel(Result.Words, Result.Ints);
    // Always-on self-check: every Sat model is re-validated against the
    // concrete semantics before it leaves the pipeline. An invalid model
    // is demoted to a structured Unknown (never a silent wrong answer).
    if (Opts.ValidateModels) {
      ++St.ModelsValidated;
      const ConcreteEvaluator &E = evaluator();
      for (size_t I = 0; I < P.assertions().size(); ++I) {
        if (E.evalOne(I, Result.Words, Result.Ints))
          continue;
        ++St.ValidationFailures;
        std::lock_guard<std::mutex> Lock(FailMu);
        if (!FirstFail.Failed) {
          FirstFail.Failed = true;
          FirstFail.AssertionIndex = static_cast<uint32_t>(I);
          FirstFail.Detail = "Sat model falsifies assertion #" +
                             std::to_string(I);
        }
        return Verdict::Unknown;
      }
    }
    return Verdict::Sat;
  }
  if (R.V == Verdict::Unsat && Approximated)
    return Verdict::Unknown; // an under-approximation cannot prove Unsat
  if (R.V == Verdict::Unsat && CertOut)
    *CertOut = std::move(R.Cert);
  return R.V;
}

SolveResult Pipeline::run() {
  SolveResult R = runImpl();

  // Attach the first self-check rejection, if any. The demoted disjunct
  // already reported Unknown, so R.V reflects it; the diagnostic makes
  // the demotion visible to callers (CLI exit code 7, fuzz triage).
  {
    std::lock_guard<std::mutex> Lock(FailMu);
    if (FirstFail.Failed)
      R.Validation = FirstFail;
  }

  // Paranoid mode: cross-check Unsat against the bounded enumeration
  // oracle. Its Sat is evaluator-certified, so a hit is a proven wrong
  // Unsat — demote and say so.
  if (R.V == Verdict::Unsat &&
      (Opts.ParanoidUnsatCheck || paranoidSelfCheckEnv())) {
    ++R.Stats.ParanoidChecks;
    EnumOptions EO;
    EO.MaxWordLen = Opts.ParanoidMaxWordLen;
    Budget ParanoidBud(
        Budget::Limits{0, 0, Opts.ParanoidStepLimit, nullptr});
    EO.Budget = &ParanoidBud;
    SolveResult OracleR = solveEnum(P, EO);
    if (OracleR.V == Verdict::Sat) {
      ++R.Stats.ValidationFailures;
      R.V = Verdict::Unknown;
      R.Stop = StopReason::None;
      R.Validation.Failed = true;
      R.Validation.AssertionIndex = ~0u;
      R.Validation.Detail =
          "paranoid self-check: enumeration oracle found a certified "
          "model for an Unsat verdict";
    }
  }

  // Certification gate: compose the per-disjunct refutations into the
  // whole-problem certificate and verify it in-process with the
  // independent kernel, through the same serialize → parse → check
  // pipeline external audits use. Acceptance is counted; rejection
  // demotes the Unsat to a structured Unknown — the certificate text is
  // kept either way so callers can save the evidence.
  if (R.V == Verdict::Unsat && CertifyOn) {
    proof::Certificate C;
    C.Complete = CertComplete;
    C.Disjuncts = std::move(Certs);
    if (Opts.TamperCert)
      Opts.TamperCert(C);
    R.CertText = proof::serialize(C);
    proof::CheckOutcome CO;
    if (Result<proof::Certificate> Parsed = proof::parse(R.CertText))
      CO = proof::checkCertificate(*Parsed);
    else
      CO.Error = "certificate failed to re-parse: " + Parsed.error();
    if (CO.Ok) {
      ++R.Stats.UnsatsCertified;
    } else {
      ++R.Stats.CertificationFailures;
      R.V = Verdict::Unknown;
      R.Stop = StopReason::None;
      R.Validation.Failed = true;
      R.Validation.AssertionIndex = ~0u;
      R.Validation.Detail = "certification failure: " + CO.Error;
    }
  }
  return R;
}

SolveResult Pipeline::runImpl() {
  SolveResult Result;
  StopReason AggStop = StopReason::None;

  NF = normalize(P);

  // Stabilization runs directly on the root budget (its growth — automata
  // products, subset constructions — is charged there).
  eq::StabilizeOptions StabOpts = Opts.Stabilize;
  if (!StabOpts.Budget)
    StabOpts.Budget = Root;
  eq::StabilizeResult Stab =
      eq::stabilize(NF.Langs, NF.Equations, NF.NextFresh, StabOpts);
  Stats.Disjuncts = static_cast<uint32_t>(Stab.Disjuncts.size());
  Stats.StabilizationIncomplete = !Stab.Complete;
  CertifyOn = Opts.CertifyUnsat || certifySelfCheckEnv();
  CertComplete = Stab.Complete;
  if (CertifyOn)
    Certs.assign(Stab.Disjuncts.size(), proof::DisjunctCert());
  if (!Stab.Complete && Stab.Stop != StopReason::None)
    AggStop = Stab.Stop;

  bool AnyUnknown = !Stab.Complete;

  uint32_t Threads = Opts.Threads == 0
                         ? std::max(1u, std::thread::hardware_concurrency())
                         : Opts.Threads;
  Threads = std::min<uint32_t>(
      Threads, static_cast<uint32_t>(Stab.Disjuncts.size()));

  if (Threads <= 1) {
    for (size_t I = 0; I < Stab.Disjuncts.size(); ++I) {
      const eq::Decomposition &D = Stab.Disjuncts[I];
      if (stopped(AggStop)) {
        AnyUnknown = true;
        break;
      }
      Verdict V = solveDisjunct(D, Result, Stats, nullptr, AggStop,
                                CertifyOn ? &Certs[I] : nullptr);
      if (V == Verdict::Sat) {
        Result.V = Verdict::Sat;
        Result.Stats = Stats;
        return Result;
      }
      if (V == Verdict::Unknown)
        AnyUnknown = true;
    }
    Result.V = AnyUnknown ? Verdict::Unknown : Verdict::Unsat;
    if (Result.V == Verdict::Unknown)
      Result.Stop = AggStop;
    Result.Stats = Stats;
    return Result;
  }

  // Stage the pool: solve disjunct 0 on the calling thread first. The
  // stabilizer orders easy decompositions early, so a serial run's
  // early-Sat exit usually never reaches the hard tail — an eagerly
  // fanned-out pool starts those hard disjuncts anyway and, on few-core
  // hosts, pays for work the serial loop would have skipped (the
  // solve-parallel-1 regression). Staging keeps the serial fast path:
  // only when disjunct 0 fails to answer Sat does the fan-out begin.
  if (stopped(AggStop)) {
    Result.V = Verdict::Unknown;
    Result.Stop = AggStop;
    Result.Stats = Stats;
    return Result;
  }
  {
    Verdict V = solveDisjunct(Stab.Disjuncts[0], Result, Stats, nullptr,
                              AggStop, CertifyOn ? &Certs[0] : nullptr);
    if (V == Verdict::Sat) {
      Result.V = Verdict::Sat;
      Result.Stats = Stats;
      return Result;
    }
    if (V == Verdict::Unknown)
      AnyUnknown = true;
  }
  Threads = std::min<uint32_t>(
      Threads, static_cast<uint32_t>(Stab.Disjuncts.size() - 1));

  // Disjunct pool over the remaining disjuncts: the decompositions are
  // independent (each worker builds its own arena, tag automata, Simplex
  // and SAT core), so grab them off a shared index — the atomic counter
  // is the work-stealing deque of this coarse-grained pool. The first
  // Sat raises the cancel flag, which the engines poll at their theory
  // callbacks; cancelled losers come back Unknown and are ignored once a
  // winner exists. Verdicts stay deterministic at any thread count: Sat
  // wins outright, and without a Sat no disjunct is ever cancelled, so
  // Unsat/Unknown aggregate exactly as in the serial loop.
  std::atomic<size_t> NextIdx{1};
  std::atomic<bool> Cancel{false};
  std::atomic<bool> PoolUnknown{AnyUnknown};
  std::mutex WinnerMu;
  bool HaveWinner = false;
  size_t WinnerIdx = 0;
  SolveResult Winner;
  SolveStats Merged = Stats;

  StopReason PoolStop = AggStop;

  auto Worker = [&] {
    SolveStats Local;
    StopReason LocalStop = StopReason::None;
    for (;;) {
      size_t I = NextIdx.fetch_add(1, std::memory_order_relaxed);
      if (I >= Stab.Disjuncts.size())
        break;
      if (Cancel.load(std::memory_order_relaxed))
        break;
      if (stopped(LocalStop)) {
        PoolUnknown.store(true, std::memory_order_relaxed);
        break;
      }
      SolveResult R;
      Verdict V = solveDisjunct(Stab.Disjuncts[I], R, Local, &Cancel,
                                LocalStop, CertifyOn ? &Certs[I] : nullptr);
      if (V == Verdict::Sat) {
        std::lock_guard<std::mutex> Lock(WinnerMu);
        if (!HaveWinner || I < WinnerIdx) {
          HaveWinner = true;
          WinnerIdx = I;
          Winner = std::move(R);
        }
        Cancel.store(true, std::memory_order_relaxed);
        break;
      }
      if (V == Verdict::Unknown && !Cancel.load(std::memory_order_relaxed))
        PoolUnknown.store(true, std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> Lock(WinnerMu);
    Merged.FastPathDecisions += Local.FastPathDecisions;
    Merged.MpCalls += Local.MpCalls;
    Merged.BudgetTrips += Local.BudgetTrips;
    Merged.DegradedRetries += Local.DegradedRetries;
    Merged.UsedMbqi |= Local.UsedMbqi;
    Merged.UsedApproximation |= Local.UsedApproximation;
    Merged.ModelsValidated += Local.ModelsValidated;
    Merged.ValidationFailures += Local.ValidationFailures;
    Merged.ParanoidChecks += Local.ParanoidChecks;
    if (PoolStop == StopReason::None)
      PoolStop = LocalStop;
  };

  std::vector<std::thread> Pool;
  Pool.reserve(Threads);
  for (uint32_t T = 0; T < Threads; ++T)
    Pool.emplace_back(Worker);
  for (std::thread &T : Pool)
    T.join();

  Stats = Merged;
  if (HaveWinner) {
    Result = std::move(Winner);
    Result.V = Verdict::Sat;
  } else {
    Result.V = PoolUnknown.load() ? Verdict::Unknown : Verdict::Unsat;
    if (Result.V == Verdict::Unknown)
      Result.Stop = PoolStop;
  }
  Result.Stats = Stats;
  return Result;
}

} // namespace

SolveResult postr::solver::solveProblem(const Problem &P,
                                        const SolveOptions &Opts) {
  Pipeline Pipe(P, Opts);
  return Pipe.run();
}
