//===- solver/Baselines.cpp - Comparison solvers ---------------------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "solver/Baselines.h"

#include "base/Budget.h"
#include "strings/Eval.h"

#include <algorithm>

using namespace postr;
using namespace postr::solver;
using namespace postr::strings;
using automata::Nfa;
using tagaut::PredKind;

namespace {

//===----------------------------------------------------------------------===
// Eq-reduction baseline
//===----------------------------------------------------------------------===

/// One case-split branch of a reduced predicate: extra equations, extra
/// integer atoms, and languages for the fresh variables it introduces.
struct Branch {
  std::vector<eq::WordEquation> Equations;
  std::vector<NormIntAtom> IntAtoms;
  std::map<VarId, Nfa> Langs;
  /// True for under-approximating branches (non-flat ¬contains): their
  /// failure cannot contribute to an Unsat verdict.
  bool Approximate = false;
};

class EqReducer {
public:
  EqReducer(const Problem &P, const EqReductionOptions &Opts)
      : P(P), Opts(Opts),
        LocalBud(Budget::Limits{Opts.TimeoutMs, 0, 0, nullptr}),
        Bud(Opts.Budget ? Opts.Budget : &LocalBud) {}

  SolveResult run();

private:
  /// Budget probe between branch systems; records the first reason.
  bool stopped() {
    if (Bud->checkpoint("solver.disjunct"))
      return false;
    if (Stop == StopReason::None)
      Stop = Bud->reason();
    return true;
  }

  VarId fresh() { return NextFresh++; }
  VarId freshUniversal(Branch &B) {
    VarId X = fresh();
    B.Langs[X] = Nfa::universal(NF.Sigma.size());
    return X;
  }
  VarId freshLetter(Branch &B, Symbol A) {
    VarId X = fresh();
    B.Langs[X] = Nfa::fromWord(NF.Sigma.size(), {A});
    return X;
  }
  static IntTerm lenOfSeq(const std::vector<VarId> &Seq) {
    IntTerm T;
    for (VarId X : Seq)
      T.LenVars.push_back({X, 1});
    return T;
  }

  /// Expands one predicate into its reduction branches.
  std::vector<Branch> expand(const NormPred &Pred);

  /// Solves equations + atoms (no position predicates left).
  Verdict solveBranchSystem(const std::vector<eq::WordEquation> &Eqs,
                            const std::vector<NormIntAtom> &Atoms,
                            const std::map<VarId, Nfa> &Langs);

  const Problem &P;
  EqReductionOptions Opts;
  Budget LocalBud; ///< used when Opts.Budget is null
  Budget *Bud;
  StopReason Stop = StopReason::None;
  NormalForm NF;
  VarId NextFresh = 0;
};

std::vector<Branch> EqReducer::expand(const NormPred &Pred) {
  std::vector<Branch> Out;
  uint32_t Sigma = NF.Sigma.size();
  const std::vector<VarId> &L = Pred.Lhs;
  const std::vector<VarId> &R = Pred.Rhs;

  auto MismatchBranches = [&](bool FromEnd) {
    // L = p·a·u ∧ R = p·b·v with a ≠ b (mirrored around a common suffix
    // for ¬suffixof). One branch per ordered symbol pair.
    for (Symbol A = 0; A < Sigma; ++A)
      for (Symbol B = 0; B < Sigma; ++B) {
        if (A == B)
          continue;
        Branch Br;
        VarId Pv = freshUniversal(Br);
        VarId Uv = freshUniversal(Br);
        VarId Vv = freshUniversal(Br);
        VarId Ca = freshLetter(Br, A);
        VarId Cb = freshLetter(Br, B);
        if (!FromEnd) {
          Br.Equations.push_back({L, {Pv, Ca, Uv}});
          Br.Equations.push_back({R, {Pv, Cb, Vv}});
          // Equal mismatch position: |p| is shared, nothing more needed.
        } else {
          Br.Equations.push_back({L, {Uv, Ca, Pv}});
          Br.Equations.push_back({R, {Vv, Cb, Pv}});
        }
        Out.push_back(std::move(Br));
      }
  };

  switch (Pred.Kind) {
  case PredKind::Diseq: {
    Branch LenNe;
    LenNe.IntAtoms.push_back({lenOfSeq(L), lia::Cmp::Ne, lenOfSeq(R)});
    Out.push_back(std::move(LenNe));
    MismatchBranches(/*FromEnd=*/false);
    return Out;
  }
  case PredKind::NotPrefix:
  case PredKind::NotSuffix: {
    Branch LenGt;
    LenGt.IntAtoms.push_back({lenOfSeq(L), lia::Cmp::Gt, lenOfSeq(R)});
    Out.push_back(std::move(LenGt));
    MismatchBranches(Pred.Kind == PredKind::NotSuffix);
    return Out;
  }
  case PredKind::StrAtEq: {
    // Out of bounds: xs = ε ∧ (pos < 0 ∨ pos >= |R|).
    for (int Neg = 0; Neg < 2; ++Neg) {
      Branch Br;
      Br.IntAtoms.push_back(
          {lenOfSeq(L), lia::Cmp::Eq, IntTerm::constant(0)});
      if (Neg)
        Br.IntAtoms.push_back({Pred.AtPos, lia::Cmp::Lt,
                               IntTerm::constant(0)});
      else
        Br.IntAtoms.push_back({Pred.AtPos, lia::Cmp::Ge, lenOfSeq(R)});
      Out.push_back(std::move(Br));
    }
    // In bounds: R = p·xs·s with |p| = pos and |xs| = 1.
    {
      Branch Br;
      VarId Pv = freshUniversal(Br);
      VarId Sv = freshUniversal(Br);
      std::vector<VarId> Rhs{Pv};
      Rhs.insert(Rhs.end(), L.begin(), L.end());
      Rhs.push_back(Sv);
      Br.Equations.push_back({R, Rhs});
      Br.IntAtoms.push_back(
          {IntTerm::lenOf(Pv), lia::Cmp::Eq, Pred.AtPos});
      Br.IntAtoms.push_back(
          {lenOfSeq(L), lia::Cmp::Eq, IntTerm::constant(1)});
      Out.push_back(std::move(Br));
    }
    return Out;
  }
  case PredKind::StrAtNe: {
    // |xs| >= 2 always differs from ε / a single character.
    {
      Branch Br;
      Br.IntAtoms.push_back(
          {lenOfSeq(L), lia::Cmp::Ge, IntTerm::constant(2)});
      Out.push_back(std::move(Br));
    }
    // Out of bounds with xs non-empty.
    for (int Neg = 0; Neg < 2; ++Neg) {
      Branch Br;
      Br.IntAtoms.push_back(
          {lenOfSeq(L), lia::Cmp::Ge, IntTerm::constant(1)});
      if (Neg)
        Br.IntAtoms.push_back({Pred.AtPos, lia::Cmp::Lt,
                               IntTerm::constant(0)});
      else
        Br.IntAtoms.push_back({Pred.AtPos, lia::Cmp::Ge, lenOfSeq(R)});
      Out.push_back(std::move(Br));
    }
    // In bounds, xs = ε.
    {
      Branch Br;
      Br.IntAtoms.push_back(
          {lenOfSeq(L), lia::Cmp::Eq, IntTerm::constant(0)});
      Br.IntAtoms.push_back(
          {Pred.AtPos, lia::Cmp::Ge, IntTerm::constant(0)});
      Br.IntAtoms.push_back({Pred.AtPos, lia::Cmp::Lt, lenOfSeq(R)});
      Out.push_back(std::move(Br));
    }
    // In bounds, |xs| = 1 and the characters differ.
    for (Symbol A = 0; A < Sigma; ++A)
      for (Symbol B = 0; B < Sigma; ++B) {
        if (A == B)
          continue;
        Branch Br;
        VarId Pv = freshUniversal(Br);
        VarId Sv = freshUniversal(Br);
        VarId Ca = freshLetter(Br, A);
        VarId Cb = freshLetter(Br, B);
        Br.Equations.push_back({L, {Ca}});
        Br.Equations.push_back({R, {Pv, Cb, Sv}});
        Br.IntAtoms.push_back(
            {IntTerm::lenOf(Pv), lia::Cmp::Eq, Pred.AtPos});
        Out.push_back(std::move(Br));
      }
    return Out;
  }
  case PredKind::NotContains: {
    // No quantifier-free equation reduction exists (Sec. 1); the
    // baseline keeps only the |u| > |v| under-approximation.
    Branch Br;
    Br.IntAtoms.push_back({lenOfSeq(L), lia::Cmp::Gt, lenOfSeq(R)});
    Br.Approximate = true;
    Out.push_back(std::move(Br));
    return Out;
  }
  }
  assert(false && "bad predicate kind");
  return Out;
}

Verdict EqReducer::solveBranchSystem(
    const std::vector<eq::WordEquation> &Eqs,
    const std::vector<NormIntAtom> &Atoms,
    const std::map<VarId, Nfa> &Langs) {
  VarId Next = NextFresh;
  eq::StabilizeOptions StabOpts = Opts.Stabilize;
  if (!StabOpts.Budget)
    StabOpts.Budget = Bud;
  eq::StabilizeResult Stab = eq::stabilize(Langs, Eqs, Next, StabOpts);
  bool AnyUnknown = !Stab.Complete;
  if (!Stab.Complete && Stop == StopReason::None)
    Stop = Stab.Stop;
  for (const eq::Decomposition &D : Stab.Disjuncts) {
    if (stopped())
      return Verdict::Unknown;
    lia::Arena A;
    tagaut::IntConstraintBuilder IntBuilder =
        [&](lia::Arena &Ar, const std::map<VarId, lia::LinTerm> &LenTerms)
        -> lia::FormulaId {
      auto ToLin = [&](const IntTerm &T) {
        lia::LinTerm Out(T.Const);
        assert(T.IntVars.empty() &&
               "eq-reduction baseline supports length terms only");
        for (auto [X, C] : T.LenVars) {
          lia::LinTerm Sum;
          for (VarId Term : D.Subst.at(X))
            Sum += LenTerms.at(Term);
          Out += Sum * C;
        }
        return Out;
      };
      std::vector<lia::FormulaId> Parts;
      for (const NormIntAtom &Atom : Atoms)
        Parts.push_back(Ar.cmp(ToLin(Atom.Lhs), Atom.Op, ToLin(Atom.Rhs)));
      return Ar.conj(std::move(Parts));
    };
    tagaut::MpOptions MpOpts = Opts.Mp;
    if (!MpOpts.Budget)
      MpOpts.Budget = Bud;
    tagaut::MpResult R =
        tagaut::solveMP(A, D.Langs, {}, NF.Sigma.size(), IntBuilder, MpOpts);
    if (R.V == Verdict::Sat)
      return Verdict::Sat;
    if (R.V == Verdict::Unknown) {
      AnyUnknown = true;
      if (Stop == StopReason::None)
        Stop = R.Stop;
    }
  }
  return AnyUnknown ? Verdict::Unknown : Verdict::Unsat;
}

SolveResult EqReducer::run() {
  SolveResult Result;
  NF = normalize(P);
  NextFresh = NF.NextFresh;

  // Expand every predicate; take the cross product of branches.
  std::vector<std::vector<Branch>> PerPred;
  for (const NormPred &Pred : NF.Preds)
    PerPred.push_back(expand(Pred));

  uint64_t Total = 1;
  for (const std::vector<Branch> &B : PerPred) {
    Total *= B.size();
    if (Total > Opts.MaxBranches) {
      Result.V = Verdict::Unknown;
      Result.Stop = StopReason::StepBudget; // engine-internal branch cap
      return Result;
    }
  }

  bool AnyUnknown = false;
  std::vector<size_t> Idx(PerPred.size(), 0);
  for (uint64_t Count = 0; Count < Total; ++Count) {
    if (stopped()) {
      Result.V = Verdict::Unknown;
      Result.Stop = Stop;
      return Result;
    }
    std::vector<eq::WordEquation> Eqs = NF.Equations;
    std::vector<NormIntAtom> Atoms = NF.IntAtoms;
    std::map<VarId, Nfa> Langs = NF.Langs;
    bool Approximate = false;
    for (size_t I = 0; I < PerPred.size(); ++I) {
      const Branch &B = PerPred[I][Idx[I]];
      Eqs.insert(Eqs.end(), B.Equations.begin(), B.Equations.end());
      Atoms.insert(Atoms.end(), B.IntAtoms.begin(), B.IntAtoms.end());
      for (const auto &[X, Lang] : B.Langs)
        Langs.emplace(X, Lang);
      Approximate |= B.Approximate;
    }
    Verdict V = solveBranchSystem(Eqs, Atoms, Langs);
    if (V == Verdict::Sat) {
      Result.V = Verdict::Sat;
      return Result;
    }
    if (V == Verdict::Unknown)
      AnyUnknown = true;
    // Branches that only under-approximate cannot witness Unsat.
    bool AllApprox = Approximate;
    if (AllApprox && V == Verdict::Unsat)
      AnyUnknown = true;
    // Odometer.
    for (size_t I = 0; I < Idx.size(); ++I) {
      if (++Idx[I] < PerPred[I].size())
        break;
      Idx[I] = 0;
    }
  }
  Result.V = AnyUnknown ? Verdict::Unknown : Verdict::Unsat;
  if (Result.V == Verdict::Unknown)
    Result.Stop = Stop;
  return Result;
}

//===----------------------------------------------------------------------===
// Enumeration baseline
//===----------------------------------------------------------------------===

/// Longest accepted word if the language is finite; nullopt otherwise.
std::optional<uint32_t> finiteMaxLen(const Nfa &In) {
  Nfa A = In.trim();
  // Finite iff the trimmed automaton is acyclic; the longest path length
  // is then the max word length.
  uint32_t N = A.numStates();
  std::vector<uint32_t> Indegree(N, 0);
  for (const automata::Transition &T : A.transitions())
    ++Indegree[T.To];
  std::vector<uint32_t> Order, Stack;
  for (uint32_t Q = 0; Q < N; ++Q)
    if (Indegree[Q] == 0)
      Stack.push_back(Q);
  while (!Stack.empty()) {
    uint32_t Q = Stack.back();
    Stack.pop_back();
    Order.push_back(Q);
    auto [Begin, End] = A.outgoing(Q);
    for (const automata::Transition *T = Begin; T != End; ++T)
      if (--Indegree[T->To] == 0)
        Stack.push_back(T->To);
  }
  if (Order.size() != N)
    return std::nullopt; // cycle
  std::vector<uint32_t> Longest(N, 0);
  std::optional<uint32_t> Best;
  for (uint32_t Q : Order) {
    if (A.isFinal(Q))
      Best = Best ? std::max(*Best, Longest[Q]) : Longest[Q];
    auto [Begin, End] = A.outgoing(Q);
    for (const automata::Transition *T = Begin; T != End; ++T)
      Longest[T->To] = std::max(Longest[T->To], Longest[Q] + 1);
  }
  return Best ? Best : std::optional<uint32_t>(0);
}

} // namespace

SolveResult postr::solver::solveEqReduction(const Problem &P,
                                            const EqReductionOptions &Opts) {
  EqReducer R(P, Opts);
  return R.run();
}

SolveResult postr::solver::solveEnum(const Problem &P,
                                     const EnumOptions &Opts) {
  // TimeoutMs and a caller-shared Budget compose: both are probed and
  // the tighter limit wins (a set Budget used to replace TimeoutMs).
  Budget Local(Budget::Limits{Opts.TimeoutMs, 0, 0, nullptr});
  Budget *Shared = Opts.Budget;
  Budget *MemBud = Shared ? Shared : &Local;
  auto Probe = [&](const char *Site) {
    if (Shared && !Shared->checkpoint(Site))
      return false;
    return Local.checkpoint(Site);
  };
  auto Reason = [&] {
    if (Shared && Shared->reason() != StopReason::None)
      return Shared->reason();
    return Local.reason();
  };

  SolveResult Result;
  NormalForm NF = normalize(P);
  ConcreteEvaluator Eval(P, NF.Sigma);

  if (P.numIntVars() > Opts.MaxIntVars) {
    Result.V = Verdict::Unknown;
    Result.Stop = StopReason::StepBudget; // engine-internal cap
    return Result;
  }

  // Word choices per original variable, shortest first (the guessing
  // profile: small models are found quickly).
  std::vector<VarId> Vars;
  std::vector<std::vector<Word>> Choices;
  bool Exhaustive = true;
  for (VarId X = 0; X < P.numStrVars(); ++X) {
    const Nfa &Lang = NF.Langs.at(X);
    if (Lang.isEmpty()) {
      Result.V = Verdict::Unsat;
      return Result;
    }
    std::optional<uint32_t> Fin = finiteMaxLen(Lang);
    if (!Fin || *Fin > Opts.MaxWordLen)
      Exhaustive = false;
    std::vector<Word> Words = Lang.enumerateWords(Opts.MaxWordLen);
    MemBud->chargeMem(Words.size() * (sizeof(Word) + 8));
    if (Words.empty()) {
      // Non-empty language, but no word within the bound.
      Result.V = Verdict::Unknown;
      Result.Stop = StopReason::StepBudget;
      return Result;
    }
    if (!Probe("solver.enum")) {
      Result.V = Verdict::Unknown;
      Result.Stop = Reason();
      return Result;
    }
    std::stable_sort(Words.begin(), Words.end(),
                     [](const Word &A, const Word &B) {
                       return A.size() < B.size();
                     });
    Vars.push_back(X);
    Choices.push_back(std::move(Words));
  }
  // Integer variable ranges.
  int64_t IntLo = -1, IntHi = Opts.MaxIntValue;
  if (P.numIntVars() > 0)
    Exhaustive = false; // integers are never exhaustively enumerable

  std::vector<size_t> Idx(Vars.size(), 0);
  uint64_t Steps = 0;
  for (;;) {
    std::map<VarId, Word> Strs;
    for (size_t I = 0; I < Vars.size(); ++I)
      Strs[Vars[I]] = Choices[I][Idx[I]];

    // Enumerate integer assignments for this word assignment.
    std::vector<int64_t> IntVals(P.numIntVars(), IntLo);
    for (;;) {
      // Shared-budget probe (deadline, cancel, memory, steps) every 64
      // evaluations; the old code polled only the deadline, every 256.
      if ((++Steps & 63) == 0 && !Probe("solver.enum")) {
        Result.V = Verdict::Unknown;
        Result.Stop = Reason();
        return Result;
      }
      std::map<IntVarId, int64_t> Ints;
      for (IntVarId V = 0; V < P.numIntVars(); ++V)
        Ints[V] = IntVals[V];
      if (Eval.evalAll(Strs, Ints)) {
        Result.V = Verdict::Sat;
        Result.Words = std::move(Strs);
        Result.Ints = std::move(Ints);
        return Result;
      }
      // Integer odometer.
      size_t IPos = 0;
      while (IPos < IntVals.size() && ++IntVals[IPos] > IntHi) {
        IntVals[IPos] = IntLo;
        ++IPos;
      }
      if (IPos == IntVals.size())
        break;
    }

    // Word odometer.
    size_t Pos = 0;
    while (Pos < Idx.size() && ++Idx[Pos] == Choices[Pos].size()) {
      Idx[Pos] = 0;
      ++Pos;
    }
    if (Pos == Idx.size())
      break;
  }
  Result.V = Exhaustive ? Verdict::Unsat : Verdict::Unknown;
  if (Result.V == Verdict::Unknown)
    Result.Stop = StopReason::StepBudget; // enumeration bound exhausted
  return Result;
}
