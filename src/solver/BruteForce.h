//===- solver/BruteForce.h - Enumeration reference solver --------*- C++ -*-===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded brute-force solver for R ∧ P: enumerates every assignment of
/// language words up to a length bound and evaluates the predicates
/// directly. Exponential; it serves two roles:
///
///  * the ground-truth oracle of the differential test suites, and
///  * the `EnumSolver` baseline of the benchmark harness, standing in
///    for the guess-a-model profile the paper attributes to cvc5 (good
///    at Sat, diverges on Unsat; Sec. 1 and Sec. 8.2).
///
//===----------------------------------------------------------------------===//

#ifndef POSTR_SOLVER_BRUTEFORCE_H
#define POSTR_SOLVER_BRUTEFORCE_H

#include "automata/Nfa.h"
#include "solver/Semantics.h"
#include "tagaut/Encoder.h"

#include <map>
#include <optional>

namespace postr {
namespace solver {

struct BruteForceOptions {
  /// Words per variable are enumerated up to this length.
  uint32_t MaxWordLen = 4;
  /// Hard cap on evaluated assignments.
  uint64_t MaxAssignments = 2'000'000;
  /// Optional deadline in milliseconds (0 = none).
  uint64_t TimeoutMs = 0;
  /// Optional shared resource budget (base/Budget.h), probed every 64
  /// evaluations ("solver.bruteforce") — covers cancellation and
  /// step/memory limits, which the bare TimeoutMs poll never did.
  /// Composes with TimeoutMs: both are probed, the tighter limit wins.
  postr::Budget *Budget = nullptr;
};

struct BruteForceResult {
  /// Sat: model found. Unsat: exhausted ALL assignments within the word-
  /// length bound without the cap or deadline firing — i.e. "no model
  /// with every |x| <= MaxWordLen". Unknown: resources exhausted.
  Verdict V = Verdict::Unknown;
  /// On a resource-out Unknown: the budget's trip reason, or StepBudget
  /// when MaxAssignments/MaxWordLen ran out.
  StopReason Stop = StopReason::None;
  std::map<VarId, Word> Assignment;
};

/// Decides R ∧ P by bounded enumeration. AtPos terms must be constants.
BruteForceResult
solveBruteForce(const std::map<VarId, automata::Nfa> &Langs,
                const std::vector<tagaut::PosPredicate> &Preds,
                const BruteForceOptions &Opts = {});

} // namespace solver
} // namespace postr

#endif // POSTR_SOLVER_BRUTEFORCE_H
