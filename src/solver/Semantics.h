//===- solver/Semantics.h - Direct predicate semantics -----------*- C++ -*-===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concrete-word semantics of the position predicates (Fig. 1), used by
/// the brute-force reference solver and for validating every Sat answer
/// the decision procedures produce.
///
//===----------------------------------------------------------------------===//

#ifndef POSTR_SOLVER_SEMANTICS_H
#define POSTR_SOLVER_SEMANTICS_H

#include "base/Base.h"
#include "tagaut/Encoder.h"

#include <map>

namespace postr {
namespace solver {

/// Concatenates the assignment's words along an occurrence sequence.
Word concatOccs(const std::vector<VarId> &Occs,
                const std::map<VarId, Word> &Assignment);

/// Is \p Prefix a prefix of \p W?
bool isPrefix(const Word &Prefix, const Word &W);
/// Is \p Suffix a suffix of \p W?
bool isSuffix(const Word &Suffix, const Word &W);
/// Does \p W contain \p Needle as a factor (ε is contained everywhere)?
bool containsFactor(const Word &Needle, const Word &W);

/// Evaluates one predicate under a concrete assignment. For StrAt*,
/// \p AtPosValue is the concrete value of the position term.
bool evalPredicate(const tagaut::PosPredicate &Pred,
                   const std::map<VarId, Word> &Assignment,
                   int64_t AtPosValue = 0);

/// Evaluates a whole system (all predicates; AtPos terms must be constant
/// or \p AtPosValues supplied per predicate index).
bool evalSystem(const std::vector<tagaut::PosPredicate> &Preds,
                const std::map<VarId, Word> &Assignment,
                const std::vector<int64_t> *AtPosValues = nullptr);

} // namespace solver
} // namespace postr

#endif // POSTR_SOLVER_SEMANTICS_H
