//===- solver/PositionSolver.h - The Z3-Noodler-pos pipeline -----*- C++ -*-===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The full solving pipeline the paper evaluates as Z3-Noodler-pos
/// (Sec. 8): normalize to E ∧ R ∧ I ∧ P, run the stabilization-based
/// procedure on E ∧ R to obtain monadic decompositions, and for each
/// decomposition decide the substituted position constraints with the
/// tag-automaton/LIA procedure — with the PTime one-counter fast path
/// for a lone ≠/¬prefixof/¬suffixof (Thm. 7.1) and the Sec. 8 heuristics
/// in front of non-flat ¬contains.
///
//===----------------------------------------------------------------------===//

#ifndef POSTR_SOLVER_POSITIONSOLVER_H
#define POSTR_SOLVER_POSITIONSOLVER_H

#include "counter/OneCounter.h"
#include "eq/Stabilize.h"
#include "strings/Normalize.h"
#include "tagaut/MpSolver.h"

#include <map>

namespace postr {
namespace solver {

struct SolveOptions {
  /// Overall deadline in milliseconds (0 = none).
  uint64_t TimeoutMs = 0;
  /// Explicit memory-accounting cap in bytes (0 = none), charged at the
  /// growth sites — automata states/transitions, subset-construction
  /// maps, Simplex tableau rows, CDCL clause DB, encoder variable blocks.
  /// Accounting is cumulative (freed structures are not credited back),
  /// so the cap bounds total allocation, not the high-water mark. Each
  /// disjunct gets the full cap (their arenas are independent and freed
  /// when the disjunct finishes).
  uint64_t MemLimitBytes = 0;
  /// Abstract step budget per disjunct (0 = none): every budget probe in
  /// the engines consumes one step, giving a deterministic, wall-clock-
  /// independent resource bound (useful for tests and reproducible runs).
  uint64_t StepLimit = 0;
  /// Optional caller-owned shared budget (base/Budget.h). When set it
  /// REPLACES the root budget built from TimeoutMs/MemLimitBytes/
  /// StepLimit: its deadline governs the pipeline, and per-disjunct child
  /// budgets are derived from its remaining time and its limits.
  postr::Budget *Budget = nullptr;
  /// Worker threads for the disjunct pool. The decompositions produced by
  /// stabilization are independent (per-disjunct arena/Simplex/SAT core),
  /// so they are solved on a small pool with first-Sat cancellation.
  /// 1 = solve in the calling thread; 0 = hardware concurrency. Verdicts
  /// are deterministic at any thread count (Sat models may differ: any
  /// satisfied disjunct is a correct witness).
  uint32_t Threads = 1;
  eq::StabilizeOptions Stabilize;
  tagaut::MpOptions Mp;
  /// Use the PTime one-counter path when eligible (Thm. 7.1).
  bool UseOcaFastPath = true;
  /// Construct witness assignments on Sat (forces the LIA path even when
  /// the one-counter path answered, since the latter yields no model).
  bool BuildModel = true;
  /// Validate Sat models against the concrete semantics (debug aid).
  bool ValidateModels = true;
};

struct SolveStats {
  uint32_t Disjuncts = 0;
  uint32_t FastPathDecisions = 0;
  uint32_t MpCalls = 0;
  /// Disjuncts whose final answer was a budget-tripped Unknown (after
  /// any degraded retry).
  uint32_t BudgetTrips = 0;
  /// Disjuncts re-run once in degraded mode (Bland pivoting, reduced
  /// MBQI bounds) after stopping on MemOut/StepBudget.
  uint32_t DegradedRetries = 0;
  bool UsedMbqi = false;
  bool UsedApproximation = false;
  bool StabilizationIncomplete = false;
};

struct SolveResult {
  Verdict V = Verdict::Unknown;
  /// Why the verdict is Unknown when a resource ran out (Timeout /
  /// Cancelled / MemOut / StepBudget); None for determinate verdicts and
  /// for genuine incompleteness.
  StopReason Stop = StopReason::None;
  /// On Sat (with BuildModel): words of the *original* problem variables.
  std::map<VarId, Word> Words;
  std::map<strings::IntVarId, int64_t> Ints;
  SolveStats Stats;
};

/// Decides a conjunction of string assertions.
SolveResult solveProblem(const strings::Problem &P,
                         const SolveOptions &Opts = {});

} // namespace solver
} // namespace postr

#endif // POSTR_SOLVER_POSITIONSOLVER_H
