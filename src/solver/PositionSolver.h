//===- solver/PositionSolver.h - The Z3-Noodler-pos pipeline -----*- C++ -*-===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The full solving pipeline the paper evaluates as Z3-Noodler-pos
/// (Sec. 8): normalize to E ∧ R ∧ I ∧ P, run the stabilization-based
/// procedure on E ∧ R to obtain monadic decompositions, and for each
/// decomposition decide the substituted position constraints with the
/// tag-automaton/LIA procedure — with the PTime one-counter fast path
/// for a lone ≠/¬prefixof/¬suffixof (Thm. 7.1) and the Sec. 8 heuristics
/// in front of non-flat ¬contains.
///
//===----------------------------------------------------------------------===//

#ifndef POSTR_SOLVER_POSITIONSOLVER_H
#define POSTR_SOLVER_POSITIONSOLVER_H

#include "counter/OneCounter.h"
#include "eq/Stabilize.h"
#include "proof/Check.h"
#include "strings/Normalize.h"
#include "tagaut/MpSolver.h"

#include <functional>
#include <map>

namespace postr {
namespace solver {

/// Test-only hook: mutates a Sat model before the self-check validates
/// it. Fuzz/unit tests install this to prove that a corrupted model is
/// caught and surfaced as a ValidationFailure rather than returned as
/// Sat. Never set in production paths.
using ModelTamperHook = std::function<void(
    std::map<VarId, Word> &, std::map<strings::IntVarId, int64_t> &)>;

/// Test-only hook: mutates an assembled Unsat certificate before it is
/// serialized and re-checked. Fuzz/unit tests install this to prove that
/// a corrupted certificate is rejected by the independent kernel and
/// demoted to Unknown rather than reported as certified. Never set in
/// production paths.
using CertTamperHook = std::function<void(proof::Certificate &)>;

struct SolveOptions {
  /// Overall deadline in milliseconds (0 = none).
  uint64_t TimeoutMs = 0;
  /// Explicit memory-accounting cap in bytes (0 = none), charged at the
  /// growth sites — automata states/transitions, subset-construction
  /// maps, Simplex tableau rows, CDCL clause DB, encoder variable blocks.
  /// Accounting is cumulative (freed structures are not credited back),
  /// so the cap bounds total allocation, not the high-water mark. Each
  /// disjunct gets the full cap (their arenas are independent and freed
  /// when the disjunct finishes).
  uint64_t MemLimitBytes = 0;
  /// Abstract step budget per disjunct (0 = none): every budget probe in
  /// the engines consumes one step, giving a deterministic, wall-clock-
  /// independent resource bound (useful for tests and reproducible runs).
  uint64_t StepLimit = 0;
  /// Optional caller-owned shared budget (base/Budget.h). When set it
  /// REPLACES the root budget built from TimeoutMs/MemLimitBytes/
  /// StepLimit: its deadline governs the pipeline, and per-disjunct child
  /// budgets are derived from its remaining time and its limits.
  postr::Budget *Budget = nullptr;
  /// Worker threads for the disjunct pool. The decompositions produced by
  /// stabilization are independent (per-disjunct arena/Simplex/SAT core),
  /// so they are solved on a small pool with first-Sat cancellation.
  /// 1 = solve in the calling thread; 0 = hardware concurrency. Verdicts
  /// are deterministic at any thread count (Sat models may differ: any
  /// satisfied disjunct is a correct witness).
  uint32_t Threads = 1;
  eq::StabilizeOptions Stabilize;
  tagaut::MpOptions Mp;
  /// Use the PTime one-counter path when eligible (Thm. 7.1).
  bool UseOcaFastPath = true;
  /// Construct witness assignments on Sat (forces the LIA path even when
  /// the one-counter path answered, since the latter yields no model).
  bool BuildModel = true;
  /// Re-validate every Sat model against the concrete semantics before
  /// returning it (always on, all build types). An invalid model is
  /// demoted to Unknown with SolveResult::Validation filled in — the
  /// solver never silently returns a wrong Sat. Only the fast path
  /// (UseOcaFastPath with BuildModel=false) is exempt, since it produces
  /// no model to check.
  bool ValidateModels = true;
  /// Cross-check every Unsat against the bounded enumeration oracle
  /// (solver::solveEnum). If the oracle finds a certified model, the
  /// Unsat is demoted to Unknown with a ValidationFailure diagnostic.
  /// Expensive; also enabled process-wide by POSTR_SELFCHECK=paranoid.
  bool ParanoidUnsatCheck = false;
  /// Word-length bound for the paranoid enumeration cross-check.
  uint32_t ParanoidMaxWordLen = 3;
  /// Abstract step budget for the paranoid cross-check (keeps it cheap
  /// and deterministic; the oracle reports Unknown when it trips).
  uint64_t ParanoidStepLimit = 50'000;
  /// Certify every Unsat verdict: each disjunct records a refutation
  /// (full DRUP + Farkas clause trace on the QF-LIA path, named
  /// trusted-rule records for the automata shortcuts / one-counter /
  /// MBQI paths), the per-disjunct refutations are composed into a
  /// whole-problem certificate, and the certificate is serialized,
  /// re-parsed, and verified in-process by the independent checker
  /// kernel (proof/Check.h). A rejected certificate demotes the verdict
  /// to Unknown with a `certification failure:` diagnostic — a certified
  /// Unsat is never taken on the solver's word alone. Also enabled
  /// process-wide by POSTR_SELFCHECK=certify. The accepted (or rejected)
  /// certificate text is returned in SolveResult::CertText.
  bool CertifyUnsat = false;
  /// Test-only model corruption hook (see ModelTamperHook).
  ModelTamperHook TamperModel;
  /// Test-only certificate corruption hook (see CertTamperHook).
  CertTamperHook TamperCert;
};

struct SolveStats {
  uint32_t Disjuncts = 0;
  uint32_t FastPathDecisions = 0;
  uint32_t MpCalls = 0;
  /// Disjuncts whose final answer was a budget-tripped Unknown (after
  /// any degraded retry).
  uint32_t BudgetTrips = 0;
  /// Disjuncts re-run once in degraded mode (Bland pivoting, reduced
  /// MBQI bounds) after stopping on MemOut/StepBudget.
  uint32_t DegradedRetries = 0;
  bool UsedMbqi = false;
  bool UsedApproximation = false;
  bool StabilizationIncomplete = false;
  /// Sat models run through the concrete-evaluation self-check.
  uint32_t ModelsValidated = 0;
  /// Self-check rejections: invalid Sat models caught (and demoted to
  /// Unknown), plus paranoid Unsat cross-checks that found a model.
  uint32_t ValidationFailures = 0;
  /// Unsat verdicts cross-checked against the enumeration oracle.
  uint32_t ParanoidChecks = 0;
  /// Unsat verdicts whose composed certificate the independent checker
  /// kernel accepted (CertifyUnsat / POSTR_SELFCHECK=certify).
  uint32_t UnsatsCertified = 0;
  /// Unsat verdicts demoted to Unknown because the checker kernel
  /// rejected the certificate.
  uint32_t CertificationFailures = 0;
};

/// Structured self-check diagnostic. When Failed, the accompanying
/// verdict is Unknown: the pipeline produced an answer its own
/// validation layer rejected, and surfacing that beats returning it.
struct ValidationFailure {
  bool Failed = false;
  /// Index of the first assertion the Sat model falsified (~0u when the
  /// failure is a paranoid Unsat cross-check, which has no model).
  uint32_t AssertionIndex = ~0u;
  std::string Detail;
};

struct SolveResult {
  Verdict V = Verdict::Unknown;
  /// Why the verdict is Unknown when a resource ran out (Timeout /
  /// Cancelled / MemOut / StepBudget); None for determinate verdicts and
  /// for genuine incompleteness.
  StopReason Stop = StopReason::None;
  /// On Sat (with BuildModel): words of the *original* problem variables.
  std::map<VarId, Word> Words;
  std::map<strings::IntVarId, int64_t> Ints;
  SolveStats Stats;
  /// Filled in when the self-check demoted a verdict (see
  /// ValidationFailure); Validation.Failed is false on clean runs.
  ValidationFailure Validation;
  /// With certification on, the serialized whole-problem certificate of
  /// an Unsat verdict (also kept when the kernel rejected it and the
  /// verdict was demoted, so callers can save the evidence). Empty
  /// otherwise.
  std::string CertText;
};

/// Decides a conjunction of string assertions.
SolveResult solveProblem(const strings::Problem &P,
                         const SolveOptions &Opts = {});

} // namespace solver
} // namespace postr

#endif // POSTR_SOLVER_POSITIONSOLVER_H
