//===- solver/BruteForce.cpp - Enumeration reference solver ----------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "solver/BruteForce.h"

#include "base/Budget.h"

using namespace postr;
using namespace postr::solver;

BruteForceResult postr::solver::solveBruteForce(
    const std::map<VarId, automata::Nfa> &Langs,
    const std::vector<tagaut::PosPredicate> &Preds,
    const BruteForceOptions &Opts) {
  // TimeoutMs and a caller-shared Budget compose: both are probed and
  // the tighter limit wins. (Previously a set Budget silently replaced
  // TimeoutMs, so "enumerate for at most 50ms inside this big budget"
  // ran unbounded.)
  Budget Local(Budget::Limits{Opts.TimeoutMs, 0, 0, nullptr});
  Budget *Shared = Opts.Budget;
  Budget *MemBud = Shared ? Shared : &Local;
  auto Probe = [&](const char *Site) {
    if (Shared && !Shared->checkpoint(Site))
      return false;
    return Local.checkpoint(Site);
  };
  auto Reason = [&] {
    if (Shared && Shared->reason() != StopReason::None)
      return Shared->reason();
    return Local.reason();
  };
  BruteForceResult Out;

  std::vector<VarId> Vars;
  std::vector<std::vector<Word>> Choices;
  for (const auto &[X, Nfa] : Langs) {
    Vars.push_back(X);
    Choices.push_back(Nfa.enumerateWords(Opts.MaxWordLen));
    MemBud->chargeMem(Choices.back().size() * (sizeof(Word) + 8));
    if (Choices.back().empty()) {
      // The language has no word of length <= bound. If it is empty
      // outright the system is Unsat; otherwise the bound is too small
      // to say anything.
      Out.V = Nfa.isEmpty() ? Verdict::Unsat : Verdict::Unknown;
      if (Out.V == Verdict::Unknown)
        Out.Stop = StopReason::StepBudget;
      return Out;
    }
    if (!Probe("solver.bruteforce")) {
      Out.V = Verdict::Unknown;
      Out.Stop = Reason();
      return Out;
    }
  }

  std::vector<size_t> Idx(Vars.size(), 0);
  uint64_t Evaluated = 0;
  for (;;) {
    if (++Evaluated > Opts.MaxAssignments) {
      Out.V = Verdict::Unknown;
      Out.Stop = StopReason::StepBudget;
      return Out;
    }
    // Shared-budget probe (deadline, cancel, memory, steps) every 64
    // evaluations; the old code polled only the deadline, every 1024.
    if ((Evaluated & 63) == 0 && !Probe("solver.bruteforce")) {
      Out.V = Verdict::Unknown;
      Out.Stop = Reason();
      return Out;
    }

    std::map<VarId, Word> Assignment;
    for (size_t I = 0; I < Vars.size(); ++I)
      Assignment[Vars[I]] = Choices[I][Idx[I]];
    if (evalSystem(Preds, Assignment)) {
      Out.V = Verdict::Sat;
      Out.Assignment = std::move(Assignment);
      return Out;
    }

    // Odometer step.
    size_t Pos = 0;
    while (Pos < Idx.size() && ++Idx[Pos] == Choices[Pos].size()) {
      Idx[Pos] = 0;
      ++Pos;
    }
    if (Pos == Idx.size())
      break;
  }
  Out.V = Verdict::Unsat;
  return Out;
}
