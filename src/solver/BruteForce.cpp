//===- solver/BruteForce.cpp - Enumeration reference solver ----------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "solver/BruteForce.h"

#include "base/Budget.h"

using namespace postr;
using namespace postr::solver;

BruteForceResult postr::solver::solveBruteForce(
    const std::map<VarId, automata::Nfa> &Langs,
    const std::vector<tagaut::PosPredicate> &Preds,
    const BruteForceOptions &Opts) {
  Budget Local(Budget::Limits{Opts.TimeoutMs, 0, 0, nullptr});
  Budget *Bud = Opts.Budget ? Opts.Budget : &Local;
  BruteForceResult Out;

  std::vector<VarId> Vars;
  std::vector<std::vector<Word>> Choices;
  for (const auto &[X, Nfa] : Langs) {
    Vars.push_back(X);
    Choices.push_back(Nfa.enumerateWords(Opts.MaxWordLen));
    Bud->chargeMem(Choices.back().size() * (sizeof(Word) + 8));
    if (Choices.back().empty()) {
      // The language has no word of length <= bound. If it is empty
      // outright the system is Unsat; otherwise the bound is too small
      // to say anything.
      Out.V = Nfa.isEmpty() ? Verdict::Unsat : Verdict::Unknown;
      if (Out.V == Verdict::Unknown)
        Out.Stop = StopReason::StepBudget;
      return Out;
    }
    if (!Bud->checkpoint("solver.bruteforce")) {
      Out.V = Verdict::Unknown;
      Out.Stop = Bud->reason();
      return Out;
    }
  }

  std::vector<size_t> Idx(Vars.size(), 0);
  uint64_t Evaluated = 0;
  for (;;) {
    if (++Evaluated > Opts.MaxAssignments) {
      Out.V = Verdict::Unknown;
      Out.Stop = StopReason::StepBudget;
      return Out;
    }
    // Shared-budget probe (deadline, cancel, memory, steps) every 64
    // evaluations; the old code polled only the deadline, every 1024.
    if ((Evaluated & 63) == 0 && !Bud->checkpoint("solver.bruteforce")) {
      Out.V = Verdict::Unknown;
      Out.Stop = Bud->reason();
      return Out;
    }

    std::map<VarId, Word> Assignment;
    for (size_t I = 0; I < Vars.size(); ++I)
      Assignment[Vars[I]] = Choices[I][Idx[I]];
    if (evalSystem(Preds, Assignment)) {
      Out.V = Verdict::Sat;
      Out.Assignment = std::move(Assignment);
      return Out;
    }

    // Odometer step.
    size_t Pos = 0;
    while (Pos < Idx.size() && ++Idx[Pos] == Choices[Pos].size()) {
      Idx[Pos] = 0;
      ++Pos;
    }
    if (Pos == Idx.size())
      break;
  }
  Out.V = Verdict::Unsat;
  return Out;
}
