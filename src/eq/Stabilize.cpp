//===- eq/Stabilize.cpp - Word equations to monadic decompositions --------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "eq/Stabilize.h"

#include <algorithm>
#include <deque>

using namespace postr;
using namespace postr::eq;
using automata::Nfa;

namespace {

/// The language of words leading from the initial states to \p Q.
Nfa prefixLanguage(const Nfa &A, uint32_t Q) {
  Nfa Out(A.alphabetSize());
  Out.addStates(A.numStates());
  for (uint32_t S = 0; S < A.numStates(); ++S)
    if (A.isInitial(S))
      Out.markInitial(S);
  Out.markFinal(Q);
  for (const automata::Transition &T : A.transitions())
    Out.addTransition(T.From, T.Sym, T.To);
  return Out.trim();
}

/// The language of words leading from \p Q to the final states.
Nfa suffixLanguage(const Nfa &A, uint32_t Q) {
  Nfa Out(A.alphabetSize());
  Out.addStates(A.numStates());
  Out.markInitial(Q);
  for (uint32_t S = 0; S < A.numStates(); ++S)
    if (A.isFinal(S))
      Out.markFinal(S);
  for (const automata::Transition &T : A.transitions())
    Out.addTransition(T.From, T.Sym, T.To);
  return Out.trim();
}

/// One branch of the search.
struct BranchState {
  std::map<VarId, Nfa> Langs;
  /// Terminal-variable replacement steps, applied lazily: X -> sequence.
  std::map<VarId, std::vector<VarId>> Replace;
  std::deque<WordEquation> Pending;
};

class Engine {
public:
  Engine(const std::map<VarId, Nfa> &Langs,
         const std::vector<WordEquation> &Equations, VarId &NextFresh,
         const StabilizeOptions &Opts)
      : NextFresh(NextFresh), Opts(Opts) {
    Initial.Langs = Langs;
    for (const WordEquation &E : Equations)
      Initial.Pending.push_back(E);
    for (const auto &[X, L] : Langs)
      InputVars.push_back(X);
  }

  StabilizeResult run() {
    // Legacy callers that only set TimeoutMs get a search-local budget;
    // the shared one (when supplied) governs instead and also reaches the
    // automata products inside explore().
    Budget Local(Budget::Limits{Opts.TimeoutMs, 0, 0, nullptr});
    Bud = Opts.Budget ? Opts.Budget : &Local;
    Work.push_back(std::move(Initial));
    while (!Work.empty()) {
      if (!Bud->checkpoint("eq.stabilize")) {
        Stopped = Bud->reason();
        FuelExhausted = true;
        break;
      }
      BranchState B = std::move(Work.back());
      Work.pop_back();
      explore(std::move(B));
    }
    StabilizeResult Out;
    Out.Disjuncts = std::move(Disjuncts);
    Out.Complete = !FuelExhausted;
    if (FuelExhausted && Stopped == StopReason::None)
      Stopped = Bud->exceeded() ? Bud->reason() : StopReason::StepBudget;
    Out.Stop = FuelExhausted ? Stopped : StopReason::None;
    return Out;
  }

private:
  /// Applies the branch's replacement map to a sequence (transitively).
  static std::vector<VarId> expand(const BranchState &B,
                                   const std::vector<VarId> &Seq) {
    std::vector<VarId> Out;
    std::vector<VarId> Stack(Seq.rbegin(), Seq.rend());
    while (!Stack.empty()) {
      VarId X = Stack.back();
      Stack.pop_back();
      auto It = B.Replace.find(X);
      if (It == B.Replace.end()) {
        Out.push_back(X);
        continue;
      }
      for (auto RIt = It->second.rbegin(); RIt != It->second.rend(); ++RIt)
        Stack.push_back(*RIt);
    }
    return Out;
  }

  /// Records X -> Seq in the branch (X becomes non-terminal).
  static void substitute(BranchState &B, VarId X, std::vector<VarId> Seq) {
    assert(!B.Replace.count(X) && "double substitution");
    B.Replace[X] = std::move(Seq);
    B.Langs.erase(X);
  }

  void explore(BranchState B) {
    if (Disjuncts.size() >= Opts.MaxDisjuncts) {
      FuelExhausted = true;
      return;
    }
    if (Fuel++ >= Opts.Fuel) {
      FuelExhausted = true;
      return;
    }

    // Normalize the head equation.
    while (!B.Pending.empty()) {
      WordEquation &E = B.Pending.front();
      E.Lhs = expand(B, E.Lhs);
      E.Rhs = expand(B, E.Rhs);
      // Strip the common prefix of syntactically equal variables.
      size_t Common = 0;
      while (Common < E.Lhs.size() && Common < E.Rhs.size() &&
             E.Lhs[Common] == E.Rhs[Common])
        ++Common;
      E.Lhs.erase(E.Lhs.begin(), E.Lhs.begin() + Common);
      E.Rhs.erase(E.Rhs.begin(), E.Rhs.begin() + Common);
      if (E.Lhs.empty() && E.Rhs.empty()) {
        B.Pending.pop_front();
        continue;
      }
      break;
    }
    if (B.Pending.empty()) {
      emitLeaf(std::move(B));
      return;
    }

    WordEquation E = B.Pending.front();
    B.Pending.pop_front();

    // One side empty: every variable on the other side becomes ε.
    if (E.Lhs.empty() || E.Rhs.empty()) {
      const std::vector<VarId> &Side = E.Lhs.empty() ? E.Rhs : E.Lhs;
      BranchState Next = B;
      for (VarId X : Side) {
        if (Next.Replace.count(X))
          continue; // may repeat in Side; expand() handles the rest
        if (!Next.Langs.at(X).accepts({}))
          return; // dead branch: ε not in the language
        substitute(Next, X, {});
      }
      Work.push_back(std::move(Next));
      return;
    }

    VarId X = E.Lhs.front();
    VarId Y = E.Rhs.front();
    assert(X != Y && "common prefix was stripped");
    const Nfa &AX = B.Langs.at(X);
    const Nfa &AY = B.Langs.at(Y);
    WordEquation Tail{{E.Lhs.begin() + 1, E.Lhs.end()},
                      {E.Rhs.begin() + 1, E.Rhs.end()}};

    // Case (iii): Y = X · Y′, split at every state q of A_Y. The q with
    // L(Y′) ∋ ε subsumes "X and Y are equal"; ε ∈ L(X) branches are
    // covered by case (i) below.
    for (uint32_t Q = 0; Q < AY.numStates(); ++Q) {
      Nfa XRefined = automata::intersect(AX, prefixLanguage(AY, Q), Bud);
      if (Bud->exceeded()) {
        FuelExhausted = true;
        return; // partial product; run() records the reason and stops
      }
      if (XRefined.isEmpty())
        continue;
      Nfa YRest = suffixLanguage(AY, Q);
      if (YRest.isEmpty())
        continue;
      BranchState Next = B;
      Next.Langs[X] = XRefined.trim();
      VarId Y2 = NextFresh++;
      Next.Langs[Y2] = YRest;
      substitute(Next, Y, {X, Y2});
      WordEquation Rec = Tail;
      Rec.Rhs.insert(Rec.Rhs.begin(), Y2);
      Next.Pending.push_front(Rec);
      Work.push_back(std::move(Next));
    }
    // Case (iv): X = Y · X′, symmetric.
    for (uint32_t Q = 0; Q < AX.numStates(); ++Q) {
      Nfa YRefined = automata::intersect(AY, prefixLanguage(AX, Q), Bud);
      if (Bud->exceeded()) {
        FuelExhausted = true;
        return;
      }
      if (YRefined.isEmpty())
        continue;
      Nfa XRest = suffixLanguage(AX, Q);
      if (XRest.isEmpty())
        continue;
      BranchState Next = B;
      Next.Langs[Y] = YRefined.trim();
      VarId X2 = NextFresh++;
      Next.Langs[X2] = XRest;
      substitute(Next, X, {Y, X2});
      WordEquation Rec = Tail;
      Rec.Lhs.insert(Rec.Lhs.begin(), X2);
      Next.Pending.push_front(Rec);
      Work.push_back(std::move(Next));
    }
    // Case (i): X := ε.
    if (AX.accepts({})) {
      BranchState Next = B;
      substitute(Next, X, {});
      Next.Pending.push_front(E); // re-normalized on the next visit
      Work.push_back(std::move(Next));
    }
    // Case (ii): Y := ε.
    if (AY.accepts({})) {
      BranchState Next = B;
      substitute(Next, Y, {});
      Next.Pending.push_front(E);
      Work.push_back(std::move(Next));
    }
  }

  void emitLeaf(BranchState B) {
    Decomposition D;
    D.Langs = std::move(B.Langs);
    for (VarId X : InputVars)
      D.Subst[X] = expand(B, {X});
    Disjuncts.push_back(std::move(D));
  }

  BranchState Initial;
  /// Explicit DFS worklist: branch states are deep (maps of NFAs), so
  /// recursing per state would overflow the stack long before the fuel
  /// bound trips.
  std::vector<BranchState> Work;
  std::vector<VarId> InputVars;
  VarId &NextFresh;
  StabilizeOptions Opts;
  Budget *Bud = nullptr;
  std::vector<Decomposition> Disjuncts;
  uint64_t Fuel = 0;
  bool FuelExhausted = false;
  StopReason Stopped = StopReason::None;
};

} // namespace

StabilizeResult postr::eq::stabilize(
    const std::map<VarId, automata::Nfa> &Langs,
    const std::vector<WordEquation> &Equations, VarId &NextFresh,
    const StabilizeOptions &Opts) {
  // Dead on arrival if any language is empty.
  for (const auto &[X, L] : Langs) {
    (void)X;
    if (L.isEmpty())
      return {{}, true};
  }
  Engine E(Langs, Equations, NextFresh, Opts);
  return E.run();
}
