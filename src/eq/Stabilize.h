//===- eq/Stabilize.h - Word equations to monadic decompositions -*- C++ -*-===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The substrate the paper's procedure runs after (Sec. 3): solving the
/// word-equation part E ∧ R into a *disjunction of monadic
/// decompositions* — systems R′ of refined regular constraints over
/// fresh variables plus a substitution map, such that *any* choice of
/// words from R′ solves E. The paper uses the stabilization procedure of
/// [24]; we implement the equivalent Nielsen-style transformation with
/// regular-language refinement:
///
///   X·α = Y·β  case-splits into  (i) X := ε, (ii) Y := ε,
///   (iii) Y = X·Y′ with L(X) ∩ pre_q(L(Y)) and L(Y′) = post_q(L(Y))
///   for every split state q of A_Y, and (iv) symmetrically X = Y·X′ —
///
/// propagating substitutions through the remaining equations. Leaves with
/// no equations left are monadic decompositions: every original variable
/// maps to a concatenation of terminal variables whose languages can be
/// chosen independently. Like all word-equation procedures in practical
/// solvers the search is fuel-bounded; exhausting fuel on non-chain-free
/// systems yields `Complete = false` (the paper reports the same OOR
/// behaviour for Z3-Noodler's stabilization, Sec. 8.2).
///
//===----------------------------------------------------------------------===//

#ifndef POSTR_EQ_STABILIZE_H
#define POSTR_EQ_STABILIZE_H

#include "automata/Nfa.h"
#include "base/Base.h"
#include "base/Budget.h"

#include <map>
#include <vector>

namespace postr {
namespace eq {

/// One word equation over variable-occurrence sequences (literals are
/// represented by singleton-language variables, Sec. 2 footnote 3).
struct WordEquation {
  std::vector<VarId> Lhs, Rhs;
};

/// One disjunct of the stabilization result.
struct Decomposition {
  /// Refined languages of the terminal variables.
  std::map<VarId, automata::Nfa> Langs;
  /// Original variable -> concatenation of terminal variables. Every
  /// variable of the input appears (identity [x] if untouched). An empty
  /// vector means the variable was forced to ε.
  std::map<VarId, std::vector<VarId>> Subst;
};

struct StabilizeOptions {
  /// Max explored branch nodes before giving up on remaining branches.
  uint64_t Fuel = 20000;
  /// Max collected disjuncts.
  uint32_t MaxDisjuncts = 256;
  /// Optional wall-clock deadline in milliseconds (0 = none). Branch
  /// nodes vary wildly in cost (each does automata products), so callers
  /// with latency budgets must bound time, not only fuel.
  uint64_t TimeoutMs = 0;
  /// Optional shared resource budget. When set it is probed at every
  /// branch node and threaded into the automata products, and TimeoutMs
  /// is ignored (the budget's own deadline governs).
  postr::Budget *Budget = nullptr;
};

struct StabilizeResult {
  std::vector<Decomposition> Disjuncts;
  /// False if fuel ran out and branches were dropped: an empty disjunct
  /// list then means Unknown rather than Unsat.
  bool Complete = true;
  /// Why the search stopped early: None when Complete, the budget's trip
  /// reason when a shared resource ran out, or StepBudget when only the
  /// internal fuel/disjunct caps were hit.
  StopReason Stop = StopReason::None;
};

/// Solves E ∧ R into monadic decompositions. \p NextFresh supplies fresh
/// variable ids (in/out).
StabilizeResult stabilize(const std::map<VarId, automata::Nfa> &Langs,
                          const std::vector<WordEquation> &Equations,
                          VarId &NextFresh,
                          const StabilizeOptions &Opts = {});

} // namespace eq
} // namespace postr

#endif // POSTR_EQ_STABILIZE_H
