//===- smtlib/Reader.cpp - SMT-LIB subset reader ----------------------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "smtlib/Reader.h"

#include "regex/Regex.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

using namespace postr;
using namespace postr::smtlib;
using strings::Assertion;
using strings::AssertKind;
using strings::IntTerm;
using strings::Problem;
using strings::StrElem;
using strings::StrSeq;

namespace {

/// Empty success payload for fallible void-returning steps.
struct Unit {};

//===----------------------------------------------------------------------===
// S-expressions
//===----------------------------------------------------------------------===

struct Sexp {
  enum Kind { List, Atom, Str } K = Atom;
  std::string Text;              ///< Atom spelling / Str contents
  std::vector<Sexp> Items;       ///< List children
  uint32_t Line = 1, Col = 1;

  bool isAtom(const char *S) const { return K == Atom && Text == S; }
  bool isList(const char *Head) const {
    return K == List && !Items.empty() && Items.front().isAtom(Head);
  }
};

class Lexer {
public:
  explicit Lexer(std::string_view Text) : Text(Text) {}

  Result<std::vector<Sexp>> parseAll() {
    std::vector<Sexp> Out;
    for (;;) {
      skipWs();
      if (Pos >= Text.size())
        return Result<std::vector<Sexp>>::success(std::move(Out));
      Result<Sexp> S = parseOne(0);
      if (!S)
        return Result<std::vector<Sexp>>::failure(S.error());
      Out.push_back(S.take());
    }
  }

private:
  void skipWs() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == ';') {
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
      } else if (C == '\n') {
        ++Line;
        Col = 1;
        ++Pos;
        continue;
      } else if (C == ' ' || C == '\t' || C == '\r') {
        // fall through to the advance below
      } else {
        return;
      }
      ++Pos;
      ++Col;
    }
  }

  std::string where() const {
    return "line " + std::to_string(Line) + " col " + std::to_string(Col);
  }

  /// Hard bound on list nesting: parseOne recurses per '(' and a
  /// hostile input of a few hundred kilobytes of open parens would
  /// otherwise land in the C++ stack, not a diagnostic.
  static constexpr uint32_t MaxDepth = 200;

  Result<Sexp> parseOne(uint32_t Depth) {
    skipWs();
    if (Pos >= Text.size())
      return Result<Sexp>::failure("unexpected end of input at " + where());
    Sexp S;
    S.Line = Line;
    S.Col = Col;
    char C = Text[Pos];
    if (C == '(') {
      if (Depth >= MaxDepth)
        return Result<Sexp>::failure(
            "expression nesting exceeds depth " +
            std::to_string(MaxDepth) + " at " + where());
      advance();
      S.K = Sexp::List;
      for (;;) {
        skipWs();
        if (Pos >= Text.size())
          return Result<Sexp>::failure("unclosed '(' at " + where());
        if (Text[Pos] == ')') {
          advance();
          return Result<Sexp>::success(std::move(S));
        }
        Result<Sexp> Child = parseOne(Depth + 1);
        if (!Child)
          return Child;
        S.Items.push_back(Child.take());
      }
    }
    if (C == ')')
      return Result<Sexp>::failure("stray ')' at " + where());
    if (C == '"') {
      advance();
      S.K = Sexp::Str;
      while (Pos < Text.size()) {
        char D = Text[Pos];
        advance();
        if (D == '"') {
          // SMT-LIB escapes a quote by doubling it.
          if (Pos < Text.size() && Text[Pos] == '"') {
            S.Text.push_back('"');
            advance();
            continue;
          }
          return Result<Sexp>::success(std::move(S));
        }
        S.Text.push_back(D);
      }
      return Result<Sexp>::failure("unterminated string at " + where());
    }
    S.K = Sexp::Atom;
    while (Pos < Text.size()) {
      char D = Text[Pos];
      if (D == '(' || D == ')' || D == '"' || D == ';' || D == ' ' ||
          D == '\t' || D == '\n' || D == '\r')
        break;
      S.Text.push_back(D);
      advance();
    }
    if (S.Text.empty())
      return Result<Sexp>::failure("empty token at " + where());
    return Result<Sexp>::success(std::move(S));
  }

  void advance() {
    if (Text[Pos] == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    ++Pos;
  }

  std::string_view Text;
  size_t Pos = 0;
  uint32_t Line = 1, Col = 1;
};

//===----------------------------------------------------------------------===
// Term translation
//===----------------------------------------------------------------------===

using regex::Node;
using regex::NodeKind;
using regex::NodePtr;

class Translator {
public:
  explicit Translator(Problem &P) : P(P) {}

  Result<Unit> command(const Sexp &S) {
    if (S.K != Sexp::List || S.Items.empty())
      return err(S, "expected a command list");
    const std::string &Head = S.Items.front().Text;
    if (Head == "set-logic" || Head == "set-info" || Head == "check-sat" ||
        Head == "exit" || Head == "get-model")
      return Result<Unit>::success(Unit{});
    if (Head == "set-option") {
      // `(set-option :timeout N)` (milliseconds, the common solver
      // extension) is recorded on the problem so front-ends can bound
      // the solve; other options are accepted and ignored. A malformed
      // timeout value is a hard error — silently solving unbounded when
      // the script asked for a limit is the wrong failure mode.
      if (S.Items.size() >= 2 && S.Items[1].isAtom(":timeout")) {
        if (S.Items.size() != 3)
          return err(S, "set-option :timeout takes one numeral");
        Result<int64_t> N = numeral(S.Items[2]);
        if (!N)
          return Result<Unit>::failure(N.error());
        if (*N < 0)
          return err(S.Items[2], "negative :timeout");
        P.setTimeoutMs(static_cast<uint64_t>(*N));
      }
      return Result<Unit>::success(Unit{});
    }
    if (Head == "reset") {
      // SMT-LIB `(reset)`: back to the initial state — declarations,
      // assertions, options, and recorded info requests are all
      // discarded; the commands after it describe a fresh problem.
      if (S.Items.size() != 1)
        return err(S, "reset takes no arguments");
      P = strings::Problem();
      return Result<Unit>::success(Unit{});
    }
    if (Head == "get-info") {
      // `(get-info :reason-unknown)` is recorded on the problem so the
      // front-end answers it in-protocol after check-sat; other info
      // queries are accepted and ignored like set-info.
      if (S.Items.size() == 2 && S.Items[1].isAtom(":reason-unknown"))
        P.requestReasonUnknown();
      return Result<Unit>::success(Unit{});
    }
    if (Head == "declare-fun" || Head == "declare-const")
      return declare(S);
    if (Head == "assert") {
      if (S.Items.size() != 2)
        return err(S, "assert takes one argument");
      return literal(S.Items[1], /*Positive=*/true);
    }
    return err(S, "unsupported command '" + Head + "'");
  }

private:
  static std::string at(const Sexp &S) {
    return " (line " + std::to_string(S.Line) + " col " +
           std::to_string(S.Col) + ")";
  }

  /// Every diagnostic carries the offending s-expression's location.
  template <typename T>
  static Result<T> errT(const Sexp &S, const std::string &Msg) {
    return Result<T>::failure(Msg + at(S));
  }

  static Result<Unit> err(const Sexp &S, const std::string &Msg) {
    return errT<Unit>(S, Msg);
  }

  /// Checked numeral: optional leading '-', then 1..18 decimal digits
  /// (so the value always fits int64_t without overflow UB). atoll's
  /// silent 0-on-garbage and undefined overflow are exactly the bugs a
  /// reader fuzzer finds first.
  static Result<int64_t> numeral(const Sexp &S) {
    const std::string &T = S.Text;
    size_t I = 0;
    bool Neg = false;
    if (S.K == Sexp::Atom && I < T.size() && T[I] == '-') {
      Neg = true;
      ++I;
    }
    size_t Digits = T.size() - I;
    if (S.K != Sexp::Atom || Digits == 0 || Digits > 18)
      return errT<int64_t>(S, "malformed numeral '" + T + "'");
    int64_t V = 0;
    for (; I < T.size(); ++I) {
      if (!std::isdigit(static_cast<unsigned char>(T[I])))
        return errT<int64_t>(S, "malformed numeral '" + T + "'");
      V = V * 10 + (T[I] - '0');
    }
    return Result<int64_t>::success(Neg ? -V : V);
  }

  Result<Unit> declare(const Sexp &S) {
    // (declare-fun x () String) / (declare-const x String)
    bool IsFun = S.Items.front().Text == "declare-fun";
    size_t SortIdx = IsFun ? 3 : 2;
    if (S.Items.size() != SortIdx + 1 || S.Items[1].K != Sexp::Atom)
      return err(S, "malformed declaration");
    if (IsFun &&
        (S.Items[2].K != Sexp::List || !S.Items[2].Items.empty()))
      return err(S, "only zero-arity declare-fun is supported");
    const Sexp &Sort = S.Items[SortIdx];
    const std::string &Name = S.Items[1].Text;
    if (Sort.isAtom("String")) {
      if (P.hasIntVar(Name))
        return err(S, "'" + Name + "' redeclared with a different sort");
      P.strVar(Name);
      return Result<Unit>::success(Unit{});
    }
    if (Sort.isAtom("Int")) {
      if (P.hasStrVar(Name))
        return err(S, "'" + Name + "' redeclared with a different sort");
      P.intVar(Name);
      return Result<Unit>::success(Unit{});
    }
    return err(Sort, "unsupported sort");
  }

  Result<Unit> literal(const Sexp &S, bool Positive) {
    if (S.isList("not")) {
      if (S.Items.size() != 2)
        return err(S, "not takes one argument");
      return literal(S.Items[1], !Positive);
    }
    if (S.isList("and")) {
      if (!Positive)
        return err(S, "negated conjunctions are outside the fragment");
      for (size_t I = 1; I < S.Items.size(); ++I) {
        Result<Unit> R = literal(S.Items[I], true);
        if (!R)
          return R;
      }
      return Result<Unit>::success(Unit{});
    }
    if (S.isAtom("true") && Positive)
      return Result<Unit>::success(Unit{});
    return atom(S, Positive);
  }

  Result<Unit> atom(const Sexp &S, bool Positive) {
    if (S.K != Sexp::List || S.Items.empty())
      return err(S, "expected an atom");
    const std::string &Head = S.Items.front().Text;

    if (Head == "str.in_re" || Head == "str.in.re") {
      if (S.Items.size() != 3)
        return err(S, "str.in_re takes two arguments");
      Result<StrSeq> T = strTerm(S.Items[1]);
      if (!T)
        return Result<Unit>::failure(T.error());
      if (T->size() != 1 || !(*T)[0].IsVar)
        return err(S, "str.in_re is supported on variables only");
      Result<NodePtr> Re = regexTerm(S.Items[2]);
      if (!Re)
        return Result<Unit>::failure(Re.error());
      NodePtr Node = Re.take();
      if (!Positive)
        return err(S, "negated str.in_re is not supported yet");
      Assertion A;
      A.Kind = AssertKind::InRe;
      A.Lhs = {(*T)[0]};
      A.Re = std::shared_ptr<regex::Node>(Node.release());
      P.add(std::move(A));
      return Result<Unit>::success(Unit{});
    }

    if (Head == "=") {
      if (S.Items.size() != 3)
        return err(S, "= takes two arguments");
      // String or integer equality, by shape.
      if (looksInt(S.Items[1]) || looksInt(S.Items[2]))
        return intAtom(S, Positive ? lia::Cmp::Eq : lia::Cmp::Ne);
      // (= x (str.at t i)) forms route to StrAt.
      if (S.Items[2].isList("str.at") || S.Items[1].isList("str.at")) {
        const Sexp &At =
            S.Items[2].isList("str.at") ? S.Items[2] : S.Items[1];
        const Sexp &Other =
            S.Items[2].isList("str.at") ? S.Items[1] : S.Items[2];
        if (At.Items.size() != 3)
          return err(At, "str.at takes two arguments");
        Result<StrSeq> X = strTerm(Other);
        Result<StrSeq> Hay = strTerm(At.Items[1]);
        Result<IntTerm> Pos = intTerm(At.Items[2]);
        if (!X)
          return Result<Unit>::failure(X.error());
        if (!Hay)
          return Result<Unit>::failure(Hay.error());
        if (!Pos)
          return Result<Unit>::failure(Pos.error());
        if (X->size() != 1)
          return err(Other, "str.at left side must be one element");
        P.assertStrAt(Positive, (*X)[0], Hay.take(), Pos.take());
        return Result<Unit>::success(Unit{});
      }
      Result<StrSeq> L = strTerm(S.Items[1]);
      Result<StrSeq> R = strTerm(S.Items[2]);
      if (!L)
        return Result<Unit>::failure(L.error());
      if (!R)
        return Result<Unit>::failure(R.error());
      if (Positive)
        P.assertWordEq(L.take(), R.take());
      else
        P.assertDiseq(L.take(), R.take());
      return Result<Unit>::success(Unit{});
    }

    if (Head == "str.prefixof" || Head == "str.suffixof" ||
        Head == "str.contains") {
      if (S.Items.size() != 3)
        return err(S, Head + " takes two arguments");
      // SMT-LIB: (str.contains haystack needle); prefix/suffix are
      // (str.prefixof needle haystack).
      bool IsContains = Head == "str.contains";
      Result<StrSeq> A = strTerm(S.Items[IsContains ? 2 : 1]);
      Result<StrSeq> B = strTerm(S.Items[IsContains ? 1 : 2]);
      if (!A)
        return Result<Unit>::failure(A.error());
      if (!B)
        return Result<Unit>::failure(B.error());
      AssertKind K;
      if (Head == "str.prefixof")
        K = Positive ? AssertKind::Prefixof : AssertKind::NotPrefixof;
      else if (Head == "str.suffixof")
        K = Positive ? AssertKind::Suffixof : AssertKind::NotSuffixof;
      else
        K = Positive ? AssertKind::Contains : AssertKind::NotContains;
      P.assertPred(K, A.take(), B.take());
      return Result<Unit>::success(Unit{});
    }

    if (Head == "<=" || Head == "<" || Head == ">=" || Head == ">") {
      lia::Cmp Op = Head == "<="  ? lia::Cmp::Le
                    : Head == "<" ? lia::Cmp::Lt
                    : Head == ">=" ? lia::Cmp::Ge
                                   : lia::Cmp::Gt;
      if (!Positive) {
        // ¬(a <= b) == a > b, etc.
        Op = Op == lia::Cmp::Le   ? lia::Cmp::Gt
             : Op == lia::Cmp::Lt ? lia::Cmp::Ge
             : Op == lia::Cmp::Ge ? lia::Cmp::Lt
                                  : lia::Cmp::Le;
      }
      return intAtom(S, Op);
    }

    return err(S, "unsupported atom '" + Head + "'");
  }

  Result<Unit> intAtom(const Sexp &S, lia::Cmp Op) {
    Result<IntTerm> L = intTerm(S.Items[1]);
    Result<IntTerm> R = intTerm(S.Items[2]);
    if (!L)
      return Result<Unit>::failure(L.error());
    if (!R)
      return Result<Unit>::failure(R.error());
    P.assertIntAtom(L.take(), Op, R.take());
    return Result<Unit>::success(Unit{});
  }

  bool looksInt(const Sexp &S) {
    if (S.K == Sexp::Atom) {
      if (!S.Text.empty() &&
          (std::isdigit(static_cast<unsigned char>(S.Text[0])) ||
           S.Text[0] == '-'))
        return true;
      return P.hasIntVar(S.Text);
    }
    if (S.K == Sexp::List && !S.Items.empty()) {
      const std::string &H = S.Items.front().Text;
      return H == "str.len" || H == "+" || H == "-" || H == "*";
    }
    return false;
  }

  Result<StrSeq> strTerm(const Sexp &S) {
    StrSeq Out;
    Result<Unit> R = strTermInto(S, Out);
    if (!R)
      return Result<StrSeq>::failure(R.error());
    return Result<StrSeq>::success(std::move(Out));
  }

  Result<Unit> strTermInto(const Sexp &S, StrSeq &Out) {
    if (S.K == Sexp::Str) {
      Out.push_back(StrElem::lit(S.Text));
      return Result<Unit>::success(Unit{});
    }
    if (S.K == Sexp::Atom) {
      if (!P.hasStrVar(S.Text))
        return err(S, "undeclared string variable '" + S.Text + "'");
      Out.push_back(StrElem::var(P.strVar(S.Text)));
      return Result<Unit>::success(Unit{});
    }
    if (S.isList("str.++")) {
      for (size_t I = 1; I < S.Items.size(); ++I) {
        Result<Unit> R = strTermInto(S.Items[I], Out);
        if (!R)
          return R;
      }
      return Result<Unit>::success(Unit{});
    }
    return err(S, "unsupported string term");
  }

  Result<IntTerm> intTerm(const Sexp &S) {
    if (S.K == Sexp::Atom) {
      if (!S.Text.empty() &&
          (std::isdigit(static_cast<unsigned char>(S.Text[0])) ||
           (S.Text[0] == '-' && S.Text.size() > 1))) {
        Result<int64_t> N = numeral(S);
        if (!N)
          return Result<IntTerm>::failure(N.error());
        return Result<IntTerm>::success(IntTerm::constant(*N));
      }
      if (P.hasIntVar(S.Text))
        return Result<IntTerm>::success(IntTerm::intVar(P.intVar(S.Text)));
      return errT<IntTerm>(S, "undeclared integer variable '" + S.Text +
                                  "'");
    }
    if (S.isList("str.len")) {
      if (S.Items.size() != 2)
        return errT<IntTerm>(S, "str.len takes one argument");
      Result<StrSeq> T = strTerm(S.Items[1]);
      if (!T)
        return Result<IntTerm>::failure(T.error());
      IntTerm Out;
      for (const StrElem &E : *T) {
        if (E.IsVar)
          Out = Out + IntTerm::lenOf(E.Var);
        else
          Out = Out + IntTerm::constant(
                          static_cast<int64_t>(E.Lit.size()));
      }
      return Result<IntTerm>::success(std::move(Out));
    }
    if (S.isList("+") || S.isList("-")) {
      bool Minus = S.Items.front().Text == "-";
      if (S.Items.size() < 2)
        return errT<IntTerm>(S, "arity error in +/-");
      Result<IntTerm> Acc = intTerm(S.Items[1]);
      if (!Acc)
        return Acc;
      IntTerm Out = Acc.take();
      if (Minus && S.Items.size() == 2)
        return Result<IntTerm>::success(Out * -1);
      for (size_t I = 2; I < S.Items.size(); ++I) {
        Result<IntTerm> Next = intTerm(S.Items[I]);
        if (!Next)
          return Next;
        Out = Minus ? Out - Next.take() : Out + Next.take();
      }
      return Result<IntTerm>::success(std::move(Out));
    }
    if (S.isList("*")) {
      if (S.Items.size() != 3)
        return errT<IntTerm>(S, "* takes two arguments");
      // One side must be a numeral.
      const Sexp *Num = nullptr, *Term = nullptr;
      for (size_t I = 1; I <= 2; ++I) {
        const Sexp &C = S.Items[I];
        if (C.K == Sexp::Atom && !C.Text.empty() &&
            (std::isdigit(static_cast<unsigned char>(C.Text[0])) ||
             C.Text[0] == '-'))
          Num = &C;
        else
          Term = &C;
      }
      if (!Num || !Term)
        return errT<IntTerm>(S, "* needs one numeral factor");
      Result<int64_t> Factor = numeral(*Num);
      if (!Factor)
        return Result<IntTerm>::failure(Factor.error());
      Result<IntTerm> T = intTerm(*Term);
      if (!T)
        return T;
      return Result<IntTerm>::success(T.take() * *Factor);
    }
    return errT<IntTerm>(S, "unsupported integer term");
  }

  //===--------------------------------------------------------------------===
  // Regexes
  //===--------------------------------------------------------------------===

  static NodePtr mk(NodeKind K) { return std::make_unique<Node>(K); }

  Result<NodePtr> regexTerm(const Sexp &S) {
    if (S.isList("str.to_re") || S.isList("str.to.re")) {
      if (S.Items.size() != 2 || S.Items[1].K != Sexp::Str)
        return errT<NodePtr>(S, "str.to_re takes a string literal");
      NodePtr N = mk(NodeKind::Concat);
      for (char C : S.Items[1].Text) {
        NodePtr Ch = mk(NodeKind::Chars);
        Ch->Chars.push_back(C);
        N->Children.push_back(std::move(Ch));
      }
      if (N->Children.empty())
        return Result<NodePtr>::success(mk(NodeKind::EpsilonK));
      return Result<NodePtr>::success(std::move(N));
    }
    if (S.isAtom("re.allchar"))
      return Result<NodePtr>::success(mk(NodeKind::AnyChar));
    if (S.isAtom("re.all")) {
      NodePtr Star = mk(NodeKind::Star);
      Star->Children.push_back(mk(NodeKind::AnyChar));
      return Result<NodePtr>::success(std::move(Star));
    }
    if (S.isAtom("re.none"))
      return Result<NodePtr>::success(mk(NodeKind::Empty));
    if (S.isList("re.range")) {
      if (S.Items.size() != 3 || S.Items[1].K != Sexp::Str ||
          S.Items[2].K != Sexp::Str || S.Items[1].Text.size() != 1 ||
          S.Items[2].Text.size() != 1)
        return errT<NodePtr>(S,
                             "re.range takes two single-character strings");
      // SMT-LIB: an inverted range denotes the empty language. An empty
      // Chars node means that here, but Empty says it explicitly.
      if (S.Items[1].Text[0] > S.Items[2].Text[0])
        return Result<NodePtr>::success(mk(NodeKind::Empty));
      NodePtr N = mk(NodeKind::Chars);
      for (char C = S.Items[1].Text[0]; C <= S.Items[2].Text[0]; ++C)
        N->Chars.push_back(C);
      return Result<NodePtr>::success(std::move(N));
    }
    auto Nary = [&](NodeKind K) -> Result<NodePtr> {
      NodePtr N = mk(K);
      for (size_t I = 1; I < S.Items.size(); ++I) {
        Result<NodePtr> C = regexTerm(S.Items[I]);
        if (!C)
          return C;
        N->Children.push_back(C.take());
      }
      return Result<NodePtr>::success(std::move(N));
    };
    if (S.isList("re.++"))
      return Nary(NodeKind::Concat);
    if (S.isList("re.union"))
      return Nary(NodeKind::Union);
    auto Unary = [&](NodeKind K) -> Result<NodePtr> {
      if (S.Items.size() != 2)
        return errT<NodePtr>(S, "unary regex arity error");
      Result<NodePtr> C = regexTerm(S.Items[1]);
      if (!C)
        return C;
      NodePtr N = mk(K);
      N->Children.push_back(C.take());
      return Result<NodePtr>::success(std::move(N));
    };
    if (S.isList("re.*"))
      return Unary(NodeKind::Star);
    if (S.isList("re.+"))
      return Unary(NodeKind::Plus);
    if (S.isList("re.opt"))
      return Unary(NodeKind::Optional);
    if (S.isList("re.loop")) {
      if (S.Items.size() != 4)
        return errT<NodePtr>(S, "re.loop takes r n m");
      Result<NodePtr> C = regexTerm(S.Items[1]);
      if (!C)
        return C;
      Result<int64_t> Min = numeral(S.Items[2]);
      if (!Min)
        return Result<NodePtr>::failure(Min.error());
      Result<int64_t> Max = numeral(S.Items[3]);
      if (!Max)
        return Result<NodePtr>::failure(Max.error());
      // Downstream unrollers allocate O(Max) structure per loop; a
      // hostile bound would turn one token into gigabytes.
      if (*Min < 0 || *Max < *Min || *Max > 1024)
        return errT<NodePtr>(
            S, "re.loop bounds must satisfy 0 <= n <= m <= 1024");
      NodePtr N = mk(NodeKind::Repeat);
      N->Children.push_back(C.take());
      N->Min = static_cast<int32_t>(*Min);
      N->Max = static_cast<int32_t>(*Max);
      return Result<NodePtr>::success(std::move(N));
    }
    return errT<NodePtr>(S, "unsupported regex term");
  }

  Problem &P;
};

} // namespace

Result<Problem> postr::smtlib::parseString(std::string_view Text) {
  Lexer Lex(Text);
  Result<std::vector<Sexp>> Cmds = Lex.parseAll();
  if (!Cmds)
    return Result<Problem>::failure(Cmds.error());
  Problem P;
  Translator T(P);
  bool SawExit = false;
  for (const Sexp &S : *Cmds) {
    if (SawExit)
      return Result<Problem>::failure(
          "trailing input after (exit) (line " + std::to_string(S.Line) +
          " col " + std::to_string(S.Col) + ")");
    Result<Unit> R = T.command(S);
    if (!R)
      return Result<Problem>::failure(R.error());
    if (S.isList("exit"))
      SawExit = true;
  }
  return Result<Problem>::success(std::move(P));
}

Result<Problem> postr::smtlib::parseFile(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return Result<Problem>::failure("cannot open '" + Path + "'");
  std::string Text;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, N);
  std::fclose(F);
  return parseString(Text);
}
