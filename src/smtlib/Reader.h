//===- smtlib/Reader.h - SMT-LIB 2.6 strings subset reader -------*- C++ -*-===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reads the QF_S/QF_SLIA subset the paper's benchmark formulae use
/// (symbolic-execution output: conjunctions of literals):
///
///   (set-logic …) (set-info …) (set-option …)     — ignored, except:
///   (set-option :timeout N) — recorded on the problem in milliseconds
///     (Problem::timeoutMs) so front-ends — one-shot smtlib_cli and the
///     postr-serve daemon alike — bound the solve the same way
///   (reset) — discards all state (declarations, assertions, options);
///     subsequent commands describe a fresh problem, which lets daemon
///     sessions be scripted end-to-end from plain SMT-LIB
///   (declare-fun x () String) / (declare-const x String|Int)
///   (assert <literal>) (check-sat) (exit)
///   (get-info :reason-unknown) — recorded on the problem
///     (Problem::wantsReasonUnknown) so front-ends answer it after
///     check-sat; other (get-info …) queries are accepted and ignored
///
/// Literals: (not …) over the atoms; (and …) conjunctions;
/// atoms: =, str.prefixof, str.suffixof, str.contains, str.in_re,
/// <=, <, >=, >; string terms: variables, "literals", (str.++ …),
/// (str.at t i); integer terms: variables, numerals, (str.len t),
/// (+ … …), (- … …), (* k t); regexes: (str.to_re "w"), re.allchar,
/// re.all, re.none, (re.range "a" "z"), (re.++ …), (re.union …),
/// (re.* r), (re.+ r), (re.opt r), (re.loop r n m).
///
/// Disjunctions other than the negated-atom forms are rejected — the
/// paper's procedure sits below the DPLL(T) layer and receives
/// conjunctions of literals (Sec. 2).
///
//===----------------------------------------------------------------------===//

#ifndef POSTR_SMTLIB_READER_H
#define POSTR_SMTLIB_READER_H

#include "base/Base.h"
#include "strings/Ast.h"

#include <string_view>

namespace postr {
namespace smtlib {

/// Parses SMT-LIB text into a problem. Errors carry line/column info.
Result<strings::Problem> parseString(std::string_view Text);

/// Reads and parses a file.
Result<strings::Problem> parseFile(const std::string &Path);

} // namespace smtlib
} // namespace postr

#endif // POSTR_SMTLIB_READER_H
