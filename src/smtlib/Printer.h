//===- smtlib/Printer.h - SMT-LIB subset printer -----------------*- C++ -*-===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a `strings::Problem` back to SMT-LIB 2.6 concrete syntax, the
/// inverse of `smtlib/Reader.h` on the supported fragment. The fuzz
/// shrinker uses it to emit standalone `.smt2` repro files, and the
/// round-trip property test pins print → parse → print as a fixpoint:
/// the Reader re-sugars some forms (`str.to_re "ab"` parses to a Concat
/// of Chars nodes), so byte equality holds from the first re-print on,
/// not between the AST and its first print.
///
//===----------------------------------------------------------------------===//

#ifndef POSTR_SMTLIB_PRINTER_H
#define POSTR_SMTLIB_PRINTER_H

#include "strings/Ast.h"

#include <string>

namespace postr {
namespace smtlib {

/// Renders \p P as a complete SMT-LIB script: `(set-logic QF_SLIA)`,
/// declarations in id order, one `(assert ...)` per assertion, then
/// `(check-sat)` and `(exit)`. The output parses back through
/// `parseString` into a structurally equivalent problem (same variables,
/// same assertion kinds in the same order, equivalent terms).
std::string printProblem(const strings::Problem &P);

/// Renders one regex AST in SMT-LIB regex syntax (`str.to_re`, `re.++`,
/// `re.union`, `re.range`, `re.loop`, ...). Supports every node shape
/// the Reader or the fuzz generator produces; negated character classes
/// (which neither produces) assert.
std::string printRegex(const regex::Node &N);

} // namespace smtlib
} // namespace postr

#endif // POSTR_SMTLIB_PRINTER_H
