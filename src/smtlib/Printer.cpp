//===- smtlib/Printer.cpp - SMT-LIB subset printer --------------------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "smtlib/Printer.h"

#include <algorithm>
#include <cassert>

using namespace postr;
using namespace postr::smtlib;
using strings::Assertion;
using strings::AssertKind;
using strings::IntTerm;
using strings::Problem;
using strings::StrElem;
using strings::StrSeq;

namespace {

/// SMT-LIB string literal: quotes are escaped by doubling, every other
/// byte passes through verbatim (the lexer reads raw bytes).
std::string quoted(const std::string &S) {
  std::string Out = "\"";
  for (char C : S) {
    Out.push_back(C);
    if (C == '"')
      Out.push_back('"');
  }
  Out.push_back('"');
  return Out;
}

bool isSingleChar(const regex::Node &N) {
  return N.Kind == regex::NodeKind::Chars && !N.Negated &&
         N.Chars.size() == 1;
}

std::string elemStr(const StrElem &E, const Problem &P) {
  return E.IsVar ? P.strVarName(E.Var) : quoted(E.Lit);
}

std::string seqStr(const StrSeq &S, const Problem &P) {
  if (S.empty())
    return "\"\"";
  if (S.size() == 1)
    return elemStr(S[0], P);
  std::string Out = "(str.++";
  for (const StrElem &E : S)
    Out += " " + elemStr(E, P);
  return Out + ")";
}

std::string intTermStr(const IntTerm &T, const Problem &P) {
  std::vector<std::string> Parts;
  for (auto [V, C] : T.IntVars) {
    const std::string &Name = P.intVarName(V);
    Parts.push_back(C == 1 ? Name
                           : "(* " + std::to_string(C) + " " + Name + ")");
  }
  for (auto [X, C] : T.LenVars) {
    std::string Len = "(str.len " + P.strVarName(X) + ")";
    Parts.push_back(C == 1 ? Len
                           : "(* " + std::to_string(C) + " " + Len + ")");
  }
  if (T.Const != 0 || Parts.empty())
    Parts.push_back(std::to_string(T.Const));
  if (Parts.size() == 1)
    return Parts.front();
  std::string Out = "(+";
  for (const std::string &S : Parts)
    Out += " " + S;
  return Out + ")";
}

std::string cmpStr(const IntTerm &L, lia::Cmp Op, const IntTerm &R,
                   const Problem &P) {
  std::string Ls = intTermStr(L, P), Rs = intTermStr(R, P);
  switch (Op) {
  case lia::Cmp::Le:
    return "(<= " + Ls + " " + Rs + ")";
  case lia::Cmp::Lt:
    return "(< " + Ls + " " + Rs + ")";
  case lia::Cmp::Ge:
    return "(>= " + Ls + " " + Rs + ")";
  case lia::Cmp::Gt:
    return "(> " + Ls + " " + Rs + ")";
  case lia::Cmp::Eq:
    return "(= " + Ls + " " + Rs + ")";
  case lia::Cmp::Ne:
    return "(not (= " + Ls + " " + Rs + "))";
  }
  assert(false && "bad cmp");
  return "";
}

std::string assertionBody(const Assertion &A, const Problem &P) {
  switch (A.Kind) {
  case AssertKind::InRe:
    return "(str.in_re " + seqStr(A.Lhs, P) + " " + printRegex(*A.Re) + ")";
  case AssertKind::WordEq:
    return "(= " + seqStr(A.Lhs, P) + " " + seqStr(A.Rhs, P) + ")";
  case AssertKind::Diseq:
    return "(not (= " + seqStr(A.Lhs, P) + " " + seqStr(A.Rhs, P) + "))";
  case AssertKind::Prefixof:
  case AssertKind::NotPrefixof: {
    std::string S =
        "(str.prefixof " + seqStr(A.Lhs, P) + " " + seqStr(A.Rhs, P) + ")";
    return A.Kind == AssertKind::Prefixof ? S : "(not " + S + ")";
  }
  case AssertKind::Suffixof:
  case AssertKind::NotSuffixof: {
    std::string S =
        "(str.suffixof " + seqStr(A.Lhs, P) + " " + seqStr(A.Rhs, P) + ")";
    return A.Kind == AssertKind::Suffixof ? S : "(not " + S + ")";
  }
  case AssertKind::Contains:
  case AssertKind::NotContains: {
    // SMT-LIB argument order is (str.contains haystack needle); the AST
    // stores the needle as Lhs.
    std::string S =
        "(str.contains " + seqStr(A.Rhs, P) + " " + seqStr(A.Lhs, P) + ")";
    return A.Kind == AssertKind::Contains ? S : "(not " + S + ")";
  }
  case AssertKind::StrAtEq:
  case AssertKind::StrAtNe: {
    assert(A.Lhs.size() == 1 && "str.at lhs must be a single element");
    std::string S = "(= " + elemStr(A.Lhs[0], P) + " (str.at " +
                    seqStr(A.Rhs, P) + " " + intTermStr(A.Pos, P) + "))";
    return A.Kind == AssertKind::StrAtEq ? S : "(not " + S + ")";
  }
  case AssertKind::IntAtom:
  case AssertKind::LenEq:
    return cmpStr(A.Pos, A.Op, A.IntRhs, P);
  }
  assert(false && "bad assertion kind");
  return "";
}

} // namespace

std::string postr::smtlib::printRegex(const regex::Node &N) {
  using regex::NodeKind;
  switch (N.Kind) {
  case NodeKind::Empty:
    return "re.none";
  case NodeKind::EpsilonK:
    return "(str.to_re \"\")";
  case NodeKind::AnyChar:
    return "re.allchar";
  case NodeKind::Chars: {
    assert(!N.Negated &&
           "negated classes have no Reader-compatible rendering");
    std::vector<char> Cs = N.Chars;
    std::sort(Cs.begin(), Cs.end());
    Cs.erase(std::unique(Cs.begin(), Cs.end()), Cs.end());
    if (Cs.empty())
      return "re.none";
    if (Cs.size() == 1)
      return "(str.to_re " + quoted(std::string(1, Cs[0])) + ")";
    bool Contiguous = true;
    for (size_t I = 0; I + 1 < Cs.size(); ++I)
      if (static_cast<unsigned char>(Cs[I + 1]) !=
          static_cast<unsigned char>(Cs[I]) + 1)
        Contiguous = false;
    if (Contiguous)
      return "(re.range " + quoted(std::string(1, Cs.front())) + " " +
             quoted(std::string(1, Cs.back())) + ")";
    std::string Out = "(re.union";
    for (char C : Cs)
      Out += " (str.to_re " + quoted(std::string(1, C)) + ")";
    return Out + ")";
  }
  case NodeKind::Concat: {
    if (N.Children.empty())
      return "(str.to_re \"\")";
    // A concatenation of single-character classes is a word: print the
    // `str.to_re` sugar the Reader desugars it from, so re-printing a
    // parsed script reproduces it byte for byte.
    bool AllChars = std::all_of(
        N.Children.begin(), N.Children.end(),
        [](const regex::NodePtr &C) { return isSingleChar(*C); });
    if (AllChars) {
      std::string W;
      for (const regex::NodePtr &C : N.Children)
        W.push_back(C->Chars.front());
      return "(str.to_re " + quoted(W) + ")";
    }
    std::string Out = "(re.++";
    for (const regex::NodePtr &C : N.Children)
      Out += " " + printRegex(*C);
    return Out + ")";
  }
  case NodeKind::Union: {
    if (N.Children.empty())
      return "re.none";
    if (N.Children.size() == 1)
      return printRegex(*N.Children.front());
    std::string Out = "(re.union";
    for (const regex::NodePtr &C : N.Children)
      Out += " " + printRegex(*C);
    return Out + ")";
  }
  case NodeKind::Star:
    return "(re.* " + printRegex(*N.Children.front()) + ")";
  case NodeKind::Plus:
    return "(re.+ " + printRegex(*N.Children.front()) + ")";
  case NodeKind::Optional:
    return "(re.opt " + printRegex(*N.Children.front()) + ")";
  case NodeKind::Repeat:
    assert(N.Min >= 0 && N.Max >= N.Min &&
           "unbounded/invalid re.loop bounds are outside the printable set");
    return "(re.loop " + printRegex(*N.Children.front()) + " " +
           std::to_string(N.Min) + " " + std::to_string(N.Max) + ")";
  }
  assert(false && "bad regex node kind");
  return "";
}

std::string postr::smtlib::printProblem(const Problem &P) {
  std::string Out = "(set-logic QF_SLIA)\n";
  for (VarId X = 0; X < P.numStrVars(); ++X)
    Out += "(declare-fun " + P.strVarName(X) + " () String)\n";
  for (strings::IntVarId V = 0; V < P.numIntVars(); ++V)
    Out += "(declare-fun " + P.intVarName(V) + " () Int)\n";
  for (const Assertion &A : P.assertions())
    Out += "(assert " + assertionBody(A, P) + ")\n";
  Out += "(check-sat)\n(exit)\n";
  return Out;
}
