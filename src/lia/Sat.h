//===- lia/Sat.h - CDCL SAT solver -------------------------------*- C++ -*-===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact conflict-driven clause-learning SAT solver used as the
/// boolean core of the DPLL(T) LIA solver (`lia/Solver.h`). Watched
/// literals, VSIDS decisions through an indexed order-heap, first-UIP
/// learning with self-subsuming minimization, LBD-tagged learnt clauses
/// with periodic clause-DB reduction, Luby restarts. Supports incremental
/// clause addition between solve() calls, which is how theory conflicts
/// (blocking clauses) are fed back, and MiniSat-style solving under
/// assumptions: assumption literals are decided before any free decision,
/// learnt clauses / VSIDS activity / saved phases persist across calls,
/// and an Unsat answer under assumptions comes with the subset of the
/// assumptions the final conflict depends on (`assumptionCore`).
///
//===----------------------------------------------------------------------===//

#ifndef POSTR_LIA_SAT_H
#define POSTR_LIA_SAT_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace postr {

class Budget;

namespace proof {
class QfTraceBuilder;
}

namespace lia {

/// A literal: variable index with sign. `Lit(v, false)` is the positive
/// literal of v.
struct Lit {
  uint32_t Code;

  Lit() : Code(~0u) {}
  Lit(uint32_t Var, bool Negated) : Code(Var * 2 + (Negated ? 1 : 0)) {}

  uint32_t var() const { return Code >> 1; }
  bool negated() const { return Code & 1; }
  Lit operator~() const {
    Lit L;
    L.Code = Code ^ 1;
    return L;
  }
  friend bool operator==(Lit A, Lit B) { return A.Code == B.Code; }
  friend bool operator!=(Lit A, Lit B) { return A.Code != B.Code; }
};

/// Callback interface wiring a theory solver into the CDCL search
/// (online DPLL(T)). The solver invokes `onAssign` after every
/// successful propagation with the newly assigned trail suffix, and
/// `onFinalModel` once a full boolean model is found. Either may veto
/// with a *theory lemma*: a clause over existing variables that is valid
/// in the theory and false under the current assignment. `onBacktrack`
/// tells the client to undo its state down to a trail size.
class TheoryClient {
public:
  enum class TRes {
    Ok,       ///< no objection
    Conflict, ///< ConflictOut holds a falsified theory lemma
    Abort     ///< resource limit; solve() returns Res::Abort
  };
  virtual ~TheoryClient() = default;
  virtual TRes onAssign(const std::vector<Lit> &Trail, size_t From,
                        std::vector<Lit> &ConflictOut) = 0;
  virtual void onBacktrack(size_t NewTrailSize) = 0;
  virtual TRes onFinalModel(std::vector<Lit> &ConflictOut) = 0;
};

/// Cumulative search-core counters, exposed for benchmarks and tests.
struct SatStats {
  uint64_t Conflicts = 0;    ///< boolean + theory conflicts resolved
  uint64_t Propagations = 0; ///< literals enqueued by unit propagation
  uint64_t Decisions = 0;
  uint64_t Restarts = 0;
  uint64_t Reductions = 0;     ///< clause-DB reduction passes
  uint64_t ClausesDeleted = 0; ///< learnt clauses dropped by reduction
  uint64_t LitsMinimized = 0;  ///< literals removed by self-subsumption
};

/// CDCL SAT solver.
class SatSolver {
public:
  enum class Res { Sat, Unsat, Abort };

  /// Adds a fresh boolean variable, returning its index.
  uint32_t newVar();

  uint32_t numVars() const { return static_cast<uint32_t>(Activity.size()); }

  /// Adds a clause (empty clause makes the instance trivially UNSAT).
  /// Must be called at decision level 0, i.e. not during solve().
  void addClause(std::vector<Lit> Clause);

  /// Solves the current clause set. With a \p Theory client attached the
  /// search runs online DPLL(T): theory lemmas learned mid-search drive
  /// conflict analysis exactly like boolean conflicts.
  Res solve(TheoryClient *Theory = nullptr);

  /// Solves under \p Assumptions: each literal is decided (in order) at
  /// its own decision level before any free decision, so everything
  /// learned is valid for the unassumed clause set and survives into
  /// later calls. An Unsat answer either means the clause set itself
  /// became unsatisfiable (`globallyUnsat()`) or that the assumptions
  /// are jointly inconsistent with it — then `assumptionCore()` holds
  /// the culprits.
  Res solve(TheoryClient *Theory, const std::vector<Lit> &Assumptions);

  /// After solve(..., Assumptions) returned Unsat with !globallyUnsat():
  /// a subset of the assumption literals whose conjunction the clause set
  /// refutes (the negation of MiniSat's final conflict clause).
  const std::vector<Lit> &assumptionCore() const { return AssumpCore; }

  /// True once the clause set is unsatisfiable independent of any
  /// assumptions (sticky: every later solve() returns Unsat).
  bool globallyUnsat() const { return Unsatisfiable; }

  /// Sets the phase the next decision on \p Var will try first (phase
  /// saving overwrites it once the variable has been assigned). Theory
  /// clients use this to steer splitting-on-demand downward, toward the
  /// bounded part of the integer lattice.
  void setPolarity(uint32_t Var, bool PhaseTrue) {
    Polarity[Var] = PhaseTrue ? TrueVal : FalseVal;
  }

  /// Model value of \p Var; valid after solve() returned Sat.
  bool modelValue(uint32_t Var) const {
    assert(Assign[Var] != Unassigned && "model incomplete");
    return Assign[Var] == TrueVal;
  }

  const SatStats &stats() const { return Stats; }

  /// Overrides the clause-DB reduction schedule: the first reduction
  /// fires once \p First learnt clauses are live, each pass raising the
  /// cap by \p Bump. Tests use tiny values to force reductions on small
  /// instances; by default the first cap is derived from the problem
  /// size at solve() (max(300, problem clauses / 4) — a fixed cap of
  /// 4000 never fired on the tag-framework formulae, whose whole clause
  /// DBs are smaller than that). \p First = 0 restores that adaptive
  /// default; use 1 to reduce from the first learnt clause.
  void setReduceSchedule(uint64_t First, uint64_t Bump) {
    ReduceLimit = First;
    ReduceBump = Bump;
  }

  /// Attaches a shared resource budget: clause storage (problem and
  /// learnt) is charged against its memory cap as the DB grows. A MemOut
  /// trip is noticed by the owning DPLL(T) context at its next theory
  /// callback; the solver itself keeps running until then.
  void setBudget(Budget *B) { Bud = B; }

  /// Attaches a DRUP-style proof trace builder. Every clause event is
  /// mirrored into it: added clauses as input steps (or certified theory
  /// steps, when the owning context staged a Farkas certificate), CDCL
  /// learnt clauses and theory lemmas as checkable additions, DB
  /// reductions as deletions, and each Unsat answer as a final
  /// refutation event (the empty core for a global refutation, the
  /// assumption core otherwise). Null (the default) disables logging;
  /// nothing in the search reads the builder, so the search itself is
  /// bit-identical with and without it.
  void setProof(proof::QfTraceBuilder *P) { Proof = P; }

private:
  static constexpr uint8_t Unassigned = 2, TrueVal = 1, FalseVal = 0;

  struct Clause {
    std::vector<Lit> Lits;
    uint32_t Lbd = 0; ///< literal-block distance at learn time (0 = problem)
    bool Learnt = false;
  };

  using ClauseRef = uint32_t;
  static constexpr ClauseRef NoClause = ~0u;

  bool valueIsTrue(Lit L) const {
    return Assign[L.var()] == (L.negated() ? FalseVal : TrueVal);
  }
  bool valueIsFalse(Lit L) const {
    return Assign[L.var()] == (L.negated() ? TrueVal : FalseVal);
  }
  bool isUnassigned(Lit L) const { return Assign[L.var()] == Unassigned; }

  void enqueue(Lit L, ClauseRef Reason);
  ClauseRef propagate();
  void analyze(ClauseRef Conflict, std::vector<Lit> &Learnt,
               uint32_t &BackjumpLevel, uint32_t &LbdOut);
  void backtrack(uint32_t Level);
  void bumpVar(uint32_t Var);
  void attach(ClauseRef C);
  Lit pickBranchLit();
  /// Learns from a conflicting clause (analyze + backjump + assert);
  /// returns false when the instance became UNSAT.
  bool resolveConflict(ClauseRef Conflict);
  /// Integrates a falsified theory lemma mid-search; false → UNSAT.
  /// Operates in place on \p Lemma (a reusable caller buffer).
  bool handleTheoryConflict(std::vector<Lit> &Lemma);
  /// Fills AssumpCore with the assumptions responsible for falsifying
  /// assumption literal \p P (MiniSat's analyzeFinal): walks the trail
  /// from the top, expanding reasons, collecting reason-less decisions —
  /// which are all assumptions whenever this is called, because free
  /// decisions only happen above the assumption levels.
  void analyzeFinal(Lit P);
  /// True when `Learnt[I]` is implied by the rest of the learnt clause
  /// (its reason's literals are all seen or at level 0) and can be
  /// dropped — one-step self-subsuming resolution.
  bool litRedundant(Lit L) const;
  /// Number of distinct decision levels among the assigned literals of
  /// \p Lits (unassigned literals count as one extra block each).
  uint32_t computeLbd(const std::vector<Lit> &Lits);
  /// Drops the worst half of the deletable learnt clauses (high LBD,
  /// long), compacting the clause arena and rebuilding the watch lists.
  /// Clauses that are the reason of an asserted literal are kept.
  void reduceDB();
  bool locked(ClauseRef C) const {
    uint32_t V = Clauses[C].Lits[0].var();
    return Assign[V] != Unassigned && Reason[V] == C &&
           valueIsTrue(Clauses[C].Lits[0]);
  }

  // Order heap: a binary max-heap over Activity holding candidate
  // decision variables. Lazy: popped entries may be assigned (skipped by
  // pickBranchLit), unassigned-on-backtrack variables are re-inserted.
  bool inHeap(uint32_t V) const { return HeapPos[V] != ~0u; }
  void heapInsert(uint32_t V);
  void heapSiftUp(uint32_t I);
  void heapSiftDown(uint32_t I);
  uint32_t heapPop();
  bool heapLess(uint32_t A, uint32_t B) const {
    // Ties break toward the smaller variable index: atom variables are
    // minted in structural (Parikh flow) order, and preferring them over
    // arbitrary heap order measurably helps the tag encodings.
    return Activity[A] < Activity[B] ||
           (Activity[A] == Activity[B] && A > B);
  }

  std::vector<Clause> Clauses;
  std::vector<std::vector<ClauseRef>> Watches; ///< per literal code
  std::vector<uint8_t> Assign;                 ///< per var
  std::vector<uint32_t> Level;                 ///< per var
  std::vector<ClauseRef> Reason;               ///< per var
  std::vector<Lit> Trail;
  std::vector<uint32_t> TrailLim; ///< decision-level boundaries
  uint32_t QHead = 0;
  std::vector<double> Activity;
  double ActivityInc = 1.0;
  std::vector<uint8_t> Polarity; ///< phase saving
  std::vector<uint32_t> Heap;    ///< order heap (var indices)
  std::vector<uint32_t> HeapPos; ///< var -> index in Heap, ~0u if absent
  /// Conflict-analysis scratch, reused across conflicts (no per-conflict
  /// allocation): the DFS-seen marks, the learnt-clause buffer, and the
  /// level-stamp table behind computeLbd.
  std::vector<uint8_t> Seen;
  std::vector<uint8_t> RedundantScratch;
  std::vector<Lit> LearntScratch;
  std::vector<Lit> TheoryLemmaScratch;
  std::vector<Lit> AssumpCore;
  std::vector<uint32_t> LevelStamp;
  uint32_t Stamp = 0;
  bool Unsatisfiable = false;
  TheoryClient *Theory = nullptr; ///< active during solve() only
  size_t TheoryHead = 0;          ///< trail prefix already sent to Theory
  uint64_t ConflictsSinceRestart = 0;
  uint64_t RestartLimit = 100;
  uint32_t RestartCount = 0; ///< Luby sequence index
  uint64_t NumLearnt = 0;    ///< live deletable learnt clauses
  uint64_t ReduceLimit = 0;  ///< 0 = derive from problem size at solve()
  uint64_t ReduceBump = 1000;
  /// Charges one stored clause of \p NLits literals against Bud (no-op
  /// without a budget).
  void chargeClauseMem(size_t NLits);
  Budget *Bud = nullptr;
  proof::QfTraceBuilder *Proof = nullptr;
  SatStats Stats;
};

} // namespace lia
} // namespace postr

#endif // POSTR_LIA_SAT_H
