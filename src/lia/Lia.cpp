//===- lia/Lia.cpp - LIA formula arena ------------------------------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "lia/Lia.h"

#include <algorithm>
#include <sstream>

using namespace postr;
using namespace postr::lia;

LinTerm &LinTerm::mergeInPlace(const LinTerm &O, int64_t Sign) {
  if (&O == this) {
    // Self-aliasing t ± t: the merge below would read the operand
    // through a reference invalidated by the resize; handle directly.
    if (Sign == -1) {
      Coeffs.clear();
      Const = 0;
    } else {
      Const *= 2;
      for (auto &[V, C] : Coeffs)
        C *= 2;
    }
    return *this;
  }
  Const += Sign * O.Const;
  const std::vector<std::pair<Var, int64_t>> &B = O.Coeffs;
  if (B.empty())
    return *this;
  if (Coeffs.empty()) {
    Coeffs = B;
    if (Sign != 1)
      for (auto &[V, C] : Coeffs)
        C *= Sign;
    return *this;
  }
  // Append fast path: every incoming variable is larger than ours.
  if (Coeffs.back().first < B.front().first) {
    size_t Old = Coeffs.size();
    Coeffs.insert(Coeffs.end(), B.begin(), B.end());
    if (Sign != 1)
      for (size_t I = Old; I < Coeffs.size(); ++I)
        Coeffs[I].second *= Sign;
    return *this;
  }
  // General case: merge backward into the tail of the resized vector (the
  // prefix [0, I] is never overwritten because W >= I + J + 1 throughout),
  // then compact the written suffix over the gap, dropping zeros.
  size_t N = Coeffs.size(), M = B.size();
  Coeffs.resize(N + M);
  ptrdiff_t I = static_cast<ptrdiff_t>(N) - 1;
  ptrdiff_t J = static_cast<ptrdiff_t>(M) - 1;
  size_t W = N + M;
  while (J >= 0) {
    if (I >= 0 && Coeffs[I].first > B[J].first) {
      Coeffs[--W] = Coeffs[I--];
    } else if (I >= 0 && Coeffs[I].first == B[J].first) {
      int64_t C = Coeffs[I].second + Sign * B[J].second;
      Coeffs[--W] = {B[J].first, C};
      --I;
      --J;
    } else {
      Coeffs[--W] = {B[J].first, Sign * B[J].second};
      --J;
    }
  }
  size_t Write = static_cast<size_t>(I + 1);
  for (size_t Read = W; Read < N + M; ++Read)
    if (Coeffs[Read].second != 0)
      Coeffs[Write++] = Coeffs[Read];
  Coeffs.resize(Write);
  return *this;
}

LinTerm &LinTerm::addMonomial(Var V, int64_t K) {
  if (K == 0)
    return *this;
  if (Coeffs.empty() || Coeffs.back().first < V) {
    Coeffs.push_back({V, K});
    return *this;
  }
  auto It = std::lower_bound(
      Coeffs.begin(), Coeffs.end(), V,
      [](const std::pair<Var, int64_t> &P, Var X) { return P.first < X; });
  if (It != Coeffs.end() && It->first == V) {
    It->second += K;
    if (It->second == 0)
      Coeffs.erase(It);
  } else {
    Coeffs.insert(It, {V, K});
  }
  return *this;
}

LinTerm LinTerm::sum(const std::vector<Var> &Vars) {
  LinTerm R;
  R.Coeffs.reserve(Vars.size());
  for (Var V : Vars)
    R.Coeffs.push_back({V, 1});
  std::sort(R.Coeffs.begin(), R.Coeffs.end());
  // Collapse repeats (coefficients are all 1, so no zeros can form).
  size_t Write = 0;
  for (size_t Read = 0; Read < R.Coeffs.size(); ++Read) {
    if (Write > 0 && R.Coeffs[Write - 1].first == R.Coeffs[Read].first)
      ++R.Coeffs[Write - 1].second;
    else
      R.Coeffs[Write++] = R.Coeffs[Read];
  }
  R.Coeffs.resize(Write);
  return R;
}

LinTerm LinTerm::operator*(int64_t K) const {
  LinTerm R;
  if (K == 0)
    return R;
  R.Const = Const * K;
  R.Coeffs = Coeffs;
  for (auto &[V, C] : R.Coeffs)
    C *= K;
  return R;
}

int64_t LinTerm::eval(const std::vector<int64_t> &Model) const {
  int64_t Sum = Const;
  for (auto [V, C] : Coeffs) {
    assert(V < Model.size() && "model does not cover term variable");
    Sum += C * Model[V];
  }
  return Sum;
}

std::string LinTerm::str() const {
  std::ostringstream OS;
  bool First = true;
  for (auto [V, C] : Coeffs) {
    if (!First)
      OS << (C >= 0 ? " + " : " - ");
    else if (C < 0)
      OS << "-";
    First = false;
    int64_t A = C < 0 ? -C : C;
    if (A != 1)
      OS << A << "*";
    OS << "v" << V;
  }
  if (Const != 0 || First) {
    if (First)
      OS << Const;
    else
      OS << (Const >= 0 ? " + " : " - ") << (Const < 0 ? -Const : Const);
  }
  return OS.str();
}

Var Arena::freshVar(std::string Name, int64_t Lo, int64_t Hi) {
  Names.push_back(std::move(Name));
  Lower.push_back(Lo);
  Upper.push_back(Hi);
  return static_cast<Var>(Names.size() - 1);
}

FormulaId Arena::trueF() {
  if (TrueId == ~FormulaId(0))
    TrueId = push({FKind::True, 0, {}});
  return TrueId;
}

FormulaId Arena::falseF() {
  if (FalseId == ~FormulaId(0))
    FalseId = push({FKind::False, 0, {}});
  return FalseId;
}

FormulaId Arena::atom(LinTerm T, Cmp Op) {
  // Constant-fold ground atoms.
  if (T.isConstant()) {
    int64_t C = T.constant();
    bool Holds = false;
    switch (Op) {
    case Cmp::Le:
      Holds = C <= 0;
      break;
    case Cmp::Lt:
      Holds = C < 0;
      break;
    case Cmp::Ge:
      Holds = C >= 0;
      break;
    case Cmp::Gt:
      Holds = C > 0;
      break;
    case Cmp::Eq:
      Holds = C == 0;
      break;
    case Cmp::Ne:
      Holds = C != 0;
      break;
    }
    return Holds ? trueF() : falseF();
  }
  Atoms.push_back({std::move(T), Op});
  Node N{FKind::Atom, static_cast<uint32_t>(Atoms.size() - 1), {}};
  return push(std::move(N));
}

FormulaId Arena::conj(std::vector<FormulaId> Children) {
  std::vector<FormulaId> Kept;
  for (FormulaId C : Children) {
    if (kind(C) == FKind::False)
      return falseF();
    if (kind(C) == FKind::True)
      continue;
    Kept.push_back(C);
  }
  if (Kept.empty())
    return trueF();
  if (Kept.size() == 1)
    return Kept.front();
  return push({FKind::And, 0, std::move(Kept)});
}

FormulaId Arena::disj(std::vector<FormulaId> Children) {
  std::vector<FormulaId> Kept;
  for (FormulaId C : Children) {
    if (kind(C) == FKind::True)
      return trueF();
    if (kind(C) == FKind::False)
      continue;
    Kept.push_back(C);
  }
  if (Kept.empty())
    return falseF();
  if (Kept.size() == 1)
    return Kept.front();
  return push({FKind::Or, 0, std::move(Kept)});
}

FormulaId Arena::neg(FormulaId F) {
  switch (kind(F)) {
  case FKind::True:
    return falseF();
  case FKind::False:
    return trueF();
  case FKind::Not:
    return children(F).front();
  default:
    return push({FKind::Not, 0, {F}});
  }
}

FormulaId Arena::substitute(FormulaId F,
                            const std::function<LinTerm(Var)> &MapVar) {
  switch (kind(F)) {
  case FKind::True:
  case FKind::False:
    return F;
  case FKind::Atom: {
    // Copy out: atom() below may reallocate the atom table.
    LinTerm T = atomTerm(F);
    Cmp Op = atomCmp(F);
    LinTerm Out(T.constant());
    for (auto [V, K] : T.coeffs())
      Out += MapVar(V) * K;
    return atom(std::move(Out), Op);
  }
  case FKind::Not:
    return neg(substitute(children(F).front(), MapVar));
  case FKind::And:
  case FKind::Or: {
    // Copy out: child construction reallocates the node table.
    std::vector<FormulaId> Kids = children(F);
    for (FormulaId &C : Kids)
      C = substitute(C, MapVar);
    return kind(F) == FKind::And ? conj(std::move(Kids))
                                 : disj(std::move(Kids));
  }
  }
  assert(false && "bad kind");
  return F;
}

FormulaId Arena::lower(FormulaId F) {
  switch (kind(F)) {
  case FKind::True:
  case FKind::False:
    return F;
  case FKind::Atom: {
    // Copy: atom() below may reallocate the atom table.
    LinTerm T = atomTerm(F);
    switch (atomCmp(F)) {
    case Cmp::Le:
      return F;
    case Cmp::Lt:
      return atom(T + LinTerm(1), Cmp::Le);
    case Cmp::Ge:
      return atom(-T, Cmp::Le);
    case Cmp::Gt:
      return atom(-T + LinTerm(1), Cmp::Le);
    case Cmp::Eq:
      return conj({atom(T, Cmp::Le), atom(-T, Cmp::Le)});
    case Cmp::Ne:
      return disj({atom(T + LinTerm(1), Cmp::Le),
                   atom(-T + LinTerm(1), Cmp::Le)});
    }
    assert(false && "bad cmp");
    return F;
  }
  case FKind::Not: {
    FormulaId C = children(F).front();
    // Push negation through by dualizing; keeps lowered form Not-free
    // except directly above Le-atoms, which the CNF layer handles.
    switch (kind(C)) {
    case FKind::True:
      return falseF();
    case FKind::False:
      return trueF();
    case FKind::Atom: {
      // Copy: atom() below may reallocate the atom table.
      LinTerm T = atomTerm(C);
      switch (atomCmp(C)) {
      case Cmp::Le: // !(t<=0) == t>=1
        return atom(-T + LinTerm(1), Cmp::Le);
      case Cmp::Lt:
        return atom(-T, Cmp::Le);
      case Cmp::Ge:
        return atom(T + LinTerm(1), Cmp::Le);
      case Cmp::Gt:
        return atom(T, Cmp::Le);
      case Cmp::Eq:
        return lower(atom(T, Cmp::Ne));
      case Cmp::Ne:
        return lower(atom(T, Cmp::Eq));
      }
      assert(false && "bad cmp");
      return F;
    }
    case FKind::Not:
      return lower(children(C).front());
    case FKind::And: {
      std::vector<FormulaId> Out;
      for (FormulaId G : children(C))
        Out.push_back(lower(neg(G)));
      return disj(std::move(Out));
    }
    case FKind::Or: {
      std::vector<FormulaId> Out;
      for (FormulaId G : children(C))
        Out.push_back(lower(neg(G)));
      return conj(std::move(Out));
    }
    }
    assert(false && "bad kind");
    return F;
  }
  case FKind::And: {
    std::vector<FormulaId> Out;
    for (FormulaId G : children(F))
      Out.push_back(lower(G));
    return conj(std::move(Out));
  }
  case FKind::Or: {
    std::vector<FormulaId> Out;
    for (FormulaId G : children(F))
      Out.push_back(lower(G));
    return disj(std::move(Out));
  }
  }
  assert(false && "bad kind");
  return F;
}

bool Arena::eval(FormulaId F, const std::vector<int64_t> &Model) const {
  switch (kind(F)) {
  case FKind::True:
    return true;
  case FKind::False:
    return false;
  case FKind::Atom: {
    int64_t V = atomTerm(F).eval(Model);
    switch (atomCmp(F)) {
    case Cmp::Le:
      return V <= 0;
    case Cmp::Lt:
      return V < 0;
    case Cmp::Ge:
      return V >= 0;
    case Cmp::Gt:
      return V > 0;
    case Cmp::Eq:
      return V == 0;
    case Cmp::Ne:
      return V != 0;
    }
    assert(false && "bad cmp");
    return false;
  }
  case FKind::Not:
    return !eval(children(F).front(), Model);
  case FKind::And:
    for (FormulaId C : children(F))
      if (!eval(C, Model))
        return false;
    return true;
  case FKind::Or:
    for (FormulaId C : children(F))
      if (eval(C, Model))
        return true;
    return false;
  }
  assert(false && "bad kind");
  return false;
}

std::string Arena::str(FormulaId F) const {
  switch (kind(F)) {
  case FKind::True:
    return "true";
  case FKind::False:
    return "false";
  case FKind::Atom: {
    const char *Op = nullptr;
    switch (atomCmp(F)) {
    case Cmp::Le:
      Op = "<=";
      break;
    case Cmp::Lt:
      Op = "<";
      break;
    case Cmp::Ge:
      Op = ">=";
      break;
    case Cmp::Gt:
      Op = ">";
      break;
    case Cmp::Eq:
      Op = "=";
      break;
    case Cmp::Ne:
      Op = "!=";
      break;
    }
    return "(" + atomTerm(F).str() + " " + Op + " 0)";
  }
  case FKind::Not:
    return "(not " + str(children(F).front()) + ")";
  case FKind::And:
  case FKind::Or: {
    std::string Out = kind(F) == FKind::And ? "(and" : "(or";
    for (FormulaId C : children(F)) {
      Out += " ";
      Out += str(C);
    }
    Out += ")";
    return Out;
  }
  }
  assert(false && "bad kind");
  return "?";
}
