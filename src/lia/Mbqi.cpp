//===- lia/Mbqi.cpp - Model-based quantifier instantiation -----------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "lia/Mbqi.h"

#include "base/Budget.h"
#include "lia/Incremental.h"

#include <algorithm>
#include <map>
#include <memory>

using namespace postr;
using namespace postr::lia;

namespace {

/// Shared per-run plumbing of both MBQI implementations: the resource
/// budget, the per-query option derivation, and the fair size-bound
/// schedule.
struct MbqiRun {
  Arena &A;
  const MbqiQuery &Q;
  const MbqiOptions &Opts;
  MbqiStats Dummy;
  MbqiStats &St;
  /// Per-run budget when the caller did not supply a shared one: carries
  /// the legacy MbqiOptions::TimeoutMs deadline and the Qf cancel flag.
  Budget Local;
  Budget *Bud;
  // Fair length-bound schedule: propose small candidates first. The
  // size proxy (total transition count of the outer run) is bounded,
  // escalated to unbounded on exhaustion; easy Sat instances finish
  // within the first bound, and the final Unsat verdict is only ever
  // drawn from the unbounded query.
  LinTerm SizeTerm;
  int64_t SizeBound = 16;
  static constexpr int64_t MaxSizeBound = 64;

  MbqiRun(Arena &A, const MbqiQuery &Q, const MbqiOptions &Opts)
      : A(A), Q(Q), Opts(Opts), St(Opts.Stats ? *Opts.Stats : Dummy),
        Local(Budget::Limits{Opts.TimeoutMs, 0, 0, Opts.Qf.Cancel}),
        Bud(Opts.Qf.Budget ? Opts.Qf.Budget : &Local) {
    if (!Q.BlockTerms.empty())
      for (const LinTerm &T : Q.BlockTerms)
        SizeTerm += T;
    else
      for (Var V : Q.OuterVars)
        SizeTerm += LinTerm::variable(V);
  }

  /// Budget probe between candidates and offsets. True means stop now
  /// (the reason is recorded in the budget).
  bool stopped() { return !Bud->checkpoint("lia.mbqi"); }

  QfOptions subQf() const {
    // Sub-solves share this run's budget, so the deadline / memory cap /
    // cancel flag govern them directly — no remaining-time arithmetic.
    QfOptions O = Opts.Qf;
    O.Budget = Bud;
    // Never record clause traces here: an MBQI Unsat rests on blocking
    // clauses whose soundness comes from *inner* refutations, which a
    // single QF trace cannot express. MBQI verdicts enter certificates
    // as the trusted "mbqi" structural rule instead (proof/Proof.h).
    O.Proof = nullptr;
    return O;
  }

  /// The κ := K instantiation lemma for block \p B (the heart of MBQI
  /// [36]): the block demands, for THIS offset K, either K > Upper(#1)
  /// or a witness run with a mismatch at K. The κ := K instance is
  /// cloned with fresh inner variables — it prunes every future
  /// candidate lacking a mismatch at K, and can make the outer side
  /// unsatisfiable outright (the Unsat verdict depends on these lemmas,
  /// not on candidate exhaustion).
  FormulaId instantiationLemma(const ForallBlock &B, int64_t K) {
    std::map<Var, Var> Fresh;
    for (Var V : B.InnerVars)
      Fresh.emplace(V, A.freshVar(A.varName(V) + "$i", A.varLo(V),
                                  A.varHi(V)));
    FormulaId Inst = A.substitute(B.Inner, [&](Var V) {
      if (V == B.Kappa)
        return LinTerm(K);
      auto It = Fresh.find(V);
      return LinTerm::variable(It == Fresh.end() ? V : It->second);
    });
    ++St.InstLemmas;
    return A.disj({A.cmp(LinTerm(K), Cmp::Gt, B.Upper), Inst});
  }

  /// The blocking clause excluding outer model \p Model. Prefers the
  /// semantic block terms, which rule out every run encoding the same
  /// refuted content instead of just this run.
  FormulaId blocker(const std::vector<int64_t> &Model) {
    std::vector<FormulaId> Diff;
    if (!Q.BlockTerms.empty()) {
      Diff.reserve(Q.BlockTerms.size());
      for (const LinTerm &T : Q.BlockTerms)
        Diff.push_back(A.cmp(T, Cmp::Ne, LinTerm(T.eval(Model))));
    } else {
      Diff.reserve(Q.OuterVars.size());
      for (Var V : Q.OuterVars)
        Diff.push_back(
            A.cmp(LinTerm::variable(V), Cmp::Ne, LinTerm(Model[V])));
    }
    ++St.Blockers;
    return A.disj(std::move(Diff));
  }
};

/// The scratch implementation: every outer candidate and every inner
/// offset runs a from-scratch `solveQF` over a freshly re-conjoined
/// formula. Retained as the semantics oracle the incremental path is
/// property-tested against (and selectable via MbqiOptions::Incremental).
Verdict solveMbqiScratch(Arena &A, const MbqiQuery &Q,
                         std::vector<int64_t> *ModelOut,
                         const MbqiOptions &Opts) {
  MbqiRun R(A, Q, Opts);

  std::vector<FormulaId> Blockers;
  for (uint32_t Cand = 0; Cand < Opts.MaxCandidates; ++Cand) {
    if (R.stopped())
      return Verdict::Unknown;

    QfResult Outer;
    for (;;) {
      std::vector<FormulaId> OuterParts{Q.Outer};
      OuterParts.insert(OuterParts.end(), Blockers.begin(), Blockers.end());
      if (R.SizeBound <= MbqiRun::MaxSizeBound)
        OuterParts.push_back(
            A.cmp(R.SizeTerm, Cmp::Le, LinTerm(R.SizeBound)));
      ++R.St.OuterSolves;
      Outer = solveQF(A, A.conj(OuterParts), R.subQf());
      if (Outer.V == Verdict::Unsat && R.SizeBound <= MbqiRun::MaxSizeBound) {
        // Exhausted below the bound: go unbounded.
        R.SizeBound = MbqiRun::MaxSizeBound * 4;
        continue;
      }
      break;
    }
    if (Outer.V == Verdict::Unsat) {
      // Every outer model was either refuted by a concrete offset or the
      // outer part is unsatisfiable outright; both mean Unsat (the
      // unbounded query was the one that failed).
      return Verdict::Unsat;
    }
    if (Outer.V == Verdict::Unknown)
      return Verdict::Unknown;
    ++R.St.Candidates;

    // Pin the outer model for the inner queries.
    std::vector<FormulaId> Pin;
    Pin.reserve(Q.OuterVars.size());
    for (Var V : Q.OuterVars)
      Pin.push_back(
          A.cmp(LinTerm::variable(V), Cmp::Eq, LinTerm(Outer.Model[V])));
    FormulaId PinF = A.conj(Pin);

    bool AllBlocksHold = true;
    for (const ForallBlock &B : Q.Blocks) {
      int64_t Upper = B.Upper.eval(Outer.Model);
      if (Upper > Opts.MaxOffsets)
        return Verdict::Unknown;
      for (int64_t K = 0; K <= Upper && AllBlocksHold; ++K) {
        if (R.stopped())
          return Verdict::Unknown;
        FormulaId KEq =
            A.cmp(LinTerm::variable(B.Kappa), Cmp::Eq, LinTerm(K));
        ++R.St.InnerQueries;
        QfResult InnerR =
            solveQF(A, A.conj({B.Inner, PinF, KEq}), R.subQf());
        if (InnerR.V == Verdict::Unknown)
          return Verdict::Unknown;
        if (InnerR.V == Verdict::Unsat) {
          AllBlocksHold = false;
          Blockers.push_back(R.instantiationLemma(B, K));
        }
      }
      if (!AllBlocksHold)
        break;
    }

    if (AllBlocksHold) {
      if (ModelOut)
        *ModelOut = std::move(Outer.Model);
      return Verdict::Sat;
    }

    // Refuted: exclude this valuation and retry.
    Blockers.push_back(R.blocker(Outer.Model));
  }
  return Verdict::Unknown;
}

/// The incremental implementation (ISSUE 4 tentpole): one persistent
/// outer context accumulates blockers and instantiation lemmas as
/// level-0 assertions (never re-conjoined, never re-encoded; the learnt
/// clauses and the Simplex basis carry over), the size-bound schedule
/// rides as an assumption whose presence in the final-conflict core
/// tells bound exhaustion from genuine refutation without a second
/// solve, and per-block inner contexts encode `B.Inner` once — each
/// candidate pushes a scope with the model pin, each offset is a
/// two-literal κ = K assumption, and the pop between candidates retracts
/// only the pin.
Verdict solveMbqiIncremental(Arena &A, const MbqiQuery &Q,
                             std::vector<int64_t> *ModelOut,
                             const MbqiOptions &Opts) {
  MbqiRun R(A, Q, Opts);

  IncrementalContext Outer(A, R.subQf());
  Outer.assertFormula(Q.Outer);
  std::vector<std::unique_ptr<IncrementalContext>> Inner(Q.Blocks.size());

  // Atom memos: repeated size bounds, pins, and offsets re-solve against
  // the exact same formula ids, so the contexts' gate/atom caches hit
  // and the arena does not accumulate duplicate nodes.
  std::map<int64_t, FormulaId> SizeMemo;
  std::map<std::pair<Var, int64_t>, FormulaId> PinMemo;
  std::vector<std::map<int64_t, FormulaId>> KEqMemo(Q.Blocks.size());

  for (uint32_t Cand = 0; Cand < Opts.MaxCandidates; ++Cand) {
    if (R.stopped())
      return Verdict::Unknown;

    QfResult OuterR;
    for (;;) {
      std::vector<FormulaId> Assumps;
      if (R.SizeBound <= MbqiRun::MaxSizeBound) {
        auto It = SizeMemo.find(R.SizeBound);
        if (It == SizeMemo.end())
          It = SizeMemo
                   .emplace(R.SizeBound,
                            A.cmp(R.SizeTerm, Cmp::Le, LinTerm(R.SizeBound)))
                   .first;
        Assumps.push_back(It->second);
      }
      Outer.setOptions(R.subQf());
      if (Outer.numSolves() > 0)
        ++R.St.ContextReuses;
      ++R.St.OuterSolves;
      OuterR = Outer.solve(Assumps);
      if (OuterR.V == Verdict::Unsat && R.SizeBound <= MbqiRun::MaxSizeBound) {
        // Exhausted below the bound. The assumption core says whether the
        // bound even participated: if not, the refutation already holds
        // unbounded and the scratch path's re-solve is unnecessary.
        bool BoundBlamed = !Outer.unsatAssumptions().empty();
        R.SizeBound = MbqiRun::MaxSizeBound * 4;
        if (BoundBlamed)
          continue;
        break;
      }
      break;
    }
    if (OuterR.V == Verdict::Unsat)
      return Verdict::Unsat;
    if (OuterR.V == Verdict::Unknown)
      return Verdict::Unknown;
    ++R.St.Candidates;

    // Pin the outer model for the inner queries.
    std::vector<FormulaId> Pins;
    Pins.reserve(Q.OuterVars.size());
    for (Var V : Q.OuterVars) {
      auto Key = std::make_pair(V, OuterR.Model[V]);
      auto It = PinMemo.find(Key);
      if (It == PinMemo.end())
        It = PinMemo
                 .emplace(Key, A.cmp(LinTerm::variable(V), Cmp::Eq,
                                     LinTerm(OuterR.Model[V])))
                 .first;
      Pins.push_back(It->second);
    }

    bool AllBlocksHold = true;
    for (size_t BI = 0; BI < Q.Blocks.size(); ++BI) {
      const ForallBlock &B = Q.Blocks[BI];
      int64_t Upper = B.Upper.eval(OuterR.Model);
      if (Upper > Opts.MaxOffsets)
        return Verdict::Unknown;
      if (!Inner[BI]) {
        Inner[BI] = std::make_unique<IncrementalContext>(A, R.subQf());
        Inner[BI]->assertFormula(B.Inner);
      }
      IncrementalContext &IC = *Inner[BI];
      IC.push();
      for (FormulaId P : Pins)
        IC.assertFormula(P);
      for (int64_t K = 0; K <= Upper && AllBlocksHold; ++K) {
        if (R.stopped()) {
          IC.pop();
          return Verdict::Unknown;
        }
        auto It = KEqMemo[BI].find(K);
        if (It == KEqMemo[BI].end())
          It = KEqMemo[BI]
                   .emplace(K, A.cmp(LinTerm::variable(B.Kappa), Cmp::Eq,
                                     LinTerm(K)))
                   .first;
        IC.setOptions(R.subQf());
        if (IC.numSolves() > 0)
          ++R.St.ContextReuses;
        ++R.St.InnerQueries;
        QfResult InnerR = IC.solve({It->second});
        if (InnerR.V == Verdict::Unknown) {
          IC.pop();
          return Verdict::Unknown;
        }
        if (InnerR.V == Verdict::Unsat) {
          AllBlocksHold = false;
          Outer.assertFormula(R.instantiationLemma(B, K));
        }
      }
      IC.pop();
      if (!AllBlocksHold)
        break;
    }

    if (AllBlocksHold) {
      if (ModelOut)
        *ModelOut = std::move(OuterR.Model);
      return Verdict::Sat;
    }

    // Refuted: exclude this valuation and retry.
    Outer.assertFormula(R.blocker(OuterR.Model));
  }
  return Verdict::Unknown;
}

} // namespace

Verdict postr::lia::solveMbqi(Arena &A, const MbqiQuery &Q,
                              std::vector<int64_t> *ModelOut,
                              const MbqiOptions &Opts) {
  // Every query this loop issues — the outer Parikh formula under
  // blockers/lemmas and the pinned per-offset inner instances — is
  // Parikh/length-pin shaped no matter what the surrounding problem
  // looked like, and the pivot-rule A/B measured SparsestRow as the
  // clear mbqi-stage winner at identical verdicts. Pin the family unless
  // the caller already classified (POSTR_SIMPLEX_PIVOT_RULE still
  // forces a fixed rule over this).
  MbqiOptions Pinned = Opts;
  if (Pinned.Qf.Pivot.Family == InstanceFamily::Unknown)
    Pinned.Qf.Pivot.Family = InstanceFamily::ParikhHeavy;
  return Pinned.Incremental ? solveMbqiIncremental(A, Q, ModelOut, Pinned)
                            : solveMbqiScratch(A, Q, ModelOut, Pinned);
}
