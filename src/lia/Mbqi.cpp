//===- lia/Mbqi.cpp - Model-based quantifier instantiation -----------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "lia/Mbqi.h"

#include <algorithm>
#include <chrono>

using namespace postr;
using namespace postr::lia;

namespace {
using Clock = std::chrono::steady_clock;
} // namespace

Verdict postr::lia::solveMbqi(Arena &A, const MbqiQuery &Q,
                              std::vector<int64_t> *ModelOut,
                              const MbqiOptions &Opts) {
  Clock::time_point Start = Clock::now();
  auto TimedOut = [&] {
    if (Opts.Qf.Cancel && Opts.Qf.Cancel->load(std::memory_order_relaxed))
      return true;
    if (Opts.TimeoutMs == 0)
      return false;
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               Clock::now() - Start)
               .count() >= static_cast<int64_t>(Opts.TimeoutMs);
  };
  auto RemainingQf = [&] {
    QfOptions O = Opts.Qf;
    if (Opts.TimeoutMs != 0) {
      int64_t Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                            Clock::now() - Start)
                            .count();
      int64_t Left = static_cast<int64_t>(Opts.TimeoutMs) - Elapsed;
      uint64_t Budget = Left > 1 ? static_cast<uint64_t>(Left) : 1;
      O.TimeoutMs = O.TimeoutMs == 0 ? Budget : std::min(O.TimeoutMs, Budget);
    }
    return O;
  };

  // Fair length-bound schedule: propose small candidates first. The
  // size proxy (total transition count of the outer run) is bounded and
  // doubled on exhaustion; easy Sat instances finish within the first
  // bound, and the final Unsat verdict is only ever drawn from the
  // unbounded query.
  LinTerm SizeTerm;
  if (!Q.BlockTerms.empty())
    for (const LinTerm &T : Q.BlockTerms)
      SizeTerm += T;
  else
    for (Var V : Q.OuterVars)
      SizeTerm += LinTerm::variable(V);
  int64_t SizeBound = 16;
  const int64_t MaxSizeBound = 64; // one escalation, then unbounded

  std::vector<FormulaId> Blockers;
  for (uint32_t Cand = 0; Cand < Opts.MaxCandidates; ++Cand) {
    if (TimedOut())
      return Verdict::Unknown;

    QfResult Outer;
    for (;;) {
      std::vector<FormulaId> OuterParts{Q.Outer};
      OuterParts.insert(OuterParts.end(), Blockers.begin(), Blockers.end());
      if (SizeBound <= MaxSizeBound)
        OuterParts.push_back(
            A.cmp(SizeTerm, Cmp::Le, LinTerm(SizeBound)));
      Outer = solveQF(A, A.conj(OuterParts), RemainingQf());
      if (Outer.V == Verdict::Unsat && SizeBound <= MaxSizeBound) {
        SizeBound = MaxSizeBound * 4; // exhausted below the bound: go unbounded
        continue;
      }
      break;
    }
    if (Outer.V == Verdict::Unsat) {
      // Every outer model was either refuted by a concrete offset or the
      // outer part is unsatisfiable outright; both mean Unsat (the
      // unbounded query was the one that failed).
      return Verdict::Unsat;
    }
    if (Outer.V == Verdict::Unknown)
      return Verdict::Unknown;

    // Pin the outer model for the inner queries.
    std::vector<FormulaId> Pin;
    Pin.reserve(Q.OuterVars.size());
    for (Var V : Q.OuterVars)
      Pin.push_back(A.cmp(LinTerm::variable(V), Cmp::Eq,
                          LinTerm(Outer.Model[V])));
    FormulaId PinF = A.conj(Pin);

    bool AllBlocksHold = true;
    for (const ForallBlock &B : Q.Blocks) {
      int64_t Upper = B.Upper.eval(Outer.Model);
      if (Upper > Opts.MaxOffsets)
        return Verdict::Unknown;
      for (int64_t K = 0; K <= Upper && AllBlocksHold; ++K) {
        if (TimedOut())
          return Verdict::Unknown;
        FormulaId KEq = A.cmp(LinTerm::variable(B.Kappa), Cmp::Eq,
                              LinTerm(K));
        QfResult InnerR =
            solveQF(A, A.conj({B.Inner, PinF, KEq}), RemainingQf());
        if (InnerR.V == Verdict::Unknown)
          return Verdict::Unknown;
        if (InnerR.V == Verdict::Unsat) {
          AllBlocksHold = false;
          // Quantifier instantiation lemma (the heart of MBQI [36]):
          // the block demands, for THIS offset K, either K > Upper(#1)
          // or a witness run with a mismatch at K. Conjoin the κ := K
          // instance with fresh inner variables — it prunes every
          // future candidate lacking a mismatch at K, and can make the
          // outer side unsatisfiable outright (the Unsat verdict below
          // depends on these lemmas, not on candidate exhaustion).
          std::map<Var, Var> Fresh;
          for (Var V : B.InnerVars)
            Fresh.emplace(V, A.freshVar(A.varName(V) + "$i",
                                        A.varLo(V), A.varHi(V)));
          FormulaId Inst = A.substitute(B.Inner, [&](Var V) {
            if (V == B.Kappa)
              return LinTerm(K);
            auto It = Fresh.find(V);
            return LinTerm::variable(It == Fresh.end() ? V : It->second);
          });
          Blockers.push_back(A.disj(
              {A.cmp(LinTerm(K), Cmp::Gt, B.Upper), Inst}));
        }
      }
      if (!AllBlocksHold)
        break;
    }

    if (AllBlocksHold) {
      if (ModelOut)
        *ModelOut = std::move(Outer.Model);
      return Verdict::Sat;
    }

    // Refuted: exclude this valuation and retry. Prefer the semantic
    // block terms, which rule out every run encoding the same refuted
    // content instead of just this run.
    std::vector<FormulaId> Diff;
    if (!Q.BlockTerms.empty()) {
      Diff.reserve(Q.BlockTerms.size());
      for (const LinTerm &T : Q.BlockTerms)
        Diff.push_back(A.cmp(T, Cmp::Ne, LinTerm(T.eval(Outer.Model))));
    } else {
      Diff.reserve(Q.OuterVars.size());
      for (Var V : Q.OuterVars)
        Diff.push_back(A.cmp(LinTerm::variable(V), Cmp::Ne,
                             LinTerm(Outer.Model[V])));
    }
    Blockers.push_back(A.disj(std::move(Diff)));
  }
  return Verdict::Unknown;
}
