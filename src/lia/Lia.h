//===- lia/Lia.h - Linear integer arithmetic formulae ------------*- C++ -*-===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The LIA formula representation into which the tag-automaton framework
/// compiles position constraints (Secs. 4–6), and which the DPLL(T) solver
/// in `lia/Solver.h` decides. Plays the role of Z3's internal LIA format
/// in the paper's implementation.
///
/// Formulae live in an `Arena` and are referenced by dense `FormulaId`s.
/// Atoms are normalized linear constraints `t <= 0`; equalities and
/// disequalities are lowered before solving so that literal negation is
/// closed over the atom language (¬(t<=0) ≡ -t+1<=0 for integers).
///
//===----------------------------------------------------------------------===//

#ifndef POSTR_LIA_LIA_H
#define POSTR_LIA_LIA_H

#include "base/Base.h"
#include "lia/Rational.h"

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace postr {
namespace lia {

/// Integer variable, dense within one Arena.
using Var = uint32_t;

/// Formula node handle, dense within one Arena.
using FormulaId = uint32_t;

/// A linear term c0 + Σ ci·xi with int64 coefficients, kept sorted by
/// variable and free of zero coefficients.
class LinTerm {
public:
  LinTerm() = default;
  /*implicit*/ LinTerm(int64_t Constant) : Const(Constant) {}

  static LinTerm variable(Var V, int64_t Coeff = 1) {
    LinTerm T;
    if (Coeff != 0)
      T.Coeffs.push_back({V, Coeff});
    return T;
  }

  /// Σ 1·v over \p Vars (need not be sorted or duplicate-free; repeats
  /// accumulate). The bulk builder for Parikh tag/flow sums.
  static LinTerm sum(const std::vector<Var> &Vars);

  int64_t constant() const { return Const; }
  const std::vector<std::pair<Var, int64_t>> &coeffs() const {
    return Coeffs;
  }
  bool isConstant() const { return Coeffs.empty(); }

  /// Adds K·v in place. O(1) amortized when variables arrive in
  /// ascending order (the dominant pattern: count variables are minted
  /// in transition order); O(n) insert otherwise.
  LinTerm &addMonomial(Var V, int64_t K);

  /// Adds \p K to the constant in place.
  LinTerm &addConstant(int64_t K) {
    Const += K;
    return *this;
  }

  LinTerm operator+(const LinTerm &O) const {
    LinTerm R = *this;
    R += O;
    return R;
  }
  LinTerm operator-(const LinTerm &O) const {
    LinTerm R = *this;
    R -= O;
    return R;
  }
  LinTerm operator-() const { return *this * -1; }
  LinTerm operator*(int64_t K) const;
  /// True in-place sorted merge (no reallocation of the left operand
  /// beyond the final size; zero-coefficient entries are dropped).
  LinTerm &operator+=(const LinTerm &O) { return mergeInPlace(O, 1); }
  LinTerm &operator-=(const LinTerm &O) { return mergeInPlace(O, -1); }

  friend bool operator==(const LinTerm &A, const LinTerm &B) {
    return A.Const == B.Const && A.Coeffs == B.Coeffs;
  }

  /// Evaluates under a dense model vector (indexed by Var).
  int64_t eval(const std::vector<int64_t> &Model) const;

  std::string str() const;

private:
  /// Merges Sign·O into *this: backward in-place merge of the two sorted
  /// coefficient runs, then one compaction pass dropping zeros.
  LinTerm &mergeInPlace(const LinTerm &O, int64_t Sign);

  std::vector<std::pair<Var, int64_t>> Coeffs;
  int64_t Const = 0;
};

/// Formula node kinds. After `Arena::lower`, only True/False/Atom/Not/
/// And/Or remain and every Not wraps an Atom.
enum class FKind : uint8_t {
  True,
  False,
  Atom, ///< LinTerm <= 0 (after lowering) or any Cmp (before).
  Not,
  And,
  Or,
};

/// Comparison operators available when building atoms. All are lowered to
/// `<= 0` form before solving.
enum class Cmp : uint8_t { Le, Lt, Ge, Gt, Eq, Ne };

/// Formula arena: owns nodes, atoms, and variable metadata.
class Arena {
public:
  /// Creates a fresh integer variable. \p Lo / \p Hi are intrinsic bounds
  /// enforced directly by the theory solver (INT64_MIN/MAX mean
  /// unbounded); Parikh counter variables use Lo = 0.
  Var freshVar(std::string Name, int64_t Lo = INT64_MIN,
               int64_t Hi = INT64_MAX);

  uint32_t numVars() const { return static_cast<uint32_t>(Names.size()); }
  const std::string &varName(Var V) const { return Names[V]; }
  int64_t varLo(Var V) const { return Lower[V]; }
  int64_t varHi(Var V) const { return Upper[V]; }

  FormulaId trueF();
  FormulaId falseF();
  /// The atom `T Cmp 0`.
  FormulaId atom(LinTerm T, Cmp Op);
  /// Convenience: `L Cmp R`.
  FormulaId cmp(const LinTerm &L, Cmp Op, const LinTerm &R) {
    return atom(L - R, Op);
  }
  FormulaId conj(std::vector<FormulaId> Children);
  FormulaId disj(std::vector<FormulaId> Children);
  FormulaId neg(FormulaId F);
  FormulaId implies(FormulaId A, FormulaId B) {
    return disj({neg(A), B});
  }
  FormulaId iff(FormulaId A, FormulaId B) {
    return conj({implies(A, B), implies(B, A)});
  }

  FKind kind(FormulaId F) const { return Nodes[F].Kind; }
  const std::vector<FormulaId> &children(FormulaId F) const {
    return Nodes[F].Children;
  }
  const LinTerm &atomTerm(FormulaId F) const {
    assert(Nodes[F].Kind == FKind::Atom);
    return Atoms[Nodes[F].AtomIndex].Term;
  }
  Cmp atomCmp(FormulaId F) const {
    assert(Nodes[F].Kind == FKind::Atom);
    return Atoms[Nodes[F].AtomIndex].Op;
  }

  /// Number of formula nodes (a size proxy used by the benches that check
  /// the paper's "polynomial vs exponential encoding" claims).
  uint32_t numNodes() const { return static_cast<uint32_t>(Nodes.size()); }

  /// Rewrites \p F so that every atom has the form `t <= 0`:
  /// Eq → And(Le,Ge), Ne → Or(Lt,Gt), Lt → t+1 <= 0, Ge/Gt mirrored;
  /// pushes no negations (the solver treats ¬(t<=0) as -t+1<=0).
  FormulaId lower(FormulaId F);

  /// Rebuilds \p F with every variable v replaced by MapVar(v) inside
  /// atom terms (identity: LinTerm::variable(v)). The MBQI layer uses
  /// this to instantiate a ∀-block body at a concrete offset with fresh
  /// inner variables.
  FormulaId substitute(FormulaId F,
                       const std::function<LinTerm(Var)> &MapVar);

  /// Evaluates \p F under a dense model vector. Intended for model
  /// validation and tests; all variables must be assigned.
  bool eval(FormulaId F, const std::vector<int64_t> &Model) const;

  std::string str(FormulaId F) const;

private:
  struct Node {
    FKind Kind;
    uint32_t AtomIndex = 0;
    std::vector<FormulaId> Children;
  };
  struct AtomRec {
    LinTerm Term;
    Cmp Op;
  };

  FormulaId push(Node N) {
    Nodes.push_back(std::move(N));
    return static_cast<FormulaId>(Nodes.size() - 1);
  }

  std::vector<Node> Nodes;
  std::vector<AtomRec> Atoms;
  std::vector<std::string> Names;
  std::vector<int64_t> Lower, Upper;
  FormulaId TrueId = ~FormulaId(0), FalseId = ~FormulaId(0);
};

} // namespace lia
} // namespace postr

#endif // POSTR_LIA_LIA_H
