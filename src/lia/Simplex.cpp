//===- lia/Simplex.cpp - General simplex with branch-and-bound -----------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "lia/Simplex.h"

#include "base/Budget.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>

using namespace postr;
using namespace postr::lia;

namespace {

using Int = Rational::Int;

Int lcmInt(Int A, Int B) { return A / Rational::gcdInt(A, B) * B; }

/// Process-wide rule override for A/B runs; nullopt when the variable is
/// unset and each context's own PivotPolicy applies (the default —
/// effectively `adaptive`).
std::optional<PivotRule> ruleFromEnv() {
  const char *E = std::getenv("POSTR_SIMPLEX_PIVOT_RULE");
  if (!E)
    return std::nullopt;
  if (!std::strcmp(E, "adaptive"))
    return PivotRule::Adaptive;
  if (!std::strcmp(E, "bland"))
    return PivotRule::Bland;
  if (!std::strcmp(E, "markowitz"))
    return PivotRule::Markowitz;
  if (!std::strcmp(E, "sparsest") || !std::strcmp(E, "sparsest-row"))
    return PivotRule::SparsestRow;
  if (!std::strcmp(E, "violated") || !std::strcmp(E, "most-violated"))
    return PivotRule::MostViolated;
  // A typo must not silently record default-policy numbers under another
  // rule's name in an A/B table.
  std::fprintf(stderr,
               "postr: unrecognized POSTR_SIMPLEX_PIVOT_RULE '%s', "
               "using the context policy (adaptive)\n",
               E);
  return std::nullopt;
}

/// Read once per process: the Simplex constructor is on the per-disjunct
/// setup path and the flag is an inter-process A/B knob, not something
/// that changes mid-run.
PivotRule applyEnvOverride(PivotRule FromPolicy) {
  static const std::optional<PivotRule> Env = ruleFromEnv();
  return Env ? *Env : FromPolicy;
}

} // namespace

size_t Simplex::SparseRow::find(uint32_t X) const {
  auto It = std::lower_bound(Cols.begin(), Cols.end(), X);
  if (It == Cols.end() || *It != X)
    return SIZE_MAX;
  return static_cast<size_t>(It - Cols.begin());
}

Simplex::Simplex(uint32_t NumProblemVars, const PivotPolicy &Policy)
    : NumProblemVars(NumProblemVars), NumVars(NumProblemVars),
      RowOf(NumProblemVars, ~0u), Beta(NumProblemVars),
      Lo(NumProblemVars), Hi(NumProblemVars),
      LoReason(NumProblemVars, NoReason), HiReason(NumProblemVars, NoReason),
      Policy(Policy), Rule(applyEnvOverride(Policy.Rule)),
      InViolQueue(NumProblemVars, 0), ColCount(NumProblemVars, 0) {
  ColNz.resize(NumProblemVars);
  InColNz.resize(NumProblemVars);
  Integral.resize(NumProblemVars);
  for (uint32_t V = 0; V < NumProblemVars; ++V)
    Integral[V] = V;
}

uint32_t Simplex::addProblemVar(int64_t LoV, int64_t HiV) {
  uint32_t X = NumVars++;
  RowOf.push_back(~0u);
  Beta.push_back(Rational::zero());
  Lo.push_back(std::nullopt);
  Hi.push_back(std::nullopt);
  LoReason.push_back(NoReason);
  HiReason.push_back(NoReason);
  InViolQueue.push_back(0);
  ColCount.push_back(0);
  ColNz.emplace_back();
  InColNz.emplace_back();
  Integral.push_back(X);
  // The new variable is nonbasic with β = 0 and appears in no row, so
  // the basis and every row value stay valid. Intrinsic bounds may move
  // β off 0 (updateNonbasic), which keeps the rows consistent too.
  if (LoV != INT64_MIN) {
    bool Ok = assertLower(X, Rational(LoV));
    assert(Ok && "conflicting intrinsic lower bound");
    (void)Ok;
  }
  if (HiV != INT64_MAX) {
    bool Ok = assertUpper(X, Rational(HiV));
    assert(Ok && "conflicting intrinsic upper bound");
    (void)Ok;
  }
  return X;
}

void Simplex::setIntrinsicBounds(Var V, int64_t LoV, int64_t HiV) {
  assert(V < NumProblemVars && "intrinsic bounds on slack variable");
  if (LoV != INT64_MIN) {
    bool Ok = assertLower(V, Rational(LoV));
    assert(Ok && "conflicting intrinsic lower bound");
    (void)Ok;
  }
  if (HiV != INT64_MAX) {
    bool Ok = assertUpper(V, Rational(HiV));
    assert(Ok && "conflicting intrinsic upper bound");
    (void)Ok;
  }
}

void Simplex::normalizeRow(SparseRow &Row) {
  if (Row.Cols.size() > Stats.MaxRowNnz)
    Stats.MaxRowNnz = Row.Cols.size();
  if (Row.Nums.empty()) {
    Row.Den = 1;
    return;
  }
  // Den > 0 and gcd-reduced rows are canonical; integral rows (Den == 1)
  // need no pass at all, which is the overwhelmingly common case in the
  // ±1-coefficient Parikh/position tableaus.
  if (Row.Den == 1)
    return;
  Int G = Row.Den;
  for (Int N : Row.Nums) {
    G = Rational::gcdInt(G, N);
    if (G == 1)
      return;
  }
  for (Int &N : Row.Nums)
    N /= G;
  Row.Den /= G;
  ++Stats.DenNormalizations;
}

Rational Simplex::rowCoeff(uint32_t R, uint32_t X) const {
  const SparseRow &Row = Tableau[R];
  size_t I = Row.find(X);
  if (I == SIZE_MAX)
    return Rational::zero();
  return Rational(Row.Nums[I], Row.Den);
}

uint32_t Simplex::rowFor(const LinTerm &T) { return rowFor(T.coeffs()); }

uint32_t Simplex::rowFor(const std::vector<std::pair<Var, int64_t>> &Coeffs) {
  // A single-variable unit term needs no slack row.
  if (Coeffs.size() == 1 && Coeffs.front().second == 1)
    return Coeffs.front().first;
  auto It = TermToVar.find(Coeffs);
  if (It != TermToVar.end())
    return It->second;

  uint32_t Slack = NumVars++;
  uint32_t NewRow = static_cast<uint32_t>(Tableau.size());
  RowOf.push_back(NewRow);
  Lo.push_back(std::nullopt);
  Hi.push_back(std::nullopt);
  LoReason.push_back(NoReason);
  HiReason.push_back(NoReason);
  InViolQueue.push_back(0);
  ColCount.push_back(0);
  ColNz.emplace_back();
  InColNz.emplace_back();

  // New row: Slack = Σ ci·xi, with any basic xi substituted by its row so
  // the tableau stays in solved form (rows range over nonbasic vars
  // only). Accumulate into the dense rational scratch, then emit the
  // sparse row over one common denominator.
  if (DenseScratch.size() < NumVars) {
    DenseScratch.resize(NumVars, Rational::zero());
    DenseMark.resize(NumVars, 0);
  }
  DenseTouched.clear();
  auto Add = [&](uint32_t X, const Rational &V) {
    if (!DenseMark[X]) {
      DenseMark[X] = 1;
      DenseTouched.push_back(X);
    }
    DenseScratch[X] += V;
  };
  Rational Value = Rational::zero();
  for (auto [V, C] : Coeffs) {
    Rational Coef(C);
    if (!isBasic(V)) {
      Add(V, Coef);
    } else {
      const SparseRow &Sub = Tableau[RowOf[V]];
      for (size_t I = 0; I < Sub.size(); ++I)
        Add(Sub.Cols[I], Coef * Rational(Sub.Nums[I], Sub.Den));
    }
    Value += Coef * Beta[V];
  }
  std::sort(DenseTouched.begin(), DenseTouched.end());
  SparseRow Row;
  Int L = 1;
  for (uint32_t X : DenseTouched)
    if (!DenseScratch[X].isZero())
      L = lcmInt(L, DenseScratch[X].den());
  for (uint32_t X : DenseTouched) {
    const Rational &V = DenseScratch[X];
    if (!V.isZero()) {
      Row.Cols.push_back(X);
      Row.Nums.push_back(V.num() * (L / V.den()));
      ++ColCount[X];
    }
    DenseScratch[X] = Rational::zero();
    DenseMark[X] = 0;
  }
  Row.Den = L;
  normalizeRow(Row);
  Tableau.push_back(std::move(Row));
  for (uint32_t X : Tableau.back().Cols)
    noteColNonzero(NewRow, X);
  BasicVar.push_back(Slack);
  Beta.push_back(Value);
  TermToVar.emplace(Coeffs, Slack);
  if (Bud)
    // Row storage plus the per-variable bookkeeping (bounds, reasons,
    // column-support vectors, interning key). A MemOut trip here is
    // noticed at the owner's next checkpoint/interrupt poll.
    Bud->chargeMem(Tableau.back().size() *
                       (sizeof(uint32_t) + sizeof(Int) + sizeof(uint32_t)) +
                   128);
  return Slack;
}

bool Simplex::assertUpper(uint32_t X, const Rational &U, uint32_t Reason) {
  if (Hi[X] && *Hi[X] <= U)
    return true;
  if (Lo[X] && U < *Lo[X]) {
    Conflict.clear();
    if (isLemmaReason(Reason))
      Conflict.push_back(Reason);
    if (isLemmaReason(LoReason[X]))
      Conflict.push_back(LoReason[X]);
    if (CertOn)
      recordClashLeaf(X, Reason, /*NewUpper=*/true);
    return false;
  }
  AssertTrail.push_back({X, /*Upper=*/true, Hi[X], HiReason[X]});
  Hi[X] = U;
  HiReason[X] = Reason;
  if (isBasic(X))
    touchBasic(X);
  else if (Beta[X] > U)
    updateNonbasic(X, U);
  return true;
}

bool Simplex::assertLower(uint32_t X, const Rational &L, uint32_t Reason) {
  if (Lo[X] && *Lo[X] >= L)
    return true;
  if (Hi[X] && *Hi[X] < L) {
    Conflict.clear();
    if (isLemmaReason(Reason))
      Conflict.push_back(Reason);
    if (isLemmaReason(HiReason[X]))
      Conflict.push_back(HiReason[X]);
    if (CertOn)
      recordClashLeaf(X, Reason, /*NewUpper=*/false);
    return false;
  }
  AssertTrail.push_back({X, /*Upper=*/false, Lo[X], LoReason[X]});
  Lo[X] = L;
  LoReason[X] = Reason;
  if (isBasic(X))
    touchBasic(X);
  else if (Beta[X] < L)
    updateNonbasic(X, L);
  return true;
}

void Simplex::rollback(size_t Mark) {
  while (AssertTrail.size() > Mark) {
    const BoundUndo &U = AssertTrail.back();
    if (U.Upper) {
      Hi[U.X] = U.Old;
      HiReason[U.X] = U.OldReason;
    } else {
      Lo[U.X] = U.Old;
      LoReason[U.X] = U.OldReason;
    }
    AssertTrail.pop_back();
  }
}

void Simplex::markBaseline() {
  BaseLo = Lo;
  BaseHi = Hi;
  BaseLoReason = LoReason;
  BaseHiReason = HiReason;
  // The baseline bounds are never rolled back; drop their undo records.
  AssertTrail.clear();
}

void Simplex::resetToBaseline() {
  for (uint32_t X = 0; X < NumVars; ++X) {
    if (X < BaseLo.size()) {
      Lo[X] = BaseLo[X];
      Hi[X] = BaseHi[X];
      LoReason[X] = BaseLoReason[X];
      HiReason[X] = BaseHiReason[X];
    } else {
      Lo[X] = std::nullopt;
      Hi[X] = std::nullopt;
      LoReason[X] = NoReason;
      HiReason[X] = NoReason;
    }
  }
  AssertTrail.clear();
  // Bounds only got looser and β is untouched, so rows stay satisfied;
  // conservatively requeue the basics for the next feasibility check.
  for (uint32_t X : BasicVar)
    touchBasic(X);
}

void Simplex::updateNonbasic(uint32_t N, const Rational &V) {
  Rational Delta = V - Beta[N];
  if (Delta.isZero())
    return;
  // One pass over the column support: drop stale rows and push the delta
  // through the genuine entries (a single binary search per row serves
  // both the staleness test and the coefficient).
  std::vector<uint32_t> &Nz = ColNz[N];
  std::vector<uint8_t> &In = InColNz[N];
  size_t Keep = 0;
  for (uint32_t R : Nz) {
    const SparseRow &Row = Tableau[R];
    size_t I = Row.find(N);
    if (I == SIZE_MAX) {
      In[R] = 0;
      continue;
    }
    Nz[Keep++] = R;
    Beta[BasicVar[R]] += Rational(Row.Nums[I], Row.Den) * Delta;
    touchBasic(BasicVar[R]);
  }
  Nz.resize(Keep);
  Beta[N] = V;
}

const std::vector<uint32_t> &Simplex::compactCol(uint32_t X) {
  std::vector<uint32_t> &Nz = ColNz[X];
  std::vector<uint8_t> &In = InColNz[X];
  size_t Keep = 0;
  for (uint32_t R : Nz) {
    if (!Tableau[R].contains(X))
      In[R] = 0;
    else
      Nz[Keep++] = R;
  }
  Nz.resize(Keep);
  return Nz;
}

void Simplex::pivot(uint32_t B, uint32_t N) {
  ++Stats.Pivots;
  uint32_t R = RowOf[B];
  SparseRow &Row = Tableau[R];
  size_t IN = Row.find(N);
  assert(IN != SIZE_MAX && "pivot on zero coefficient");
  Int NN = Row.Nums[IN];
  bool Neg = NN < 0;

  // Solve the row B = ... + (NN/Den)·N for N in place:
  //   N = (Den·B − Σ_{X≠N} Num_X·X) / NN,
  // sign-adjusted so the denominator stays positive. Same support minus
  // N plus B, so fill-in can only come from the elimination below.
  Row.Cols.erase(Row.Cols.begin() + static_cast<ptrdiff_t>(IN));
  Row.Nums.erase(Row.Nums.begin() + static_cast<ptrdiff_t>(IN));
  --ColCount[N];
  for (Int &Num : Row.Nums)
    Num = Neg ? Num : -Num;
  Int BNum = Neg ? -Row.Den : Row.Den;
  size_t IB = static_cast<size_t>(
      std::lower_bound(Row.Cols.begin(), Row.Cols.end(), B) -
      Row.Cols.begin());
  Row.Cols.insert(Row.Cols.begin() + static_cast<ptrdiff_t>(IB), B);
  Row.Nums.insert(Row.Nums.begin() + static_cast<ptrdiff_t>(IB), BNum);
  ++ColCount[B];
  Row.Den = Neg ? -NN : NN;
  normalizeRow(Row);
  noteColNonzero(R, B);
  BasicVar[R] = N;
  RowOf[N] = R;
  RowOf[B] = ~0u;

  // Substitute N out of every other row with a genuine N entry, walking
  // the transposed support: Other += (m_N/e)·Piv with the N column
  // dropped, computed as an integer sorted-merge over the common
  // denominator e·q and gcd-normalized once per row.
  const SparseRow &Piv = Tableau[R];
  Int Q = Piv.Den;
  for (uint32_t R2 : compactCol(N)) {
    assert(R2 != R && "pivot row still lists its own entering column");
    SparseRow &Other = Tableau[R2];
    size_t J = Other.find(N);
    assert(J != SIZE_MAX && "compacted column lists a zero entry");
    Int MN = Other.Nums[J];
    Int E = Other.Den;
    MergeScratch.Cols.clear();
    MergeScratch.Nums.clear();
    MergeScratch.Cols.reserve(Other.size() + Piv.size());
    MergeScratch.Nums.reserve(Other.size() + Piv.size());
    size_t I1 = 0, I2 = 0, N1 = Other.size(), N2 = Piv.size();
    while (I1 < N1 || I2 < N2) {
      if (I1 == J) {
        ++I1;
        continue;
      }
      uint32_t C1 = I1 < N1 ? Other.Cols[I1] : UINT32_MAX;
      uint32_t C2 = I2 < N2 ? Piv.Cols[I2] : UINT32_MAX;
      if (C1 < C2) {
        MergeScratch.Cols.push_back(C1);
        MergeScratch.Nums.push_back(Other.Nums[I1] * Q);
        ++I1;
      } else if (C2 < C1) {
        // Fill-in: the pivot row contributes a column Other lacked.
        MergeScratch.Cols.push_back(C2);
        MergeScratch.Nums.push_back(MN * Piv.Nums[I2]);
        ++ColCount[C2];
        noteColNonzero(R2, C2);
        ++Stats.RowFillIn;
        ++I2;
      } else {
        Int S = Other.Nums[I1] * Q + MN * Piv.Nums[I2];
        if (S == 0)
          --ColCount[C1]; // cancelled; ColNz keeps a stale entry
        else {
          MergeScratch.Cols.push_back(C1);
          MergeScratch.Nums.push_back(S);
        }
        ++I1;
        ++I2;
      }
    }
    MergeScratch.Den = E * Q;
    normalizeRow(MergeScratch);
    std::swap(Other.Cols, MergeScratch.Cols);
    std::swap(Other.Nums, MergeScratch.Nums);
    Other.Den = MergeScratch.Den;
    --ColCount[N];
  }
  // No row contains N anymore (it is basic): reset its column support.
  for (uint32_t R2 : ColNz[N])
    InColNz[N][R2] = 0;
  ColNz[N].clear();
}

bool Simplex::pivotAndUpdate(uint32_t B, uint32_t N, const Rational &V) {
  uint32_t R = RowOf[B];
  Rational A = rowCoeff(R, N);
  Rational Theta = (V - Beta[B]) / A;
  Beta[B] = V;
  Beta[N] += Theta;
  for (uint32_t R2 : compactCol(N)) {
    if (R2 == R)
      continue;
    Beta[BasicVar[R2]] += rowCoeff(R2, N) * Theta;
    touchBasic(BasicVar[R2]);
  }
  pivot(B, N);
  touchBasic(N);
  return true;
}

uint32_t Simplex::selectEntering(uint32_t B, bool NeedIncrease,
                                 bool Bland) const {
  const SparseRow &Row = Tableau[RowOf[B]];
  uint32_t N = ~0u;
  for (size_t I = 0; I < Row.size(); ++I) {
    uint32_t X = Row.Cols[I];
    if (X == B || isBasic(X))
      continue;
    bool Pos = Row.Nums[I] > 0; // Den > 0: numerator sign = coeff sign
    bool CanUse;
    if (NeedIncrease)
      CanUse = (Pos && (!Hi[X] || Beta[X] < *Hi[X])) ||
               (!Pos && (!Lo[X] || Beta[X] > *Lo[X]));
    else
      CanUse = (!Pos && (!Hi[X] || Beta[X] < *Hi[X])) ||
               (Pos && (!Lo[X] || Beta[X] > *Lo[X]));
    if (!CanUse)
      continue;
    if (N == ~0u ||
        (Bland ? X < N : ColCount[X] < ColCount[N] ||
                             (ColCount[X] == ColCount[N] && X < N)))
      N = X;
  }
  return N;
}

PivotRule Simplex::activeRule() const {
  if (Rule != PivotRule::Adaptive)
    return Rule;
  if (Degraded)
    return PivotRule::Bland;
  // Family start rules, from the ab_pivot_rules.sh measurements (table
  // in ROADMAP): SparsestRow halves elimination fill-in on the wide
  // Parikh/length tableaus and wins the solve/mbqi stages at identical
  // verdicts, so Parikh-heavy — and unclassified — contexts start there
  // with the degradation fence underneath. Both word-equation
  // subfamilies (the django/thefuck pipeline shapes) start on Bland: the
  // post-split ab_pivot_rules.sh re-run still has Bland winning the
  // pipeline stage (sparsest −25%, markowitz/violated flip verdicts),
  // and no per-subfamily divergence has shown up yet — the split keeps
  // the two shapes separately classifiable so a future A/B can tell
  // them apart without re-plumbing.
  return Policy.Family == InstanceFamily::WordEqDiseq ||
                 Policy.Family == InstanceFamily::WordEqPosition
             ? PivotRule::Bland
             : PivotRule::SparsestRow;
}

void Simplex::noteCheckDone(uint64_t PivotsThisCheck) {
  if (Rule != PivotRule::Adaptive)
    return;
  if (Degraded) {
    // Probation: a fenced context re-earns its family start rule after a
    // long window of near-idle checks. The bar is deliberately stricter
    // than the degrade trigger (default one pivot per check over 8x the
    // degrade window), so a tableau that keeps wandering never recovers,
    // while one that degraded on a single bad episode stops paying the
    // Bland tax for the rest of its (possibly long) incremental life.
    if (Policy.RecoveryWindowChecks == 0)
      return;
    RecoveryPivots += PivotsThisCheck;
    if (++RecoveryChecks >= Policy.RecoveryWindowChecks) {
      if (RecoveryPivots <=
          static_cast<uint64_t>(Policy.RecoveryPivotsPerCheck) *
              RecoveryChecks) {
        Degraded = false;
        ++Stats.FenceRecoveries;
        WindowChecks = WindowPivots = 0; // degrade window restarts clean
      }
      RecoveryChecks = RecoveryPivots = 0;
    }
    return;
  }
  if (activeRule() == PivotRule::Bland)
    return;
  // Immediate trigger: the restoration ran into the in-check Bland
  // fallback — the preferred rule failed to converge on its own and
  // every later check on this tableau is likely to repeat that.
  if (PivotsThisCheck >= Policy.DegradeRestorationLen) {
    Degraded = true;
    ++Stats.RuleSwitches;
    return;
  }
  // Windowed trigger: a sustained pivots-per-check average far above the
  // healthy baseline (well under one on the tag workloads) means the
  // rule is thrashing short of the hard fallback — fence it too.
  WindowPivots += PivotsThisCheck;
  if (++WindowChecks >= Policy.DegradeWindowChecks) {
    if (WindowPivots >
        static_cast<uint64_t>(Policy.DegradeWindowPivotsPerCheck) *
            WindowChecks) {
      Degraded = true;
      ++Stats.RuleSwitches;
    }
    WindowChecks = WindowPivots = 0;
  }
}

bool Simplex::checkRational() {
  ++Stats.Checks;
  // Leaving variable: latched once per check from the context policy
  // (PivotRule::Adaptive resolves through the family start rule and the
  // degradation fence — see activeRule()), with POSTR_SIMPLEX_PIVOT_RULE
  // forcing a fixed rule process-wide for A/B runs (each concrete rule
  // wins somewhere and blows up somewhere else — A/B over
  // bench/workloads with bench/ab_pivot_rules.sh before changing the
  // family start rules; see ROADMAP and docs/BENCH.md). Rule changes
  // only ever take effect here, at a check boundary — never inside the
  // pivot loop below. Entering variable: the eligible column with the
  // fewest tableau nonzeros (anti-fill-in) while the run is short. Past
  // the threshold every selection falls back to Bland's smallest-index —
  // which terminates unconditionally.
  const PivotRule Active = activeRule();
  uint64_t PivotsThisCheck = 0;
  const uint64_t BlandThreshold = Policy.DegradeRestorationLen;
  // The Markowitz selection has no anti-cycling guarantee and its free
  // choice among violated rows can wander on degenerate vertices, so it
  // only steers the first pivots of a restoration — where the fill-in
  // damage is done — before handing over to Bland's convergent order.
  const uint64_t MarkowitzThreshold = 24;
  for (;;) {
    // A single feasibility restoration can pivot for a long time on
    // adversarial tableaus; poll the interrupt and bail out claiming
    // feasibility. The interrupt predicate is sticky (deadline/cancel),
    // and every caller that would trust a model re-checks it first, so
    // the white lie only ever leads to an Abort/Unknown.
    if (Interrupt && (PivotsThisCheck & 15) == 15 && Interrupt()) {
      noteCheckDone(PivotsThisCheck);
      return true;
    }
    bool Bland = PivotsThisCheck >= BlandThreshold;
    // Compact the lazy queue: verify entries, drop the feasible ones.
    size_t Keep = 0;
    for (size_t I = 0; I < ViolQueue.size(); ++I) {
      uint32_t X = ViolQueue[I];
      bool ViolLo = isBasic(X) && Lo[X] && Beta[X] < *Lo[X];
      bool ViolHi = isBasic(X) && Hi[X] && Beta[X] > *Hi[X];
      if (!ViolLo && !ViolHi) {
        InViolQueue[X] = 0;
        continue;
      }
      ViolQueue[Keep++] = X;
    }
    ViolQueue.resize(Keep);
    if (Keep == 0) {
      noteCheckDone(PivotsThisCheck);
      return true;
    }

    uint32_t B = ~0u;
    bool NeedIncrease = false;
    uint32_t MarkowitzN = ~0u; ///< entering pick when Markowitz chose B
    // The Markowitz rule exercises leaving-choice freedom only where it
    // genuinely exists — several rows violated at once (bound bursts,
    // warm-start restorations) and early in the restoration. The
    // single-violation DPLL(T) step and long degenerate runs stay on
    // Bland's convergent order (free choice has no anti-cycling
    // guarantee and was observed wandering on degenerate vertices).
    bool Markowitz = !Bland && Active == PivotRule::Markowitz && Keep >= 2 &&
                     PivotsThisCheck < MarkowitzThreshold;
    /// Concrete rule this iteration's selection runs under, for the
    /// per-rule pivot attribution.
    PivotRule Chose = Active;
    if (Bland || Active == PivotRule::Bland ||
        (Active == PivotRule::Markowitz && !Markowitz)) {
      Chose = PivotRule::Bland;
      for (uint32_t X : ViolQueue)
        if (B == ~0u || X < B)
          B = X;
    } else if (Markowitz) {
      uint64_t BestCost = 0;
      for (uint32_t X : ViolQueue) {
        bool ViolLo = Lo[X] && Beta[X] < *Lo[X];
        // A violated row with no eligible entering column certifies
        // infeasibility — take it immediately (cost "-1", smallest index
        // on ties) so the conflict path below fires deterministically.
        uint32_t NX = selectEntering(X, ViolLo, /*Bland=*/false);
        uint64_t Cost =
            NX == ~0u
                ? 0
                : 1 + static_cast<uint64_t>(Tableau[RowOf[X]].size() - 1) *
                          (ColCount[NX] > 0 ? ColCount[NX] - 1 : 0);
        if (B == ~0u || Cost < BestCost || (Cost == BestCost && X < B)) {
          BestCost = Cost;
          MarkowitzN = NX;
          B = X;
          NeedIncrease = ViolLo;
        }
      }
    } else if (Active == PivotRule::SparsestRow) {
      size_t BestNnz = 0;
      for (uint32_t X : ViolQueue) {
        size_t Nnz = Tableau[RowOf[X]].size();
        if (B == ~0u || Nnz < BestNnz || (Nnz == BestNnz && X < B)) {
          BestNnz = Nnz;
          B = X;
        }
      }
    } else { // PivotRule::MostViolated
      Rational BestViol;
      for (uint32_t X : ViolQueue) {
        bool ViolLo = Lo[X] && Beta[X] < *Lo[X];
        Rational V = ViolLo ? *Lo[X] - Beta[X] : Beta[X] - *Hi[X];
        if (B == ~0u || BestViol < V || (!(V < BestViol) && X < B)) {
          BestViol = V;
          B = X;
        }
      }
    }
    if (!Markowitz)
      NeedIncrease = Lo[B] && Beta[B] < *Lo[B];
    ++PivotsThisCheck;

    uint32_t N =
        Markowitz ? MarkowitzN : selectEntering(B, NeedIncrease, Bland);
    if (N == ~0u) {
      const SparseRow &Row = Tableau[RowOf[B]];
      // The row of B certifies infeasibility: B's violated bound plus the
      // bound every nonbasic row variable is stuck at.
      Conflict.clear();
      uint32_t BReason = NeedIncrease ? LoReason[B] : HiReason[B];
      if (isLemmaReason(BReason))
        Conflict.push_back(BReason);
      for (size_t I = 0; I < Row.size(); ++I) {
        uint32_t X = Row.Cols[I];
        if (X == B || isBasic(X))
          continue;
        bool StuckAtHi = NeedIncrease ? (Row.Nums[I] > 0)
                                      : (Row.Nums[I] < 0);
        uint32_t RR = StuckAtHi ? HiReason[X] : LoReason[X];
        if (isLemmaReason(RR))
          Conflict.push_back(RR);
      }
      std::sort(Conflict.begin(), Conflict.end());
      Conflict.erase(std::unique(Conflict.begin(), Conflict.end()),
                     Conflict.end());
      if (CertOn)
        recordRowLeaf(B, NeedIncrease);
      noteCheckDone(PivotsThisCheck);
      return false;
    }
    ++Stats.PivotsByRule[static_cast<size_t>(Chose)];
    pivotAndUpdate(B, N, NeedIncrease ? *Lo[B] : *Hi[B]);
  }
}

int32_t Simplex::recordClashLeaf(uint32_t X, uint32_t NewReason,
                                 bool NewUpper) {
  if (!InBranch)
    Cert = ConflictCert();
  FarkasLeafRec Leaf;
  // New bound against the existing opposite bound, unit multipliers:
  // (X <= U) + (X >= L) with U < L sums to 0 <= U - L < 0.
  Leaf.Terms.push_back({NewReason, X, NewUpper, Rational::one()});
  Leaf.Terms.push_back({NewUpper ? LoReason[X] : HiReason[X], X, !NewUpper,
                        Rational::one()});
  Cert.Leaves.push_back(std::move(Leaf));
  Cert.Nodes.push_back(
      {static_cast<int32_t>(Cert.Leaves.size() - 1), 0, 0, -1, -1});
  int32_t Node = static_cast<int32_t>(Cert.Nodes.size() - 1);
  if (!InBranch)
    Cert.Root = Node;
  return Node;
}

int32_t Simplex::recordRowLeaf(uint32_t B, bool NeedIncrease) {
  if (!InBranch)
    Cert = ConflictCert();
  const SparseRow &Row = Tableau[RowOf[B]];
  FarkasLeafRec Leaf;
  // The row identity value(B) = Σ (Nums[i]/Den)·Cols[i] turns the stuck
  // bounds into a bound on B that contradicts B's violated bound:
  //   NeedIncrease:  -B <= -Lo[B], plus  a_i·X_i <= a_i·Hi_i (a_i > 0)
  //                  and -a_i·X_i <= -a_i·Lo_i (a_i < 0);
  // the variable parts cancel through the row identity and the constant
  // is (max achievable B) - Lo[B] < 0. Mirrored for the upper side.
  Leaf.Terms.push_back({NeedIncrease ? LoReason[B] : HiReason[B], B,
                        /*Upper=*/!NeedIncrease, Rational::one()});
  for (size_t I = 0; I < Row.size(); ++I) {
    uint32_t X = Row.Cols[I];
    if (X == B || isBasic(X))
      continue;
    bool StuckAtHi = NeedIncrease ? (Row.Nums[I] > 0) : (Row.Nums[I] < 0);
    Int Num = Row.Nums[I];
    Rational Mult(Num < 0 ? -Num : Num, Row.Den);
    Leaf.Terms.push_back(
        {StuckAtHi ? HiReason[X] : LoReason[X], X, StuckAtHi, Mult});
  }
  Cert.Leaves.push_back(std::move(Leaf));
  Cert.Nodes.push_back(
      {static_cast<int32_t>(Cert.Leaves.size() - 1), 0, 0, -1, -1});
  int32_t Node = static_cast<int32_t>(Cert.Nodes.size() - 1);
  if (!InBranch)
    Cert.Root = Node;
  return Node;
}

Simplex::Snapshot Simplex::save() const { return {Lo, Hi, Beta}; }

void Simplex::restore(const Snapshot &S) {
  assert(S.Beta.size() == NumVars &&
         "rows must be registered before the first snapshot");
  Lo = S.Lo;
  Hi = S.Hi;
  Beta = S.Beta;
  // Wholesale state change: conservatively requeue every basic variable.
  for (uint32_t X : BasicVar)
    touchBasic(X);
}

TheoryResult Simplex::checkInteger(std::vector<int64_t> &ModelOut,
                                   uint64_t NodeBudget) {
  uint64_t Budget = NodeBudget;
  IntegerCore.clear();
  int32_t Root = -1;
  if (CertOn) {
    Cert = ConflictCert();
    InBranch = true;
  }
  TheoryResult R = branch(ModelOut, Budget, /*Depth=*/0, Root);
  InBranch = false;
  if (R == TheoryResult::Unsat) {
    std::sort(IntegerCore.begin(), IntegerCore.end());
    IntegerCore.erase(std::unique(IntegerCore.begin(), IntegerCore.end()),
                      IntegerCore.end());
    Conflict = IntegerCore;
    if (CertOn)
      Cert.Root = Root;
  } else if (CertOn) {
    Cert = ConflictCert(); // no refutation to certify
  }
  return R;
}

TheoryResult Simplex::branch(std::vector<int64_t> &ModelOut,
                             uint64_t &Budget, uint32_t Depth,
                             int32_t &NodeOut) {
  NodeOut = -1;
  if (Budget == 0)
    return TheoryResult::Unknown;
  if (Interrupt && Interrupt())
    return TheoryResult::Unknown;
  --Budget;
  if (!checkRational()) {
    // Leaf of the refutation tree: fold its explanation into the core.
    // checkRational just recorded the leaf node (when recording is on).
    IntegerCore.insert(IntegerCore.end(), Conflict.begin(), Conflict.end());
    if (CertOn)
      NodeOut = static_cast<int32_t>(Cert.Nodes.size() - 1);
    return TheoryResult::Unsat;
  }

  // Find a problem variable with a fractional value. Slack variables
  // are integer combinations of problem vars, so they need no branching.
  uint32_t Frac = ~0u;
  for (uint32_t V : Integral)
    if (!Beta[V].isInteger()) {
      Frac = V;
      break;
    }
  if (Frac == ~0u) {
    // An interrupted checkRational above may have claimed feasibility
    // spuriously; never hand out a model without re-checking.
    if (Interrupt && Interrupt())
      return TheoryResult::Unknown;
    ModelOut.resize(Integral.size());
    for (size_t Ord = 0; Ord < Integral.size(); ++Ord)
      ModelOut[Ord] = Beta[Integral[Ord]].asInt64();
    return TheoryResult::Sat;
  }

  Rational Floor = Beta[Frac].floor();
  bool SawUnknown = false;
  // Split bounds get the path-depth reason code while recording, so a
  // leaf can cite the split that constrained it; with recording off the
  // split carries NoReason exactly as before.
  const uint32_t SplitReason = CertOn ? SplitBase + Depth : NoReason;
  int32_t DownNode = -1, UpNode = -1;

  size_t M = mark();
  if (assertUpper(Frac, Floor, SplitReason)) {
    TheoryResult R = branch(ModelOut, Budget, Depth + 1, DownNode);
    if (R == TheoryResult::Sat)
      return R;
    if (R == TheoryResult::Unknown)
      SawUnknown = true;
  } else {
    // The split bound clashed with an asserted bound: that bound is part
    // of the refutation (the split itself resolves away).
    IntegerCore.insert(IntegerCore.end(), Conflict.begin(), Conflict.end());
    if (CertOn)
      DownNode = static_cast<int32_t>(Cert.Nodes.size() - 1);
  }
  rollback(M);
  if (assertLower(Frac, Floor + Rational::one(), SplitReason)) {
    TheoryResult R = branch(ModelOut, Budget, Depth + 1, UpNode);
    if (R == TheoryResult::Sat)
      return R;
    if (R == TheoryResult::Unknown)
      SawUnknown = true;
  } else {
    IntegerCore.insert(IntegerCore.end(), Conflict.begin(), Conflict.end());
    if (CertOn)
      UpNode = static_cast<int32_t>(Cert.Nodes.size() - 1);
  }
  rollback(M);
  if (SawUnknown)
    return TheoryResult::Unknown;
  if (CertOn) {
    Cert.Nodes.push_back(
        {-1, Frac, Floor.asInt64(), DownNode, UpNode});
    NodeOut = static_cast<int32_t>(Cert.Nodes.size() - 1);
  }
  return TheoryResult::Unsat;
}
