//===- lia/Simplex.cpp - General simplex with branch-and-bound -----------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "lia/Simplex.h"

#include <algorithm>

using namespace postr;
using namespace postr::lia;

Simplex::Simplex(uint32_t NumProblemVars)
    : NumProblemVars(NumProblemVars), NumVars(NumProblemVars),
      RowOf(NumProblemVars, ~0u), Beta(NumProblemVars),
      Lo(NumProblemVars), Hi(NumProblemVars),
      LoReason(NumProblemVars, NoReason), HiReason(NumProblemVars, NoReason),
      InViolQueue(NumProblemVars, 0), ColCount(NumProblemVars, 0) {
  ColNz.resize(NumProblemVars);
  InColNz.resize(NumProblemVars);
}

void Simplex::setIntrinsicBounds(Var V, int64_t LoV, int64_t HiV) {
  assert(V < NumProblemVars && "intrinsic bounds on slack variable");
  if (LoV != INT64_MIN) {
    bool Ok = assertLower(V, Rational(LoV));
    assert(Ok && "conflicting intrinsic lower bound");
    (void)Ok;
  }
  if (HiV != INT64_MAX) {
    bool Ok = assertUpper(V, Rational(HiV));
    assert(Ok && "conflicting intrinsic upper bound");
    (void)Ok;
  }
}

uint32_t Simplex::rowFor(const LinTerm &T) {
  // A single-variable unit term needs no slack row.
  if (T.coeffs().size() == 1 && T.coeffs().front().second == 1)
    return T.coeffs().front().first;
  auto It = TermToVar.find(T.coeffs());
  if (It != TermToVar.end())
    return It->second;

  uint32_t Slack = NumVars++;
  RowOf.push_back(static_cast<uint32_t>(Tableau.size()));
  Lo.push_back(std::nullopt);
  Hi.push_back(std::nullopt);
  LoReason.push_back(NoReason);
  HiReason.push_back(NoReason);
  InViolQueue.push_back(0);
  ColCount.push_back(0);
  ColNz.emplace_back();
  InColNz.emplace_back();
  // Extend existing rows with a zero column for the new variable.
  for (std::vector<Rational> &Row : Tableau)
    Row.push_back(Rational::zero());
  for (std::vector<uint8_t> &In : InRowNz)
    In.push_back(0);

  // New row: Slack = Σ ci·xi. Substitute any basic xi by its row so the
  // tableau stays in solved form (rows range over nonbasic vars only).
  std::vector<Rational> Row(NumVars, Rational::zero());
  Rational Value = Rational::zero();
  for (auto [V, C] : T.coeffs()) {
    Rational Coef(C);
    if (!isBasic(V)) {
      Row[V] += Coef;
    } else {
      const std::vector<Rational> &Sub = Tableau[RowOf[V]];
      for (uint32_t X : RowNz[RowOf[V]])
        if (!Sub[X].isZero())
          Row[X] += Coef * Sub[X];
    }
    Value += Coef * Beta[V];
  }
  Row[Slack] = Rational::zero();
  std::vector<uint32_t> Nz;
  std::vector<uint8_t> In(NumVars, 0);
  for (uint32_t X = 0; X < NumVars; ++X)
    if (!Row[X].isZero()) {
      Nz.push_back(X);
      In[X] = 1;
    }
  uint32_t NewRow = static_cast<uint32_t>(Tableau.size());
  for (uint32_t X : Nz)
    ++ColCount[X];
  Tableau.push_back(std::move(Row));
  RowNz.push_back(std::move(Nz));
  InRowNz.push_back(std::move(In));
  for (uint32_t X : RowNz.back())
    noteColNonzero(NewRow, X);
  BasicVar.push_back(Slack);
  Beta.push_back(Value);
  TermToVar.emplace(T.coeffs(), Slack);
  return Slack;
}

bool Simplex::assertUpper(uint32_t X, const Rational &U, uint32_t Reason) {
  if (Hi[X] && *Hi[X] <= U)
    return true;
  if (Lo[X] && U < *Lo[X]) {
    Conflict.clear();
    if (Reason != NoReason)
      Conflict.push_back(Reason);
    if (LoReason[X] != NoReason)
      Conflict.push_back(LoReason[X]);
    return false;
  }
  AssertTrail.push_back({X, /*Upper=*/true, Hi[X], HiReason[X]});
  Hi[X] = U;
  HiReason[X] = Reason;
  if (isBasic(X))
    touchBasic(X);
  else if (Beta[X] > U)
    updateNonbasic(X, U);
  return true;
}

bool Simplex::assertLower(uint32_t X, const Rational &L, uint32_t Reason) {
  if (Lo[X] && *Lo[X] >= L)
    return true;
  if (Hi[X] && *Hi[X] < L) {
    Conflict.clear();
    if (Reason != NoReason)
      Conflict.push_back(Reason);
    if (HiReason[X] != NoReason)
      Conflict.push_back(HiReason[X]);
    return false;
  }
  AssertTrail.push_back({X, /*Upper=*/false, Lo[X], LoReason[X]});
  Lo[X] = L;
  LoReason[X] = Reason;
  if (isBasic(X))
    touchBasic(X);
  else if (Beta[X] < L)
    updateNonbasic(X, L);
  return true;
}

void Simplex::rollback(size_t Mark) {
  while (AssertTrail.size() > Mark) {
    const BoundUndo &U = AssertTrail.back();
    if (U.Upper) {
      Hi[U.X] = U.Old;
      HiReason[U.X] = U.OldReason;
    } else {
      Lo[U.X] = U.Old;
      LoReason[U.X] = U.OldReason;
    }
    AssertTrail.pop_back();
  }
}

void Simplex::markBaseline() {
  BaseLo = Lo;
  BaseHi = Hi;
  BaseLoReason = LoReason;
  BaseHiReason = HiReason;
  // The baseline bounds are never rolled back; drop their undo records.
  AssertTrail.clear();
}

void Simplex::resetToBaseline() {
  for (uint32_t X = 0; X < NumVars; ++X) {
    if (X < BaseLo.size()) {
      Lo[X] = BaseLo[X];
      Hi[X] = BaseHi[X];
      LoReason[X] = BaseLoReason[X];
      HiReason[X] = BaseHiReason[X];
    } else {
      Lo[X] = std::nullopt;
      Hi[X] = std::nullopt;
      LoReason[X] = NoReason;
      HiReason[X] = NoReason;
    }
  }
  AssertTrail.clear();
  // Bounds only got looser and β is untouched, so rows stay satisfied;
  // conservatively requeue the basics for the next feasibility check.
  for (uint32_t X : BasicVar)
    touchBasic(X);
}

void Simplex::updateNonbasic(uint32_t N, const Rational &V) {
  Rational Delta = V - Beta[N];
  if (Delta.isZero())
    return;
  for (uint32_t R : compactCol(N)) {
    Beta[BasicVar[R]] += Tableau[R][N] * Delta;
    touchBasic(BasicVar[R]);
  }
  Beta[N] = V;
}

const std::vector<uint32_t> &Simplex::compactCol(uint32_t X) {
  std::vector<uint32_t> &Nz = ColNz[X];
  std::vector<uint8_t> &In = InColNz[X];
  size_t Keep = 0;
  for (uint32_t R : Nz) {
    if (Tableau[R][X].isZero())
      In[R] = 0;
    else
      Nz[Keep++] = R;
  }
  Nz.resize(Keep);
  return Nz;
}

const std::vector<uint32_t> &Simplex::compactRow(uint32_t R) {
  std::vector<uint32_t> &Nz = RowNz[R];
  const std::vector<Rational> &Row = Tableau[R];
  size_t Keep = 0;
  for (uint32_t X : Nz) {
    if (Row[X].isZero())
      InRowNz[R][X] = 0;
    else
      Nz[Keep++] = X;
  }
  Nz.resize(Keep);
  return Nz;
}

void Simplex::pivot(uint32_t B, uint32_t N) {
  ++NumPivots;
  uint32_t R = RowOf[B];
  std::vector<Rational> &Row = Tableau[R];
  Rational A = Row[N];
  assert(!A.isZero() && "pivot on zero coefficient");

  // Solve the row B = ... + A*N + ... for N, touching only its support.
  Rational InvA = Rational::one() / A;
  const std::vector<uint32_t> &OldNz = compactRow(R);
  std::vector<uint32_t> NewNz;
  NewNz.reserve(OldNz.size());
  for (uint32_t X : OldNz) {
    if (X == N) {
      Row[X] = Rational::zero();
      InRowNz[R][X] = 0;
      --ColCount[X];
      continue;
    }
    Row[X] = -Row[X] * InvA;
    NewNz.push_back(X);
  }
  Row[B] = InvA;
  if (!InRowNz[R][B])
    InRowNz[R][B] = 1;
  noteColNonzero(R, B);
  ++ColCount[B];
  NewNz.push_back(B);
  RowNz[R] = std::move(NewNz);
  BasicVar[R] = N;
  RowOf[N] = R;
  RowOf[B] = ~0u;

  // Substitute N in every other row with a nonzero N-column entry,
  // walking the transposed support instead of scanning all rows.
  const std::vector<Rational> &Piv = Tableau[R];
  const std::vector<uint32_t> &PivNz = RowNz[R];
  for (uint32_t R2 : compactCol(N)) {
    if (R2 == R)
      continue;
    std::vector<Rational> &Other = Tableau[R2];
    Rational C = Other[N];
    Other[N] = Rational::zero();
    --ColCount[N];
    for (uint32_t X : PivNz) {
      bool WasZero = Other[X].isZero();
      Other[X] += C * Piv[X];
      bool IsZero = Other[X].isZero();
      if (WasZero && !IsZero) {
        noteNonzero(R2, X);
        ++ColCount[X];
      } else if (!WasZero && IsZero) {
        --ColCount[X];
      }
    }
  }
}

bool Simplex::pivotAndUpdate(uint32_t B, uint32_t N, const Rational &V) {
  uint32_t R = RowOf[B];
  Rational A = Tableau[R][N];
  Rational Theta = (V - Beta[B]) / A;
  Beta[B] = V;
  Beta[N] += Theta;
  for (uint32_t R2 : compactCol(N)) {
    if (R2 == R)
      continue;
    Beta[BasicVar[R2]] += Tableau[R2][N] * Theta;
    touchBasic(BasicVar[R2]);
  }
  pivot(B, N);
  touchBasic(N);
  return true;
}

bool Simplex::checkRational() {
  ++NumChecks;
  // Leaving variable: Bland's smallest violated basic (sparsest-row and
  // most-violated variants both blow up on some workload instances —
  // see ROADMAP before changing this). Entering variable: the eligible
  // column with the fewest tableau nonzeros (anti-fill-in) while the
  // run is short, falling back to Bland's smallest-index — which
  // terminates unconditionally — if it degenerates.
  uint64_t PivotsThisCheck = 0;
  const uint64_t BlandThreshold = 256;
  for (;;) {
    // A single feasibility restoration can pivot for a long time on
    // adversarial tableaus; poll the interrupt and bail out claiming
    // feasibility. The interrupt predicate is sticky (deadline/cancel),
    // and every caller that would trust a model re-checks it first, so
    // the white lie only ever leads to an Abort/Unknown.
    if (Interrupt && (PivotsThisCheck & 15) == 15 && Interrupt())
      return true;
    bool Bland = PivotsThisCheck >= BlandThreshold;
    uint32_t B = ~0u;
    bool NeedIncrease = false;
    size_t Keep = 0;
    for (size_t I = 0; I < ViolQueue.size(); ++I) {
      uint32_t X = ViolQueue[I];
      bool ViolLo = isBasic(X) && Lo[X] && Beta[X] < *Lo[X];
      bool ViolHi = isBasic(X) && Hi[X] && Beta[X] > *Hi[X];
      if (!ViolLo && !ViolHi) {
        InViolQueue[X] = 0;
        continue;
      }
      ViolQueue[Keep++] = X;
      if (B == ~0u || X < B) {
        B = X;
        NeedIncrease = ViolLo;
      }
    }
    ViolQueue.resize(Keep);
    if (B == ~0u)
      return true;
    ++PivotsThisCheck;

    const std::vector<Rational> &Row = Tableau[RowOf[B]];
    const std::vector<uint32_t> &Nz = compactRow(RowOf[B]);
    uint32_t N = ~0u;
    for (uint32_t X : Nz) {
      if (X == B || isBasic(X))
        continue;
      const Rational &A = Row[X];
      bool CanUse;
      if (NeedIncrease)
        CanUse = (A > Rational::zero() && (!Hi[X] || Beta[X] < *Hi[X])) ||
                 (A < Rational::zero() && (!Lo[X] || Beta[X] > *Lo[X]));
      else
        CanUse = (A < Rational::zero() && (!Hi[X] || Beta[X] < *Hi[X])) ||
                 (A > Rational::zero() && (!Lo[X] || Beta[X] > *Lo[X]));
      if (!CanUse)
        continue;
      if (N == ~0u ||
          (Bland ? X < N : ColCount[X] < ColCount[N] ||
                               (ColCount[X] == ColCount[N] && X < N)))
        N = X;
    }
    if (N == ~0u) {
      // The row of B certifies infeasibility: B's violated bound plus the
      // bound every nonbasic row variable is stuck at.
      Conflict.clear();
      uint32_t BReason = NeedIncrease ? LoReason[B] : HiReason[B];
      if (BReason != NoReason)
        Conflict.push_back(BReason);
      for (uint32_t X : Nz) {
        if (X == B || Row[X].isZero() || isBasic(X))
          continue;
        bool StuckAtHi = NeedIncrease ? (Row[X] > Rational::zero())
                                      : (Row[X] < Rational::zero());
        uint32_t R = StuckAtHi ? HiReason[X] : LoReason[X];
        if (R != NoReason)
          Conflict.push_back(R);
      }
      std::sort(Conflict.begin(), Conflict.end());
      Conflict.erase(std::unique(Conflict.begin(), Conflict.end()),
                     Conflict.end());
      return false;
    }
    pivotAndUpdate(B, N, NeedIncrease ? *Lo[B] : *Hi[B]);
  }
}

Simplex::Snapshot Simplex::save() const { return {Lo, Hi, Beta}; }

void Simplex::restore(const Snapshot &S) {
  assert(S.Beta.size() == NumVars &&
         "rows must be registered before the first snapshot");
  Lo = S.Lo;
  Hi = S.Hi;
  Beta = S.Beta;
  // Wholesale state change: conservatively requeue every basic variable.
  for (uint32_t X : BasicVar)
    touchBasic(X);
}

TheoryResult Simplex::checkInteger(std::vector<int64_t> &ModelOut,
                                   uint64_t NodeBudget) {
  uint64_t Budget = NodeBudget;
  IntegerCore.clear();
  TheoryResult R = branch(ModelOut, Budget);
  if (R == TheoryResult::Unsat) {
    std::sort(IntegerCore.begin(), IntegerCore.end());
    IntegerCore.erase(std::unique(IntegerCore.begin(), IntegerCore.end()),
                      IntegerCore.end());
    Conflict = IntegerCore;
  }
  return R;
}

TheoryResult Simplex::branch(std::vector<int64_t> &ModelOut,
                             uint64_t &Budget) {
  if (Budget == 0)
    return TheoryResult::Unknown;
  if (Interrupt && Interrupt())
    return TheoryResult::Unknown;
  --Budget;
  if (!checkRational()) {
    // Leaf of the refutation tree: fold its explanation into the core.
    IntegerCore.insert(IntegerCore.end(), Conflict.begin(), Conflict.end());
    return TheoryResult::Unsat;
  }

  // Find an original variable with a fractional value. Slack variables
  // are integer combinations of originals, so they need no branching.
  uint32_t Frac = ~0u;
  for (uint32_t V = 0; V < NumProblemVars; ++V)
    if (!Beta[V].isInteger()) {
      Frac = V;
      break;
    }
  if (Frac == ~0u) {
    // An interrupted checkRational above may have claimed feasibility
    // spuriously; never hand out a model without re-checking.
    if (Interrupt && Interrupt())
      return TheoryResult::Unknown;
    ModelOut.resize(NumProblemVars);
    for (uint32_t V = 0; V < NumProblemVars; ++V)
      ModelOut[V] = Beta[V].asInt64();
    return TheoryResult::Sat;
  }

  Rational Floor = Beta[Frac].floor();
  bool SawUnknown = false;

  size_t M = mark();
  if (assertUpper(Frac, Floor)) {
    TheoryResult R = branch(ModelOut, Budget);
    if (R == TheoryResult::Sat)
      return R;
    if (R == TheoryResult::Unknown)
      SawUnknown = true;
  } else {
    // The split bound clashed with an asserted bound: that bound is part
    // of the refutation (the split itself carries NoReason).
    IntegerCore.insert(IntegerCore.end(), Conflict.begin(), Conflict.end());
  }
  rollback(M);
  if (assertLower(Frac, Floor + Rational::one())) {
    TheoryResult R = branch(ModelOut, Budget);
    if (R == TheoryResult::Sat)
      return R;
    if (R == TheoryResult::Unknown)
      SawUnknown = true;
  } else {
    IntegerCore.insert(IntegerCore.end(), Conflict.begin(), Conflict.end());
  }
  rollback(M);
  return SawUnknown ? TheoryResult::Unknown : TheoryResult::Unsat;
}
