//===- lia/Incremental.cpp - Incremental QF_LIA solver contexts -----------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "lia/Incremental.h"

#include "base/Budget.h"
#include "base/Hash.h"
#include "lia/Sat.h"
#include "lia/Simplex.h"
#include "proof/Proof.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>

using namespace postr;
using namespace postr::lia;

namespace {
using Clock = std::chrono::steady_clock;
} // namespace

/// The persistent DPLL(T) engine behind a context (and, through the
/// `solveQF` wrapper, behind every one-shot solve): the boolean structure
/// is Tseitin-encoded into the CDCL core once, and this class —
/// registered as the core's TheoryClient — mirrors every assigned atom
/// literal into Simplex bounds as the trail grows. Rational infeasibility
/// is detected immediately and explained by a small theory lemma
/// extracted from the conflicting tableau row; the (rare) integrality
/// conflicts are found by branch-and-bound on full boolean models.
///
/// Unlike the pre-incremental engine, everything survives `solve`
/// boundaries: the gate/atom caches, the learnt clauses and VSIDS order,
/// and the Simplex tableau with its basis. Per solve, the theory side
/// resets bounds to the intrinsic baseline (O(vars)), registers whatever
/// the arena minted since last time (appending — never rebuilding), and
/// re-marks the baseline.
class IncrementalContext::Impl : public TheoryClient {
public:
  Impl(Arena &A, const QfOptions &O) : A(A), Opts(O), Proof(O.Proof) {
    // The trace builder is latched at construction (not via setOptions):
    // attaching one mid-stream would miss the clause prefix already in
    // the CDCL core, leaving the trace unreplayable.
    Sat.setProof(Proof);
  }

  Arena &A;
  QfOptions Opts;
  /// Unsat-trace builder this context writes into, or null (no recording).
  proof::QfTraceBuilder *const Proof;

  QfResult solve(const std::vector<FormulaId> &Assumptions,
                 const ModelRefiner &Refine);
  void assertFormula(FormulaId F);
  void push();
  void pop();

  TRes onAssign(const std::vector<Lit> &Trail, size_t From,
                std::vector<Lit> &ConflictOut) override;
  void onBacktrack(size_t NewTrailSize) override;
  TRes onFinalModel(std::vector<Lit> &ConflictOut) override;

  // Bookkeeping shared with the public wrapper.
  std::vector<uint32_t> Selectors; ///< scope selector SAT vars (LIFO)
  std::vector<uint32_t> UnsatAssumps;
  QfSearchStats Cumulative;
  uint64_t Solves = 0;
#ifndef NDEBUG
  /// Original (unlowered) assertions per scope frame, for Sat-model
  /// validation; frame 0 holds the permanent assertions.
  std::vector<std::vector<FormulaId>> DebugAsserts{1};
#endif

private:
  /// One distinct theory atom `Term + Const <= 0` with its SAT variable
  /// and (once registered) the Simplex extended variable carrying its
  /// linear part.
  struct TheoryAtom {
    LinTerm Term; ///< arena-variable space
    uint32_t SatVar;
    uint32_t SimplexRow; ///< Simplex extended space; ~0u until registered
  };

  Lit encode(FormulaId F);
  uint32_t atomVar(FormulaId F);
  uint32_t atomVarForTerm(const LinTerm &T);
  FormulaId lowered(FormulaId F);
  /// Appends the assumption literals of lowered \p F to \p Out:
  /// conjunctions of atoms flatten to their atom literals (interned, no
  /// clause garbage); any other shape contributes its Tseitin gate.
  void flattenAssumption(FormulaId F, std::vector<Lit> &Out);
  /// Brings the theory side up to date with the arena and the atom set:
  /// bounds back to baseline, new problem variables and new atom rows
  /// appended, baseline re-marked, lattice lemmas for new atoms added.
  void prepareTheory();
  void addLatticeLemmasIncremental();
  /// Negations of the reason literals Simplex reports — a theory lemma.
  static void lemmaFromReasons(const std::vector<uint32_t> &Rs,
                               std::vector<Lit> &Out) {
    Out.clear();
    Out.reserve(Rs.size());
    for (uint32_t Code : Rs) {
      Lit L;
      L.Code = Code;
      Out.push_back(~L);
    }
  }
  /// Translates the Simplex's conflict certificate into proof format and
  /// stages it as the Pending cert for the theory lemma about to be
  /// emitted: Lit reasons pass through as literal codes, intrinsic-bound
  /// reasons map the extended var back to arena space, split reason
  /// codes become path-depth references.
  void stageConflictCert();
  /// The per-solve stop probe, replacing the old inline deadline check:
  /// all resource dimensions (deadline, memory, steps, cancellation) go
  /// through the active budget — an externally shared one, or a local
  /// per-solve wrapper built from the legacy TimeoutMs/Cancel knobs.
  /// Records the first reason in Stop.
  bool stopped(const char *Site) {
    if (Opts.Cancel && Opts.Cancel->load(std::memory_order_relaxed)) {
      if (Stop == StopReason::None)
        Stop = StopReason::Cancelled;
      return true;
    }
    if (Bud && !Bud->checkpoint(Site)) {
      if (Stop == StopReason::None)
        Stop = Bud->reason();
      return true;
    }
    return false;
  }
  /// Translates an arena-space coefficient vector into Simplex extended
  /// space (ExtOf is strictly increasing, so sortedness is preserved).
  std::vector<std::pair<Var, int64_t>>
  translate(const std::vector<std::pair<Var, int64_t>> &Coeffs) const {
    std::vector<std::pair<Var, int64_t>> Out;
    Out.reserve(Coeffs.size());
    for (auto [V, C] : Coeffs)
      Out.push_back({ExtOf[V], C});
    return Out;
  }

  SatSolver Sat;
  /// Memoized Tseitin gates: lowered FormulaId -> encoded literal
  /// (shared subformulas encode once, across solves and scopes).
  std::unordered_map<FormulaId, Lit> GateOf;
  /// Memoized lowering, so re-asserting or re-assuming the same formula
  /// id does not re-run `Arena::lower` (which allocates fresh nodes).
  std::unordered_map<FormulaId, FormulaId> LoweredMemo;
  std::unique_ptr<Simplex> Theory;
  std::vector<TheoryAtom> Atoms;
  std::unordered_map<
      std::pair<std::vector<std::pair<Var, int64_t>>, int64_t>, uint32_t,
      AtomKeyHash>
      AtomIndex; ///< (coeffs, const) -> index into Atoms
  std::vector<uint32_t> AtomOfSatVar; ///< SAT var -> atom index or ~0u
  std::vector<uint32_t> ExtOf; ///< arena var -> Simplex extended var
  /// Simplex extended var -> arena var, ~0u for slack (atom) rows. Only
  /// maintained when recording proofs: certificate terms cite variables
  /// in arena space, the space the checker reconstructs.
  std::vector<uint32_t> ArenaOfExt;
  size_t AtomsRegistered = 0;  ///< prefix of Atoms with Simplex rows
  /// Incremental atom-lattice state: per canonical coefficient vector,
  /// the atom indices sorted by constant descending (strongest first).
  std::map<std::vector<std::pair<Var, int64_t>>, std::vector<uint32_t>>
      LatticeGroups;
  size_t LatticeDone = 0; ///< prefix of Atoms already chained
  /// Undo bookkeeping: for every trail literal that tightened a Simplex
  /// bound, the trail position, the Simplex mark to roll back to, and the
  /// literal itself.
  struct AssertRecord {
    size_t TrailPos;
    size_t Mark;
    Lit L;
  };
  std::vector<AssertRecord> Asserted;
  std::vector<int64_t> FinalModel;
  uint32_t TheoryConflicts = 0; ///< per-solve
  /// Active budget for the current solve (Opts.Budget or &*LocalBud).
  Budget *Bud = nullptr;
  /// Legacy-knob wrapper rebuilt each solve when no shared budget is
  /// supplied, so TimeoutMs keeps measuring from the call.
  std::optional<Budget> LocalBud;
  StopReason Stop = StopReason::None; ///< per-solve first stop reason
  // Triage counters (printed under POSTR_QF_STATS).
  uint64_t NumOnAssign = 0, NumRationalChecks = 0, NumFinalChecks = 0,
           NumSplits = 0;
  Clock::time_point Start = Clock::now();
  Clock::time_point LastTrace = Clock::now();

  void trace(const char *Where, size_t TrailSize) {
    if (!std::getenv("POSTR_QF_STATS"))
      return;
    Clock::time_point Now = Clock::now();
    if (Now - LastTrace < std::chrono::seconds(1))
      return;
    LastTrace = Now;
    std::fprintf(stderr,
                 "[qf-trace] %s assign=%llu lp=%llu piv=%llu scan=%llu "
                 "final=%llu split=%llu tconf=%u trail=%zu asserted=%zu\n",
                 Where, (unsigned long long)NumOnAssign,
                 (unsigned long long)NumRationalChecks,
                 (unsigned long long)(Theory ? Theory->numPivots() : 0),
                 (unsigned long long)(Theory ? Theory->numChecks() : 0),
                 (unsigned long long)NumFinalChecks,
                 (unsigned long long)NumSplits, TheoryConflicts, TrailSize,
                 Asserted.size());
  }
};

void IncrementalContext::Impl::stageConflictCert() {
  const Simplex::ConflictCert &C = Theory->conflictCert();
  proof::TheoryCert Out;
  Out.Leaves.reserve(C.Leaves.size());
  for (const Simplex::FarkasLeafRec &L : C.Leaves) {
    proof::FarkasLeaf PL;
    PL.Entries.reserve(L.Terms.size());
    for (const Simplex::FarkasTerm &T : L.Terms) {
      proof::FarkasEntry E;
      if (T.Reason == Simplex::NoReason) {
        // Intrinsic bound. Only problem variables carry baseline bounds
        // (slack rows register after the baseline snapshot), so the
        // extended var maps back to arena space.
        assert(T.ExtVar < ArenaOfExt.size() && ArenaOfExt[T.ExtVar] != ~0u &&
               "intrinsic bound cited on a slack row");
        E.K = proof::FarkasEntry::Kind::VarBound;
        E.Ref = ArenaOfExt[T.ExtVar];
        E.Upper = T.Upper;
      } else if (T.Reason >= Simplex::SplitBase) {
        E.K = proof::FarkasEntry::Kind::Split;
        E.Ref = T.Reason - Simplex::SplitBase;
        E.Upper = T.Upper;
      } else {
        E.K = proof::FarkasEntry::Kind::Lit;
        E.Ref = T.Reason;
      }
      E.Mult = {T.Mult.num(), T.Mult.den()};
      PL.Entries.push_back(std::move(E));
    }
    Out.Leaves.push_back(std::move(PL));
  }
  Out.Nodes.reserve(C.Nodes.size());
  for (const Simplex::CertNodeRec &N : C.Nodes) {
    proof::CertNode PN;
    PN.Leaf = N.Leaf;
    if (N.Leaf < 0) {
      assert(N.ExtVar < ArenaOfExt.size() && ArenaOfExt[N.ExtVar] != ~0u &&
             "integer split on a slack row");
      PN.Var = ArenaOfExt[N.ExtVar];
      PN.Floor = N.Floor;
    }
    PN.Down = N.Down;
    PN.Up = N.Up;
    Out.Nodes.push_back(PN);
  }
  Out.Root = C.Root;
  Proof->Pending = Proof->addCert(std::move(Out));
}

uint32_t IncrementalContext::Impl::atomVarForTerm(const LinTerm &T) {
  auto Key = std::make_pair(T.coeffs(), T.constant());
  auto It = AtomIndex.find(Key);
  if (It != AtomIndex.end())
    return Atoms[It->second].SatVar;
  TheoryAtom TA;
  TA.Term = T;
  TA.SatVar = Sat.newVar();
  TA.SimplexRow = ~0u; // registered at the next prepareTheory()
  if (Proof)
    Proof->atomDef(TA.SatVar, T.constant(), T.coeffs());
  AtomOfSatVar.resize(Sat.numVars(), ~0u);
  AtomOfSatVar[TA.SatVar] = static_cast<uint32_t>(Atoms.size());
  AtomIndex.emplace(std::move(Key), static_cast<uint32_t>(Atoms.size()));
  Atoms.push_back(std::move(TA));
  return Atoms.back().SatVar;
}

uint32_t IncrementalContext::Impl::atomVar(FormulaId F) {
  assert(A.kind(F) == FKind::Atom && A.atomCmp(F) == Cmp::Le &&
         "expected lowered atom");
  return atomVarForTerm(A.atomTerm(F));
}

Lit IncrementalContext::Impl::encode(FormulaId F) {
  auto Memo = GateOf.find(F);
  if (Memo != GateOf.end())
    return Memo->second;
  Lit Encoded = [&] {
    switch (A.kind(F)) {
    case FKind::Atom:
      return Lit(atomVar(F), /*Negated=*/false);
    case FKind::And: {
      uint32_t G = Sat.newVar();
      for (FormulaId C : A.children(F)) {
        Lit LC = encode(C);
        Sat.addClause({Lit(G, true), LC});
      }
      return Lit(G, false);
    }
    case FKind::Or: {
      uint32_t G = Sat.newVar();
      std::vector<Lit> Clause{Lit(G, true)};
      for (FormulaId C : A.children(F))
        Clause.push_back(encode(C));
      Sat.addClause(std::move(Clause));
      return Lit(G, false);
    }
    case FKind::True: {
      uint32_t G = Sat.newVar();
      Sat.addClause({Lit(G, false)});
      return Lit(G, false);
    }
    case FKind::False: {
      uint32_t G = Sat.newVar();
      Sat.addClause({Lit(G, true)});
      return Lit(G, false);
    }
    case FKind::Not:
      assert(false && "lowered formula contains Not");
      return Lit();
    }
    assert(false && "bad kind");
    return Lit();
  }();
  AtomOfSatVar.resize(Sat.numVars(), ~0u);
  GateOf[F] = Encoded;
  return Encoded;
}

FormulaId IncrementalContext::Impl::lowered(FormulaId F) {
  auto It = LoweredMemo.find(F);
  if (It != LoweredMemo.end())
    return It->second;
  FormulaId L = A.lower(F);
  LoweredMemo.emplace(F, L);
  return L;
}

void IncrementalContext::Impl::assertFormula(FormulaId F) {
  Lit G = encode(lowered(F));
  if (Selectors.empty())
    Sat.addClause({G});
  else
    Sat.addClause({Lit(Selectors.back(), true), G});
#ifndef NDEBUG
  DebugAsserts.back().push_back(F);
#endif
}

void IncrementalContext::Impl::push() {
  uint32_t S = Sat.newVar();
  AtomOfSatVar.resize(Sat.numVars(), ~0u);
  Selectors.push_back(S);
#ifndef NDEBUG
  DebugAsserts.emplace_back();
#endif
}

void IncrementalContext::Impl::pop() {
  assert(!Selectors.empty() && "pop without matching push");
  uint32_t S = Selectors.back();
  Selectors.pop_back();
  // Permanently disable the selector: every clause of the scope becomes
  // satisfied at level 0, so nothing has to be physically deleted and
  // every clause learned from the scope stays valid (it carries ¬s).
  Sat.addClause({Lit(S, true)});
#ifndef NDEBUG
  DebugAsserts.pop_back();
#endif
}

void IncrementalContext::Impl::flattenAssumption(FormulaId F,
                                                 std::vector<Lit> &Out) {
  FormulaId L = lowered(F);
  switch (A.kind(L)) {
  case FKind::True:
    return;
  case FKind::Atom:
    Out.push_back(Lit(atomVar(L), false));
    return;
  case FKind::And:
    for (FormulaId C : A.children(L)) {
      switch (A.kind(C)) {
      case FKind::Atom:
        Out.push_back(Lit(atomVar(C), false));
        break;
      case FKind::True:
        break;
      default:
        Out.push_back(encode(C));
        break;
      }
    }
    return;
  default:
    // False included: its gate is forced false at level 0, so assuming
    // it yields Unsat-under-assumptions with this formula in the core.
    Out.push_back(encode(L));
    return;
  }
}

void IncrementalContext::Impl::addLatticeLemmasIncremental() {
  // Atom-lattice lemmas, incrementally: theory-valid clauses between
  // atoms sharing a linear part, so the SAT core never explores boolean
  // models that are trivially theory-inconsistent. Each new atom chains
  // into its group's implication order (stronger constant → weaker) and
  // pairs against the negated-coefficients group; each unordered cross
  // pair is emitted exactly once — when its later atom arrives.
  // Lattice lemmas are theory-valid, not axioms: when recording, each
  // one is staged with the two-term Farkas certificate refuting its
  // negation (both cited atoms share a linear part up to sign, so the
  // variable parts cancel and the constants sum negative), and the
  // builder turns the addClause below into a certified Theory step.
  auto StagePair = [&](uint32_t CodeA, uint32_t CodeB) {
    proof::TheoryCert C;
    proof::FarkasLeaf L;
    L.Entries.push_back(
        {proof::FarkasEntry::Kind::Lit, CodeA, false, {1, 1}});
    L.Entries.push_back(
        {proof::FarkasEntry::Kind::Lit, CodeB, false, {1, 1}});
    C.Leaves.push_back(std::move(L));
    C.Nodes.push_back({0, 0, 0, -1, -1});
    C.Root = 0;
    Proof->Pending = Proof->addCert(std::move(C));
  };
  for (; LatticeDone < Atoms.size(); ++LatticeDone) {
    uint32_t AI = static_cast<uint32_t>(LatticeDone);
    const LinTerm &T = Atoms[AI].Term;
    std::vector<uint32_t> &Group = LatticeGroups[T.coeffs()];
    auto Pos = std::lower_bound(
        Group.begin(), Group.end(), AI, [&](uint32_t X, uint32_t Y) {
          return Atoms[X].Term.constant() > Atoms[Y].Term.constant();
        });
    size_t Idx = static_cast<size_t>(Pos - Group.begin());
    // Within a group, t + c <= 0 with larger c is stronger: link the new
    // atom to its neighbours (the chain stays transitively complete;
    // older neighbour-to-neighbour links become redundant but harmless).
    if (Idx > 0) {
      if (Proof) // 1·(stronger holds) + 1·(weaker fails): c_w - c_s - 1 < 0
        StagePair(Atoms[Group[Idx - 1]].SatVar * 2,
                  Atoms[AI].SatVar * 2 + 1);
      Sat.addClause({Lit(Atoms[Group[Idx - 1]].SatVar, true),
                     Lit(Atoms[AI].SatVar, false)});
    }
    if (Idx < Group.size()) {
      if (Proof)
        StagePair(Atoms[AI].SatVar * 2,
                  Atoms[Group[Idx]].SatVar * 2 + 1);
      Sat.addClause({Lit(Atoms[AI].SatVar, true),
                     Lit(Atoms[Group[Idx]].SatVar, false)});
    }
    Group.insert(Pos, AI);
    // Against the negated-coefficients group: t + c <= 0 and
    // -t + c' <= 0 clash iff c + c' > 0.
    std::vector<std::pair<Var, int64_t>> Neg = T.coeffs();
    for (auto &[V, K] : Neg)
      K = -K;
    auto It = LatticeGroups.find(Neg);
    if (It == LatticeGroups.end())
      continue;
    if (Group.size() * It->second.size() > 4096)
      continue; // quadratic pairing not worth it on huge groups
    for (uint32_t Y : It->second)
      if (T.constant() + Atoms[Y].Term.constant() > 0) {
        if (Proof) // 1·(t+c ≤ 0) + 1·(-t+c' ≤ 0): -c - c' < 0
          StagePair(Atoms[AI].SatVar * 2, Atoms[Y].SatVar * 2);
        Sat.addClause(
            {Lit(Atoms[AI].SatVar, true), Lit(Atoms[Y].SatVar, true)});
      }
  }
}

void IncrementalContext::Impl::prepareTheory() {
  if (!Theory) {
    // The per-context pivot policy (rule + instance family, classified
    // by the encoding layers) is latched at first use; setOptions after
    // that changes budgets/deadlines but not the rule of a live tableau.
    Theory = std::make_unique<Simplex>(0, Opts.Pivot);
    Theory->setInterrupt([this] { return stopped("lia.simplex"); });
    Theory->setCertRecording(Proof != nullptr);
  }
  Theory->setBudget(Bud);
  // The SAT core starts the next descent with an empty trail (it
  // backtracks to level 0 and replays the level-0 prefix through
  // onAssign), so drop our mirror records and reset the theory bounds to
  // the baseline wholesale — keeping the tableau basis and the current
  // assignment: the search warm-starts from the last feasible vertex.
  Asserted.clear();
  Theory->resetToBaseline();
  bool Grew = false;
  while (ExtOf.size() < A.numVars()) {
    Var V = static_cast<Var>(ExtOf.size());
    uint32_t Ext = Theory->addProblemVar(A.varLo(V), A.varHi(V));
    ExtOf.push_back(Ext);
    if (Proof) {
      if (ArenaOfExt.size() <= Ext)
        ArenaOfExt.resize(Ext + 1, ~0u);
      ArenaOfExt[Ext] = V;
      proof::VarBounds B;
      B.Var = V;
      B.HasLo = A.varLo(V) != INT64_MIN;
      B.HasHi = A.varHi(V) != INT64_MAX;
      B.Lo = B.HasLo ? A.varLo(V) : 0;
      B.Hi = B.HasHi ? A.varHi(V) : 0;
      if (B.HasLo || B.HasHi)
        Proof->varBounds(B);
    }
    Grew = true;
  }
  for (; AtomsRegistered < Atoms.size(); ++AtomsRegistered) {
    TheoryAtom &TA = Atoms[AtomsRegistered];
    if (TA.SimplexRow == ~0u) {
      TA.SimplexRow = Theory->rowFor(translate(TA.Term.coeffs()));
      Grew = true;
    }
  }
  if (Grew)
    Theory->markBaseline(); // fold the new intrinsic bounds in
  addLatticeLemmasIncremental();
}

TheoryClient::TRes
IncrementalContext::Impl::onAssign(const std::vector<Lit> &Trail, size_t From,
                                   std::vector<Lit> &ConflictOut) {
  if (stopped("lia.sat"))
    return TRes::Abort;
  ++NumOnAssign;
  trace("assign", Trail.size());
  bool Changed = false;
  for (size_t I = From; I < Trail.size(); ++I) {
    Lit L = Trail[I];
    uint32_t AtomIdx =
        L.var() < AtomOfSatVar.size() ? AtomOfSatVar[L.var()] : ~0u;
    if (AtomIdx == ~0u)
      continue;
    const TheoryAtom &TA = Atoms[AtomIdx];
    assert(TA.SimplexRow != ~0u &&
           "atom literal on the trail before theory registration");
    size_t M = Theory->mark();
    // Positive literal: linear part <= -c. Negative: over the integers,
    // ¬(t + c <= 0) is t + c >= 1, i.e. linear part >= 1 - c.
    bool Ok = L.negated()
                  ? Theory->assertLower(TA.SimplexRow,
                                        Rational(1 - TA.Term.constant()),
                                        L.Code)
                  : Theory->assertUpper(TA.SimplexRow,
                                        Rational(-TA.Term.constant()),
                                        L.Code);
    if (Theory->mark() != M) {
      Asserted.push_back({I, M, L});
      Changed = true;
    }
    if (!Ok) {
      ++TheoryConflicts;
      lemmaFromReasons(Theory->conflictReasons(), ConflictOut);
      if (Proof)
        stageConflictCert();
      return TRes::Conflict;
    }
  }
  if (Changed)
    ++NumRationalChecks;
  if (Changed && !Theory->checkRational()) {
    ++TheoryConflicts;
    if (TheoryConflicts > Opts.MaxTheoryConflicts) {
      // Engine-internal runaway cap: structured as StepBudget, but does
      // NOT trip a shared budget — siblings of this solve keep running.
      if (Stop == StopReason::None)
        Stop = StopReason::StepBudget;
      return TRes::Abort;
    }
    lemmaFromReasons(Theory->conflictReasons(), ConflictOut);
    if (Proof)
      stageConflictCert();
    return TRes::Conflict;
  }
  return TRes::Ok;
}

void IncrementalContext::Impl::onBacktrack(size_t NewTrailSize) {
  size_t M = SIZE_MAX;
  while (!Asserted.empty() && Asserted.back().TrailPos >= NewTrailSize) {
    M = Asserted.back().Mark;
    Asserted.pop_back();
  }
  if (M != SIZE_MAX)
    Theory->rollback(M);
}

TheoryClient::TRes
IncrementalContext::Impl::onFinalModel(std::vector<Lit> &ConflictOut) {
  if (stopped("lia.sat"))
    return TRes::Abort;
  // Rational feasibility holds by construction; look for an integer model.
  ++NumFinalChecks;
  trace("final", 0);
  TheoryResult R = Theory->checkInteger(FinalModel, Opts.TheoryNodeBudget);
  if (stopped("lia.sat"))
    return TRes::Abort; // cancel/deadline interrupted branch-and-bound
  if (R == TheoryResult::Sat)
    return TRes::Ok;
  ++TheoryConflicts;
  if (TheoryConflicts > Opts.MaxTheoryConflicts) {
    if (Stop == StopReason::None)
      Stop = StopReason::StepBudget;
    return TRes::Abort;
  }
  if (R == TheoryResult::Unsat) {
    // Integrality conflict: branch-and-bound reports the union of its
    // leaf explanations as a core over the asserted bounds.
    lemmaFromReasons(Theory->conflictReasons(), ConflictOut);
    if (Proof)
      stageConflictCert();
    return TRes::Conflict;
  }
  // Budget exhausted: split on demand. Mint the atom x ≤ ⌊β(x)⌋ for a
  // fractional variable and hand the case split to the CDCL core — its
  // two polarities assert x ≤ ⌊β⌋ / x ≥ ⌊β⌋+1, so clause learning takes
  // over the integrality branching that exhausted the local search.
  if (!Theory->checkRational())
    return TRes::Abort; // cannot happen: bounds only got looser
  if (stopped("lia.sat"))
    return TRes::Abort; // interrupted mid-check: the vertex is untrusted
  uint32_t Frac = ~0u;
  Var FracVar = 0;
  for (Var V = 0; V < ExtOf.size(); ++V)
    if (!Theory->value(ExtOf[V]).isInteger()) {
      Frac = ExtOf[V];
      FracVar = V;
      break;
    }
  if (Frac == ~0u) {
    // The relaxation vertex is integral after all; accept it.
    FinalModel.resize(ExtOf.size());
    for (Var V = 0; V < ExtOf.size(); ++V)
      FinalModel[V] = Theory->value(ExtOf[V]).asInt64();
    return TRes::Ok;
  }
  int64_t Floor = Theory->value(Frac).floor().asInt64();
  uint32_t SplitVar =
      atomVarForTerm(LinTerm::variable(FracVar) - LinTerm(Floor));
  Atoms[AtomOfSatVar[SplitVar]].SimplexRow = Frac;
  // β(Frac) is strictly between Floor and Floor+1, so neither polarity of
  // the split atom can already be asserted — the clause below genuinely
  // extends the boolean search space (progress is guaranteed). Prefer the
  // downward branch (x ≤ ⌊β⌋): counts are bounded below by 0, so downward
  // split chains terminate, whereas upward chains can ascend forever.
  Sat.setPolarity(SplitVar, true);
  ++NumSplits;
  ConflictOut.push_back(Lit(SplitVar, false));
  ConflictOut.push_back(Lit(SplitVar, true));
  return TRes::Conflict;
}

QfResult
IncrementalContext::Impl::solve(const std::vector<FormulaId> &Assumptions,
                                const ModelRefiner &Refine) {
  const bool Stats = std::getenv("POSTR_QF_STATS") != nullptr;
  Start = Clock::now();
  LastTrace = Start;
  TheoryConflicts = 0;
  UnsatAssumps.clear();
  ++Solves;
  QfResult Out;

  // Resolve the active budget for this solve: the shared one when the
  // caller provided it, otherwise a fresh local wrapper around the legacy
  // TimeoutMs/Cancel knobs (its deadline measures from here, preserving
  // the old per-call semantics). The context stays reusable after a trip:
  // nothing below caches the tripped budget beyond this call.
  Stop = StopReason::None;
  if (Opts.Budget) {
    Bud = Opts.Budget;
    LocalBud.reset();
  } else {
    LocalBud.emplace(
        Budget::Limits{Opts.TimeoutMs, 0, 0, Opts.Cancel});
    Bud = &*LocalBud;
  }
  Sat.setBudget(Bud);

  // Assumption literals: active scope selectors first, then the caller's
  // formulas flattened. Remember which input index each literal serves so
  // an Unsat core maps back to assumption formulas.
  std::vector<Lit> Assume;
  Assume.reserve(Selectors.size() + Assumptions.size());
  for (uint32_t S : Selectors)
    Assume.push_back(Lit(S, false));
  std::unordered_map<uint32_t, uint32_t> IndexOfLit; // Lit code -> input idx
  for (uint32_t AI = 0; AI < Assumptions.size(); ++AI) {
    size_t Begin = Assume.size();
    flattenAssumption(Assumptions[AI], Assume);
    for (size_t I = Begin; I < Assume.size(); ++I)
      IndexOfLit.emplace(Assume[I].Code, AI);
  }

  if (stopped("lia.sat")) {
    Out.V = Verdict::Unknown;
    Out.Stop = Stop;
    Out.Stats.BudgetTrips = 1;
    Cumulative += Out.Stats;
    return Out;
  }
  prepareTheory();
  if (stopped("lia.sat")) {
    Out.V = Verdict::Unknown;
    Out.Stop = Stop;
    Out.Stats.BudgetTrips = 1;
    Cumulative += Out.Stats;
    return Out;
  }

  const SatStats SatBefore = Sat.stats();
  const SimplexStats TheoryBefore = Theory->stats();

  for (bool Done = false; !Done;) {
    switch (Sat.solve(this, Assume)) {
    case SatSolver::Res::Sat: {
      if (Refine) {
        std::optional<FormulaId> Cut = Refine(A, FinalModel);
        if (Cut) {
          // Conjoin the cut permanently and resume — keeping every
          // learned clause AND the tableau basis. prepareTheory()
          // re-baselines and registers whatever the cut minted.
          Lit CutLit = encode(lowered(*Cut));
#ifndef NDEBUG
          DebugAsserts.front().push_back(*Cut);
#endif
          prepareTheory();
          Sat.addClause({CutLit});
          continue;
        }
      }
      Out.V = Verdict::Sat;
      Out.Model = std::move(FinalModel);
      FinalModel.clear();
      Done = true;
      break;
    }
    case SatSolver::Res::Unsat:
      Out.V = Verdict::Unsat;
      if (!Sat.globallyUnsat()) {
        for (Lit L : Sat.assumptionCore()) {
          auto It = IndexOfLit.find(L.Code);
          if (It != IndexOfLit.end())
            UnsatAssumps.push_back(It->second);
        }
        std::sort(UnsatAssumps.begin(), UnsatAssumps.end());
        UnsatAssumps.erase(
            std::unique(UnsatAssumps.begin(), UnsatAssumps.end()),
            UnsatAssumps.end());
      }
      Done = true;
      break;
    case SatSolver::Res::Abort:
      Out.V = Verdict::Unknown;
      // Aborts come from stopped() (budget/cancel/deadline) or from the
      // MaxTheoryConflicts runaway cap; both recorded their reason.
      Out.Stop = Stop != StopReason::None ? Stop : StopReason::StepBudget;
      Done = true;
      break;
    }
  }

  const SatStats &SS = Sat.stats();
  Out.Stats.Conflicts = SS.Conflicts - SatBefore.Conflicts;
  Out.Stats.Propagations = SS.Propagations - SatBefore.Propagations;
  Out.Stats.Decisions = SS.Decisions - SatBefore.Decisions;
  Out.Stats.Restarts = SS.Restarts - SatBefore.Restarts;
  Out.Stats.Reductions = SS.Reductions - SatBefore.Reductions;
  Out.Stats.ClausesDeleted = SS.ClausesDeleted - SatBefore.ClausesDeleted;
  const SimplexStats &TS = Theory->stats();
  Out.Stats.Pivots = TS.Pivots - TheoryBefore.Pivots;
  Out.Stats.Checks = TS.Checks - TheoryBefore.Checks;
  Out.Stats.RowFillIn = TS.RowFillIn - TheoryBefore.RowFillIn;
  Out.Stats.MaxRowNnz = TS.MaxRowNnz; // high-water mark, not a delta
  Out.Stats.DenNormalizations =
      TS.DenNormalizations - TheoryBefore.DenNormalizations;
  Out.Stats.RuleSwitches = TS.RuleSwitches - TheoryBefore.RuleSwitches;
  Out.Stats.FenceRecoveries =
      TS.FenceRecoveries - TheoryBefore.FenceRecoveries;
  for (size_t R = 0; R < NumConcretePivotRules; ++R)
    Out.Stats.PivotsByRule[R] =
        TS.PivotsByRule[R] - TheoryBefore.PivotsByRule[R];
  Out.Stats.TheoryConflicts = TheoryConflicts;
  if (Out.V == Verdict::Unknown && Out.Stop != StopReason::None)
    Out.Stats.BudgetTrips = 1;
  Cumulative += Out.Stats;

  if (std::getenv("POSTR_SIMPLEX_STATS"))
    std::fprintf(stderr,
                 "[simplex] pivots=%llu checks=%llu fill=%llu maxnnz=%llu "
                 "dennorm=%llu rule=%d family=%d switches=%llu\n",
                 (unsigned long long)TS.Pivots, (unsigned long long)TS.Checks,
                 (unsigned long long)TS.RowFillIn,
                 (unsigned long long)TS.MaxRowNnz,
                 (unsigned long long)TS.DenNormalizations,
                 static_cast<int>(Theory->activeRule()),
                 static_cast<int>(Theory->family()),
                 (unsigned long long)TS.RuleSwitches);
  if (Stats)
    std::fprintf(
        stderr,
        "[qf] v=%d atoms=%zu satvars=%u scopes=%zu assume=%zu tconf=%u "
        "confl=%llu prop=%llu dec=%llu piv=%llu ms=%lld\n",
        static_cast<int>(Out.V), Atoms.size(), Sat.numVars(),
        Selectors.size(), Assume.size(), TheoryConflicts,
        (unsigned long long)Out.Stats.Conflicts,
        (unsigned long long)Out.Stats.Propagations,
        (unsigned long long)Out.Stats.Decisions,
        (unsigned long long)Out.Stats.Pivots,
        static_cast<long long>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                Clock::now() - Start)
                .count()));

#ifndef NDEBUG
  if (Out.V == Verdict::Sat) {
    assert(Out.Model.size() == ExtOf.size() && "model size mismatch");
    for (const std::vector<FormulaId> &Frame : DebugAsserts)
      for (FormulaId F : Frame)
        assert(A.eval(F, Out.Model) &&
               "model violates an active assertion");
    for (FormulaId F : Assumptions)
      assert(A.eval(F, Out.Model) && "model violates an assumption");
  }
#endif
  return Out;
}

//===----------------------------------------------------------------------===//
// Public wrapper
//===----------------------------------------------------------------------===//

IncrementalContext::IncrementalContext(Arena &A, const QfOptions &Opts)
    : I(std::make_unique<Impl>(A, Opts)) {}

IncrementalContext::~IncrementalContext() = default;

void IncrementalContext::setOptions(const QfOptions &O) { I->Opts = O; }

void IncrementalContext::assertFormula(FormulaId F) { I->assertFormula(F); }

void IncrementalContext::push() { I->push(); }

void IncrementalContext::pop() { I->pop(); }

size_t IncrementalContext::numScopes() const { return I->Selectors.size(); }

QfResult IncrementalContext::solve(const std::vector<FormulaId> &Assumptions,
                                   const ModelRefiner &Refine) {
  return I->solve(Assumptions, Refine);
}

const std::vector<uint32_t> &IncrementalContext::unsatAssumptions() const {
  return I->UnsatAssumps;
}

const QfSearchStats &IncrementalContext::cumulativeStats() const {
  return I->Cumulative;
}

uint64_t IncrementalContext::numSolves() const { return I->Solves; }
