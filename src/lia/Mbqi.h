//===- lia/Mbqi.h - Model-based quantifier instantiation ---------*- C++ -*-===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Model-based quantifier instantiation for the quantified LIA formulae
/// the ¬contains encoding produces (Sec. 6.4, Eq. 32):
///
///   ∃ #1 ( Outer(#1) ∧ ⋀_blocks ∀κ ( κ < 0 ∨ κ > Upper(#1)
///                                    ∨ ∃ #2 Inner(#1, κ, #2) ) )
///
/// The loop mirrors what the paper gets from Z3's MBQI engine [36]: find
/// a model of the outer (quantifier-free) part, then — because κ is
/// bounded by the concrete value of Upper under that model — check each
/// offset κ ∈ [0, Upper(M)] by a quantifier-free query with #1 fixed.
/// A refuted model is excluded with a blocking clause and the search
/// continues; the iteration and offset budgets bound the work (beyond
/// them we answer Unknown, exactly like an SMT solver's resource-out).
///
//===----------------------------------------------------------------------===//

#ifndef POSTR_LIA_MBQI_H
#define POSTR_LIA_MBQI_H

#include "lia/Solver.h"

#include <vector>

namespace postr {
namespace lia {

/// One ∀κ block of the query (one per ¬contains predicate in the input).
struct ForallBlock {
  /// The universally quantified offset variable κ.
  Var Kappa;
  /// κ ranges over [0, eval(Upper)] under the outer model (LenDiff in the
  /// paper's Eq. 31/32); larger or negative offsets are trivially fine.
  LinTerm Upper;
  /// Inner formula over outer vars ∪ {κ} ∪ fresh inner vars. Inner vars
  /// are implicitly existential.
  FormulaId Inner;
  /// The inner-existential variables of Inner (everything minted for the
  /// block except κ). Instantiation lemmas clone Inner with these mapped
  /// to fresh variables.
  std::vector<Var> InnerVars;
};

/// Counters of one solveMbqi run, for benchmarks (`mbqi_counters` in
/// BENCH_hotpath.json) and triage. Accumulates when reused across calls.
struct MbqiStats {
  uint64_t Candidates = 0;    ///< outer models proposed
  uint64_t OuterSolves = 0;   ///< outer-context queries (incl. re-solves)
  uint64_t InnerQueries = 0;  ///< per-offset inner queries
  uint64_t InstLemmas = 0;    ///< quantifier-instantiation lemmas pushed
  uint64_t Blockers = 0;      ///< model-blocking clauses pushed
  uint64_t ContextReuses = 0; ///< solves served by an already-warm context
};

struct MbqiOptions {
  QfOptions Qf;
  /// Max outer candidate models to try before answering Unknown.
  uint32_t MaxCandidates = 64;
  /// Max enumerated offsets per candidate (guards degenerate models).
  int64_t MaxOffsets = 4096;
  /// Optional overall deadline in milliseconds (0 = none).
  uint64_t TimeoutMs = 0;
  /// Run on persistent IncrementalContexts (the default): one outer
  /// context accumulates blockers and instantiation lemmas, per-block
  /// inner contexts keep their encoding and pop only the pin/offset
  /// between offsets. false = re-encode every query from scratch — kept
  /// as the oracle for the incremental-vs-scratch property tests.
  bool Incremental = true;
  /// Optional counter sink (not synchronized — share only across
  /// single-threaded solves).
  MbqiStats *Stats = nullptr;
};

struct MbqiQuery {
  FormulaId Outer;            ///< quantifier-free part over outer vars
  std::vector<Var> OuterVars; ///< the #1 variables to fix for inner queries
  std::vector<ForallBlock> Blocks;
  /// Terms whose valuation identifies the *semantic content* of an outer
  /// model (for the ¬contains encoding: the per-A_◦-transition projection
  /// sums, which with flat languages pin the string assignment). Refuted
  /// models are blocked on these, so every run encoding the same refuted
  /// assignment is excluded at once. Empty → block on OuterVars directly.
  std::vector<LinTerm> BlockTerms;
};

/// Decides the query. On Sat, \p ModelOut (if non-null) receives the
/// outer model.
Verdict solveMbqi(Arena &A, const MbqiQuery &Q,
                  std::vector<int64_t> *ModelOut = nullptr,
                  const MbqiOptions &Opts = {});

} // namespace lia
} // namespace postr

#endif // POSTR_LIA_MBQI_H
