//===- lia/Solver.h - Quantifier-free LIA solver -----------------*- C++ -*-===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Online DPLL(T) for quantifier-free LIA: formulas are lowered so every
/// atom is `t <= 0`, Tseitin-encoded into CNF over atom variables, and
/// solved by the CDCL core with this engine attached as its theory
/// client. Atom literals are mirrored into Simplex bounds as the trail
/// grows (both polarities — over the integers ¬(t ≤ 0) is t ≥ 1), the
/// rational relaxation is re-checked incrementally after every
/// propagation, and infeasibilities become small theory lemmas read off
/// the conflicting tableau row. Integrality is established by
/// branch-and-bound on full boolean models only; the 0/1 intrinsic bounds
/// minted by the Parikh encoder keep those conflicts rare.
///
/// Satisfiability of quantifier-free LIA is in NP [65]; this solver is the
/// engine behind the paper's Theorem 7.3 NP procedure.
///
//===----------------------------------------------------------------------===//

#ifndef POSTR_LIA_SOLVER_H
#define POSTR_LIA_SOLVER_H

#include "base/Base.h"
#include "base/Budget.h"
#include "lia/Lia.h"
#include "lia/Simplex.h"

#include <atomic>
#include <functional>
#include <optional>
#include <vector>

namespace postr {

namespace proof {
class QfTraceBuilder;
}

namespace lia {

/// Tunables for the QF solver. Defaults suit the formulae the tag
/// framework emits.
struct QfOptions {
  /// Branch-and-bound node budget per full-model integrality check.
  uint64_t TheoryNodeBudget = 2000;
  /// Hard cap on theory conflicts before giving up (Unknown); a runaway
  /// backstop, not a tuning knob.
  uint32_t MaxTheoryConflicts = 2000000;
  /// Optional deadline in milliseconds (0 = none) measured from the call.
  uint64_t TimeoutMs = 0;
  /// Optional cooperative cancellation: when the pointee becomes true the
  /// solve aborts (Verdict::Unknown) at the next theory callback. The
  /// parallel disjunct pool uses this for first-Sat cancellation.
  const std::atomic<bool> *Cancel = nullptr;
  /// Simplex pivot-rule policy for this context's theory backend:
  /// adaptive per-family selection by default, with the instance family
  /// classified at encode time (solver/PositionSolver per stabilization
  /// disjunct, tagaut/MpSolver from the predicate mix, lia/Mbqi for its
  /// own contexts). POSTR_SIMPLEX_PIVOT_RULE overrides the rule
  /// process-wide for A/B runs.
  PivotPolicy Pivot;
  /// Optional shared resource budget. When set it subsumes TimeoutMs and
  /// Cancel (both are still honoured for legacy callers): the CDCL core,
  /// Simplex, and the clause DB probe and charge against it, and its trip
  /// reason surfaces as QfResult::Stop.
  postr::Budget *Budget = nullptr;
  /// Optional proof trace sink. When set, every clause event of the CDCL
  /// core (inputs, learnt clauses, theory lemmas with Farkas
  /// certificates, DB-reduction deletions, the final conflict) is
  /// mirrored into the builder so an Unsat verdict can be replayed by the
  /// independent checker (proof/Check.h). Latched by incremental contexts
  /// at construction; attaching mid-stream would miss clause prefixes.
  /// Null (the default) disables recording — the search is bit-identical
  /// either way.
  proof::QfTraceBuilder *Proof = nullptr;
};

/// Search-core counters of one QF_LIA solve, for benchmarks and triage.
struct QfSearchStats {
  uint64_t Conflicts = 0;      ///< CDCL conflicts (boolean + theory)
  uint64_t Propagations = 0;   ///< unit propagations
  uint64_t Decisions = 0;      ///< decision literals
  uint64_t Restarts = 0;       ///< Luby restarts taken
  uint64_t Reductions = 0;     ///< clause-DB reduction passes
  uint64_t ClausesDeleted = 0; ///< learnt clauses dropped by DB reduction
  uint64_t Pivots = 0;         ///< Simplex pivots
  uint64_t Checks = 0;         ///< Simplex feasibility scans
  uint64_t RowFillIn = 0;      ///< tableau entries created by elimination
  uint64_t MaxRowNnz = 0;      ///< widest tableau row ever produced
  uint64_t DenNormalizations = 0; ///< row gcd passes that reduced
  uint64_t TheoryConflicts = 0;
  uint64_t RuleSwitches = 0; ///< adaptive pivot-rule fallbacks to Bland
  uint64_t FenceRecoveries = 0; ///< degraded contexts re-earning their rule
  uint64_t BudgetTrips = 0;     ///< solves stopped by a resource budget
  uint64_t DegradedRetries = 0; ///< disjuncts re-run in degraded config
  /// Simplex pivots attributed to each concrete rule (indexed by
  /// PivotRule; sums to Pivots) — the per-rule pivot shares in the bench
  /// JSON.
  uint64_t PivotsByRule[NumConcretePivotRules] = {0, 0, 0, 0};

  QfSearchStats &operator+=(const QfSearchStats &O) {
    Conflicts += O.Conflicts;
    Propagations += O.Propagations;
    Decisions += O.Decisions;
    Restarts += O.Restarts;
    Reductions += O.Reductions;
    ClausesDeleted += O.ClausesDeleted;
    Pivots += O.Pivots;
    Checks += O.Checks;
    RowFillIn += O.RowFillIn;
    MaxRowNnz = MaxRowNnz > O.MaxRowNnz ? MaxRowNnz : O.MaxRowNnz;
    DenNormalizations += O.DenNormalizations;
    TheoryConflicts += O.TheoryConflicts;
    RuleSwitches += O.RuleSwitches;
    FenceRecoveries += O.FenceRecoveries;
    BudgetTrips += O.BudgetTrips;
    DegradedRetries += O.DegradedRetries;
    for (size_t R = 0; R < NumConcretePivotRules; ++R)
      PivotsByRule[R] += O.PivotsByRule[R];
    return *this;
  }
};

/// Outcome of a QF_LIA query. On Sat, Model is indexed by `Var` and
/// covers every variable of the arena.
struct QfResult {
  Verdict V = Verdict::Unknown;
  std::vector<int64_t> Model;
  QfSearchStats Stats;
  /// Why V is Unknown (None for determinate verdicts): the budget's trip
  /// reason, Timeout/Cancelled from the legacy knobs, or StepBudget when
  /// an engine-internal cap (MaxTheoryConflicts) ran out.
  StopReason Stop = StopReason::None;
};

/// Model-refinement callback for CEGAR loops layered on the solver (the
/// tag framework's connectivity cuts): inspects a candidate model and
/// either accepts (nullopt) or returns a formula — valid for every
/// intended model and false under this one — that is conjoined and the
/// search resumed. Running the loop inside the engine keeps the learned
/// clauses, which re-solving from scratch would discard.
using ModelRefiner =
    std::function<std::optional<FormulaId>(Arena &,
                                           const std::vector<int64_t> &)>;

/// Decides \p F (any boolean structure over LIA atoms, no quantifiers).
QfResult solveQF(Arena &A, FormulaId F, const QfOptions &Opts = {},
                 const ModelRefiner &Refine = nullptr);

} // namespace lia
} // namespace postr

#endif // POSTR_LIA_SOLVER_H
