//===- lia/Simplex.h - General simplex with branch-and-bound -----*- C++ -*-===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The theory back-end of the DPLL(T) LIA solver: a Dutertre–de Moura
/// style general simplex over exact rationals, extended with
/// branch-and-bound to obtain integer models. This plays the role of Z3's
/// "Simplex method extended with a branch-and-cut strategy" that the
/// paper's implementation delegates to (Sec. 8).
///
/// The tableau maintains one row per registered linear term (a slack
/// variable); asserted literals become bounds on original or slack
/// variables. Bounds are snapshot/restorable, which both the DPLL(T)
/// conflict-minimization loop and the branch-and-bound recursion use.
///
/// Rows are sparse: sorted column indices with integer numerators over
/// one common denominator per row. The Parikh/position encoders emit
/// length- and span-sum terms 1000+ monomials wide, so pivots are bound
/// by actual support, the per-entry rational normalization of a dense
/// `vector<Rational>` tableau collapses into a single gcd pass per row,
/// and registering a variable no longer extends every existing row.
///
//===----------------------------------------------------------------------===//

#ifndef POSTR_LIA_SIMPLEX_H
#define POSTR_LIA_SIMPLEX_H

#include "base/Hash.h"
#include "lia/Lia.h"
#include "lia/Rational.h"

#include <atomic>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

namespace postr {

class Budget;

namespace lia {

/// Tri-state outcome of an integer feasibility check. `Unknown` is
/// produced only when the branch-and-bound node budget is exhausted.
enum class TheoryResult { Sat, Unsat, Unknown };

/// Leaving-variable selection rule for the feasibility loop. The
/// concrete rules are extremely instance-sensitive on the tag-framework
/// workloads (see docs/BENCH.md and ROADMAP), so the default is
/// `Adaptive`: each solver context starts on the measured winner for its
/// instance family and falls back to Bland's when the online signal
/// degrades. `POSTR_SIMPLEX_PIVOT_RULE` = `adaptive` | `bland` |
/// `markowitz` | `sparsest` | `violated` forces one rule process-wide
/// for A/B runs (bench/ab_pivot_rules.sh). Every concrete rule degrades
/// to Bland's — which terminates unconditionally — once a single check
/// loops past its pivot threshold.
enum class PivotRule : uint8_t {
  Bland, ///< smallest violated basic index
  /// Among the violated basics (when several are violated at once — the
  /// only place leaving-choice freedom exists), choose the (leaving row,
  /// entering column) pair minimizing the Markowitz fill-in proxy
  /// (row_nnz − 1)·(col_nnz − 1); ties break toward the smaller basic
  /// index, and long restorations degrade to Bland's convergent order.
  /// Wins the pure-Parikh `solve` microbench (−26% row_fill_in, −28%
  /// time) but loses badly on the thefuck word-equation instances — see
  /// the ab_pivot_rules.sh table in ROADMAP.
  Markowitz,
  SparsestRow,  ///< violated basic with the fewest row nonzeros
  MostViolated, ///< violated basic with the largest bound violation
  /// Per-family start rule + dynamic Bland fallback (the default): a
  /// Parikh/length-heavy context starts on SparsestRow (halves fill-in
  /// on the Parikh tableaus), a word-equation-heavy one on Bland (the
  /// only rule that never regressed the django/thefuck pipelines), and
  /// the moment a restoration runs long or the windowed pivots-per-check
  /// signal degrades the context drops to Bland for good. Rule changes
  /// happen only at check boundaries — never mid-pivot-sequence — so
  /// every individual restoration is a plain run of one concrete rule.
  Adaptive,
};

/// Instance family of the formulae a solver context will carry, decided
/// at encode time (solver/PositionSolver classifies each stabilization
/// disjunct; tagaut/MpSolver classifies from the predicate mix;
/// lia/Mbqi pins its own contexts). Under PivotRule::Adaptive the family
/// picks the starting concrete rule.
enum class InstanceFamily : uint8_t {
  Unknown,     ///< unclassified (direct solveQF callers): Parikh defaults
  ParikhHeavy, ///< membership/length constraints only — Parikh tableaus
  /// Word-equation splits whose position predicates are all plain
  /// disequalities (or absent): the single-mismatch tag blocks keep the
  /// tableau narrow.
  WordEqDiseq,
  /// Word-equation splits carrying prefix/suffix/at/contains-style
  /// predicates, whose per-position tag blocks and copy transitions
  /// build the wide mismatch tableaus.
  WordEqPosition,
};

/// Per-context pivot-rule policy, threaded from the options structs
/// (`QfOptions::Pivot`) into every Simplex a context creates — replacing
/// the old process-global env read. The `POSTR_SIMPLEX_PIVOT_RULE`
/// environment variable, when set, still overrides `Rule` process-wide
/// (that is what keeps A/B runs a flag instead of a rebuild).
struct PivotPolicy {
  /// Rule to run; Adaptive (the default) picks per Family with the
  /// dynamic Bland fallback.
  PivotRule Rule = PivotRule::Adaptive;
  /// Family hint for Adaptive; ignored by concrete rules.
  InstanceFamily Family = InstanceFamily::Unknown;
  /// Adaptive fallback triggers. A restoration reaching
  /// DegradeRestorationLen pivots (the in-check Bland fallback point),
  /// or a window of DegradeWindowChecks checks averaging more than
  /// DegradeWindowPivotsPerCheck pivots each, permanently degrades the
  /// context to Bland. Tests shrink these to force the transition on
  /// small instances; the defaults only fire on genuinely wandering
  /// tableaus (the healthy workloads average well under one pivot per
  /// check).
  uint32_t DegradeRestorationLen = 256;
  uint32_t DegradeWindowChecks = 64;
  uint32_t DegradeWindowPivotsPerCheck = 8;
  /// Probation/recovery for the Bland fence: a degraded context re-earns
  /// its family start rule after RecoveryWindowChecks consecutive checks
  /// averaging at most RecoveryPivotsPerCheck pivots each (counted in
  /// SimplexStats::FenceRecoveries). The recovery window is much longer
  /// and much stricter than the degrade window, so a genuinely wandering
  /// tableau stays fenced while a context that degraded on one bad
  /// episode (e.g. an early CEGAR round) gets its preferred rule back.
  /// 0 disables recovery and keeps the fence permanently sticky.
  uint32_t RecoveryWindowChecks = 512;
  uint32_t RecoveryPivotsPerCheck = 1;
};

/// Number of concrete (non-Adaptive) PivotRule values, for per-rule
/// counter arrays.
constexpr size_t NumConcretePivotRules = 4;

/// Cumulative tableau counters (perf triage; emitted by bench_hotpath as
/// `simplex_counters`).
struct SimplexStats {
  uint64_t Pivots = 0;   ///< basis changes
  uint64_t Checks = 0;   ///< feasibility scans (checkRational calls)
  uint64_t RowFillIn = 0; ///< entries created by pivot elimination
  uint64_t MaxRowNnz = 0; ///< widest row ever produced
  uint64_t DenNormalizations = 0; ///< row gcd passes that actually reduced
  uint64_t RuleSwitches = 0; ///< adaptive fallbacks to Bland taken
  uint64_t FenceRecoveries = 0; ///< degraded contexts re-earning their rule
  /// Pivots attributed to the concrete rule whose selection chose them
  /// (indexed by PivotRule; sums to Pivots). Under a fixed non-Bland
  /// rule the Bland share counts the in-check long-restoration fallback
  /// and, for Markowitz, the single-violation steps it leaves to Bland.
  uint64_t PivotsByRule[NumConcretePivotRules] = {0, 0, 0, 0};
};

class Simplex {
public:
  /// \p NumProblemVars original integer variables; indices [0,
  /// NumProblemVars) coincide with `Arena` variables. \p Policy is the
  /// owning context's pivot-rule policy; the POSTR_SIMPLEX_PIVOT_RULE
  /// environment variable (read once per process) overrides its Rule.
  explicit Simplex(uint32_t NumProblemVars, const PivotPolicy &Policy = {});

  uint32_t numProblemVars() const { return NumProblemVars; }

  /// Sets an intrinsic bound on an original variable (e.g. Parikh
  /// counters are >= 0). INT64_MIN / INT64_MAX mean unbounded.
  void setIntrinsicBounds(Var V, int64_t Lo, int64_t Hi);

  /// Appends a fresh *problem* (integral, branch-and-bound-relevant)
  /// variable after construction and returns its extended index. This is
  /// how incremental contexts grow the tableau when the arena mints
  /// variables between solves: the new variable starts nonbasic at 0 with
  /// the given intrinsic bounds, no existing row is touched, and the
  /// current basis stays valid. Note the returned index is in the
  /// *extended* numbering (it lands after any slack already registered),
  /// so callers maintain their own arena-var → extended-var map.
  uint32_t addProblemVar(int64_t Lo = INT64_MIN, int64_t Hi = INT64_MAX);

  /// Registers the linear part of \p T (its constant is ignored) and
  /// returns the index of the extended variable carrying its value.
  /// Duplicate terms share one slack variable.
  uint32_t rowFor(const LinTerm &T);
  /// Same, over an explicit (sorted, zero-free) coefficient vector in
  /// *extended*-variable space — the incremental context uses this after
  /// translating arena variables through its own map.
  uint32_t rowFor(const std::vector<std::pair<Var, int64_t>> &Coeffs);

  /// Opaque token attached to an asserted bound; conflict explanations
  /// report the tokens of the bounds involved. NoReason-tagged bounds
  /// (intrinsic bounds, branch-and-bound splits) are omitted from
  /// explanations.
  static constexpr uint32_t NoReason = ~0u;

  /// Reserved reason-code range for branch-and-bound split bounds when
  /// certificate recording is on: `SplitBase + depth` identifies the
  /// split at that depth of the current branch path. Codes at or above
  /// SplitBase never appear in `conflictReasons()` (they resolve away in
  /// the certificate tree, exactly like NoReason); they only occur in
  /// `conflictCert()` terms. With recording off, splits carry NoReason
  /// as before and behavior is bit-identical.
  static constexpr uint32_t SplitBase = 0x80000000u;

  /// One term of a recorded Farkas combination: `Mult` (strictly
  /// positive) times the `Upper` or lower bound of extended variable
  /// `ExtVar`, where `Reason` identifies the bound's origin — the
  /// asserting literal code, NoReason for an intrinsic bound, or
  /// `SplitBase + depth` for a branch split on the current path.
  struct FarkasTerm {
    uint32_t Reason = NoReason;
    uint32_t ExtVar = 0;
    bool Upper = false;
    Rational Mult;
  };
  struct FarkasLeafRec {
    std::vector<FarkasTerm> Terms;
  };
  /// Certificate tree node: terminal Farkas leaf (Leaf >= 0) or an
  /// integer split `ExtVar <= Floor | ExtVar >= Floor + 1`.
  struct CertNodeRec {
    int32_t Leaf = -1;
    uint32_t ExtVar = 0;
    int64_t Floor = 0;
    int32_t Down = -1, Up = -1;
  };
  /// Certificate of the most recent conflict: a single-leaf tree for a
  /// rational conflict (immediate bound clash or infeasible row), a
  /// proper split tree for an integrality conflict.
  struct ConflictCert {
    std::vector<FarkasLeafRec> Leaves;
    std::vector<CertNodeRec> Nodes;
    int32_t Root = -1;
  };

  /// Enables Farkas-certificate recording: every subsequent conflict
  /// (failed assert, failed checkRational, Unsat checkInteger) leaves
  /// its justification in `conflictCert()`. Off by default — recording
  /// never changes search decisions, but allocation is not free.
  void setCertRecording(bool On) { CertOn = On; }
  /// Certificate of the most recent conflict; valid immediately after a
  /// false assertUpper/assertLower, a false checkRational, or an Unsat
  /// checkInteger, while recording is on (Root == -1 otherwise).
  const ConflictCert &conflictCert() const { return Cert; }

  /// Asserts value(X) <= U / >= L. Returns false on an immediate bound
  /// conflict, with `conflictReasons()` filled (the caller then reports
  /// a theory conflict). Tightened bounds are recorded on an assertion
  /// trail for `rollback`.
  bool assertUpper(uint32_t X, const Rational &U, uint32_t Reason = NoReason);
  bool assertLower(uint32_t X, const Rational &L, uint32_t Reason = NoReason);

  /// Assertion-trail position, for backtracking with `rollback`.
  size_t mark() const { return AssertTrail.size(); }
  /// Undoes every bound asserted after \p Mark. The tableau and the
  /// current assignment stay as they are (both remain valid; feasibility
  /// can only improve when bounds get looser).
  void rollback(size_t Mark);

  /// Declares the current bound set the *baseline* (typically right after
  /// the intrinsic bounds). `resetToBaseline` then restores it wholesale
  /// — O(vars) instead of walking a long assertion trail one bound at a
  /// time — while keeping the tableau basis and the current assignment,
  /// which warm-starts the next CEGAR episode from the last vertex.
  void markBaseline();
  /// Restores the baseline bounds. Variables registered after
  /// markBaseline() become unbounded. The assertion trail is cleared
  /// (mark() == 0 afterwards).
  void resetToBaseline();

  /// Rational feasibility of the current bounds. On infeasibility,
  /// `conflictReasons()` holds the reasons of an inconsistent bound set
  /// (the violated basic bound plus the blocking nonbasic bounds — the
  /// standard Dutertre–de Moura explanation).
  bool checkRational();

  /// Reasons explaining the most recent assertUpper/assertLower/
  /// checkRational failure, deduplicated, NoReason entries dropped.
  const std::vector<uint32_t> &conflictReasons() const { return Conflict; }

  /// Integer feasibility via branch-and-bound on the problem variables
  /// (constructor-time originals plus addProblemVar additions, in
  /// registration order — which is how ModelOut is indexed). On
  /// Unsat, `conflictReasons()` holds the union of the leaf explanations
  /// of the refutation tree — a valid integer-infeasibility core over the
  /// asserted bounds (the branch splits x ≤ f ∨ x ≥ f+1 are integer-valid
  /// and resolve away).
  TheoryResult checkInteger(std::vector<int64_t> &ModelOut,
                            uint64_t NodeBudget = 20000);

  /// Bound snapshot for backtracking (assignment included).
  struct Snapshot {
    std::vector<std::optional<Rational>> Lo, Hi;
    std::vector<Rational> Beta;
  };
  Snapshot save() const;
  void restore(const Snapshot &S);

  /// Current assignment of extended variable \p X (valid after a
  /// successful checkRational()).
  const Rational &value(uint32_t X) const { return Beta[X]; }

  /// Cumulative tableau counters (perf triage).
  const SimplexStats &stats() const { return Stats; }
  uint64_t numPivots() const { return Stats.Pivots; }
  uint64_t numChecks() const { return Stats.Checks; }

  /// Overrides the leaving-variable rule unconditionally — even past the
  /// environment override — for in-process A/B experiments and tests.
  /// Takes effect at the next check boundary; an Adaptive rule set here
  /// restarts undegraded.
  void setPivotRule(PivotRule R) {
    Rule = R;
    Degraded = false;
    WindowChecks = WindowPivots = 0;
    RecoveryChecks = RecoveryPivots = 0;
  }
  /// Replaces the whole policy (rule, family, fallback thresholds),
  /// bypassing the environment override; resets the adaptive state.
  void setPivotPolicy(const PivotPolicy &P) {
    Policy = P;
    Rule = P.Rule;
    Degraded = false;
    WindowChecks = WindowPivots = 0;
    RecoveryChecks = RecoveryPivots = 0;
  }
  PivotRule pivotRule() const { return Rule; }
  /// The concrete rule the next checkRational() will start on: resolves
  /// Adaptive through the family start rule and the degradation state.
  PivotRule activeRule() const;
  InstanceFamily family() const { return Policy.Family; }
  /// True once the adaptive machine has fallen back to Bland for good.
  bool adaptiveDegraded() const { return Degraded; }

  /// Cooperative interruption: when the callback returns true,
  /// checkInteger() gives up at the next branch node (returning Unknown,
  /// the same resource-out its budget produces). The QF engine installs
  /// its deadline-or-cancelled predicate here, so neither a timeout nor
  /// the parallel disjunct pool's first-Sat cancellation has to sit out
  /// a full branch-and-bound tree (nodes cost whole Simplex re-checks;
  /// budgets alone overran deadlines by many seconds).
  void setInterrupt(std::function<bool()> F) { Interrupt = std::move(F); }

  /// Attaches a shared resource budget: tableau-row growth (rowFor) is
  /// charged against its memory cap. Interruption on trip still flows
  /// through the interrupt callback, which the owning context points at
  /// the same budget's checkpoint.
  void setBudget(Budget *B) { Bud = B; }

private:
  using Int = Rational::Int;

  /// One tableau row: value(BasicVar) = Σ (Nums[i]/Den)·Cols[i]. Cols is
  /// sorted ascending and zero-free — it doubles as the row's exact
  /// support list — and Den > 0 with gcd(Den, Nums...) == 1 (one
  /// normalization pass per mutation, not one per entry).
  struct SparseRow {
    std::vector<uint32_t> Cols;
    std::vector<Int> Nums;
    Int Den = 1;

    size_t size() const { return Cols.size(); }
    /// Index of column \p X, or SIZE_MAX when absent (binary search).
    size_t find(uint32_t X) const;
    bool contains(uint32_t X) const { return find(X) != SIZE_MAX; }
  };

  bool isBasic(uint32_t X) const { return RowOf[X] != ~0u; }
  /// Best entering column for leaving variable \p B (violated on its
  /// lower bound when \p NeedIncrease): fewest tableau nonzeros, smaller
  /// index on ties; plain smallest index under \p Bland. ~0u when no
  /// column is eligible — B's row then certifies infeasibility.
  uint32_t selectEntering(uint32_t B, bool NeedIncrease, bool Bland) const;
  void pivot(uint32_t B, uint32_t N);
  void updateNonbasic(uint32_t N, const Rational &V);
  bool pivotAndUpdate(uint32_t B, uint32_t N, const Rational &V);

  /// Divides the row's numerators and denominator by their common gcd
  /// and records the row's width in the fill statistics.
  void normalizeRow(SparseRow &Row);
  /// Entry (R, X) as a normalized rational (zero when absent).
  Rational rowCoeff(uint32_t R, uint32_t X) const;

  TheoryResult branch(std::vector<int64_t> &ModelOut, uint64_t &Budget,
                      uint32_t Depth, int32_t &NodeOut);

  /// True when \p R should appear in a conflict explanation (lemma):
  /// NoReason and split codes resolve away.
  static bool isLemmaReason(uint32_t R) {
    return R != NoReason && R < SplitBase;
  }
  /// Appends a Farkas leaf for the immediate clash of a new bound
  /// (\p NewReason, \p NewUpper) on \p X against the existing opposite
  /// bound; returns the new node index. Resets the cert first unless a
  /// branch-and-bound tree is being built.
  int32_t recordClashLeaf(uint32_t X, uint32_t NewReason, bool NewUpper);
  /// Appends a Farkas leaf read off the infeasible row of basic \p B.
  int32_t recordRowLeaf(uint32_t B, bool NeedIncrease);

  struct BoundUndo {
    uint32_t X;
    bool Upper;
    std::optional<Rational> Old;
    uint32_t OldReason;
  };

  uint32_t NumProblemVars;
  uint32_t NumVars; ///< original + slack
  /// Extended indices of the problem (integral) variables, in
  /// registration order: [0, NumProblemVars) then every addProblemVar.
  /// branch() searches these for fractional values and writes ModelOut
  /// in this order.
  std::vector<uint32_t> Integral;

  /// Rows: for each basic variable B, Beta[B] == value of row RowOf[B]
  /// under the nonbasic assignment. Sparse — see SparseRow.
  std::vector<SparseRow> Tableau;

  /// Transposed support: for each column X, the rows where X may be
  /// nonzero — stale-tolerant (rows whose entry cancelled to zero linger
  /// until the next walk compacts them), kept duplicate-free via InColNz
  /// — so updateNonbasic/pivotAndUpdate/pivot touch O(col nnz) rows
  /// instead of scanning the whole tableau per column. The per-row
  /// support needs no such scheme: a SparseRow's Cols is exact.
  void noteColNonzero(uint32_t R, uint32_t X) {
    std::vector<uint8_t> &In = InColNz[X];
    if (In.size() <= R)
      In.resize(Tableau.size() + 1, 0);
    if (!In[R]) {
      In[R] = 1;
      ColNz[X].push_back(R);
    }
  }
  /// Compacts ColNz[X] (drops rows whose entry went back to zero) and
  /// returns a reference.
  const std::vector<uint32_t> &compactCol(uint32_t X);
  std::vector<std::vector<uint32_t>> ColNz;  ///< per extended variable
  std::vector<std::vector<uint8_t>> InColNz; ///< per extended variable
  std::vector<uint32_t> RowOf;     ///< var -> row index or ~0u
  std::vector<uint32_t> BasicVar;  ///< row index -> var
  std::vector<Rational> Beta;      ///< current assignment
  std::vector<std::optional<Rational>> Lo, Hi;
  std::vector<uint32_t> LoReason, HiReason; ///< per extended variable

  std::function<bool()> Interrupt;
  std::vector<BoundUndo> AssertTrail;
  /// Baseline bound set captured by markBaseline() (sized to the
  /// variable count at capture time; later variables reset to unbounded).
  std::vector<std::optional<Rational>> BaseLo, BaseHi;
  std::vector<uint32_t> BaseLoReason, BaseHiReason;
  std::vector<uint32_t> Conflict;
  std::vector<uint32_t> IntegerCore; ///< accumulator for branch()
  bool CertOn = false;
  /// When true, conflict leaves append into the cert under construction
  /// (checkInteger's tree) instead of resetting it.
  bool InBranch = false;
  ConflictCert Cert;
  SimplexStats Stats;
  PivotPolicy Policy;
  PivotRule Rule;
  /// Adaptive state: fallback flag plus the rolling pivots-per-check
  /// window. The fence is sticky by default — a context whose preferred
  /// rule wandered once (the django shape) would pay the same degradation
  /// again every CEGAR/MBQI episode if the fence reopened freely — but a
  /// degraded context on probation (Policy.RecoveryWindowChecks > 0) can
  /// re-earn its family start rule after a long window of near-idle
  /// checks; see noteCheckDone.
  bool Degraded = false;
  uint64_t WindowChecks = 0;
  uint64_t WindowPivots = 0;
  uint64_t RecoveryChecks = 0;
  uint64_t RecoveryPivots = 0;
  Budget *Bud = nullptr;
  /// Folds one finished restoration into the adaptive signal; may flip
  /// Degraded (a check-boundary switch — the restoration that tripped it
  /// already ran to completion under the in-check Bland fallback).
  void noteCheckDone(uint64_t PivotsThisCheck);

  /// Lazily maintained superset of the basic variables whose β may be
  /// outside their bounds. Every code path that moves a basic β or
  /// tightens a basic bound enqueues the variable; checkRational verifies
  /// entries lazily, making the (dominant) all-feasible check O(queue)
  /// instead of O(rows).
  void touchBasic(uint32_t X) {
    if (!InViolQueue[X]) {
      InViolQueue[X] = true;
      ViolQueue.push_back(X);
    }
  }
  std::vector<uint32_t> ViolQueue;
  std::vector<uint8_t> InViolQueue;

  /// Per-column nonzero count across the tableau, maintained by pivot()
  /// and rowFor(). The entering-variable heuristic prefers sparse
  /// columns, which is the main defence against fill-in.
  std::vector<uint32_t> ColCount;

  /// Reused scratch: dense rational accumulator for rowFor's basic-row
  /// substitution (with its touched-marks), and the merge target of
  /// pivot elimination.
  std::vector<Rational> DenseScratch;
  std::vector<uint8_t> DenseMark;
  std::vector<uint32_t> DenseTouched;
  SparseRow MergeScratch;

  /// Slack interning: canonical (sorted, zero-free) coefficient vector →
  /// extended variable. Hashed — term registration is on the DPLL(T)
  /// setup hot path, one lookup per distinct atom.
  std::unordered_map<std::vector<std::pair<Var, int64_t>>, uint32_t,
                     TermKeyHash>
      TermToVar;
};

} // namespace lia
} // namespace postr

#endif // POSTR_LIA_SIMPLEX_H
