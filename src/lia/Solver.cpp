//===- lia/Solver.cpp - Quantifier-free LIA solver -------------------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "lia/Solver.h"

#include "base/Hash.h"
#include "lia/Sat.h"
#include "lia/Simplex.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <unordered_map>

using namespace postr;
using namespace postr::lia;

namespace {

using Clock = std::chrono::steady_clock;

/// One distinct theory atom `Term + Const <= 0` together with its SAT
/// variable.
struct TheoryAtom {
  LinTerm Term;
  uint32_t SatVar;
  uint32_t SimplexRow; ///< extended var carrying the linear part
};

/// Online DPLL(T) engine: the boolean structure is Tseitin-encoded into
/// the CDCL core, and this class — registered as the core's
/// TheoryClient — mirrors every assigned atom literal into Simplex
/// bounds as the trail grows. Rational infeasibility is detected
/// immediately and explained by a small theory lemma extracted from the
/// conflicting tableau row; the (rare) integrality conflicts are found by
/// branch-and-bound on full boolean models.
class QfEngine : public TheoryClient {
public:
  QfEngine(Arena &A, FormulaId F, const QfOptions &Opts,
           const ModelRefiner &Refine)
      : A(A), Opts(Opts), Refine(Refine), Root(A.lower(F)) {}

  QfResult run();

  TRes onAssign(const std::vector<Lit> &Trail, size_t From,
                std::vector<Lit> &ConflictOut) override;
  void onBacktrack(size_t NewTrailSize) override;
  TRes onFinalModel(std::vector<Lit> &ConflictOut) override;

private:
  Lit encode(FormulaId F);
  uint32_t atomVar(FormulaId F);
  uint32_t atomVarForTerm(const LinTerm &T);
  void addLatticeLemmas();
  /// Negations of the reason literals Simplex reports — a theory lemma.
  /// Fills the caller-owned buffer in place (no per-conflict allocation;
  /// the SAT core hands the same scratch vector to every callback).
  static void lemmaFromReasons(const std::vector<uint32_t> &Rs,
                               std::vector<Lit> &Out) {
    Out.clear();
    Out.reserve(Rs.size());
    for (uint32_t Code : Rs) {
      Lit L;
      L.Code = Code;
      Out.push_back(~L);
    }
  }
  bool timedOut() const {
    if (Opts.Cancel && Opts.Cancel->load(std::memory_order_relaxed))
      return true;
    if (Opts.TimeoutMs == 0)
      return false;
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               Clock::now() - Start)
               .count() >= static_cast<int64_t>(Opts.TimeoutMs);
  }

  Arena &A;
  QfOptions Opts;
  const ModelRefiner &Refine;
  FormulaId Root;
  SatSolver Sat;
  /// Memoized Tseitin gates: FormulaId -> encoded literal (shared
  /// subformulas encode once).
  std::unordered_map<FormulaId, Lit> GateOf;
  std::unique_ptr<Simplex> Theory;
  std::vector<TheoryAtom> Atoms;
  std::unordered_map<
      std::pair<std::vector<std::pair<Var, int64_t>>, int64_t>, uint32_t,
      AtomKeyHash>
      AtomIndex; ///< (coeffs, const) -> index into Atoms
  std::vector<uint32_t> AtomOfSatVar; ///< SAT var -> atom index or ~0u
  /// Undo bookkeeping: for every trail literal that tightened a Simplex
  /// bound, the trail position, the Simplex mark to roll back to, and the
  /// literal itself (for the coarse integrality lemma).
  struct AssertRecord {
    size_t TrailPos;
    size_t Mark;
    Lit L;
  };
  std::vector<AssertRecord> Asserted;
  std::vector<int64_t> FinalModel;
  uint32_t TheoryConflicts = 0;
  // Triage counters (printed under POSTR_QF_STATS).
  uint64_t NumOnAssign = 0, NumRationalChecks = 0, NumFinalChecks = 0,
           NumSplits = 0;
  Clock::time_point Start = Clock::now();
  Clock::time_point LastTrace = Clock::now();

  void trace(const char *Where, size_t TrailSize) {
    if (!std::getenv("POSTR_QF_STATS"))
      return;
    Clock::time_point Now = Clock::now();
    if (Now - LastTrace < std::chrono::seconds(1))
      return;
    LastTrace = Now;
    std::fprintf(stderr,
                 "[qf-trace] %s assign=%llu lp=%llu piv=%llu scan=%llu final=%llu "
                 "split=%llu tconf=%u trail=%zu asserted=%zu\n",
                 Where, (unsigned long long)NumOnAssign,
                 (unsigned long long)NumRationalChecks,
                 (unsigned long long)(Theory ? Theory->numPivots() : 0),
                 (unsigned long long)(Theory ? Theory->numChecks() : 0),
                 (unsigned long long)NumFinalChecks,
                 (unsigned long long)NumSplits, TheoryConflicts, TrailSize,
                 Asserted.size());
  }
};

uint32_t QfEngine::atomVarForTerm(const LinTerm &T) {
  auto Key = std::make_pair(T.coeffs(), T.constant());
  auto It = AtomIndex.find(Key);
  if (It != AtomIndex.end())
    return Atoms[It->second].SatVar;
  TheoryAtom TA;
  TA.Term = T;
  TA.SatVar = Sat.newVar();
  TA.SimplexRow = ~0u; // filled in before solving / on-demand later
  AtomOfSatVar.resize(Sat.numVars(), ~0u);
  AtomOfSatVar[TA.SatVar] = static_cast<uint32_t>(Atoms.size());
  AtomIndex.emplace(std::move(Key), static_cast<uint32_t>(Atoms.size()));
  Atoms.push_back(std::move(TA));
  return Atoms.back().SatVar;
}

uint32_t QfEngine::atomVar(FormulaId F) {
  assert(A.kind(F) == FKind::Atom && A.atomCmp(F) == Cmp::Le &&
         "expected lowered atom");
  return atomVarForTerm(A.atomTerm(F));
}

Lit QfEngine::encode(FormulaId F) {
  auto Memo = GateOf.find(F);
  if (Memo != GateOf.end())
    return Memo->second;
  Lit Encoded = [&] {
    switch (A.kind(F)) {
    case FKind::Atom:
      return Lit(atomVar(F), /*Negated=*/false);
    case FKind::And: {
      uint32_t G = Sat.newVar();
      for (FormulaId C : A.children(F)) {
        Lit LC = encode(C);
        Sat.addClause({Lit(G, true), LC});
      }
      return Lit(G, false);
    }
    case FKind::Or: {
      uint32_t G = Sat.newVar();
      std::vector<Lit> Clause{Lit(G, true)};
      for (FormulaId C : A.children(F))
        Clause.push_back(encode(C));
      Sat.addClause(std::move(Clause));
      return Lit(G, false);
    }
    case FKind::True: {
      uint32_t G = Sat.newVar();
      Sat.addClause({Lit(G, false)});
      return Lit(G, false);
    }
    case FKind::False: {
      uint32_t G = Sat.newVar();
      Sat.addClause({Lit(G, true)});
      return Lit(G, false);
    }
    case FKind::Not:
      assert(false && "lowered formula contains Not");
      return Lit();
    }
    assert(false && "bad kind");
    return Lit();
  }();
  AtomOfSatVar.resize(Sat.numVars(), ~0u);
  GateOf[F] = Encoded;
  return Encoded;
}

void QfEngine::addLatticeLemmas() {
  // Static atom-lattice lemmas: theory-valid clauses between atoms that
  // share a linear part, so the SAT core never explores boolean models
  // that are trivially theory-inconsistent.
  std::map<std::vector<std::pair<Var, int64_t>>, std::vector<uint32_t>>
      ByCoeffs;
  for (uint32_t I = 0; I < Atoms.size(); ++I)
    ByCoeffs[Atoms[I].Term.coeffs()].push_back(I);
  for (auto &[Coeffs, Group] : ByCoeffs) {
    // Within a group, t + c <= 0 with larger c is stronger: chain
    // implications from stronger to weaker (transitively complete).
    std::sort(Group.begin(), Group.end(), [&](uint32_t X, uint32_t Y) {
      return Atoms[X].Term.constant() > Atoms[Y].Term.constant();
    });
    for (size_t I = 0; I + 1 < Group.size(); ++I)
      Sat.addClause({Lit(Atoms[Group[I]].SatVar, true),
                     Lit(Atoms[Group[I + 1]].SatVar, false)});
    // Against the negated-coefficients group: t + c <= 0 and
    // -t + c' <= 0 clash iff c + c' > 0.
    std::vector<std::pair<Var, int64_t>> Neg = Coeffs;
    for (auto &[V, K] : Neg)
      K = -K;
    if (Neg < Coeffs)
      continue; // handle each unordered pair once
    auto It = ByCoeffs.find(Neg);
    if (It == ByCoeffs.end())
      continue;
    if (Group.size() * It->second.size() > 4096)
      continue; // quadratic pairing not worth it on huge groups
    for (uint32_t X : Group)
      for (uint32_t Y : It->second)
        if (Atoms[X].Term.constant() + Atoms[Y].Term.constant() > 0)
          Sat.addClause({Lit(Atoms[X].SatVar, true),
                         Lit(Atoms[Y].SatVar, true)});
  }
}

TheoryClient::TRes QfEngine::onAssign(const std::vector<Lit> &Trail,
                                      size_t From,
                                      std::vector<Lit> &ConflictOut) {
  if (timedOut())
    return TRes::Abort;
  ++NumOnAssign;
  trace("assign", Trail.size());
  bool Changed = false;
  for (size_t I = From; I < Trail.size(); ++I) {
    Lit L = Trail[I];
    uint32_t AtomIdx =
        L.var() < AtomOfSatVar.size() ? AtomOfSatVar[L.var()] : ~0u;
    if (AtomIdx == ~0u)
      continue;
    const TheoryAtom &TA = Atoms[AtomIdx];
    size_t M = Theory->mark();
    // Positive literal: linear part <= -c. Negative: over the integers,
    // ¬(t + c <= 0) is t + c >= 1, i.e. linear part >= 1 - c.
    bool Ok = L.negated()
                  ? Theory->assertLower(TA.SimplexRow,
                                        Rational(1 - TA.Term.constant()),
                                        L.Code)
                  : Theory->assertUpper(TA.SimplexRow,
                                        Rational(-TA.Term.constant()),
                                        L.Code);
    if (Theory->mark() != M) {
      Asserted.push_back({I, M, L});
      Changed = true;
    }
    if (!Ok) {
      ++TheoryConflicts;
      lemmaFromReasons(Theory->conflictReasons(), ConflictOut);
      return TRes::Conflict;
    }
  }
  if (Changed)
    ++NumRationalChecks;
  if (Changed && !Theory->checkRational()) {
    ++TheoryConflicts;
    if (TheoryConflicts > Opts.MaxTheoryConflicts)
      return TRes::Abort;
    lemmaFromReasons(Theory->conflictReasons(), ConflictOut);
    return TRes::Conflict;
  }
  return TRes::Ok;
}

void QfEngine::onBacktrack(size_t NewTrailSize) {
  size_t M = SIZE_MAX;
  while (!Asserted.empty() && Asserted.back().TrailPos >= NewTrailSize) {
    M = Asserted.back().Mark;
    Asserted.pop_back();
  }
  if (M != SIZE_MAX)
    Theory->rollback(M);
}

TheoryClient::TRes QfEngine::onFinalModel(std::vector<Lit> &ConflictOut) {
  if (timedOut())
    return TRes::Abort;
  // Rational feasibility holds by construction; look for an integer model.
  ++NumFinalChecks;
  trace("final", 0);
  TheoryResult R = Theory->checkInteger(FinalModel, Opts.TheoryNodeBudget);
  if (timedOut())
    return TRes::Abort; // cancel/deadline interrupted branch-and-bound
  if (R == TheoryResult::Sat)
    return TRes::Ok;
  ++TheoryConflicts;
  if (TheoryConflicts > Opts.MaxTheoryConflicts)
    return TRes::Abort;
  if (R == TheoryResult::Unsat) {
    // Integrality conflict: branch-and-bound reports the union of its
    // leaf explanations as a core over the asserted bounds.
    lemmaFromReasons(Theory->conflictReasons(), ConflictOut);
    return TRes::Conflict;
  }
  // Budget exhausted: split on demand. Mint the atom x ≤ ⌊β(x)⌋ for a
  // fractional variable and hand the case split to the CDCL core — its
  // two polarities assert x ≤ ⌊β⌋ / x ≥ ⌊β⌋+1, so clause learning takes
  // over the integrality branching that exhausted the local search.
  if (!Theory->checkRational())
    return TRes::Abort; // cannot happen: bounds only got looser
  if (timedOut())
    return TRes::Abort; // interrupted mid-check: the vertex is untrusted
  uint32_t Frac = ~0u;
  for (Var V = 0; V < A.numVars(); ++V)
    if (!Theory->value(V).isInteger()) {
      Frac = V;
      break;
    }
  if (Frac == ~0u) {
    // The relaxation vertex is integral after all; accept it.
    FinalModel.resize(A.numVars());
    for (Var V = 0; V < A.numVars(); ++V)
      FinalModel[V] = Theory->value(V).asInt64();
    return TRes::Ok;
  }
  int64_t Floor = Theory->value(Frac).floor().asInt64();
  uint32_t SplitVar =
      atomVarForTerm(LinTerm::variable(Frac) - LinTerm(Floor));
  Atoms[AtomOfSatVar[SplitVar]].SimplexRow = Frac;
  // β(Frac) is strictly between Floor and Floor+1, so neither polarity of
  // the split atom can already be asserted — the clause below genuinely
  // extends the boolean search space (progress is guaranteed). Prefer the
  // downward branch (x ≤ ⌊β⌋): counts are bounded below by 0, so downward
  // split chains terminate, whereas upward chains can ascend forever.
  Sat.setPolarity(SplitVar, true);
  ++NumSplits;
  ConflictOut.push_back(Lit(SplitVar, false));
  ConflictOut.push_back(Lit(SplitVar, true));
  return TRes::Conflict;
}

QfResult QfEngine::run() {
  const bool Stats = std::getenv("POSTR_QF_STATS") != nullptr;
  QfResult Out;
  if (A.kind(Root) == FKind::False) {
    Out.V = Verdict::Unsat;
    return Out;
  }

  Lit RootLit = encode(Root);
  if (timedOut()) {
    Out.V = Verdict::Unknown;
    return Out;
  }
  Sat.addClause({RootLit});
  addLatticeLemmas();
  if (timedOut()) {
    Out.V = Verdict::Unknown;
    return Out;
  }

  // Register every atom's linear part with the Simplex up-front so row
  // additions never happen mid-search.
  Theory = std::make_unique<Simplex>(A.numVars());
  Theory->setInterrupt([this] { return timedOut(); });
  for (Var V = 0; V < A.numVars(); ++V)
    Theory->setIntrinsicBounds(V, A.varLo(V), A.varHi(V));
  for (TheoryAtom &TA : Atoms)
    TA.SimplexRow = Theory->rowFor(TA.Term);

  Theory->markBaseline();

  for (bool Done = false; !Done;) {
    switch (Sat.solve(this)) {
    case SatSolver::Res::Sat: {
      if (Refine) {
        std::optional<FormulaId> Cut = Refine(A, FinalModel);
        if (Cut) {
          // Reset the theory bounds to the baseline wholesale (the SAT
          // core starts the next episode with an empty trail), conjoin
          // the cut, and resume — keeping every learned clause AND the
          // tableau basis: the next episode warm-starts from the last
          // feasible vertex instead of replaying the bound trail.
          Asserted.clear();
          Theory->resetToBaseline();
          Sat.addClause({encode(A.lower(*Cut))});
          for (TheoryAtom &TA : Atoms)
            if (TA.SimplexRow == ~0u)
              TA.SimplexRow = Theory->rowFor(TA.Term);
          continue;
        }
      }
      Out.V = Verdict::Sat;
      Out.Model = std::move(FinalModel);
      Done = true;
      break;
    }
    case SatSolver::Res::Unsat:
      Out.V = Verdict::Unsat;
      Done = true;
      break;
    case SatSolver::Res::Abort:
      Out.V = Verdict::Unknown;
      Done = true;
      break;
    }
  }
  if (Theory && std::getenv("POSTR_SIMPLEX_STATS")) {
    const SimplexStats &TS = Theory->stats();
    std::fprintf(stderr,
                 "[simplex] pivots=%llu checks=%llu fill=%llu maxnnz=%llu "
                 "dennorm=%llu\n",
                 (unsigned long long)TS.Pivots, (unsigned long long)TS.Checks,
                 (unsigned long long)TS.RowFillIn,
                 (unsigned long long)TS.MaxRowNnz,
                 (unsigned long long)TS.DenNormalizations);
  }
  const SatStats &SS = Sat.stats();
  Out.Stats.Conflicts = SS.Conflicts;
  Out.Stats.Propagations = SS.Propagations;
  Out.Stats.Decisions = SS.Decisions;
  Out.Stats.Restarts = SS.Restarts;
  Out.Stats.Reductions = SS.Reductions;
  Out.Stats.ClausesDeleted = SS.ClausesDeleted;
  if (Theory) {
    const SimplexStats &TS = Theory->stats();
    Out.Stats.Pivots = TS.Pivots;
    Out.Stats.Checks = TS.Checks;
    Out.Stats.RowFillIn = TS.RowFillIn;
    Out.Stats.MaxRowNnz = TS.MaxRowNnz;
    Out.Stats.DenNormalizations = TS.DenNormalizations;
  }
  Out.Stats.TheoryConflicts = TheoryConflicts;
  if (Stats)
    std::fprintf(
        stderr,
        "[qf] v=%d atoms=%zu satvars=%u tconf=%u confl=%llu prop=%llu "
        "dec=%llu restart=%llu del=%llu piv=%llu ms=%lld\n",
        static_cast<int>(Out.V), Atoms.size(), Sat.numVars(),
        TheoryConflicts, (unsigned long long)SS.Conflicts,
        (unsigned long long)SS.Propagations, (unsigned long long)SS.Decisions,
        (unsigned long long)SS.Restarts, (unsigned long long)SS.ClausesDeleted,
        (unsigned long long)Out.Stats.Pivots,
        static_cast<long long>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                Clock::now() - Start)
                .count()));
  return Out;
}

} // namespace

QfResult postr::lia::solveQF(Arena &A, FormulaId F, const QfOptions &Opts,
                             const ModelRefiner &Refine) {
  QfEngine Engine(A, F, Opts, Refine);
  QfResult R = Engine.run();
#ifndef NDEBUG
  if (R.V == Verdict::Sat) {
    assert(R.Model.size() == A.numVars() && "model size mismatch");
    assert(A.eval(F, R.Model) && "solver produced a spurious model");
  }
#endif
  return R;
}
