//===- lia/Solver.cpp - Quantifier-free LIA solver -------------------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "lia/Solver.h"

#include "lia/Incremental.h"

using namespace postr;
using namespace postr::lia;

// The one-shot entry point is a single-use incremental context: the
// engine (CNF encoding, DPLL(T) search, Simplex theory) lives in
// lia/Incremental.cpp so that the MBQI and CEGAR loops can keep it alive
// across solves. The refinement hook runs inside the context, which is
// what keeps learned clauses and the tableau basis across episodes.
QfResult postr::lia::solveQF(Arena &A, FormulaId F, const QfOptions &Opts,
                             const ModelRefiner &Refine) {
  IncrementalContext C(A, Opts);
  C.assertFormula(F);
  QfResult R = C.solve({}, Refine);
#ifndef NDEBUG
  if (R.V == Verdict::Sat) {
    assert(R.Model.size() == A.numVars() && "model size mismatch");
    assert(A.eval(F, R.Model) && "solver produced a spurious model");
  }
#endif
  return R;
}
