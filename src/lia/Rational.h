//===- lia/Rational.h - Exact rational arithmetic ----------------*- C++ -*-===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact rationals over __int128 used by the Simplex core. The Parikh /
/// position encodings produce coefficients in {-m-n, ..., m+n} and models
/// whose magnitudes are tiny compared to the 2^127 headroom; overflow is
/// nevertheless guarded by assertions in debug builds.
///
//===----------------------------------------------------------------------===//

#ifndef POSTR_LIA_RATIONAL_H
#define POSTR_LIA_RATIONAL_H

#include <cassert>
#include <cstdint>
#include <string>

namespace postr {
namespace lia {

/// A normalized rational number (gcd-reduced, positive denominator).
class Rational {
public:
  using Int = __int128;

  Rational() = default;
  Rational(int64_t N) : Num(N) {}
  Rational(Int N, Int D) : Num(N), Den(D) { normalize(); }

  static Rational zero() { return Rational(); }
  static Rational one() { return Rational(1); }

  Int num() const { return Num; }
  Int den() const { return Den; }

  bool isZero() const { return Num == 0; }
  bool isNegative() const { return Num < 0; }
  bool isInteger() const { return Den == 1; }

  /// The value as int64; asserts integrality and range.
  int64_t asInt64() const {
    assert(isInteger() && "asInt64 on non-integer rational");
    assert(Num <= INT64_MAX && Num >= INT64_MIN && "rational out of range");
    return static_cast<int64_t>(Num);
  }

  /// Largest integer <= value.
  Rational floor() const {
    if (Den == 1)
      return *this;
    Int Q = Num / Den;
    if (Num % Den != 0 && Num < 0)
      --Q;
    return fromInt(Q);
  }

  /// Smallest integer >= value.
  Rational ceil() const {
    if (Den == 1)
      return *this;
    Int Q = Num / Den;
    if (Num % Den != 0 && Num > 0)
      ++Q;
    return fromInt(Q);
  }

  Rational operator-() const {
    Rational R;
    R.Num = -Num;
    R.Den = Den;
    return R;
  }

  // The arithmetic fast-paths matter: Parikh/position tableaus have ±1
  // coefficients almost everywhere, so operands are overwhelmingly
  // integral and the gcd normalization would dominate the Simplex.
  Rational operator+(const Rational &O) const {
    if (Den == 1 && O.Den == 1)
      return fromInt(Num + O.Num);
    return Rational(Num * O.Den + O.Num * Den, Den * O.Den);
  }
  Rational operator-(const Rational &O) const {
    if (Den == 1 && O.Den == 1)
      return fromInt(Num - O.Num);
    return Rational(Num * O.Den - O.Num * Den, Den * O.Den);
  }
  Rational operator*(const Rational &O) const {
    if (Den == 1 && O.Den == 1)
      return fromInt(Num * O.Num);
    return Rational(Num * O.Num, Den * O.Den);
  }
  Rational operator/(const Rational &O) const {
    assert(!O.isZero() && "division by zero");
    if (O.Den == 1 && (O.Num == 1 || O.Num == -1)) {
      Rational R;
      R.Num = O.Num == 1 ? Num : -Num;
      R.Den = Den;
      return R;
    }
    return Rational(Num * O.Den, Den * O.Num);
  }

  Rational &operator+=(const Rational &O) { return *this = *this + O; }
  Rational &operator-=(const Rational &O) { return *this = *this - O; }
  Rational &operator*=(const Rational &O) { return *this = *this * O; }
  Rational &operator/=(const Rational &O) { return *this = *this / O; }

  friend bool operator==(const Rational &A, const Rational &B) {
    return A.Num == B.Num && A.Den == B.Den;
  }
  friend bool operator!=(const Rational &A, const Rational &B) {
    return !(A == B);
  }
  // Comparisons skip the cross-multiplication when both operands are
  // integral — the overwhelmingly common case in the ±1-coefficient
  // Parikh/position tableaus (same rationale as the arithmetic above).
  friend bool operator<(const Rational &A, const Rational &B) {
    if (A.Den == 1 && B.Den == 1)
      return A.Num < B.Num;
    return A.Num * B.Den < B.Num * A.Den;
  }
  friend bool operator<=(const Rational &A, const Rational &B) {
    if (A.Den == 1 && B.Den == 1)
      return A.Num <= B.Num;
    return A.Num * B.Den <= B.Num * A.Den;
  }
  friend bool operator>(const Rational &A, const Rational &B) {
    return B < A;
  }
  friend bool operator>=(const Rational &A, const Rational &B) {
    return B <= A;
  }

  std::string str() const {
    auto Render = [](Int V) {
      if (V == 0)
        return std::string("0");
      bool Neg = V < 0;
      std::string S;
      while (V != 0) {
        int Digit = static_cast<int>(V % 10);
        if (Digit < 0)
          Digit = -Digit;
        S.push_back(static_cast<char>('0' + Digit));
        V /= 10;
      }
      if (Neg)
        S.push_back('-');
      return std::string(S.rbegin(), S.rend());
    };
    if (Den == 1)
      return Render(Num);
    return Render(Num) + "/" + Render(Den);
  }

  /// gcd of |A| and |B|, shared with the Simplex row normalization.
  static Int gcdInt(Int A, Int B) {
    if (A < 0)
      A = -A;
    if (B < 0)
      B = -B;
    // Hardware-division fast path: __int128 % compiles to a libgcc call
    // (__modti3), which dominated pivot-heavy Simplex profiles. Tableau
    // coefficients overwhelmingly fit in 64 bits.
    if (A <= UINT64_MAX && B <= UINT64_MAX) {
      uint64_t X = static_cast<uint64_t>(A), Y = static_cast<uint64_t>(B);
      while (Y != 0) {
        uint64_t T = X % Y;
        X = Y;
        Y = T;
      }
      return static_cast<Int>(X);
    }
    while (B != 0) {
      Int T = A % B;
      A = B;
      B = T;
    }
    return A;
  }

private:
  static Rational fromInt(Int N) {
    Rational R;
    R.Num = N;
    return R;
  }

  void normalize() {
    assert(Den != 0 && "zero denominator");
    if (Den == 1)
      return; // integral values are already canonical
    if (Den < 0) {
      Num = -Num;
      Den = -Den;
    }
    Int G = gcdInt(Num, Den);
    if (G > 1) {
      Num /= G;
      Den /= G;
    }
    if (Num == 0)
      Den = 1;
  }

  Int Num = 0;
  Int Den = 1;
};

} // namespace lia
} // namespace postr

#endif // POSTR_LIA_RATIONAL_H
