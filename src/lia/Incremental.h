//===- lia/Incremental.h - Incremental QF_LIA solver contexts ----*- C++ -*-===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Persistent solve contexts over the DPLL(T) engine behind `solveQF`:
/// push/pop assertion scopes, solve-under-assumptions, and retention of
/// everything expensive across calls — the CNF encoding and Tseitin gate
/// cache, the learnt-clause database, VSIDS activity and saved phases,
/// and the Simplex tableau/basis (new atoms append rows; bounds restore
/// to a baseline instead of rebuilding).
///
/// This is the classic incremental-SMT amortization (MiniSat-style
/// assumptions + theory warm-start) that the MBQI loop in `lia/Mbqi.cpp`
/// and the connectivity-CEGAR refiner depend on: thousands of
/// closely-related queries pay encoding and search-state cost once.
///
/// Mechanics:
///  - `assertFormula` encodes into the persistent CDCL core. Inside a
///    scope the formula's root literal is guarded by the scope's fresh
///    selector variable; `pop` permanently disables the selector (unit
///    ¬s), so guarded clauses become satisfied garbage rather than being
///    deleted — learnt clauses stay valid unconditionally.
///  - `solve(Assumptions)` flattens each assumption formula: lowered
///    conjunctions of atoms become assumption *literals* directly (no
///    gate, no clause garbage — repeated pins/offsets intern to the same
///    atom variables), anything else gets its Tseitin gate assumed.
///    Active scope selectors ride along as implicit assumptions.
///  - Unsat answers distinguish "the asserted set is unsatisfiable"
///    from "the assumptions clash": `unsatAssumptions()` holds the
///    indices of the guilty assumption formulas (from the SAT core's
///    final-conflict analysis), which MBQI uses to tell a size-bound
///    exhaustion from a genuine refutation without a second solve.
///  - Between solves the Simplex keeps its tableau and basis: bounds
///    reset to the intrinsic baseline in O(vars), new arena variables
///    and new atoms register incrementally (appending, never rebuilding),
///    and the next search warm-starts from the last feasible vertex.
///
//===----------------------------------------------------------------------===//

#ifndef POSTR_LIA_INCREMENTAL_H
#define POSTR_LIA_INCREMENTAL_H

#include "lia/Solver.h"

#include <memory>

namespace postr {
namespace lia {

class IncrementalContext {
public:
  /// The context references \p A for its whole lifetime. Variables may
  /// be minted in the arena between solves; they are picked up (with
  /// their intrinsic bounds) at the next `solve`.
  explicit IncrementalContext(Arena &A, const QfOptions &Opts = {});
  ~IncrementalContext();
  IncrementalContext(const IncrementalContext &) = delete;
  IncrementalContext &operator=(const IncrementalContext &) = delete;

  /// Replaces the solver options (budgets/deadline/cancel) for the next
  /// solve; deadlines are measured from each `solve` call.
  void setOptions(const QfOptions &O);

  /// Asserts \p F in the current scope (permanently when no scope is
  /// open). Must not be called from inside a ModelRefiner callback.
  void assertFormula(FormulaId F);

  /// Opens / closes an assertion scope. `pop` retracts every formula
  /// asserted since the matching `push`; atoms and learnt clauses
  /// encountered inside the scope remain cached for later reuse.
  void push();
  void pop();
  size_t numScopes() const;

  /// Decides the conjunction of all active assertions and \p Assumptions.
  /// On Sat the model covers every arena variable. \p Refine, if given,
  /// runs the CEGAR loop inside the context exactly like `solveQF`'s
  /// refinement hook: cuts are asserted permanently and the search
  /// resumes with all learnt state intact.
  QfResult solve(const std::vector<FormulaId> &Assumptions = {},
                 const ModelRefiner &Refine = nullptr);

  /// After an Unsat solve that depended on the assumptions: indices into
  /// the Assumptions vector of a responsible subset (empty when the
  /// active assertions are unsatisfiable on their own).
  const std::vector<uint32_t> &unsatAssumptions() const;

  /// Search-core counters accumulated over every solve of this context.
  const QfSearchStats &cumulativeStats() const;
  uint64_t numSolves() const;

private:
  class Impl;
  std::unique_ptr<Impl> I;
};

} // namespace lia
} // namespace postr

#endif // POSTR_LIA_INCREMENTAL_H
