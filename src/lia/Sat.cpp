//===- lia/Sat.cpp - CDCL SAT solver ---------------------------------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "lia/Sat.h"

#include "base/Budget.h"
#include "proof/Proof.h"

#include <algorithm>
#include <cmath>

using namespace postr;
using namespace postr::lia;

namespace {

/// Literal codes of \p Lits, for the proof trace.
std::vector<uint32_t> litCodes(const std::vector<Lit> &Lits) {
  std::vector<uint32_t> Out;
  Out.reserve(Lits.size());
  for (Lit L : Lits)
    Out.push_back(L.Code);
  return Out;
}

/// The Luby restart sequence 1,1,2,1,1,2,4,... (0-indexed).
uint64_t luby(uint32_t X) {
  // Find the subsequence [0, 2^K - 2] containing X, then recurse into it.
  uint32_t K = 1;
  uint64_t Size = 1; // 2^K - 1
  while (Size < X + 1u) {
    ++K;
    Size = 2 * Size + 1;
  }
  while (Size - 1 != X) {
    Size = (Size - 1) >> 1;
    --K;
    X %= static_cast<uint32_t>(Size);
  }
  return uint64_t(1) << (K - 1);
}

} // namespace

uint32_t SatSolver::newVar() {
  Assign.push_back(Unassigned);
  Level.push_back(0);
  Reason.push_back(NoClause);
  Activity.push_back(0.0);
  Polarity.push_back(FalseVal);
  Seen.push_back(0);
  HeapPos.push_back(~0u);
  Watches.emplace_back();
  Watches.emplace_back();
  uint32_t V = numVars() - 1;
  heapInsert(V);
  return V;
}

//===----------------------------------------------------------------------===//
// Order heap (indexed binary max-heap over Activity)
//===----------------------------------------------------------------------===//

void SatSolver::heapInsert(uint32_t V) {
  assert(!inHeap(V) && "double insert");
  HeapPos[V] = static_cast<uint32_t>(Heap.size());
  Heap.push_back(V);
  heapSiftUp(HeapPos[V]);
}

void SatSolver::heapSiftUp(uint32_t I) {
  uint32_t V = Heap[I];
  while (I > 0) {
    uint32_t Parent = (I - 1) >> 1;
    if (!heapLess(Heap[Parent], V))
      break;
    Heap[I] = Heap[Parent];
    HeapPos[Heap[I]] = I;
    I = Parent;
  }
  Heap[I] = V;
  HeapPos[V] = I;
}

void SatSolver::heapSiftDown(uint32_t I) {
  uint32_t V = Heap[I];
  size_t N = Heap.size();
  for (;;) {
    size_t Child = 2 * size_t(I) + 1;
    if (Child >= N)
      break;
    if (Child + 1 < N && heapLess(Heap[Child], Heap[Child + 1]))
      ++Child;
    if (!heapLess(V, Heap[Child]))
      break;
    Heap[I] = Heap[Child];
    HeapPos[Heap[I]] = I;
    I = static_cast<uint32_t>(Child);
  }
  Heap[I] = V;
  HeapPos[V] = I;
}

uint32_t SatSolver::heapPop() {
  uint32_t Top = Heap[0];
  HeapPos[Top] = ~0u;
  uint32_t Last = Heap.back();
  Heap.pop_back();
  if (!Heap.empty() && Last != Top) {
    Heap[0] = Last;
    HeapPos[Last] = 0;
    heapSiftDown(0);
  }
  return Top;
}

//===----------------------------------------------------------------------===//
// Clause management
//===----------------------------------------------------------------------===//

void SatSolver::addClause(std::vector<Lit> Lits) {
  // Log the clause as handed in, before simplification: the checker
  // replays level-0 propagation itself, so the original literals carry
  // at least as much propagation power as the simplified clause.
  if (Proof)
    Proof->input(litCodes(Lits));
  // Clause addition happens between solve() calls; drop back to the root
  // decision level so level-0 simplification below is valid.
  backtrack(0);
  // Simplify: drop duplicate and false literals, detect tautologies and
  // satisfied clauses at level 0.
  std::sort(Lits.begin(), Lits.end(),
            [](Lit A, Lit B) { return A.Code < B.Code; });
  Lits.erase(std::unique(Lits.begin(), Lits.end()), Lits.end());
  std::vector<Lit> Kept;
  for (size_t I = 0; I < Lits.size(); ++I) {
    if (I + 1 < Lits.size() && Lits[I + 1] == ~Lits[I])
      return; // tautology
    if (valueIsTrue(Lits[I]))
      return; // already satisfied at level 0
    if (!valueIsFalse(Lits[I]))
      Kept.push_back(Lits[I]);
  }
  if (Kept.empty()) {
    Unsatisfiable = true;
    return;
  }
  if (Kept.size() == 1) {
    if (valueIsFalse(Kept[0])) {
      Unsatisfiable = true;
      return;
    }
    if (isUnassigned(Kept[0])) {
      enqueue(Kept[0], NoClause);
      if (propagate() != NoClause)
        Unsatisfiable = true;
    }
    return;
  }
  Clauses.push_back({std::move(Kept), /*Lbd=*/0, /*Learnt=*/false});
  chargeClauseMem(Clauses.back().Lits.size());
  attach(static_cast<ClauseRef>(Clauses.size() - 1));
}

void SatSolver::chargeClauseMem(size_t NLits) {
  if (Bud)
    // Literal storage + clause header + the two watch-list slots. The
    // accounting is monotonic (reduceDB does not credit back): it bounds
    // cumulative allocation, which is what a resident service caps.
    Bud->chargeMem(NLits * sizeof(Lit) + sizeof(Clause) +
                   2 * sizeof(ClauseRef));
}

void SatSolver::attach(ClauseRef C) {
  const std::vector<Lit> &Lits = Clauses[C].Lits;
  assert(Lits.size() >= 2 && "attaching short clause");
  Watches[(~Lits[0]).Code].push_back(C);
  Watches[(~Lits[1]).Code].push_back(C);
}

void SatSolver::enqueue(Lit L, ClauseRef From) {
  assert(isUnassigned(L) && "enqueue of assigned literal");
  Assign[L.var()] = L.negated() ? FalseVal : TrueVal;
  Level[L.var()] = static_cast<uint32_t>(TrailLim.size());
  Reason[L.var()] = From;
  Trail.push_back(L);
  if (From != NoClause)
    ++Stats.Propagations;
}

SatSolver::ClauseRef SatSolver::propagate() {
  while (QHead < Trail.size()) {
    Lit P = Trail[QHead++];
    std::vector<ClauseRef> &Watch = Watches[P.Code];
    size_t Keep = 0;
    for (size_t I = 0; I < Watch.size(); ++I) {
      ClauseRef CR = Watch[I];
      std::vector<Lit> &Lits = Clauses[CR].Lits;
      // Normalize: the falsified watched literal goes to slot 1.
      if (Lits[0] == ~P)
        std::swap(Lits[0], Lits[1]);
      assert(Lits[1] == ~P && "watch list out of sync");
      if (valueIsTrue(Lits[0])) {
        Watch[Keep++] = CR;
        continue;
      }
      // Look for a replacement watch.
      bool Moved = false;
      for (size_t K = 2; K < Lits.size(); ++K) {
        if (valueIsFalse(Lits[K]))
          continue;
        std::swap(Lits[1], Lits[K]);
        Watches[(~Lits[1]).Code].push_back(CR);
        Moved = true;
        break;
      }
      if (Moved)
        continue;
      // Unit or conflicting.
      Watch[Keep++] = CR;
      if (valueIsFalse(Lits[0])) {
        // Conflict: keep remaining watches, report.
        for (size_t K = I + 1; K < Watch.size(); ++K)
          Watch[Keep++] = Watch[K];
        Watch.resize(Keep);
        QHead = static_cast<uint32_t>(Trail.size());
        return CR;
      }
      enqueue(Lits[0], CR);
    }
    Watch.resize(Keep);
  }
  return NoClause;
}

void SatSolver::bumpVar(uint32_t Var) {
  Activity[Var] += ActivityInc;
  if (Activity[Var] > 1e100) {
    for (double &A : Activity)
      A *= 1e-100;
    ActivityInc *= 1e-100;
  }
  if (inHeap(Var))
    heapSiftUp(HeapPos[Var]);
}

uint32_t SatSolver::computeLbd(const std::vector<Lit> &Lits) {
  ++Stamp;
  uint32_t Lbd = 0;
  for (Lit L : Lits) {
    if (Assign[L.var()] == Unassigned) {
      ++Lbd; // fresh splitting atoms: each its own block, conservatively
      continue;
    }
    uint32_t Lv = Level[L.var()];
    if (LevelStamp.size() <= Lv)
      LevelStamp.resize(Lv + 1, 0);
    if (LevelStamp[Lv] != Stamp) {
      LevelStamp[Lv] = Stamp;
      ++Lbd;
    }
  }
  return Lbd;
}

bool SatSolver::litRedundant(Lit L) const {
  // One-step self-subsuming resolution: L is implied by the rest of the
  // learnt clause when every other literal of its reason is already in
  // the clause (seen) or fixed at level 0.
  ClauseRef CR = Reason[L.var()];
  if (CR == NoClause)
    return false;
  for (Lit Q : Clauses[CR].Lits) {
    if (Q.var() == L.var())
      continue;
    if (!Seen[Q.var()] && Level[Q.var()] != 0)
      return false;
  }
  return true;
}

void SatSolver::analyze(ClauseRef Conflict, std::vector<Lit> &Learnt,
                        uint32_t &BackjumpLevel, uint32_t &LbdOut) {
  Learnt.clear();
  Learnt.push_back(Lit()); // slot for the asserting literal
  uint32_t Counter = 0;
  Lit P;
  size_t Index = Trail.size();
  uint32_t CurLevel = static_cast<uint32_t>(TrailLim.size());
  ClauseRef CR = Conflict;
  bool FirstIter = true;

  for (;;) {
    assert(CR != NoClause && "analyze hit a decision unexpectedly");
    const std::vector<Lit> &Lits = Clauses[CR].Lits;
    for (size_t I = FirstIter ? 0 : 1; I < Lits.size(); ++I) {
      Lit Q = Lits[I];
      if (Q == P)
        continue;
      if (Seen[Q.var()] || Level[Q.var()] == 0)
        continue;
      Seen[Q.var()] = 1;
      bumpVar(Q.var());
      if (Level[Q.var()] == CurLevel)
        ++Counter;
      else
        Learnt.push_back(Q);
    }
    // Pick the next trail literal to resolve on.
    while (!Seen[Trail[Index - 1].var()])
      --Index;
    --Index;
    P = Trail[Index];
    Seen[P.var()] = 0;
    CR = Reason[P.var()];
    FirstIter = false;
    if (--Counter == 0)
      break;
  }
  Learnt[0] = ~P;

  // Minimize: drop literals implied by the rest of the clause. Seen still
  // marks every non-asserting literal, which is exactly what litRedundant
  // tests against (removability is checked against the original first-UIP
  // clause, the standard local mode) — so decide redundancy for the whole
  // clause first, then clear every mark, then compact.
  RedundantScratch.assign(Learnt.size(), 0);
  for (size_t I = 1; I < Learnt.size(); ++I)
    RedundantScratch[I] = litRedundant(Learnt[I]) ? 1 : 0;
  for (size_t I = 1; I < Learnt.size(); ++I)
    Seen[Learnt[I].var()] = 0;
  size_t Kept = 1;
  for (size_t I = 1; I < Learnt.size(); ++I) {
    if (RedundantScratch[I]) {
      ++Stats.LitsMinimized;
      continue;
    }
    Learnt[Kept++] = Learnt[I];
  }
  Learnt.resize(Kept);

  LbdOut = computeLbd(Learnt);

  // Backjump level: the second-highest level in the clause.
  BackjumpLevel = 0;
  for (size_t I = 1; I < Learnt.size(); ++I)
    BackjumpLevel = std::max(BackjumpLevel, Level[Learnt[I].var()]);
  // Move a literal of the backjump level to slot 1 (watch invariant).
  if (Learnt.size() > 1) {
    size_t MaxI = 1;
    for (size_t I = 2; I < Learnt.size(); ++I)
      if (Level[Learnt[I].var()] > Level[Learnt[MaxI].var()])
        MaxI = I;
    std::swap(Learnt[1], Learnt[MaxI]);
  }
}

void SatSolver::backtrack(uint32_t TargetLevel) {
  if (TrailLim.size() <= TargetLevel)
    return;
  uint32_t Bound = TrailLim[TargetLevel];
  for (size_t I = Trail.size(); I > Bound; --I) {
    Lit L = Trail[I - 1];
    Polarity[L.var()] = Assign[L.var()];
    Assign[L.var()] = Unassigned;
    Reason[L.var()] = NoClause;
    if (!inHeap(L.var()))
      heapInsert(L.var());
  }
  Trail.resize(Bound);
  TrailLim.resize(TargetLevel);
  QHead = Bound;
  if (TheoryHead > Trail.size()) {
    TheoryHead = Trail.size();
    if (Theory)
      Theory->onBacktrack(Trail.size());
  }
}

Lit SatSolver::pickBranchLit() {
  // Lazy heap: popped entries may have been assigned since insertion;
  // skip them (they re-enter the heap when backtracking unassigns them).
  while (!Heap.empty()) {
    uint32_t V = heapPop();
    if (Assign[V] == Unassigned)
      return Lit(V, Polarity[V] == FalseVal);
  }
  return Lit();
}

void SatSolver::reduceDB() {
  ++Stats.Reductions;
  // Deletable: long high-LBD learnt clauses that are not the reason of an
  // asserted literal. Binary and glue (LBD <= 2) clauses are kept forever.
  std::vector<ClauseRef> Cand;
  for (ClauseRef C = 0; C < Clauses.size(); ++C) {
    const Clause &Cl = Clauses[C];
    if (Cl.Learnt && Cl.Lits.size() > 2 && Cl.Lbd > 2 && !locked(C))
      Cand.push_back(C);
  }
  if (Cand.empty()) {
    ReduceLimit += ReduceBump;
    return;
  }
  std::sort(Cand.begin(), Cand.end(), [&](ClauseRef A, ClauseRef B) {
    if (Clauses[A].Lbd != Clauses[B].Lbd)
      return Clauses[A].Lbd > Clauses[B].Lbd;
    if (Clauses[A].Lits.size() != Clauses[B].Lits.size())
      return Clauses[A].Lits.size() > Clauses[B].Lits.size();
    return A > B; // younger (higher ref) first, so equals drop youngest
  });
  std::vector<uint8_t> Drop(Clauses.size(), 0);
  for (size_t I = 0; I < Cand.size() / 2; ++I) {
    Drop[Cand[I]] = 1;
    if (Proof)
      Proof->del(litCodes(Clauses[Cand[I]].Lits));
  }

  // Compact the clause arena and remap every live reference.
  std::vector<ClauseRef> Remap(Clauses.size(), NoClause);
  size_t Out = 0;
  for (ClauseRef C = 0; C < Clauses.size(); ++C) {
    if (Drop[C]) {
      ++Stats.ClausesDeleted;
      continue;
    }
    Remap[C] = static_cast<ClauseRef>(Out);
    if (Out != C)
      Clauses[Out] = std::move(Clauses[C]);
    ++Out;
  }
  Clauses.resize(Out);
  for (Lit L : Trail)
    if (Reason[L.var()] != NoClause) {
      assert(Remap[Reason[L.var()]] != NoClause &&
             "reduction dropped the reason clause of an asserted literal");
      Reason[L.var()] = Remap[Reason[L.var()]];
    }
  // Rebuild the watch lists; slots 0/1 are untouched by the compaction,
  // so re-attaching preserves the watch invariant.
  for (std::vector<ClauseRef> &W : Watches)
    W.clear();
  NumLearnt = 0;
  for (ClauseRef C = 0; C < Clauses.size(); ++C) {
    attach(C);
    if (Clauses[C].Learnt)
      ++NumLearnt;
  }
  ReduceLimit += ReduceBump;
}

bool SatSolver::resolveConflict(ClauseRef Conflict) {
  ++Stats.Conflicts;
  if (TrailLim.empty()) {
    Unsatisfiable = true;
    return false;
  }
  uint32_t BackjumpLevel = 0, Lbd = 0;
  analyze(Conflict, LearntScratch, BackjumpLevel, Lbd);
  if (Proof)
    Proof->learnt(litCodes(LearntScratch));
  backtrack(BackjumpLevel);
  if (LearntScratch.size() == 1) {
    if (!isUnassigned(LearntScratch[0])) {
      Unsatisfiable = true;
      return false;
    }
    enqueue(LearntScratch[0], NoClause);
  } else {
    Clauses.push_back({LearntScratch, Lbd, /*Learnt=*/true});
    ++NumLearnt;
    chargeClauseMem(LearntScratch.size());
    ClauseRef CR = static_cast<ClauseRef>(Clauses.size() - 1);
    attach(CR);
    enqueue(LearntScratch[0], CR);
  }
  ActivityInc *= 1.05;
  ++ConflictsSinceRestart;
  if (ConflictsSinceRestart >= RestartLimit) {
    ++Stats.Restarts;
    ConflictsSinceRestart = 0;
    RestartLimit = 100 * luby(RestartCount++);
    backtrack(0);
  }
  if (NumLearnt >= ReduceLimit)
    reduceDB();
  return true;
}

bool SatSolver::handleTheoryConflict(std::vector<Lit> &Lemma) {
  // Deduplicate; lemmas arrive from explanation machinery unordered.
  std::sort(Lemma.begin(), Lemma.end(),
            [](Lit A, Lit B) { return A.Code < B.Code; });
  Lemma.erase(std::unique(Lemma.begin(), Lemma.end()), Lemma.end());
  // Theory step, carrying whatever Farkas certificate the theory client
  // staged for it (split lemmas stage none — they are propositional
  // tautologies, checkable by unit propagation alone).
  if (Proof)
    Proof->theory(litCodes(Lemma));
  if (Lemma.empty()) {
    Unsatisfiable = true;
    return false;
  }
  // Splitting-on-demand lemmas are not falsified — they carry fresh
  // literals (e.g. a branch x ≤ f ∨ x ≥ f+1 over newly minted atoms).
  // Attach and let the search assign them.
  bool AllFalse = true;
  for (Lit L : Lemma)
    AllFalse &= valueIsFalse(L);
  if (!AllFalse) {
    if (Lemma.size() == 1) {
      backtrack(0);
      if (valueIsFalse(Lemma[0])) {
        Unsatisfiable = true;
        return false;
      }
      if (isUnassigned(Lemma[0]))
        enqueue(Lemma[0], NoClause);
      return true;
    }
    // Put non-false literals (fresh splitting atoms are unassigned) in
    // the watch slots. Should every watchable literal later turn false
    // without the clause propagating, the theory still catches the
    // inconsistent atom polarities — the clause is a theory tautology.
    auto NotFalse = [&](Lit L) { return !valueIsFalse(L); };
    std::stable_partition(Lemma.begin(), Lemma.end(), NotFalse);
    uint32_t Lbd = computeLbd(Lemma);
    Clauses.push_back({std::move(Lemma), Lbd, /*Learnt=*/true});
    ++NumLearnt;
    chargeClauseMem(Clauses.back().Lits.size());
    attach(static_cast<ClauseRef>(Clauses.size() - 1));
    return true;
  }
  uint32_t MaxLevel = 0;
  for (Lit L : Lemma)
    MaxLevel = std::max(MaxLevel, Level[L.var()]);
  if (MaxLevel == 0) {
    Unsatisfiable = true;
    return false;
  }
  if (Lemma.size() == 1) {
    // Unit lemma: globally forces the literal.
    backtrack(0);
    if (valueIsFalse(Lemma[0])) {
      Unsatisfiable = true;
      return false;
    }
    if (isUnassigned(Lemma[0]))
      enqueue(Lemma[0], NoClause);
    return true;
  }
  backtrack(MaxLevel);
  // Watch the two deepest literals (they unassign first on backtracking,
  // preserving the watch invariant).
  auto DeeperThan = [&](Lit A, Lit B) {
    return Level[A.var()] > Level[B.var()];
  };
  std::partial_sort(Lemma.begin(), Lemma.begin() + 2, Lemma.end(),
                    DeeperThan);
  uint32_t Lbd = computeLbd(Lemma);
  Clauses.push_back({std::move(Lemma), Lbd, /*Learnt=*/true});
  ++NumLearnt;
  chargeClauseMem(Clauses.back().Lits.size());
  ClauseRef CR = static_cast<ClauseRef>(Clauses.size() - 1);
  attach(CR);
  // The lemma is falsified at the current level: run ordinary conflict
  // resolution on it.
  return resolveConflict(CR);
}

void SatSolver::analyzeFinal(Lit P) {
  // P is an assumption literal found false while re-establishing the
  // assumption prefix. The core is the subset of assumptions whose joint
  // propagation falsified it, P included. Every decision level currently
  // on the trail is an assumption level (free decisions only exist above
  // the full assumption prefix, and P's falseness is detected before any
  // free decision of this descent), so reason-less trail literals above
  // level 0 are exactly the co-responsible assumptions.
  AssumpCore.clear();
  AssumpCore.push_back(P);
  if (TrailLim.empty())
    return; // falsified by level-0 units alone: {P} is already a core
  Seen[P.var()] = 1;
  for (size_t I = Trail.size(); I > TrailLim[0]; --I) {
    uint32_t V = Trail[I - 1].var();
    if (!Seen[V])
      continue;
    Seen[V] = 0;
    ClauseRef CR = Reason[V];
    if (CR == NoClause) {
      assert(Level[V] > 0 && "level-0 literal visited above TrailLim[0]");
      AssumpCore.push_back(Trail[I - 1]);
    } else {
      // Expand the reason, skipping the implied literal itself (slot
      // V): re-marking V here would leave a stale Seen bit behind the
      // walk and poison the next first-UIP analysis.
      for (Lit Q : Clauses[CR].Lits)
        if (Q.var() != V && Level[Q.var()] > 0)
          Seen[Q.var()] = 1;
    }
  }
  Seen[P.var()] = 0; // may be stale when ~P was forced at level 0
}

SatSolver::Res SatSolver::solve(TheoryClient *TheoryIn) {
  static const std::vector<Lit> NoAssumptions;
  return solve(TheoryIn, NoAssumptions);
}

SatSolver::Res SatSolver::solve(TheoryClient *TheoryIn,
                                const std::vector<Lit> &Assumptions) {
  AssumpCore.clear();
  // A Final event from an earlier solve of this (incremental) instance
  // is stale: the owning loop kept solving past it, so it was not *the*
  // refutation. The refutation of this call is appended on exit.
  if (Proof)
    Proof->clearFinal();
  if (Unsatisfiable) {
    if (Proof)
      Proof->finalCore({});
    return Res::Unsat;
  }
  // Derive the first clause-DB reduction cap from the instance: a fixed
  // cap has no right value across the 80-clause MBQI probes and the
  // multi-thousand-clause Parikh encodings (the old 4000 simply never
  // fired — every tag-framework DB is smaller than that).
  if (ReduceLimit == 0)
    ReduceLimit = std::max<uint64_t>(300, (Clauses.size() - NumLearnt) / 4);
  Theory = TheoryIn;
  TheoryHead = 0;
  ConflictsSinceRestart = 0;
  RestartCount = 0;
  RestartLimit = 100 * luby(RestartCount++);
  backtrack(0);
  Res Out = [&] {
    if (propagate() != NoClause) {
      Unsatisfiable = true;
      return Res::Unsat;
    }
    for (;;) {
      ClauseRef Conflict = propagate();
      if (Conflict != NoClause) {
        if (!resolveConflict(Conflict))
          return Res::Unsat;
        continue;
      }
      if (Theory && TheoryHead < Trail.size()) {
        TheoryLemmaScratch.clear();
        TheoryClient::TRes TR =
            Theory->onAssign(Trail, TheoryHead, TheoryLemmaScratch);
        TheoryHead = Trail.size();
        if (TR == TheoryClient::TRes::Abort)
          return Res::Abort;
        if (TR == TheoryClient::TRes::Conflict) {
          if (!handleTheoryConflict(TheoryLemmaScratch))
            return Res::Unsat;
          continue;
        }
      }
      // Re-establish the assumption prefix before any free decision:
      // assumption k is decided at level k+1 (an already-true assumption
      // gets an empty "dummy" level so the level↔assumption mapping and
      // the analyzeFinal invariant stay intact after backjumps/restarts).
      Lit Next;
      bool HaveAssumption = false;
      while (TrailLim.size() < Assumptions.size()) {
        Lit Assume = Assumptions[TrailLim.size()];
        if (valueIsTrue(Assume)) {
          TrailLim.push_back(static_cast<uint32_t>(Trail.size()));
        } else if (valueIsFalse(Assume)) {
          analyzeFinal(Assume);
          return Res::Unsat;
        } else {
          Next = Assume;
          HaveAssumption = true;
          break;
        }
      }
      if (!HaveAssumption) {
        Next = pickBranchLit();
        if (Next.Code == ~0u) {
          if (Theory) {
            TheoryLemmaScratch.clear();
            TheoryClient::TRes TR = Theory->onFinalModel(TheoryLemmaScratch);
            if (TR == TheoryClient::TRes::Abort)
              return Res::Abort;
            if (TR == TheoryClient::TRes::Conflict) {
              if (!handleTheoryConflict(TheoryLemmaScratch))
                return Res::Unsat;
              continue;
            }
          }
          return Res::Sat;
        }
        ++Stats.Decisions;
      }
      TrailLim.push_back(static_cast<uint32_t>(Trail.size()));
      enqueue(Next, NoClause);
    }
  }();
  Theory = nullptr;
  if (Proof && Out == Res::Unsat)
    // Global refutations close with the empty core (the checker derives
    // the conflict by propagation alone); assumption refutations cite
    // the responsible assumption literals.
    Proof->finalCore(Unsatisfiable ? std::vector<uint32_t>{}
                                   : litCodes(AssumpCore));
  return Out;
}
