//===- lia/Sat.cpp - CDCL SAT solver ---------------------------------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "lia/Sat.h"

#include <algorithm>
#include <cmath>

using namespace postr;
using namespace postr::lia;

uint32_t SatSolver::newVar() {
  Assign.push_back(Unassigned);
  Level.push_back(0);
  Reason.push_back(NoClause);
  Activity.push_back(0.0);
  Polarity.push_back(FalseVal);
  Watches.emplace_back();
  Watches.emplace_back();
  return numVars() - 1;
}

void SatSolver::addClause(std::vector<Lit> Lits) {
  // Clause addition happens between solve() calls; drop back to the root
  // decision level so level-0 simplification below is valid.
  backtrack(0);
  // Simplify: drop duplicate and false literals, detect tautologies and
  // satisfied clauses at level 0.
  std::sort(Lits.begin(), Lits.end(),
            [](Lit A, Lit B) { return A.Code < B.Code; });
  Lits.erase(std::unique(Lits.begin(), Lits.end()), Lits.end());
  std::vector<Lit> Kept;
  for (size_t I = 0; I < Lits.size(); ++I) {
    if (I + 1 < Lits.size() && Lits[I + 1] == ~Lits[I])
      return; // tautology
    if (valueIsTrue(Lits[I]))
      return; // already satisfied at level 0
    if (!valueIsFalse(Lits[I]))
      Kept.push_back(Lits[I]);
  }
  if (Kept.empty()) {
    Unsatisfiable = true;
    return;
  }
  if (Kept.size() == 1) {
    if (valueIsFalse(Kept[0])) {
      Unsatisfiable = true;
      return;
    }
    if (isUnassigned(Kept[0])) {
      enqueue(Kept[0], NoClause);
      if (propagate() != NoClause)
        Unsatisfiable = true;
    }
    return;
  }
  Clauses.push_back({std::move(Kept), /*Learnt=*/false});
  attach(static_cast<ClauseRef>(Clauses.size() - 1));
}

void SatSolver::attach(ClauseRef C) {
  const std::vector<Lit> &Lits = Clauses[C].Lits;
  assert(Lits.size() >= 2 && "attaching short clause");
  Watches[(~Lits[0]).Code].push_back(C);
  Watches[(~Lits[1]).Code].push_back(C);
}

void SatSolver::enqueue(Lit L, ClauseRef From) {
  assert(isUnassigned(L) && "enqueue of assigned literal");
  Assign[L.var()] = L.negated() ? FalseVal : TrueVal;
  Level[L.var()] = static_cast<uint32_t>(TrailLim.size());
  Reason[L.var()] = From;
  Trail.push_back(L);
}

SatSolver::ClauseRef SatSolver::propagate() {
  while (QHead < Trail.size()) {
    Lit P = Trail[QHead++];
    std::vector<ClauseRef> &Watch = Watches[P.Code];
    size_t Keep = 0;
    for (size_t I = 0; I < Watch.size(); ++I) {
      ClauseRef CR = Watch[I];
      std::vector<Lit> &Lits = Clauses[CR].Lits;
      // Normalize: the falsified watched literal goes to slot 1.
      if (Lits[0] == ~P)
        std::swap(Lits[0], Lits[1]);
      assert(Lits[1] == ~P && "watch list out of sync");
      if (valueIsTrue(Lits[0])) {
        Watch[Keep++] = CR;
        continue;
      }
      // Look for a replacement watch.
      bool Moved = false;
      for (size_t K = 2; K < Lits.size(); ++K) {
        if (valueIsFalse(Lits[K]))
          continue;
        std::swap(Lits[1], Lits[K]);
        Watches[(~Lits[1]).Code].push_back(CR);
        Moved = true;
        break;
      }
      if (Moved)
        continue;
      // Unit or conflicting.
      Watch[Keep++] = CR;
      if (valueIsFalse(Lits[0])) {
        // Conflict: keep remaining watches, report.
        for (size_t K = I + 1; K < Watch.size(); ++K)
          Watch[Keep++] = Watch[K];
        Watch.resize(Keep);
        QHead = static_cast<uint32_t>(Trail.size());
        return CR;
      }
      enqueue(Lits[0], CR);
    }
    Watch.resize(Keep);
  }
  return NoClause;
}

void SatSolver::bumpVar(uint32_t Var) {
  Activity[Var] += ActivityInc;
  if (Activity[Var] > 1e100) {
    for (double &A : Activity)
      A *= 1e-100;
    ActivityInc *= 1e-100;
  }
}

void SatSolver::analyze(ClauseRef Conflict, std::vector<Lit> &Learnt,
                        uint32_t &BackjumpLevel) {
  Learnt.clear();
  Learnt.push_back(Lit()); // slot for the asserting literal
  std::vector<bool> Seen(numVars(), false);
  uint32_t Counter = 0;
  Lit P;
  size_t Index = Trail.size();
  uint32_t CurLevel = static_cast<uint32_t>(TrailLim.size());
  ClauseRef CR = Conflict;
  bool FirstIter = true;

  for (;;) {
    assert(CR != NoClause && "analyze hit a decision unexpectedly");
    const std::vector<Lit> &Lits = Clauses[CR].Lits;
    for (size_t I = FirstIter ? 0 : 1; I < Lits.size(); ++I) {
      Lit Q = Lits[I];
      if (Q == P)
        continue;
      if (Seen[Q.var()] || Level[Q.var()] == 0)
        continue;
      Seen[Q.var()] = true;
      bumpVar(Q.var());
      if (Level[Q.var()] == CurLevel)
        ++Counter;
      else
        Learnt.push_back(Q);
    }
    // Pick the next trail literal to resolve on.
    while (!Seen[Trail[Index - 1].var()])
      --Index;
    --Index;
    P = Trail[Index];
    Seen[P.var()] = false;
    CR = Reason[P.var()];
    FirstIter = false;
    if (--Counter == 0)
      break;
  }
  Learnt[0] = ~P;

  // Backjump level: the second-highest level in the clause.
  BackjumpLevel = 0;
  for (size_t I = 1; I < Learnt.size(); ++I)
    BackjumpLevel = std::max(BackjumpLevel, Level[Learnt[I].var()]);
  // Move a literal of the backjump level to slot 1 (watch invariant).
  if (Learnt.size() > 1) {
    size_t MaxI = 1;
    for (size_t I = 2; I < Learnt.size(); ++I)
      if (Level[Learnt[I].var()] > Level[Learnt[MaxI].var()])
        MaxI = I;
    std::swap(Learnt[1], Learnt[MaxI]);
  }
}

void SatSolver::backtrack(uint32_t TargetLevel) {
  if (TrailLim.size() <= TargetLevel)
    return;
  uint32_t Bound = TrailLim[TargetLevel];
  for (size_t I = Trail.size(); I > Bound; --I) {
    Lit L = Trail[I - 1];
    Polarity[L.var()] = Assign[L.var()];
    Assign[L.var()] = Unassigned;
    Reason[L.var()] = NoClause;
  }
  Trail.resize(Bound);
  TrailLim.resize(TargetLevel);
  QHead = Bound;
  if (TheoryHead > Trail.size()) {
    TheoryHead = Trail.size();
    if (Theory)
      Theory->onBacktrack(Trail.size());
  }
}

Lit SatSolver::pickBranchLit() {
  uint32_t Best = ~0u;
  double BestAct = -1.0;
  for (uint32_t V = 0; V < numVars(); ++V)
    if (Assign[V] == Unassigned && Activity[V] > BestAct) {
      Best = V;
      BestAct = Activity[V];
    }
  if (Best == ~0u)
    return Lit();
  return Lit(Best, Polarity[Best] == FalseVal);
}

bool SatSolver::resolveConflict(ClauseRef Conflict) {
  if (TrailLim.empty()) {
    Unsatisfiable = true;
    return false;
  }
  std::vector<Lit> Learnt;
  uint32_t BackjumpLevel = 0;
  analyze(Conflict, Learnt, BackjumpLevel);
  backtrack(BackjumpLevel);
  if (Learnt.size() == 1) {
    if (!isUnassigned(Learnt[0])) {
      Unsatisfiable = true;
      return false;
    }
    enqueue(Learnt[0], NoClause);
  } else {
    Clauses.push_back({Learnt, /*Learnt=*/true});
    ClauseRef CR = static_cast<ClauseRef>(Clauses.size() - 1);
    attach(CR);
    enqueue(Learnt[0], CR);
  }
  ActivityInc *= 1.05;
  ++ConflictsSinceRestart;
  if (ConflictsSinceRestart >= RestartLimit) {
    ConflictsSinceRestart = 0;
    RestartLimit = RestartLimit + RestartLimit / 2;
    backtrack(0);
  }
  return true;
}

bool SatSolver::handleTheoryConflict(std::vector<Lit> Lemma) {
  // Deduplicate; lemmas arrive from explanation machinery unordered.
  std::sort(Lemma.begin(), Lemma.end(),
            [](Lit A, Lit B) { return A.Code < B.Code; });
  Lemma.erase(std::unique(Lemma.begin(), Lemma.end()), Lemma.end());
  if (Lemma.empty()) {
    Unsatisfiable = true;
    return false;
  }
  // Splitting-on-demand lemmas are not falsified — they carry fresh
  // literals (e.g. a branch x ≤ f ∨ x ≥ f+1 over newly minted atoms).
  // Attach and let the search assign them.
  bool AllFalse = true;
  for (Lit L : Lemma)
    AllFalse &= valueIsFalse(L);
  if (!AllFalse) {
    if (Lemma.size() == 1) {
      backtrack(0);
      if (valueIsFalse(Lemma[0])) {
        Unsatisfiable = true;
        return false;
      }
      if (isUnassigned(Lemma[0]))
        enqueue(Lemma[0], NoClause);
      return true;
    }
    // Put non-false literals (fresh splitting atoms are unassigned) in
    // the watch slots. Should every watchable literal later turn false
    // without the clause propagating, the theory still catches the
    // inconsistent atom polarities — the clause is a theory tautology.
    auto NotFalse = [&](Lit L) { return !valueIsFalse(L); };
    std::stable_partition(Lemma.begin(), Lemma.end(), NotFalse);
    Clauses.push_back({std::move(Lemma), /*Learnt=*/true});
    attach(static_cast<ClauseRef>(Clauses.size() - 1));
    return true;
  }
  uint32_t MaxLevel = 0;
  for (Lit L : Lemma)
    MaxLevel = std::max(MaxLevel, Level[L.var()]);
  if (MaxLevel == 0) {
    Unsatisfiable = true;
    return false;
  }
  if (Lemma.size() == 1) {
    // Unit lemma: globally forces the literal.
    backtrack(0);
    if (valueIsFalse(Lemma[0])) {
      Unsatisfiable = true;
      return false;
    }
    if (isUnassigned(Lemma[0]))
      enqueue(Lemma[0], NoClause);
    return true;
  }
  backtrack(MaxLevel);
  // Watch the two deepest literals (they unassign first on backtracking,
  // preserving the watch invariant).
  auto DeeperThan = [&](Lit A, Lit B) {
    return Level[A.var()] > Level[B.var()];
  };
  std::partial_sort(Lemma.begin(), Lemma.begin() + 2, Lemma.end(),
                    DeeperThan);
  Clauses.push_back({std::move(Lemma), /*Learnt=*/true});
  ClauseRef CR = static_cast<ClauseRef>(Clauses.size() - 1);
  attach(CR);
  // The lemma is falsified at the current level: run ordinary conflict
  // resolution on it.
  return resolveConflict(CR);
}

SatSolver::Res SatSolver::solve(TheoryClient *TheoryIn) {
  if (Unsatisfiable)
    return Res::Unsat;
  Theory = TheoryIn;
  TheoryHead = 0;
  ConflictsSinceRestart = 0;
  RestartLimit = 100;
  backtrack(0);
  Res Out = [&] {
    if (propagate() != NoClause) {
      Unsatisfiable = true;
      return Res::Unsat;
    }
    for (;;) {
      ClauseRef Conflict = propagate();
      if (Conflict != NoClause) {
        if (!resolveConflict(Conflict))
          return Res::Unsat;
        continue;
      }
      if (Theory && TheoryHead < Trail.size()) {
        std::vector<Lit> Lemma;
        TheoryClient::TRes TR = Theory->onAssign(Trail, TheoryHead, Lemma);
        TheoryHead = Trail.size();
        if (TR == TheoryClient::TRes::Abort)
          return Res::Abort;
        if (TR == TheoryClient::TRes::Conflict) {
          if (!handleTheoryConflict(std::move(Lemma)))
            return Res::Unsat;
          continue;
        }
      }
      Lit Next = pickBranchLit();
      if (Next.Code == ~0u) {
        if (Theory) {
          std::vector<Lit> Lemma;
          TheoryClient::TRes TR = Theory->onFinalModel(Lemma);
          if (TR == TheoryClient::TRes::Abort)
            return Res::Abort;
          if (TR == TheoryClient::TRes::Conflict) {
            if (!handleTheoryConflict(std::move(Lemma)))
              return Res::Unsat;
            continue;
          }
        }
        return Res::Sat;
      }
      TrailLim.push_back(static_cast<uint32_t>(Trail.size()));
      enqueue(Next, NoClause);
    }
  }();
  Theory = nullptr;
  return Out;
}
