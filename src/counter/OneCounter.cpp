//===- counter/OneCounter.cpp - PTime single-predicate path ----------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "counter/OneCounter.h"

#include "tagaut/TagAutomaton.h"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <map>
#include <set>

using namespace postr;
using namespace postr::counter;
using namespace postr::tagaut;

namespace {

/// A weighted digraph with designated start/finish node sets.
struct WeightedGraph {
  struct Edge {
    uint32_t From, To;
    int64_t Weight;
  };
  uint32_t NumNodes = 0;
  std::vector<Edge> Edges;
  std::vector<bool> Start, Finish;

  uint32_t addNodes(uint32_t N) {
    uint32_t First = NumNodes;
    NumNodes += N;
    Start.resize(NumNodes, false);
    Finish.resize(NumNodes, false);
    return First;
  }
};

/// Nodes that lie on some start→finish walk.
std::vector<bool> relevantNodes(const WeightedGraph &G) {
  std::vector<std::vector<uint32_t>> Succ(G.NumNodes), Pred(G.NumNodes);
  for (const WeightedGraph::Edge &E : G.Edges) {
    Succ[E.From].push_back(E.To);
    Pred[E.To].push_back(E.From);
  }
  auto Bfs = [&](const std::vector<bool> &Init,
                 const std::vector<std::vector<uint32_t>> &Adj) {
    std::vector<bool> Seen = Init;
    std::vector<uint32_t> Stack;
    for (uint32_t N = 0; N < G.NumNodes; ++N)
      if (Seen[N])
        Stack.push_back(N);
    while (!Stack.empty()) {
      uint32_t N = Stack.back();
      Stack.pop_back();
      for (uint32_t M : Adj[N])
        if (!Seen[M]) {
          Seen[M] = true;
          Stack.push_back(M);
        }
    }
    return Seen;
  };
  std::vector<bool> Fwd = Bfs(G.Start, Succ);
  std::vector<bool> Bwd = Bfs(G.Finish, Pred);
  std::vector<bool> Out(G.NumNodes);
  for (uint32_t N = 0; N < G.NumNodes; ++N)
    Out[N] = Fwd[N] && Bwd[N];
  return Out;
}

/// Is there a positive-weight (Sign=+1) or negative-weight (Sign=-1)
/// cycle through relevant nodes? Bellman–Ford on the relevant subgraph.
bool hasSignedCycle(const WeightedGraph &G, const std::vector<bool> &Rel,
                    int Sign) {
  // Negate weights for Sign=+1 so that "negative cycle" detection finds
  // positive cycles.
  std::vector<int64_t> Dist(G.NumNodes, 0);
  for (uint32_t Round = 0; Round < G.NumNodes; ++Round) {
    bool Changed = false;
    for (const WeightedGraph::Edge &E : G.Edges) {
      if (!Rel[E.From] || !Rel[E.To])
        continue;
      int64_t W = Sign > 0 ? -E.Weight : E.Weight;
      if (Dist[E.From] + W < Dist[E.To]) {
        Dist[E.To] = Dist[E.From] + W;
        Changed = true;
      }
    }
    if (!Changed)
      return false;
  }
  return true;
}

/// Does a start→finish walk with total weight satisfying \p Test exist?
/// \p Test is one of: =0, >=1, <=-1 (encoded by Mode).
enum class WalkMode { ExactZero, AtLeastOne, AtMostMinusOne };

/// Exact decision for the monotone modes; for ExactZero a clamped BFS
/// with a quadratic excursion bound (see file header). Returns Unknown
/// only on budget exhaustion in the ExactZero mode.
Verdict existsWalk(const WeightedGraph &G, WalkMode Mode,
                   uint64_t &Budget) {
  std::vector<bool> Rel = relevantNodes(G);
  bool AnyRelStart = false;
  for (uint32_t N = 0; N < G.NumNodes; ++N)
    if (Rel[N] && G.Start[N])
      AnyRelStart = true;
  if (!AnyRelStart)
    return Verdict::Unsat;

  int64_t MaxW = 1;
  uint32_t RelCount = 0;
  for (const WeightedGraph::Edge &E : G.Edges)
    MaxW = std::max<int64_t>(MaxW, std::llabs(E.Weight));
  for (uint32_t N = 0; N < G.NumNodes; ++N)
    if (Rel[N])
      ++RelCount;

  // For the monotone modes, an insertable cycle of the right sign makes
  // the target reachable as soon as any complete walk exists (which it
  // does: AnyRelStart); otherwise all walk values are realized within
  // the DAG-ish bound and the clamped BFS below is exact.
  if (Mode == WalkMode::AtLeastOne && hasSignedCycle(G, Rel, +1))
    return Verdict::Sat;
  if (Mode == WalkMode::AtMostMinusOne && hasSignedCycle(G, Rel, -1))
    return Verdict::Sat;

  // Clamped BFS over (node, value). For the monotone modes, cycles of the
  // right sign are gone, so values toward the target are bounded by
  // |Q|·MaxW and the search is exact. For ExactZero we use the quadratic
  // small-excursion bound.
  int64_t Bound;
  if (Mode == WalkMode::ExactZero) {
    int64_t Expanded = static_cast<int64_t>(RelCount) * (MaxW + 1) + 2;
    Bound = std::min<int64_t>(Expanded * Expanded, 1 << 21);
  } else {
    Bound = static_cast<int64_t>(RelCount) * MaxW + 1;
  }

  std::vector<std::vector<std::pair<uint32_t, int64_t>>> Succ(G.NumNodes);
  for (const WeightedGraph::Edge &E : G.Edges)
    if (Rel[E.From] && Rel[E.To])
      Succ[E.From].push_back({E.To, E.Weight});

  std::set<std::pair<uint32_t, int64_t>> Seen;
  std::deque<std::pair<uint32_t, int64_t>> Queue;
  for (uint32_t N = 0; N < G.NumNodes; ++N)
    if (Rel[N] && G.Start[N]) {
      Seen.insert({N, 0});
      Queue.push_back({N, 0});
    }
  bool BudgetHit = false;
  while (!Queue.empty()) {
    auto [N, V] = Queue.front();
    Queue.pop_front();
    if (G.Finish[N]) {
      bool Hit = false;
      switch (Mode) {
      case WalkMode::ExactZero:
        Hit = V == 0;
        break;
      case WalkMode::AtLeastOne:
        Hit = V >= 1;
        break;
      case WalkMode::AtMostMinusOne:
        Hit = V <= -1;
        break;
      }
      if (Hit)
        return Verdict::Sat;
    }
    if (Budget == 0) {
      BudgetHit = true;
      break;
    }
    --Budget;
    for (auto [M, W] : Succ[N]) {
      int64_t V2 = V + W;
      if (V2 > Bound || V2 < -Bound)
        continue;
      if (Seen.insert({M, V2}).second)
        Queue.push_back({M, V2});
    }
  }
  if (BudgetHit)
    return Verdict::Unknown;
  return Verdict::Unsat;
}

/// Occurrence multiplicity of \p Z among the first \p Count entries.
int64_t multBefore(const std::vector<VarId> &Occs, size_t Count, VarId Z) {
  int64_t N = 0;
  for (size_t I = 0; I < Count && I < Occs.size(); ++I)
    if (Occs[I] == Z)
      ++N;
  return N;
}

/// Builds the length-difference graph: one node per A_◦ state, each
/// letter of variable z weighing occ_L(z) − occ_R(z) (complete walks
/// accumulate |L| − |R|).
WeightedGraph buildLengthGraph(const VarConcat &Vc,
                               const tagaut::PosPredicate &Pred) {
  WeightedGraph G;
  G.addNodes(Vc.numStates());
  for (uint32_t Q = 0; Q < Vc.numStates(); ++Q) {
    if (Vc.IsInitial[Q])
      G.Start[Q] = true;
    if (Vc.IsFinal[Q])
      G.Finish[Q] = true;
  }
  for (const VarConcat::BaseTransition &T : Vc.BaseDelta) {
    int64_t W = 0;
    if (T.Sym != VarConcat::Epsilon)
      W = multBefore(Pred.Lhs, Pred.Lhs.size(), T.Var) -
          multBefore(Pred.Rhs, Pred.Rhs.size(), T.Var);
    G.Edges.push_back({T.From, T.To, W});
  }
  return G;
}

/// Builds the three-phase mismatch graph of Appendix B for occurrence
/// pair (i, j). Phases: 0 = no sample yet; then |Γ| phases per
/// first-sampled side remembering the sampled symbol; finally ⊤ after
/// the second sample (symbols must differ). The counter tracks
/// g_L − g_R for ≠/¬prefixof and (|L|−g_L) − (|R|−g_R) for ¬suffixof.
WeightedGraph buildMismatchGraph(const VarConcat &Vc,
                                 const tagaut::PosPredicate &Pred,
                                 size_t I, size_t J, uint32_t Sigma) {
  bool FromEnd = Pred.Kind == tagaut::PredKind::NotSuffix;
  VarId Xi = Pred.Lhs[I], Yj = Pred.Rhs[J];
  uint32_t NumBase = Vc.numStates();

  // Phase layout: 0 = ⊥; 1 + s*Sigma + a = sampled first on side s with
  // symbol a; 1 + 2*Sigma = ⊤.
  uint32_t NumPhases = 2 + 2 * Sigma;
  auto Node = [&](uint32_t Q, uint32_t Phase) {
    return Phase * NumBase + Q;
  };
  uint32_t PhaseBot = 0, PhaseTop = 1 + 2 * Sigma;
  auto PhaseFirst = [&](int SideIdx, Symbol A) {
    return 1u + static_cast<uint32_t>(SideIdx) * Sigma + A;
  };

  WeightedGraph G;
  G.addNodes(NumBase * NumPhases);
  for (uint32_t Q = 0; Q < NumBase; ++Q) {
    if (Vc.IsInitial[Q])
      G.Start[Node(Q, PhaseBot)] = true;
    if (Vc.IsFinal[Q])
      G.Finish[Node(Q, PhaseTop)] = true;
  }

  // Letter weight toward g_L: multiplicity of z before occurrence i,
  // plus 1 inside occurrence i for letters strictly before the L-sample
  // (i.e. while the L sample is still pending). Mirrored for g_R. For
  // ¬suffixof the tracked value is (|L|−|R|) − (g_L−g_R), so the letter
  // weight gets the total-multiplicity difference added and the g-part
  // subtracted.
  auto LetterWeight = [&](VarId Z, bool LPending, bool RPending) {
    int64_t GL = multBefore(Pred.Lhs, I, Z) + ((Z == Xi && LPending) ? 1 : 0);
    int64_t GR = multBefore(Pred.Rhs, J, Z) + ((Z == Yj && RPending) ? 1 : 0);
    int64_t W = GL - GR;
    if (FromEnd)
      W = (multBefore(Pred.Lhs, Pred.Lhs.size(), Z) -
           multBefore(Pred.Rhs, Pred.Rhs.size(), Z)) -
          W;
    return W;
  };
  // The sampled letter itself: no strictly-before increment for its own
  // side, but the pending increment of the *other* side still applies.
  auto SampleWeight = [&](VarId Z, bool SampleIsL, bool OtherPending) {
    int64_t GL = multBefore(Pred.Lhs, I, Z) +
                 ((!SampleIsL && Z == Xi && OtherPending) ? 1 : 0);
    int64_t GR = multBefore(Pred.Rhs, J, Z) +
                 ((SampleIsL && Z == Yj && OtherPending) ? 1 : 0);
    int64_t W = GL - GR;
    if (FromEnd)
      W = (multBefore(Pred.Lhs, Pred.Lhs.size(), Z) -
           multBefore(Pred.Rhs, Pred.Rhs.size(), Z)) -
          W;
    return W;
  };

  for (const VarConcat::BaseTransition &T : Vc.BaseDelta) {
    if (T.Sym == VarConcat::Epsilon) {
      for (uint32_t Phase = 0; Phase < NumPhases; ++Phase)
        G.Edges.push_back({Node(T.From, Phase), Node(T.To, Phase), 0});
      continue;
    }
    VarId Z = T.Var;
    // Phase ⊥: both samples pending.
    G.Edges.push_back({Node(T.From, PhaseBot), Node(T.To, PhaseBot),
                       LetterWeight(Z, true, true)});
    // First sample on L (letters of x_i only).
    if (Z == Xi)
      G.Edges.push_back({Node(T.From, PhaseBot),
                         Node(T.To, PhaseFirst(0, T.Sym)),
                         SampleWeight(Z, /*SampleIsL=*/true, true)});
    // First sample on R.
    if (Z == Yj)
      G.Edges.push_back({Node(T.From, PhaseBot),
                         Node(T.To, PhaseFirst(1, T.Sym)),
                         SampleWeight(Z, /*SampleIsL=*/false, true)});
    for (Symbol A = 0; A < Sigma; ++A) {
      // Mid phase after an L-sample of symbol A: R still pending.
      G.Edges.push_back({Node(T.From, PhaseFirst(0, A)),
                         Node(T.To, PhaseFirst(0, A)),
                         LetterWeight(Z, false, true)});
      // Second sample on R: symbol must differ from A.
      if (Z == Yj && T.Sym != A)
        G.Edges.push_back({Node(T.From, PhaseFirst(0, A)),
                           Node(T.To, PhaseTop),
                           SampleWeight(Z, /*SampleIsL=*/false, false)});
      // Mid phase after an R-sample.
      G.Edges.push_back({Node(T.From, PhaseFirst(1, A)),
                         Node(T.To, PhaseFirst(1, A)),
                         LetterWeight(Z, true, false)});
      if (Z == Xi && T.Sym != A)
        G.Edges.push_back({Node(T.From, PhaseFirst(1, A)),
                           Node(T.To, PhaseTop),
                           SampleWeight(Z, /*SampleIsL=*/true, false)});
    }
    // Phase ⊤: both sampled.
    G.Edges.push_back({Node(T.From, PhaseTop), Node(T.To, PhaseTop),
                       LetterWeight(Z, false, false)});
  }
  return G;
}

} // namespace

bool postr::counter::isEligible(
    const std::vector<tagaut::PosPredicate> &Preds) {
  if (Preds.size() != 1)
    return false;
  switch (Preds.front().Kind) {
  case tagaut::PredKind::Diseq:
  case tagaut::PredKind::NotPrefix:
  case tagaut::PredKind::NotSuffix:
    return true;
  default:
    return false;
  }
}

Verdict postr::counter::decideSinglePredicate(
    const std::map<VarId, automata::Nfa> &Langs,
    const tagaut::PosPredicate &Pred, uint32_t Sigma,
    const OneCounterOptions &Opts) {
  assert(isEligible({Pred}) && "fast path on ineligible predicate");
  for (const auto &[X, Nfa] : Langs) {
    (void)X;
    if (Nfa.isEmpty())
      return Verdict::Unsat;
  }
  VarConcat Vc = buildVarConcat(Langs);
  uint64_t Budget = Opts.NodeBudget;

  // Length branch.
  WeightedGraph LenG = buildLengthGraph(Vc, Pred);
  if (Pred.Kind == tagaut::PredKind::Diseq) {
    if (existsWalk(LenG, WalkMode::AtLeastOne, Budget) == Verdict::Sat)
      return Verdict::Sat;
    if (existsWalk(LenG, WalkMode::AtMostMinusOne, Budget) == Verdict::Sat)
      return Verdict::Sat;
  } else {
    // ¬prefixof / ¬suffixof: |L| > |R| suffices.
    if (existsWalk(LenG, WalkMode::AtLeastOne, Budget) == Verdict::Sat)
      return Verdict::Sat;
  }

  // Mismatch branch, one 0-reachability query per occurrence pair.
  bool SawUnknown = false;
  for (size_t I = 0; I < Pred.Lhs.size(); ++I)
    for (size_t J = 0; J < Pred.Rhs.size(); ++J) {
      WeightedGraph G = buildMismatchGraph(Vc, Pred, I, J, Sigma);
      Verdict V = existsWalk(G, WalkMode::ExactZero, Budget);
      if (V == Verdict::Sat)
        return Verdict::Sat;
      if (V == Verdict::Unknown)
        SawUnknown = true;
    }
  return SawUnknown ? Verdict::Unknown : Verdict::Unsat;
}
