//===- counter/OneCounter.h - PTime single-predicate path --------*- C++ -*-===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The polynomial-time decision procedure of Theorem 7.1 / Appendix B for
/// a single ≠ / ¬prefixof / ¬suffixof predicate under regular constraints
/// (no I part): the predicate is reduced to walk problems on weighted
/// counter graphs built over the ε-concatenation A_◦:
///
///  * the *length branch* (|L| ≠ |R| resp. |L| > |R|) asks for a complete
///    walk whose accumulated per-letter weight occ_L(z) − occ_R(z) is
///    non-zero (resp. positive) — decidable exactly via reachable
///    co-reachable positive/negative cycles;
///  * the *mismatch branch* asks, per occurrence pair (i,j), for a
///    0-weight complete walk of the three-phase sampling automaton of
///    Appendix B (phases ⊥ / sampled-first-symbol / ⊤), where a letter of
///    variable z weighs (its multiplicity before occurrence i on the
///    left) − (before j on the right), with the strictly-before-sample
///    increments handled by the phase.
///
/// 0-weight-walk search runs a BFS over (state, counter) with the
/// counter clamped to a Valiant–Paterson-style quadratic excursion bound;
/// if the search budget trips first the procedure answers Unknown and
/// the caller falls back to the NP tag/LIA path (this never happens on
/// the benchmark families; the differential suite cross-checks both
/// paths).
///
//===----------------------------------------------------------------------===//

#ifndef POSTR_COUNTER_ONECOUNTER_H
#define POSTR_COUNTER_ONECOUNTER_H

#include "automata/Nfa.h"
#include "base/Base.h"
#include "tagaut/Encoder.h"

#include <map>

namespace postr {
namespace counter {

struct OneCounterOptions {
  /// Hard cap on visited (state, counter) pairs across all searches.
  uint64_t NodeBudget = 5'000'000;
};

/// True if the fast path applies: a single Diseq/NotPrefix/NotSuffix.
bool isEligible(const std::vector<tagaut::PosPredicate> &Preds);

/// Decides R ∧ P for one eligible predicate. Unknown only on budget
/// exhaustion.
Verdict decideSinglePredicate(const std::map<VarId, automata::Nfa> &Langs,
                              const tagaut::PosPredicate &Pred,
                              uint32_t AlphabetSize,
                              const OneCounterOptions &Opts = {});

} // namespace counter
} // namespace postr

#endif // POSTR_COUNTER_ONECOUNTER_H
