//===- strings/Normalize.h - To the normal form E ∧ R ∧ I ∧ P ----*- C++ -*-===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Brings a `Problem` to the paper's normal form (Sec. 2):
///  (i)  positive prefixof/suffixof/contains become word equations with
///       fresh variables (v = u·z_p, v = z_s·u, v = z_c·u·z_c′);
///  (ii) string literals become fresh variables with singleton languages
///       (footnote 3);
///  (iii) per-variable regular memberships are merged by product
///       intersection into a single NFA per variable (unconstrained
///       variables get the universal language);
///  (iv) the effective alphabet is closed with one fresh sentinel symbol
///       so that "any other character" witnesses exist.
///
//===----------------------------------------------------------------------===//

#ifndef POSTR_STRINGS_NORMALIZE_H
#define POSTR_STRINGS_NORMALIZE_H

#include "automata/Nfa.h"
#include "eq/Stabilize.h"
#include "strings/Ast.h"
#include "tagaut/Encoder.h"

#include <map>
#include <vector>

namespace postr {
namespace strings {

/// One position predicate in problem-level form (AtPos still an IntTerm;
/// it becomes a `lia::LinTerm` once a per-disjunct arena exists).
struct NormPred {
  tagaut::PredKind Kind;
  std::vector<VarId> Lhs, Rhs;
  IntTerm AtPos;
};

/// One integer atom of the I part.
struct NormIntAtom {
  IntTerm Lhs;
  lia::Cmp Op;
  IntTerm Rhs;
};

/// The normal form E ∧ R ∧ I ∧ P plus the bookkeeping to interpret
/// models.
struct NormalForm {
  Alphabet Sigma;
  /// R: one NFA per solver variable (originals + literal + fresh vars).
  std::map<VarId, automata::Nfa> Langs;
  /// E.
  std::vector<eq::WordEquation> Equations;
  /// I.
  std::vector<NormIntAtom> IntAtoms;
  /// P.
  std::vector<NormPred> Preds;
  /// First VarId free for the stabilization pass.
  VarId NextFresh = 0;
  /// Number of problem-level integer variables.
  uint32_t NumIntVars = 0;
  /// Variables of the original problem (for model projection).
  uint32_t NumOriginalVars = 0;
};

/// Normalizes \p P. Pure; does not modify the problem.
NormalForm normalize(const Problem &P);

} // namespace strings
} // namespace postr

#endif // POSTR_STRINGS_NORMALIZE_H
