//===- strings/Eval.cpp - Concrete evaluation of assertions ----------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "strings/Eval.h"

#include <algorithm>

using namespace postr;
using namespace postr::strings;

ConcreteEvaluator::ConcreteEvaluator(const Problem &P, const Alphabet &Sigma)
    : P(P), Sigma(Sigma) {
  for (size_t I = 0; I < P.assertions().size(); ++I)
    if (P.assertions()[I].Kind == AssertKind::InRe)
      CompiledRe.emplace(I,
                         regex::compile(*P.assertions()[I].Re, Sigma));
}

Word ConcreteEvaluator::evalSeq(const StrSeq &Seq,
                                const std::map<VarId, Word> &Strs) const {
  Word Out;
  for (const StrElem &E : Seq) {
    if (E.IsVar) {
      auto It = Strs.find(E.Var);
      assert(It != Strs.end() && "assignment misses a variable");
      Out.insert(Out.end(), It->second.begin(), It->second.end());
      continue;
    }
    for (char C : E.Lit) {
      std::optional<Symbol> S = Sigma.lookup(C);
      assert(S && "literal character missing from the alphabet");
      Out.push_back(*S);
    }
  }
  return Out;
}

int64_t ConcreteEvaluator::evalInt(
    const IntTerm &T, const std::map<VarId, Word> &Strs,
    const std::map<IntVarId, int64_t> &Ints) const {
  int64_t V = T.Const;
  for (auto [X, C] : T.IntVars) {
    auto It = Ints.find(X);
    assert(It != Ints.end() && "assignment misses an integer variable");
    V += C * It->second;
  }
  for (auto [X, C] : T.LenVars) {
    auto It = Strs.find(X);
    assert(It != Strs.end() && "assignment misses a length variable");
    V += C * static_cast<int64_t>(It->second.size());
  }
  return V;
}

bool ConcreteEvaluator::evalOne(size_t Index,
                                const std::map<VarId, Word> &Strs,
                                const std::map<IntVarId, int64_t> &Ints)
    const {
  const Assertion &A = P.assertions()[Index];
  auto CmpHolds = [](int64_t L, lia::Cmp Op, int64_t R) {
    switch (Op) {
    case lia::Cmp::Le:
      return L <= R;
    case lia::Cmp::Lt:
      return L < R;
    case lia::Cmp::Ge:
      return L >= R;
    case lia::Cmp::Gt:
      return L > R;
    case lia::Cmp::Eq:
      return L == R;
    case lia::Cmp::Ne:
      return L != R;
    }
    assert(false && "bad cmp");
    return false;
  };

  switch (A.Kind) {
  case AssertKind::InRe:
    return CompiledRe.at(Index).accepts(evalSeq(A.Lhs, Strs));
  case AssertKind::WordEq:
    return evalSeq(A.Lhs, Strs) == evalSeq(A.Rhs, Strs);
  case AssertKind::Diseq:
    return evalSeq(A.Lhs, Strs) != evalSeq(A.Rhs, Strs);
  case AssertKind::Prefixof:
  case AssertKind::NotPrefixof: {
    Word U = evalSeq(A.Lhs, Strs), V = evalSeq(A.Rhs, Strs);
    bool Is = U.size() <= V.size() &&
              std::equal(U.begin(), U.end(), V.begin());
    return A.Kind == AssertKind::Prefixof ? Is : !Is;
  }
  case AssertKind::Suffixof:
  case AssertKind::NotSuffixof: {
    Word U = evalSeq(A.Lhs, Strs), V = evalSeq(A.Rhs, Strs);
    bool Is = U.size() <= V.size() &&
              std::equal(U.rbegin(), U.rend(), V.rbegin());
    return A.Kind == AssertKind::Suffixof ? Is : !Is;
  }
  case AssertKind::Contains:
  case AssertKind::NotContains: {
    Word U = evalSeq(A.Lhs, Strs), V = evalSeq(A.Rhs, Strs);
    bool Is = U.empty() || std::search(V.begin(), V.end(), U.begin(),
                                       U.end()) != V.end();
    return A.Kind == AssertKind::Contains ? Is : !Is;
  }
  case AssertKind::StrAtEq:
  case AssertKind::StrAtNe: {
    Word X = evalSeq(A.Lhs, Strs), V = evalSeq(A.Rhs, Strs);
    int64_t Pos = evalInt(A.Pos, Strs, Ints);
    Word At;
    if (Pos >= 0 && Pos < static_cast<int64_t>(V.size()))
      At.push_back(V[static_cast<size_t>(Pos)]);
    bool Equal = X == At;
    return A.Kind == AssertKind::StrAtEq ? Equal : !Equal;
  }
  case AssertKind::IntAtom:
  case AssertKind::LenEq:
    return CmpHolds(evalInt(A.Pos, Strs, Ints), A.Op,
                    evalInt(A.IntRhs, Strs, Ints));
  }
  assert(false && "bad assertion kind");
  return false;
}

bool ConcreteEvaluator::evalAll(const std::map<VarId, Word> &Strs,
                                const std::map<IntVarId, int64_t> &Ints)
    const {
  for (size_t I = 0; I < P.assertions().size(); ++I)
    if (!evalOne(I, Strs, Ints))
      return false;
  return true;
}
