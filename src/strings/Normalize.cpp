//===- strings/Normalize.cpp - To the normal form E ∧ R ∧ I ∧ P -----------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "strings/Normalize.h"

using namespace postr;
using namespace postr::strings;
using automata::Nfa;
using tagaut::PredKind;

namespace {

/// Collects alphabet symbols from every literal and regex in the problem.
void collectProblemAlphabet(const Problem &P, Alphabet &Sigma) {
  for (const Assertion &A : P.assertions()) {
    for (const StrSeq *Seq : {&A.Lhs, &A.Rhs})
      for (const StrElem &E : *Seq)
        if (!E.IsVar)
          for (char C : E.Lit)
            Sigma.intern(C);
    if (A.Re)
      regex::collectAlphabet(*A.Re, Sigma);
  }
}

class Normalizer {
public:
  explicit Normalizer(const Problem &P) : P(P) {}

  NormalForm run() {
    Out.NumOriginalVars = P.numStrVars();
    Out.NumIntVars = P.numIntVars();
    Out.NextFresh = P.numStrVars();
    // The alphabet is fully known before any NFA is built: all literals
    // and regexes first, then one sentinel symbol outside all of them.
    collectProblemAlphabet(P, Out.Sigma);
    Out.Sigma.freshSymbol();

    for (const Assertion &A : P.assertions())
      normalizeAssertion(A);

    // R: merge memberships; variables without any get the universal
    // language. Literal variables already carry their singleton NFA.
    uint32_t SigmaSize = Out.Sigma.size();
    for (VarId X = 0; X < Out.NextFresh; ++X) {
      if (Out.Langs.count(X))
        continue; // literal variable
      auto It = Memberships.find(X);
      if (It == Memberships.end()) {
        Out.Langs[X] = Nfa::universal(SigmaSize);
        continue;
      }
      Nfa Merged = std::move(It->second.front());
      for (size_t I = 1; I < It->second.size(); ++I)
        Merged = automata::intersect(Merged, It->second[I]).trim();
      Out.Langs[X] = std::move(Merged);
    }
    return std::move(Out);
  }

private:
  /// Literal -> fresh singleton-language variable (deduplicated;
  /// footnote 3 of the paper).
  VarId literalVar(const std::string &Lit) {
    auto [It, Inserted] = LiteralVars.try_emplace(Lit, 0);
    if (!Inserted)
      return It->second;
    VarId X = Out.NextFresh++;
    It->second = X;
    Out.Langs[X] = Nfa::fromWord(Out.Sigma.size(), Out.Sigma.internWord(Lit));
    return X;
  }

  VarId freshUniversal() { return Out.NextFresh++; }

  /// Lowers a term to a variable-occurrence sequence.
  std::vector<VarId> seqVars(const StrSeq &Seq) {
    std::vector<VarId> Occs;
    for (const StrElem &E : Seq) {
      if (E.IsVar) {
        assert(E.Var < P.numStrVars() && "undeclared variable in term");
        Occs.push_back(E.Var);
      } else if (!E.Lit.empty()) {
        Occs.push_back(literalVar(E.Lit));
      }
      // Empty literals vanish in concatenation.
    }
    return Occs;
  }

  void addMembership(VarId X, Nfa A) {
    Memberships[X].push_back(std::move(A));
  }

  void normalizeAssertion(const Assertion &A) {
    switch (A.Kind) {
    case AssertKind::InRe: {
      assert(A.Lhs.size() == 1 && A.Lhs[0].IsVar && "InRe needs a variable");
      addMembership(A.Lhs[0].Var, regex::compile(*A.Re, Out.Sigma));
      return;
    }
    case AssertKind::WordEq:
      Out.Equations.push_back({seqVars(A.Lhs), seqVars(A.Rhs)});
      return;
    case AssertKind::Prefixof: {
      // prefixof(u, v) ⇒ v = u·z_p (Sec. 2 step (i)).
      std::vector<VarId> U = seqVars(A.Lhs), V = seqVars(A.Rhs);
      U.push_back(freshUniversal());
      Out.Equations.push_back({V, U});
      return;
    }
    case AssertKind::Suffixof: {
      // suffixof(u, v) ⇒ v = z_s·u.
      std::vector<VarId> U = seqVars(A.Lhs), V = seqVars(A.Rhs);
      U.insert(U.begin(), freshUniversal());
      Out.Equations.push_back({V, U});
      return;
    }
    case AssertKind::Contains: {
      // contains(u, v) ⇒ v = z_c·u·z_c′.
      std::vector<VarId> U = seqVars(A.Lhs), V = seqVars(A.Rhs);
      U.insert(U.begin(), freshUniversal());
      U.push_back(freshUniversal());
      Out.Equations.push_back({V, U});
      return;
    }
    case AssertKind::Diseq:
      Out.Preds.push_back(
          {PredKind::Diseq, seqVars(A.Lhs), seqVars(A.Rhs), {}});
      return;
    case AssertKind::NotPrefixof:
      Out.Preds.push_back(
          {PredKind::NotPrefix, seqVars(A.Lhs), seqVars(A.Rhs), {}});
      return;
    case AssertKind::NotSuffixof:
      Out.Preds.push_back(
          {PredKind::NotSuffix, seqVars(A.Lhs), seqVars(A.Rhs), {}});
      return;
    case AssertKind::NotContains:
      Out.Preds.push_back(
          {PredKind::NotContains, seqVars(A.Lhs), seqVars(A.Rhs), {}});
      return;
    case AssertKind::StrAtEq:
    case AssertKind::StrAtNe: {
      assert(A.Lhs.size() == 1 && "str.at left side must be one element");
      std::vector<VarId> Xs = seqVars(A.Lhs);
      if (Xs.empty()) // literal "" on the left
        Xs.push_back(literalVar(""));
      Out.Preds.push_back({A.Kind == AssertKind::StrAtEq
                               ? PredKind::StrAtEq
                               : PredKind::StrAtNe,
                           Xs, seqVars(A.Rhs), A.Pos});
      return;
    }
    case AssertKind::IntAtom:
    case AssertKind::LenEq:
      Out.IntAtoms.push_back({A.Pos, A.Op, A.IntRhs});
      return;
    }
    assert(false && "bad assertion kind");
  }

  const Problem &P;
  NormalForm Out;
  std::map<std::string, VarId> LiteralVars;
  std::map<VarId, std::vector<Nfa>> Memberships;
};

} // namespace

NormalForm postr::strings::normalize(const Problem &P) {
  return Normalizer(P).run();
}
