//===- strings/Ast.h - String-constraint problems ----------------*- C++ -*-===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The user-facing constraint language: the string formula grammar of
/// Sec. 2 restricted to conjunctions of (possibly negated) atoms, which
/// is what a DPLL(T) core hands a theory solver. A `Problem` collects
/// declarations and assertions; `strings/Normalize.h` brings it to the
/// paper's normal form E ∧ R ∧ I ∧ P.
///
//===----------------------------------------------------------------------===//

#ifndef POSTR_STRINGS_AST_H
#define POSTR_STRINGS_AST_H

#include "base/Base.h"
#include "lia/Lia.h"
#include "regex/Regex.h"

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace postr {
namespace strings {

/// Problem-level integer variable index.
using IntVarId = uint32_t;

/// One element of a string term: a variable or a literal.
struct StrElem {
  bool IsVar = true;
  VarId Var = InvalidVar;
  std::string Lit;

  static StrElem var(VarId X) {
    StrElem E;
    E.IsVar = true;
    E.Var = X;
    return E;
  }
  static StrElem lit(std::string S) {
    StrElem E;
    E.IsVar = false;
    E.Lit = std::move(S);
    return E;
  }
};

/// A string term t_s: a concatenation of elements.
using StrSeq = std::vector<StrElem>;

/// An integer term t_i: c + Σ a·x_int + Σ b·len(x_str).
struct IntTerm {
  int64_t Const = 0;
  std::vector<std::pair<IntVarId, int64_t>> IntVars;
  std::vector<std::pair<VarId, int64_t>> LenVars;

  static IntTerm constant(int64_t K) {
    IntTerm T;
    T.Const = K;
    return T;
  }
  static IntTerm intVar(IntVarId V, int64_t Coeff = 1) {
    IntTerm T;
    T.IntVars.push_back({V, Coeff});
    return T;
  }
  static IntTerm lenOf(VarId X, int64_t Coeff = 1) {
    IntTerm T;
    T.LenVars.push_back({X, Coeff});
    return T;
  }
  IntTerm operator+(const IntTerm &O) const {
    IntTerm T = *this;
    T.Const += O.Const;
    T.IntVars.insert(T.IntVars.end(), O.IntVars.begin(), O.IntVars.end());
    T.LenVars.insert(T.LenVars.end(), O.LenVars.begin(), O.LenVars.end());
    return T;
  }
  IntTerm operator-(const IntTerm &O) const { return *this + (O * -1); }
  IntTerm operator*(int64_t K) const {
    IntTerm T = *this;
    T.Const *= K;
    for (auto &[V, C] : T.IntVars)
      C *= K;
    for (auto &[V, C] : T.LenVars)
      C *= K;
    return T;
  }
  bool isConstant() const { return IntVars.empty() && LenVars.empty(); }
};

/// Assertion kinds; the negated predicates are the paper's position
/// constraints, the positive ones rewrite to word equations (Sec. 2).
enum class AssertKind {
  InRe,        ///< Lhs (single var) ∈ Re
  WordEq,      ///< Lhs = Rhs
  Diseq,       ///< Lhs ≠ Rhs
  Prefixof,    ///< prefixof(Lhs, Rhs)
  NotPrefixof, ///< ¬prefixof(Lhs, Rhs)
  Suffixof,    ///< suffixof(Lhs, Rhs)
  NotSuffixof, ///< ¬suffixof(Lhs, Rhs)
  Contains,    ///< contains(Rhs, Lhs)… stored as contains-of(Lhs in Rhs)
  NotContains, ///< ¬contains: Lhs does not occur in Rhs
  StrAtEq,     ///< Lhs (single elem) = str.at(Rhs, Pos)
  StrAtNe,     ///< Lhs (single elem) ≠ str.at(Rhs, Pos)
  IntAtom,     ///< PosOrLhs Cmp IntRhs
  LenEq,       ///< intvar-style: PosOrLhs = len(Rhs) sugar over IntAtom
};

/// One asserted literal.
struct Assertion {
  AssertKind Kind;
  StrSeq Lhs, Rhs;
  std::shared_ptr<regex::Node> Re; ///< for InRe
  IntTerm Pos;                     ///< str.at position / int-atom lhs
  IntTerm IntRhs;                  ///< int-atom rhs
  lia::Cmp Op = lia::Cmp::Eq;      ///< int-atom comparison
};

/// A conjunction of assertions over named variables.
class Problem {
public:
  /// Declares (or retrieves) a string variable.
  VarId strVar(const std::string &Name) {
    auto [It, Inserted] = StrIndex.try_emplace(Name, 0);
    if (Inserted) {
      It->second = static_cast<VarId>(StrNames.size());
      StrNames.push_back(Name);
    }
    return It->second;
  }
  /// Declares (or retrieves) an integer variable.
  IntVarId intVar(const std::string &Name) {
    auto [It, Inserted] = IntIndex.try_emplace(Name, 0);
    if (Inserted) {
      It->second = static_cast<IntVarId>(IntNames.size());
      IntNames.push_back(Name);
    }
    return It->second;
  }

  uint32_t numStrVars() const {
    return static_cast<uint32_t>(StrNames.size());
  }
  uint32_t numIntVars() const {
    return static_cast<uint32_t>(IntNames.size());
  }
  const std::string &strVarName(VarId X) const { return StrNames[X]; }
  const std::string &intVarName(IntVarId X) const { return IntNames[X]; }
  bool hasStrVar(const std::string &Name) const {
    return StrIndex.count(Name) != 0;
  }
  bool hasIntVar(const std::string &Name) const {
    return IntIndex.count(Name) != 0;
  }

  void add(Assertion A) { Assertions.push_back(std::move(A)); }
  const std::vector<Assertion> &assertions() const { return Assertions; }

  /// Script-level request recorded by the SMT-LIB reader: the script
  /// contained `(get-info :reason-unknown)`, so a front-end should
  /// report the structured unknown reason in-protocol after check-sat.
  /// No effect on solving.
  void requestReasonUnknown() { WantReasonUnknown = true; }
  bool wantsReasonUnknown() const { return WantReasonUnknown; }

  /// Script-level solve deadline recorded from `(set-option :timeout N)`
  /// (milliseconds, 0 = none requested). Front-ends — one-shot
  /// `smtlib_cli` and the daemon alike — intersect it with their own
  /// caps, so scripted and served behavior stay comparable. No effect on
  /// solving unless a front-end applies it.
  void setTimeoutMs(uint64_t Ms) { TimeoutMs = Ms; }
  uint64_t timeoutMs() const { return TimeoutMs; }

  //===--------------------------------------------------------------------===
  // Convenience assertion builders.
  //===--------------------------------------------------------------------===

  /// Asserts `x ∈ L(Regex)`. Asserts on parse errors; use
  /// `assertInReChecked` for fallible input.
  void assertInRe(VarId X, const std::string &Regex) {
    Result<regex::NodePtr> R = regex::parse(Regex);
    assert(R && "assertInRe: regex failed to parse");
    Assertion A;
    A.Kind = AssertKind::InRe;
    A.Lhs = {StrElem::var(X)};
    A.Re = std::shared_ptr<regex::Node>(R.take().release());
    add(std::move(A));
  }
  void assertWordEq(StrSeq L, StrSeq R) {
    add({AssertKind::WordEq, std::move(L), std::move(R), nullptr, {}, {},
         lia::Cmp::Eq});
  }
  void assertDiseq(StrSeq L, StrSeq R) {
    add({AssertKind::Diseq, std::move(L), std::move(R), nullptr, {}, {},
         lia::Cmp::Eq});
  }
  void assertPred(AssertKind K, StrSeq L, StrSeq R) {
    add({K, std::move(L), std::move(R), nullptr, {}, {}, lia::Cmp::Eq});
  }
  void assertStrAt(bool Positive, StrElem X, StrSeq Hay, IntTerm Pos) {
    add({Positive ? AssertKind::StrAtEq : AssertKind::StrAtNe,
         {std::move(X)},
         std::move(Hay),
         nullptr,
         std::move(Pos),
         {},
         lia::Cmp::Eq});
  }
  void assertIntAtom(IntTerm L, lia::Cmp Op, IntTerm R) {
    add({AssertKind::IntAtom, {}, {}, nullptr, std::move(L), std::move(R),
         Op});
  }

private:
  // Name lookups are hashed; the dense id vectors keep deterministic
  // declaration order for anything that iterates variables.
  std::unordered_map<std::string, VarId> StrIndex;
  std::vector<std::string> StrNames;
  std::unordered_map<std::string, IntVarId> IntIndex;
  std::vector<std::string> IntNames;
  std::vector<Assertion> Assertions;
  bool WantReasonUnknown = false;
  uint64_t TimeoutMs = 0;
};

} // namespace strings
} // namespace postr

#endif // POSTR_STRINGS_AST_H
