//===- strings/Eval.h - Concrete evaluation of assertions --------*- C++ -*-===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evaluates a `Problem`'s assertions under a concrete assignment, per
/// the semantics of Fig. 1. Used by the enumeration baseline solver and
/// to validate every Sat model the full pipeline produces.
///
//===----------------------------------------------------------------------===//

#ifndef POSTR_STRINGS_EVAL_H
#define POSTR_STRINGS_EVAL_H

#include "strings/Ast.h"

#include <map>
#include <unordered_map>

namespace postr {
namespace strings {

/// Pre-compiles the regexes of a problem against a closed alphabet and
/// evaluates assertions under concrete assignments.
class ConcreteEvaluator {
public:
  ConcreteEvaluator(const Problem &P, const Alphabet &Sigma);

  /// Evaluates every assertion. \p Strs must cover all string variables,
  /// \p Ints all integer variables the assertions mention.
  bool evalAll(const std::map<VarId, Word> &Strs,
               const std::map<IntVarId, int64_t> &Ints) const;

  /// Evaluates assertion \p Index only.
  bool evalOne(size_t Index, const std::map<VarId, Word> &Strs,
               const std::map<IntVarId, int64_t> &Ints) const;

private:
  Word evalSeq(const StrSeq &Seq, const std::map<VarId, Word> &Strs) const;
  int64_t evalInt(const IntTerm &T, const std::map<VarId, Word> &Strs,
                  const std::map<IntVarId, int64_t> &Ints) const;

  const Problem &P;
  const Alphabet &Sigma;
  /// Compiled NFA per InRe assertion index (hashed: looked up once per
  /// assertion per candidate model in the enumeration baseline).
  std::unordered_map<size_t, automata::Nfa> CompiledRe;
};

} // namespace strings
} // namespace postr

#endif // POSTR_STRINGS_EVAL_H
