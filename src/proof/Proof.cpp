//===- proof/Proof.cpp - Certificate text serialization and parser ---------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
// Line-based text format, one record per line, whitespace-separated
// tokens, explicit counts before every list so truncation is always a
// parse error:
//
//   postr-cert 1
//   complete 0|1
//   disjuncts N
//   disjunct <i> rule <name>          -- structural short-circuit
//   disjunct <i> qf                   -- clause-trace refutation
//     v <var> <lo|*> <hi|*>
//     atm <satvar> <const> <k> {<var> <coeff>}...
//     c <id> <leaves> <nodes> <root>
//     lf <id> <k> { L <lit> <mult> | B <var> u|l <mult> | S <d> <mult> }...
//     nd <id> lf <leaf>  |  nd <id> sp <var> <floor> <down> <up>
//     i|l|d|f <k> {<lit>}...
//     t <k> {<lit>}... <certid|->
//   end
//   unsat
//
// Rationals are `num` or `num/den` in decimal (128-bit).
//
//===----------------------------------------------------------------------===//

#include "proof/Proof.h"

#include <cctype>
#include <sstream>

using namespace postr;
using namespace postr::proof;

namespace {

std::string render128(__int128 V) {
  if (V == 0)
    return "0";
  bool Neg = V < 0;
  std::string S;
  while (V != 0) {
    int Digit = static_cast<int>(V % 10);
    if (Digit < 0)
      Digit = -Digit;
    S.push_back(static_cast<char>('0' + Digit));
    V /= 10;
  }
  if (Neg)
    S.push_back('-');
  return std::string(S.rbegin(), S.rend());
}

std::string renderRat(const Rat &R) {
  if (R.Den == 1)
    return render128(R.Num);
  return render128(R.Num) + "/" + render128(R.Den);
}

bool parse128(const std::string &Tok, __int128 &Out) {
  size_t I = 0;
  bool Neg = false;
  if (I < Tok.size() && (Tok[I] == '-' || Tok[I] == '+')) {
    Neg = Tok[I] == '-';
    ++I;
  }
  if (I >= Tok.size())
    return false;
  __int128 V = 0;
  // Magnitude guard: |value| must stay below 2^126 so the checker's
  // arithmetic has headroom; certificates near that range are rejected
  // rather than silently wrapped.
  const __int128 Cap = static_cast<__int128>(1) << 120;
  for (; I < Tok.size(); ++I) {
    if (!std::isdigit(static_cast<unsigned char>(Tok[I])))
      return false;
    if (V > Cap)
      return false;
    V = V * 10 + (Tok[I] - '0');
  }
  Out = Neg ? -V : V;
  return true;
}

bool parseRat(const std::string &Tok, Rat &Out) {
  size_t Slash = Tok.find('/');
  if (Slash == std::string::npos) {
    Out.Den = 1;
    return parse128(Tok, Out.Num);
  }
  return parse128(Tok.substr(0, Slash), Out.Num) &&
         parse128(Tok.substr(Slash + 1), Out.Den) && Out.Den > 0;
}

const char *stepTag(ClauseStep::Kind K) {
  switch (K) {
  case ClauseStep::Kind::Input:
    return "i";
  case ClauseStep::Kind::Learnt:
    return "l";
  case ClauseStep::Kind::Theory:
    return "t";
  case ClauseStep::Kind::Delete:
    return "d";
  case ClauseStep::Kind::Final:
    return "f";
  }
  return "?";
}

void serializeQf(std::ostringstream &Out, const QfProof &P) {
  for (const VarBounds &B : P.Bounds) {
    Out << "v " << B.Var << ' '
        << (B.HasLo ? std::to_string(B.Lo) : std::string("*")) << ' '
        << (B.HasHi ? std::to_string(B.Hi) : std::string("*")) << '\n';
  }
  for (const LinAtom &A : P.Atoms) {
    Out << "atm " << A.SatVar << ' ' << A.Const << ' ' << A.Coeffs.size();
    for (const auto &[V, C] : A.Coeffs)
      Out << ' ' << V << ' ' << C;
    Out << '\n';
  }
  for (size_t I = 0; I < P.Certs.size(); ++I) {
    const TheoryCert &C = P.Certs[I];
    Out << "c " << I << ' ' << C.Leaves.size() << ' ' << C.Nodes.size()
        << ' ' << C.Root << '\n';
    for (size_t L = 0; L < C.Leaves.size(); ++L) {
      Out << "lf " << L << ' ' << C.Leaves[L].Entries.size();
      for (const FarkasEntry &E : C.Leaves[L].Entries) {
        switch (E.K) {
        case FarkasEntry::Kind::Lit:
          Out << " L " << E.Ref;
          break;
        case FarkasEntry::Kind::VarBound:
          Out << " B " << E.Ref << ' ' << (E.Upper ? 'u' : 'l');
          break;
        case FarkasEntry::Kind::Split:
          Out << " S " << E.Ref;
          break;
        }
        Out << ' ' << renderRat(E.Mult);
      }
      Out << '\n';
    }
    for (size_t N = 0; N < C.Nodes.size(); ++N) {
      const CertNode &Nd = C.Nodes[N];
      if (Nd.Leaf >= 0)
        Out << "nd " << N << " lf " << Nd.Leaf << '\n';
      else
        Out << "nd " << N << " sp " << Nd.Var << ' ' << Nd.Floor << ' '
            << Nd.Down << ' ' << Nd.Up << '\n';
    }
  }
  for (const ClauseStep &S : P.Steps) {
    Out << stepTag(S.K) << ' ' << S.Lits.size();
    for (uint32_t L : S.Lits)
      Out << ' ' << L;
    if (S.K == ClauseStep::Kind::Theory) {
      if (S.Cert >= 0)
        Out << ' ' << S.Cert;
      else
        Out << " -";
    }
    Out << '\n';
  }
}

/// Token-stream parser state over one certificate text.
struct Parser {
  std::istringstream In;
  std::string Line;
  std::istringstream Toks;
  size_t LineNo = 0;
  std::string Err;

  explicit Parser(std::string_view Text) : In(std::string(Text)) {}

  bool fail(const std::string &Msg) {
    if (Err.empty())
      Err = "line " + std::to_string(LineNo) + ": " + Msg;
    return false;
  }

  /// Advances to the next non-empty, non-comment line.
  bool nextLine() {
    while (std::getline(In, Line)) {
      ++LineNo;
      size_t B = Line.find_first_not_of(" \t\r");
      if (B == std::string::npos || Line[B] == ';')
        continue;
      Toks.clear();
      Toks.str(Line);
      return true;
    }
    return fail("unexpected end of certificate");
  }

  bool tok(std::string &Out) {
    if (!(Toks >> Out))
      return fail("missing token");
    return true;
  }
  bool u32(uint32_t &Out) {
    std::string T;
    if (!tok(T))
      return false;
    __int128 V;
    if (!parse128(T, V) || V < 0 || V > UINT32_MAX)
      return fail("bad u32 '" + T + "'");
    Out = static_cast<uint32_t>(V);
    return true;
  }
  bool i64(int64_t &Out) {
    std::string T;
    if (!tok(T))
      return false;
    __int128 V;
    if (!parse128(T, V) || V < INT64_MIN || V > INT64_MAX)
      return fail("bad i64 '" + T + "'");
    Out = static_cast<int64_t>(V);
    return true;
  }
  bool i32(int32_t &Out) {
    int64_t V;
    if (!i64(V))
      return false;
    if (V < INT32_MIN || V > INT32_MAX)
      return fail("i32 out of range");
    Out = static_cast<int32_t>(V);
    return true;
  }
  bool rat(Rat &Out) {
    std::string T;
    if (!tok(T))
      return false;
    if (!parseRat(T, Out))
      return fail("bad rational '" + T + "'");
    return true;
  }
};

bool parseQf(Parser &P, QfProof &Out) {
  // Sections arrive in any order; `end` closes the disjunct.
  for (;;) {
    if (!P.nextLine())
      return false;
    std::string Tag;
    if (!P.tok(Tag))
      return false;
    if (Tag == "end")
      return true;
    if (Tag == "v") {
      VarBounds B;
      std::string Lo, Hi;
      if (!P.u32(B.Var) || !P.tok(Lo) || !P.tok(Hi))
        return false;
      __int128 V;
      if (Lo != "*") {
        if (!parse128(Lo, V) || V < INT64_MIN || V > INT64_MAX)
          return P.fail("bad lower bound");
        B.HasLo = true;
        B.Lo = static_cast<int64_t>(V);
      }
      if (Hi != "*") {
        if (!parse128(Hi, V) || V < INT64_MIN || V > INT64_MAX)
          return P.fail("bad upper bound");
        B.HasHi = true;
        B.Hi = static_cast<int64_t>(V);
      }
      Out.Bounds.push_back(B);
    } else if (Tag == "atm") {
      LinAtom A;
      uint32_t N;
      if (!P.u32(A.SatVar) || !P.i64(A.Const) || !P.u32(N))
        return false;
      A.Coeffs.resize(N);
      for (auto &[V, C] : A.Coeffs)
        if (!P.u32(V) || !P.i64(C))
          return false;
      Out.Atoms.push_back(std::move(A));
    } else if (Tag == "c") {
      uint32_t Id, NL, NN;
      TheoryCert C;
      if (!P.u32(Id) || !P.u32(NL) || !P.u32(NN) || !P.i32(C.Root))
        return false;
      if (Id != Out.Certs.size())
        return P.fail("cert id out of order");
      C.Leaves.resize(NL);
      C.Nodes.resize(NN);
      for (uint32_t L = 0; L < NL; ++L) {
        if (!P.nextLine())
          return false;
        std::string T;
        uint32_t LId, NE;
        if (!P.tok(T) || T != "lf")
          return P.fail("expected 'lf'");
        if (!P.u32(LId) || LId != L || !P.u32(NE))
          return P.fail("bad leaf header");
        C.Leaves[L].Entries.resize(NE);
        for (FarkasEntry &E : C.Leaves[L].Entries) {
          std::string K;
          if (!P.tok(K))
            return false;
          if (K == "L") {
            E.K = FarkasEntry::Kind::Lit;
            if (!P.u32(E.Ref))
              return false;
          } else if (K == "B") {
            E.K = FarkasEntry::Kind::VarBound;
            std::string Side;
            if (!P.u32(E.Ref) || !P.tok(Side))
              return false;
            if (Side != "u" && Side != "l")
              return P.fail("bad bound side");
            E.Upper = Side == "u";
          } else if (K == "S") {
            E.K = FarkasEntry::Kind::Split;
            if (!P.u32(E.Ref))
              return false;
          } else {
            return P.fail("bad farkas entry kind '" + K + "'");
          }
          if (!P.rat(E.Mult))
            return false;
        }
      }
      for (uint32_t N = 0; N < NN; ++N) {
        if (!P.nextLine())
          return false;
        std::string T, Kind;
        uint32_t NId;
        if (!P.tok(T) || T != "nd")
          return P.fail("expected 'nd'");
        if (!P.u32(NId) || NId != N || !P.tok(Kind))
          return P.fail("bad node header");
        CertNode &Nd = C.Nodes[N];
        if (Kind == "lf") {
          if (!P.i32(Nd.Leaf))
            return false;
        } else if (Kind == "sp") {
          if (!P.u32(Nd.Var) || !P.i64(Nd.Floor) || !P.i32(Nd.Down) ||
              !P.i32(Nd.Up))
            return false;
        } else {
          return P.fail("bad node kind '" + Kind + "'");
        }
      }
      Out.Certs.push_back(std::move(C));
    } else if (Tag == "i" || Tag == "l" || Tag == "t" || Tag == "d" ||
               Tag == "f") {
      ClauseStep S;
      S.K = Tag == "i"   ? ClauseStep::Kind::Input
            : Tag == "l" ? ClauseStep::Kind::Learnt
            : Tag == "t" ? ClauseStep::Kind::Theory
            : Tag == "d" ? ClauseStep::Kind::Delete
                         : ClauseStep::Kind::Final;
      uint32_t N;
      if (!P.u32(N))
        return false;
      S.Lits.resize(N);
      for (uint32_t &L : S.Lits)
        if (!P.u32(L))
          return false;
      if (S.K == ClauseStep::Kind::Theory) {
        std::string C;
        if (!P.tok(C))
          return false;
        if (C != "-") {
          __int128 V;
          if (!parse128(C, V) || V < 0 || V > INT32_MAX)
            return P.fail("bad cert ref '" + C + "'");
          S.Cert = static_cast<int32_t>(V);
        }
      }
      Out.Steps.push_back(std::move(S));
    } else {
      return P.fail("unknown record '" + Tag + "'");
    }
  }
}

} // namespace

std::string proof::serialize(const Certificate &C) {
  std::ostringstream Out;
  Out << "postr-cert 1\n";
  Out << "complete " << (C.Complete ? 1 : 0) << '\n';
  Out << "disjuncts " << C.Disjuncts.size() << '\n';
  for (size_t I = 0; I < C.Disjuncts.size(); ++I) {
    const DisjunctCert &D = C.Disjuncts[I];
    if (D.IsRule) {
      Out << "disjunct " << I << " rule " << D.Rule << '\n';
    } else {
      Out << "disjunct " << I << " qf\n";
      serializeQf(Out, D.Proof);
      Out << "end\n";
    }
  }
  Out << "unsat\n";
  return Out.str();
}

Result<Certificate> proof::parse(std::string_view Text) {
  Parser P(Text);
  auto Bail = [&]() { return Result<Certificate>::failure(P.Err); };

  std::string Tag;
  uint32_t Version = 0;
  if (!P.nextLine() || !P.tok(Tag) || Tag != "postr-cert" || !P.u32(Version))
    return P.fail("expected 'postr-cert <version>' header"), Bail();
  if (Version != 1)
    return P.fail("unsupported version"), Bail();

  Certificate C;
  uint32_t Complete = 0, NumDisjuncts = 0;
  if (!P.nextLine() || !P.tok(Tag) || Tag != "complete" || !P.u32(Complete))
    return P.fail("expected 'complete 0|1'"), Bail();
  C.Complete = Complete != 0;
  if (!P.nextLine() || !P.tok(Tag) || Tag != "disjuncts" ||
      !P.u32(NumDisjuncts))
    return P.fail("expected 'disjuncts N'"), Bail();

  C.Disjuncts.resize(NumDisjuncts);
  for (uint32_t I = 0; I < NumDisjuncts; ++I) {
    uint32_t Idx = 0;
    std::string Kind;
    if (!P.nextLine() || !P.tok(Tag) || Tag != "disjunct" || !P.u32(Idx) ||
        !P.tok(Kind))
      return P.fail("expected 'disjunct <i> rule|qf'"), Bail();
    if (Idx != I)
      return P.fail("disjunct index out of order"), Bail();
    DisjunctCert &D = C.Disjuncts[I];
    if (Kind == "rule") {
      D.IsRule = true;
      if (!P.tok(D.Rule))
        return P.fail("missing rule name"), Bail();
    } else if (Kind == "qf") {
      if (!parseQf(P, D.Proof))
        return Bail();
    } else {
      return P.fail("bad disjunct kind '" + Kind + "'"), Bail();
    }
  }

  if (!P.nextLine() || !P.tok(Tag) || Tag != "unsat")
    return P.fail("expected trailing 'unsat' verdict line"), Bail();
  return Result<Certificate>::success(std::move(C));
}
