//===- proof/Proof.h - Unsat certificate format ------------------*- C++ -*-===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Unsat certificate format: plain data structures, their text
/// serialization, and the parser. This header is the *entire* shared
/// surface between the solver (which emits certificates) and the
/// independent checker kernel (`proof/Check.h`, `tools/postr_check`):
/// the kernel re-derives every arithmetic and propositional fact from
/// these records alone and never touches solver data structures.
///
/// A whole-problem certificate is one refutation per stabilization
/// disjunct. A disjunct refutation is either
///
///  - a `QfProof`: a DRUP-style clause trace of the DPLL(T) search over
///    the disjunct's LIA encoding — input clauses (the trusted
///    encoding), learnt clauses (checkable by reverse unit propagation),
///    theory lemmas (checkable by re-evaluating an attached Farkas
///    certificate: a nonnegative rational combination of asserted
///    bounds summing to `0 <= negative`, with an explicit branch-split
///    tree for integrality conflicts), DB-reduction deletions, and a
///    final refutation event (empty-clause or assumption-core); or
///
///  - a named structural rule (`DisjunctCert::IsRule`): one of the
///    automata-level short-circuits (empty language, commuting powers,
///    epsilon needle, syntactic self-containment, the one-counter fast
///    path, MBQI candidate logic). These are part of the trusted
///    front-end, recorded so the composition is explicit; the kernel
///    counts them but cannot re-derive them.
///
/// Atoms tie SAT variables to linear inequalities: SAT var v true means
/// `Const + Σ Coeff·Var <= 0` over the integer problem variables, false
/// means `Const + Σ Coeff·Var >= 1` (integer negation). Farkas entries
/// reference the asserting literal, an intrinsic variable bound, or a
/// branch split on the current tree path, so the checker reconstructs
/// each inequality from the tables instead of trusting the emitter.
///
//===----------------------------------------------------------------------===//

#ifndef POSTR_PROOF_PROOF_H
#define POSTR_PROOF_PROOF_H

#include "base/Base.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace postr {
namespace proof {

/// A 128-bit fraction, plain data. The checker implements its own exact
/// arithmetic over this representation (`proof/Check.cpp`); the solver
/// only converts into it at emission time.
struct Rat {
  __int128 Num = 0;
  __int128 Den = 1;
};

/// Atom definition: SAT var \p SatVar true <=> Const + Σ Coeff·Var <= 0.
struct LinAtom {
  uint32_t SatVar = 0;
  int64_t Const = 0;
  std::vector<std::pair<uint32_t, int64_t>> Coeffs; ///< (problem var, coeff)
};

/// Intrinsic (declared) bounds of one integer problem variable.
struct VarBounds {
  uint32_t Var = 0;
  bool HasLo = false, HasHi = false;
  int64_t Lo = 0, Hi = 0;
};

/// One term of a Farkas combination: a strictly positive rational
/// multiple of an available inequality, identified by origin.
struct FarkasEntry {
  enum class Kind : uint8_t {
    Lit,      ///< bound asserted by SAT literal `Ref` (atom table)
    VarBound, ///< intrinsic bound of problem var `Ref`, side `Upper`
    Split,    ///< branch split at depth `Ref` on the current tree path
  };
  Kind K = Kind::Lit;
  uint32_t Ref = 0;
  bool Upper = false;
  Rat Mult;
};

/// A Farkas leaf: entries summing to a contradiction (all variables
/// cancel, constant strictly negative).
struct FarkasLeaf {
  std::vector<FarkasEntry> Entries;
};

/// Branch-and-bound certificate node: either a terminal Farkas leaf or
/// an integer split `Var <= Floor | Var >= Floor+1` with two subtrees.
struct CertNode {
  int32_t Leaf = -1; ///< >= 0: index into TheoryCert::Leaves (terminal)
  uint32_t Var = 0;
  int64_t Floor = 0;
  int32_t Down = -1, Up = -1; ///< node indices of the two branches
};

/// Certificate attached to one theory lemma. A purely rational conflict
/// is a single-leaf tree; an integrality conflict is a proper split
/// tree whose leaves may cite the splits on their path.
struct TheoryCert {
  std::vector<FarkasLeaf> Leaves;
  std::vector<CertNode> Nodes;
  int32_t Root = -1;
};

/// One DRUP-style event of the clause trace. Literal codes follow the
/// SAT solver convention: `var*2 + negated`.
struct ClauseStep {
  enum class Kind : uint8_t {
    Input,  ///< asserted clause (trusted encoding / axiom)
    Learnt, ///< CDCL-learnt clause — must pass reverse unit propagation
    Theory, ///< theory lemma — checked via `Cert` (or RUP when -1)
    Delete, ///< DB-reduction deletion (by literal multiset)
    Final,  ///< refutation: Lits = refuted assumption core (empty = UP alone)
  };
  Kind K = Kind::Input;
  std::vector<uint32_t> Lits;
  int32_t Cert = -1; ///< Theory: index into QfProof::Certs
};

/// Full proof of one disjunct's LIA-level unsatisfiability.
struct QfProof {
  std::vector<LinAtom> Atoms;
  std::vector<VarBounds> Bounds;
  std::vector<ClauseStep> Steps;
  std::vector<TheoryCert> Certs;
};

/// Refutation of one stabilization disjunct.
struct DisjunctCert {
  bool IsRule = false;
  std::string Rule; ///< structural rule name when IsRule
  QfProof Proof;    ///< clause trace otherwise
};

/// Whole-problem Unsat certificate: every disjunct refuted and the
/// stabilization complete (an incomplete stabilization certifies
/// nothing — the solver's verdict correctly stays Unknown).
struct Certificate {
  bool Complete = true;
  std::vector<DisjunctCert> Disjuncts;
};

/// Append-only builder the solver layers write into while searching.
/// Zero-cost when absent: every emission site is behind a null check.
class QfTraceBuilder {
public:
  QfProof P;

  /// Cert id staged by the theory client for the next Theory step (the
  /// lemma travels through the SAT core separately from its cert).
  int32_t Pending = -1;

  void atomDef(uint32_t SatVar, int64_t Const,
               std::vector<std::pair<uint32_t, int64_t>> Coeffs) {
    P.Atoms.push_back({SatVar, Const, std::move(Coeffs)});
  }
  void varBounds(VarBounds B) { P.Bounds.push_back(B); }
  int32_t addCert(TheoryCert C) {
    P.Certs.push_back(std::move(C));
    return static_cast<int32_t>(P.Certs.size() - 1);
  }

  void input(std::vector<uint32_t> Lits) {
    // A staged cert turns the incoming clause into a certified theory
    // step (atom-lattice lemmas enter through addClause but are
    // theory-valid, not axioms).
    if (Pending >= 0)
      return theory(std::move(Lits));
    P.Steps.push_back({ClauseStep::Kind::Input, std::move(Lits), -1});
  }
  void learnt(std::vector<uint32_t> Lits) {
    P.Steps.push_back({ClauseStep::Kind::Learnt, std::move(Lits), -1});
  }
  void theory(std::vector<uint32_t> Lits) {
    P.Steps.push_back({ClauseStep::Kind::Theory, std::move(Lits), Pending});
    Pending = -1;
  }
  void del(std::vector<uint32_t> Lits) {
    P.Steps.push_back({ClauseStep::Kind::Delete, std::move(Lits), -1});
  }
  void finalCore(std::vector<uint32_t> Core) {
    P.Steps.push_back({ClauseStep::Kind::Final, std::move(Core), -1});
  }
  /// Drops a stale Final step: an Unsat-under-assumptions outcome is
  /// only *the* refutation if the owning loop stops there; a context
  /// that keeps solving clears it at the next solve() entry.
  void clearFinal() {
    for (size_t I = P.Steps.size(); I > 0; --I)
      if (P.Steps[I - 1].K == ClauseStep::Kind::Final)
        P.Steps.erase(P.Steps.begin() + static_cast<ptrdiff_t>(I - 1));
  }
  /// True once a Final refutation event is recorded.
  bool finalized() const {
    return !P.Steps.empty() && P.Steps.back().K == ClauseStep::Kind::Final;
  }
  void reset() {
    P = QfProof();
    Pending = -1;
  }
};

/// Renders \p C in the line-based text format (`postr-cert 1` header).
std::string serialize(const Certificate &C);

/// Parses certificate text. Errors carry a line number.
Result<Certificate> parse(std::string_view Text);

} // namespace proof
} // namespace postr

#endif // POSTR_PROOF_PROOF_H
