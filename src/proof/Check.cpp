//===- proof/Check.cpp - Independent certificate checker kernel ------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
// Shares nothing with the solver beyond the parsed certificate
// structures: rationals, unit propagation, and the watch scheme below
// are re-implemented from first principles so a solver bug cannot
// silently agree with itself.
//
//===----------------------------------------------------------------------===//

#include "proof/Check.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

using namespace postr;
using namespace postr::proof;

namespace {

//===----------------------------------------------------------------------===//
// Exact rationals (kernel-owned, independent of lia/Rational.h)
//===----------------------------------------------------------------------===//

struct KRat {
  __int128 N = 0;
  __int128 D = 1;

  static __int128 gcd(__int128 A, __int128 B) {
    if (A < 0)
      A = -A;
    if (B < 0)
      B = -B;
    while (B != 0) {
      __int128 T = A % B;
      A = B;
      B = T;
    }
    return A;
  }
  void norm() {
    if (D < 0) {
      N = -N;
      D = -D;
    }
    if (N == 0) {
      D = 1;
      return;
    }
    __int128 G = gcd(N, D);
    if (G > 1) {
      N /= G;
      D /= G;
    }
  }
  static KRat make(__int128 N, __int128 D) {
    KRat R{N, D};
    R.norm();
    return R;
  }
  bool isZero() const { return N == 0; }
  bool isNeg() const { return N < 0; }
  bool isPos() const { return N > 0; }
  KRat operator+(const KRat &O) const {
    return make(N * O.D + O.N * D, D * O.D);
  }
  KRat operator-(const KRat &O) const {
    return make(N * O.D - O.N * D, D * O.D);
  }
  KRat operator*(const KRat &O) const { return make(N * O.N, D * O.D); }
};

//===----------------------------------------------------------------------===//
// Clause trace replay: a decision-free mini-solver (watched literals,
// persistent level-0 trail, temporary RUP probes).
//===----------------------------------------------------------------------===//

class Replayer {
public:
  std::string Err;

  bool fail(const std::string &M) {
    if (Err.empty())
      Err = M;
    return false;
  }

  void ensureVar(uint32_t Var) {
    if (Var >= NumVars) {
      NumVars = Var + 1;
      Assign.resize(NumVars, 0);
      Watches.resize(2 * NumVars);
    }
  }

  bool litTrue(uint32_t L) const {
    return Assign[L >> 1] == ((L & 1) ? -1 : 1);
  }
  bool litFalse(uint32_t L) const {
    return Assign[L >> 1] == ((L & 1) ? 1 : -1);
  }
  bool litFree(uint32_t L) const { return Assign[L >> 1] == 0; }

  /// Enqueues L as true; returns false on an immediate clash.
  bool enqueue(uint32_t L) {
    if (litFalse(L))
      return false;
    if (litTrue(L))
      return true;
    Assign[L >> 1] = (L & 1) ? -1 : 1;
    Trail.push_back(L);
    return true;
  }

  /// Watch-based unit propagation from QHead. Returns false on conflict
  /// (a falsified clause) — the desired outcome of a RUP probe.
  bool propagate() {
    while (QHead < Trail.size()) {
      uint32_t False = Trail[QHead++] ^ 1; // lit that just became false
      std::vector<uint32_t> &Ws = Watches[False];
      size_t Keep = 0;
      for (size_t I = 0; I < Ws.size(); ++I) {
        uint32_t Ci = Ws[I];
        Clause &C = Clauses[Ci];
        if (!C.Alive)
          continue; // dropped by DB reduction; GC'd here
        // Normalize: watched lit under scrutiny at position 1.
        if (C.Lits[0] == False)
          std::swap(C.Lits[0], C.Lits[1]);
        if (litTrue(C.Lits[0])) {
          Ws[Keep++] = Ci;
          continue;
        }
        bool Moved = false;
        for (size_t K = 2; K < C.Lits.size(); ++K) {
          if (!litFalse(C.Lits[K])) {
            std::swap(C.Lits[1], C.Lits[K]);
            Watches[C.Lits[1]].push_back(Ci);
            Moved = true;
            break;
          }
        }
        if (Moved)
          continue;
        Ws[Keep++] = Ci;
        if (!enqueue(C.Lits[0])) {
          Ws.erase(Ws.begin() + static_cast<ptrdiff_t>(Keep),
                   Ws.begin() + static_cast<ptrdiff_t>(I + 1));
          return false;
        }
      }
      Ws.resize(Keep);
    }
    return true;
  }

  /// Adds a clause to the live DB and absorbs its level-0 consequences.
  /// A derived top-level conflict is remembered (`Refuted`) — from that
  /// point the trace's refutation claim holds outright.
  void addClause(const std::vector<uint32_t> &Lits) {
    std::vector<uint32_t> Ls = Lits;
    for (uint32_t L : Ls)
      ensureVar(L >> 1);
    if (Refuted)
      return;
    if (Ls.empty()) {
      Refuted = true;
      return;
    }
    uint32_t Ci = static_cast<uint32_t>(Clauses.size());
    Clauses.push_back({Ls, true});
    std::vector<uint32_t> Key = Ls;
    std::sort(Key.begin(), Key.end());
    ByLits[Key].push_back(Ci);
    if (Ls.size() >= 2) {
      // Watch two non-falsified lits when possible so the persistent
      // trail keeps propagating through this clause.
      auto Pick = [&](size_t From) {
        for (size_t K = From; K < Ls.size(); ++K)
          if (!litFalse(Clauses[Ci].Lits[K]))
            return K;
        return From;
      };
      size_t W0 = Pick(0);
      std::swap(Clauses[Ci].Lits[0], Clauses[Ci].Lits[W0]);
      size_t W1 = Pick(1);
      std::swap(Clauses[Ci].Lits[1], Clauses[Ci].Lits[W1]);
      Watches[Clauses[Ci].Lits[0]].push_back(Ci);
      Watches[Clauses[Ci].Lits[1]].push_back(Ci);
    }
    // Level-0 status: unit or falsified clauses feed the trail now.
    uint32_t Free = ~0u;
    size_t NumFree = 0;
    bool Sat = false;
    for (uint32_t L : Clauses[Ci].Lits) {
      if (litTrue(L))
        Sat = true;
      else if (!litFalse(L)) {
        Free = L;
        ++NumFree;
      }
    }
    if (Sat)
      return;
    if (NumFree == 0 || (NumFree == 1 && !enqueue(Free)) || !propagate())
      Refuted = true;
  }

  /// Deletes one live clause with exactly these literals (multiset).
  /// Literals the clause already forced onto the persistent trail stay
  /// asserted — the standard DRUP-checker treatment of unit deletions
  /// (retracting them would require recomputing the propagation
  /// fixpoint from scratch, and solvers never delete reason clauses of
  /// top-level literals).
  bool delClause(const std::vector<uint32_t> &Lits) {
    if (Refuted)
      return true; // post-refutation bookkeeping; nothing left to protect
    std::vector<uint32_t> Key = Lits;
    std::sort(Key.begin(), Key.end());
    auto It = ByLits.find(Key);
    while (It != ByLits.end() && !It->second.empty()) {
      uint32_t Ci = It->second.back();
      It->second.pop_back();
      if (Clauses[Ci].Alive) {
        Clauses[Ci].Alive = false;
        return true;
      }
    }
    return fail("delete of a clause that is not in the live DB");
  }

  /// Reverse-unit-propagation probe: asserting the negation of every
  /// literal of \p Lits must conflict. Leaves persistent state intact.
  bool rupHolds(const std::vector<uint32_t> &Lits) {
    for (uint32_t L : Lits)
      ensureVar(L >> 1);
    if (Refuted)
      return true;
    size_t Mark = Trail.size();
    bool Conflict = false;
    for (uint32_t L : Lits)
      if (!enqueue(L ^ 1)) {
        Conflict = true;
        break;
      }
    if (!Conflict)
      Conflict = !propagate();
    undoTo(Mark);
    return Conflict;
  }

  /// Refutation probe for the final event: the core assumptions (as
  /// asserted) must conflict under propagation.
  bool coreRefuted(const std::vector<uint32_t> &Core) {
    for (uint32_t L : Core)
      ensureVar(L >> 1);
    if (Refuted)
      return true;
    size_t Mark = Trail.size();
    bool Conflict = false;
    for (uint32_t L : Core)
      if (!enqueue(L)) {
        Conflict = true;
        break;
      }
    if (!Conflict)
      Conflict = !propagate();
    undoTo(Mark);
    return Conflict;
  }

private:
  struct Clause {
    std::vector<uint32_t> Lits;
    bool Alive = true;
  };

  void undoTo(size_t Mark) {
    while (Trail.size() > Mark) {
      Assign[Trail.back() >> 1] = 0;
      Trail.pop_back();
    }
    QHead = Mark;
  }

  uint32_t NumVars = 0;
  std::vector<int8_t> Assign; ///< per var: 0 free, 1 true, -1 false
  std::vector<uint32_t> Trail;
  size_t QHead = 0;
  std::vector<Clause> Clauses;
  std::vector<std::vector<uint32_t>> Watches; ///< per literal code
  std::map<std::vector<uint32_t>, std::vector<uint32_t>> ByLits;
  bool Refuted = false;
};

//===----------------------------------------------------------------------===//
// Farkas / branch-tree re-evaluation
//===----------------------------------------------------------------------===//

struct PathSplit {
  uint32_t Var;
  int64_t Floor;
  bool UpSide; ///< false: Var <= Floor, true: Var >= Floor+1
};

class QfChecker {
public:
  QfChecker(const QfProof &P, CheckStats &Stats) : P(P), Stats(Stats) {}

  bool run(std::string &Err) {
    bool Ok = runImpl();
    if (!Ok)
      Err = !R.Err.empty() ? R.Err : this->Err;
    return Ok;
  }

private:
  bool fail(const std::string &M) {
    if (Err.empty())
      Err = M;
    return false;
  }

  bool runImpl() {
    for (const LinAtom &A : P.Atoms)
      if (!Atoms.emplace(A.SatVar, &A).second)
        return fail("duplicate atom definition for SAT var " +
                    std::to_string(A.SatVar));
    for (const VarBounds &B : P.Bounds)
      if (!Bounds.emplace(B.Var, &B).second)
        return fail("duplicate bounds record for var " +
                    std::to_string(B.Var));

    bool SawFinal = false;
    for (size_t I = 0; I < P.Steps.size(); ++I) {
      const ClauseStep &S = P.Steps[I];
      if (SawFinal)
        return fail("events after the final refutation step");
      switch (S.K) {
      case ClauseStep::Kind::Input:
        R.addClause(S.Lits);
        break;
      case ClauseStep::Kind::Learnt:
        ++Stats.RupChecks;
        if (!R.rupHolds(S.Lits))
          return fail("learnt clause at step " + std::to_string(I) +
                      " is not RUP");
        R.addClause(S.Lits);
        break;
      case ClauseStep::Kind::Theory:
        if (S.Cert < 0) {
          // Certless theory clauses are the splitting-on-demand
          // tautologies; RUP covers those.
          ++Stats.RupChecks;
          if (!R.rupHolds(S.Lits))
            return fail("certless theory lemma at step " +
                        std::to_string(I) + " is not RUP");
        } else {
          if (static_cast<size_t>(S.Cert) >= P.Certs.size())
            return fail("theory lemma cites missing cert");
          if (!checkCert(P.Certs[S.Cert], S.Lits))
            return false;
        }
        R.addClause(S.Lits);
        break;
      case ClauseStep::Kind::Delete:
        if (!R.delClause(S.Lits))
          return false;
        break;
      case ClauseStep::Kind::Final:
        SawFinal = true;
        if (!R.coreRefuted(S.Lits))
          return fail("final event does not conflict under propagation");
        break;
      }
    }
    if (!SawFinal)
      return fail("trace has no final refutation event");
    ++Stats.CheckedRefutations;
    return true;
  }

  /// The lemma `¬r1 ∨ … ∨ ¬rk` is justified when the certificate shows
  /// {r1..rk} ∪ intrinsic bounds jointly infeasible over the integers.
  bool checkCert(const TheoryCert &C, const std::vector<uint32_t> &Lemma) {
    LemmaLits.clear();
    LemmaLits.insert(Lemma.begin(), Lemma.end());
    if (C.Root < 0 || static_cast<size_t>(C.Root) >= C.Nodes.size())
      return fail("theory cert has no root node");
    Visited.assign(C.Nodes.size(), false);
    Path.clear();
    return checkNode(C, C.Root);
  }

  bool checkNode(const TheoryCert &C, int32_t N) {
    if (N < 0 || static_cast<size_t>(N) >= C.Nodes.size())
      return fail("cert node index out of range");
    if (Visited[static_cast<size_t>(N)])
      return fail("cert node visited twice (cycle)");
    Visited[static_cast<size_t>(N)] = true;
    const CertNode &Nd = C.Nodes[static_cast<size_t>(N)];
    if (Nd.Leaf >= 0) {
      if (static_cast<size_t>(Nd.Leaf) >= C.Leaves.size())
        return fail("cert leaf index out of range");
      return checkLeaf(C.Leaves[static_cast<size_t>(Nd.Leaf)]);
    }
    // Integer split Var <= Floor | Var >= Floor+1: valid for every
    // integer variable and every integer Floor; both sides must close.
    Path.push_back({Nd.Var, Nd.Floor, false});
    if (!checkNode(C, Nd.Down))
      return false;
    Path.back().UpSide = true;
    if (!checkNode(C, Nd.Up))
      return false;
    Path.pop_back();
    return true;
  }

  /// Accumulates Mult · (t <= b) per entry in `<=` normal form; the
  /// combination must cancel every variable and leave a strictly
  /// negative constant: 0 <= negative.
  bool checkLeaf(const FarkasLeaf &Leaf) {
    ++Stats.FarkasLeaves;
    Acc.clear();
    KRat Rhs{};
    if (Leaf.Entries.empty())
      return fail("empty Farkas combination");
    for (const FarkasEntry &E : Leaf.Entries) {
      KRat M = KRat::make(E.Mult.Num, E.Mult.Den);
      if (!M.isPos())
        return fail("Farkas multiplier is not strictly positive");
      switch (E.K) {
      case FarkasEntry::Kind::Lit: {
        // The asserted bound's negation must be offered by the lemma.
        if (!LemmaLits.count(E.Ref ^ 1u))
          return fail("Farkas entry cites a literal missing from the "
                      "lemma");
        auto It = Atoms.find(E.Ref >> 1);
        if (It == Atoms.end())
          return fail("Farkas entry cites an undefined atom");
        const LinAtom &A = *It->second;
        if (!(E.Ref & 1)) {
          // Atom true: Σc·v <= -Const.
          for (const auto &[V, Cf] : A.Coeffs)
            addAcc(V, M * KRat::make(Cf, 1));
          Rhs = Rhs + M * KRat::make(-A.Const, 1);
        } else {
          // Atom false: Σc·v >= 1-Const, i.e. -Σc·v <= Const-1.
          for (const auto &[V, Cf] : A.Coeffs)
            addAcc(V, M * KRat::make(-Cf, 1));
          Rhs = Rhs + M * KRat::make(A.Const - 1, 1);
        }
        break;
      }
      case FarkasEntry::Kind::VarBound: {
        auto It = Bounds.find(E.Ref);
        if (It == Bounds.end())
          return fail("Farkas entry cites unknown variable bounds");
        const VarBounds &B = *It->second;
        if (E.Upper) {
          if (!B.HasHi)
            return fail("Farkas entry cites a missing upper bound");
          addAcc(E.Ref, M);
          Rhs = Rhs + M * KRat::make(B.Hi, 1);
        } else {
          if (!B.HasLo)
            return fail("Farkas entry cites a missing lower bound");
          addAcc(E.Ref, KRat::make(-M.N, M.D));
          Rhs = Rhs + M * KRat::make(-B.Lo, 1);
        }
        break;
      }
      case FarkasEntry::Kind::Split: {
        if (E.Ref >= Path.size())
          return fail("Farkas entry cites a split off the tree path");
        const PathSplit &S = Path[E.Ref];
        if (!S.UpSide) {
          addAcc(S.Var, M);
          Rhs = Rhs + M * KRat::make(S.Floor, 1);
        } else {
          addAcc(S.Var, KRat::make(-M.N, M.D));
          Rhs = Rhs + M * KRat::make(-(S.Floor + 1), 1);
        }
        break;
      }
      }
    }
    for (const auto &[V, Coef] : Acc)
      if (!Coef.isZero())
        return fail("Farkas combination does not cancel variable " +
                    std::to_string(V));
    if (!Rhs.isNeg())
      return fail("Farkas combination is not contradictory (constant "
                  "not negative)");
    return true;
  }

  void addAcc(uint32_t Var, const KRat &Delta) {
    auto [It, Inserted] = Acc.emplace(Var, Delta);
    if (!Inserted)
      It->second = It->second + Delta;
  }

  const QfProof &P;
  CheckStats &Stats;
  Replayer R;
  std::string Err;
  std::unordered_map<uint32_t, const LinAtom *> Atoms;
  std::unordered_map<uint32_t, const VarBounds *> Bounds;
  std::set<uint32_t> LemmaLits;
  std::vector<bool> Visited;
  std::vector<PathSplit> Path;
  std::map<uint32_t, KRat> Acc;
};

} // namespace

CheckOutcome proof::checkQfProof(const QfProof &P) {
  CheckOutcome Out;
  QfChecker C(P, Out.Stats);
  Out.Ok = C.run(Out.Error);
  return Out;
}

CheckOutcome proof::checkCertificate(const Certificate &C) {
  CheckOutcome Out;
  if (!C.Complete) {
    Out.Error = "stabilization incomplete: the certificate cannot claim "
                "whole-problem unsatisfiability";
    return Out;
  }
  for (size_t I = 0; I < C.Disjuncts.size(); ++I) {
    const DisjunctCert &D = C.Disjuncts[I];
    if (D.IsRule) {
      if (D.Rule.empty()) {
        Out.Error = "disjunct " + std::to_string(I) + ": empty rule name";
        return Out;
      }
      ++Out.Stats.TrustedRules;
      continue;
    }
    QfChecker QC(D.Proof, Out.Stats);
    std::string Err;
    if (!QC.run(Err)) {
      Out.Error = "disjunct " + std::to_string(I) + ": " + Err;
      return Out;
    }
  }
  Out.Ok = true;
  return Out;
}
