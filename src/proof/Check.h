//===- proof/Check.h - Independent certificate checker kernel ----*- C++ -*-===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The proof-checking kernel behind `tools/postr_check` and the
/// in-process `POSTR_SELFCHECK=certify` gate. Deliberately independent
/// of the solver: it consumes only the parsed certificate structures
/// from `proof/Proof.h`, re-implements exact rational arithmetic and
/// unit propagation from scratch, and is small enough to audit. A
/// clause trace is accepted when every learnt clause passes reverse
/// unit propagation against the live clause DB, every theory lemma's
/// Farkas/branch-tree certificate re-evaluates to `0 <= negative`, and
/// the final refutation event conflicts under unit propagation.
///
//===----------------------------------------------------------------------===//

#ifndef POSTR_PROOF_CHECK_H
#define POSTR_PROOF_CHECK_H

#include "proof/Proof.h"

#include <cstdint>
#include <string>

namespace postr {
namespace proof {

/// Kernel activity counters, reported by `postr_check -v`.
struct CheckStats {
  uint32_t CheckedRefutations = 0; ///< disjuncts closed by a clause trace
  uint32_t TrustedRules = 0;       ///< disjuncts closed by a front-end rule
  uint64_t RupChecks = 0;          ///< clauses verified by propagation
  uint64_t FarkasLeaves = 0;       ///< Farkas combinations re-evaluated
};

struct CheckOutcome {
  bool Ok = false;
  std::string Error; ///< first rejection reason (empty when Ok)
  CheckStats Stats;
};

/// Verifies one disjunct clause trace end to end.
CheckOutcome checkQfProof(const QfProof &P);

/// Verifies a whole-problem certificate: stabilization must be
/// complete and every disjunct refuted (checked trace or named
/// structural rule).
CheckOutcome checkCertificate(const Certificate &C);

} // namespace proof
} // namespace postr

#endif // POSTR_PROOF_CHECK_H
