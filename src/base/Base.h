//===- base/Base.h - Common types and small utilities ----------*- C++ -*-===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared primitive types used across the PosTr library: alphabet symbols,
/// string-variable identifiers, and a tiny fallible-result helper used by
/// the exception-free parsers and solvers.
///
//===----------------------------------------------------------------------===//

#ifndef POSTR_BASE_BASE_H
#define POSTR_BASE_BASE_H

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace postr {

/// An alphabet symbol. Symbols are small dense integers; the frontend maps
/// source characters onto them and keeps a table for printing.
using Symbol = uint32_t;

/// Identifier of a string variable, dense per-problem.
using VarId = uint32_t;

/// Sentinel for "no variable".
inline constexpr VarId InvalidVar = ~VarId(0);

/// A word over the effective alphabet.
using Word = std::vector<Symbol>;

/// Three-valued solver verdict. `Unknown` is reported when an incomplete
/// path (e.g. non-flat ¬contains under-approximation) gives up, mirroring
/// the behaviour the paper reports for Z3-Noodler.
enum class Verdict { Sat, Unsat, Unknown };

/// Returns a printable name for a verdict.
inline const char *verdictName(Verdict V) {
  switch (V) {
  case Verdict::Sat:
    return "sat";
  case Verdict::Unsat:
    return "unsat";
  case Verdict::Unknown:
    return "unknown";
  }
  assert(false && "invalid verdict");
  return "?";
}

/// Minimal fallible result: either a value or a human-readable error.
/// PosTr library code does not use exceptions (see DESIGN.md), so parsers
/// and fallible constructors return `Result<T>`.
template <typename T> class Result {
public:
  /// Constructs a success value.
  static Result success(T Value) {
    Result R;
    R.HasValue = true;
    R.Value = std::move(Value);
    return R;
  }

  /// Constructs a failure carrying a diagnostic message.
  static Result failure(std::string Message) {
    Result R;
    R.HasValue = false;
    R.Message = std::move(Message);
    return R;
  }

  explicit operator bool() const { return HasValue; }

  const T &operator*() const {
    assert(HasValue && "dereferencing failed Result");
    return Value;
  }
  T &operator*() {
    assert(HasValue && "dereferencing failed Result");
    return Value;
  }
  const T *operator->() const { return &operator*(); }
  T *operator->() { return &operator*(); }

  /// Moves the contained value out; only valid on success.
  T take() {
    assert(HasValue && "taking from failed Result");
    return std::move(Value);
  }

  /// The diagnostic message; only valid on failure.
  const std::string &error() const {
    assert(!HasValue && "error() on successful Result");
    return Message;
  }

private:
  Result() = default;
  bool HasValue = false;
  T Value{};
  std::string Message;
};

/// Deterministic 64-bit mix suitable for seeding per-instance RNGs from
/// (family, index) pairs in the benchmark generators.
inline uint64_t hashCombine(uint64_t A, uint64_t B) {
  A ^= B + 0x9e3779b97f4a7c15ULL + (A << 6) + (A >> 2);
  return A;
}

} // namespace postr

#endif // POSTR_BASE_BASE_H
