//===- base/Budget.h - Cooperative resource governance ---------*- C++ -*-===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A single cooperative resource-governance token shared by every layer of
/// the solver stack. A `Budget` combines a wall-clock deadline, an explicit
/// memory-accounting cap (charged at the growth sites: NFA state and
/// transition vectors, subset-construction maps, tableau rows, the learnt
/// clause DB), a step budget, and a cooperative cancellation flag. Layers
/// poll it through the amortized `checkpoint()` probe at loop heads; once
/// any limit trips, the first reason wins and every later probe answers
/// "stop". The trip reason surfaces as a structured `StopReason` on
/// `Verdict::Unknown` results so callers can tell a timeout from a memory
/// cap from an external cancellation.
///
/// Deterministic fault injection rides on the same probes: when
/// `POSTR_FAULT_INJECT=<site>:<n>[:seed]` is set (or a `FaultInjector` is
/// armed programmatically), the n-th probe of the named site trips the
/// current budget with a seed-derived reason. Tests sweep every registered
/// site to prove each layer unwinds cleanly mid-flight.
///
//===----------------------------------------------------------------------===//

#ifndef POSTR_BASE_BUDGET_H
#define POSTR_BASE_BUDGET_H

#include "base/Base.h"

#include <atomic>
#include <chrono>
#include <cstddef>

namespace postr {

/// Why a solve stopped without a determinate verdict. `None` means the
/// verdict (including Unknown for incompleteness reasons, e.g. non-flat
/// ¬contains) was reached without exhausting any resource limit.
enum class StopReason : uint8_t {
  None = 0,
  /// The wall-clock deadline expired.
  Timeout,
  /// The external cancel flag was raised (pool loser, user interrupt).
  Cancelled,
  /// The memory-accounting cap was exceeded at a growth site.
  MemOut,
  /// The step budget (or an engine-internal work cap) ran out.
  StepBudget,
};

/// Printable name for a stop reason ("none", "timeout", ...).
const char *stopReasonName(StopReason R);

/// Shared cooperative budget token. One `Budget` is typically created per
/// top-level solve and threaded (as a non-owning pointer) through every
/// layer; the parallel disjunct pool derives one child budget per disjunct
/// so a single disjunct's MemOut does not kill its siblings.
///
/// Thread-safe: all mutation is on atomics; concurrent probes from pool
/// workers are fine.
class Budget {
public:
  using Clock = std::chrono::steady_clock;

  /// Construction-time limits; 0 / nullptr disables a dimension.
  struct Limits {
    /// Wall-clock allowance measured from construction, in ms.
    uint64_t TimeoutMs = 0;
    /// Cap on bytes charged via chargeMem().
    uint64_t MemLimitBytes = 0;
    /// Cap on abstract steps charged via checkpoint()/chargeSteps().
    uint64_t StepLimit = 0;
    /// Optional external cancel flag, polled on every checkpoint.
    const std::atomic<bool> *Cancel = nullptr;
    /// Optional parent budget, polled on every checkpoint: once the
    /// parent trips (for any reason), this budget trips with the same
    /// reason, so a stop propagates down arbitrarily nested children
    /// while first-reason-wins still holds at every level. The parent
    /// must outlive the child.
    const Budget *Parent = nullptr;
  };

  Budget() : Budget(Limits{}) {}
  explicit Budget(const Limits &L);

  Budget(const Budget &) = delete;
  Budget &operator=(const Budget &) = delete;

  /// The cheap probe. Returns true while work may continue, false once any
  /// limit has tripped. `Site` names the calling layer boundary (e.g.
  /// "nfa.determinize"); it keys fault injection and costs nothing when no
  /// injector is armed. Amortized: the cancel flag and trip state are one
  /// relaxed load each, the clock is consulted only every ~64th call.
  bool checkpoint(const char *Site);

  /// Charges \p Bytes against the memory cap; trips MemOut and returns
  /// false when the cap is exceeded. Callers charge at container growth
  /// sites, not per element.
  bool chargeMem(uint64_t Bytes);

  /// Charges \p N abstract steps against the step budget.
  bool chargeSteps(uint64_t N);

  /// Trips the budget with \p R; the first reason wins and later trips are
  /// ignored. Returns the reason that actually stuck.
  StopReason trip(StopReason R);

  /// True once any limit has tripped.
  bool exceeded() const { return Reason.load(std::memory_order_relaxed) != StopReason::None; }

  /// The first reason that tripped, or None.
  StopReason reason() const { return Reason.load(std::memory_order_relaxed); }

  /// Milliseconds left until the deadline; ~0ull when no deadline is set,
  /// 0 when it has passed. Used to distribute the remaining allowance to
  /// engines that still take a plain TimeoutMs.
  uint64_t remainingMs() const;

  /// Limits for a child budget derived from this one — the single place
  /// deadline-propagation math lives (serve request admission, the
  /// disjunct pool, degraded retries all call this instead of open-coding
  /// min/remaining juggling). The child's wall-clock allowance is the
  /// parent's remaining time intersected with \p CapMs (0 = no extra
  /// cap; a parent without a deadline contributes nothing, so the result
  /// is just CapMs). Memory/step limits are inherited unless \p MemBytes
  /// / \p Steps override them (nonzero = tighter of the two). The child
  /// carries \p Cancel and a Parent link back to this budget, so a trip
  /// anywhere up the chain stops the child at its next probe with the
  /// ancestor's reason.
  Limits childLimits(uint64_t CapMs = 0, uint64_t MemBytes = 0,
                     uint64_t Steps = 0,
                     const std::atomic<bool> *Cancel = nullptr) const;

  /// Bytes charged so far (testing / stats).
  uint64_t memCharged() const { return MemUsed.load(std::memory_order_relaxed); }

  const Limits &limits() const { return Lim; }

private:
  bool checkDeadline();

  Limits Lim;
  Clock::time_point Deadline{}; // valid iff Lim.TimeoutMs != 0
  std::atomic<StopReason> Reason{StopReason::None};
  std::atomic<uint64_t> MemUsed{0};
  std::atomic<uint64_t> StepsUsed{0};
  std::atomic<uint32_t> ProbeCount{0};
};

/// Deterministic fault injection: arms the n-th probe of one named site to
/// trip the current budget with a reason derived from (seed, site). Armed
/// globally (one injector process-wide); the unarmed fast path in
/// `Budget::checkpoint` is a single relaxed pointer load.
class FaultInjector {
public:
  /// \p Site must match a name from faultSiteNames(); \p Nth is 1-based
  /// (the Nth probe of that site trips); \p Seed selects the injected
  /// reason deterministically.
  FaultInjector(const char *Site, uint64_t Nth, uint64_t Seed);

  /// Number of times the armed site has fired (i.e. actually tripped a
  /// budget). The sweep test asserts every site fires at least once.
  uint64_t fired() const { return Fired.load(std::memory_order_relaxed); }

  /// Number of probes of the armed site observed so far.
  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }

  /// The reason this injector trips with (derived from seed and site).
  StopReason reason() const { return Inject; }

  /// Installs \p I as the process-wide injector (nullptr disarms).
  static void arm(FaultInjector *I);

  /// The currently armed injector, if any.
  static FaultInjector *armed();

  /// Called from Budget::checkpoint when an injector is armed. Returns the
  /// reason to trip with, or None to continue.
  StopReason onProbe(const char *Site);

private:
  const char *Site;
  uint64_t Nth;
  StopReason Inject;
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Fired{0};
};

/// Registered probe-site names, for sweep tests and diagnostics. Every
/// `checkpoint(Site)` literal in the sources must appear here (asserted by
/// the fault-injection sweep).
const std::vector<const char *> &faultSiteNames();

/// Parses `POSTR_FAULT_INJECT=<site>:<n>[:seed]` once per process and arms
/// the resulting injector. Called lazily from the first checkpoint; exposed
/// for tests that want to force the parse early. Returns the armed injector
/// or nullptr.
FaultInjector *faultInjectorFromEnv();

} // namespace postr

#endif // POSTR_BASE_BUDGET_H
