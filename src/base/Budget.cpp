//===- base/Budget.cpp - Cooperative resource governance -------------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "base/Budget.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

namespace postr {

const char *stopReasonName(StopReason R) {
  switch (R) {
  case StopReason::None:
    return "none";
  case StopReason::Timeout:
    return "timeout";
  case StopReason::Cancelled:
    return "cancelled";
  case StopReason::MemOut:
    return "memout";
  case StopReason::StepBudget:
    return "stepbudget";
  }
  assert(false && "invalid stop reason");
  return "?";
}

namespace {

std::atomic<FaultInjector *> ArmedInjector{nullptr};
std::once_flag EnvInjectorOnce;
std::unique_ptr<FaultInjector> EnvInjector;

} // namespace

Budget::Budget(const Limits &L) : Lim(L) {
  if (Lim.TimeoutMs)
    Deadline = Clock::now() + std::chrono::milliseconds(Lim.TimeoutMs);
  // Budgets are created per solve, never on a hot path, so this is the
  // cheapest place to make the env-configured injector available before
  // the first probe (checkpoint itself stays a relaxed load).
  std::call_once(EnvInjectorOnce, [] { faultInjectorFromEnv(); });
}

bool Budget::checkpoint(const char *Site) {
  if (FaultInjector *I = ArmedInjector.load(std::memory_order_relaxed)) {
    StopReason R = I->onProbe(Site);
    if (R != StopReason::None)
      trip(R);
  }
  if (exceeded())
    return false;
  if (Lim.Cancel && Lim.Cancel->load(std::memory_order_relaxed)) {
    trip(StopReason::Cancelled);
    return false;
  }
  // Walk the whole ancestor chain: a budget two levels down still stops
  // when the root trips, even if the intermediate budget never probes.
  for (const Budget *P = Lim.Parent; P; P = P->Lim.Parent)
    if (P->exceeded()) {
      trip(P->reason());
      return false;
    }
  if (Lim.StepLimit && !chargeSteps(1))
    return false;
  if (Lim.TimeoutMs) {
    // Amortize the clock read: callers already probe at loop heads (often
    // themselves strided), so one deadline check per ~64 probes keeps the
    // syscall entirely off the hot path.
    uint32_t P = ProbeCount.fetch_add(1, std::memory_order_relaxed);
    if ((P & 63u) == 63u && !checkDeadline())
      return false;
  }
  return true;
}

bool Budget::checkDeadline() {
  if (Clock::now() >= Deadline) {
    trip(StopReason::Timeout);
    return false;
  }
  return true;
}

bool Budget::chargeMem(uint64_t Bytes) {
  if (!Lim.MemLimitBytes)
    return !exceeded();
  uint64_t Used =
      MemUsed.fetch_add(Bytes, std::memory_order_relaxed) + Bytes;
  if (Used > Lim.MemLimitBytes) {
    trip(StopReason::MemOut);
    return false;
  }
  return !exceeded();
}

bool Budget::chargeSteps(uint64_t N) {
  if (!Lim.StepLimit)
    return !exceeded();
  uint64_t Used = StepsUsed.fetch_add(N, std::memory_order_relaxed) + N;
  if (Used > Lim.StepLimit) {
    trip(StopReason::StepBudget);
    return false;
  }
  return !exceeded();
}

StopReason Budget::trip(StopReason R) {
  StopReason Expected = StopReason::None;
  Reason.compare_exchange_strong(Expected, R, std::memory_order_relaxed);
  return Reason.load(std::memory_order_relaxed);
}

Budget::Limits Budget::childLimits(uint64_t CapMs, uint64_t MemBytes,
                                   uint64_t Steps,
                                   const std::atomic<bool> *Cancel) const {
  Limits L;
  uint64_t Left = remainingMs();
  if (Left == ~0ull)
    L.TimeoutMs = CapMs;
  else {
    // Clamp to >= 1 so a nearly-expired parent still yields a deadline
    // (TimeoutMs == 0 would mean "none" and unbound the child).
    Left = Left > 1 ? Left : 1;
    L.TimeoutMs = CapMs ? std::min(CapMs, Left) : Left;
  }
  uint64_t PMem = Lim.MemLimitBytes, PSteps = Lim.StepLimit;
  L.MemLimitBytes =
      MemBytes && PMem ? std::min(MemBytes, PMem) : (MemBytes ? MemBytes : PMem);
  L.StepLimit =
      Steps && PSteps ? std::min(Steps, PSteps) : (Steps ? Steps : PSteps);
  L.Cancel = Cancel;
  L.Parent = this;
  return L;
}

uint64_t Budget::remainingMs() const {
  if (!Lim.TimeoutMs)
    return ~0ull;
  auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  Deadline - Clock::now())
                  .count();
  return Left > 0 ? static_cast<uint64_t>(Left) : 0;
}

//===----------------------------------------------------------------------===//
// Fault injection
//===----------------------------------------------------------------------===//

const std::vector<const char *> &faultSiteNames() {
  static const std::vector<const char *> Sites = {
      "nfa.intersect",  "nfa.determinize",  "nfa.epsilon",
      "eq.stabilize",   "tagaut.encode",    "tagaut.parikh",
      "lia.sat",        "lia.simplex",      "lia.mbqi",
      "solver.disjunct", "solver.enum",     "solver.bruteforce",
  };
  return Sites;
}

FaultInjector::FaultInjector(const char *Site, uint64_t Nth, uint64_t Seed)
    : Site(Site), Nth(Nth ? Nth : 1) {
  // Deterministic reason choice: hash the site name into the seed so the
  // same seed exercises different reasons across sites.
  uint64_t H = Seed;
  for (const char *C = Site; *C; ++C)
    H = hashCombine(H, static_cast<uint64_t>(*C));
  static const StopReason Reasons[] = {StopReason::Timeout,
                                       StopReason::Cancelled,
                                       StopReason::MemOut,
                                       StopReason::StepBudget};
  Inject = Reasons[H % 4];
}

void FaultInjector::arm(FaultInjector *I) {
  ArmedInjector.store(I, std::memory_order_relaxed);
}

FaultInjector *FaultInjector::armed() {
  return ArmedInjector.load(std::memory_order_relaxed);
}

StopReason FaultInjector::onProbe(const char *ProbeSite) {
  if (std::strcmp(ProbeSite, Site) != 0)
    return StopReason::None;
  uint64_t H = Hits.fetch_add(1, std::memory_order_relaxed) + 1;
  if (H != Nth)
    return StopReason::None;
  Fired.fetch_add(1, std::memory_order_relaxed);
  return Inject;
}

FaultInjector *faultInjectorFromEnv() {
  const char *Spec = std::getenv("POSTR_FAULT_INJECT");
  if (!Spec || !*Spec)
    return nullptr;
  // Format: <site>:<n>[:seed]
  std::string S(Spec);
  size_t C1 = S.find(':');
  if (C1 == std::string::npos) {
    std::fprintf(stderr,
                 "POSTR_FAULT_INJECT: expected <site>:<n>[:seed], got %s\n",
                 Spec);
    return nullptr;
  }
  std::string SiteName = S.substr(0, C1);
  size_t C2 = S.find(':', C1 + 1);
  uint64_t Nth = std::strtoull(S.c_str() + C1 + 1, nullptr, 10);
  uint64_t Seed = 0;
  if (C2 != std::string::npos)
    Seed = std::strtoull(S.c_str() + C2 + 1, nullptr, 10);
  const char *Canonical = nullptr;
  for (const char *Known : faultSiteNames())
    if (SiteName == Known) {
      Canonical = Known;
      break;
    }
  if (!Canonical) {
    std::fprintf(stderr, "POSTR_FAULT_INJECT: unknown site %s\n",
                 SiteName.c_str());
    return nullptr;
  }
  EnvInjector = std::make_unique<FaultInjector>(Canonical, Nth, Seed);
  FaultInjector::arm(EnvInjector.get());
  return EnvInjector.get();
}

} // namespace postr
