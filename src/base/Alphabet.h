//===- base/Alphabet.h - Character-to-symbol interning ----------*- C++ -*-===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The effective alphabet Γ of a problem instance. Source characters are
/// interned into dense `Symbol` values; the solver additionally reserves
/// fresh sentinel symbols that occur in no input constraint, which is what
/// makes disequalities over "all mentioned characters" satisfiable the way
/// SMT-LIB string semantics require, and what implements the padding
/// symbol □ of Lemma B.1.
///
//===----------------------------------------------------------------------===//

#ifndef POSTR_BASE_ALPHABET_H
#define POSTR_BASE_ALPHABET_H

#include "base/Base.h"

#include <array>
#include <optional>
#include <string>
#include <string_view>

namespace postr {

/// Interns characters as dense symbols; also mints nameless fresh symbols.
class Alphabet {
public:
  Alphabet() { CharToSym.fill(~Symbol(0)); }

  /// Interns \p C, returning its symbol (stable across calls).
  Symbol intern(char C) {
    unsigned char U = static_cast<unsigned char>(C);
    if (CharToSym[U] != ~Symbol(0))
      return CharToSym[U];
    Symbol S = static_cast<Symbol>(SymToChar.size());
    CharToSym[U] = S;
    SymToChar.push_back(static_cast<int>(U));
    return S;
  }

  /// Interns every character of \p Text and returns the resulting word.
  Word internWord(std::string_view Text) {
    Word W;
    W.reserve(Text.size());
    for (char C : Text)
      W.push_back(intern(C));
    return W;
  }

  /// Mints a symbol with no character representation. Used for the
  /// disequality-witness sentinel and the Lemma B.1 padding symbol.
  Symbol freshSymbol() {
    Symbol S = static_cast<Symbol>(SymToChar.size());
    SymToChar.push_back(-1);
    return S;
  }

  /// Looks up the symbol of \p C if already interned.
  std::optional<Symbol> lookup(char C) const {
    Symbol S = CharToSym[static_cast<unsigned char>(C)];
    if (S == ~Symbol(0))
      return std::nullopt;
    return S;
  }

  /// Number of symbols interned so far (= the alphabet size for automata).
  uint32_t size() const { return static_cast<uint32_t>(SymToChar.size()); }

  /// True if \p S has a character representation.
  bool hasChar(Symbol S) const { return SymToChar[S] >= 0; }

  /// The character of \p S; asserts that it has one.
  char charOf(Symbol S) const {
    assert(S < size() && SymToChar[S] >= 0 && "symbol has no character");
    return static_cast<char>(SymToChar[S]);
  }

  /// Renders a word; fresh symbols print as `<#N>`.
  std::string render(const Word &W) const {
    std::string Out;
    for (Symbol S : W) {
      if (hasChar(S)) {
        Out.push_back(charOf(S));
      } else {
        Out += "<#";
        Out += std::to_string(S);
        Out += ">";
      }
    }
    return Out;
  }

private:
  std::array<Symbol, 256> CharToSym;
  std::vector<int> SymToChar; ///< -1 for nameless fresh symbols.
};

} // namespace postr

#endif // POSTR_BASE_ALPHABET_H
