//===- base/Hash.h - Hash functors for interning tables ----------*- C++ -*-===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hash functors used by the interning tables on the automata and LIA hot
/// paths (product/determinize state maps, Simplex slack-term map, DPLL(T)
/// atom map). All are built on a single splitmix64-style mixer, which is
/// cheap, statelessly seedable, and good enough for the dense integer
/// keys these tables see.
///
//===----------------------------------------------------------------------===//

#ifndef POSTR_BASE_HASH_H
#define POSTR_BASE_HASH_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace postr {

/// splitmix64 finalizer: a fast full-avalanche 64-bit mixer.
inline uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// Hash of a run of 64-bit words (sequence-length seeded).
inline uint64_t hashWords(const uint64_t *Begin, size_t N) {
  uint64_t H = mix64(N);
  for (size_t I = 0; I < N; ++I)
    H = mix64(H ^ Begin[I]);
  return H;
}

/// Hash functor for std::vector of a 32-bit integral type (determinize
/// subset keys).
struct U32VecHash {
  size_t operator()(const std::vector<uint32_t> &V) const {
    uint64_t H = mix64(V.size());
    for (uint32_t X : V)
      H = mix64(H ^ X);
    return static_cast<size_t>(H);
  }
};

/// Hash functor for the canonical linear-term key used by the Simplex
/// slack interning and the DPLL(T) atom map: a sorted, zero-free
/// (variable, coefficient) vector.
struct TermKeyHash {
  size_t operator()(const std::vector<std::pair<uint32_t, int64_t>> &V) const {
    uint64_t H = mix64(V.size());
    for (const auto &[Var, Coeff] : V) {
      H = mix64(H ^ Var);
      H = mix64(H ^ static_cast<uint64_t>(Coeff));
    }
    return static_cast<size_t>(H);
  }
};

/// Hash functor for (term key, constant) pairs — the atom identity of the
/// DPLL(T) engine.
struct AtomKeyHash {
  size_t operator()(
      const std::pair<std::vector<std::pair<uint32_t, int64_t>>, int64_t> &K)
      const {
    return static_cast<size_t>(
        mix64(TermKeyHash()(K.first) ^ static_cast<uint64_t>(K.second)));
  }
};

} // namespace postr

#endif // POSTR_BASE_HASH_H
