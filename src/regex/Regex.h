//===- regex/Regex.h - Regular expression frontend --------------*- C++ -*-===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small regular-expression frontend used to state the regular
/// membership constraints R of the paper's normal form E ∧ R ∧ I ∧ P.
///
/// Supported syntax: literals, escapes (\x), `.` (any alphabet symbol),
/// character classes `[a-z0-9]` and negated classes `[^...]`,
/// concatenation, alternation `|`, grouping `(...)`, and the postfix
/// operators `*`, `+`, `?`, `{n}`, `{n,m}`.
///
/// Parsing yields an AST; compilation against a closed `Alphabet` yields
/// a Thompson NFA. The split matters: `.` and negated classes depend on
/// the *effective* alphabet of the whole problem (including the fresh
/// sentinel symbols), which is only known after every constraint has been
/// collected.
///
//===----------------------------------------------------------------------===//

#ifndef POSTR_REGEX_REGEX_H
#define POSTR_REGEX_REGEX_H

#include "base/Alphabet.h"
#include "base/Base.h"
#include "automata/Nfa.h"

#include <memory>
#include <string_view>
#include <vector>

namespace postr {
namespace regex {

/// Regex AST node kinds.
enum class NodeKind {
  Empty,    ///< The empty language ∅ (only via internal construction).
  EpsilonK, ///< The language {ε}.
  Chars,    ///< A character class (possibly a single literal).
  AnyChar,  ///< `.` — any symbol of the effective alphabet.
  Concat,   ///< Sequence of children.
  Union,    ///< Alternation of children.
  Star,     ///< Kleene star of the single child.
  Plus,     ///< One or more repetitions of the single child.
  Optional, ///< Zero or one occurrence of the single child.
  Repeat,   ///< Between Min and Max (or unbounded) repetitions.
};

struct Node;
using NodePtr = std::unique_ptr<Node>;

/// One regex AST node. Plain aggregate; built by the parser or the
/// convenience constructors below.
struct Node {
  NodeKind Kind;
  std::vector<NodePtr> Children;
  /// For Chars: the matched characters; for negated classes the
  /// complement is taken at compile time against the effective alphabet.
  std::vector<char> Chars;
  bool Negated = false;
  /// For Repeat: Min..Max occurrences; Max == -1 means unbounded.
  int Min = 0;
  int Max = 0;

  explicit Node(NodeKind K) : Kind(K) {}
};

/// Parses \p Text; returns the AST or a diagnostic with column info.
Result<NodePtr> parse(std::string_view Text);

/// Interns every literal character the AST mentions into \p Sigma.
/// Must be called for all regexes of a problem before any compile().
void collectAlphabet(const Node &N, Alphabet &Sigma);

/// Compiles the AST into an ε-free trimmed NFA over the (closed) alphabet.
automata::Nfa compile(const Node &N, const Alphabet &Sigma);

/// Convenience: parse + collect + compile in one step for tests and
/// examples that manage a single regex. Asserts on parse errors.
automata::Nfa compileString(std::string_view Text, Alphabet &Sigma);

} // namespace regex
} // namespace postr

#endif // POSTR_REGEX_REGEX_H
