//===- regex/Regex.cpp - Regex parsing and Thompson compilation ----------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "regex/Regex.h"

#include <algorithm>

using namespace postr;
using namespace postr::regex;
using automata::Nfa;
using automata::State;

namespace {

/// Recursive-descent regex parser. Grammar:
///   union  := concat ('|' concat)*
///   concat := repeat*
///   repeat := atom ('*' | '+' | '?' | '{' n (',' m?)? '}')*
///   atom   := literal | '.' | class | '(' union ')'
class Parser {
public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  Result<NodePtr> run() {
    Result<NodePtr> R = parseUnion();
    if (!R)
      return R;
    if (Pos != Text.size())
      return fail("unexpected character");
    return R;
  }

private:
  Result<NodePtr> fail(const std::string &Msg) {
    return Result<NodePtr>::failure("regex error at column " +
                                    std::to_string(Pos + 1) + ": " + Msg);
  }

  bool atEnd() const { return Pos >= Text.size(); }
  char peek() const { return Text[Pos]; }
  char take() { return Text[Pos++]; }

  Result<NodePtr> parseUnion() {
    Result<NodePtr> First = parseConcat();
    if (!First)
      return First;
    if (atEnd() || peek() != '|')
      return First;
    auto U = std::make_unique<Node>(NodeKind::Union);
    U->Children.push_back(First.take());
    while (!atEnd() && peek() == '|') {
      take();
      Result<NodePtr> Next = parseConcat();
      if (!Next)
        return Next;
      U->Children.push_back(Next.take());
    }
    return Result<NodePtr>::success(std::move(U));
  }

  Result<NodePtr> parseConcat() {
    auto C = std::make_unique<Node>(NodeKind::Concat);
    while (!atEnd() && peek() != '|' && peek() != ')') {
      Result<NodePtr> R = parseRepeat();
      if (!R)
        return R;
      C->Children.push_back(R.take());
    }
    if (C->Children.empty())
      return Result<NodePtr>::success(std::make_unique<Node>(
          NodeKind::EpsilonK));
    if (C->Children.size() == 1)
      return Result<NodePtr>::success(std::move(C->Children.front()));
    return Result<NodePtr>::success(std::move(C));
  }

  Result<NodePtr> parseRepeat() {
    Result<NodePtr> AtomR = parseAtom();
    if (!AtomR)
      return AtomR;
    NodePtr N = AtomR.take();
    while (!atEnd()) {
      char C = peek();
      if (C == '*' || C == '+' || C == '?') {
        take();
        NodeKind K = C == '*'   ? NodeKind::Star
                     : C == '+' ? NodeKind::Plus
                                : NodeKind::Optional;
        auto Wrap = std::make_unique<Node>(K);
        Wrap->Children.push_back(std::move(N));
        N = std::move(Wrap);
        continue;
      }
      if (C == '{') {
        take();
        int Min = 0;
        bool AnyDigit = false;
        while (!atEnd() && peek() >= '0' && peek() <= '9') {
          Min = Min * 10 + (take() - '0');
          AnyDigit = true;
        }
        if (!AnyDigit)
          return fail("expected repetition count after '{'");
        int Max = Min;
        if (!atEnd() && peek() == ',') {
          take();
          if (!atEnd() && peek() == '}') {
            Max = -1; // unbounded
          } else {
            Max = 0;
            while (!atEnd() && peek() >= '0' && peek() <= '9')
              Max = Max * 10 + (take() - '0');
            if (Max < Min)
              return fail("repetition max below min");
          }
        }
        if (atEnd() || take() != '}')
          return fail("expected '}' closing repetition");
        auto Wrap = std::make_unique<Node>(NodeKind::Repeat);
        Wrap->Min = Min;
        Wrap->Max = Max;
        Wrap->Children.push_back(std::move(N));
        N = std::move(Wrap);
        continue;
      }
      break;
    }
    return Result<NodePtr>::success(std::move(N));
  }

  Result<NodePtr> parseAtom() {
    if (atEnd())
      return fail("expected atom");
    char C = take();
    switch (C) {
    case '(': {
      Result<NodePtr> Inner = parseUnion();
      if (!Inner)
        return Inner;
      if (atEnd() || take() != ')')
        return fail("expected ')'");
      return Inner;
    }
    case '.':
      return Result<NodePtr>::success(std::make_unique<Node>(
          NodeKind::AnyChar));
    case '[':
      return parseClass();
    case '\\': {
      if (atEnd())
        return fail("dangling escape");
      auto N = std::make_unique<Node>(NodeKind::Chars);
      N->Chars.push_back(take());
      return Result<NodePtr>::success(std::move(N));
    }
    case '*':
    case '+':
    case '?':
    case '{':
    case '}':
    case ')':
    case '|':
      return fail(std::string("unexpected '") + C + "'");
    default: {
      auto N = std::make_unique<Node>(NodeKind::Chars);
      N->Chars.push_back(C);
      return Result<NodePtr>::success(std::move(N));
    }
    }
  }

  Result<NodePtr> parseClass() {
    auto N = std::make_unique<Node>(NodeKind::Chars);
    if (!atEnd() && peek() == '^') {
      take();
      N->Negated = true;
    }
    bool Any = false;
    while (!atEnd() && peek() != ']') {
      char Lo = take();
      if (Lo == '\\') {
        if (atEnd())
          return fail("dangling escape in class");
        Lo = take();
      }
      char Hi = Lo;
      if (!atEnd() && peek() == '-' && Pos + 1 < Text.size() &&
          Text[Pos + 1] != ']') {
        take(); // '-'
        Hi = take();
        if (Hi == '\\') {
          if (atEnd())
            return fail("dangling escape in class");
          Hi = take();
        }
        if (Hi < Lo)
          return fail("inverted character range");
      }
      for (char X = Lo;; ++X) {
        N->Chars.push_back(X);
        if (X == Hi)
          break;
      }
      Any = true;
    }
    if (atEnd() || take() != ']')
      return fail("expected ']'");
    if (!Any)
      return fail("empty character class");
    std::sort(N->Chars.begin(), N->Chars.end());
    N->Chars.erase(std::unique(N->Chars.begin(), N->Chars.end()),
                   N->Chars.end());
    return Result<NodePtr>::success(std::move(N));
  }

  std::string_view Text;
  size_t Pos = 0;
};

/// Thompson-style compiler producing an NFA fragment with one entry and
/// one exit state, linked with ε-transitions; the caller removes ε at the
/// end.
class Compiler {
public:
  Compiler(const Alphabet &Sigma, Nfa &Out) : Sigma(Sigma), Out(Out) {}

  struct Fragment {
    State Entry;
    State Exit;
  };

  Fragment build(const Node &N) {
    switch (N.Kind) {
    case NodeKind::Empty: {
      Fragment F{Out.addState(), Out.addState()};
      return F; // no connection: empty language
    }
    case NodeKind::EpsilonK: {
      Fragment F{Out.addState(), Out.addState()};
      Out.addTransition(F.Entry, Nfa::Epsilon, F.Exit);
      return F;
    }
    case NodeKind::Chars: {
      Fragment F{Out.addState(), Out.addState()};
      for (Symbol S : classSymbols(N))
        Out.addTransition(F.Entry, S, F.Exit);
      return F;
    }
    case NodeKind::AnyChar: {
      Fragment F{Out.addState(), Out.addState()};
      for (Symbol S = 0; S < Sigma.size(); ++S)
        Out.addTransition(F.Entry, S, F.Exit);
      return F;
    }
    case NodeKind::Concat: {
      assert(!N.Children.empty());
      Fragment F = build(*N.Children.front());
      for (size_t I = 1; I < N.Children.size(); ++I) {
        Fragment G = build(*N.Children[I]);
        Out.addTransition(F.Exit, Nfa::Epsilon, G.Entry);
        F.Exit = G.Exit;
      }
      return F;
    }
    case NodeKind::Union: {
      Fragment F{Out.addState(), Out.addState()};
      for (const NodePtr &C : N.Children) {
        Fragment G = build(*C);
        Out.addTransition(F.Entry, Nfa::Epsilon, G.Entry);
        Out.addTransition(G.Exit, Nfa::Epsilon, F.Exit);
      }
      return F;
    }
    case NodeKind::Star: {
      Fragment Inner = build(*N.Children.front());
      Fragment F{Out.addState(), Out.addState()};
      Out.addTransition(F.Entry, Nfa::Epsilon, F.Exit);
      Out.addTransition(F.Entry, Nfa::Epsilon, Inner.Entry);
      Out.addTransition(Inner.Exit, Nfa::Epsilon, Inner.Entry);
      Out.addTransition(Inner.Exit, Nfa::Epsilon, F.Exit);
      return F;
    }
    case NodeKind::Plus: {
      Fragment Inner = build(*N.Children.front());
      Fragment F{Out.addState(), Out.addState()};
      Out.addTransition(F.Entry, Nfa::Epsilon, Inner.Entry);
      Out.addTransition(Inner.Exit, Nfa::Epsilon, Inner.Entry);
      Out.addTransition(Inner.Exit, Nfa::Epsilon, F.Exit);
      return F;
    }
    case NodeKind::Optional: {
      Fragment Inner = build(*N.Children.front());
      Fragment F{Out.addState(), Out.addState()};
      Out.addTransition(F.Entry, Nfa::Epsilon, Inner.Entry);
      Out.addTransition(Inner.Exit, Nfa::Epsilon, F.Exit);
      Out.addTransition(F.Entry, Nfa::Epsilon, F.Exit);
      return F;
    }
    case NodeKind::Repeat: {
      // Expand {n,m} structurally: n mandatory copies followed by either
      // (m-n) optional copies or a star for the unbounded case.
      Fragment F{Out.addState(), Out.addState()};
      State Cursor = F.Entry;
      for (int I = 0; I < N.Min; ++I) {
        Fragment G = build(*N.Children.front());
        Out.addTransition(Cursor, Nfa::Epsilon, G.Entry);
        Cursor = G.Exit;
      }
      if (N.Max == -1) {
        Fragment G = build(*N.Children.front());
        Out.addTransition(Cursor, Nfa::Epsilon, G.Entry);
        Out.addTransition(G.Exit, Nfa::Epsilon, G.Entry);
        Out.addTransition(G.Exit, Nfa::Epsilon, F.Exit);
        Out.addTransition(Cursor, Nfa::Epsilon, F.Exit);
      } else {
        for (int I = N.Min; I < N.Max; ++I) {
          Out.addTransition(Cursor, Nfa::Epsilon, F.Exit);
          Fragment G = build(*N.Children.front());
          Out.addTransition(Cursor, Nfa::Epsilon, G.Entry);
          Cursor = G.Exit;
        }
        Out.addTransition(Cursor, Nfa::Epsilon, F.Exit);
      }
      return F;
    }
    }
    assert(false && "unhandled regex node kind");
    return {0, 0};
  }

private:
  std::vector<Symbol> classSymbols(const Node &N) const {
    assert(N.Kind == NodeKind::Chars);
    std::vector<Symbol> Syms;
    if (!N.Negated) {
      for (char C : N.Chars) {
        std::optional<Symbol> S = Sigma.lookup(C);
        assert(S && "class character not interned; call collectAlphabet");
        Syms.push_back(*S);
      }
      return Syms;
    }
    // Negated class: all effective-alphabet symbols except the listed
    // ones; fresh sentinel symbols are included, matching the intended
    // "any other character" semantics.
    std::vector<bool> Excluded(Sigma.size(), false);
    for (char C : N.Chars)
      if (std::optional<Symbol> S = Sigma.lookup(C))
        Excluded[*S] = true;
    for (Symbol S = 0; S < Sigma.size(); ++S)
      if (!Excluded[S])
        Syms.push_back(S);
    return Syms;
  }

  const Alphabet &Sigma;
  Nfa &Out;
};

} // namespace

Result<NodePtr> postr::regex::parse(std::string_view Text) {
  return Parser(Text).run();
}

void postr::regex::collectAlphabet(const Node &N, Alphabet &Sigma) {
  if (N.Kind == NodeKind::Chars && !N.Negated)
    for (char C : N.Chars)
      Sigma.intern(C);
  if (N.Kind == NodeKind::Chars && N.Negated)
    for (char C : N.Chars)
      Sigma.intern(C);
  for (const NodePtr &C : N.Children)
    collectAlphabet(*C, Sigma);
}

Nfa postr::regex::compile(const Node &N, const Alphabet &Sigma) {
  Nfa Out(Sigma.size());
  Compiler C(Sigma, Out);
  Compiler::Fragment F = C.build(N);
  Out.markInitial(F.Entry);
  Out.markFinal(F.Exit);
  return Out.removeEpsilon();
}

Nfa postr::regex::compileString(std::string_view Text, Alphabet &Sigma) {
  Result<NodePtr> R = parse(Text);
  assert(R && "compileString: regex failed to parse");
  collectAlphabet(**R, Sigma);
  return compile(**R, Sigma);
}
