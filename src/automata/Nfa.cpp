//===- automata/Nfa.cpp - NFA algorithms ----------------------------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "automata/Nfa.h"

#include "base/Budget.h"
#include "base/Hash.h"

#include <algorithm>
#include <deque>
#include <queue>
#include <sstream>
#include <unordered_map>

using namespace postr;
using namespace postr::automata;

namespace {

/// Growth-charging probe for the worklist constructions: charges the
/// output automaton's growth since the last probe against the budget's
/// memory cap, then runs the cooperative checkpoint. Returns false when
/// the construction should stop and hand back its partial result.
struct GrowthProbe {
  Budget *Bud;
  const Nfa &Out;
  uint64_t SeenStates = 0, SeenTransitions = 0;

  bool operator()(const char *Site) {
    if (!Bud)
      return true;
    uint64_t Q = Out.numStates(), T = Out.numTransitions();
    if (Q > SeenStates || T > SeenTransitions) {
      // Per-state cost approximates the interning map node + flag bits;
      // the transition vector is charged at its element size.
      Bud->chargeMem((Q - SeenStates) * 64 +
                     (T - SeenTransitions) * sizeof(Transition));
      SeenStates = Q;
      SeenTransitions = T;
    }
    return Bud->checkpoint(Site);
  }
};

} // namespace

void Nfa::normalize() const {
  if (!Dirty && RowBegin.size() == numStates() + 1)
    return;
  std::sort(Delta.begin(), Delta.end());
  Delta.erase(std::unique(Delta.begin(), Delta.end()), Delta.end());
  RowBegin.assign(numStates() + 1, 0);
  for (const Transition &T : Delta)
    ++RowBegin[T.From + 1];
  for (uint32_t I = 1; I <= numStates(); ++I)
    RowBegin[I] += RowBegin[I - 1];
  Dirty = false;
}

std::pair<const Transition *, const Transition *>
Nfa::outgoing(State Q) const {
  normalize();
  const Transition *Base = Delta.data();
  return {Base + RowBegin[Q], Base + RowBegin[Q + 1]};
}

std::vector<State> Nfa::initialStates() const {
  std::vector<State> R;
  for (State Q = 0; Q < numStates(); ++Q)
    if (IsInitial[Q])
      R.push_back(Q);
  return R;
}

std::vector<State> Nfa::finalStates() const {
  std::vector<State> R;
  for (State Q = 0; Q < numStates(); ++Q)
    if (IsFinal[Q])
      R.push_back(Q);
  return R;
}

std::pair<const Transition *, const Transition *>
Nfa::outgoingSym(State Q, Symbol Sym) const {
  auto [Begin, End] = outgoing(Q);
  // Rows are sorted by (Sym, To); narrow to the Sym run.
  const Transition *Lo = std::lower_bound(
      Begin, End, Sym,
      [](const Transition &T, Symbol S) { return T.Sym < S; });
  const Transition *Hi = Lo;
  while (Hi != End && Hi->Sym == Sym)
    ++Hi;
  return {Lo, Hi};
}

void Nfa::epsClosureGrow(std::vector<State> &Set,
                         std::vector<uint32_t> &Mark, uint32_t Stamp) const {
  normalize();
  // The tail of Set doubles as the worklist.
  for (size_t I = 0; I < Set.size(); ++I) {
    auto [Begin, End] = outgoingSym(Set[I], Epsilon);
    for (const Transition *T = Begin; T != End; ++T)
      if (Mark[T->To] != Stamp) {
        Mark[T->To] = Stamp;
        Set.push_back(T->To);
      }
  }
}

std::vector<State> Nfa::epsClosure(const std::vector<State> &Set) const {
  std::vector<uint32_t> Mark(numStates(), 0);
  std::vector<State> Out;
  Out.reserve(Set.size());
  for (State Q : Set)
    if (Mark[Q] != 1) {
      Mark[Q] = 1;
      Out.push_back(Q);
    }
  epsClosureGrow(Out, Mark, 1);
  std::sort(Out.begin(), Out.end());
  return Out;
}

namespace {

/// Iterative Tarjan SCC. Returns the SCC id of each state; ids come out
/// in reverse topological order (every successor's SCC has a smaller
/// id), which is what both users rely on: the ε-closure memoization
/// below processes SCCs in increasing-id (successors-first) order, and
/// isFlat only needs the partition. With \p EpsOnly, only ε-transitions
/// are traversed (SCCs of the ε-subgraph).
std::vector<uint32_t> tarjanScc(const Nfa &A, uint32_t &NumSccs,
                                bool EpsOnly) {
  uint32_t N = A.numStates();
  std::vector<uint32_t> Index(N, ~0u), Low(N, 0), SccId(N, ~0u);
  std::vector<bool> OnStack(N, false);
  std::vector<State> Stack;
  uint32_t NextIndex = 0;
  NumSccs = 0;

  auto Edges = [&](State Q) {
    return EpsOnly ? A.outgoingSym(Q, Nfa::Epsilon) : A.outgoing(Q);
  };
  struct Frame {
    State Q;
    const Transition *It;
    const Transition *End;
  };
  std::vector<Frame> CallStack;
  for (State Root = 0; Root < N; ++Root) {
    if (Index[Root] != ~0u)
      continue;
    auto [B, E] = Edges(Root);
    Index[Root] = Low[Root] = NextIndex++;
    Stack.push_back(Root);
    OnStack[Root] = true;
    CallStack.push_back({Root, B, E});
    while (!CallStack.empty()) {
      Frame &F = CallStack.back();
      if (F.It != F.End) {
        State W = F.It->To;
        ++F.It;
        if (Index[W] == ~0u) {
          Index[W] = Low[W] = NextIndex++;
          Stack.push_back(W);
          OnStack[W] = true;
          auto [WB, WE] = Edges(W);
          CallStack.push_back({W, WB, WE});
        } else if (OnStack[W]) {
          Low[F.Q] = std::min(Low[F.Q], Index[W]);
        }
        continue;
      }
      if (Low[F.Q] == Index[F.Q]) {
        State W;
        do {
          W = Stack.back();
          Stack.pop_back();
          OnStack[W] = false;
          SccId[W] = NumSccs;
        } while (W != F.Q);
        ++NumSccs;
      }
      State Done = F.Q;
      CallStack.pop_back();
      if (!CallStack.empty())
        Low[CallStack.back().Q] =
            std::min(Low[CallStack.back().Q], Low[Done]);
    }
  }
  return SccId;
}

} // namespace

Nfa Nfa::removeEpsilon(Budget *Bud) const {
  if (!HasEps)
    return trim();
  normalize();
  uint32_t N = numStates();

  // Memoized ε-closures: states in one ε-SCC share a closure, and a
  // closure is the SCC's members plus the closures of its ε-successor
  // SCCs. Computing per SCC in reverse topological order shares all
  // closure work instead of redoing a DFS per state.
  uint32_t NumSccs = 0;
  std::vector<uint32_t> Scc = tarjanScc(*this, NumSccs, /*EpsOnly=*/true);
  std::vector<std::vector<State>> SccStates(NumSccs);
  for (State Q = 0; Q < N; ++Q)
    SccStates[Scc[Q]].push_back(Q);

  std::vector<std::vector<State>> Closure(NumSccs);
  std::vector<uint32_t> StateMark(N, ~0u);
  std::vector<uint32_t> SccMark(NumSccs, ~0u);
  for (uint32_t S = 0; S < NumSccs; ++S) {
    if (Bud && !Bud->checkpoint("nfa.epsilon"))
      return Nfa(AlphabetSz);
    std::vector<State> &Out = Closure[S];
    for (State Q : SccStates[S]) {
      StateMark[Q] = S;
      Out.push_back(Q);
    }
    SccMark[S] = S;
    for (State Q : SccStates[S]) {
      auto [Begin, End] = outgoingSym(Q, Epsilon);
      for (const Transition *T = Begin; T != End; ++T) {
        uint32_t Succ = Scc[T->To];
        if (SccMark[Succ] == S)
          continue;
        SccMark[Succ] = S;
        // Tarjan ids are reverse-topological, so Closure[Succ] is done.
        for (State C : Closure[Succ])
          if (StateMark[C] != S) {
            StateMark[C] = S;
            Out.push_back(C);
          }
      }
    }
    std::sort(Out.begin(), Out.end());
    if (Bud)
      Bud->chargeMem(Out.size() * sizeof(State));
  }

  Nfa Out(AlphabetSz);
  Out.addStates(N);
  GrowthProbe Probe{Bud, Out};
  // For every state, fold the ε-closure: symbol transitions of closure
  // members become direct transitions, and finality propagates backwards.
  for (State Q = 0; Q < N; ++Q) {
    if (!Probe("nfa.epsilon"))
      return Out;
    if (IsInitial[Q])
      Out.markInitial(Q);
    for (State C : Closure[Scc[Q]]) {
      if (IsFinal[C])
        Out.markFinal(Q);
      auto [Begin, End] = outgoing(C);
      for (const Transition *T = Begin; T != End; ++T)
        if (T->Sym != Epsilon)
          Out.addTransition(Q, T->Sym, T->To);
    }
  }
  return Out.trim();
}

Nfa Nfa::trim() const {
  normalize();
  // Forward reachability from initial states.
  std::vector<bool> Fwd(numStates(), false);
  std::vector<State> Stack;
  for (State Q = 0; Q < numStates(); ++Q)
    if (IsInitial[Q]) {
      Fwd[Q] = true;
      Stack.push_back(Q);
    }
  while (!Stack.empty()) {
    State Q = Stack.back();
    Stack.pop_back();
    auto [Begin, End] = outgoing(Q);
    for (const Transition *T = Begin; T != End; ++T)
      if (!Fwd[T->To]) {
        Fwd[T->To] = true;
        Stack.push_back(T->To);
      }
  }
  // Backward reachability from final states.
  std::vector<std::vector<State>> Pred(numStates());
  for (const Transition &T : Delta)
    Pred[T.To].push_back(T.From);
  std::vector<bool> Bwd(numStates(), false);
  for (State Q = 0; Q < numStates(); ++Q)
    if (IsFinal[Q]) {
      Bwd[Q] = true;
      Stack.push_back(Q);
    }
  while (!Stack.empty()) {
    State Q = Stack.back();
    Stack.pop_back();
    for (State P : Pred[Q])
      if (!Bwd[P]) {
        Bwd[P] = true;
        Stack.push_back(P);
      }
  }
  // Rebuild with surviving states only.
  std::vector<State> Map(numStates(), ~State(0));
  Nfa Out(AlphabetSz);
  for (State Q = 0; Q < numStates(); ++Q)
    if (Fwd[Q] && Bwd[Q]) {
      Map[Q] = Out.addState();
      if (IsInitial[Q])
        Out.markInitial(Map[Q]);
      if (IsFinal[Q])
        Out.markFinal(Map[Q]);
    }
  for (const Transition &T : Delta)
    if (Map[T.From] != ~State(0) && Map[T.To] != ~State(0))
      Out.addTransition(Map[T.From], T.Sym, Map[T.To]);
  return Out;
}

bool Nfa::isEmpty() const {
  Nfa T = trim();
  return T.finalStates().empty();
}

bool Nfa::accepts(const Word &W) const {
  normalize();
  // One stamped mark buffer shared by every step and ε-closure of the
  // run; per-symbol work is O(out-edges of the current set).
  std::vector<uint32_t> Mark(numStates(), 0);
  uint32_t Stamp = 1;
  std::vector<State> Cur, Next;
  for (State Q : initialStates()) {
    Mark[Q] = Stamp;
    Cur.push_back(Q);
  }
  if (HasEps)
    epsClosureGrow(Cur, Mark, Stamp);
  for (Symbol S : W) {
    ++Stamp;
    Next.clear();
    for (State Q : Cur) {
      auto [Begin, End] = outgoingSym(Q, S);
      for (const Transition *T = Begin; T != End; ++T)
        if (Mark[T->To] != Stamp) {
          Mark[T->To] = Stamp;
          Next.push_back(T->To);
        }
    }
    if (HasEps)
      epsClosureGrow(Next, Mark, Stamp);
    Cur.swap(Next);
    if (Cur.empty())
      return false;
  }
  for (State Q : Cur)
    if (IsFinal[Q])
      return true;
  return false;
}

std::optional<uint32_t> Nfa::shortestWordLength() const {
  std::optional<Word> W = someWord();
  if (!W)
    return std::nullopt;
  return static_cast<uint32_t>(W->size());
}

std::optional<Word> Nfa::someWord() const {
  normalize();
  // BFS over states; ε-edges cost 0, symbol edges cost 1. A plain BFS with
  // a deque (0/1 weights) yields a shortest accepted word.
  struct Item {
    State Q;
  };
  std::vector<int64_t> Dist(numStates(), -1);
  std::vector<std::pair<State, Symbol>> Parent(
      numStates(), {~State(0), Nfa::Epsilon});
  std::deque<State> Queue;
  for (State Q : initialStates()) {
    Dist[Q] = 0;
    Queue.push_back(Q);
  }
  while (!Queue.empty()) {
    State Q = Queue.front();
    Queue.pop_front();
    auto [Begin, End] = outgoing(Q);
    for (const Transition *T = Begin; T != End; ++T) {
      int64_t Cost = T->Sym == Epsilon ? 0 : 1;
      if (Dist[T->To] != -1 && Dist[T->To] <= Dist[Q] + Cost)
        continue;
      Dist[T->To] = Dist[Q] + Cost;
      Parent[T->To] = {Q, T->Sym};
      if (Cost == 0)
        Queue.push_front(T->To);
      else
        Queue.push_back(T->To);
    }
  }
  State Best = ~State(0);
  for (State Q : finalStates())
    if (Dist[Q] != -1 && (Best == ~State(0) || Dist[Q] < Dist[Best]))
      Best = Q;
  if (Best == ~State(0))
    return std::nullopt;
  Word W;
  for (State Q = Best; Parent[Q].first != ~State(0); Q = Parent[Q].first)
    if (Parent[Q].second != Epsilon)
      W.push_back(Parent[Q].second);
  std::reverse(W.begin(), W.end());
  return W;
}

std::vector<Word> Nfa::enumerateWords(uint32_t MaxLen) const {
  // Breadth-first over (word) with the NFA state-set as acceptance test;
  // prunes prefixes whose state-set is empty.
  std::vector<Word> Out;
  struct Item {
    Word W;
    std::vector<State> States;
  };
  std::queue<Item> Queue;
  Queue.push({{}, epsClosure(initialStates())});
  while (!Queue.empty()) {
    Item It = std::move(Queue.front());
    Queue.pop();
    bool Accepting = false;
    for (State Q : It.States)
      if (IsFinal[Q])
        Accepting = true;
    if (Accepting)
      Out.push_back(It.W);
    if (It.W.size() == MaxLen)
      continue;
    for (Symbol S = 0; S < AlphabetSz; ++S) {
      std::vector<State> Next;
      for (State Q : It.States) {
        auto [Begin, End] = outgoingSym(Q, S);
        for (const Transition *T = Begin; T != End; ++T)
          Next.push_back(T->To);
      }
      std::sort(Next.begin(), Next.end());
      Next.erase(std::unique(Next.begin(), Next.end()), Next.end());
      if (HasEps)
        Next = epsClosure(Next);
      if (Next.empty())
        continue;
      Word W2 = It.W;
      W2.push_back(S);
      Queue.push({std::move(W2), std::move(Next)});
    }
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}


bool Nfa::isFlat() const {
  Nfa T = trim();
  uint32_t NumSccs = 0;
  std::vector<uint32_t> Scc = tarjanScc(T, NumSccs, /*EpsOnly=*/false);
  // Count intra-SCC out-transitions per state and per SCC.
  std::vector<uint32_t> SccSize(NumSccs, 0);
  for (State Q = 0; Q < T.numStates(); ++Q)
    ++SccSize[Scc[Q]];
  std::vector<uint32_t> IntraOut(T.numStates(), 0);
  std::vector<uint32_t> IntraEdges(NumSccs, 0);
  bool HasSelfLoop = false;
  for (const Transition &Tr : T.transitions()) {
    if (Scc[Tr.From] != Scc[Tr.To])
      continue;
    ++IntraOut[Tr.From];
    ++IntraEdges[Scc[Tr.From]];
    if (Tr.From == Tr.To)
      HasSelfLoop = true;
  }
  (void)HasSelfLoop;
  // A trivial SCC (singleton, no self-loop) has 0 intra edges. A simple
  // cycle has exactly |SCC| intra edges and each member exactly one
  // intra-SCC outgoing transition (this also rules out parallel edges,
  // which would make two distinct runs share a Parikh image).
  for (State Q = 0; Q < T.numStates(); ++Q) {
    uint32_t Sz = SccSize[Scc[Q]];
    uint32_t Edges = IntraEdges[Scc[Q]];
    if (Edges == 0)
      continue; // trivial SCC member
    if (Edges != Sz || IntraOut[Q] != 1)
      return false;
  }
  // Also require that there are at least two distinct initial-state runs
  // only when they are distinguishable; with multiple initial states the
  // paper's run-based definition is taken structurally, so multiple
  // initials are allowed.
  return true;
}

std::string Nfa::debugString() const {
  std::ostringstream OS;
  OS << "Nfa(states=" << numStates() << ", sigma=" << AlphabetSz << ", I={";
  for (State Q : initialStates())
    OS << Q << ' ';
  OS << "}, F={";
  for (State Q : finalStates())
    OS << Q << ' ';
  OS << "}, delta=[";
  for (const Transition &T : transitions()) {
    OS << T.From << '-';
    if (T.Sym == Epsilon)
      OS << "eps";
    else
      OS << T.Sym;
    OS << "->" << T.To << ' ';
  }
  OS << "])";
  return OS.str();
}

Nfa Nfa::fromWord(uint32_t AlphabetSize, const Word &W) {
  Nfa A(AlphabetSize);
  State First = A.addStates(static_cast<uint32_t>(W.size()) + 1);
  A.markInitial(First);
  A.markFinal(First + static_cast<State>(W.size()));
  for (uint32_t I = 0; I < W.size(); ++I) {
    assert(W[I] < AlphabetSize && "word symbol outside alphabet");
    A.addTransition(First + I, W[I], First + I + 1);
  }
  return A;
}

Nfa Nfa::universal(uint32_t AlphabetSize) {
  Nfa A(AlphabetSize);
  State Q = A.addState();
  A.markInitial(Q);
  A.markFinal(Q);
  for (Symbol S = 0; S < AlphabetSize; ++S)
    A.addTransition(Q, S, Q);
  return A;
}

Nfa Nfa::emptyLanguage(uint32_t AlphabetSize) {
  Nfa A(AlphabetSize);
  State Q = A.addState();
  A.markInitial(Q);
  return A;
}

Nfa Nfa::epsilonLanguage(uint32_t AlphabetSize) {
  Nfa A(AlphabetSize);
  State Q = A.addState();
  A.markInitial(Q);
  A.markFinal(Q);
  return A;
}

Nfa postr::automata::intersect(const Nfa &A, const Nfa &B, Budget *Bud) {
  assert(!A.hasEpsilon() && !B.hasEpsilon() &&
         "intersect requires epsilon-free inputs");
  assert(A.alphabetSize() == B.alphabetSize() && "alphabet mismatch");
  NfaOpHook *Hook = activeNfaOpHook();
  if (Hook)
    if (std::optional<Nfa> Hit = Hook->lookup(NfaOp::Intersect, A, &B))
      return *std::move(Hit);
  Nfa Out(A.alphabetSize());
  // Hashed pair interning; the key packs both states into one word.
  std::unordered_map<uint64_t, State> Map;
  Map.reserve(A.numStates() + B.numStates());
  struct WorkItem {
    State QA, QB, Id;
  };
  std::vector<WorkItem> Work;
  auto GetState = [&](State QA, State QB) {
    uint64_t Key = (static_cast<uint64_t>(QA) << 32) | QB;
    auto [It, Inserted] = Map.try_emplace(Key, 0);
    if (Inserted) {
      It->second = Out.addState();
      if (A.isFinal(QA) && B.isFinal(QB))
        Out.markFinal(It->second);
      Work.push_back({QA, QB, It->second});
    }
    return It->second;
  };
  for (State QA : A.initialStates())
    for (State QB : B.initialStates())
      Out.markInitial(GetState(QA, QB));
  GrowthProbe Probe{Bud, Out};
  while (!Work.empty()) {
    if (!Probe("nfa.intersect"))
      return Out;
    auto [QA, QB, From] = Work.back();
    Work.pop_back();
    // Both rows are Sym-sorted: advance the two cursors in lockstep and
    // expand the cartesian product of each shared-symbol run.
    auto [TA, AEnd] = A.outgoing(QA);
    auto [TB, BEnd] = B.outgoing(QB);
    while (TA != AEnd && TB != BEnd) {
      if (TA->Sym < TB->Sym) {
        ++TA;
        continue;
      }
      if (TB->Sym < TA->Sym) {
        ++TB;
        continue;
      }
      Symbol S = TA->Sym;
      const Transition *ARunEnd = TA;
      while (ARunEnd != AEnd && ARunEnd->Sym == S)
        ++ARunEnd;
      const Transition *BRunEnd = TB;
      while (BRunEnd != BEnd && BRunEnd->Sym == S)
        ++BRunEnd;
      for (const Transition *IA = TA; IA != ARunEnd; ++IA)
        for (const Transition *IB = TB; IB != BRunEnd; ++IB)
          Out.addTransition(From, S, GetState(IA->To, IB->To));
      TA = ARunEnd;
      TB = BRunEnd;
    }
  }
  // Only a complete product is worth keeping; a budget-tripped partial
  // automaton must never be replayed as the real intersection.
  if (Hook && (!Bud || !Bud->exceeded()))
    Hook->stage(NfaOp::Intersect, A, &B, Out);
  return Out;
}

Nfa postr::automata::unite(const Nfa &A, const Nfa &B) {
  assert(A.alphabetSize() == B.alphabetSize() && "alphabet mismatch");
  Nfa Out(A.alphabetSize());
  State BaseA = Out.addStates(A.numStates());
  State BaseB = Out.addStates(B.numStates());
  for (State Q = 0; Q < A.numStates(); ++Q) {
    if (A.isInitial(Q))
      Out.markInitial(BaseA + Q);
    if (A.isFinal(Q))
      Out.markFinal(BaseA + Q);
  }
  for (State Q = 0; Q < B.numStates(); ++Q) {
    if (B.isInitial(Q))
      Out.markInitial(BaseB + Q);
    if (B.isFinal(Q))
      Out.markFinal(BaseB + Q);
  }
  for (const Transition &T : A.transitions())
    Out.addTransition(BaseA + T.From, T.Sym, BaseA + T.To);
  for (const Transition &T : B.transitions())
    Out.addTransition(BaseB + T.From, T.Sym, BaseB + T.To);
  return Out;
}

Nfa postr::automata::concatenate(const Nfa &A, const Nfa &B) {
  assert(A.alphabetSize() == B.alphabetSize() && "alphabet mismatch");
  Nfa Out(A.alphabetSize());
  State BaseA = Out.addStates(A.numStates());
  State BaseB = Out.addStates(B.numStates());
  for (State Q = 0; Q < A.numStates(); ++Q)
    if (A.isInitial(Q))
      Out.markInitial(BaseA + Q);
  for (State Q = 0; Q < B.numStates(); ++Q)
    if (B.isFinal(Q))
      Out.markFinal(BaseB + Q);
  for (const Transition &T : A.transitions())
    Out.addTransition(BaseA + T.From, T.Sym, BaseA + T.To);
  for (const Transition &T : B.transitions())
    Out.addTransition(BaseB + T.From, T.Sym, BaseB + T.To);
  for (State QF : A.finalStates())
    for (State QI : B.initialStates())
      Out.addTransition(BaseA + QF, Nfa::Epsilon, BaseB + QI);
  return Out;
}

Nfa postr::automata::determinize(const Nfa &In, Budget *Bud) {
  NfaOpHook *Hook = activeNfaOpHook();
  if (Hook)
    if (std::optional<Nfa> Hit = Hook->lookup(NfaOp::Determinize, In, nullptr))
      return *std::move(Hit);
  Nfa A = In.hasEpsilon() ? In.removeEpsilon(Bud) : In;
  if (Bud && Bud->exceeded())
    return Nfa(In.alphabetSize());
  uint32_t Sigma = A.alphabetSize();
  Nfa Out(Sigma);
  std::unordered_map<std::vector<State>, State, U32VecHash> Map;
  // Work items point at the interned keys (node-based unordered_map:
  // stable addresses, never erased), so subsets are copied exactly once
  // — on first interning — and cache hits copy nothing.
  struct WorkItem {
    const std::vector<State> *Set;
    State Id;
  };
  std::vector<WorkItem> Work;
  auto GetState = [&](std::vector<State> &&Set) {
    auto It = Map.find(Set);
    if (It != Map.end())
      return It->second;
    State Id = Out.addState();
    for (State Q : Set)
      if (A.isFinal(Q)) {
        Out.markFinal(Id);
        break;
      }
    auto [Ins, Inserted] = Map.emplace(std::move(Set), Id);
    Work.push_back({&Ins->first, Id});
    if (Bud)
      Bud->chargeMem(Ins->first.size() * sizeof(State));
    return Id;
  };
  State Start = GetState(A.initialStates());
  Out.markInitial(Start);
  // Per-symbol successor buckets, reused across subsets: one pass over
  // the subset's out-edges replaces an alphabet-sized sequence of full
  // scans (each of which used to allocate a numStates-sized Seen mask).
  std::vector<std::vector<State>> Buckets(Sigma);
  GrowthProbe Probe{Bud, Out};
  while (!Work.empty()) {
    if (!Probe("nfa.determinize"))
      return Out;
    auto [Set, From] = Work.back();
    Work.pop_back();
    for (std::vector<State> &B : Buckets)
      B.clear();
    for (State Q : *Set) {
      auto [Begin, End] = A.outgoing(Q);
      for (const Transition *T = Begin; T != End; ++T)
        Buckets[T->Sym].push_back(T->To);
    }
    for (Symbol S = 0; S < Sigma; ++S) {
      std::vector<State> &B = Buckets[S];
      std::sort(B.begin(), B.end());
      B.erase(std::unique(B.begin(), B.end()), B.end());
      // Moved-from buckets are reset by the clear() above next round.
      Out.addTransition(From, S, GetState(std::move(B)));
    }
  }
  if (Hook && (!Bud || !Bud->exceeded()))
    Hook->stage(NfaOp::Determinize, In, nullptr, Out);
  return Out;
}

Nfa postr::automata::complement(const Nfa &A, Budget *Bud) {
  Nfa D = determinize(A, Bud);
  if (Bud && Bud->exceeded())
    return Nfa(A.alphabetSize());
  Nfa Out(D.alphabetSize());
  Out.addStates(D.numStates());
  for (State Q = 0; Q < D.numStates(); ++Q) {
    if (D.isInitial(Q))
      Out.markInitial(Q);
    if (!D.isFinal(Q))
      Out.markFinal(Q);
  }
  for (const Transition &T : D.transitions())
    Out.addTransition(T.From, T.Sym, T.To);
  return Out;
}

Nfa postr::automata::reverse(const Nfa &A) {
  Nfa Out(A.alphabetSize());
  Out.addStates(A.numStates());
  for (State Q = 0; Q < A.numStates(); ++Q) {
    if (A.isInitial(Q))
      Out.markFinal(Q);
    if (A.isFinal(Q))
      Out.markInitial(Q);
  }
  for (const Transition &T : A.transitions())
    Out.addTransition(T.To, T.Sym, T.From);
  return Out;
}

bool postr::automata::equivalent(const Nfa &A, const Nfa &B) {
  Nfa AE = A.hasEpsilon() ? A.removeEpsilon() : A;
  Nfa BE = B.hasEpsilon() ? B.removeEpsilon() : B;
  if (!intersect(AE, complement(B).removeEpsilon()).isEmpty())
    return false;
  return intersect(BE, complement(A).removeEpsilon()).isEmpty();
}

//===----------------------------------------------------------------------===//
// Cross-call memoization hook
//===----------------------------------------------------------------------===//

namespace {
/// One plain pointer per thread; the common (non-serve) case pays a
/// single TLS read in intersect()/determinize() and nothing else.
thread_local NfaOpHook *ActiveNfaOpHook = nullptr;
} // namespace

NfaOpHook *postr::automata::activeNfaOpHook() { return ActiveNfaOpHook; }

NfaOpHookScope::NfaOpHookScope(NfaOpHook *H) : Prev(ActiveNfaOpHook) {
  ActiveNfaOpHook = H;
}

NfaOpHookScope::~NfaOpHookScope() { ActiveNfaOpHook = Prev; }
