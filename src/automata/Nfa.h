//===- automata/Nfa.h - Nondeterministic finite automata --------*- C++ -*-===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact NFA representation and the algorithms the position-constraint
/// framework needs: ε-removal, trimming, product intersection, union,
/// concatenation, determinization, complementation, emptiness/membership,
/// bounded word enumeration (for the test oracles), and the structural
/// flatness check from Sec. 2 of the paper (DAGs of simple, non-nested
/// loops), which gates the ¬contains encoding of Sec. 6.4.
///
/// This module plays the role of the Mata automata library [29] in the
/// paper's implementation.
///
//===----------------------------------------------------------------------===//

#ifndef POSTR_AUTOMATA_NFA_H
#define POSTR_AUTOMATA_NFA_H

#include "base/Base.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace postr {

class Budget;

namespace automata {

/// State index inside one automaton.
using State = uint32_t;

/// A labelled transition. `Sym == Nfa::Epsilon` marks an ε-transition.
struct Transition {
  State From;
  Symbol Sym;
  State To;

  friend bool operator==(const Transition &A, const Transition &B) {
    return A.From == B.From && A.Sym == B.Sym && A.To == B.To;
  }
  friend auto operator<=>(const Transition &A, const Transition &B) = default;
};

/// A nondeterministic finite automaton over a dense symbol alphabet
/// {0, ..., AlphabetSize-1}, with optional ε-transitions.
///
/// The representation favours the constructions in this code base: a flat,
/// sorted transition vector (deterministic iteration order; the Parikh and
/// tag-automaton builders index transitions by position) plus a CSR-style
/// per-state row index rebuilt once per normalize() and cached until the
/// next mutation.
class Nfa {
public:
  /// Reserved symbol value denoting an ε-transition.
  static constexpr Symbol Epsilon = ~Symbol(0);

  Nfa() = default;
  explicit Nfa(uint32_t AlphabetSize) : AlphabetSz(AlphabetSize) {}

  /// Adds a fresh state and returns its index.
  State addState() {
    IsInitial.push_back(false);
    IsFinal.push_back(false);
    return static_cast<State>(IsInitial.size() - 1);
  }

  /// Adds \p N fresh states, returning the index of the first.
  State addStates(uint32_t N) {
    State First = numStates();
    IsInitial.resize(IsInitial.size() + N, false);
    IsFinal.resize(IsFinal.size() + N, false);
    return First;
  }

  void addTransition(State From, Symbol Sym, State To) {
    assert(From < numStates() && To < numStates() && "state out of range");
    assert((Sym == Epsilon || Sym < AlphabetSz) && "symbol out of range");
    Delta.push_back({From, Sym, To});
    Dirty = true;
    HasEps |= Sym == Epsilon;
  }

  void markInitial(State Q) { IsInitial[Q] = true; }
  void markFinal(State Q) { IsFinal[Q] = true; }

  uint32_t numStates() const { return static_cast<uint32_t>(IsInitial.size()); }
  uint32_t numTransitions() const {
    return static_cast<uint32_t>(Delta.size());
  }
  uint32_t alphabetSize() const { return AlphabetSz; }
  void setAlphabetSize(uint32_t N) { AlphabetSz = N; }

  bool isInitial(State Q) const { return IsInitial[Q]; }
  bool isFinal(State Q) const { return IsFinal[Q]; }

  /// All transitions, sorted by (From, Sym, To) and deduplicated.
  const std::vector<Transition> &transitions() const {
    normalize();
    return Delta;
  }

  /// Transitions leaving \p Q (sorted). Valid until the next mutation.
  std::pair<const Transition *, const Transition *> outgoing(State Q) const;

  /// Transitions leaving \p Q labelled exactly \p Sym (binary search in
  /// the sorted per-state range). Valid until the next mutation.
  std::pair<const Transition *, const Transition *>
  outgoingSym(State Q, Symbol Sym) const;

  std::vector<State> initialStates() const;
  std::vector<State> finalStates() const;

  /// True if the automaton has at least one ε-transition. O(1): the flag
  /// is maintained by addTransition (transitions are never removed from a
  /// live automaton; the construction algorithms build fresh ones).
  bool hasEpsilon() const { return HasEps; }

  //===--------------------------------------------------------------------===
  // Algorithms. All are pure (return new automata) unless stated otherwise.
  //===--------------------------------------------------------------------===

  /// Returns an equivalent ε-free automaton (forward ε-closure folding).
  /// When \p B is supplied and trips mid-construction, the (partial) result
  /// is returned and the caller must check `B->exceeded()` before using it.
  Nfa removeEpsilon(Budget *B = nullptr) const;

  /// Removes states that are unreachable or cannot reach a final state.
  /// ε-transitions are preserved.
  Nfa trim() const;

  /// Language emptiness. Works with ε-transitions present.
  bool isEmpty() const;

  /// Does the automaton accept \p W? Works with ε-transitions present.
  bool accepts(const Word &W) const;

  /// Length of some shortest accepted word, if the language is non-empty.
  std::optional<uint32_t> shortestWordLength() const;

  /// Some shortest accepted word, if the language is non-empty.
  std::optional<Word> someWord() const;

  /// All accepted words of length <= \p MaxLen, lexicographically sorted.
  /// Intended for the brute-force test oracles; exponential in MaxLen.
  std::vector<Word> enumerateWords(uint32_t MaxLen) const;

  /// Structural flatness check (Sec. 2): after trimming, every SCC must be
  /// either a singleton without a self-loop or a single simple cycle in
  /// which each state has exactly one intra-SCC outgoing transition.
  /// Flat automata are exactly those whose runs are determined by their
  /// Parikh images, the property the ¬contains encoding relies on.
  bool isFlat() const;

  /// Renders the automaton in a compact one-line debug format.
  std::string debugString() const;

  //===--------------------------------------------------------------------===
  // Constructors for common languages.
  //===--------------------------------------------------------------------===

  /// The singleton language {W}.
  static Nfa fromWord(uint32_t AlphabetSize, const Word &W);

  /// The language of all words over the alphabet (universal language).
  static Nfa universal(uint32_t AlphabetSize);

  /// The empty language.
  static Nfa emptyLanguage(uint32_t AlphabetSize);

  /// The language {ε}.
  static Nfa epsilonLanguage(uint32_t AlphabetSize);

private:
  friend Nfa intersect(const Nfa &, const Nfa &, Budget *);
  friend Nfa unite(const Nfa &, const Nfa &);
  friend Nfa concatenate(const Nfa &, const Nfa &);
  friend Nfa determinize(const Nfa &, Budget *);
  friend Nfa complement(const Nfa &, Budget *);
  friend Nfa reverse(const Nfa &);

  /// Sorts and deduplicates the transition vector and rebuilds the
  /// per-state index. Logically const; caches are mutable.
  void normalize() const;

  /// ε-closure of a set of states (expects normalized Delta).
  std::vector<State> epsClosure(const std::vector<State> &Set) const;

  /// Scratch-buffer ε-closure: grows \p Set in place with every state
  /// ε-reachable from it. \p Mark is a caller-owned stamp buffer of size
  /// numStates(); entries equal to \p Stamp are treated as already in the
  /// set (states of \p Set must be pre-stamped by the caller). Avoids the
  /// per-call O(numStates) allocation of `epsClosure`; the result is NOT
  /// sorted.
  void epsClosureGrow(std::vector<State> &Set, std::vector<uint32_t> &Mark,
                      uint32_t Stamp) const;

  uint32_t AlphabetSz = 0;
  mutable std::vector<Transition> Delta;
  /// Index of the first transition of each state in Delta (size
  /// numStates()+1), valid when !Dirty.
  mutable std::vector<uint32_t> RowBegin;
  mutable bool Dirty = false;
  bool HasEps = false;
  std::vector<bool> IsInitial;
  std::vector<bool> IsFinal;
};

/// Product-construction intersection of two ε-free automata (call
/// removeEpsilon() first if needed; asserts on ε-transitions). These are
/// the exponential-blowup stages, so each takes an optional cooperative
/// `Budget`: probes run at worklist pops (sites "nfa.intersect",
/// "nfa.determinize", "nfa.epsilon") and output growth is charged against
/// the memory cap. On a trip the partial automaton is returned; callers
/// must check `Bud->exceeded()` before trusting the result.
Nfa intersect(const Nfa &A, const Nfa &B, Budget *Bud = nullptr);

/// Disjoint union (language union).
Nfa unite(const Nfa &A, const Nfa &B);

/// Language concatenation via ε-linking of final to initial states.
Nfa concatenate(const Nfa &A, const Nfa &B);

/// Subset construction; the result is a complete DFA (with an explicit
/// sink state) whose initial state is state 0.
Nfa determinize(const Nfa &A, Budget *Bud = nullptr);

/// Complement over the automaton's alphabet (determinize + flip).
Nfa complement(const Nfa &A, Budget *Bud = nullptr);

/// Reverses the language (transitions flipped, initial/final swapped).
Nfa reverse(const Nfa &A);

/// Language equivalence through complement/intersection emptiness.
/// Exponential in the worst case; intended for tests.
bool equivalent(const Nfa &A, const Nfa &B);

//===----------------------------------------------------------------------===//
// Cross-call memoization hook
//===----------------------------------------------------------------------===//

/// The memoizable operations. Both are deterministic functions of their
/// operands, which is what makes replaying a cached result sound.
enum class NfaOp : uint8_t { Intersect, Determinize };

/// Optional per-thread memoization consulted by intersect() and
/// determinize() before computing and offered the full (never
/// budget-tripped partial) result afterwards. Installed by the
/// postr-serve worker sessions (serve/Cache.h); for every other caller
/// the active hook is null and the cost is one thread-local read.
class NfaOpHook {
public:
  virtual ~NfaOpHook() = default;
  /// Returns a stored result for (O, A, B), or nullopt. B is null for
  /// unary ops.
  virtual std::optional<Nfa> lookup(NfaOp O, const Nfa &A, const Nfa *B) = 0;
  /// Offers a freshly computed complete result for keeping.
  virtual void stage(NfaOp O, const Nfa &A, const Nfa *B, const Nfa &Out) = 0;
};

/// The hook installed for the current thread, if any.
NfaOpHook *activeNfaOpHook();

/// RAII installation of \p H as the current thread's hook; restores the
/// previous hook on destruction (scopes nest).
class NfaOpHookScope {
public:
  explicit NfaOpHookScope(NfaOpHook *H);
  ~NfaOpHookScope();
  NfaOpHookScope(const NfaOpHookScope &) = delete;
  NfaOpHookScope &operator=(const NfaOpHookScope &) = delete;

private:
  NfaOpHook *Prev;
};

} // namespace automata
} // namespace postr

#endif // POSTR_AUTOMATA_NFA_H
