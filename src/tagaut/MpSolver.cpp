//===- tagaut/MpSolver.cpp - Deciding Monadic-Position constraints ---------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "tagaut/MpSolver.h"

#include "base/Budget.h"
#include "lia/Mbqi.h"
#include "lia/Solver.h"

#include <algorithm>
#include <cstdlib>

using namespace postr;
using namespace postr::tagaut;

namespace {

/// The primitive root of a non-empty word: the shortest p with W = p^k.
Word primitiveRoot(const Word &W) {
  for (size_t D = 1; D <= W.size(); ++D) {
    if (W.size() % D != 0)
      continue;
    bool Ok = true;
    for (size_t I = D; I < W.size() && Ok; ++I)
      Ok = W[I] == W[I - D];
    if (Ok)
      return Word(W.begin(), W.begin() + static_cast<ptrdiff_t>(D));
  }
  return W;
}

/// NFA for the language p* (a cycle through the letters of p).
automata::Nfa starOfWord(const Word &P, uint32_t AlphabetSize) {
  automata::Nfa A(AlphabetSize);
  A.addStates(static_cast<uint32_t>(P.size()));
  A.markInitial(0);
  A.markFinal(0);
  for (uint32_t I = 0; I < P.size(); ++I)
    A.addTransition(I, P[I], (I + 1) % static_cast<uint32_t>(P.size()));
  return A;
}

/// True if both sides of \p P are permutations of the same occurrence
/// multiset and every involved language is contained in p* for a single
/// word p. All values then iterate p, so concatenation commutes and the
/// two sides are *equal* under every assignment — ¬contains (and ≠,
/// ¬suffixof, …) can never hold. This is the primitive-word structure of
/// the position-hard family (footnote 10).
bool sidesForcedEqual(const std::map<VarId, automata::Nfa> &Langs,
                      const PosPredicate &P, uint32_t AlphabetSize) {
  std::vector<VarId> L = P.Lhs, R = P.Rhs;
  std::sort(L.begin(), L.end());
  std::sort(R.begin(), R.end());
  if (L != R || L.empty())
    return false;
  // Find the root from the first language with a non-empty word (someWord
  // returns a shortest word, which may be ε — intersect with Σ⁺ first).
  automata::Nfa AnyPlus(AlphabetSize);
  AnyPlus.addStates(2);
  AnyPlus.markInitial(0);
  AnyPlus.markFinal(1);
  for (Symbol S = 0; S < AlphabetSize; ++S) {
    AnyPlus.addTransition(0, S, 1);
    AnyPlus.addTransition(1, S, 1);
  }
  Word Root;
  for (VarId X : L) {
    std::optional<Word> W =
        automata::intersect(Langs.at(X), AnyPlus).someWord();
    if (W && !W->empty()) {
      Root = primitiveRoot(*W);
      break;
    }
  }
  if (Root.empty())
    return false; // all-ε handled by the ε-needle check
  automata::Nfa RootStar = starOfWord(Root, AlphabetSize);
  automata::Nfa NotRootStar = automata::complement(RootStar);
  for (VarId X : L)
    if (!automata::intersect(Langs.at(X), NotRootStar).isEmpty())
      return false;
  return true;
}

} // namespace

lia::InstanceFamily
postr::tagaut::classifyFamily(const std::vector<PosPredicate> &Preds) {
  if (Preds.empty())
    return lia::InstanceFamily::ParikhHeavy;
  for (const PosPredicate &P : Preds)
    if (P.Kind != PredKind::Diseq)
      return lia::InstanceFamily::WordEqPosition;
  return lia::InstanceFamily::WordEqDiseq;
}

MpResult postr::tagaut::solveMP(lia::Arena &A,
                                const std::map<VarId, automata::Nfa> &Langs,
                                const std::vector<PosPredicate> &Preds,
                                uint32_t AlphabetSize,
                                const IntConstraintBuilder &IntConstraints,
                                const MpOptions &Opts) {
  MpResult Out;
  // Resource governance: the caller's shared budget, or a per-call one
  // built from the legacy TimeoutMs/Cancel knobs. The automata shortcuts
  // and the encoder below can run for a while, so probe between phases;
  // the Cancel flag (the disjunct pool flips it once a sibling answers
  // Sat) is checked separately so it works even when a caller-supplied
  // budget does not carry it.
  Budget Local(Budget::Limits{Opts.TimeoutMs, 0, 0, Opts.Cancel});
  Budget *Bud = Opts.Budget ? Opts.Budget : &Local;
  auto Stopped = [&Opts, Bud, &Out] {
    if (Opts.Cancel && Opts.Cancel->load(std::memory_order_relaxed)) {
      Out.Stop = StopReason::Cancelled;
      return true;
    }
    if (!Bud->checkpoint("tagaut.encode")) {
      Out.Stop = Bud->reason();
      return true;
    }
    return false;
  };

  // Named trusted-rule record for certificates (see proof/Proof.h): the
  // automata-level short-circuits below are part of the trusted
  // front-end, so their refutations are recorded by name rather than
  // re-derived by the checker kernel.
  auto RuleUnsat = [&Out, &Opts](const char *Rule) -> MpResult & {
    Out.V = Verdict::Unsat;
    if (Opts.Certify) {
      Out.Cert.IsRule = true;
      Out.Cert.Rule = Rule;
    }
    return Out;
  };

  // R′ alone is unsatisfiable if any variable's language is empty.
  for (const auto &[X, Nfa] : Langs) {
    (void)X;
    if (Nfa.isEmpty())
      return RuleUnsat("empty-language");
  }

  // Thm. 6.5's side condition; callers run heuristics before this point.
  if (!notContainsVarsFlat(Langs, Preds)) {
    Out.V = Verdict::Unknown;
    return Out;
  }

  // ε-needle short-circuit: when every left-hand variable of a ¬contains
  // is forced to ε, the needle is ε, which is contained in every word —
  // unsatisfiable regardless of the rest. (MBQI alone cannot conclude
  // this when the haystack language is infinite: there are infinitely
  // many candidate models and each one gets refuted individually.)
  // Commuting-powers short-circuit: when a mismatch-style predicate's two
  // sides are forced equal (same occurrence multiset over one iterated
  // word), it is unsatisfiable outright. ¬prefixof additionally requires
  // a strictly longer left side, which equality also rules out.
  for (const PosPredicate &P : Preds) {
    if (Stopped()) {
      Out.V = Verdict::Unknown;
      return Out;
    }
    if (P.Kind != PredKind::NotContains && P.Kind != PredKind::Diseq &&
        P.Kind != PredKind::NotPrefix && P.Kind != PredKind::NotSuffix)
      continue;
    if (sidesForcedEqual(Langs, P, AlphabetSize))
      return RuleUnsat("commuting-powers");
  }

  for (const PosPredicate &P : Preds) {
    if (P.Kind != PredKind::NotContains)
      continue;
    bool NeedleForcedEmpty = true;
    for (VarId X : P.Lhs) {
      const automata::Nfa &L = Langs.at(X);
      if (L.trim().numTransitions() != 0 || !L.accepts({})) {
        NeedleForcedEmpty = false;
        break;
      }
    }
    if (NeedleForcedEmpty)
      return RuleUnsat("epsilon-needle");
    // Syntactic self-containment: if the needle's occurrence sequence is
    // a contiguous subsequence of the haystack's, every assignment makes
    // the needle a factor of the haystack (align it with its own copy),
    // so ¬contains is unsatisfiable. Catches the common u ⊑ u·w shapes
    // that MBQI would otherwise have to refute offset by offset.
    if (!P.Lhs.empty() && P.Lhs.size() <= P.Rhs.size()) {
      for (size_t Off = 0; Off + P.Lhs.size() <= P.Rhs.size(); ++Off) {
        if (std::equal(P.Lhs.begin(), P.Lhs.end(),
                       P.Rhs.begin() + static_cast<ptrdiff_t>(Off)))
          return RuleUnsat("self-containment");
      }
    }
  }

  if (Stopped()) {
    Out.V = Verdict::Unknown;
    return Out;
  }
  EncoderOptions EncOpts = Opts.Encoder;
  if (!EncOpts.Budget)
    EncOpts.Budget = Bud;
  SystemEncoding Enc = encodeSystem(A, Langs, Preds, AlphabetSize, EncOpts);
  // A tripped encoder returns a partial encoding — discard it.
  if (Stopped()) {
    Out.V = Verdict::Unknown;
    return Out;
  }

  lia::FormulaId Goal = Enc.Outer;
  if (IntConstraints)
    Goal = A.conj({Goal, IntConstraints(A, Enc.LenTerms)});

  if (Enc.Blocks.empty()) {
    lia::QfOptions Qf = Opts.Qf;
    // Clause-trace recording for the quantifier-free path: the whole
    // DPLL(T) search is mirrored into the builder, and an Unsat verdict
    // hands the trace to the caller as this call's certificate.
    proof::QfTraceBuilder Trace;
    if (Opts.Certify)
      Qf.Proof = &Trace;
    // Family classification for the adaptive pivot rule, from the
    // predicate mix the encoder was handed (unless the caller — the
    // position pipeline, which also sees the word-equation split — has
    // classified already): a system with mismatch-style predicates
    // encodes the 2K+1-copy position structure whose tableaus the
    // pipeline A/B measured as Bland territory, while a bare
    // membership + length system is exactly the Parikh-formula load
    // where SparsestRow halves the fill-in. The word-equation side
    // splits further on the predicate mix: disequalities alone build
    // the narrow single-mismatch blocks (WordEqDiseq), while
    // prefix/suffix/at/contains predicates build the wide per-position
    // ones (WordEqPosition) — both currently start on Bland, but the
    // subfamilies are tracked separately so ab_pivot_rules.sh can
    // measure them apart.
    if (Qf.Pivot.Family == lia::InstanceFamily::Unknown)
      Qf.Pivot.Family = classifyFamily(Preds);
    if (Opts.Budget && !Qf.Budget)
      Qf.Budget = Opts.Budget;
    if (Opts.TimeoutMs)
      Qf.TimeoutMs = Qf.TimeoutMs ? std::min(Qf.TimeoutMs, Opts.TimeoutMs)
                                  : Opts.TimeoutMs;
    if (!Qf.Cancel)
      Qf.Cancel = Opts.Cancel;
    // Connectivity CEGAR: under SpanMode::Lazy every Sat model is only
    // flow-consistent; disconnected pseudo-runs are refuted by cuts fed
    // back through the solver's refinement hook (which keeps learned
    // clauses across episodes). Unsat/Unknown are final — cuts only
    // shrink the model space towards the true one.
    uint32_t Cuts = 0;
    bool ExceededCuts = false;
    lia::ModelRefiner Refine =
        [&](lia::Arena &Ar,
            const std::vector<int64_t> &Model) -> std::optional<lia::FormulaId> {
      if (Enc.Span != SpanMode::Lazy)
        return std::nullopt;
      std::vector<uint32_t> Gap = connectedComponentGap(Enc.Ta, Enc.Pf, Model);
      if (Gap.empty())
        return std::nullopt;
      if (++Cuts > Opts.MaxConnectivityCuts) {
        ExceededCuts = true;
        return std::nullopt;
      }
      return connectivityCut(Enc.Ta, Enc.Pf, Ar, Gap);
    };
    lia::QfResult R = lia::solveQF(A, Goal, Qf, Refine);
    Out.V = ExceededCuts ? Verdict::Unknown : R.V;
    if (Opts.Certify && Out.V == Verdict::Unsat)
      Out.Cert.Proof = std::move(Trace.P);
    if (Out.V == Verdict::Unknown)
      // Exhausted cut rounds are an engine-internal cap, not a shared-
      // budget trip.
      Out.Stop = ExceededCuts ? StopReason::StepBudget : R.Stop;
    if (Out.V == Verdict::Sat) {
      Out.Assignment = Enc.decode(R.Model);
      Out.Model = std::move(R.Model);
    }
    return Out;
  }

  // Resource guard for the quantified path: past a few thousand tag
  // transitions even the incremental MBQI setup (outer encoding plus one
  // Parikh clone per accumulated lemma) exceeds any sane budget. Answer
  // Unknown up-front instead (the same resource-out the paper reports
  // for OSTRICH-sized encodings). The threshold is an MpOptions knob,
  // env-overridable so large-instance experiments need no rebuild.
  uint32_t MbqiGuard = Opts.MbqiMaxTaTransitions;
  if (const char *E = std::getenv("POSTR_MBQI_MAX_TA_TRANSITIONS")) {
    char *End = nullptr;
    unsigned long V = std::strtoul(E, &End, 10);
    // A malformed value must not silently disable the resource guard;
    // keep the option default unless the whole string parsed.
    if (End != E && *End == '\0' && V <= UINT32_MAX)
      MbqiGuard = static_cast<uint32_t>(V);
  }
  if (MbqiGuard != 0 && Enc.Ta.transitions().size() > MbqiGuard) {
    Out.V = Verdict::Unknown;
    Out.Stop = StopReason::StepBudget;
    return Out;
  }

  lia::MbqiQuery Q;
  Q.Outer = Goal;
  Q.OuterVars = Enc.OuterVars;
  Q.Blocks = Enc.Blocks;
  Q.BlockTerms = Enc.BlockTerms;
  lia::MbqiOptions Mb = Opts.Mbqi;
  if (Opts.Budget && !Mb.Qf.Budget)
    Mb.Qf.Budget = Opts.Budget;
  if (Opts.TimeoutMs)
    Mb.TimeoutMs = Mb.TimeoutMs ? std::min(Mb.TimeoutMs, Opts.TimeoutMs)
                                : Opts.TimeoutMs;
  if (!Mb.Qf.Cancel)
    Mb.Qf.Cancel = Opts.Cancel;
  std::vector<int64_t> Model;
  Out.V = lia::solveMbqi(A, Q, &Model, Mb);
  // An MBQI refutation rests on blocking clauses justified by *inner*
  // refutations — candidate logic the clause-trace kernel cannot replay.
  // It enters certificates as a named trusted rule (proof/Proof.h).
  if (Opts.Certify && Out.V == Verdict::Unsat) {
    Out.Cert.IsRule = true;
    Out.Cert.Rule = "mbqi";
  }
  if (Out.V == Verdict::Unknown) {
    // solveMbqi reports no reason itself; reconstruct it. Candidate /
    // offset exhaustion without a budget trip is a step-budget stop.
    if (Opts.Cancel && Opts.Cancel->load(std::memory_order_relaxed))
      Out.Stop = StopReason::Cancelled;
    else if (Bud->exceeded())
      Out.Stop = Bud->reason();
    else
      Out.Stop = StopReason::StepBudget;
  }
  if (Out.V == Verdict::Sat) {
    Out.Assignment = Enc.decode(Model);
    Out.Model = std::move(Model);
  }
  return Out;
}
