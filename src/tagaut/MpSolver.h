//===- tagaut/MpSolver.h - Deciding Monadic-Position constraints -*- C++ -*-===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The decision procedure for the paper's MP problem (Sec. 1): a
/// conjunction of a monadic constraint (regular memberships R′ + LIA
/// length constraints I′) and position constraints P′. Encodes via
/// `encodeSystem` and discharges with the QF-LIA solver, or with the MBQI
/// layer when ¬contains blocks are present.
///
/// This is the procedure behind Theorems 7.3 (NP, existential position
/// constraints) and 7.4 (NExpTime, flat ¬contains).
///
//===----------------------------------------------------------------------===//

#ifndef POSTR_TAGAUT_MPSOLVER_H
#define POSTR_TAGAUT_MPSOLVER_H

#include "proof/Proof.h"
#include "tagaut/Encoder.h"

#include <functional>
#include <map>

namespace postr {
namespace tagaut {

struct MpOptions {
  lia::QfOptions Qf;
  lia::MbqiOptions Mbqi;
  /// Overall deadline in milliseconds (0 = none); distributed to the
  /// underlying engines.
  uint64_t TimeoutMs = 0;
  /// Optional cooperative cancellation, forwarded into the QF and MBQI
  /// engines; the parallel disjunct pool uses it to stop the losers once
  /// one disjunct answers Sat.
  const std::atomic<bool> *Cancel = nullptr;
  /// Cap on connectivity-CEGAR rounds under SpanMode::Lazy before the
  /// solver answers Unknown. Each round adds one cut; real workloads
  /// converge in a handful.
  uint32_t MaxConnectivityCuts = 4096;
  /// Resource guard for the quantified (MBQI) path: tag automata with
  /// more transitions than this answer Unknown up-front, because even
  /// the incremental encoding of the outer instance grows with every
  /// accumulated lemma. 0 disables the guard. Overridable without a
  /// rebuild via the POSTR_MBQI_MAX_TA_TRANSITIONS environment variable
  /// (large-instance experiments).
  uint32_t MbqiMaxTaTransitions = 4000;
  /// Optional shared resource budget (deadline / memory cap / step limit
  /// / cancel, see base/Budget.h). When set it governs the whole solve —
  /// the encoder, the automata shortcuts, and every QF/MBQI sub-solve —
  /// and TimeoutMs is ignored. When null a per-call budget is built from
  /// TimeoutMs + Cancel.
  postr::Budget *Budget = nullptr;
  EncoderOptions Encoder;
  /// Record an Unsat certificate into MpResult::Cert: the QF-LIA path
  /// logs a full DRUP + Farkas clause trace checkable by the independent
  /// kernel (proof/Check.h), while the automata-level short-circuits and
  /// the MBQI loop produce named trusted-rule records. Off by default —
  /// the solve is bit-identical and pays nothing.
  bool Certify = false;
};

struct MpResult {
  Verdict V = Verdict::Unknown;
  /// Why the verdict is Unknown, when a resource ran out: the budget's
  /// trip reason, or StepBudget when an engine-internal cap (connectivity
  /// cuts, MBQI candidates/offsets, tag-transition guard) was exhausted
  /// without tripping the shared budget. None for Sat/Unsat and for
  /// genuine incompleteness (non-flat ¬contains).
  StopReason Stop = StopReason::None;
  /// On Sat: a witnessing string assignment for every variable.
  std::map<VarId, Word> Assignment;
  /// On Sat: the full LIA model (integer variables the caller minted can
  /// be read off through their `lia::Var` handles).
  std::vector<int64_t> Model;
  /// With MpOptions::Certify, on Unsat: this call's refutation — either
  /// a named structural rule or a checkable QF clause trace.
  proof::DisjunctCert Cert;
};

/// Builds the I′ part: invoked after encoding with the per-variable
/// length terms so `x_i = len(y…)` constraints (Sec. 6.1) and plain LIA
/// atoms can be expressed over them. May return `A.trueF()`.
using IntConstraintBuilder = std::function<lia::FormulaId(
    lia::Arena &A, const std::map<VarId, lia::LinTerm> &LenTerms)>;

/// Encode-time instance-family classification for the adaptive Simplex
/// pivot rule, from the position-predicate mix: no predicates is the
/// pure Parikh/length load, disequalities alone build the narrow
/// single-mismatch tag blocks (WordEqDiseq), and any
/// prefix/suffix/at/contains predicate brings in the wide per-position
/// blocks (WordEqPosition). Used by solveMP for unclassified contexts
/// and by solver/PositionSolver when a word-equation split already
/// marked the disjunct.
lia::InstanceFamily classifyFamily(const std::vector<PosPredicate> &Preds);

/// Decides R′ ∧ I′ ∧ P′. The caller owns \p A and may have minted integer
/// variables in it (e.g. for str.at position terms) before the call.
/// Returns Unknown when a ¬contains predicate ranges over a non-flat
/// language (callers apply the Sec. 8 heuristics first) or on resource
/// exhaustion.
MpResult solveMP(lia::Arena &A,
                 const std::map<VarId, automata::Nfa> &Langs,
                 const std::vector<PosPredicate> &Preds,
                 uint32_t AlphabetSize,
                 const IntConstraintBuilder &IntConstraints = nullptr,
                 const MpOptions &Opts = {});

} // namespace tagaut
} // namespace postr

#endif // POSTR_TAGAUT_MPSOLVER_H
