//===- tagaut/Parikh.cpp - Parikh formula construction ---------------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "tagaut/Parikh.h"

#include "base/Budget.h"

#include <algorithm>

using namespace postr;
using namespace postr::tagaut;
using lia::Cmp;
using lia::FormulaId;
using lia::LinTerm;

ParikhFormula postr::tagaut::buildParikhFormula(const TagAutomaton &Ta,
                                                lia::Arena &A,
                                                const std::string &Prefix,
                                                SpanMode Span, Budget *Bud) {
  ParikhFormula Pf;
  uint32_t NumStates = Ta.numStates();
  uint32_t NumTrans = static_cast<uint32_t>(Ta.transitions().size());

  // The variable block dominates this construction's footprint: one count
  // var per transition, two indicators (plus a depth var when Eager) per
  // state, each with a name string in the arena.
  if (Bud)
    Bud->chargeMem((static_cast<uint64_t>(NumTrans) +
                    (Span == SpanMode::Eager ? 3u : 2u) * NumStates) *
                   64);

  Pf.TransCount.reserve(NumTrans);
  for (uint32_t I = 0; I < NumTrans; ++I)
    Pf.TransCount.push_back(
        A.freshVar(Prefix + "#d" + std::to_string(I), 0,
                   Ta.transitions()[I].AtMostOnce ? 1 : INT64_MAX));
  for (uint32_t Q = 0; Q < NumStates; ++Q) {
    Pf.GammaInit.push_back(
        A.freshVar(Prefix + "gI" + std::to_string(Q), 0,
                   Ta.isInitial(Q) ? 1 : 0));
    Pf.GammaFin.push_back(A.freshVar(Prefix + "gF" + std::to_string(Q), 0,
                                     Ta.isFinal(Q) ? 1 : 0));
  }
  // Spanning-depth variables σ_q ∈ [-1, numStates]; -1 marks "not on the
  // run" (Eq. 38 only needs σ_q <= -1; a single sentinel value suffices).
  // Only minted in Eager mode; Lazy connectivity needs no extra state.
  std::vector<lia::Var> Sigma;
  if (Span == SpanMode::Eager)
    for (uint32_t Q = 0; Q < NumStates; ++Q)
      Sigma.push_back(A.freshVar(Prefix + "sg" + std::to_string(Q), -1,
                                 static_cast<int64_t>(NumStates)));

  // Incoming / outgoing transition lists per state; tag uses.
  std::vector<std::vector<uint32_t>> In(NumStates), Out(NumStates);
  for (uint32_t I = 0; I < NumTrans; ++I) {
    const TaTransition &T = Ta.transitions()[I];
    In[T.To].push_back(I);
    Out[T.From].push_back(I);
    for (TagId Tag : T.Tags)
      Pf.TagUses[Tag].push_back(I);
  }

  std::vector<FormulaId> Parts;

  // φ_Init (Eq. 34): exactly one first state, and only initial states may
  // be first. The 0/1 range is intrinsic; non-initial states have an
  // intrinsic upper bound of 0 already. The zero-state automaton is the
  // concatenation of zero variable blocks — its unique accepting run is
  // the empty run, so it gets no constraint (an unconditional Σγ^I = 1
  // over the empty sum would wrongly make the formula unsatisfiable).
  if (NumStates > 0) {
    LinTerm SumInit;
    for (uint32_t Q = 0; Q < NumStates; ++Q)
      if (Ta.isInitial(Q))
        SumInit.addMonomial(Pf.GammaInit[Q], 1);
    Parts.push_back(A.cmp(SumInit, Cmp::Eq, LinTerm(1)));
  }
  // φ_Fin (Eq. 35) is fully captured by the intrinsic bounds; the
  // "exactly one last state" condition is induced by Kirchhoff (summing
  // Eq. 36 over all states gives Σγ^F = Σγ^I = 1).

  // φ_Kirch (Eq. 36) per state. A budget trip abandons the remaining
  // states — the formula is partial, the caller discards it.
  for (uint32_t Q = 0; Q < NumStates; ++Q) {
    if (Bud && !Bud->checkpoint("tagaut.parikh"))
      break;
    LinTerm Lhs = LinTerm::variable(Pf.GammaInit[Q]);
    for (uint32_t I : In[Q])
      Lhs.addMonomial(Pf.TransCount[I], 1);
    LinTerm Rhs = LinTerm::variable(Pf.GammaFin[Q]);
    for (uint32_t I : Out[Q])
      Rhs.addMonomial(Pf.TransCount[I], 1);
    Parts.push_back(A.cmp(Lhs, Cmp::Eq, Rhs));
  }

  // φ_Span (Eqs. 37–39) per state; skipped entirely in Lazy mode (the
  // caller runs the connectivity CEGAR loop instead).
  for (uint32_t Q = 0; Span == SpanMode::Eager && Q < NumStates; ++Q) {
    if (Bud && !Bud->checkpoint("tagaut.parikh"))
      break;
    LinTerm SigmaQ = LinTerm::variable(Sigma[Q]);
    LinTerm GammaQ = LinTerm::variable(Pf.GammaInit[Q]);
    // σ_q = 0 ⇔ γ^I_q = 1 (Eq. 37).
    Parts.push_back(A.iff(A.cmp(SigmaQ, Cmp::Eq, LinTerm(0)),
                          A.cmp(GammaQ, Cmp::Eq, LinTerm(1))));
    // σ_q <= -1 ⇒ γ^I_q = 0 ∧ all incoming counts are 0 (Eq. 38).
    {
      std::vector<FormulaId> Zero{A.cmp(GammaQ, Cmp::Eq, LinTerm(0))};
      Zero.reserve(1 + In[Q].size());
      for (uint32_t I : In[Q])
        Zero.push_back(A.cmp(LinTerm::variable(Pf.TransCount[I]), Cmp::Eq,
                             LinTerm(0)));
      Parts.push_back(A.implies(A.cmp(SigmaQ, Cmp::Le, LinTerm(-1)),
                                A.conj(std::move(Zero))));
    }
    // σ_q > 0 ⇒ some taken incoming transition comes from a tree
    // predecessor one step shallower (Eq. 39).
    {
      std::vector<FormulaId> Witnesses;
      for (uint32_t I : In[Q]) {
        uint32_t P = Ta.transitions()[I].From;
        if (P == Q)
          continue; // self-loops cannot extend a spanning tree path
        LinTerm SigmaP = LinTerm::variable(Sigma[P]);
        Witnesses.push_back(A.conj(
            {A.cmp(LinTerm::variable(Pf.TransCount[I]), Cmp::Gt,
                   LinTerm(0)),
             A.cmp(SigmaP, Cmp::Ge, LinTerm(0)),
             A.cmp(SigmaQ, Cmp::Eq, SigmaP + LinTerm(1))}));
      }
      Parts.push_back(A.implies(A.cmp(SigmaQ, Cmp::Gt, LinTerm(0)),
                                A.disj(std::move(Witnesses))));
    }
  }

  Pf.Formula = A.conj(std::move(Parts));
  return Pf;
}

std::vector<uint32_t> postr::tagaut::connectedComponentGap(
    const TagAutomaton &Ta, const ParikhFormula &Pf,
    const std::vector<int64_t> &Model) {
  uint32_t NumStates = Ta.numStates();
  if (NumStates == 0)
    return {}; // the empty run is trivially connected
  std::vector<std::vector<uint32_t>> UsedOut(NumStates);
  std::vector<bool> Touched(NumStates, false);
  for (uint32_t I = 0; I < Ta.transitions().size(); ++I) {
    if (Model[Pf.TransCount[I]] <= 0)
      continue;
    const TaTransition &T = Ta.transitions()[I];
    UsedOut[T.From].push_back(T.To);
    Touched[T.From] = Touched[T.To] = true;
  }
  uint32_t Start = ~0u;
  for (uint32_t Q = 0; Q < NumStates; ++Q)
    if (Model[Pf.GammaInit[Q]] == 1)
      Start = Q;
  assert(Start != ~0u && "model has no start state");

  std::vector<bool> Reach(NumStates, false);
  std::vector<uint32_t> Work{Start};
  Reach[Start] = true;
  while (!Work.empty()) {
    uint32_t Q = Work.back();
    Work.pop_back();
    for (uint32_t R : UsedOut[Q])
      if (!Reach[R]) {
        Reach[R] = true;
        Work.push_back(R);
      }
  }
  std::vector<uint32_t> Gap;
  for (uint32_t Q = 0; Q < NumStates; ++Q)
    if (Touched[Q] && !Reach[Q])
      Gap.push_back(Q);
  return Gap;
}

lia::FormulaId
postr::tagaut::connectivityCut(const TagAutomaton &Ta, const ParikhFormula &Pf,
                               lia::Arena &A,
                               const std::vector<uint32_t> &Gap) {
  assert(!Gap.empty() && "cut requires a non-empty disconnected component");
  std::vector<bool> InGap(Ta.numStates(), false);
  for (uint32_t Q : Gap)
    InGap[Q] = true;
  LinTerm FlowFrom;  // Σ #δ with src ∈ Gap
  LinTerm FlowInto;  // Σ #δ with src ∉ Gap, tgt ∈ Gap
  for (uint32_t I = 0; I < Ta.transitions().size(); ++I) {
    const TaTransition &T = Ta.transitions()[I];
    if (InGap[T.From])
      FlowFrom.addMonomial(Pf.TransCount[I], 1);
    else if (InGap[T.To])
      FlowInto.addMonomial(Pf.TransCount[I], 1);
  }
  std::vector<FormulaId> Alts;
  Alts.push_back(A.cmp(FlowFrom, Cmp::Le, LinTerm(0)));
  Alts.push_back(A.cmp(FlowInto, Cmp::Ge, LinTerm(1)));
  for (uint32_t Q : Gap)
    if (Ta.isInitial(Q))
      Alts.push_back(A.cmp(LinTerm::variable(Pf.GammaInit[Q]), Cmp::Eq,
                           LinTerm(1)));
  return A.disj(std::move(Alts));
}

std::vector<uint32_t>
postr::tagaut::decodeRun(const TagAutomaton &Ta, const ParikhFormula &Pf,
                         const std::vector<int64_t> &Model) {
  uint32_t NumStates = Ta.numStates();
  if (NumStates == 0)
    return {}; // zero-state automaton: the empty run
  // Remaining multiplicity per transition.
  std::vector<int64_t> Remaining(Ta.transitions().size());
  uint64_t Total = 0;
  for (uint32_t I = 0; I < Remaining.size(); ++I) {
    Remaining[I] = Model[Pf.TransCount[I]];
    assert(Remaining[I] >= 0 && "negative transition count");
    Total += static_cast<uint64_t>(Remaining[I]);
  }
  // Start state: the unique q with γ^I_q = 1.
  uint32_t Start = ~0u;
  for (uint32_t Q = 0; Q < NumStates; ++Q)
    if (Model[Pf.GammaInit[Q]] == 1)
      Start = Q;
  assert(Start != ~0u && "model has no start state");

  std::vector<std::vector<uint32_t>> Out(NumStates);
  for (uint32_t I = 0; I < Ta.transitions().size(); ++I)
    Out[Ta.transitions()[I].From].push_back(I);
  std::vector<size_t> Cursor(NumStates, 0);

  // Hierholzer's algorithm for an Euler path on the multigraph given by
  // the counts; existence is guaranteed by Kirchhoff + φ_Span.
  std::vector<uint32_t> Path;     // finished, reversed
  std::vector<uint32_t> StackTr;  // transition stack
  std::vector<uint32_t> StackSt{Start};
  while (!StackSt.empty()) {
    uint32_t Q = StackSt.back();
    bool Advanced = false;
    while (Cursor[Q] < Out[Q].size()) {
      uint32_t I = Out[Q][Cursor[Q]];
      if (Remaining[I] > 0) {
        --Remaining[I];
        StackSt.push_back(Ta.transitions()[I].To);
        StackTr.push_back(I);
        Advanced = true;
        break;
      }
      ++Cursor[Q];
    }
    if (Advanced)
      continue;
    StackSt.pop_back();
    if (!StackTr.empty() && !StackSt.empty()) {
      Path.push_back(StackTr.back());
      StackTr.pop_back();
    }
  }
  std::reverse(Path.begin(), Path.end());
  assert(Path.size() == Total && "model counts are not a connected walk");
  return Path;
}

std::map<VarId, Word>
postr::tagaut::runToAssignment(const TagAutomaton &Ta, const TagTable &Tags,
                               const std::vector<uint32_t> &Run) {
  std::map<VarId, Word> Out;
  for (uint32_t I : Run) {
    const TaTransition &T = Ta.transitions()[I];
    std::optional<Symbol> Sym;
    std::optional<VarId> Var;
    for (TagId Id : T.Tags) {
      const Tag &Tg = Tags.get(Id);
      if (Tg.Kind == TagKind::Sym)
        Sym = Tg.Sym;
      if (Tg.Kind == TagKind::Len)
        Var = Tg.Var;
    }
    if (Sym && Var)
      Out[*Var].push_back(*Sym);
  }
  return Out;
}
