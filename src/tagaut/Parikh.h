//===- tagaut/Parikh.h - Parikh formula of a tag automaton -------*- C++ -*-===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Parikh formula PF(T) of Appendix A: its models are exactly the
/// transition-count images of accepting runs (Eq. 1). Per state it emits
/// the φ_Init/φ_Fin 0-1 constraints, Kirchhoff's flow law (Eq. 36), and
/// the spanning-tree connectivity constraints φ_Span (Eqs. 37–39).
///
/// Tag counts (the free variables of PF_tag, Eq. 2) are exposed as linear
/// terms over the transition-count variables instead of extra LIA
/// variables — an equisatisfiable inlining that keeps the Simplex tableau
/// small.
///
//===----------------------------------------------------------------------===//

#ifndef POSTR_TAGAUT_PARIKH_H
#define POSTR_TAGAUT_PARIKH_H

#include "lia/Lia.h"
#include "tagaut/TagAutomaton.h"

#include <map>
#include <string>
#include <vector>

namespace postr {

class Budget;

namespace tagaut {

/// The Parikh formula together with its variable bookkeeping.
struct ParikhFormula {
  lia::FormulaId Formula = 0;
  /// One count variable per tag-automaton transition (#δ, >= 0).
  std::vector<lia::Var> TransCount;
  /// γ^I_q / γ^F_q indicator variables, per state.
  std::vector<lia::Var> GammaInit, GammaFin;

  /// The tag-count term #t (Eq. 2) of \p T, i.e. the sum of the count
  /// variables of all transitions carrying the tag.
  lia::LinTerm tagTerm(TagId T) const {
    auto It = TagUses.find(T);
    if (It == TagUses.end())
      return {};
    std::vector<lia::Var> Vars;
    Vars.reserve(It->second.size());
    for (uint32_t Idx : It->second)
      Vars.push_back(TransCount[Idx]);
    return lia::LinTerm::sum(Vars);
  }

  /// True if any transition carries \p T.
  bool tagOccurs(TagId T) const { return TagUses.count(T) != 0; }

  std::map<TagId, std::vector<uint32_t>> TagUses;
};

/// How run-connectivity (App. A's φ_Span, Eqs. 37–39) is enforced.
enum class SpanMode {
  /// Emit φ_Span eagerly: σ_q depth variables plus one implication and
  /// one disjunction-over-predecessors per state. Self-contained (every
  /// model is a genuine run image) but the per-state disjunctions blow up
  /// the boolean abstraction of the DPLL(T) loop on larger automata.
  Eager,
  /// Omit φ_Span. Models are then only flow-consistent pseudo-runs; the
  /// caller must validate each model with `connectedComponentGap` and
  /// refute disconnected ones with `connectivityCut` until a genuine run
  /// appears (CEGAR). Mandatory caveat: a Lazy PF may NOT be placed under
  /// a quantifier (the ¬contains blocks), where no caller sees the inner
  /// models — the encoder forces Eager there.
  Lazy,
};

/// Builds PF(T) into \p Arena. \p Prefix names the fresh variables (the
/// ¬contains encoding instantiates the same automaton twice, as #1/#2).
/// \p Bud, when non-null, is probed per state ("tagaut.parikh") and
/// charged for the minted variables; a trip returns a PARTIAL formula —
/// the caller must check Bud->exceeded() and discard it.
ParikhFormula buildParikhFormula(const TagAutomaton &Ta, lia::Arena &Arena,
                                 const std::string &Prefix,
                                 SpanMode Span = SpanMode::Eager,
                                 Budget *Bud = nullptr);

/// For a model of a Lazy-mode PF: the set of states that carry positive
/// flow but are unreachable from the model's start state over positive-
/// count transitions. Empty iff the counts describe a connected (hence
/// genuine, by Kirchhoff) run. Cheap: one BFS over used transitions.
std::vector<uint32_t> connectedComponentGap(const TagAutomaton &Ta,
                                            const ParikhFormula &Pf,
                                            const std::vector<int64_t> &Model);

/// The CEGAR cut refuting the disconnected component \p Gap: a real run
/// touching Gap either starts inside it or enters it from outside, so
///   Σ_{δ: src ∈ Gap} #δ = 0  ∨  Σ_{δ: src ∉ Gap, tgt ∈ Gap} #δ ≥ 1
///   ∨  ⋁_{q ∈ Gap ∩ I} γ^I_q = 1.
/// Valid for every accepting run and violated by the current model.
lia::FormulaId connectivityCut(const TagAutomaton &Ta,
                               const ParikhFormula &Pf, lia::Arena &Arena,
                               const std::vector<uint32_t> &Gap);

/// Reconstructs an accepting run from a model of PF(T): an Euler-path
/// walk over the transition multiset. Returns transition indices in run
/// order. The model must satisfy PF(T) (asserted).
std::vector<uint32_t> decodeRun(const TagAutomaton &Ta,
                                const ParikhFormula &Pf,
                                const std::vector<int64_t> &Model);

/// Extracts the string assignment encoded by a run: for each variable,
/// the concatenation of the ⟨S,a⟩ symbols on its ⟨L,x⟩-tagged transitions
/// in run order (Sec. 5.1: "an accepting run ... encodes an assignment").
std::map<VarId, Word> runToAssignment(const TagAutomaton &Ta,
                                      const TagTable &Tags,
                                      const std::vector<uint32_t> &Run);

} // namespace tagaut
} // namespace postr

#endif // POSTR_TAGAUT_PARIKH_H
