//===- tagaut/Encoder.cpp - Position constraints to LIA --------------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "tagaut/Encoder.h"

#include "base/Budget.h"

#include <algorithm>
#include <array>
#include <set>

using namespace postr;
using namespace postr::tagaut;
using lia::Arena;
using lia::Cmp;
using lia::FormulaId;
using lia::LinTerm;
using lia::Var;

namespace {

/// The per-run sample variables of Sec. 5.3: mismatch symbols m_{D,s},
/// shared-symbol chain c_l, and local mismatch positions p_{D,s}
/// (Appendix C). One instance per Parikh copy (#1 outer, #2 inner).
struct SampleVars {
  /// [D][side] mismatch symbol, in [0, |Γ|-1].
  std::vector<std::array<Var, 2>> M;
  /// [D][side] local mismatch position, >= 0.
  std::vector<std::array<Var, 2>> P;
  /// [l-1] shared symbol of the l-th sample, l = 1..2K.
  std::vector<Var> C;
};

/// Builds all sample/consistency machinery shared by the outer and inner
/// formula instances.
class SystemBuilder {
public:
  SystemBuilder(Arena &A, const std::vector<PosPredicate> &Preds,
                const VarConcat &Vc, TagTable &Tags, uint32_t AlphabetSize,
                bool EmitCopies)
      : A(A), Preds(Preds), Vc(Vc), Tags(Tags), Sigma(AlphabetSize),
        EmitCopies(EmitCopies), K(static_cast<uint32_t>(Preds.size())) {}

  SampleVars makeSampleVars(const std::string &Prefix);

  /// #⟨M_l,x,D,s,a⟩ under Parikh instance \p Pf.
  LinTerm misCount(const ParikhFormula &Pf, uint32_t L, VarId X, uint32_t D,
                   Side S, Symbol Sym) const {
    return Pf.tagTerm(
        Tags.intern(Tag::mismatch(static_cast<uint16_t>(L), X, D, S, Sym)));
  }
  /// Σ_a #⟨M_l,x,D,s,a⟩.
  LinTerm misCountAllSyms(const ParikhFormula &Pf, uint32_t L, VarId X,
                          uint32_t D, Side S) const {
    LinTerm Sum;
    for (Symbol Sym = 0; Sym < Sigma; ++Sym)
      Sum += misCount(Pf, L, X, D, S, Sym);
    return Sum;
  }
  /// #⟨C_l,x,D,s⟩ (zero term when copies are disabled or l < 2).
  LinTerm copyCount(const ParikhFormula &Pf, uint32_t L, VarId X, uint32_t D,
                    Side S) const {
    if (!EmitCopies || L < 2)
      return LinTerm();
    return Pf.tagTerm(
        Tags.intern(Tag::copy(static_cast<uint16_t>(L), X, D, S)));
  }
  /// #⟨P_l,x⟩.
  LinTerm posCount(const ParikhFormula &Pf, uint32_t L, VarId X) const {
    return Pf.tagTerm(
        Tags.intern(Tag::position(static_cast<uint16_t>(L), X)));
  }
  /// #⟨L,x⟩.
  LinTerm lenTerm(const ParikhFormula &Pf, VarId X) const {
    return Pf.tagTerm(Tags.intern(Tag::length(X)));
  }
  /// Σ_i #⟨L,occ_i⟩ over an occurrence sequence.
  LinTerm sideLen(const ParikhFormula &Pf,
                  const std::vector<VarId> &Occs) const {
    LinTerm Sum;
    for (VarId X : Occs)
      Sum += lenTerm(Pf, X);
    return Sum;
  }
  /// Σ_{u<i} #⟨L,occ_u⟩ — the prefix length before occurrence \p I.
  LinTerm prefixLen(const ParikhFormula &Pf, const std::vector<VarId> &Occs,
                    size_t I) const {
    LinTerm Sum;
    for (size_t U = 0; U < I; ++U)
      Sum += lenTerm(Pf, Occs[U]);
    return Sum;
  }

  /// φ_Fair (Eq. 17): at most one sample per predicate side.
  FormulaId buildFair(const ParikhFormula &Pf);
  /// φ_Consistent (Eq. 18): sampled symbols propagate into m/c vars.
  FormulaId buildConsistent(const ParikhFormula &Pf, const SampleVars &Sv);
  /// φ_Copies (Eq. 19): copy tags follow their source sample immediately.
  FormulaId buildCopies(const ParikhFormula &Pf);
  /// φ_Pos (Eq. 42, with the copy-case off-by-one fixed; see Encoder.h).
  FormulaId buildPositions(const ParikhFormula &Pf, const SampleVars &Sv);

  /// φ^k_∃(s,v) (Eq. 44): side \p S of predicate \p D sampled inside
  /// variable \p X.
  FormulaId existsIn(const ParikhFormula &Pf, uint32_t D, Side S,
                     VarId X) {
    LinTerm Sum;
    for (uint32_t L = 1; L <= 2 * K; ++L) {
      Sum += misCountAllSyms(Pf, L, X, D, S);
      Sum += copyCount(Pf, L, X, D, S);
    }
    return A.cmp(Sum, Cmp::Ge, LinTerm(1));
  }

  /// The mismatch disjunction ⋁_{i,j} (Eq. 45): both sides of predicate
  /// \p D sampled, aligned according to \p Kind, symbols compared with
  /// \p WantEqual. \p Offset is added to the left-hand global position
  /// (κ for ¬contains, 0 otherwise).
  FormulaId mismatchDisjunction(const ParikhFormula &Pf,
                                const SampleVars &Sv, uint32_t D,
                                PredKind Kind, const LinTerm &Offset,
                                bool WantEqual = false);

  /// φ^k_Sat for one predicate (quantifier-free kinds only).
  FormulaId buildPredicateSat(const ParikhFormula &Pf, const SampleVars &Sv,
                              uint32_t D);

  Arena &A;
  const std::vector<PosPredicate> &Preds;
  const VarConcat &Vc;
  TagTable &Tags;
  uint32_t Sigma;
  bool EmitCopies;
  uint32_t K;
};

SampleVars SystemBuilder::makeSampleVars(const std::string &Prefix) {
  SampleVars Sv;
  for (uint32_t D = 0; D < K; ++D) {
    std::array<Var, 2> MRow, PRow;
    for (int S = 0; S < 2; ++S) {
      MRow[S] = A.freshVar(Prefix + "m" + std::to_string(D) +
                               (S == 0 ? "L" : "R"),
                           0, Sigma == 0 ? 0 : Sigma - 1);
      PRow[S] = A.freshVar(Prefix + "p" + std::to_string(D) +
                               (S == 0 ? "L" : "R"),
                           0);
    }
    Sv.M.push_back(MRow);
    Sv.P.push_back(PRow);
  }
  for (uint32_t L = 1; L <= 2 * K; ++L)
    Sv.C.push_back(A.freshVar(Prefix + "c" + std::to_string(L), 0,
                              Sigma == 0 ? 0 : Sigma - 1));
  return Sv;
}

FormulaId SystemBuilder::buildFair(const ParikhFormula &Pf) {
  std::vector<FormulaId> Parts;
  for (uint32_t D = 0; D < K; ++D)
    for (Side S : {Side::L, Side::R}) {
      LinTerm Sum;
      for (uint32_t L = 1; L <= 2 * K; ++L)
        for (VarId X : Vc.Order) {
          Sum += misCountAllSyms(Pf, L, X, D, S);
          Sum += copyCount(Pf, L, X, D, S);
        }
      Parts.push_back(A.cmp(Sum, Cmp::Le, LinTerm(1)));
    }
  return A.conj(std::move(Parts));
}

FormulaId SystemBuilder::buildConsistent(const ParikhFormula &Pf,
                                         const SampleVars &Sv) {
  std::vector<FormulaId> Parts;
  for (uint32_t D = 0; D < K; ++D)
    for (Side S : {Side::L, Side::R}) {
      int SI = S == Side::L ? 0 : 1;
      for (uint32_t L = 1; L <= 2 * K; ++L) {
        for (Symbol Sym = 0; Sym < Sigma; ++Sym) {
          LinTerm Sum;
          for (VarId X : Vc.Order)
            Sum += misCount(Pf, L, X, D, S, Sym);
          if (Sum.isConstant())
            continue; // tag occurs on no transition
          Parts.push_back(A.implies(
              A.cmp(Sum, Cmp::Ge, LinTerm(1)),
              A.conj({A.cmp(LinTerm::variable(Sv.C[L - 1]), Cmp::Eq,
                            LinTerm(static_cast<int64_t>(Sym))),
                      A.cmp(LinTerm::variable(Sv.M[D][SI]), Cmp::Eq,
                            LinTerm(static_cast<int64_t>(Sym)))})));
        }
        if (L >= 2 && EmitCopies) {
          LinTerm Sum;
          for (VarId X : Vc.Order)
            Sum += copyCount(Pf, L, X, D, S);
          if (Sum.isConstant())
            continue;
          Parts.push_back(A.implies(
              A.cmp(Sum, Cmp::Ge, LinTerm(1)),
              A.conj({A.cmp(LinTerm::variable(Sv.C[L - 1]), Cmp::Eq,
                            LinTerm::variable(Sv.M[D][SI])),
                      A.cmp(LinTerm::variable(Sv.C[L - 1]), Cmp::Eq,
                            LinTerm::variable(Sv.C[L - 2]))})));
        }
      }
    }
  return A.conj(std::move(Parts));
}

FormulaId SystemBuilder::buildCopies(const ParikhFormula &Pf) {
  if (!EmitCopies)
    return A.trueF();
  std::vector<FormulaId> Parts;
  for (VarId X : Vc.Order) {
    // A C_{l+1} for x requires an M_l or C_l for x (Eq. 19, part 1).
    for (uint32_t L = 1; L + 1 <= 2 * K; ++L) {
      LinTerm Prev, Next;
      for (uint32_t D = 0; D < K; ++D)
        for (Side S : {Side::L, Side::R}) {
          Prev += misCountAllSyms(Pf, L, X, D, S);
          Prev += copyCount(Pf, L, X, D, S);
          Next += copyCount(Pf, L + 1, X, D, S);
        }
      if (Next.isConstant())
        continue;
      Parts.push_back(A.implies(A.cmp(Prev, Cmp::Le, LinTerm(0)),
                                A.cmp(Next, Cmp::Eq, LinTerm(0))));
    }
    // A level-l copy for x follows its source without consuming further
    // x-letters: #⟨P_l,x⟩ equals the number of level-(l-1) M samples in x
    // (1 when the source is an M — its own letter carries the P_l tag —
    // and 0 when chained after another copy). (Eq. 19, part 2.)
    for (uint32_t L = 2; L <= 2 * K; ++L) {
      LinTerm CSum;
      for (uint32_t D = 0; D < K; ++D)
        for (Side S : {Side::L, Side::R})
          CSum += copyCount(Pf, L, X, D, S);
      if (CSum.isConstant())
        continue;
      LinTerm MSum;
      for (uint32_t D = 0; D < K; ++D)
        for (Side S : {Side::L, Side::R})
          MSum += misCountAllSyms(Pf, L - 1, X, D, S);
      Parts.push_back(A.implies(A.cmp(CSum, Cmp::Ge, LinTerm(1)),
                                A.cmp(posCount(Pf, L, X), Cmp::Eq, MSum)));
    }
  }
  return A.conj(std::move(Parts));
}

FormulaId SystemBuilder::buildPositions(const ParikhFormula &Pf,
                                        const SampleVars &Sv) {
  std::vector<FormulaId> Parts;
  for (uint32_t D = 0; D < K; ++D)
    for (Side S : {Side::L, Side::R}) {
      int SI = S == Side::L ? 0 : 1;
      LinTerm PVar = LinTerm::variable(Sv.P[D][SI]);
      for (VarId X : Vc.Order) {
        LinTerm PosPrefix; // Σ_{k<=l} #⟨P_k,x⟩, accumulated over levels
        for (uint32_t L = 1; L <= 2 * K; ++L) {
          PosPrefix += posCount(Pf, L, X);
          // Direct sample M_l in x: p = Σ_{k<=l} #P_k,x — the sampled
          // letter itself carries P_{l+1} and is excluded.
          LinTerm MSum = misCountAllSyms(Pf, L, X, D, S);
          if (!MSum.isConstant())
            Parts.push_back(A.implies(A.cmp(MSum, Cmp::Ge, LinTerm(1)),
                                      A.cmp(PVar, Cmp::Eq, PosPrefix)));
          // Copy C_l of x's latest sample: the source letter was already
          // counted at its own level, hence the -1 (erratum fix, see
          // Encoder.h).
          LinTerm CSum = copyCount(Pf, L, X, D, S);
          if (!CSum.isConstant())
            Parts.push_back(
                A.implies(A.cmp(CSum, Cmp::Ge, LinTerm(1)),
                          A.cmp(PVar, Cmp::Eq, PosPrefix - LinTerm(1))));
        }
      }
    }
  return A.conj(std::move(Parts));
}

FormulaId SystemBuilder::mismatchDisjunction(const ParikhFormula &Pf,
                                             const SampleVars &Sv,
                                             uint32_t D, PredKind Kind,
                                             const LinTerm &Offset,
                                             bool WantEqual) {
  const PosPredicate &Pred = Preds[D];
  LinTerm PL = LinTerm::variable(Sv.P[D][0]);
  LinTerm PR = LinTerm::variable(Sv.P[D][1]);
  LinTerm ML = LinTerm::variable(Sv.M[D][0]);
  LinTerm MR = LinTerm::variable(Sv.M[D][1]);
  LinTerm TotalL = sideLen(Pf, Pred.Lhs) + Offset;
  LinTerm TotalR = sideLen(Pf, Pred.Rhs);

  std::vector<FormulaId> Cases;
  for (size_t I = 0; I < Pred.Lhs.size(); ++I)
    for (size_t J = 0; J < Pred.Rhs.size(); ++J) {
      LinTerm GlobalL = Offset + prefixLen(Pf, Pred.Lhs, I) + PL;
      LinTerm GlobalR = prefixLen(Pf, Pred.Rhs, J) + PR;
      FormulaId Align =
          Kind == PredKind::NotSuffix
              // ¬suffixof counts the mismatch from the end (Sec. 6.2).
              ? A.cmp(TotalL - GlobalL, Cmp::Eq, TotalR - GlobalR)
              : A.cmp(GlobalL, Cmp::Eq, GlobalR);
      Cases.push_back(A.conj({
          existsIn(Pf, D, Side::L, Pred.Lhs[I]),
          existsIn(Pf, D, Side::R, Pred.Rhs[J]),
          Align,
          A.cmp(ML, WantEqual ? Cmp::Eq : Cmp::Ne, MR),
      }));
    }
  return A.disj(std::move(Cases));
}

FormulaId SystemBuilder::buildPredicateSat(const ParikhFormula &Pf,
                                           const SampleVars &Sv,
                                           uint32_t D) {
  const PosPredicate &Pred = Preds[D];
  LinTerm TotalL = sideLen(Pf, Pred.Lhs);
  LinTerm TotalR = sideLen(Pf, Pred.Rhs);
  LinTerm Zero;

  switch (Pred.Kind) {
  case PredKind::Diseq:
    // φ^II_len ∨ mismatch (Eqs. 7, 15): unequal lengths or a mismatch at
    // one global position.
    return A.disj({A.cmp(TotalL, Cmp::Ne, TotalR),
                   mismatchDisjunction(Pf, Sv, D, Pred.Kind, Zero)});
  case PredKind::NotPrefix:
  case PredKind::NotSuffix:
    // φ^∗FIX_len (Eq. 22): the first argument strictly longer, or a
    // mismatch (aligned from the end for ¬suffixof).
    return A.disj({A.cmp(TotalL, Cmp::Gt, TotalR),
                   mismatchDisjunction(Pf, Sv, D, Pred.Kind, Zero)});
  case PredKind::StrAtEq:
  case PredKind::StrAtNe: {
    // Sec. 6.3. The left side is the single variable xs; its sample is
    // its only letter whenever |xs| = 1.
    assert(Pred.Lhs.size() == 1 && "str.at left side must be one variable");
    LinTerm T = Pred.AtPos;
    FormulaId InBounds =
        A.conj({A.cmp(T, Cmp::Ge, LinTerm(0)), A.cmp(T, Cmp::Lt, TotalR)});
    LinTerm PR = LinTerm::variable(Sv.P[D][1]);
    // ⋁_j: the right-side sample sits exactly at position t (Eq. 25).
    std::vector<FormulaId> AtCases;
    for (size_t J = 0; J < Pred.Rhs.size(); ++J)
      AtCases.push_back(
          A.conj({existsIn(Pf, D, Side::L, Pred.Lhs[0]),
                  existsIn(Pf, D, Side::R, Pred.Rhs[J]),
                  A.cmp(T, Cmp::Eq, prefixLen(Pf, Pred.Rhs, J) + PR)}));
    FormulaId AtMatch = A.disj(std::move(AtCases));
    FormulaId SymCmp =
        A.cmp(LinTerm::variable(Sv.M[D][0]),
              Pred.Kind == PredKind::StrAtEq ? Cmp::Eq : Cmp::Ne,
              LinTerm::variable(Sv.M[D][1]));
    FormulaId Len0 = A.cmp(TotalL, Cmp::Eq, LinTerm(0));
    FormulaId Len1 = A.cmp(TotalL, Cmp::Eq, LinTerm(1));
    if (Pred.Kind == PredKind::StrAtEq)
      // (|xs|=0 ∧ ¬InBounds) ∨ (|xs|=1 ∧ InBounds ∧ same symbol) (Eq. 28)
      return A.disj({A.conj({Len0, A.neg(InBounds)}),
                     A.conj({Len1, InBounds, SymCmp, AtMatch})});
    // Eq. 27, plus the missing |xs| = 0 ∧ InBounds case (erratum fix).
    return A.disj({A.conj({A.cmp(TotalL, Cmp::Gt, LinTerm(0)),
                           A.neg(InBounds)}),
                   A.cmp(TotalL, Cmp::Gt, LinTerm(1)),
                   A.conj({Len0, InBounds}),
                   A.conj({Len1, InBounds, SymCmp, AtMatch})});
  }
  case PredKind::NotContains:
    assert(false && "NotContains has no quantifier-free Sat part");
    return A.trueF();
  }
  assert(false && "bad predicate kind");
  return A.trueF();
}

/// EqualWords(#1, #2) (Eq. 30): the two runs project to the same
/// multiset of A_◦ transitions. With flat languages this pins the same
/// string assignment.
FormulaId buildEqualWords(Arena &A, const TagAutomaton &Ta,
                          const VarConcat &Vc, const ParikhFormula &Pf1,
                          const ParikhFormula &Pf2) {
  std::vector<LinTerm> Sum1(Vc.BaseDelta.size()), Sum2(Vc.BaseDelta.size());
  for (uint32_t I = 0; I < Ta.transitions().size(); ++I) {
    uint32_t B = Ta.transitions()[I].BaseIdx;
    if (B == TaTransition::NoBase)
      continue;
    Sum1[B].addMonomial(Pf1.TransCount[I], 1);
    Sum2[B].addMonomial(Pf2.TransCount[I], 1);
  }
  std::vector<FormulaId> Parts;
  for (uint32_t B = 0; B < Vc.BaseDelta.size(); ++B)
    Parts.push_back(A.cmp(Sum1[B], Cmp::Eq, Sum2[B]));
  return A.conj(std::move(Parts));
}

} // namespace

bool postr::tagaut::notContainsVarsFlat(
    const std::map<VarId, automata::Nfa> &Langs,
    const std::vector<PosPredicate> &Preds) {
  std::set<VarId> Vars;
  for (const PosPredicate &P : Preds) {
    if (P.Kind != PredKind::NotContains)
      continue;
    Vars.insert(P.Lhs.begin(), P.Lhs.end());
    Vars.insert(P.Rhs.begin(), P.Rhs.end());
  }
  for (VarId X : Vars) {
    auto It = Langs.find(X);
    if (It == Langs.end() || !It->second.isFlat())
      return false;
  }
  return true;
}

SystemEncoding postr::tagaut::encodeSystem(
    lia::Arena &A, const std::map<VarId, automata::Nfa> &Langs,
    const std::vector<PosPredicate> &Preds, uint32_t AlphabetSize,
    const EncoderOptions &Opts) {
  assert(AlphabetSize > 0 && "alphabet must be non-empty");
#ifndef NDEBUG
  for (const auto &[X, Nfa] : Langs) {
    assert(!Nfa.hasEpsilon() && "variable automata must be epsilon-free");
    (void)X;
  }
  for (const PosPredicate &P : Preds) {
    for (VarId X : P.Lhs)
      assert(Langs.count(X) && "predicate variable without language");
    for (VarId X : P.Rhs)
      assert(Langs.count(X) && "predicate variable without language");
  }
  assert(notContainsVarsFlat(Langs, Preds) &&
         "NotContains requires flat languages (check before encoding)");
#endif

  SystemEncoding Enc;
  Budget *Bud = Opts.Budget;
  // Phase probe: true means keep going. On a trip the function returns
  // the partial encoding immediately; the caller checks Bud->exceeded().
  auto Probe = [Bud] { return !Bud || Bud->checkpoint("tagaut.encode"); };
  uint32_t FirstVar = A.numVars();
  Enc.Vc = buildVarConcat(Langs);
  SystemTaOptions TaOpts;
  TaOpts.NumPreds = static_cast<uint32_t>(Preds.size());
  TaOpts.AlphabetSize = AlphabetSize;
  // Copies are needed whenever two samples may target the same letter:
  // always with >= 2 predicates, and for x = str.at(...) even alone (the
  // two sides of e.g. x = str.at(x, 0) sample one physical letter). The
  // mismatch-style predicates require *different* symbols, so a shared
  // letter can never witness them.
  bool AnyStrAtEq = std::any_of(
      Preds.begin(), Preds.end(),
      [](const PosPredicate &P) { return P.Kind == PredKind::StrAtEq; });
  TaOpts.EmitCopies = Opts.EmitCopies && (Preds.size() > 1 || AnyStrAtEq);
  Enc.Ta = buildSystemTagAutomaton(Enc.Vc, TaOpts, Enc.Tags);
  if (Bud)
    Bud->chargeMem(Enc.Ta.transitions().size() * sizeof(TaTransition) +
                   Enc.Ta.numStates() * 16);
  if (!Probe())
    return Enc;
  bool AnyNotContains = std::any_of(
      Preds.begin(), Preds.end(),
      [](const PosPredicate &P) { return P.Kind == PredKind::NotContains; });
  Enc.Span = AnyNotContains ? SpanMode::Eager : Opts.Span;
  Enc.Pf = buildParikhFormula(Enc.Ta, A, "o.", Enc.Span, Bud);
  if (!Probe())
    return Enc;

  SystemBuilder B(A, Preds, Enc.Vc, Enc.Tags, AlphabetSize,
                  TaOpts.EmitCopies);
  SampleVars Sv = B.makeSampleVars("o.");

  for (VarId X : Enc.Vc.Order)
    Enc.LenTerms[X] = B.lenTerm(Enc.Pf, X);

  std::vector<FormulaId> OuterParts{Enc.Pf.Formula, B.buildFair(Enc.Pf),
                                    B.buildConsistent(Enc.Pf, Sv),
                                    B.buildCopies(Enc.Pf),
                                    B.buildPositions(Enc.Pf, Sv)};
  for (uint32_t D = 0; D < Preds.size(); ++D) {
    if (Preds[D].Kind == PredKind::NotContains)
      continue;
    OuterParts.push_back(B.buildPredicateSat(Enc.Pf, Sv, D));
  }
  Enc.Outer = A.conj(std::move(OuterParts));
  if (!Probe())
    return Enc;

  // One ∀κ block per ¬contains (Eq. 32): fresh #2 Parikh instance, same
  // words (EqualWords), and a mismatch for the offset κ.
  for (uint32_t D = 0; D < Preds.size(); ++D) {
    if (Preds[D].Kind != PredKind::NotContains)
      continue;
    if (!Probe())
      return Enc;
    std::string Prefix = "i" + std::to_string(D) + ".";
    lia::Var FirstInner = A.numVars();
    ParikhFormula Pf2 =
        buildParikhFormula(Enc.Ta, A, Prefix, SpanMode::Eager, Bud);
    SampleVars Sv2 = B.makeSampleVars(Prefix);
    lia::ForallBlock Block;
    Block.Kappa = A.freshVar(Prefix + "kappa", 0);
    Block.Upper = B.sideLen(Enc.Pf, Preds[D].Rhs) -
                  B.sideLen(Enc.Pf, Preds[D].Lhs);
    LinTerm Offset = LinTerm::variable(Block.Kappa);
    Block.Inner = A.conj({
        Pf2.Formula,
        buildEqualWords(A, Enc.Ta, Enc.Vc, Enc.Pf, Pf2),
        B.buildFair(Pf2),
        B.buildConsistent(Pf2, Sv2),
        B.buildCopies(Pf2),
        B.buildPositions(Pf2, Sv2),
        B.mismatchDisjunction(Pf2, Sv2, D, PredKind::NotContains, Offset),
    });
    // Everything minted for this block except κ is inner-existential;
    // the MBQI instantiation lemmas re-clone these per offset.
    for (lia::Var V = FirstInner; V < A.numVars(); ++V)
      if (V != Block.Kappa)
        Block.InnerVars.push_back(V);
    Enc.Blocks.push_back(std::move(Block));
  }

  // Outer variables (pinned for MBQI inner queries): the outer transition
  // counts — they determine the encoded assignment.
  for (lia::Var V : Enc.Pf.TransCount)
    Enc.OuterVars.push_back(V);
  // Semantic blocking terms: project outer counts onto A_◦ transitions
  // (the #1 side of EqualWords) so MBQI excludes a refuted *string
  // assignment* wholesale rather than one run of it.
  if (!Enc.Blocks.empty()) {
    std::vector<LinTerm> Sums(Enc.Vc.BaseDelta.size());
    for (uint32_t I = 0; I < Enc.Ta.transitions().size(); ++I) {
      uint32_t Base = Enc.Ta.transitions()[I].BaseIdx;
      if (Base != TaTransition::NoBase)
        Sums[Base].addMonomial(Enc.Pf.TransCount[I], 1);
    }
    Enc.BlockTerms = std::move(Sums);
  }
  (void)FirstVar;
  return Enc;
}

std::map<VarId, Word>
SystemEncoding::decode(const std::vector<int64_t> &Model) const {
  std::vector<uint32_t> Run = decodeRun(Ta, Pf, Model);
  std::map<VarId, Word> Assignment = runToAssignment(Ta, Tags, Run);
  // Variables whose word is empty do not appear in the run's S tags.
  for (VarId X : Vc.Order)
    Assignment.try_emplace(X, Word{});
  return Assignment;
}
