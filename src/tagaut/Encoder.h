//===- tagaut/Encoder.h - Position constraints to LIA ------------*- C++ -*-===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's central reduction: a conjunction of position predicates
/// over regularly-constrained variables (the R′ ∧ P′ part of the monadic
/// decomposition, Sec. 3) becomes one LIA formula over the Parikh tag
/// image of a single 2K+1-copy tag automaton (Secs. 5.3 and 6.5), plus
/// one ∀κ block per ¬contains predicate (Sec. 6.4) which the MBQI layer
/// discharges.
///
/// Supported predicates: t ≠ t, ¬prefixof, ¬suffixof, x = str.at(t, i),
/// x ≠ str.at(t, i), ¬contains(t, t) — exactly the P grammar of Sec. 2
/// (the x_i = len(·) form is handled by the caller through `LenTerms`).
///
/// Two deliberate deviations from the report's formulas, both validated
/// against the brute-force oracle and against Fig. 4's own example run:
///  1. Eq. (42) computes a copy-derived mismatch position as
///     Σ_{k≤l} #⟨P_k,v⟩, which over-counts by one (the sampled letter
///     itself carries the level-l P tag placed by rule 3 of Sec. 5.3);
///     we subtract 1 in the C_l case.
///  2. Eq. (27) for x ≠ str.at(t, i) omits the satisfying case
///     |x| = 0 ∧ InBounds (ε differs from any real character); we add it.
///
//===----------------------------------------------------------------------===//

#ifndef POSTR_TAGAUT_ENCODER_H
#define POSTR_TAGAUT_ENCODER_H

#include "lia/Mbqi.h"
#include "tagaut/Parikh.h"
#include "tagaut/TagAutomaton.h"

#include <map>
#include <vector>

namespace postr {
namespace tagaut {

/// Kinds of position predicates (Sec. 2 normal form, P component).
enum class PredKind {
  Diseq,       ///< x1…xn ≠ y1…ym
  NotPrefix,   ///< ¬prefixof(x1…xn, y1…ym)
  NotSuffix,   ///< ¬suffixof(x1…xn, y1…ym)
  StrAtEq,     ///< xs = str.at(y1…ym, t)
  StrAtNe,     ///< xs ≠ str.at(y1…ym, t)
  NotContains, ///< ¬contains(x1…xn, y1…ym), flat languages required
};

/// One position predicate over variable-occurrence sequences.
struct PosPredicate {
  PredKind Kind;
  /// Left side occurrences; for StrAt* this is the single variable xs.
  std::vector<VarId> Lhs;
  /// Right side occurrences.
  std::vector<VarId> Rhs;
  /// For StrAt*: the position term t (over arena integer variables),
  /// built by the caller in the same arena the encoder uses.
  lia::LinTerm AtPos;
};

/// Options controlling the construction (the ablation benches flip these).
struct EncoderOptions {
  /// Emit copy (C) transitions/constraints; required for completeness
  /// with shared mismatches across >= 2 predicates (Sec. 5.3).
  bool EmitCopies = true;
  /// Connectivity discipline for the outer Parikh formula. Lazy (the
  /// default) keeps the boolean abstraction near-conjunctive and relies
  /// on the solver's CEGAR cut loop; forced to Eager whenever a
  /// ¬contains block is present (the inner #2 instances sit under ∀κ
  /// where no cut loop can see their models, and EqualWords ties #1 to
  /// them transition-by-transition).
  SpanMode Span = SpanMode::Lazy;
  /// Optional shared resource budget (base/Budget.h), probed at the
  /// encoder's phase boundaries ("tagaut.encode") and threaded into the
  /// Parikh constructions ("tagaut.parikh"); tag-automaton and formula
  /// growth is charged against its memory cap. A trip makes encodeSystem
  /// return a PARTIAL encoding — callers must check Budget->exceeded()
  /// and discard it.
  postr::Budget *Budget = nullptr;
};

/// The result of encoding a system R′ ∧ P′.
struct SystemEncoding {
  /// Quantifier-free part over the #1 Parikh variables: PF_tag ∧ φ_Fair
  /// ∧ φ_Consistent ∧ φ_Copies ∧ ⋀ φ^i_Sat (Eq. 33).
  lia::FormulaId Outer = 0;
  /// One ∀κ block per ¬contains predicate (Eq. 32); empty otherwise.
  std::vector<lia::ForallBlock> Blocks;
  /// When Blocks is non-empty: the per-A_◦-transition projection sums of
  /// the outer Parikh counts (the #1 side of EqualWords, Eq. 30). With
  /// flat languages their valuation pins the string assignment, so MBQI
  /// blocks refuted candidates on them.
  std::vector<lia::LinTerm> BlockTerms;
  /// Per-variable length term #⟨L,x⟩ for the caller's I constraints
  /// (Sec. 6.1) and integer model decoding.
  std::map<VarId, lia::LinTerm> LenTerms;
  /// All #1 variables (for MBQI model blocking).
  std::vector<lia::Var> OuterVars;
  /// The span mode the outer Parikh formula was actually built with
  /// (Opts.Span, overridden to Eager when ¬contains blocks exist). When
  /// Lazy, the solver must run the connectivity CEGAR loop.
  SpanMode Span = SpanMode::Eager;

  /// Decodes a model of Outer (∧ the caller's I) into a string
  /// assignment by Euler-walking the transition counts.
  std::map<VarId, Word> decode(const std::vector<int64_t> &Model) const;

  // Construction internals, exposed for tests, decoding, and benches.
  TagTable Tags;
  VarConcat Vc;
  TagAutomaton Ta;
  ParikhFormula Pf;
};

/// Encodes the system. Preconditions (asserted): every language ε-free
/// and non-empty-language; every variable occurring in some predicate has
/// a language; alphabet non-empty; every variable of a NotContains
/// predicate has a flat language (check with `notContainsVarsFlat`).
SystemEncoding encodeSystem(lia::Arena &A,
                            const std::map<VarId, automata::Nfa> &Langs,
                            const std::vector<PosPredicate> &Preds,
                            uint32_t AlphabetSize,
                            const EncoderOptions &Opts = {});

/// True if every variable occurring in a NotContains predicate of
/// \p Preds has a flat language in \p Langs (Thm. 6.5's side condition).
bool notContainsVarsFlat(const std::map<VarId, automata::Nfa> &Langs,
                         const std::vector<PosPredicate> &Preds);

} // namespace tagaut
} // namespace postr

#endif // POSTR_TAGAUT_ENCODER_H
