//===- tagaut/Tags.h - Tag alphabet for tag automata -------------*- C++ -*-===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tag alphabet of Sec. 4/5: ⟨S,a⟩ (symbol), ⟨L,x⟩ (length), ⟨P_i,x⟩
/// (position at copy level i), ⟨M_i,x,D,s,a⟩ (the i-th mismatch sample
/// for predicate D, side s, in variable x, with symbol a), and
/// ⟨C_i,x,D,s⟩ (copy: predicate D/side s shares the latest sampled symbol
/// of x). Tags are interned into dense `TagId`s; the Parikh tag formula
/// (Eq. 2) counts them per accepting run.
///
//===----------------------------------------------------------------------===//

#ifndef POSTR_TAGAUT_TAGS_H
#define POSTR_TAGAUT_TAGS_H

#include "base/Base.h"

#include <map>
#include <string>
#include <vector>

namespace postr {
namespace tagaut {

/// Identifier of one interned tag.
using TagId = uint32_t;

/// Side of a position predicate (Sec. 5.3 uses s ∈ {L, R}).
enum class Side : uint8_t { L, R };

inline const char *sideName(Side S) { return S == Side::L ? "L" : "R"; }

enum class TagKind : uint8_t {
  Sym,  ///< ⟨S,a⟩
  Len,  ///< ⟨L,x⟩
  Pos,  ///< ⟨P_i,x⟩, Level = i (1-based)
  Mis,  ///< ⟨M_i,x,D,s,a⟩, Level = i
  Copy, ///< ⟨C_i,x,D,s⟩, Level = i
};

/// One tag. Unused fields are zero.
struct Tag {
  TagKind Kind;
  Side S = Side::L;
  uint16_t Level = 0; ///< copy-level index i for Pos/Mis/Copy
  VarId Var = 0;      ///< x for Len/Pos/Mis/Copy
  uint32_t Pred = 0;  ///< D for Mis/Copy
  Symbol Sym = 0;     ///< a for Sym/Mis

  friend auto operator<=>(const Tag &A, const Tag &B) = default;

  static Tag symbol(Symbol A) { return {TagKind::Sym, Side::L, 0, 0, 0, A}; }
  static Tag length(VarId X) { return {TagKind::Len, Side::L, 0, X, 0, 0}; }
  static Tag position(uint16_t Level, VarId X) {
    return {TagKind::Pos, Side::L, Level, X, 0, 0};
  }
  static Tag mismatch(uint16_t Level, VarId X, uint32_t Pred, Side S,
                      Symbol A) {
    return {TagKind::Mis, S, Level, X, Pred, A};
  }
  static Tag copy(uint16_t Level, VarId X, uint32_t Pred, Side S) {
    return {TagKind::Copy, S, Level, X, Pred, 0};
  }
};

/// Interns tags to dense ids.
class TagTable {
public:
  TagId intern(const Tag &T) {
    auto [It, Inserted] = Index.try_emplace(T, 0);
    if (Inserted) {
      It->second = static_cast<TagId>(Table.size());
      Table.push_back(T);
    }
    return It->second;
  }

  const Tag &get(TagId Id) const { return Table[Id]; }
  uint32_t size() const { return static_cast<uint32_t>(Table.size()); }

  std::string str(TagId Id) const {
    const Tag &T = get(Id);
    switch (T.Kind) {
    case TagKind::Sym:
      return "<S," + std::to_string(T.Sym) + ">";
    case TagKind::Len:
      return "<L,x" + std::to_string(T.Var) + ">";
    case TagKind::Pos:
      return "<P" + std::to_string(T.Level) + ",x" + std::to_string(T.Var) +
             ">";
    case TagKind::Mis:
      return "<M" + std::to_string(T.Level) + ",x" + std::to_string(T.Var) +
             ",D" + std::to_string(T.Pred) + "," + sideName(T.S) + "," +
             std::to_string(T.Sym) + ">";
    case TagKind::Copy:
      return "<C" + std::to_string(T.Level) + ",x" + std::to_string(T.Var) +
             ",D" + std::to_string(T.Pred) + "," + sideName(T.S) + ">";
    }
    return "?";
  }

private:
  std::map<Tag, TagId> Index;
  std::vector<Tag> Table;
};

} // namespace tagaut
} // namespace postr

#endif // POSTR_TAGAUT_TAGS_H
