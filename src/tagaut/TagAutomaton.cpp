//===- tagaut/TagAutomaton.cpp - Tag automaton constructions ---------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "tagaut/TagAutomaton.h"

#include <algorithm>

using namespace postr;
using namespace postr::tagaut;
using automata::Nfa;
using automata::Transition;

VarConcat postr::tagaut::buildVarConcat(
    const std::map<VarId, automata::Nfa> &Langs) {
  VarConcat Vc;
  // Per-variable state base offsets.
  std::map<VarId, uint32_t> Base;
  for (const auto &[X, A] : Langs) {
    assert(!A.hasEpsilon() && "variable automata must be epsilon-free");
    Vc.Order.push_back(X);
    Base[X] = Vc.numStates();
    Vc.AlphabetSize = std::max(Vc.AlphabetSize, A.alphabetSize());
    for (uint32_t Q = 0; Q < A.numStates(); ++Q)
      Vc.VarOfState.push_back(X);
  }
  Vc.IsInitial.assign(Vc.numStates(), false);
  Vc.IsFinal.assign(Vc.numStates(), false);

  // Block-internal symbol transitions.
  for (const auto &[X, A] : Langs)
    for (const Transition &T : A.transitions())
      Vc.BaseDelta.push_back(
          {Base[X] + T.From, Base[X] + T.To, T.Sym, X});

  // ε-connectors between consecutive blocks, initial/final marking.
  for (size_t I = 0; I < Vc.Order.size(); ++I) {
    VarId X = Vc.Order[I];
    const Nfa &A = Langs.at(X);
    if (I == 0)
      for (uint32_t Q : A.initialStates())
        Vc.IsInitial[Base[X] + Q] = true;
    if (I + 1 == Vc.Order.size())
      for (uint32_t Q : A.finalStates())
        Vc.IsFinal[Base[X] + Q] = true;
    if (I + 1 < Vc.Order.size()) {
      VarId Y = Vc.Order[I + 1];
      const Nfa &B = Langs.at(Y);
      for (uint32_t QF : A.finalStates())
        for (uint32_t QI : B.initialStates())
          Vc.BaseDelta.push_back(
              {Base[X] + QF, Base[Y] + QI, VarConcat::Epsilon, X});
    }
  }
  return Vc;
}

TagAutomaton postr::tagaut::buildSystemTagAutomaton(
    const VarConcat &Vc, const SystemTaOptions &Opts, TagTable &Tags) {
  uint32_t K = Opts.NumPreds;
  uint32_t NumCopies = 2 * K + 1;
  TagAutomaton Ta;
  Ta.addStates(Vc.numStates() * NumCopies);

  auto StateAt = [&](uint32_t Q, uint32_t Copy) {
    // Copy is 1-based as in the paper.
    return Q + (Copy - 1) * Vc.numStates();
  };

  for (uint32_t Q = 0; Q < Vc.numStates(); ++Q) {
    if (Vc.IsInitial[Q])
      Ta.markInitial(StateAt(Q, 1));
    if (Vc.IsFinal[Q])
      for (uint32_t Copy = 1; Copy <= NumCopies; Copy += 2)
        Ta.markFinal(StateAt(Q, Copy));
  }

  for (uint32_t B = 0; B < Vc.BaseDelta.size(); ++B) {
    const VarConcat::BaseTransition &T = Vc.BaseDelta[B];
    if (T.Sym == VarConcat::Epsilon) {
      // Connector transitions replicate per copy, tagless.
      for (uint32_t Copy = 1; Copy <= NumCopies; ++Copy)
        Ta.addTransition({StateAt(T.From, Copy), StateAt(T.To, Copy), B,
                          /*AtMostOnce=*/false, {}});
      continue;
    }
    TagId SymTag = Tags.intern(Tag::symbol(T.Sym));
    TagId LenTag = Tags.intern(Tag::length(T.Var));
    for (uint32_t Copy = 1; Copy <= NumCopies; ++Copy) {
      // In-copy letter: ⟨S,a⟩⟨L,z⟩⟨P_Copy,z⟩.
      TagId PosTag = Tags.intern(
          Tag::position(static_cast<uint16_t>(Copy), T.Var));
      Ta.addTransition({StateAt(T.From, Copy), StateAt(T.To, Copy), B,
                        /*AtMostOnce=*/false, {SymTag, LenTag, PosTag}});
      if (Copy > 2 * K)
        continue;
      // Mismatch jumps Copy → Copy+1: one per predicate and side,
      // carrying ⟨M_Copy,z,D,s,a⟩ and the P tag of the *target* level
      // (the sampled letter counts toward level Copy+1, cf. Sec. 5.3).
      TagId NextPosTag = Tags.intern(
          Tag::position(static_cast<uint16_t>(Copy + 1), T.Var));
      for (uint32_t D = 0; D < K; ++D)
        for (Side S : {Side::L, Side::R}) {
          TagId MisTag = Tags.intern(Tag::mismatch(
              static_cast<uint16_t>(Copy), T.Var, D, S, T.Sym));
          Ta.addTransition({StateAt(T.From, Copy),
                            StateAt(T.To, Copy + 1), B,
                            /*AtMostOnce=*/true,
                            {SymTag, LenTag, NextPosTag, MisTag}});
        }
    }
  }

  // Copy (C) jumps: stay at the same A_◦ state, advance one level,
  // sharing the latest sampled symbol of the state's own variable
  // (Sec. 5.3; taking the jump before any further letter is enforced by
  // φ_Copies in the LIA reduction).
  if (Opts.EmitCopies && K >= 1) {
    for (uint32_t Q = 0; Q < Vc.numStates(); ++Q) {
      VarId X = Vc.VarOfState[Q];
      for (uint32_t Copy = 2; Copy <= 2 * K; ++Copy)
        for (uint32_t D = 0; D < K; ++D)
          for (Side S : {Side::L, Side::R}) {
            TagId CopyTag = Tags.intern(
                Tag::copy(static_cast<uint16_t>(Copy), X, D, S));
            Ta.addTransition({StateAt(Q, Copy), StateAt(Q, Copy + 1),
                              TaTransition::NoBase, /*AtMostOnce=*/true,
                              {CopyTag}});
          }
    }
  }
  return Ta;
}
