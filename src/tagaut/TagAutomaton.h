//===- tagaut/TagAutomaton.h - Tag automata (Sec. 4) -------------*- C++ -*-===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tag automata (Sec. 4): NFAs whose transitions carry sets of tags used
/// for counting, plus the two building blocks the constructions of
/// Secs. 5–6 need:
///
///  * `VarConcat` — the ε-concatenation A_◦ of the LenTag'd variable
///    automata in a fixed variable order ≼ (Sec. 5.2), remembering which
///    variable every state/transition belongs to;
///  * `buildSystemTagAutomaton` — the 2K+1-copy construction of Sec. 5.3
///    generalized to arbitrary predicate systems (Sec. 6.5), with
///    mismatch (M) and copy (C) jump transitions.
///
/// Each tag-automaton transition remembers the A_◦ transition it projects
/// to (`BaseIdx`), which is what the EqualWords predicate of the
/// ¬contains encoding (Eq. 30) matches runs on.
///
//===----------------------------------------------------------------------===//

#ifndef POSTR_TAGAUT_TAGAUTOMATON_H
#define POSTR_TAGAUT_TAGAUTOMATON_H

#include "automata/Nfa.h"
#include "base/Base.h"
#include "tagaut/Tags.h"

#include <map>
#include <vector>

namespace postr {
namespace tagaut {

/// One transition of a tag automaton.
struct TaTransition {
  uint32_t From;
  uint32_t To;
  /// Index of the A_◦ transition this one projects to, or NoBase for the
  /// copy (C) transitions, which exist only in the tag automaton.
  uint32_t BaseIdx;
  /// True for transitions no accepting run can take twice (the level-
  /// increasing mismatch/copy jumps of the 2K+1-copy construction).
  /// buildParikhFormula turns this into an intrinsic 0/1 bound on the
  /// count variable, which keeps the LP relaxation tight (fractional
  /// "half-mismatches" are the main source of integer-only conflicts).
  bool AtMostOnce = false;
  std::vector<TagId> Tags;

  static constexpr uint32_t NoBase = ~0u;
};

/// A tag automaton T = (Q, Δ, I, F) over a shared TagTable.
class TagAutomaton {
public:
  uint32_t addState() {
    IsInitial.push_back(false);
    IsFinal.push_back(false);
    return numStates() - 1;
  }
  uint32_t addStates(uint32_t N) {
    uint32_t First = numStates();
    IsInitial.resize(IsInitial.size() + N, false);
    IsFinal.resize(IsFinal.size() + N, false);
    return First;
  }
  void markInitial(uint32_t Q) { IsInitial[Q] = true; }
  void markFinal(uint32_t Q) { IsFinal[Q] = true; }
  bool isInitial(uint32_t Q) const { return IsInitial[Q]; }
  bool isFinal(uint32_t Q) const { return IsFinal[Q]; }
  uint32_t numStates() const {
    return static_cast<uint32_t>(IsInitial.size());
  }

  void addTransition(TaTransition T) {
    assert(T.From < numStates() && T.To < numStates());
    Delta.push_back(std::move(T));
  }
  const std::vector<TaTransition> &transitions() const { return Delta; }

private:
  std::vector<bool> IsInitial, IsFinal;
  std::vector<TaTransition> Delta;
};

/// The ε-concatenation A_◦ of all variables' automata (Sec. 5.2), in
/// increasing VarId order (the fixed linear order ≼ on variables).
struct VarConcat {
  /// Distinct variables in concatenation order.
  std::vector<VarId> Order;
  /// States of A_◦ (indices into VarOfState); transitions in BaseDelta.
  struct BaseTransition {
    uint32_t From;
    uint32_t To;
    /// Symbol or `Epsilon` for the connector transitions between blocks.
    Symbol Sym;
    /// Variable whose automaton the transition came from; for connector
    /// transitions, the *source* block's variable.
    VarId Var;
  };
  static constexpr Symbol Epsilon = automata::Nfa::Epsilon;

  std::vector<BaseTransition> BaseDelta;
  std::vector<VarId> VarOfState;
  std::vector<bool> IsInitial, IsFinal;
  uint32_t AlphabetSize = 0;

  uint32_t numStates() const {
    return static_cast<uint32_t>(VarOfState.size());
  }
};

/// Builds A_◦ from per-variable (ε-free, non-empty) automata. The map
/// iteration order gives the variable order ≼ (VarId-increasing).
VarConcat buildVarConcat(const std::map<VarId, automata::Nfa> &Langs);

/// Configuration of the 2K+1-copy system construction.
struct SystemTaOptions {
  /// Number of position predicates K; the automaton gets 2K+1 copies and
  /// levels 1..2K of mismatch/copy jumps.
  uint32_t NumPreds = 0;
  /// Effective alphabet size (symbols 0..AlphabetSize-1 get M-tags).
  uint32_t AlphabetSize = 0;
  /// When false, no copy (C) transitions are emitted. The single-
  /// predicate encodings (K = 1) never need sharing, and the naive
  /// order-enumeration ablation disables copies too.
  bool EmitCopies = true;
};

/// Builds the tag automaton of Sec. 5.3 for a system of K predicates over
/// A_◦: states Q_◦ × {1..2K+1}; per-level symbol transitions carrying
/// ⟨S,a⟩⟨L,z⟩⟨P_i,z⟩; mismatch jumps (level i → i+1) carrying
/// ⟨M_i,z,D,s,a⟩ and ⟨P_{i+1},z⟩; copy jumps ⟨C_i,x,D,s⟩ at the state's
/// own variable; initial = I_◦ × {1}; final = F_◦ × odd copies.
TagAutomaton buildSystemTagAutomaton(const VarConcat &Vc,
                                     const SystemTaOptions &Opts,
                                     TagTable &Tags);

} // namespace tagaut
} // namespace postr

#endif // POSTR_TAGAUT_TAGAUTOMATON_H
