//===- fuzz/Fuzz.h - Differential fuzzing over string problems ---*- C++ -*-===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential fuzzing subsystem: a seeded random `strings::Problem`
/// generator weighted over the full atom/regex surface (deliberately
/// mixing the families the four synthetic workload generators keep
/// apart), a structure-aware mutator, a differential runner that pits the
/// position-solver pipeline against the independent enumeration oracle
/// (`solver::solveEnum` + `strings::ConcreteEvaluator`), and a
/// delta-debugging shrinker that minimizes any failing problem while
/// preserving an arbitrary failure predicate. `tools/postr_fuzz` drives
/// these pieces and triages findings into standalone `.smt2` repro files
/// via `smtlib/Printer.h`.
///
/// Everything here is deterministic in the seed: same seed, same
/// problem, same verdicts — CI failures replay locally byte for byte.
///
//===----------------------------------------------------------------------===//

#ifndef POSTR_FUZZ_FUZZ_H
#define POSTR_FUZZ_FUZZ_H

#include "solver/PositionSolver.h"
#include "strings/Ast.h"

#include <functional>
#include <string>

namespace postr {
namespace fuzz {

/// Shape bounds for the random problem generator. The defaults keep
/// instances small enough that the enumeration oracle stays decisive on
/// most of them (that is what makes the differential check bite) while
/// still crossing atom families freely.
struct GenOptions {
  uint32_t MaxStrVars = 3;     ///< 1..MaxStrVars string variables
  uint32_t MaxIntVars = 1;     ///< 0..MaxIntVars integer variables
  uint32_t MinAssertions = 1;
  uint32_t MaxAssertions = 4;
  uint32_t AlphabetChars = 2;  ///< literals/regexes draw from 'a'..
  uint32_t MaxLitLen = 3;      ///< longest generated string literal
  uint32_t MaxRegexDepth = 3;  ///< operator nesting in generated regexes
  uint32_t MaxConcatElems = 3; ///< longest generated str.++ sequence
};

/// Generates a random problem, deterministically in \p Seed.
strings::Problem generate(uint64_t Seed, const GenOptions &O = {});

/// Structure-aware mutation of \p P (drop/duplicate/add an assertion,
/// flip a polarity, perturb a literal/regex/integer term), deterministic
/// in \p Seed.
strings::Problem mutate(const strings::Problem &P, uint64_t Seed,
                        const GenOptions &O = {});

/// Deep copy (problems are move-only aggregates of shared regex nodes;
/// the copy shares the regex ASTs, which are immutable once built).
strings::Problem clone(const strings::Problem &P);

/// Number of asserted atoms — the shrinker's primary size measure.
size_t atomCount(const strings::Problem &P);

/// Secondary size measure: total term weight (sequence elements, literal
/// characters, regex nodes, integer monomials). Strictly decreases on
/// every accepted shrink step, so shrinking terminates.
size_t problemWeight(const strings::Problem &P);

/// How a fuzz iteration failed.
enum class FailureKind : uint8_t {
  None = 0,
  /// Solver and oracle both determinate and disagreeing.
  VerdictMismatch,
  /// A Sat model failed concrete evaluation (the pipeline's own
  /// self-check or the harness's independent re-validation), or the
  /// paranoid Unsat cross-check flipped a verdict.
  ValidationFailure,
  /// The solver tripped a resource budget (only a finding when
  /// DiffOptions::TripsAreFindings asks for hang hunting).
  ResourceTrip,
};

const char *failureKindName(FailureKind K);

/// Bounds for one differential check. Deterministic by default: the
/// solver is step-limited, the oracle budget-limited, and no wall-clock
/// deadline is set unless requested.
struct DiffOptions {
  /// Abstract step limit per pipeline call (0 = none). The default is
  /// calibrated for throughput: generated instances that the pipeline can
  /// decide at all are decided within a few thousand steps, while the
  /// adversarial ¬contains + word-equation mixes degrade superlinearly in
  /// the step allowance (tens of seconds past ~50k) without changing the
  /// verdict. Those become budget-tripped Unknowns, which the
  /// differential check skips unless TripsAreFindings hunts for them.
  uint64_t SolverStepLimit = 4'000;
  /// Disjunct cap forwarded to StabilizeOptions::MaxDisjuncts. The step
  /// limit is per disjunct, so the worst-case work per check is the
  /// product of the two; the stock 256-disjunct cap makes single
  /// iterations take minutes.
  uint32_t SolverMaxDisjuncts = 24;
  /// Wall-clock guard per pipeline call in ms (0 = none). Off by default
  /// so fixed-seed runs are bit-reproducible; the driver sets it.
  uint64_t SolverTimeoutMs = 0;
  /// Enumeration oracle word-length bound.
  uint32_t OracleMaxWordLen = 3;
  /// Abstract step budget for the oracle (one step per 64 evaluations).
  uint64_t OracleStepLimit = 20'000;
  /// Also cross-check determinate verdicts against the eq-reduction
  /// baseline (shares more of the stack, catches path divergence).
  bool CrossCheckEqReduction = false;
  /// Treat budget-tripped Unknowns as findings (hang hunting).
  bool TripsAreFindings = false;
  /// Forwarded to SolveOptions::ParanoidUnsatCheck.
  bool Paranoid = false;
  /// Forwarded to SolveOptions::CertifyUnsat: every solver Unsat must
  /// yield a composed DRUP + Farkas certificate the independent kernel
  /// accepts; a rejection demotes the verdict and surfaces here as a
  /// ValidationFailure finding.
  bool Certify = false;
  /// Forwarded to SolveOptions::TamperModel (test-only corruption hook).
  solver::ModelTamperHook TamperModel;
  /// Forwarded to SolveOptions::TamperCert (test-only corruption hook).
  solver::CertTamperHook TamperCert;
};

struct DiffResult {
  FailureKind Kind = FailureKind::None;
  Verdict SolverV = Verdict::Unknown;
  Verdict OracleV = Verdict::Unknown;
  StopReason SolverStop = StopReason::None;
  std::string Detail;
  bool failed() const { return Kind != FailureKind::None; }
};

/// Runs the pipeline on \p P and cross-checks the verdict: Sat models
/// re-validated through `ConcreteEvaluator`, determinate verdicts
/// compared against the enumeration oracle (whose Sat is
/// evaluator-certified and whose Unsat is exhaustive within the bound).
DiffResult differentialCheck(const strings::Problem &P,
                             const DiffOptions &O = {});

struct ShrinkOptions {
  /// Hard cap on failure-predicate evaluations.
  uint32_t MaxChecks = 2000;
};

/// Delta-debugging minimizer: repeatedly drops whole assertions, then
/// simplifies the survivors (shorter sequences/literals, smaller
/// regexes, fewer monomials), keeping every candidate on which \p Fails
/// still holds, until a fixpoint or the check cap. The result satisfies
/// `Fails`, has at most as many atoms as \p P, and mentions only the
/// variables it uses.
strings::Problem
shrink(const strings::Problem &P,
       const std::function<bool(const strings::Problem &)> &Fails,
       const ShrinkOptions &O = {});

/// Byte-level mutation for reader fuzzing: flips/inserts/deletes bytes,
/// truncates, duplicates chunks. Deterministic in \p Seed.
std::string mutateBytes(const std::string &In, uint64_t Seed,
                        uint32_t MaxEdits = 4);

} // namespace fuzz
} // namespace postr

#endif // POSTR_FUZZ_FUZZ_H
