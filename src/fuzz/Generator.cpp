//===- fuzz/Generator.cpp - Random problem generation and mutation ----------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzz.h"

#include <algorithm>
#include <random>

using namespace postr;
using namespace postr::fuzz;
using strings::Assertion;
using strings::AssertKind;
using strings::IntTerm;
using strings::IntVarId;
using strings::Problem;
using strings::StrElem;
using strings::StrSeq;

namespace {

using Rng = std::mt19937_64;

uint32_t pick(Rng &R, uint32_t N) {
  return N ? static_cast<uint32_t>(R() % N) : 0;
}

char randChar(Rng &R, const GenOptions &O) {
  return static_cast<char>('a' + pick(R, std::max(1u, O.AlphabetChars)));
}

std::string randLit(Rng &R, const GenOptions &O, uint32_t MinLen) {
  uint32_t Len = MinLen + pick(R, O.MaxLitLen + 1 - MinLen);
  std::string S;
  for (uint32_t I = 0; I < Len; ++I)
    S.push_back(randChar(R, O));
  return S;
}

regex::NodePtr mkNode(regex::NodeKind K) {
  return std::make_unique<regex::Node>(K);
}

regex::NodePtr randRegex(Rng &R, const GenOptions &O, uint32_t Depth) {
  using regex::NodeKind;
  if (Depth == 0 || pick(R, 4) == 0) {
    // Leaves. `Empty` is rare: it collapses most problems to Unsat.
    switch (pick(R, 8)) {
    case 0:
      return mkNode(NodeKind::EpsilonK);
    case 1:
      return mkNode(NodeKind::AnyChar);
    case 2:
      if (pick(R, 4) == 0)
        return mkNode(NodeKind::Empty);
      [[fallthrough]];
    default: {
      regex::NodePtr N = mkNode(NodeKind::Chars);
      N->Chars.push_back(randChar(R, O));
      if (pick(R, 3) == 0)
        N->Chars.push_back(randChar(R, O));
      std::sort(N->Chars.begin(), N->Chars.end());
      N->Chars.erase(std::unique(N->Chars.begin(), N->Chars.end()),
                     N->Chars.end());
      return N;
    }
    }
  }
  switch (pick(R, 6)) {
  case 0: {
    regex::NodePtr N = mkNode(NodeKind::Concat);
    uint32_t K = 2 + pick(R, 2);
    for (uint32_t I = 0; I < K; ++I)
      N->Children.push_back(randRegex(R, O, Depth - 1));
    return N;
  }
  case 1: {
    regex::NodePtr N = mkNode(NodeKind::Union);
    N->Children.push_back(randRegex(R, O, Depth - 1));
    N->Children.push_back(randRegex(R, O, Depth - 1));
    return N;
  }
  case 2: {
    regex::NodePtr N = mkNode(NodeKind::Star);
    N->Children.push_back(randRegex(R, O, Depth - 1));
    return N;
  }
  case 3: {
    regex::NodePtr N = mkNode(NodeKind::Plus);
    N->Children.push_back(randRegex(R, O, Depth - 1));
    return N;
  }
  case 4: {
    regex::NodePtr N = mkNode(NodeKind::Optional);
    N->Children.push_back(randRegex(R, O, Depth - 1));
    return N;
  }
  default: {
    regex::NodePtr N = mkNode(NodeKind::Repeat);
    N->Children.push_back(randRegex(R, O, Depth - 1));
    N->Min = static_cast<int>(pick(R, 3));
    N->Max = N->Min + static_cast<int>(pick(R, 3));
    return N;
  }
  }
}

regex::NodePtr cloneRegex(const regex::Node &N) {
  regex::NodePtr Out = mkNode(N.Kind);
  Out->Chars = N.Chars;
  Out->Negated = N.Negated;
  Out->Min = N.Min;
  Out->Max = N.Max;
  for (const regex::NodePtr &C : N.Children)
    Out->Children.push_back(cloneRegex(*C));
  return Out;
}

size_t regexWeight(const regex::Node &N) {
  size_t W = 1 + N.Chars.size();
  for (const regex::NodePtr &C : N.Children)
    W += regexWeight(*C);
  return W;
}

lia::Cmp randCmp(Rng &R) {
  switch (pick(R, 6)) {
  case 0:
    return lia::Cmp::Le;
  case 1:
    return lia::Cmp::Lt;
  case 2:
    return lia::Cmp::Ge;
  case 3:
    return lia::Cmp::Gt;
  case 4:
    return lia::Cmp::Eq;
  default:
    return lia::Cmp::Ne;
  }
}

StrElem randElem(Rng &R, const Problem &P, const GenOptions &O) {
  if (pick(R, 3) == 0) {
    // Empty literals are a deliberate edge case, kept rare.
    uint32_t MinLen = pick(R, 8) == 0 ? 0 : 1;
    return StrElem::lit(randLit(R, O, MinLen));
  }
  return StrElem::var(pick(R, P.numStrVars()));
}

StrSeq randSeq(Rng &R, const Problem &P, const GenOptions &O) {
  StrSeq S;
  uint32_t N = 1 + pick(R, std::max(1u, O.MaxConcatElems));
  for (uint32_t I = 0; I < N; ++I)
    S.push_back(randElem(R, P, O));
  return S;
}

IntTerm randIntTerm(Rng &R, const Problem &P, bool ForPosition) {
  IntTerm T;
  uint32_t Monomials = pick(R, 3);
  for (uint32_t I = 0; I < Monomials; ++I) {
    // Positions keep unit coefficients: negative-scaled positions are
    // trivially out of range and make StrAt atoms degenerate.
    static const int64_t Coeffs[] = {-2, -1, 1, 2};
    int64_t C = ForPosition ? 1 : Coeffs[pick(R, 4)];
    if (P.numIntVars() > 0 && pick(R, 2) == 0)
      T = T + IntTerm::intVar(pick(R, P.numIntVars()), C);
    else
      T = T + IntTerm::lenOf(pick(R, P.numStrVars()), C);
  }
  if (Monomials == 0 || pick(R, 2) == 0)
    T.Const += static_cast<int64_t>(pick(R, 7)) - (ForPosition ? 1 : 3);
  return T;
}

void addRandomAssertion(Problem &P, Rng &R, const GenOptions &O) {
  // Weighted over the whole atom surface; any mix of families can land
  // in one problem, which is exactly what the synthetic workload
  // generators never produce.
  struct Row {
    AssertKind K;
    uint32_t W;
  };
  static const Row Table[] = {
      {AssertKind::InRe, 4},        {AssertKind::WordEq, 3},
      {AssertKind::Diseq, 2},       {AssertKind::Prefixof, 1},
      {AssertKind::NotPrefixof, 1}, {AssertKind::Suffixof, 1},
      {AssertKind::NotSuffixof, 1}, {AssertKind::Contains, 1},
      {AssertKind::NotContains, 1}, {AssertKind::StrAtEq, 1},
      {AssertKind::StrAtNe, 1},     {AssertKind::IntAtom, 2},
  };
  uint32_t Total = 0;
  for (const Row &E : Table)
    Total += E.W;
  uint32_t Roll = pick(R, Total);
  AssertKind K = Table[0].K;
  for (const Row &E : Table) {
    if (Roll < E.W) {
      K = E.K;
      break;
    }
    Roll -= E.W;
  }

  switch (K) {
  case AssertKind::InRe: {
    Assertion A;
    A.Kind = AssertKind::InRe;
    A.Lhs = {StrElem::var(pick(R, P.numStrVars()))};
    A.Re = std::shared_ptr<regex::Node>(
        randRegex(R, O, O.MaxRegexDepth).release());
    P.add(std::move(A));
    break;
  }
  case AssertKind::WordEq:
    P.assertWordEq(randSeq(R, P, O), randSeq(R, P, O));
    break;
  case AssertKind::Diseq:
    P.assertDiseq(randSeq(R, P, O), randSeq(R, P, O));
    break;
  case AssertKind::Prefixof:
  case AssertKind::NotPrefixof:
  case AssertKind::Suffixof:
  case AssertKind::NotSuffixof:
  case AssertKind::Contains:
  case AssertKind::NotContains:
    P.assertPred(K, randSeq(R, P, O), randSeq(R, P, O));
    break;
  case AssertKind::StrAtEq:
  case AssertKind::StrAtNe: {
    // str.at yields a word of length <= 1, so the compared element is a
    // variable or a short literal.
    StrElem X = pick(R, 3) == 0 ? StrElem::lit(randLit(R, O, 0).substr(0, 1))
                                : StrElem::var(pick(R, P.numStrVars()));
    P.assertStrAt(K == AssertKind::StrAtEq, std::move(X), randSeq(R, P, O),
                  randIntTerm(R, P, /*ForPosition=*/true));
    break;
  }
  default:
    P.assertIntAtom(randIntTerm(R, P, false), randCmp(R),
                    randIntTerm(R, P, false));
    break;
  }
}

Problem emptyShell(const Problem &P) {
  Problem Q;
  for (VarId X = 0; X < P.numStrVars(); ++X)
    Q.strVar(P.strVarName(X));
  for (IntVarId V = 0; V < P.numIntVars(); ++V)
    Q.intVar(P.intVarName(V));
  return Q;
}

/// Flips a positive/negative atom pair in place; returns false for kinds
/// with no cheap dual.
bool flipPolarity(Assertion &A) {
  switch (A.Kind) {
  case AssertKind::WordEq:
    A.Kind = AssertKind::Diseq;
    return true;
  case AssertKind::Diseq:
    A.Kind = AssertKind::WordEq;
    return true;
  case AssertKind::Prefixof:
    A.Kind = AssertKind::NotPrefixof;
    return true;
  case AssertKind::NotPrefixof:
    A.Kind = AssertKind::Prefixof;
    return true;
  case AssertKind::Suffixof:
    A.Kind = AssertKind::NotSuffixof;
    return true;
  case AssertKind::NotSuffixof:
    A.Kind = AssertKind::Suffixof;
    return true;
  case AssertKind::Contains:
    A.Kind = AssertKind::NotContains;
    return true;
  case AssertKind::NotContains:
    A.Kind = AssertKind::Contains;
    return true;
  case AssertKind::StrAtEq:
    A.Kind = AssertKind::StrAtNe;
    return true;
  case AssertKind::StrAtNe:
    A.Kind = AssertKind::StrAtEq;
    return true;
  case AssertKind::IntAtom:
  case AssertKind::LenEq:
    switch (A.Op) {
    case lia::Cmp::Le:
      A.Op = lia::Cmp::Gt;
      break;
    case lia::Cmp::Lt:
      A.Op = lia::Cmp::Ge;
      break;
    case lia::Cmp::Ge:
      A.Op = lia::Cmp::Lt;
      break;
    case lia::Cmp::Gt:
      A.Op = lia::Cmp::Le;
      break;
    case lia::Cmp::Eq:
      A.Op = lia::Cmp::Ne;
      break;
    case lia::Cmp::Ne:
      A.Op = lia::Cmp::Eq;
      break;
    }
    return true;
  case AssertKind::InRe:
    return false;
  }
  return false;
}

void perturbSeq(StrSeq &S, Rng &R, const Problem &P, const GenOptions &O) {
  if (S.empty()) {
    S.push_back(randElem(R, P, O));
    return;
  }
  StrElem &E = S[pick(R, static_cast<uint32_t>(S.size()))];
  if (!E.IsVar && !E.Lit.empty() && pick(R, 2) == 0) {
    if (pick(R, 2) == 0)
      E.Lit.pop_back();
    else
      E.Lit.push_back(randChar(R, O));
    return;
  }
  E = randElem(R, P, O);
}

} // namespace

Problem postr::fuzz::generate(uint64_t Seed, const GenOptions &O) {
  Rng R(Seed ^ 0x9e3779b97f4a7c15ull);
  R.discard(4);
  Problem P;
  uint32_t NumStr = 1 + pick(R, std::max(1u, O.MaxStrVars));
  for (uint32_t I = 0; I < NumStr; ++I)
    P.strVar("s" + std::to_string(I));
  uint32_t NumInt = pick(R, O.MaxIntVars + 1);
  for (uint32_t I = 0; I < NumInt; ++I)
    P.intVar("n" + std::to_string(I));
  uint32_t Span = O.MaxAssertions >= O.MinAssertions
                      ? O.MaxAssertions - O.MinAssertions + 1
                      : 1;
  uint32_t NumAsserts = O.MinAssertions + pick(R, Span);
  for (uint32_t I = 0; I < NumAsserts; ++I)
    addRandomAssertion(P, R, O);
  return P;
}

Problem postr::fuzz::clone(const Problem &P) {
  Problem Q = emptyShell(P);
  for (const Assertion &A : P.assertions())
    Q.add(A);
  return Q;
}

Problem postr::fuzz::mutate(const Problem &P, uint64_t Seed,
                            const GenOptions &O) {
  Rng R(Seed * 0x2545F4914F6CDD1Dull + 0x9E3779B9ull);
  R.discard(4);
  Problem Q = emptyShell(P);
  if (Q.numStrVars() == 0)
    Q.strVar("s0"); // mutation helpers draw variables; ensure one exists
  std::vector<Assertion> As(P.assertions().begin(), P.assertions().end());

  uint32_t Op = pick(R, 5);
  if (As.empty())
    Op = 2; // nothing to mutate in place: add
  uint32_t I = As.empty() ? 0 : pick(R, static_cast<uint32_t>(As.size()));
  switch (Op) {
  case 0: // drop
    if (As.size() > 1)
      As.erase(As.begin() + I);
    break;
  case 1: // duplicate
    As.push_back(As[I]);
    break;
  case 2: { // add a fresh assertion
    for (const Assertion &A : As)
      Q.add(A);
    addRandomAssertion(Q, R, O);
    return Q;
  }
  case 3: // flip polarity (or perturb, for InRe)
    if (!flipPolarity(As[I])) {
      regex::NodePtr Wrapped = mkNode(pick(R, 2) == 0
                                          ? regex::NodeKind::Star
                                          : regex::NodeKind::Optional);
      Wrapped->Children.push_back(cloneRegex(*As[I].Re));
      As[I].Re = std::shared_ptr<regex::Node>(Wrapped.release());
    }
    break;
  default: // structural perturbation
    switch (As[I].Kind) {
    case AssertKind::InRe: {
      regex::NodePtr Re = cloneRegex(*As[I].Re);
      if (!Re->Children.empty() && pick(R, 2) == 0)
        Re = std::move(Re->Children[pick(
            R, static_cast<uint32_t>(Re->Children.size()))]);
      else if (!Re->Chars.empty())
        Re->Chars[0] = randChar(R, O);
      As[I].Re = std::shared_ptr<regex::Node>(Re.release());
      break;
    }
    case AssertKind::IntAtom:
    case AssertKind::LenEq:
      if (pick(R, 2) == 0)
        As[I].Pos.Const += pick(R, 2) == 0 ? 1 : -1;
      else
        As[I].IntRhs.Const += pick(R, 2) == 0 ? 1 : -1;
      break;
    case AssertKind::StrAtEq:
    case AssertKind::StrAtNe:
      if (pick(R, 2) == 0)
        As[I].Pos.Const += pick(R, 2) == 0 ? 1 : -1;
      else
        perturbSeq(As[I].Rhs, R, Q, O);
      break;
    default:
      perturbSeq(pick(R, 2) == 0 ? As[I].Lhs : As[I].Rhs, R, Q, O);
      break;
    }
    break;
  }
  for (Assertion &A : As)
    Q.add(std::move(A));
  return Q;
}

size_t postr::fuzz::atomCount(const Problem &P) {
  return P.assertions().size();
}

size_t postr::fuzz::problemWeight(const Problem &P) {
  auto SeqW = [](const StrSeq &S) {
    size_t W = 0;
    for (const StrElem &E : S)
      W += 1 + (E.IsVar ? 0 : E.Lit.size());
    return W;
  };
  auto IntW = [](const IntTerm &T) {
    return T.IntVars.size() + T.LenVars.size() + (T.Const != 0 ? 1 : 0);
  };
  size_t W = 0;
  for (const Assertion &A : P.assertions()) {
    W += 4; // every atom costs more than any of its parts
    W += SeqW(A.Lhs) + SeqW(A.Rhs);
    W += IntW(A.Pos) + IntW(A.IntRhs);
    if (A.Re)
      W += regexWeight(*A.Re);
  }
  return W;
}

const char *postr::fuzz::failureKindName(FailureKind K) {
  switch (K) {
  case FailureKind::None:
    return "none";
  case FailureKind::VerdictMismatch:
    return "verdict-mismatch";
  case FailureKind::ValidationFailure:
    return "validation-failure";
  case FailureKind::ResourceTrip:
    return "resource-trip";
  }
  return "none";
}

std::string postr::fuzz::mutateBytes(const std::string &In, uint64_t Seed,
                                     uint32_t MaxEdits) {
  Rng R(Seed * 0xd1342543de82ef95ull + 0x6a09e667f3bcc909ull);
  R.discard(4);
  // Mostly structural bytes: delimiters, digits, operator fragments —
  // the mutations that actually stress the lexer/translator instead of
  // only producing "unsupported atom" on the first token.
  static const char Pool[] = "()\"; \n\t0123456789-abcxyz.*+=<>_";
  auto RandByte = [&]() -> char {
    if (pick(R, 8) == 0)
      return static_cast<char>(R() & 0xff);
    return Pool[pick(R, sizeof(Pool) - 1)];
  };
  std::string Out = In;
  uint32_t Edits = 1 + pick(R, std::max(1u, MaxEdits));
  for (uint32_t I = 0; I < Edits; ++I) {
    if (Out.empty()) {
      Out.push_back(RandByte());
      continue;
    }
    size_t P = pick(R, static_cast<uint32_t>(Out.size()));
    switch (pick(R, 5)) {
    case 0:
      Out[P] = RandByte();
      break;
    case 1:
      Out.erase(P, 1);
      break;
    case 2:
      Out.insert(Out.begin() + static_cast<ptrdiff_t>(P), RandByte());
      break;
    case 3:
      Out.resize(P);
      break;
    default: {
      size_t Len = std::min(Out.size() - P, size_t{1} + pick(R, 16));
      Out.insert(P, Out.substr(P, Len));
      break;
    }
    }
  }
  return Out;
}
