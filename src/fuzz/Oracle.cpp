//===- fuzz/Oracle.cpp - Differential verdict checking ----------------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzz.h"

#include "base/Budget.h"
#include "solver/Baselines.h"
#include "strings/Eval.h"
#include "strings/Normalize.h"

using namespace postr;
using namespace postr::fuzz;

DiffResult postr::fuzz::differentialCheck(const strings::Problem &P,
                                          const DiffOptions &O) {
  DiffResult D;

  solver::SolveOptions SO;
  SO.TimeoutMs = O.SolverTimeoutMs;
  SO.StepLimit = O.SolverStepLimit;
  SO.Stabilize.MaxDisjuncts = O.SolverMaxDisjuncts;
  SO.ParanoidUnsatCheck = O.Paranoid;
  SO.CertifyUnsat = O.Certify;
  SO.TamperModel = O.TamperModel;
  SO.TamperCert = O.TamperCert;
  solver::SolveResult R = solver::solveProblem(P, SO);
  D.SolverV = R.V;
  D.SolverStop = R.Stop;

  // The pipeline's own self-check already demoted any invalid Sat to a
  // structured Unknown; surface it as a finding.
  if (R.Validation.Failed) {
    D.Kind = FailureKind::ValidationFailure;
    D.Detail = R.Validation.Detail;
    return D;
  }

  // Belt and braces: re-validate a Sat model here with a fresh evaluator,
  // independent of whatever the pipeline cached or was configured with.
  if (R.V == Verdict::Sat) {
    strings::NormalForm NF = strings::normalize(P);
    strings::ConcreteEvaluator Eval(P, NF.Sigma);
    if (!Eval.evalAll(R.Words, R.Ints)) {
      D.Kind = FailureKind::ValidationFailure;
      D.Detail = "solver Sat model fails concrete evaluation";
      return D;
    }
  }

  // The enumeration oracle: its Sat is evaluator-certified, its Unsat is
  // exhaustive within the bound, and anything else comes back Unknown —
  // mismatches are only scored when both sides are determinate.
  solver::EnumOptions EO;
  EO.MaxWordLen = O.OracleMaxWordLen;
  Budget OracleBud(
      Budget::Limits{0, 0, O.OracleStepLimit, nullptr});
  EO.Budget = &OracleBud;
  solver::SolveResult OracleR = solver::solveEnum(P, EO);
  D.OracleV = OracleR.V;

  if (D.SolverV != Verdict::Unknown && D.OracleV != Verdict::Unknown &&
      D.SolverV != D.OracleV) {
    D.Kind = FailureKind::VerdictMismatch;
    D.Detail = std::string("solver says ") + verdictName(D.SolverV) +
               ", enumeration oracle says " + verdictName(D.OracleV);
    return D;
  }

  if (O.CrossCheckEqReduction && D.SolverV != Verdict::Unknown) {
    solver::EqReductionOptions Q;
    Budget EqBud(Budget::Limits{0, 0, O.OracleStepLimit, nullptr});
    Q.Budget = &EqBud;
    solver::SolveResult EqR = solver::solveEqReduction(P, Q);
    if (EqR.V != Verdict::Unknown && EqR.V != D.SolverV) {
      D.Kind = FailureKind::VerdictMismatch;
      D.Detail = std::string("solver says ") + verdictName(D.SolverV) +
                 ", eq-reduction baseline says " + verdictName(EqR.V);
      return D;
    }
  }

  if (O.TripsAreFindings && D.SolverV == Verdict::Unknown &&
      D.SolverStop != StopReason::None) {
    D.Kind = FailureKind::ResourceTrip;
    D.Detail = std::string("solver tripped its budget (") +
               stopReasonName(D.SolverStop) + ")";
  }
  return D;
}
