//===- fuzz/Shrink.cpp - Delta-debugging minimizer --------------------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
// Classic greedy delta debugging over two levels: whole assertions first
// (the coarse grain dominates repro size), then structural
// simplifications inside each surviving assertion. Every accepted step
// strictly decreases (atomCount, problemWeight) lexicographically, so the
// loop terminates without a step counter; MaxChecks bounds predicate
// cost, which is where the time actually goes (each check re-solves).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzz.h"

#include <algorithm>

using namespace postr;
using namespace postr::fuzz;
using strings::Assertion;
using strings::AssertKind;
using strings::IntTerm;
using strings::IntVarId;
using strings::Problem;
using strings::StrElem;
using strings::StrSeq;

namespace {

regex::NodePtr cloneRegex(const regex::Node &N) {
  regex::NodePtr Out = std::make_unique<regex::Node>(N.Kind);
  Out->Chars = N.Chars;
  Out->Negated = N.Negated;
  Out->Min = N.Min;
  Out->Max = N.Max;
  for (const regex::NodePtr &C : N.Children)
    Out->Children.push_back(cloneRegex(*C));
  return Out;
}

Problem rebuild(const Problem &P, const std::vector<Assertion> &As) {
  Problem Q;
  for (VarId X = 0; X < P.numStrVars(); ++X)
    Q.strVar(P.strVarName(X));
  for (IntVarId V = 0; V < P.numIntVars(); ++V)
    Q.intVar(P.intVarName(V));
  for (const Assertion &A : As)
    Q.add(A);
  return Q;
}

void setRe(Assertion &A, regex::NodePtr N) {
  A.Re = std::shared_ptr<regex::Node>(N.release());
}

/// Structurally smaller variants of one assertion, in rough order of
/// payoff. Each candidate weighs strictly less than the original.
std::vector<Assertion> simplifications(const Assertion &A) {
  std::vector<Assertion> Out;

  auto WithSeq = [&](bool Left, StrSeq S) {
    Assertion B = A;
    (Left ? B.Lhs : B.Rhs) = std::move(S);
    Out.push_back(std::move(B));
  };
  auto ShrinkSeq = [&](const StrSeq &S, bool Left, size_t MinElems) {
    // Drop one element at a time.
    if (S.size() > MinElems)
      for (size_t I = 0; I < S.size(); ++I) {
        StrSeq T = S;
        T.erase(T.begin() + static_cast<ptrdiff_t>(I));
        WithSeq(Left, std::move(T));
      }
    // Shorten one literal at a time.
    for (size_t I = 0; I < S.size(); ++I) {
      if (S[I].IsVar || S[I].Lit.empty())
        continue;
      StrSeq T = S;
      T[I].Lit.pop_back();
      WithSeq(Left, std::move(T));
    }
  };
  auto ShrinkInt = [&](const IntTerm &T, IntTerm Assertion::*Field) {
    auto Push = [&](IntTerm U) {
      Assertion B = A;
      B.*Field = std::move(U);
      Out.push_back(std::move(B));
    };
    for (size_t I = 0; I < T.IntVars.size(); ++I) {
      IntTerm U = T;
      U.IntVars.erase(U.IntVars.begin() + static_cast<ptrdiff_t>(I));
      Push(std::move(U));
    }
    for (size_t I = 0; I < T.LenVars.size(); ++I) {
      IntTerm U = T;
      U.LenVars.erase(U.LenVars.begin() + static_cast<ptrdiff_t>(I));
      Push(std::move(U));
    }
    if (T.Const != 0) {
      IntTerm U = T;
      U.Const = 0;
      Push(std::move(U));
    }
  };

  switch (A.Kind) {
  case AssertKind::InRe: {
    const regex::Node &N = *A.Re;
    // Replace the root with each child (unwraps Star/Plus/Opt/Repeat,
    // picks one Union/Concat branch).
    for (const regex::NodePtr &C : N.Children) {
      Assertion B = A;
      setRe(B, cloneRegex(*C));
      Out.push_back(std::move(B));
    }
    // Drop one child of an n-ary root.
    if ((N.Kind == regex::NodeKind::Concat ||
         N.Kind == regex::NodeKind::Union) &&
        N.Children.size() > 1)
      for (size_t I = 0; I < N.Children.size(); ++I) {
        regex::NodePtr M = cloneRegex(N);
        M->Children.erase(M->Children.begin() +
                          static_cast<ptrdiff_t>(I));
        Assertion B = A;
        setRe(B, std::move(M));
        Out.push_back(std::move(B));
      }
    // Thin a character class.
    if (N.Kind == regex::NodeKind::Chars && N.Chars.size() > 1) {
      regex::NodePtr M = cloneRegex(N);
      M->Chars.resize(1);
      Assertion B = A;
      setRe(B, std::move(M));
      Out.push_back(std::move(B));
    }
    // Last resort: the whole regex collapses to epsilon.
    if (!(N.Kind == regex::NodeKind::EpsilonK && N.Children.empty())) {
      Assertion B = A;
      setRe(B, std::make_unique<regex::Node>(regex::NodeKind::EpsilonK));
      Out.push_back(std::move(B));
    }
    break;
  }
  case AssertKind::StrAtEq:
  case AssertKind::StrAtNe:
    ShrinkSeq(A.Rhs, /*Left=*/false, /*MinElems=*/1);
    ShrinkInt(A.Pos, &Assertion::Pos);
    break;
  case AssertKind::IntAtom:
  case AssertKind::LenEq:
    ShrinkInt(A.Pos, &Assertion::Pos);
    ShrinkInt(A.IntRhs, &Assertion::IntRhs);
    break;
  default:
    ShrinkSeq(A.Lhs, /*Left=*/true, /*MinElems=*/0);
    ShrinkSeq(A.Rhs, /*Left=*/false, /*MinElems=*/0);
    break;
  }
  return Out;
}

/// Rebuilds \p P mentioning only the variables its assertions use (the
/// repro file then carries no dead declarations).
Problem gcVariables(const Problem &P) {
  std::vector<bool> StrUsed(P.numStrVars(), false);
  std::vector<bool> IntUsed(P.numIntVars(), false);
  auto MarkSeq = [&](const StrSeq &S) {
    for (const StrElem &E : S)
      if (E.IsVar)
        StrUsed[E.Var] = true;
  };
  auto MarkInt = [&](const IntTerm &T) {
    for (auto [V, C] : T.IntVars)
      IntUsed[V] = true;
    for (auto [X, C] : T.LenVars)
      StrUsed[X] = true;
  };
  for (const Assertion &A : P.assertions()) {
    MarkSeq(A.Lhs);
    MarkSeq(A.Rhs);
    MarkInt(A.Pos);
    MarkInt(A.IntRhs);
  }

  Problem Q;
  std::vector<VarId> StrMap(P.numStrVars(), InvalidVar);
  std::vector<IntVarId> IntMap(P.numIntVars(), 0);
  for (VarId X = 0; X < P.numStrVars(); ++X)
    if (StrUsed[X])
      StrMap[X] = Q.strVar(P.strVarName(X));
  for (IntVarId V = 0; V < P.numIntVars(); ++V)
    if (IntUsed[V])
      IntMap[V] = Q.intVar(P.intVarName(V));

  for (Assertion A : P.assertions()) {
    for (StrSeq *S : {&A.Lhs, &A.Rhs})
      for (StrElem &E : *S)
        if (E.IsVar)
          E.Var = StrMap[E.Var];
    for (IntTerm *T : {&A.Pos, &A.IntRhs}) {
      for (auto &[V, C] : T->IntVars)
        V = IntMap[V];
      for (auto &[X, C] : T->LenVars)
        X = StrMap[X];
    }
    Q.add(std::move(A));
  }
  return Q;
}

} // namespace

Problem postr::fuzz::shrink(
    const Problem &P,
    const std::function<bool(const Problem &)> &Fails,
    const ShrinkOptions &O) {
  uint32_t Checks = 0;
  auto Check = [&](const Problem &Q) {
    if (Checks >= O.MaxChecks)
      return false;
    ++Checks;
    return Fails(Q);
  };

  Problem Cur = clone(P);
  bool Progress = true;
  while (Progress && Checks < O.MaxChecks) {
    Progress = false;

    // Level 1: drop whole assertions, greedily to a fixpoint.
    for (size_t I = 0; I < Cur.assertions().size();) {
      if (Cur.assertions().size() <= 1)
        break;
      std::vector<Assertion> As(Cur.assertions().begin(),
                                Cur.assertions().end());
      As.erase(As.begin() + static_cast<ptrdiff_t>(I));
      Problem Q = rebuild(Cur, As);
      if (Check(Q)) {
        Cur = std::move(Q);
        Progress = true;
        // Same index now names the next assertion; retry it.
      } else {
        ++I;
      }
    }

    // Level 2: simplify inside each surviving assertion.
    for (size_t I = 0; I < Cur.assertions().size(); ++I) {
      bool Shrunk = true;
      while (Shrunk && Checks < O.MaxChecks) {
        Shrunk = false;
        for (Assertion &Cand : simplifications(Cur.assertions()[I])) {
          std::vector<Assertion> As(Cur.assertions().begin(),
                                    Cur.assertions().end());
          As[I] = std::move(Cand);
          Problem Q = rebuild(Cur, As);
          if (problemWeight(Q) < problemWeight(Cur) && Check(Q)) {
            Cur = std::move(Q);
            Progress = true;
            Shrunk = true;
            break;
          }
        }
      }
    }
  }

  // Drop unused declarations; keep the result only if the predicate
  // still holds on it (it should — GC is semantics-preserving — but the
  // predicate may inspect the variable set).
  Problem Gc = gcVariables(Cur);
  if (Gc.numStrVars() != Cur.numStrVars() ||
      Gc.numIntVars() != Cur.numIntVars())
    if (Fails(Gc))
      return Gc;
  return Cur;
}
