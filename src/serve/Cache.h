//===- serve/Cache.h - Validated cross-query caches --------------*- C++ -*-===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two cross-query cache tiers behind the postr-serve daemon. Real
/// traffic (django route dispatch, biopython alphabet checks) repeats
/// the same normalized structures massively; today's memoization lives
/// only within one query, so a resident server wins exactly where a
/// one-shot CLI cannot.
///
/// Tier 1 — `ResultCache` (daemon-wide, shared by all workers): whole
/// queries keyed by the *canonical print* of the parsed problem
/// (`smtlib::printProblem`), which normalizes away whitespace, comments,
/// command order noise, and assertion sugar. Collision-proof by
/// construction (the full canonical text is the key; the hash only
/// buckets it). Values are the complete reply (verdict, reason, model
/// comments), so a warm hit is byte-identical to the original reply.
///
/// Tier 2 — `NfaOpCache` (per worker session): the expensive automata
/// ops — product intersection and subset-construction determinization —
/// keyed by the structural hash of the operand automata, with a full
/// structural-equality check against the stored operands before a hit is
/// served (a hash collision must degrade to a miss, never to a wrong
/// automaton). Because the ops are deterministic functions of their
/// operands, a verified hit is bit-identical to recomputation. Consulted
/// from `automata::intersect`/`automata::determinize` through a
/// thread-local installation scope: zero overhead (one relaxed TLS read)
/// for every non-serve caller, so bench_hotpath checksums are untouched.
///
/// Both tiers insert through a *validated* path: results computed during
/// a query are staged, and published only after the whole query
/// completes with a determinate verdict, a passing self-check, no budget
/// trip, and no injected fault — a poisoned query contributes nothing to
/// future queries. `ServeOptions::ParanoidHits` additionally re-derives
/// every Tier-1 hit from scratch and compares (test mode).
///
//===----------------------------------------------------------------------===//

#ifndef POSTR_SERVE_CACHE_H
#define POSTR_SERVE_CACHE_H

#include "automata/Nfa.h"

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace postr {
namespace serve {

//===----------------------------------------------------------------------===//
// Tier 1: whole-query result cache
//===----------------------------------------------------------------------===//

/// The cacheable part of a solve reply. Replaying it must be
/// byte-identical to the fresh reply, so everything the client sees is
/// here.
struct CachedReply {
  std::string Verdict; ///< "sat" | "unsat"
  std::string Reason;  ///< empty for determinate verdicts
  int ExitCode = 0;
  std::string Body;    ///< model comment lines
};

struct ResultCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
  /// Publishes vetoed by the validation gate (failed self-check,
  /// budget trip, injected fault, indeterminate verdict).
  uint64_t PoisonedRejects = 0;
  /// Paranoid-mode hits whose fresh recomputation disagreed (each one
  /// is a bug; the entry is dropped and the fresh result served).
  uint64_t ParanoidMismatches = 0;
  uint64_t Entries = 0;
  uint64_t Bytes = 0;
};

/// LRU + byte-capped map from canonical problem text to replies.
/// Thread-safe; the daemon's session threads all consult it.
class ResultCache {
public:
  explicit ResultCache(uint64_t MaxBytes) : MaxBytes(MaxBytes) {}

  /// Returns the cached reply and refreshes LRU recency. Counts a hit
  /// or miss.
  std::optional<CachedReply> lookup(const std::string &Key);

  /// Validated insertion: call only after the producing query passed
  /// every gate (see `publishable` logic in Server.cpp). Evicts LRU
  /// entries until the byte cap holds. Re-publishing an existing key
  /// overwrites (the replies are equal by determinism anyway).
  void publish(const std::string &Key, CachedReply Reply);

  /// Records a vetoed publish (for the poisoned counter).
  void rejectPoisoned();

  /// Drops one entry (paranoid-mismatch handling).
  void erase(const std::string &Key);

  ResultCacheStats stats() const;

private:
  uint64_t entryBytes(const std::string &Key, const CachedReply &R) const;
  void evictUntilFits();

  struct Entry {
    CachedReply Reply;
    std::list<std::string>::iterator LruIt;
    uint64_t Bytes = 0;
  };

  mutable std::mutex Mu;
  uint64_t MaxBytes;
  uint64_t UsedBytes = 0;
  std::unordered_map<std::string, Entry> Map;
  /// Most-recent first; holds the keys.
  std::list<std::string> Lru;
  ResultCacheStats St;
};

//===----------------------------------------------------------------------===//
// Tier 2: automata-operation cache
//===----------------------------------------------------------------------===//

/// Structural 64-bit hash of an automaton: alphabet size, state count,
/// initial/final sets, and the normalized (sorted, deduplicated)
/// transition list. Equal automata hash equal; the cache never trusts
/// the converse (see `structurallyEqual`).
uint64_t structuralHash(const automata::Nfa &A);

/// Exact structural equality over the same normalized view.
bool structurallyEqual(const automata::Nfa &A, const automata::Nfa &B);

struct NfaOpCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
  uint64_t StagedDropped = 0;
  uint64_t Entries = 0;
  uint64_t Bytes = 0;
};

/// Per-worker-session cache of intersect/determinize results,
/// implementing the `automata::NfaOpHook` consulted by those algorithms.
/// NOT thread-safe: one worker session owns it and installs it (via
/// `automata::NfaOpHookScope`) only while that session's thread solves.
/// Quarantining a worker destroys the whole object — a rebuilt worker
/// starts cold by design.
class NfaOpCache final : public automata::NfaOpHook {
public:
  using Op = automata::NfaOp;

  explicit NfaOpCache(uint64_t MaxBytes) : MaxBytes(MaxBytes) {}

  /// Published-or-staged lookup with the structural-equality guard.
  /// Returns a copy of the stored result automaton.
  std::optional<automata::Nfa> lookup(Op O, const automata::Nfa &A,
                                      const automata::Nfa *B) override;

  /// Stages a computed result for the current query. The Nfa.cpp hook
  /// sites only offer complete (never budget-tripped partial) results.
  void stage(Op O, const automata::Nfa &A, const automata::Nfa *B,
             const automata::Nfa &Out) override;

  /// Publishes everything staged since the last publish/drop: the query
  /// completed and passed validation. Evicts LRU entries to the byte
  /// cap.
  void publishStaged();

  /// Discards the staged entries: the query tripped, crashed, or failed
  /// its self-check.
  void dropStaged();

  NfaOpCacheStats stats() const { return St; }

private:
  struct Key {
    Op O;
    uint64_t HashA = 0, HashB = 0;
    bool operator==(const Key &K) const {
      return O == K.O && HashA == K.HashA && HashB == K.HashB;
    }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const {
      return static_cast<size_t>(
          hashCombine(hashCombine(K.HashA, K.HashB),
                      static_cast<uint64_t>(K.O)));
    }
  };
  struct Entry {
    /// Stored operands for the equality guard (B unused for unary ops).
    automata::Nfa A, B;
    bool HasB = false;
    automata::Nfa Out;
    std::list<Key>::iterator LruIt;
    uint64_t Bytes = 0;
  };

  uint64_t nfaBytes(const automata::Nfa &N) const;
  void evictUntilFits();

  uint64_t MaxBytes;
  uint64_t UsedBytes = 0;
  std::unordered_map<Key, Entry, KeyHash> Map;
  std::list<Key> Lru;
  /// Entries computed by the in-flight query, searched after Map and
  /// published or dropped wholesale at query end.
  std::vector<std::pair<Key, Entry>> Staged;
  NfaOpCacheStats St;
};

/// RAII installation of a worker's NfaOpCache for the current thread
/// while it solves (see automata::NfaOpHookScope).
using NfaCacheScope = automata::NfaOpHookScope;

} // namespace serve
} // namespace postr

#endif // POSTR_SERVE_CACHE_H
