//===- serve/Cache.cpp - Validated cross-query caches -----------------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "serve/Cache.h"

#include <algorithm>

namespace postr {
namespace serve {

//===----------------------------------------------------------------------===//
// ResultCache
//===----------------------------------------------------------------------===//

std::optional<CachedReply> ResultCache::lookup(const std::string &Key) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Map.find(Key);
  if (It == Map.end()) {
    ++St.Misses;
    return std::nullopt;
  }
  ++St.Hits;
  Lru.splice(Lru.begin(), Lru, It->second.LruIt);
  return It->second.Reply;
}

void ResultCache::publish(const std::string &Key, CachedReply Reply) {
  std::lock_guard<std::mutex> Lock(Mu);
  uint64_t Bytes = entryBytes(Key, Reply);
  // An entry bigger than the whole cache would evict everything and
  // still not fit; refuse it outright.
  if (Bytes > MaxBytes)
    return;
  auto It = Map.find(Key);
  if (It != Map.end()) {
    UsedBytes -= It->second.Bytes;
    It->second.Reply = std::move(Reply);
    It->second.Bytes = Bytes;
    UsedBytes += Bytes;
    Lru.splice(Lru.begin(), Lru, It->second.LruIt);
  } else {
    Lru.push_front(Key);
    Entry E;
    E.Reply = std::move(Reply);
    E.LruIt = Lru.begin();
    E.Bytes = Bytes;
    Map.emplace(Key, std::move(E));
    UsedBytes += Bytes;
  }
  evictUntilFits();
  St.Entries = Map.size();
  St.Bytes = UsedBytes;
}

void ResultCache::rejectPoisoned() {
  std::lock_guard<std::mutex> Lock(Mu);
  ++St.PoisonedRejects;
}

void ResultCache::erase(const std::string &Key) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Map.find(Key);
  if (It == Map.end())
    return;
  ++St.ParanoidMismatches;
  UsedBytes -= It->second.Bytes;
  Lru.erase(It->second.LruIt);
  Map.erase(It);
  St.Entries = Map.size();
  St.Bytes = UsedBytes;
}

ResultCacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return St;
}

uint64_t ResultCache::entryBytes(const std::string &Key,
                                 const CachedReply &R) const {
  // Approximate footprint: the strings dominate; the constant covers the
  // node, iterator, and bookkeeping.
  return Key.size() + R.Verdict.size() + R.Reason.size() + R.Body.size() + 128;
}

void ResultCache::evictUntilFits() {
  while (UsedBytes > MaxBytes && !Lru.empty()) {
    auto It = Map.find(Lru.back());
    UsedBytes -= It->second.Bytes;
    Map.erase(It);
    Lru.pop_back();
    ++St.Evictions;
  }
}

//===----------------------------------------------------------------------===//
// Structural hashing of automata
//===----------------------------------------------------------------------===//

uint64_t structuralHash(const automata::Nfa &A) {
  uint64_t H = hashCombine(0x706f7374726e6661ull, A.alphabetSize());
  H = hashCombine(H, A.numStates());
  for (uint32_t Q = 0; Q < A.numStates(); ++Q)
    H = hashCombine(
        H, (uint64_t(A.isInitial(Q)) << 1) | uint64_t(A.isFinal(Q)));
  // transitions() is the normalized (sorted, deduplicated) view, so two
  // automata that differ only in insertion order hash equal.
  for (const automata::Transition &T : A.transitions()) {
    H = hashCombine(H, T.From);
    H = hashCombine(H, T.Sym);
    H = hashCombine(H, T.To);
  }
  return H;
}

bool structurallyEqual(const automata::Nfa &A, const automata::Nfa &B) {
  if (A.alphabetSize() != B.alphabetSize() || A.numStates() != B.numStates())
    return false;
  for (uint32_t Q = 0; Q < A.numStates(); ++Q)
    if (A.isInitial(Q) != B.isInitial(Q) || A.isFinal(Q) != B.isFinal(Q))
      return false;
  return A.transitions() == B.transitions();
}

//===----------------------------------------------------------------------===//
// NfaOpCache
//===----------------------------------------------------------------------===//

std::optional<automata::Nfa> NfaOpCache::lookup(Op O, const automata::Nfa &A,
                                                const automata::Nfa *B) {
  Key K{O, structuralHash(A), B ? structuralHash(*B) : 0};
  auto Match = [&](const Entry &E) {
    if (!structurallyEqual(E.A, A))
      return false;
    if (B)
      return E.HasB && structurallyEqual(E.B, *B);
    return !E.HasB;
  };
  if (auto It = Map.find(K); It != Map.end() && Match(It->second)) {
    ++St.Hits;
    Lru.splice(Lru.begin(), Lru, It->second.LruIt);
    return It->second.Out;
  }
  // The same query may repeat an op before it completes (e.g. MBQI
  // re-deriving the same product); staged entries are visible to it.
  for (const auto &[SK, SE] : Staged)
    if (SK == K && Match(SE)) {
      ++St.Hits;
      return SE.Out;
    }
  ++St.Misses;
  return std::nullopt;
}

void NfaOpCache::stage(Op O, const automata::Nfa &A, const automata::Nfa *B,
                       const automata::Nfa &Out) {
  Key K{O, structuralHash(A), B ? structuralHash(*B) : 0};
  Entry E;
  E.A = A;
  if (B) {
    E.B = *B;
    E.HasB = true;
  }
  E.Out = Out;
  E.Bytes = nfaBytes(A) + (B ? nfaBytes(*B) : 0) + nfaBytes(Out) + 256;
  Staged.emplace_back(K, std::move(E));
}

void NfaOpCache::publishStaged() {
  for (auto &[K, E] : Staged) {
    if (E.Bytes > MaxBytes)
      continue;
    if (auto It = Map.find(K); It != Map.end()) {
      // Deterministic ops: an existing entry already holds this result
      // (or a colliding key's — either way, keep the resident one).
      Lru.splice(Lru.begin(), Lru, It->second.LruIt);
      continue;
    }
    Lru.push_front(K);
    E.LruIt = Lru.begin();
    UsedBytes += E.Bytes;
    Map.emplace(K, std::move(E));
  }
  Staged.clear();
  evictUntilFits();
  St.Entries = Map.size();
  St.Bytes = UsedBytes;
}

void NfaOpCache::dropStaged() {
  St.StagedDropped += Staged.size();
  Staged.clear();
}

uint64_t NfaOpCache::nfaBytes(const automata::Nfa &N) const {
  return uint64_t(N.numStates()) / 4 +
         uint64_t(N.numTransitions()) * sizeof(automata::Transition) + 64;
}

void NfaOpCache::evictUntilFits() {
  while (UsedBytes > MaxBytes && !Lru.empty()) {
    auto It = Map.find(Lru.back());
    UsedBytes -= It->second.Bytes;
    Map.erase(It);
    Lru.pop_back();
    ++St.Evictions;
  }
}

} // namespace serve
} // namespace postr
