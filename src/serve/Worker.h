//===- serve/Worker.h - One serve worker session -----------------*- C++ -*-===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The solve-one-request core shared by both executor modes of
/// serve/Server.h, and the forked worker child's main loop.
///
//===----------------------------------------------------------------------===//

#ifndef POSTR_SERVE_WORKER_H
#define POSTR_SERVE_WORKER_H

#include "serve/Protocol.h"
#include "serve/Server.h"

#include <atomic>

namespace postr {
namespace serve {

/// Solves one request in the current process/thread. Parses the body,
/// intersects the deadlines (request header ∩ scripted `:timeout` ∩
/// server cap) into a cooperative `Budget` so cancellation and timeout
/// interrupt Simplex pivots and MBQI rounds mid-flight, installs
/// \p OpCache (may be null) for the duration of the solve, and publishes
/// or drops the staged automata-op results according to the same
/// validation gate the response's `Publishable` flag reports. Never
/// throws and never crashes on malformed input — a parse error is a
/// structured Error reply.
Response solveRequest(const Request &Req, const ServeOptions &Opts,
                      NfaOpCache *OpCache,
                      const std::atomic<bool> *Cancel);

/// Effective deadline for a request: the tightest of the nonzero client
/// header budget, the scripted `(set-option :timeout N)` (\p ScriptMs),
/// and the server cap.
uint64_t effectiveTimeoutMs(uint64_t HeaderMs, uint64_t ScriptMs,
                            const ServeOptions &Opts);

/// Main loop of a forked worker child (`<exe> --worker-child <in> <out>`):
/// reads request frames from \p FdIn, solves, writes response frames to
/// \p FdOut. SIGTERM cancels the in-flight solve cooperatively (the
/// reply still arrives, as `unknown (cancelled)`); EOF on \p FdIn is a
/// clean shutdown. Returns the process exit code.
int workerChildMain(int FdIn, int FdOut, const ServeOptions &Opts);

} // namespace serve
} // namespace postr

#endif // POSTR_SERVE_WORKER_H
