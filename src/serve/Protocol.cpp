//===- serve/Protocol.cpp - postr-serve wire protocol -----------------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <poll.h>
#include <unistd.h>

namespace postr {
namespace serve {

namespace {

const char *requestKindName(Request::Kind K) {
  switch (K) {
  case Request::Solve:
    return "solve";
  case Request::Stats:
    return "stats";
  case Request::Ping:
    return "ping";
  case Request::Shutdown:
    return "shutdown";
  }
  return "?";
}

const char *statusName(Response::Status S) {
  switch (S) {
  case Response::Ok:
    return "ok";
  case Response::Busy:
    return "busy";
  case Response::Error:
    return "error";
  }
  return "?";
}

/// Header values live on one line; ids and diagnostics are
/// caller-supplied, so strip the newlines that would desynchronize the
/// header block.
std::string sanitize(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S)
    Out.push_back(C == '\n' || C == '\r' ? ' ' : C);
  return Out;
}

void appendHeader(std::string &Out, const char *Key, const std::string &V) {
  if (V.empty())
    return;
  Out += Key;
  Out += ": ";
  Out += sanitize(V);
  Out += '\n';
}

void appendHeaderU64(std::string &Out, const char *Key, uint64_t V) {
  if (!V)
    return;
  appendHeader(Out, Key, std::to_string(V));
}

/// Splits a payload into (command, headers, body). Returns false with a
/// diagnostic on structural errors.
struct Parsed {
  std::string Command;
  std::vector<std::pair<std::string, std::string>> Headers;
  std::string Body;
};

Result<Parsed> parsePayload(const std::string &Payload) {
  Parsed P;
  size_t Pos = Payload.find('\n');
  if (Pos == std::string::npos)
    return Result<Parsed>::failure("truncated payload: no header line");
  std::string First = Payload.substr(0, Pos);
  size_t Sp = First.find(' ');
  if (Sp == std::string::npos || First.substr(0, Sp) != ProtocolMagic)
    return Result<Parsed>::failure("bad protocol magic");
  P.Command = First.substr(Sp + 1);
  if (P.Command.empty())
    return Result<Parsed>::failure("missing command");
  ++Pos;
  while (Pos < Payload.size()) {
    size_t End = Payload.find('\n', Pos);
    if (End == std::string::npos)
      return Result<Parsed>::failure("truncated payload: unterminated header");
    if (End == Pos) {
      // Blank line: the rest is the body.
      P.Body = Payload.substr(End + 1);
      return Result<Parsed>::success(std::move(P));
    }
    std::string Line = Payload.substr(Pos, End - Pos);
    size_t Colon = Line.find(": ");
    if (Colon == std::string::npos || Colon == 0)
      return Result<Parsed>::failure("malformed header line '" + Line + "'");
    P.Headers.emplace_back(Line.substr(0, Colon), Line.substr(Colon + 2));
    Pos = End + 1;
  }
  // No blank line: header-only payload, empty body.
  return Result<Parsed>::success(std::move(P));
}

/// Checked u64 header value; hostile digits must not wrap silently.
bool parseU64(const std::string &S, uint64_t &Out) {
  if (S.empty() || S.size() > 18)
    return false;
  uint64_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + static_cast<uint64_t>(C - '0');
  }
  Out = V;
  return true;
}

} // namespace

std::string encodeRequest(const Request &R) {
  std::string Out = std::string(ProtocolMagic) + " " + requestKindName(R.K) +
                    "\n";
  appendHeader(Out, "id", R.Id);
  appendHeaderU64(Out, "timeout-ms", R.TimeoutMs);
  if (R.NoCache)
    appendHeader(Out, "no-cache", "1");
  if (R.TestAbort)
    appendHeader(Out, "x-test-abort", "1");
  if (R.Degraded)
    appendHeader(Out, "x-degraded", "1");
  Out += '\n';
  Out += R.Smt2;
  return Out;
}

std::string encodeResponse(const Response &R) {
  std::string Out =
      std::string(ProtocolMagic) + " " + statusName(R.S) + "\n";
  appendHeader(Out, "id", R.Id);
  appendHeader(Out, "verdict", R.Verdict);
  appendHeader(Out, "reason", R.Reason);
  appendHeaderU64(Out, "exit-code", static_cast<uint64_t>(R.ExitCode));
  appendHeader(Out, "cache", R.Cache);
  appendHeaderU64(Out, "retry-after-ms", R.RetryAfterMs);
  appendHeader(Out, "message", R.Message);
  if (R.Publishable)
    appendHeader(Out, "x-publishable", "1");
  if (R.SelfCheckFailed)
    appendHeader(Out, "x-selfcheck-failed", "1");
  appendHeaderU64(Out, "x-budget-trips", R.BudgetTrips);
  appendHeaderU64(Out, "x-degraded-retries", R.DegradedRetries);
  if (R.FaultFired)
    appendHeader(Out, "x-fault-fired", "1");
  Out += '\n';
  Out += R.Body;
  return Out;
}

Result<Request> decodeRequest(const std::string &Payload) {
  Result<Parsed> P = parsePayload(Payload);
  if (!P)
    return Result<Request>::failure(P.error());
  Request R;
  if (P->Command == "solve")
    R.K = Request::Solve;
  else if (P->Command == "stats")
    R.K = Request::Stats;
  else if (P->Command == "ping")
    R.K = Request::Ping;
  else if (P->Command == "shutdown")
    R.K = Request::Shutdown;
  else
    return Result<Request>::failure("unknown command '" + P->Command + "'");
  for (const auto &[K, V] : P->Headers) {
    if (K == "id")
      R.Id = V;
    else if (K == "timeout-ms") {
      if (!parseU64(V, R.TimeoutMs))
        return Result<Request>::failure("malformed timeout-ms '" + V + "'");
    } else if (K == "no-cache")
      R.NoCache = V == "1";
    else if (K == "x-test-abort")
      R.TestAbort = V == "1";
    else if (K == "x-degraded")
      R.Degraded = V == "1";
    // Unknown keys are skipped so the protocol can grow.
  }
  R.Smt2 = std::move(P->Body);
  return Result<Request>::success(std::move(R));
}

Result<Response> decodeResponse(const std::string &Payload) {
  Result<Parsed> P = parsePayload(Payload);
  if (!P)
    return Result<Response>::failure(P.error());
  Response R;
  if (P->Command == "ok")
    R.S = Response::Ok;
  else if (P->Command == "busy")
    R.S = Response::Busy;
  else if (P->Command == "error")
    R.S = Response::Error;
  else
    return Result<Response>::failure("unknown status '" + P->Command + "'");
  for (const auto &[K, V] : P->Headers) {
    uint64_t U = 0;
    if (K == "id")
      R.Id = V;
    else if (K == "verdict")
      R.Verdict = V;
    else if (K == "reason")
      R.Reason = V;
    else if (K == "exit-code" && parseU64(V, U))
      R.ExitCode = static_cast<int>(U);
    else if (K == "cache")
      R.Cache = V;
    else if (K == "retry-after-ms" && parseU64(V, U))
      R.RetryAfterMs = U;
    else if (K == "message")
      R.Message = V;
    else if (K == "x-publishable")
      R.Publishable = V == "1";
    else if (K == "x-selfcheck-failed")
      R.SelfCheckFailed = V == "1";
    else if (K == "x-budget-trips" && parseU64(V, U))
      R.BudgetTrips = static_cast<uint32_t>(U);
    else if (K == "x-degraded-retries" && parseU64(V, U))
      R.DegradedRetries = static_cast<uint32_t>(U);
    else if (K == "x-fault-fired")
      R.FaultFired = V == "1";
  }
  R.Body = std::move(P->Body);
  return Result<Response>::success(std::move(R));
}

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

bool writeFrame(int Fd, const std::string &Payload) {
  unsigned char Prefix[4] = {
      static_cast<unsigned char>((Payload.size() >> 24) & 0xff),
      static_cast<unsigned char>((Payload.size() >> 16) & 0xff),
      static_cast<unsigned char>((Payload.size() >> 8) & 0xff),
      static_cast<unsigned char>(Payload.size() & 0xff),
  };
  auto WriteAll = [Fd](const void *Buf, size_t N) {
    const char *P = static_cast<const char *>(Buf);
    while (N > 0) {
      ssize_t W = ::write(Fd, P, N);
      if (W < 0) {
        if (errno == EINTR)
          continue;
        return false;
      }
      P += W;
      N -= static_cast<size_t>(W);
    }
    return true;
  };
  return WriteAll(Prefix, 4) && WriteAll(Payload.data(), Payload.size());
}

Result<std::string> readFrame(int Fd, uint64_t MaxBytes,
                              uint64_t DeadlineMs) {
  using Clock = std::chrono::steady_clock;
  Clock::time_point Deadline =
      Clock::now() + std::chrono::milliseconds(DeadlineMs);
  auto ReadAll = [&](void *Buf, size_t N,
                     bool AtStart) -> Result<std::string> {
    char *P = static_cast<char *>(Buf);
    while (N > 0) {
      if (DeadlineMs) {
        auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        Deadline - Clock::now())
                        .count();
        if (Left <= 0)
          return Result<std::string>::failure("timeout");
        struct pollfd Pfd = {Fd, POLLIN, 0};
        int PR = ::poll(&Pfd, 1, static_cast<int>(Left));
        if (PR < 0) {
          if (errno == EINTR)
            continue;
          return Result<std::string>::failure(std::strerror(errno));
        }
        if (PR == 0)
          return Result<std::string>::failure("timeout");
      }
      ssize_t R = ::read(Fd, P, N);
      if (R < 0) {
        if (errno == EINTR)
          continue;
        return Result<std::string>::failure(std::strerror(errno));
      }
      if (R == 0)
        return Result<std::string>::failure(AtStart && P == Buf
                                                ? "eof"
                                                : "unexpected eof mid-frame");
      P += R;
      N -= static_cast<size_t>(R);
      AtStart = false;
    }
    return Result<std::string>::success(std::string());
  };
  unsigned char Prefix[4];
  if (Result<std::string> R = ReadAll(Prefix, 4, /*AtStart=*/true); !R)
    return R;
  uint64_t Len = (uint64_t(Prefix[0]) << 24) | (uint64_t(Prefix[1]) << 16) |
                 (uint64_t(Prefix[2]) << 8) | uint64_t(Prefix[3]);
  if (Len > MaxBytes)
    return Result<std::string>::failure(
        "frame of " + std::to_string(Len) + " bytes exceeds the " +
        std::to_string(MaxBytes) + "-byte cap");
  std::string Payload(Len, '\0');
  if (Len)
    if (Result<std::string> R = ReadAll(Payload.data(), Len,
                                        /*AtStart=*/false);
        !R)
      return R;
  return Result<std::string>::success(std::move(Payload));
}

} // namespace serve
} // namespace postr
