//===- serve/Server.cpp - The resident solver service -----------------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "serve/Worker.h"
#include "smtlib/Printer.h"
#include "smtlib/Reader.h"

#include <algorithm>
#include <cstdlib>
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

namespace postr {
namespace serve {

//===----------------------------------------------------------------------===//
// Options from the environment
//===----------------------------------------------------------------------===//

namespace {

uint64_t envU64(const char *Name, uint64_t Default) {
  const char *V = std::getenv(Name);
  if (!V || !*V)
    return Default;
  char *End = nullptr;
  unsigned long long N = std::strtoull(V, &End, 10);
  return End && *End == '\0' ? N : Default;
}

bool envFlag(const char *Name) {
  const char *V = std::getenv(Name);
  return V && *V && std::string(V) != "0";
}

} // namespace

ServeOptions serveOptionsFromEnv() {
  ServeOptions O;
  O.Workers = static_cast<uint32_t>(
      std::max<uint64_t>(1, envU64("POSTR_SERVE_WORKERS", O.Workers)));
  O.QueueMax =
      static_cast<uint32_t>(envU64("POSTR_SERVE_QUEUE_MAX", O.QueueMax));
  O.MaxTimeoutMs = envU64("POSTR_SERVE_MAX_TIMEOUT_MS", O.MaxTimeoutMs);
  O.MemLimitBytes = envU64("POSTR_SERVE_MEM_LIMIT_BYTES", O.MemLimitBytes);
  O.CacheBytes = envU64("POSTR_SERVE_CACHE_BYTES", O.CacheBytes);
  O.OpCacheBytes = envU64("POSTR_SERVE_OPCACHE_BYTES", O.OpCacheBytes);
  O.MaxRequestBytes =
      std::max<uint64_t>(4096, envU64("POSTR_SERVE_MAX_REQUEST_BYTES",
                                      O.MaxRequestBytes));
  O.KillGraceMs = envU64("POSTR_SERVE_KILL_GRACE_MS", O.KillGraceMs);
  O.AllowTestAbort = envFlag("POSTR_SERVE_ALLOW_TEST_ABORT");
  if (const char *SC = std::getenv("POSTR_SELFCHECK"))
    O.ParanoidHits = std::string(SC) == "paranoid";
  return O;
}

//===----------------------------------------------------------------------===//
// Worker slots
//===----------------------------------------------------------------------===//

struct Server::WorkerSlot {
  /// In-process mode: the session's automata-op cache (rebuilt on
  /// quarantine).
  std::unique_ptr<NfaOpCache> OpCache;
  /// Forked mode: child pid and the daemon's pipe ends.
  pid_t Pid = -1;
  int FdIn = -1;  ///< write requests here
  int FdOut = -1; ///< read responses here
  bool Busy = false;
};

Server::Server(const ServeOptions &O) : Opts(O) {
  if (Opts.CacheBytes)
    Cache = std::make_unique<ResultCache>(Opts.CacheBytes);
  for (uint32_t I = 0; I < std::max(1u, Opts.Workers); ++I) {
    auto Slot = std::make_unique<WorkerSlot>();
    if (!Opts.ForkWorkers && Opts.OpCacheBytes)
      Slot->OpCache = std::make_unique<NfaOpCache>(Opts.OpCacheBytes);
    Slots.push_back(std::move(Slot));
  }
  // Forked children are spawned lazily on first use; a dead daemon-side
  // pipe must not kill the daemon.
  if (Opts.ForkWorkers)
    ::signal(SIGPIPE, SIG_IGN);
}

Server::~Server() {
  ShuttingDown.store(true);
  std::unique_lock<std::mutex> L(Mu);
  SlotFree.notify_all();
  // In-flight solves run on caller threads; their budgets observe
  // ShuttingDown (it doubles as the Cancel flag) and return promptly.
  SlotFree.wait(L, [&] {
    for (const auto &S : Slots)
      if (S->Busy)
        return false;
    return true;
  });
  L.unlock();
  for (auto &S : Slots)
    reapWorker(*S, /*Kill=*/false);
}

void Server::spawnWorker(WorkerSlot &S) {
  int ToChild[2], FromChild[2];
  if (::pipe(ToChild) != 0)
    return;
  if (::pipe(FromChild) != 0) {
    ::close(ToChild[0]);
    ::close(ToChild[1]);
    return;
  }
  pid_t Pid = ::fork();
  if (Pid < 0) {
    for (int Fd : {ToChild[0], ToChild[1], FromChild[0], FromChild[1]})
      ::close(Fd);
    return;
  }
  if (Pid == 0) {
    // Child: land the pipe ends on fixed fds and re-exec ourselves with
    // the hidden worker flag (the embedding binary routes it to
    // workerChildMain). dup2 clears CLOEXEC; the collision cases keep
    // the fd and just clear the flag.
    ::close(ToChild[1]);
    ::close(FromChild[0]);
    int In = ToChild[0], Out = FromChild[1];
    if (Out == 3)
      Out = ::dup(Out);
    if (In != 3) {
      ::dup2(In, 3);
      ::close(In);
    } else {
      ::fcntl(3, F_SETFD, 0);
    }
    if (Out != 4) {
      ::dup2(Out, 4);
      ::close(Out);
    } else {
      ::fcntl(4, F_SETFD, 0);
    }
    ::execl("/proc/self/exe", "postr-serve-worker", "--worker-child", "3",
            "4", static_cast<char *>(nullptr));
    _exit(127);
  }
  // Parent.
  ::close(ToChild[0]);
  ::close(FromChild[1]);
  ::fcntl(ToChild[1], F_SETFD, FD_CLOEXEC);
  ::fcntl(FromChild[0], F_SETFD, FD_CLOEXEC);
  S.Pid = Pid;
  S.FdIn = ToChild[1];
  S.FdOut = FromChild[0];
}

void Server::reapWorker(WorkerSlot &S, bool Kill) {
  if (S.FdIn >= 0) {
    ::close(S.FdIn); // EOF: an idle child exits cleanly
    S.FdIn = -1;
  }
  if (S.FdOut >= 0) {
    ::close(S.FdOut);
    S.FdOut = -1;
  }
  if (S.Pid > 0) {
    if (Kill)
      ::kill(S.Pid, SIGKILL);
    int Status = 0;
    ::waitpid(S.Pid, &Status, 0);
    S.Pid = -1;
  }
}

void Server::quarantine(WorkerSlot &S) {
  {
    std::lock_guard<std::mutex> L(Mu);
    ++St.Quarantines;
  }
  if (Opts.ForkWorkers) {
    reapWorker(S, /*Kill=*/true);
    // Respawned lazily on next use, with a cold op cache.
  } else {
    S.OpCache = Opts.OpCacheBytes
                    ? std::make_unique<NfaOpCache>(Opts.OpCacheBytes)
                    : nullptr;
  }
}

Server::WorkerSlot *Server::acquireSlot(uint64_t &RetryAfterMs) {
  std::unique_lock<std::mutex> L(Mu);
  auto FindFree = [&]() -> WorkerSlot * {
    for (auto &S : Slots)
      if (!S->Busy)
        return S.get();
    return nullptr;
  };
  WorkerSlot *S = FindFree();
  if (!S) {
    if (Waiters >= Opts.QueueMax || ShuttingDown.load()) {
      // Shed: hint a backoff proportional to the queue we just refused
      // to join.
      RetryAfterMs = std::min<uint64_t>(1000, 50 * (Waiters + 1));
      return nullptr;
    }
    ++Waiters;
    SlotFree.wait(L, [&] { return FindFree() || ShuttingDown.load(); });
    --Waiters;
    S = FindFree();
    if (!S) {
      RetryAfterMs = 0; // shutting down: no point retrying
      return nullptr;
    }
  }
  S->Busy = true;
  return S;
}

void Server::releaseSlot(WorkerSlot *S) {
  std::lock_guard<std::mutex> L(Mu);
  S->Busy = false;
  SlotFree.notify_all();
}

//===----------------------------------------------------------------------===//
// One attempt on one worker
//===----------------------------------------------------------------------===//

Response Server::runOnWorker(WorkerSlot &Slot, const Request &Req,
                             bool &Crashed, bool &Killed) {
  Crashed = Killed = false;
  if (!Opts.ForkWorkers) {
    if (Req.TestAbort && Opts.AllowTestAbort) {
      // Simulated crash: the session state is torn down exactly as if
      // the process had died, without taking the test binary with it.
      Crashed = true;
      return Response{};
    }
    return solveRequest(Req, Opts, Slot.OpCache.get(), &ShuttingDown);
  }

  if (Slot.Pid < 0)
    spawnWorker(Slot);
  if (Slot.Pid < 0) {
    Response R;
    R.S = Response::Error;
    R.Id = Req.Id;
    R.Message = "cannot spawn worker";
    R.ExitCode = 2;
    return R;
  }
  if (!writeFrame(Slot.FdIn, encodeRequest(Req))) {
    Crashed = true;
    reapWorker(Slot, /*Kill=*/true);
    return Response{};
  }
  // The child enforces the request deadline itself and replies
  // `unknown (timeout)`; the grace window only catches a *stuck* child
  // (hard-looping outside budget probes, SIGSTOPped, ...).
  uint64_t ReadDeadline = Req.TimeoutMs + Opts.KillGraceMs;
  Result<std::string> Frame =
      readFrame(Slot.FdOut, Opts.MaxRequestBytes, ReadDeadline);
  if (!Frame) {
    if (Frame.error() == "timeout") {
      Killed = true;
      reapWorker(Slot, /*Kill=*/true);
      return Response{};
    }
    Crashed = true; // EOF or broken frame: the child died mid-query
    reapWorker(Slot, /*Kill=*/true);
    return Response{};
  }
  Result<Response> Resp = decodeResponse(*Frame);
  if (!Resp) {
    Crashed = true;
    reapWorker(Slot, /*Kill=*/true);
    return Response{};
  }
  return *Resp;
}

//===----------------------------------------------------------------------===//
// Admission, containment ladder, cache
//===----------------------------------------------------------------------===//

namespace {

/// Structured `unknown (reason)` reply — the containment ladder's
/// terminal answer. Exit codes follow the smtlib_cli taxonomy.
Response unknownReply(const std::string &Id, const std::string &Reason,
                      int ExitCode) {
  Response R;
  R.S = Response::Ok;
  R.Id = Id;
  R.Verdict = "unknown";
  R.Reason = Reason;
  R.ExitCode = ExitCode;
  return R;
}

/// Does this reply end the containment ladder? A determinate validated
/// verdict is always served; everything else on the trigger list gets
/// the one degraded retry.
bool isQuarantineTrigger(const Response &R, std::string &Reason,
                         int &ExitCode) {
  if (R.SelfCheckFailed) {
    Reason = "self-check failed";
    ExitCode = 7;
    return true;
  }
  if (R.FaultFired && R.Verdict != "sat" && R.Verdict != "unsat") {
    Reason = "fault-injected";
    ExitCode = 2;
    return true;
  }
  if (R.Reason == "memout") {
    Reason = "memout";
    ExitCode = 5;
    return true;
  }
  if (R.Reason == "stepbudget") {
    Reason = "stepbudget";
    ExitCode = 6;
    return true;
  }
  return false;
}

} // namespace

Response Server::solveAdmitted(const Request &Req, const std::string &Key,
                               uint64_t EffTimeoutMs) {
  (void)Key;
  Request Eff = Req;
  Eff.TimeoutMs = EffTimeoutMs;

  uint64_t RetryAfterMs = 0;
  WorkerSlot *Slot = acquireSlot(RetryAfterMs);
  if (!Slot) {
    std::lock_guard<std::mutex> L(Mu);
    ++St.Shed;
    Response R;
    R.S = Response::Busy;
    R.Id = Req.Id;
    R.RetryAfterMs = RetryAfterMs;
    R.Message = ShuttingDown.load() ? "shutting down" : "server busy";
    return R;
  }

  bool Crashed = false, Killed = false;
  Response R = runOnWorker(*Slot, Eff, Crashed, Killed);

  std::string FailReason;
  int FailCode = 2;
  bool Retry = false;
  if (Killed) {
    // The worker overran deadline + grace and was SIGKILLed: its budget
    // is spent, so this is terminal, not retried.
    std::lock_guard<std::mutex> L(Mu);
    ++St.WorkerKills;
    ++St.Quarantines;
    R = unknownReply(Req.Id, "timeout", 3);
  } else if (Crashed) {
    {
      std::lock_guard<std::mutex> L(Mu);
      ++St.WorkerCrashes;
    }
    quarantine(*Slot);
    FailReason = "worker-crash";
    Retry = true;
  } else if (R.S == Response::Ok &&
             isQuarantineTrigger(R, FailReason, FailCode)) {
    quarantine(*Slot);
    Retry = true;
  } else if (R.S == Response::Ok && R.FaultFired) {
    // Determinate, validated verdict despite a fired fault: serve it
    // (it passed the self-check) but still rebuild the session.
    quarantine(*Slot);
  }

  if (Retry && !Eff.Degraded) {
    {
      std::lock_guard<std::mutex> L(Mu);
      ++St.DegradedRetries;
    }
    Request RetryReq = Eff;
    RetryReq.Degraded = true;
    RetryReq.TestAbort = false; // the simulated crash happened; recover
    bool Crashed2 = false, Killed2 = false;
    Response R2 = runOnWorker(*Slot, RetryReq, Crashed2, Killed2);
    if (Killed2) {
      std::lock_guard<std::mutex> L(Mu);
      ++St.WorkerKills;
      ++St.Quarantines;
      ++St.Exhausted;
      R = unknownReply(Req.Id, "timeout", 3);
    } else if (Crashed2) {
      {
        std::lock_guard<std::mutex> L(Mu);
        ++St.WorkerCrashes;
        ++St.Exhausted;
      }
      quarantine(*Slot);
      R = unknownReply(Req.Id, FailReason, FailCode);
    } else if (R2.S == Response::Ok &&
               isQuarantineTrigger(R2, FailReason, FailCode)) {
      {
        std::lock_guard<std::mutex> L(Mu);
        ++St.Exhausted;
      }
      quarantine(*Slot);
      R = unknownReply(Req.Id, FailReason, FailCode);
    } else {
      R = R2;
    }
  } else if (Retry) {
    {
      std::lock_guard<std::mutex> L(Mu);
      ++St.Exhausted;
    }
    R = unknownReply(Req.Id, FailReason, FailCode);
  }

  releaseSlot(Slot);
  return R;
}

//===----------------------------------------------------------------------===//
// Entry point
//===----------------------------------------------------------------------===//

Response Server::submit(const Request &Req) {
  {
    std::lock_guard<std::mutex> L(Mu);
    ++St.Requests;
  }
  Response Out;
  switch (Req.K) {
  case Request::Ping:
    Out.S = Response::Ok;
    Out.Id = Req.Id;
    break;
  case Request::Stats:
    Out.S = Response::Ok;
    Out.Id = Req.Id;
    Out.Body = statsJson();
    break;
  case Request::Shutdown:
    // Acknowledged here; the daemon's accept loop acts on it.
    Out.S = Response::Ok;
    Out.Id = Req.Id;
    break;
  case Request::Solve: {
    // Parse in the dispatcher: admission hygiene (malformed scripts
    // never consume a worker) and the canonical cache key.
    Result<strings::Problem> P = smtlib::parseString(Req.Smt2);
    if (!P) {
      std::lock_guard<std::mutex> L(Mu);
      ++St.ParseErrors;
      Out.S = Response::Error;
      Out.Id = Req.Id;
      Out.Message = "parse error: " + P.error();
      Out.ExitCode = 1;
      break;
    }
    std::string Key = smtlib::printProblem(*P);
    uint64_t EffMs = effectiveTimeoutMs(Req.TimeoutMs, P->timeoutMs(), Opts);
    bool UseCache = Cache != nullptr && !Req.NoCache;

    if (UseCache) {
      if (std::optional<CachedReply> Hit = Cache->lookup(Key)) {
        if (!Opts.ParanoidHits) {
          Out.S = Response::Ok;
          Out.Id = Req.Id;
          Out.Verdict = Hit->Verdict;
          Out.Reason = Hit->Reason;
          Out.ExitCode = Hit->ExitCode;
          Out.Body = Hit->Body;
          Out.Cache = "hit";
          break;
        }
        // Paranoid: re-derive the hit from scratch and only serve it if
        // the fresh solve agrees; a mismatch means a poisoned entry
        // slipped through — drop it and serve (and count) the truth.
        Response Fresh = solveAdmitted(Req, Key, EffMs);
        bool Agrees = Fresh.S == Response::Ok &&
                      Fresh.Verdict == Hit->Verdict &&
                      Fresh.Reason == Hit->Reason &&
                      Fresh.ExitCode == Hit->ExitCode &&
                      Fresh.Body == Hit->Body;
        if (!Agrees)
          Cache->erase(Key);
        if (Agrees)
          Fresh.Cache = "hit";
        else if (Fresh.S == Response::Ok && Fresh.Publishable &&
                 !Fresh.Verdict.empty() && Fresh.Verdict != "unknown")
          Cache->publish(Key, {Fresh.Verdict, Fresh.Reason, Fresh.ExitCode,
                               Fresh.Body});
        Out = std::move(Fresh);
        if (Out.Cache.empty())
          Out.Cache = "miss";
        break;
      }
    }

    Out = solveAdmitted(Req, Key, EffMs);
    if (Out.S == Response::Ok)
      Out.Cache = UseCache ? "miss" : "bypass";
    if (UseCache && Out.S == Response::Ok && !Out.Verdict.empty() &&
        Out.Verdict != "unknown") {
      if (Out.Publishable)
        Cache->publish(Key,
                       {Out.Verdict, Out.Reason, Out.ExitCode, Out.Body});
      else
        Cache->rejectPoisoned();
    } else if (UseCache && Out.S == Response::Ok &&
               (Out.SelfCheckFailed || Out.FaultFired)) {
      Cache->rejectPoisoned();
    }
    break;
  }
  }

  if (Out.S == Response::Ok && !Out.Verdict.empty()) {
    std::lock_guard<std::mutex> L(Mu);
    ++St.Solved;
    if (Out.Verdict == "sat")
      ++St.Sat;
    else if (Out.Verdict == "unsat")
      ++St.Unsat;
    else
      ++St.Unknown;
  }

  // The daemon↔worker-only fields never cross the client boundary.
  Out.Publishable = false;
  Out.SelfCheckFailed = false;
  Out.FaultFired = false;
  Out.BudgetTrips = 0;
  Out.DegradedRetries = 0;
  return Out;
}

//===----------------------------------------------------------------------===//
// Stats
//===----------------------------------------------------------------------===//

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> L(Mu);
  return St;
}

ResultCacheStats Server::cacheStats() const {
  return Cache ? Cache->stats() : ResultCacheStats{};
}

std::string Server::statsJson() const {
  ServerStats S = stats();
  ResultCacheStats C = cacheStats();
  std::string J = "{";
  auto Field = [&J](const char *K, uint64_t V, bool Last = false) {
    J += "\"";
    J += K;
    J += "\": ";
    J += std::to_string(V);
    if (!Last)
      J += ", ";
  };
  Field("requests", S.Requests);
  Field("solved", S.Solved);
  Field("parse_errors", S.ParseErrors);
  Field("sat", S.Sat);
  Field("unsat", S.Unsat);
  Field("unknown", S.Unknown);
  Field("shed", S.Shed);
  Field("quarantines", S.Quarantines);
  Field("worker_crashes", S.WorkerCrashes);
  Field("worker_kills", S.WorkerKills);
  Field("degraded_retries", S.DegradedRetries);
  Field("exhausted", S.Exhausted);
  J += "\"cache\": {";
  Field("hits", C.Hits);
  Field("misses", C.Misses);
  Field("evictions", C.Evictions);
  Field("poisoned_rejects", C.PoisonedRejects);
  Field("paranoid_mismatches", C.ParanoidMismatches);
  Field("entries", C.Entries);
  Field("bytes", C.Bytes, /*Last=*/true);
  J += "}}";
  return J;
}

} // namespace serve
} // namespace postr
