//===- serve/Server.h - The resident solver service --------------*- C++ -*-===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fault-tolerant resident solver behind `postr_serve`: a pool of
/// crash-contained worker sessions, admission control with load
/// shedding, per-request deadlines wired into the cooperative `Budget`,
/// and the validated cross-query caches of serve/Cache.h.
///
/// One orchestration codepath drives two executor modes:
///
///  - **In-process** (`ForkWorkers = false`): requests solve on the
///    calling thread against a pool-managed per-worker state. Used by
///    the in-process soak tests and bench_serve, where ASan must see
///    every allocation and a "crash" is simulated (`x-test-abort`).
///  - **Forked** (`ForkWorkers = true`): each worker is a child process
///    (`<exe> --worker-child <fdIn> <fdOut>`, frames over pipes), so a
///    real SIGKILL, abort, or memory blow-up is contained: the daemon
///    observes EOF or a deadline overrun, reaps and respawns the child,
///    and answers structurally. Used by the `postr_serve` daemon.
///
/// Containment ladder (both modes): a worker that crashes, fails the
/// solver's self-check, trips an injected fault, or stops on
/// MemOut/StepBudget is *quarantined* — its session state (including its
/// automata-op cache) is torn down and rebuilt — and the query is
/// retried once on a clean worker with degraded options (Bland pivoting,
/// reduced MBQI bounds). A second failure returns a structured
/// `unknown (reason)`, never a crash and never a wrong verdict.
///
//===----------------------------------------------------------------------===//

#ifndef POSTR_SERVE_SERVER_H
#define POSTR_SERVE_SERVER_H

#include "serve/Cache.h"
#include "serve/Protocol.h"
#include "solver/PositionSolver.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace postr {
namespace serve {

/// Server configuration. Every field has an environment override (see
/// `serveOptionsFromEnv` and docs/KNOBS.md) so deployments tune the
/// daemon without rebuilds.
struct ServeOptions {
  /// Resident worker sessions (concurrent solves). Env
  /// POSTR_SERVE_WORKERS.
  uint32_t Workers = 2;
  /// Bounded admission queue: at most this many requests wait for a
  /// worker; beyond it requests are shed with `busy` + a retry-after
  /// hint. Env POSTR_SERVE_QUEUE_MAX.
  uint32_t QueueMax = 64;
  /// Server-side per-request wall-clock cap in ms. A client budget
  /// (header or scripted `:timeout`) is intersected with it; absent any
  /// client budget this is the deadline. Env POSTR_SERVE_MAX_TIMEOUT_MS.
  uint64_t MaxTimeoutMs = 60000;
  /// Per-request solver memory budget in bytes (0 = none); exceeding it
  /// is a quarantine trigger. Env POSTR_SERVE_MEM_LIMIT_BYTES.
  uint64_t MemLimitBytes = 0;
  /// Whole-query result-cache capacity in bytes (0 disables the tier).
  /// Env POSTR_SERVE_CACHE_BYTES.
  uint64_t CacheBytes = 64ull << 20;
  /// Per-worker automata-op cache capacity in bytes (0 disables). Env
  /// POSTR_SERVE_OPCACHE_BYTES.
  uint64_t OpCacheBytes = 16ull << 20;
  /// Cap on one request frame's payload. Env
  /// POSTR_SERVE_MAX_REQUEST_BYTES.
  uint64_t MaxRequestBytes = DefaultMaxFrameBytes;
  /// Forked mode: how long past the request deadline a worker may run
  /// before it is SIGKILLed and respawned. Env POSTR_SERVE_KILL_GRACE_MS.
  uint64_t KillGraceMs = 2000;
  /// Re-solve every result-cache hit from scratch and compare before
  /// serving it (POSTR_SELFCHECK=paranoid); a mismatch drops the entry
  /// and serves the fresh result.
  bool ParanoidHits = false;
  /// Honour `x-test-abort` requests (CI/test rigs only): the worker
  /// simulates a crash mid-query so recovery paths can be driven
  /// deterministically. Env POSTR_SERVE_ALLOW_TEST_ABORT.
  bool AllowTestAbort = false;
  /// Executor mode: true forks one child process per worker (real crash
  /// containment); false solves in-process (tests, bench).
  bool ForkWorkers = false;
  /// Test-only: mutate the worker's SolveOptions before each solve
  /// (install the model/cert tamper hooks, force certification) so the
  /// containment and cache-validation paths can be driven
  /// deterministically. In-process mode only; never set in production.
  std::function<void(solver::SolveOptions &)> MutateSolveOptions;
};

/// Reads the POSTR_SERVE_* environment overrides (and
/// POSTR_SELFCHECK=paranoid for ParanoidHits) on top of the defaults.
ServeOptions serveOptionsFromEnv();

/// Monotonic counters, exported as JSON by `statsJson` (the daemon's
/// --stats/health endpoint and the test assertions read that).
struct ServerStats {
  uint64_t Requests = 0;
  uint64_t Solved = 0;
  uint64_t ParseErrors = 0;
  uint64_t Sat = 0;
  uint64_t Unsat = 0;
  uint64_t Unknown = 0;
  /// Requests shed by admission control (busy replies).
  uint64_t Shed = 0;
  /// Quarantines: worker sessions torn down and rebuilt.
  uint64_t Quarantines = 0;
  /// Forked workers that died mid-query (EOF / bad frame).
  uint64_t WorkerCrashes = 0;
  /// Forked workers SIGKILLed for overrunning deadline + grace.
  uint64_t WorkerKills = 0;
  /// Queries re-run once on a clean worker with degraded options.
  uint64_t DegradedRetries = 0;
  /// Replies answered `unknown` after the retry also failed.
  uint64_t Exhausted = 0;
};

class Server {
public:
  explicit Server(const ServeOptions &Opts);
  ~Server();
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Handles one request end to end (admission, cache, dispatch,
  /// containment). Thread-safe; solve requests block until a worker is
  /// free or admission control sheds them. The returned response has
  /// the daemon↔worker-only fields cleared.
  Response submit(const Request &Req);

  /// Counter snapshot as one JSON object (stats requests, --stats).
  std::string statsJson() const;

  ServerStats stats() const;
  ResultCacheStats cacheStats() const;
  const ServeOptions &options() const { return Opts; }

private:
  struct WorkerSlot;

  /// One solve attempt on \p Slot. Returns false in *Crashed when the
  /// worker vanished instead of replying.
  Response runOnWorker(WorkerSlot &Slot, const Request &Req, bool &Crashed,
                       bool &Killed);
  Response solveAdmitted(const Request &Req, const std::string &Key,
                         uint64_t EffTimeoutMs);
  WorkerSlot *acquireSlot(uint64_t &RetryAfterMs);
  void releaseSlot(WorkerSlot *Slot);
  void quarantine(WorkerSlot &Slot);
  void spawnWorker(WorkerSlot &Slot);
  void reapWorker(WorkerSlot &Slot, bool Kill);

  ServeOptions Opts;
  std::unique_ptr<ResultCache> Cache; ///< null when CacheBytes == 0
  std::atomic<bool> ShuttingDown{false};

  mutable std::mutex Mu;
  std::condition_variable SlotFree;
  std::vector<std::unique_ptr<WorkerSlot>> Slots;
  uint32_t Waiters = 0;
  ServerStats St;
};

} // namespace serve
} // namespace postr

#endif // POSTR_SERVE_SERVER_H
