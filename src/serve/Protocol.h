//===- serve/Protocol.h - postr-serve wire protocol --------------*- C++ -*-===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The length-prefixed framing and message grammar shared by the
/// `postr_serve` daemon, `postr_client`, and the daemon↔worker-child
/// pipes. One frame is a 4-byte big-endian payload length followed by the
/// payload; a payload is a text message:
///
///   postr-serve/1 <command>\n
///   <key>: <value>\n
///   ...\n
///   \n
///   <body>
///
/// Requests: `solve` (body = SMT-LIB script), `stats`, `ping`,
/// `shutdown`. Responses: `ok` (solve results and stats replies), `busy`
/// (admission control shed the request; `retry-after-ms` hints the
/// client's backoff), `error` (malformed request, parse error, oversized
/// frame). Everything is hardened against hostile peers: frame lengths
/// are capped, header parsing rejects junk, and unknown keys are ignored
/// so the protocol can grow. See docs/SERVE.md for the full taxonomy.
///
//===----------------------------------------------------------------------===//

#ifndef POSTR_SERVE_PROTOCOL_H
#define POSTR_SERVE_PROTOCOL_H

#include "base/Base.h"

#include <cstdint>
#include <string>

namespace postr {
namespace serve {

/// Protocol magic: first token of every payload.
inline constexpr const char *ProtocolMagic = "postr-serve/1";

/// Default cap on one frame's payload size; `ServeOptions::MaxRequestBytes`
/// (env `POSTR_SERVE_MAX_REQUEST_BYTES`) overrides per server.
inline constexpr uint64_t DefaultMaxFrameBytes = 4ull << 20;

/// A parsed request frame.
struct Request {
  enum Kind : uint8_t { Solve, Stats, Ping, Shutdown };
  Kind K = Solve;
  /// Client-chosen correlation id, echoed verbatim in the response.
  std::string Id;
  /// Client budget in ms (0 = none requested); the server intersects it
  /// with its per-request cap. A scripted `(set-option :timeout N)` in
  /// the body is a second client-side bound; the tightest wins.
  uint64_t TimeoutMs = 0;
  /// Bypass the cross-query cache for this request (lookup AND publish).
  bool NoCache = false;
  /// Test-only (honoured only when the server was started with
  /// `AllowTestAbort`): the worker hard-exits mid-solve, simulating a
  /// crash, so recovery paths can be driven deterministically from CI.
  bool TestAbort = false;
  /// Daemon ↔ worker only: this is the post-quarantine retry — solve
  /// with degraded options (Bland pivoting, reduced MBQI bounds).
  bool Degraded = false;
  /// SMT-LIB script to solve (Solve requests).
  std::string Smt2;
};

/// A parsed response frame.
struct Response {
  enum Status : uint8_t { Ok, Busy, Error };
  Status S = Ok;
  std::string Id;
  /// Solve replies: "sat" | "unsat" | "unknown".
  std::string Verdict;
  /// Structured reason accompanying an unknown verdict ("timeout",
  /// "memout", "worker-crash", "self-check failed", ...); empty
  /// otherwise.
  std::string Reason;
  /// smtlib_cli-compatible exit code for the verdict (see docs/SERVE.md).
  int ExitCode = 0;
  /// Cross-query cache disposition of a solve: "hit" | "miss" | "bypass".
  std::string Cache;
  /// Backoff hint on Busy replies, in ms.
  uint64_t RetryAfterMs = 0;
  /// Error replies: the diagnostic.
  std::string Message;
  /// Solve replies: model comment lines; stats replies: the JSON.
  std::string Body;

  //===--- daemon ↔ worker-child only (never sent to clients) -----------===//
  /// The result may be published to the cross-query cache: determinate
  /// verdict, self-check passed, no budget trip, no injected fault fired
  /// during the query.
  bool Publishable = false;
  /// The worker's own self-check (model validation / certification)
  /// rejected the verdict — a quarantine trigger.
  bool SelfCheckFailed = false;
  /// A budget trip or degraded retry happened inside the solve.
  uint32_t BudgetTrips = 0;
  uint32_t DegradedRetries = 0;
  /// An armed fault injector fired during this query.
  bool FaultFired = false;
};

/// Serializes \p R into a payload string (without the length prefix).
std::string encodeRequest(const Request &R);
std::string encodeResponse(const Response &R);

/// Parses a payload. Unknown commands and malformed headers fail with a
/// diagnostic; unknown keys are skipped.
Result<Request> decodeRequest(const std::string &Payload);
Result<Response> decodeResponse(const std::string &Payload);

/// Writes one frame (length prefix + payload) to \p Fd, retrying on
/// EINTR and short writes. Returns false on error (e.g. EPIPE after the
/// peer vanished).
bool writeFrame(int Fd, const std::string &Payload);

/// Reads one frame from \p Fd. \p MaxBytes bounds the announced payload
/// length (a hostile 4 GiB prefix must not allocate). `DeadlineMs`
/// bounds the whole read via poll (0 = block forever). Failure
/// distinguishes a clean EOF ("eof") from errors so callers can tell a
/// closed session from a broken one; a timeout fails with "timeout".
Result<std::string> readFrame(int Fd, uint64_t MaxBytes,
                              uint64_t DeadlineMs = 0);

} // namespace serve
} // namespace postr

#endif // POSTR_SERVE_PROTOCOL_H
