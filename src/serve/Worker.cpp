//===- serve/Worker.cpp - One serve worker session --------------------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "serve/Worker.h"

#include "base/Budget.h"
#include "serve/Cache.h"
#include "smtlib/Reader.h"
#include "solver/PositionSolver.h"

#include <algorithm>
#include <csignal>
#include <memory>
#include <unistd.h>

namespace postr {
namespace serve {

namespace {

/// smtlib_cli-compatible exit code for a solve result (examples/
/// smtlib_cli.cpp documents the taxonomy); served and one-shot replies
/// must agree byte for byte, codes included.
int exitCodeFor(const solver::SolveResult &R) {
  if (R.Validation.Failed)
    return 7;
  if (R.V != Verdict::Unknown)
    return 0;
  switch (R.Stop) {
  case StopReason::None:
    return 2;
  case StopReason::Timeout:
    return 3;
  case StopReason::Cancelled:
    return 4;
  case StopReason::MemOut:
    return 5;
  case StopReason::StepBudget:
    return 6;
  }
  return 2;
}

/// The degraded post-quarantine profile, mirroring the solver's own
/// internal degraded retry (solver/PositionSolver.cpp): Bland pivoting
/// (slow but convergence-guaranteed) and tightened MBQI bounds.
void applyDegraded(solver::SolveOptions &O) {
  O.Mp.Qf.Pivot.Rule = lia::PivotRule::Bland;
  O.Mp.Mbqi.Qf.Pivot.Rule = lia::PivotRule::Bland;
  O.Mp.Mbqi.MaxCandidates = std::min<uint32_t>(O.Mp.Mbqi.MaxCandidates, 16);
  O.Mp.Mbqi.MaxOffsets = std::min<int64_t>(O.Mp.Mbqi.MaxOffsets, 512);
}

} // namespace

uint64_t effectiveTimeoutMs(uint64_t HeaderMs, uint64_t ScriptMs,
                            const ServeOptions &Opts) {
  // The server cap always applies (a 0 cap falls back to the smtlib_cli
  // default so one-shot and served behavior stay comparable).
  uint64_t Eff = Opts.MaxTimeoutMs ? Opts.MaxTimeoutMs : 60000;
  if (HeaderMs)
    Eff = std::min(Eff, HeaderMs);
  if (ScriptMs)
    Eff = std::min(Eff, ScriptMs);
  return Eff;
}

Response solveRequest(const Request &Req, const ServeOptions &Opts,
                      NfaOpCache *OpCache,
                      const std::atomic<bool> *Cancel) {
  Response Resp;
  Resp.Id = Req.Id;
  Result<strings::Problem> P = smtlib::parseString(Req.Smt2);
  if (!P) {
    Resp.S = Response::Error;
    Resp.Message = "parse error: " + P.error();
    Resp.ExitCode = 1;
    return Resp;
  }

  // One cooperative budget governs the whole solve: the deadline is the
  // tightest client/server bound, and Cancel lets the daemon (SIGTERM in
  // forked mode, shutdown in-process) interrupt Simplex pivots and MBQI
  // rounds mid-flight.
  Budget::Limits Lim;
  Lim.TimeoutMs = effectiveTimeoutMs(Req.TimeoutMs, P->timeoutMs(), Opts);
  Lim.MemLimitBytes = Opts.MemLimitBytes;
  Lim.Cancel = Cancel;
  Budget Bud(Lim);

  solver::SolveOptions SOpts;
  SOpts.Budget = &Bud;
  if (Req.Degraded)
    applyDegraded(SOpts);
  if (Opts.MutateSolveOptions)
    Opts.MutateSolveOptions(SOpts);

  uint64_t FiredBefore =
      FaultInjector::armed() ? FaultInjector::armed()->fired() : 0;
  solver::SolveResult R;
  {
    // The op cache sees only this solve's automata work; staged entries
    // are published below iff the whole query validates.
    NfaCacheScope Scope(OpCache);
    R = solver::solveProblem(*P, SOpts);
  }
  // The injector may have been armed lazily (env parse at first probe),
  // so re-query after the solve.
  FaultInjector *FI = FaultInjector::armed();
  bool FaultFired = FI && FI->fired() > FiredBefore;

  Resp.S = Response::Ok;
  Resp.ExitCode = exitCodeFor(R);
  switch (R.V) {
  case Verdict::Sat: {
    Resp.Verdict = "sat";
    std::string Body;
    for (const auto &[X, W] : R.Words)
      if (X < P->numStrVars())
        Body += "; " + P->strVarName(X) + " has length " +
                std::to_string(W.size()) + "\n";
    Resp.Body = std::move(Body);
    break;
  }
  case Verdict::Unsat:
    Resp.Verdict = "unsat";
    break;
  case Verdict::Unknown:
    Resp.Verdict = "unknown";
    if (R.Validation.Failed)
      Resp.Reason = "self-check failed";
    else if (R.Stop != StopReason::None)
      Resp.Reason = stopReasonName(R.Stop);
    else
      Resp.Reason = "incomplete";
    break;
  }

  Resp.SelfCheckFailed = R.Validation.Failed;
  Resp.BudgetTrips = R.Stats.BudgetTrips;
  Resp.DegradedRetries = R.Stats.DegradedRetries;
  Resp.FaultFired = FaultFired;
  Resp.Publishable =
      R.V != Verdict::Unknown && !R.Validation.Failed && !FaultFired;
  if (OpCache) {
    if (Resp.Publishable)
      OpCache->publishStaged();
    else
      OpCache->dropStaged();
  }
  return Resp;
}

//===----------------------------------------------------------------------===//
// Forked worker child
//===----------------------------------------------------------------------===//

namespace {

/// SIGTERM → cooperative cancel of the in-flight solve. The handler only
/// stores an atomic (async-signal-safe); the budget's next checkpoint
/// observes it and the reply still reaches the daemon, as
/// `unknown (cancelled)`.
std::atomic<bool> ChildCancel{false};

void onSigterm(int) { ChildCancel.store(true, std::memory_order_relaxed); }

} // namespace

int workerChildMain(int FdIn, int FdOut, const ServeOptions &Opts) {
  std::signal(SIGPIPE, SIG_IGN);
  struct sigaction SA = {};
  SA.sa_handler = onSigterm; // no SA_RESTART: an idle child still exits
                             // promptly via EOF when the daemon closes
                             // the pipe
  ::sigaction(SIGTERM, &SA, nullptr);

  std::unique_ptr<NfaOpCache> OpCache;
  if (Opts.OpCacheBytes)
    OpCache = std::make_unique<NfaOpCache>(Opts.OpCacheBytes);

  for (;;) {
    Result<std::string> Frame = readFrame(FdIn, Opts.MaxRequestBytes);
    if (!Frame)
      return Frame.error() == "eof" ? 0 : 1;
    Result<Request> Req = decodeRequest(*Frame);
    Response Resp;
    if (!Req) {
      Resp.S = Response::Error;
      Resp.Message = Req.error();
      Resp.ExitCode = 1;
    } else if (Req->K == Request::Shutdown) {
      Resp.S = Response::Ok;
      Resp.Id = Req->Id;
      writeFrame(FdOut, encodeResponse(Resp));
      return 0;
    } else if (Req->K != Request::Solve) {
      Resp.S = Response::Ok;
      Resp.Id = Req->Id;
    } else {
      if (Req->TestAbort && Opts.AllowTestAbort)
        _exit(86); // simulated crash mid-query: no reply; the daemon
                   // observes EOF and runs the containment ladder
      ChildCancel.store(false, std::memory_order_relaxed);
      Resp = solveRequest(*Req, Opts, OpCache.get(), &ChildCancel);
    }
    if (!writeFrame(FdOut, encodeResponse(Resp)))
      return 1;
  }
}

} // namespace serve
} // namespace postr
