//===- bench/bench_position_hard.cpp - Sec. 8.2 position-hard claim --------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
// The paper's sharpest separation (Sec. 8.2): on the hand-crafted
// position-hard set (primitive-word-style ¬contains / ≠ over flat
// languages, footnote 10) Z3-Noodler-pos solves every instance while no
// other solver solves any. This binary reports per-solver solved counts
// and the per-verdict split on that family alone.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

using namespace postr;
using namespace postr::bench;

int main() {
  uint32_t N = positionHardInstances();
  uint64_t Timeout = perInstanceTimeoutMs();
  std::printf("== position-hard (%u instances, timeout %llums) ==\n", N,
              static_cast<unsigned long long>(Timeout));
  for (const SolverDesc &S : solverList()) {
    uint32_t Sat = 0, Unsat = 0, Unknown = 0, Oor = 0;
    double TotalMs = 0;
    for (uint32_t I = 0; I < N; ++I) {
      strings::Problem P = generate(Family::PositionHard, 1, I);
      RunOutcome R = runSolver(S.Name, P, Timeout);
      if (R.TimedOut)
        ++Oor;
      else if (R.V == Verdict::Sat)
        ++Sat;
      else if (R.V == Verdict::Unsat)
        ++Unsat;
      else
        ++Unknown;
      TotalMs += R.Ms;
    }
    std::printf("%-14s solved %3u/%u (sat %u, unsat %u) unknown %u oor %u "
                "time %.1fs   (plays %s)\n",
                S.Name, Sat + Unsat, N, Sat, Unsat, Unknown, Oor,
                TotalMs / 1000.0, S.PlaysRole);
  }
  return 0;
}
