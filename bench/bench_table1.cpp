//===- bench/bench_table1.cpp - Table 1 reproduction -----------------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
// Regenerates Table 1: per benchmark family and solver, the number of
// out-of-resource instances (OOR: timeout), Unknown answers, total time
// on finished instances (Time), and total time charging the timeout for
// OOR/Unk instances (TimeAll). The paper's claims to reproduce in shape:
// postr-pos has the fewest OOR overall and uniquely solves position-hard;
// the enumeration (cvc5-profile) baseline is competitive on the Sat-heavy
// symbolic-execution families; the eq-reduction baselines trail on
// position-heavy input.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

using namespace postr;
using namespace postr::bench;

int main() {
  const std::vector<Family> Families = {Family::Biopython, Family::Django,
                                        Family::Thefuck,
                                        Family::PositionHard};
  uint64_t Timeout = perInstanceTimeoutMs();

  std::printf("== Table 1: OOR / Unknown / Time(s) / TimeAll(s) per family "
              "(timeout %llums) ==\n",
              static_cast<unsigned long long>(Timeout));
  std::printf("%-14s", "solver");
  for (Family F : Families)
    std::printf(" | %-28s", familyName(F));
  std::printf(" | %-28s\n", "ALL");

  struct Cell {
    uint32_t Oor = 0, Unk = 0;
    double TimeMs = 0, TimeAllMs = 0;
  };

  for (const SolverDesc &S : solverList()) {
    std::vector<Cell> Cells(Families.size());
    Cell All;
    for (size_t FI = 0; FI < Families.size(); ++FI) {
      Family F = Families[FI];
      uint32_t N = F == Family::PositionHard ? positionHardInstances()
                                             : instancesPerFamily();
      for (uint32_t I = 0; I < N; ++I) {
        strings::Problem P = generate(F, 1, I);
        RunOutcome R = runSolver(S.Name, P, Timeout);
        Cell &C = Cells[FI];
        if (R.TimedOut) {
          ++C.Oor;
          C.TimeAllMs += static_cast<double>(Timeout);
        } else if (R.V == Verdict::Unknown) {
          ++C.Unk;
          C.TimeAllMs += static_cast<double>(Timeout);
        } else {
          C.TimeMs += R.Ms;
          C.TimeAllMs += R.Ms;
        }
      }
      All.Oor += Cells[FI].Oor;
      All.Unk += Cells[FI].Unk;
      All.TimeMs += Cells[FI].TimeMs;
      All.TimeAllMs += Cells[FI].TimeAllMs;
    }
    std::printf("%-14s", S.Name);
    auto PrintCell = [](const Cell &C) {
      std::printf(" | OOR%4u Unk%4u %7.1f %7.1f", C.Oor, C.Unk,
                  C.TimeMs / 1000.0, C.TimeAllMs / 1000.0);
    };
    for (const Cell &C : Cells)
      PrintCell(C);
    PrintCell(All);
    std::printf("   (plays %s)\n", S.PlaysRole);
  }
  return 0;
}
