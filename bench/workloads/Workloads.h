//===- bench/workloads/Workloads.h - Benchmark families ----------*- C++ -*-===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded generators for the paper's four benchmark families (Sec. 8.1).
/// The PyCT-extracted corpora (biopython / django / thefuck) are not
/// redistributable, so each family is a synthetic generator that
/// reproduces the constraint *mix* of the corresponding project's
/// symbolic execution runs: equality/disequality tests on path
/// conditions, prefix/suffix dispatch, containment filters, character
/// probes (str.at), and length guards, over literal-heavy regular
/// languages. position-hard follows the paper's footnote 10 recipe
/// exactly (primitive-word-style formulae over flat languages).
///
//===----------------------------------------------------------------------===//

#ifndef POSTR_BENCH_WORKLOADS_H
#define POSTR_BENCH_WORKLOADS_H

#include "strings/Ast.h"

#include <random>
#include <string>

namespace postr {
namespace bench {

enum class Family {
  Biopython,    ///< sequence-tool style: literal alphabets, contains/at
  Django,       ///< web-framework style: prefix/suffix routing, diseqs
  Thefuck,      ///< command-fixer style: word equations + diseqs
  PositionHard, ///< footnote-10 primitive-word formulae
};

inline const char *familyName(Family F) {
  switch (F) {
  case Family::Biopython:
    return "biopython";
  case Family::Django:
    return "django";
  case Family::Thefuck:
    return "thefuck";
  case Family::PositionHard:
    return "position-hard";
  }
  return "?";
}

/// Generates instance \p Index of \p F (deterministic in (F, Seed,
/// Index)).
strings::Problem generate(Family F, uint32_t Seed, uint32_t Index);

} // namespace bench
} // namespace postr

#endif // POSTR_BENCH_WORKLOADS_H
