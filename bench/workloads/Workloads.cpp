//===- bench/workloads/Workloads.cpp - Benchmark families ------------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "Workloads.h"

using namespace postr;
using namespace postr::bench;
using strings::AssertKind;
using strings::IntTerm;
using strings::Problem;
using strings::StrElem;
using strings::StrSeq;

namespace {

/// Random literal over a small project-specific alphabet.
std::string randLit(std::mt19937 &Rng, const std::string &Chars,
                    uint32_t MaxLen, uint32_t MinLen = 1) {
  uint32_t Len = MinLen + Rng() % (MaxLen - MinLen + 1);
  std::string S;
  for (uint32_t I = 0; I < Len; ++I)
    S.push_back(Chars[Rng() % Chars.size()]);
  return S;
}

StrSeq seq(std::initializer_list<StrElem> Es) { return StrSeq(Es); }

/// Symbolic-execution-style generator shared by the three project
/// families; the knobs change the constraint mix per family.
struct SymexKnobs {
  std::string Chars;        ///< project character set
  uint32_t NumInputs;       ///< symbolic inputs per path condition
  uint32_t NumBranches;     ///< literals tested along the path
  uint32_t PctDiseq;        ///< % of branches taken on the else side
  uint32_t PctPrefixSuffix; ///< % prefix/suffix dispatch tests
  uint32_t PctContains;     ///< % containment filters
  uint32_t PctStrAt;        ///< % character probes
  uint32_t PctLen;          ///< % length guards
  uint32_t MaxLitLen;
};

Problem genSymex(const SymexKnobs &K, uint32_t Seed, uint32_t Index) {
  std::mt19937 Rng(Seed * 7919u + Index);
  Problem P;
  std::vector<VarId> Inputs;
  for (uint32_t I = 0; I < K.NumInputs; ++I) {
    VarId X = P.strVar("in" + std::to_string(I));
    Inputs.push_back(X);
    // Inputs range over the project alphabet (bounded like PyCT's
    // concretization ranges).
    P.assertInRe(X, "(" + std::string(1, K.Chars[0]) + "|" +
                        std::string(1, K.Chars[1]) + "|" +
                        std::string(1, K.Chars[K.Chars.size() - 1]) +
                        "){0,6}");
  }
  auto Input = [&] { return Inputs[Rng() % Inputs.size()]; };

  for (uint32_t B = 0; B < K.NumBranches; ++B) {
    uint32_t Roll = Rng() % 100;
    std::string Lit = randLit(Rng, K.Chars, K.MaxLitLen);
    if (Roll < K.PctPrefixSuffix) {
      bool Pre = Rng() % 2 == 0;
      bool Neg = Rng() % 100 < K.PctDiseq;
      P.assertPred(Pre ? (Neg ? AssertKind::NotPrefixof
                              : AssertKind::Prefixof)
                       : (Neg ? AssertKind::NotSuffixof
                              : AssertKind::Suffixof),
                   seq({StrElem::lit(Lit)}), seq({StrElem::var(Input())}));
    } else if (Roll < K.PctPrefixSuffix + K.PctContains) {
      bool Neg = Rng() % 100 < K.PctDiseq;
      P.assertPred(Neg ? AssertKind::NotContains : AssertKind::Contains,
                   seq({StrElem::lit(Lit)}), seq({StrElem::var(Input())}));
    } else if (Roll < K.PctPrefixSuffix + K.PctContains + K.PctStrAt) {
      bool Neg = Rng() % 100 < K.PctDiseq;
      P.assertStrAt(!Neg, StrElem::lit(Lit.substr(0, 1)),
                    seq({StrElem::var(Input())}),
                    IntTerm::constant(static_cast<int64_t>(Rng() % 3)));
    } else if (Roll < K.PctPrefixSuffix + K.PctContains + K.PctStrAt +
                          K.PctLen) {
      P.assertIntAtom(IntTerm::lenOf(Input()),
                      Rng() % 2 ? lia::Cmp::Le : lia::Cmp::Ge,
                      IntTerm::constant(static_cast<int64_t>(Rng() % 5)));
    } else {
      // Equality test on the path: the if-side is a word equation, the
      // else-side the paper's flagship disequality.
      bool Neg = Rng() % 100 < K.PctDiseq;
      StrSeq Lhs = seq({StrElem::var(Input())});
      if (Rng() % 3 == 0)
        Lhs.push_back(StrElem::var(Input()));
      if (Neg)
        P.assertDiseq(std::move(Lhs), seq({StrElem::lit(Lit)}));
      else
        P.assertWordEq(std::move(Lhs), seq({StrElem::lit(Lit)}));
    }
  }
  return P;
}

/// Footnote 10: one ¬contains or ≠ over concatenations of variables with
/// possible repetition (e.g. xyz ≠ xxy), constrained by simple flat
/// languages (a*, (ab)*, (abc)*).
Problem genPositionHard(uint32_t Seed, uint32_t Index) {
  std::mt19937 Rng(Seed * 104729u + Index);
  Problem P;
  // All variables iterate the same primitive word, so their values
  // commute: every permutation of the same occurrence multiset denotes
  // the same string. The templates below are therefore mostly
  // unsatisfiable — but witnessing that requires position reasoning, not
  // assignment guessing (footnote 10: "a solution cannot be easily found
  // by systematically trying different assignments").
  static const char *FlatLangs[] = {"a*", "(ab)*", "(abc)*", "(ba)*"};
  const char *Lang = FlatLangs[Rng() % 4];
  VarId X = P.strVar("x"), Y = P.strVar("y"), Z = P.strVar("z");
  P.assertInRe(X, Lang);
  P.assertInRe(Y, Lang);
  P.assertInRe(Z, Lang);
  auto S = [&](std::initializer_list<VarId> Vs) {
    StrSeq Out;
    for (VarId V : Vs)
      Out.push_back(StrElem::var(V));
    return Out;
  };
  switch (Rng() % 6) {
  case 0: // commuting powers: xy = yx always — Unsat
    P.assertDiseq(S({X, Y}), S({Y, X}));
    break;
  case 1: // xyz vs permutation — Unsat
    P.assertDiseq(S({X, Y, Z}), S({X, Z, Y}));
    break;
  case 2: // needle is a rotation of equal length — contained — Unsat
    P.assertPred(AssertKind::NotContains, S({X, Y}), S({Y, X}));
    break;
  case 3: // xxy vs xyx — equal under commutation — Unsat
    P.assertPred(AssertKind::NotContains, S({X, X, Y}), S({X, Y, X}));
    break;
  case 4: // Sat but needs an asymmetric witness across two languages
    P = Problem();
    X = P.strVar("x");
    Y = P.strVar("y");
    P.assertInRe(X, "(ab)*");
    P.assertInRe(Y, "(ba)*");
    P.assertDiseq(S({X, Y}), S({Y, X}));
    P.assertIntAtom(IntTerm::lenOf(X) + IntTerm::lenOf(Y), lia::Cmp::Ge,
                    IntTerm::constant(4));
    break;
  default: // strict-prefix style: xy is never a strict... (Unsat)
    P.assertPred(AssertKind::NotSuffixof, S({X, Y}), S({Y, X}));
    break;
  }
  return P;
}

} // namespace

Problem postr::bench::generate(Family F, uint32_t Seed, uint32_t Index) {
  switch (F) {
  case Family::Biopython:
    // Bioinformatics: ACGT-ish alphabets, heavy contains/at probes.
    return genSymex({"acgt", 2, 3, 55, 15, 30, 20, 10, 2}, Seed, Index);
  case Family::Django:
    // Web routing: prefix/suffix dispatch on paths, many else-branches.
    return genSymex({"abc/", 2, 3, 65, 45, 10, 5, 10, 2}, Seed, Index);
  case Family::Thefuck:
    // Command fixing: word equations and disequalities on tokens.
    return genSymex({"gitps", 3, 3, 60, 15, 10, 10, 5, 2}, Seed, Index);
  case Family::PositionHard:
    return genPositionHard(Seed, Index);
  }
  return Problem();
}
