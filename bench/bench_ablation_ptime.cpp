//===- bench/bench_ablation_ptime.cpp - Thm. 7.1 fast-path ablation --------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
// Theorem 7.1: a single ≠ / ¬prefixof / ¬suffixof over regular
// constraints is decidable in PTime by reduction to 0-reachability in a
// one-counter automaton, versus the general NP tag-automaton/LIA route.
// This bench compares the two decision paths on the same single
// disequalities as the variable automata grow.
//
//===----------------------------------------------------------------------===//

#include "counter/OneCounter.h"
#include "regex/Regex.h"
#include "tagaut/MpSolver.h"

#include <benchmark/benchmark.h>

#include <random>

using namespace postr;
using namespace postr::tagaut;

namespace {

struct Instance {
  Alphabet Sigma;
  std::map<VarId, automata::Nfa> Langs;
  std::vector<PosPredicate> Preds;
};

/// Single disequality x ≠ y with random same-length-ish languages whose
/// NFAs have ~`Size` states each.
Instance makeInstance(uint32_t Size, uint32_t Seed) {
  Instance S;
  std::mt19937 Rng(Seed);
  S.Sigma.intern('a');
  S.Sigma.intern('b');
  for (VarId X = 0; X < 2; ++X) {
    automata::Nfa A(2);
    uint32_t N = Size;
    A.addStates(N);
    A.markInitial(0);
    A.markFinal(N - 1);
    for (uint32_t Q = 0; Q + 1 < N; ++Q)
      A.addTransition(Q, Rng() % 2, Q + 1);
    for (uint32_t E = 0; E < N; ++E)
      A.addTransition(Rng() % N, Rng() % 2, Rng() % N);
    S.Langs[X] = A.trim().removeEpsilon();
  }
  S.Preds.push_back({PredKind::Diseq, {0}, {1}, {}});
  return S;
}

void BM_OcaPath(benchmark::State &State) {
  Instance S = makeInstance(static_cast<uint32_t>(State.range(0)), 7);
  for (auto _ : State) {
    Verdict V = counter::decideSinglePredicate(S.Langs, S.Preds[0],
                                               S.Sigma.size());
    benchmark::DoNotOptimize(V);
  }
}

void BM_LiaPath(benchmark::State &State) {
  Instance S = makeInstance(static_cast<uint32_t>(State.range(0)), 7);
  for (auto _ : State) {
    lia::Arena A;
    MpResult R = solveMP(A, S.Langs, S.Preds, S.Sigma.size());
    benchmark::DoNotOptimize(R.V);
  }
}

} // namespace

BENCHMARK(BM_OcaPath)->Arg(4)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(BM_LiaPath)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

BENCHMARK_MAIN();
