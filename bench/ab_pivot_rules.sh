#!/usr/bin/env bash
#===- bench/ab_pivot_rules.sh - Simplex pivot-rule A/B over the workloads -===#
#
# Part of PosTr, a reproduction of "A Uniform Framework for Handling
# Position Constraints in String Solving" (PLDI 2025).
#
# Runs bench_hotpath (whose solve/pipeline/mbqi stages cover the
# bench/workloads generators) once per POSTR_SIMPLEX_PIVOT_RULE value and
# emits a markdown comparison table of stage times and tableau counters
# (including the adaptive machine's rule_switches). The winner goes into
# ROADMAP.md — do not change the default family start rules in
# lia/Simplex.cpp without re-running this.
#
# Usage:
#   bench/ab_pivot_rules.sh [path-to-bench_hotpath] [rules...]
#
# Defaults: ./build/bench/bench_hotpath, the adaptive default plus all
# four concrete rules. Honors POSTR_BENCH_N (default 4 here: the A/B
# wants relative numbers fast; use 12 to reproduce the committed
# BENCH_hotpath.json scale). See docs/BENCH.md for the schema.
#
#===----------------------------------------------------------------------===#

set -u

BIN="${1:-./build/bench/bench_hotpath}"
shift 2>/dev/null || true
RULES=("$@")
[ "${#RULES[@]}" -gt 0 ] || RULES=(adaptive bland markowitz sparsest violated)
N="${POSTR_BENCH_N:-4}"

if [ ! -x "$BIN" ]; then
  echo "error: $BIN not found or not executable (build with POSTR_BUILD_BENCH=ON)" >&2
  exit 1
fi

ABS_BIN="$(cd "$(dirname "$BIN")" && pwd)/$(basename "$BIN")"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

stage_ms() { # file stage -> ms_per_rep
  grep -o "\"name\": \"$2\"[^}]*" "$1" | grep -o '"ms_per_rep": [0-9.]*' \
    | grep -o '[0-9.]*'
}
stage_checksum() {
  grep -o "\"name\": \"$2\"[^}]*" "$1" | grep -o '"checksum": [0-9]*' \
    | grep -o '[0-9]*'
}
counter() { # file object key -> value
  grep -o "\"$2\": {[^}]*" "$1" | grep -o "\"$3\": [0-9]*" | grep -o '[0-9]*'
}

echo "Running bench_hotpath at POSTR_BENCH_N=$N per rule; this solves the"
echo "same fixed-seed workload instances under each leaving-variable rule."
echo

for RULE in "${RULES[@]}"; do
  echo "=== rule: $RULE ===" >&2
  ( cd "$WORK" && POSTR_BENCH_N="$N" POSTR_SIMPLEX_PIVOT_RULE="$RULE" \
      "$ABS_BIN" >/dev/null 2>"$WORK/$RULE.log" )
  mv "$WORK/BENCH_hotpath.json" "$WORK/$RULE.json" 2>/dev/null || {
    echo "error: rule $RULE produced no BENCH_hotpath.json" >&2
    cat "$WORK/$RULE.log" >&2
    exit 1
  }
done

echo "| rule | solve ms/rep | pipeline ms/rep | mbqi ms/rep | pivots | checks | row_fill_in | rule_switches | solve✓ | pipeline✓ |"
echo "|---|---|---|---|---|---|---|---|---|---|"
for RULE in "${RULES[@]}"; do
  J="$WORK/$RULE.json"
  echo "| $RULE | $(stage_ms "$J" solve) | $(stage_ms "$J" pipeline) |" \
       "$(stage_ms "$J" mbqi) | $(counter "$J" simplex_counters pivots) |" \
       "$(counter "$J" simplex_counters checks) |" \
       "$(counter "$J" simplex_counters row_fill_in) |" \
       "$(counter "$J" simplex_counters rule_switches) |" \
       "$(stage_checksum "$J" solve) | $(stage_checksum "$J" pipeline) |"
done
echo
echo "Checksums are verdict sums: rows whose ✓ columns differ solved some"
echo "instance to a different verdict (usually a timeout flip) — treat"
echo "their times as incomparable."
