//===- bench/Common.h - Shared bench harness plumbing ------------*- C++ -*-===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The four evaluated solver configurations (Sec. 8.1) and per-instance
/// timing. Stand-ins for the external tools keep the *profile* the paper
/// describes, on our substrate:
///
///   postr-pos    — the paper's procedure (plays Z3-Noodler-pos)
///   eq-reduction — position constraints reduced to word equations first
///                  (plays Z3-Noodler 1.3)
///   enum-guess   — bounded model guessing (plays cvc5's profile: strong
///                  on Sat, diverges on position-heavy Unsat)
///   eq-lowfuel   — eq-reduction with tight budgets (plays Z3's weaker
///                  position handling)
///
/// POSTR_BENCH_N / POSTR_BENCH_TIMEOUT_MS scale instance counts and the
/// per-instance timeout (defaults keep `for b in build/bench/*` under a
/// few minutes).
///
//===----------------------------------------------------------------------===//

#ifndef POSTR_BENCH_COMMON_H
#define POSTR_BENCH_COMMON_H

#include "solver/Baselines.h"
#include "solver/PositionSolver.h"
#include "workloads/Workloads.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace postr {
namespace bench {

inline uint32_t envU32(const char *Name, uint32_t Default) {
  const char *V = std::getenv(Name);
  return V ? static_cast<uint32_t>(std::atoi(V)) : Default;
}

inline uint32_t instancesPerFamily() { return envU32("POSTR_BENCH_N", 12); }
inline uint32_t positionHardInstances() {
  return envU32("POSTR_BENCH_N_HARD", 12);
}
inline uint64_t perInstanceTimeoutMs() {
  return envU32("POSTR_BENCH_TIMEOUT_MS", 1200);
}

struct SolverDesc {
  const char *Name;
  const char *PlaysRole;
};

inline const std::vector<SolverDesc> &solverList() {
  static const std::vector<SolverDesc> S = {
      {"postr-pos", "Z3-Noodler-pos"},
      {"eq-reduction", "Z3-Noodler 1.3"},
      {"enum-guess", "cvc5 profile"},
      {"eq-lowfuel", "Z3 profile"},
  };
  return S;
}

struct RunOutcome {
  Verdict V = Verdict::Unknown;
  double Ms = 0.0;
  bool TimedOut = false;
};

inline RunOutcome runSolver(const std::string &Name,
                            const strings::Problem &P, uint64_t TimeoutMs) {
  using Clock = std::chrono::steady_clock;
  Clock::time_point T0 = Clock::now();
  Verdict V = Verdict::Unknown;
  if (Name == "postr-pos") {
    solver::SolveOptions O;
    O.TimeoutMs = TimeoutMs;
    O.ValidateModels = false;
    V = solver::solveProblem(P, O).V;
  } else if (Name == "eq-reduction") {
    solver::EqReductionOptions O;
    O.TimeoutMs = TimeoutMs;
    V = solver::solveEqReduction(P, O).V;
  } else if (Name == "enum-guess") {
    solver::EnumOptions O;
    O.TimeoutMs = TimeoutMs;
    O.MaxWordLen = 4; // cvc5-profile guessing: shallow but fast
    V = solver::solveEnum(P, O).V;
  } else if (Name == "eq-lowfuel") {
    solver::EqReductionOptions O;
    O.TimeoutMs = TimeoutMs;
    O.MaxBranches = 32;
    O.Stabilize.Fuel = 500;
    V = solver::solveEqReduction(P, O).V;
  }
  RunOutcome Out;
  Out.V = V;
  Out.Ms = std::chrono::duration<double, std::milli>(Clock::now() - T0)
               .count();
  Out.TimedOut = Out.Ms >= static_cast<double>(TimeoutMs);
  return Out;
}

} // namespace bench
} // namespace postr

#endif // POSTR_BENCH_COMMON_H
