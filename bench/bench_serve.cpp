//===- bench/bench_serve.cpp - Resident-service throughput bench ------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
// Replays a fixed, seeded query log — a mixed-family stream with the
// revisit pattern of a symbolic-execution driver (the same path
// constraint re-queried as exploration deepens) — against an in-process
// `serve::Server`, and reports what the resident service buys over
// one-shot solving: the cross-query cache hit rate and the p50/p99
// served latency, cold vs. warm. Emits machine-readable JSON to stdout
// (and BENCH_serve.json), logs progress to stderr.
//
//   cd build/bench && ./bench_serve
//
// POSTR_BENCH_N scales instances per family; the log itself is
// deterministic in that scale, so runs are comparable.
//
//===----------------------------------------------------------------------===//

#include "Common.h"
#include "serve/Server.h"
#include "smtlib/Printer.h"

#include <algorithm>
#include <chrono>
#include <random>
#include <vector>

using namespace postr;
using bench::Family;

namespace {

double percentile(std::vector<double> V, double P) {
  if (V.empty())
    return 0.0;
  std::sort(V.begin(), V.end());
  size_t Idx = static_cast<size_t>(P * static_cast<double>(V.size() - 1));
  return V[Idx];
}

} // namespace

int main() {
  const uint32_t N = bench::instancesPerFamily();
  const uint64_t TimeoutMs = bench::perInstanceTimeoutMs();
  const Family Families[] = {Family::Biopython, Family::Django,
                             Family::Thefuck, Family::PositionHard};

  // The fixed corpus: N instances per family, printed once (the print is
  // also the cache key, so the replay below exercises the real lookup
  // path end to end).
  std::vector<std::string> Corpus;
  for (Family F : Families)
    for (uint32_t I = 0; I < N; ++I)
      Corpus.push_back(smtlib::printProblem(bench::generate(F, 7, I)));

  // The query log: one cold pass in order, then a seeded revisit stream
  // (2x the corpus) biased toward recently seen queries — the shape a
  // path-exploration driver produces.
  std::vector<uint32_t> Log;
  for (uint32_t I = 0; I < Corpus.size(); ++I)
    Log.push_back(I);
  std::mt19937 Rng(41);
  uint32_t Recent = 0;
  for (uint32_t I = 0; I < 2 * Corpus.size(); ++I) {
    if (Rng() % 100 < 70)
      Recent = Rng() % static_cast<uint32_t>(Corpus.size());
    Log.push_back(Recent);
  }

  serve::ServeOptions O;
  O.Workers = 2;
  O.MaxTimeoutMs = TimeoutMs;
  serve::Server S(O);

  std::vector<double> ColdMs, WarmMs, AllMs;
  uint32_t Served = 0, Unknowns = 0;
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start = Clock::now();
  for (size_t I = 0; I < Log.size(); ++I) {
    serve::Request Q;
    Q.K = serve::Request::Solve;
    Q.Id = "log-" + std::to_string(I);
    Q.Smt2 = Corpus[Log[I]];
    Clock::time_point T0 = Clock::now();
    serve::Response R = S.submit(Q);
    double Ms = std::chrono::duration<double, std::milli>(Clock::now() - T0)
                    .count();
    if (R.S != serve::Response::Ok) {
      std::fprintf(stderr, "[serve] query %zu failed: %s\n", I,
                   R.Message.c_str());
      return 1;
    }
    ++Served;
    if (R.Verdict == "unknown")
      ++Unknowns;
    AllMs.push_back(Ms);
    (R.Cache == "hit" ? WarmMs : ColdMs).push_back(Ms);
    if ((I + 1) % 50 == 0)
      std::fprintf(stderr, "[serve] %zu/%zu queries, %zu hits so far\n", I + 1,
                   Log.size(), WarmMs.size());
  }
  double TotalMs =
      std::chrono::duration<double, std::milli>(Clock::now() - Start).count();

  serve::ResultCacheStats CS = S.cacheStats();
  double HitRate = Served ? static_cast<double>(WarmMs.size()) /
                                static_cast<double>(Served)
                          : 0.0;
  char Buf[1024];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\n"
      "  \"bench\": \"serve\",\n"
      "  \"scale\": %u,\n"
      "  \"timeout_ms\": %llu,\n"
      "  \"queries\": %u,\n"
      "  \"unknowns\": %u,\n"
      "  \"total_ms\": %.2f,\n"
      "  \"hit_rate\": %.4f,\n"
      "  \"p50_ms\": %.4f,\n"
      "  \"p99_ms\": %.4f,\n"
      "  \"cold\": {\"n\": %zu, \"p50_ms\": %.4f, \"p99_ms\": %.4f},\n"
      "  \"warm\": {\"n\": %zu, \"p50_ms\": %.4f, \"p99_ms\": %.4f},\n"
      "  \"cache\": {\"hits\": %llu, \"misses\": %llu, \"evictions\": %llu,"
      " \"entries\": %llu, \"bytes\": %llu}\n"
      "}\n",
      N, static_cast<unsigned long long>(TimeoutMs), Served, Unknowns, TotalMs,
      HitRate, percentile(AllMs, 0.50), percentile(AllMs, 0.99), ColdMs.size(),
      percentile(ColdMs, 0.50), percentile(ColdMs, 0.99), WarmMs.size(),
      percentile(WarmMs, 0.50), percentile(WarmMs, 0.99),
      static_cast<unsigned long long>(CS.Hits),
      static_cast<unsigned long long>(CS.Misses),
      static_cast<unsigned long long>(CS.Evictions),
      static_cast<unsigned long long>(CS.Entries),
      static_cast<unsigned long long>(CS.Bytes));
  std::fputs(Buf, stdout);
  if (FILE *F = std::fopen("BENCH_serve.json", "w")) {
    std::fputs(Buf, F);
    std::fclose(F);
  }
  return 0;
}
