//===- bench/bench_ablation_copies.cpp - Sec. 5.3 encoding ablation --------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
// The discovery behind the paper's NP bound (Sec. 5.3): a system of K
// disequalities needs only 2K+1 copies of A_◦ plus copy tags, where the
// straightforward approach enumerates all (2K)!/2^K mismatch orders.
// This bench (a) measures our polynomial encoding's size and solve time
// as K grows, and (b) prints the order-enumeration copy count the naive
// construction would need — the 2^Θ(K log K) blow-up the framework
// avoids.
//
//===----------------------------------------------------------------------===//

#include "regex/Regex.h"
#include "tagaut/MpSolver.h"

#include <benchmark/benchmark.h>

#include <cinttypes>

using namespace postr;
using namespace postr::tagaut;

namespace {

/// K disequalities over K+1 variables with shared mismatches possible.
struct System {
  Alphabet Sigma;
  std::map<VarId, automata::Nfa> Langs;
  std::vector<PosPredicate> Preds;
};

System makeSystem(uint32_t K) {
  System S;
  static const char *Pool[] = {"a|b", "(ab)*", "a*", "b|ab", "(ba)*"};
  for (VarId X = 0; X <= K; ++X) {
    Result<regex::NodePtr> R = regex::parse(Pool[X % 5]);
    regex::collectAlphabet(**R, S.Sigma);
    S.Langs[X] = regex::compile(**R, S.Sigma);
  }
  for (uint32_t D = 0; D < K; ++D)
    S.Preds.push_back(
        {PredKind::Diseq, {D, D + 1}, {D + 1, D}, {}});
  return S;
}

uint64_t naiveOrderCount(uint32_t K) {
  // (2K)! / 2^K: permutations of K ordered pairs of mismatch marks.
  uint64_t N = 1;
  for (uint32_t I = 2; I <= 2 * K; ++I)
    N *= I;
  return N >> K;
}

void BM_SystemEncodingSolve(benchmark::State &State) {
  uint32_t K = static_cast<uint32_t>(State.range(0));
  System S = makeSystem(K);
  uint32_t Nodes = 0;
  for (auto _ : State) {
    lia::Arena A;
    MpResult R = solveMP(A, S.Langs, S.Preds, S.Sigma.size());
    Nodes = A.numNodes();
    benchmark::DoNotOptimize(R.V);
    if (R.V == Verdict::Unknown)
      State.SkipWithError("unexpected Unknown");
  }
  State.counters["lia_nodes"] = Nodes;
  State.counters["naive_orders"] =
      static_cast<double>(naiveOrderCount(K));
}

void BM_EncodeOnly(benchmark::State &State, bool EmitCopies) {
  uint32_t K = static_cast<uint32_t>(State.range(0));
  System S = makeSystem(K);
  uint32_t Nodes = 0;
  for (auto _ : State) {
    lia::Arena A;
    EncoderOptions Opts;
    Opts.EmitCopies = EmitCopies;
    SystemEncoding Enc =
        encodeSystem(A, S.Langs, S.Preds, S.Sigma.size(), Opts);
    Nodes = A.numNodes();
    benchmark::DoNotOptimize(Enc.Outer);
  }
  State.counters["lia_nodes"] = Nodes;
}

} // namespace

BENCHMARK(BM_SystemEncodingSolve)->Arg(1)->Arg(2)->Arg(3);
BENCHMARK_CAPTURE(BM_EncodeOnly, with_copies, true)->Arg(1)->Arg(2)->Arg(3)->Arg(4);
BENCHMARK_CAPTURE(BM_EncodeOnly, no_copies, false)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

BENCHMARK_MAIN();
