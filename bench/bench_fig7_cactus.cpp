//===- bench/bench_fig7_cactus.cpp - Fig. 7 reproduction -------------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
// Regenerates the Fig. 7 cactus plot: for each solver, the sorted
// per-instance runtimes over all families (solved instances only). The
// paper's claim in shape: postr-pos's curve dominates — it solves the
// most instances, and its hard tail stays below the baselines'.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include <algorithm>

using namespace postr;
using namespace postr::bench;

int main() {
  const std::vector<Family> Families = {Family::Biopython, Family::Django,
                                        Family::Thefuck,
                                        Family::PositionHard};
  uint64_t Timeout = perInstanceTimeoutMs();

  for (const SolverDesc &S : solverList()) {
    std::vector<double> Times;
    uint32_t Unsolved = 0;
    for (Family F : Families) {
      uint32_t N = F == Family::PositionHard ? positionHardInstances()
                                             : instancesPerFamily();
      for (uint32_t I = 0; I < N; ++I) {
        strings::Problem P = generate(F, 1, I);
        RunOutcome R = runSolver(S.Name, P, Timeout);
        if (R.TimedOut || R.V == Verdict::Unknown)
          ++Unsolved;
        else
          Times.push_back(R.Ms);
      }
    }
    std::sort(Times.begin(), Times.end());
    std::printf("solver %s (plays %s): solved %zu, unsolved %u\n", S.Name,
                S.PlaysRole, Times.size(), Unsolved);
    // The cactus series: cumulative index vs runtime, decimated to at
    // most 25 points per solver for terminal output.
    size_t Step = std::max<size_t>(1, Times.size() / 25);
    double Cum = 0;
    for (size_t I = 0; I < Times.size(); ++I) {
      Cum += Times[I];
      if (I % Step == 0 || I + 1 == Times.size())
        std::printf("  solved=%4zu t=%9.2fms cumulative=%10.2fms\n", I + 1,
                    Times[I], Cum);
    }
  }
  return 0;
}
