//===- bench/bench_parikh.cpp - Parikh formula micro-benchmark -------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
// Appendix A substrate check: construction + satisfiability time of the
// Parikh formula PF(A) as the automaton grows, for both connectivity
// disciplines (eager φ_Span vs the lazy CEGAR cuts the MP solver uses).
// Supports the DESIGN.md claim that the lazy discipline keeps the
// boolean abstraction near-conjunctive.
//
//===----------------------------------------------------------------------===//

#include "lia/Solver.h"
#include "tagaut/Parikh.h"

#include <benchmark/benchmark.h>

#include <random>

using namespace postr;
using namespace postr::tagaut;

namespace {

/// Random trimmed NFA-like tag automaton with ~3 transitions per state.
TagAutomaton randomTa(uint32_t NumStates, uint32_t Seed, TagTable &Tags) {
  std::mt19937 Rng(Seed);
  TagAutomaton Ta;
  Ta.addStates(NumStates);
  Ta.markInitial(0);
  Ta.markFinal(NumStates - 1);
  for (uint32_t Q = 0; Q + 1 < NumStates; ++Q) {
    // A spine keeps every state reachable/co-reachable.
    Ta.addTransition({Q, Q + 1, 0, false,
                      {Tags.intern(Tag::symbol(Rng() % 2))}});
  }
  for (uint32_t E = 0; E < 2 * NumStates; ++E) {
    uint32_t From = Rng() % NumStates, To = Rng() % NumStates;
    Ta.addTransition({From, To, 0, false,
                      {Tags.intern(Tag::symbol(Rng() % 2))}});
  }
  return Ta;
}

void BM_ParikhSolve(benchmark::State &State, SpanMode Span) {
  uint32_t NumStates = static_cast<uint32_t>(State.range(0));
  for (auto _ : State) {
    TagTable Tags;
    TagAutomaton Ta = randomTa(NumStates, 42, Tags);
    lia::Arena A;
    ParikhFormula Pf = buildParikhFormula(Ta, A, "p.", Span);
    lia::FormulaId Goal = A.conj(
        {Pf.Formula, A.cmp(Pf.tagTerm(Tags.intern(Tag::symbol(0))),
                           lia::Cmp::Ge, lia::LinTerm(3))});
    lia::ModelRefiner Refine =
        [&](lia::Arena &Ar, const std::vector<int64_t> &Model)
        -> std::optional<lia::FormulaId> {
      if (Span == SpanMode::Eager)
        return std::nullopt;
      std::vector<uint32_t> Gap = connectedComponentGap(Ta, Pf, Model);
      if (Gap.empty())
        return std::nullopt;
      return connectivityCut(Ta, Pf, Ar, Gap);
    };
    lia::QfResult R = lia::solveQF(A, Goal, {}, Refine);
    benchmark::DoNotOptimize(R.V);
    if (R.V != Verdict::Sat)
      State.SkipWithError("expected Sat");
  }
}

} // namespace

BENCHMARK_CAPTURE(BM_ParikhSolve, eager_span, SpanMode::Eager)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64);
BENCHMARK_CAPTURE(BM_ParikhSolve, lazy_cuts, SpanMode::Lazy)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64);

BENCHMARK_MAIN();
