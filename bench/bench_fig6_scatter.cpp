//===- bench/bench_fig6_scatter.cpp - Fig. 6 reproduction ------------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
// Regenerates the data behind the Fig. 6 scatter plots: one CSV row per
// (instance, opposing solver) with postr-pos's runtime against the
// opposing solver's runtime. Plot columns 3–4 log-log to reproduce the
// figure; timeouts appear as the timeout value (the dashed boundary
// lines in the paper's plots).
//
//===----------------------------------------------------------------------===//

#include "Common.h"

using namespace postr;
using namespace postr::bench;

int main() {
  const std::vector<Family> Families = {Family::Biopython, Family::Django,
                                        Family::Thefuck,
                                        Family::PositionHard};
  uint64_t Timeout = perInstanceTimeoutMs();
  std::printf("family,instance,opponent,t_pos_ms,t_other_ms,v_pos,"
              "v_other\n");
  for (Family F : Families) {
    uint32_t N = F == Family::PositionHard ? positionHardInstances()
                                           : instancesPerFamily();
    for (uint32_t I = 0; I < N; ++I) {
      strings::Problem P = generate(F, 1, I);
      RunOutcome Pos = runSolver("postr-pos", P, Timeout);
      for (const SolverDesc &S : solverList()) {
        if (std::string(S.Name) == "postr-pos")
          continue;
        RunOutcome Other = runSolver(S.Name, P, Timeout);
        std::printf("%s,%u,%s,%.2f,%.2f,%s,%s\n", familyName(F), I, S.Name,
                    Pos.TimedOut ? static_cast<double>(Timeout) : Pos.Ms,
                    Other.TimedOut ? static_cast<double>(Timeout)
                                   : Other.Ms,
                    verdictName(Pos.V), verdictName(Other.V));
      }
    }
  }
  return 0;
}
