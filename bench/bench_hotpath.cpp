//===- bench/bench_hotpath.cpp - Automata→Parikh→LIA hot-path bench --------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
// Micro-benchmark of the pipeline stages every query pays for: NFA
// product, determinization, the tag-automaton Parikh/system encoding,
// the DPLL(T) LIA solve, and the end-to-end solver on the Workloads
// generators. Emits machine-readable JSON (BENCH_hotpath.json and
// stdout) so successive perf PRs leave a comparable trajectory.
//
// POSTR_BENCH_N scales repetition counts (not instance shapes, so
// per-rep times stay comparable across runs).
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "automata/Nfa.h"
#include "lia/Solver.h"
#include "tagaut/Encoder.h"
#include "tagaut/Parikh.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

using namespace postr;
using namespace postr::automata;
using Clock = std::chrono::steady_clock;

namespace {

/// Random ε-free NFA with a guaranteed non-empty language: a spine
/// 0 → 1 → ... → N-1 plus random extra edges.
Nfa randomNfa(uint32_t NumStates, uint32_t Sigma, uint32_t ExtraEdges,
              uint32_t Seed) {
  std::mt19937 Rng(Seed);
  Nfa A(Sigma);
  A.addStates(NumStates);
  A.markInitial(0);
  A.markFinal(NumStates - 1);
  for (uint32_t Q = 0; Q + 1 < NumStates; ++Q)
    A.addTransition(Q, Rng() % Sigma, Q + 1);
  for (uint32_t E = 0; E < ExtraEdges; ++E)
    A.addTransition(Rng() % NumStates, Rng() % Sigma, Rng() % NumStates);
  return A;
}

struct StageResult {
  std::string Name;
  uint32_t Reps;
  double WallMs;
  uint64_t Checksum;
};

template <typename Fn>
StageResult runStage(const std::string &Name, uint32_t Reps, Fn &&Body) {
  // One warm-up rep keeps first-touch page faults out of the numbers.
  uint64_t Checksum = Body(0);
  Clock::time_point T0 = Clock::now();
  for (uint32_t R = 0; R < Reps; ++R)
    Checksum += Body(R + 1);
  double Ms =
      std::chrono::duration<double, std::milli>(Clock::now() - T0).count();
  std::fprintf(stderr, "[hotpath] %-13s reps=%-3u %9.2f ms  (%.3f ms/rep)\n",
               Name.c_str(), Reps, Ms, Ms / Reps);
  return {Name, Reps, Ms, Checksum};
}

uint64_t productRep(uint32_t Rep) {
  Nfa A = randomNfa(160, 6, 3 * 160, 1000 + Rep);
  Nfa B = randomNfa(160, 6, 3 * 160, 2000 + Rep);
  Nfa P = intersect(A, B);
  return P.numStates() + P.numTransitions();
}

uint64_t determinizeRep(uint32_t Rep) {
  Nfa A = randomNfa(56, 4, 2 * 56, 3000 + Rep);
  Nfa D = determinize(A);
  return D.numStates() + D.numTransitions();
}

uint64_t parikhEncodeRep(uint32_t Rep) {
  std::map<VarId, Nfa> Langs;
  Langs[0] = randomNfa(10, 4, 12, 4000 + Rep).trim();
  Langs[1] = randomNfa(10, 4, 12, 5000 + Rep).trim();
  Langs[2] = randomNfa(10, 4, 12, 6000 + Rep).trim();
  std::vector<tagaut::PosPredicate> Preds;
  Preds.push_back({tagaut::PredKind::Diseq, {0, 1}, {1, 2}, {}});
  Preds.push_back({tagaut::PredKind::NotPrefix, {0}, {2, 1}, {}});
  lia::Arena A;
  tagaut::SystemEncoding Enc = tagaut::encodeSystem(A, Langs, Preds, 4);
  return A.numNodes() + Enc.Ta.transitions().size();
}

/// Search-core counters accumulated across the solve stage (emitted into
/// the JSON so perf PRs can see *why* a stage moved, not only how much).
lia::QfSearchStats SolveCounters;

uint64_t solveRep(uint32_t Rep) {
  // PF(A) satisfiability on a random tag automaton, eager φ_Span: the
  // pure DPLL(T)+Simplex load with no encoder in the way.
  std::mt19937 Rng(7000 + Rep);
  tagaut::TagTable Tags;
  tagaut::TagAutomaton Ta;
  uint32_t NumStates = 28;
  Ta.addStates(NumStates);
  Ta.markInitial(0);
  Ta.markFinal(NumStates - 1);
  for (uint32_t Q = 0; Q + 1 < NumStates; ++Q)
    Ta.addTransition({Q, Q + 1, 0, false,
                      {Tags.intern(tagaut::Tag::symbol(Rng() % 2))}});
  for (uint32_t E = 0; E < 2 * NumStates; ++E) {
    uint32_t From = static_cast<uint32_t>(Rng() % NumStates);
    uint32_t To = static_cast<uint32_t>(Rng() % NumStates);
    Ta.addTransition({From, To, 0, false,
                      {Tags.intern(tagaut::Tag::symbol(Rng() % 2))}});
  }
  lia::Arena A;
  tagaut::ParikhFormula Pf =
      buildParikhFormula(Ta, A, "b.", tagaut::SpanMode::Eager);
  lia::QfOptions Opts;
  Opts.TimeoutMs = 20000;
  lia::QfResult R = lia::solveQF(A, Pf.Formula, Opts);
  SolveCounters += R.Stats;
  return static_cast<uint64_t>(R.V == Verdict::Sat ? 1 : 0);
}

/// One disjunct-pool rep: the word-equation-heavy thefuck instances fan
/// out into 20–148 decompositions each, which is what the pool
/// parallelizes. Timeouts are generous so verdicts — and therefore the
/// checksum — are identical at every thread count even on an
/// oversubscribed machine.
/// Self-check counters accumulated across the end-to-end stages (the
/// Sat-model validation layer is always on; its activity is emitted as
/// `selfcheck_counters` so the JSON shows the cost is bounded and no
/// model ever failed).
struct {
  uint64_t ModelsValidated = 0, ValidationFailures = 0, ParanoidChecks = 0;
  uint64_t UnsatsCertified = 0, CertificationFailures = 0;
  void operator+=(const solver::SolveStats &S) {
    ModelsValidated += S.ModelsValidated;
    ValidationFailures += S.ValidationFailures;
    ParanoidChecks += S.ParanoidChecks;
    UnsatsCertified += S.UnsatsCertified;
    CertificationFailures += S.CertificationFailures;
  }
} SelfCheckCounters;

uint64_t solveParallelRep(uint32_t, uint32_t Threads) {
  uint64_t Acc = 0;
  for (uint32_t I = 0; I < 4; ++I) {
    strings::Problem P = bench::generate(bench::Family::Thefuck, 131, I);
    solver::SolveOptions O;
    O.TimeoutMs = 20000;
    O.Threads = Threads;
    solver::SolveResult R = solver::solveProblem(P, O);
    SelfCheckCounters += R.Stats;
    Acc += static_cast<uint64_t>(R.V);
  }
  return Acc;
}

uint64_t pipelineRep(uint32_t Rep) {
  // End-to-end solver over the Workloads generators (one instance per
  // family per rep, fixed seeds).
  uint64_t Acc = 0;
  for (bench::Family F : {bench::Family::Django, bench::Family::Thefuck,
                          bench::Family::PositionHard}) {
    strings::Problem P = bench::generate(F, 97, Rep % 8);
    solver::SolveOptions O;
    O.TimeoutMs = 5000;
    solver::SolveResult R = solver::solveProblem(P, O);
    SelfCheckCounters += R.Stats;
    Acc += static_cast<uint64_t>(R.V);
  }
  return Acc;
}

/// MBQI counters accumulated across the mbqi stage (emitted as
/// `mbqi_counters` so the incrementality trajectory — context reuses,
/// lemma pushes — is visible next to the times).
lia::MbqiStats MbqiCounters;

uint64_t mbqiRep(uint32_t) {
  // The two biopython instances whose time is dominated by the MBQI
  // loop itself (a Sat one needing inner-query sweeps and an Unsat one
  // needing outer re-solves) — the flat ¬contains path with real
  // candidate traffic, where PR 4's persistent contexts pay off (the
  // scratch path runs 3.5–4× longer on both). Generous timeout so the
  // verdicts — and therefore the checksum — are host-independent.
  uint64_t Acc = 0;
  for (uint32_t I : {1u, 7u}) {
    strings::Problem P = bench::generate(bench::Family::Biopython, 97, I);
    solver::SolveOptions O;
    O.TimeoutMs = 30000;
    O.Mp.Mbqi.Stats = &MbqiCounters;
    solver::SolveResult R = solver::solveProblem(P, O);
    SelfCheckCounters += R.Stats;
    Acc += static_cast<uint64_t>(R.V);
  }
  return Acc;
}

} // namespace

int main() {
  // Clamp: POSTR_BENCH_N=0 (or garbage, which envU32 parses as 0) would
  // make every per-rep figure meaningless.
  uint32_t N = std::max(1u, bench::envU32("POSTR_BENCH_N", 12));
  std::vector<StageResult> Stages;
  Stages.push_back(runStage("product", N, productRep));
  Stages.push_back(runStage("determinize", N, determinizeRep));
  Stages.push_back(runStage("parikh-encode", N, parikhEncodeRep));
  Stages.push_back(runStage("solve", std::max(1u, N / 4), solveRep));
  Stages.push_back(runStage("pipeline", std::max(1u, N / 4), pipelineRep));
  Stages.push_back(runStage("mbqi", std::max(1u, N / 4), mbqiRep));
  for (uint32_t Threads : {1u, 2u, 4u})
    Stages.push_back(runStage("solve-parallel-" + std::to_string(Threads),
                              std::max(1u, N / 4), [Threads](uint32_t Rep) {
                                return solveParallelRep(Rep, Threads);
                              }));

  std::string Json = "{\n  \"bench\": \"hotpath\",\n  \"scale\": " +
                     std::to_string(N) + ",\n  \"stages\": [\n";
  for (size_t I = 0; I < Stages.size(); ++I) {
    const StageResult &S = Stages[I];
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "    {\"name\": \"%s\", \"reps\": %u, \"wall_ms\": %.3f, "
                  "\"ms_per_rep\": %.4f, \"checksum\": %llu}%s\n",
                  S.Name.c_str(), S.Reps, S.WallMs, S.WallMs / S.Reps,
                  static_cast<unsigned long long>(S.Checksum),
                  I + 1 < Stages.size() ? "," : "");
    Json += Buf;
  }
  char Counters[2048];
  std::snprintf(
      Counters, sizeof(Counters),
      "  ],\n  \"solve_counters\": {\"conflicts\": %llu, "
      "\"propagations\": %llu, \"decisions\": %llu, \"restarts\": %llu, "
      "\"reductions\": %llu, \"clauses_deleted\": %llu, \"pivots\": %llu, "
      "\"checks\": %llu, \"theory_conflicts\": %llu, "
      "\"budget_trips\": %llu, \"degraded_retries\": %llu},\n"
      "  \"simplex_counters\": {\"pivots\": %llu, \"checks\": %llu, "
      "\"row_fill_in\": %llu, \"max_row_nnz\": %llu, "
      "\"den_normalizations\": %llu, \"rule_switches\": %llu, "
      "\"pivots_bland\": %llu, \"pivots_markowitz\": %llu, "
      "\"pivots_sparsest\": %llu, \"pivots_violated\": %llu, "
      "\"fence_recoveries\": %llu},\n"
      "  \"mbqi_counters\": {\"candidates\": %llu, \"outer_solves\": %llu, "
      "\"inner_queries\": %llu, \"inst_lemmas\": %llu, \"blockers\": %llu, "
      "\"context_reuses\": %llu},\n"
      "  \"selfcheck_counters\": {\"models_validated\": %llu, "
      "\"validation_failures\": %llu, \"paranoid_checks\": %llu},\n"
      "  \"proof_counters\": {\"unsats_certified\": %llu, "
      "\"certification_failures\": %llu}\n}\n",
      (unsigned long long)SolveCounters.Conflicts,
      (unsigned long long)SolveCounters.Propagations,
      (unsigned long long)SolveCounters.Decisions,
      (unsigned long long)SolveCounters.Restarts,
      (unsigned long long)SolveCounters.Reductions,
      (unsigned long long)SolveCounters.ClausesDeleted,
      (unsigned long long)SolveCounters.Pivots,
      (unsigned long long)SolveCounters.Checks,
      (unsigned long long)SolveCounters.TheoryConflicts,
      (unsigned long long)SolveCounters.BudgetTrips,
      (unsigned long long)SolveCounters.DegradedRetries,
      (unsigned long long)SolveCounters.Pivots,
      (unsigned long long)SolveCounters.Checks,
      (unsigned long long)SolveCounters.RowFillIn,
      (unsigned long long)SolveCounters.MaxRowNnz,
      (unsigned long long)SolveCounters.DenNormalizations,
      (unsigned long long)SolveCounters.RuleSwitches,
      (unsigned long long)SolveCounters
          .PivotsByRule[static_cast<size_t>(lia::PivotRule::Bland)],
      (unsigned long long)SolveCounters
          .PivotsByRule[static_cast<size_t>(lia::PivotRule::Markowitz)],
      (unsigned long long)SolveCounters
          .PivotsByRule[static_cast<size_t>(lia::PivotRule::SparsestRow)],
      (unsigned long long)SolveCounters
          .PivotsByRule[static_cast<size_t>(lia::PivotRule::MostViolated)],
      (unsigned long long)SolveCounters.FenceRecoveries,
      (unsigned long long)MbqiCounters.Candidates,
      (unsigned long long)MbqiCounters.OuterSolves,
      (unsigned long long)MbqiCounters.InnerQueries,
      (unsigned long long)MbqiCounters.InstLemmas,
      (unsigned long long)MbqiCounters.Blockers,
      (unsigned long long)MbqiCounters.ContextReuses,
      (unsigned long long)SelfCheckCounters.ModelsValidated,
      (unsigned long long)SelfCheckCounters.ValidationFailures,
      (unsigned long long)SelfCheckCounters.ParanoidChecks,
      (unsigned long long)SelfCheckCounters.UnsatsCertified,
      (unsigned long long)SelfCheckCounters.CertificationFailures);
  Json += Counters;

  std::fputs(Json.c_str(), stdout);
  if (FILE *F = std::fopen("BENCH_hotpath.json", "w")) {
    std::fputs(Json.c_str(), F);
    std::fclose(F);
  }
  return 0;
}
