//===- tests/SmtlibTest.cpp - SMT-LIB reader tests ----------------------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzz.h"
#include "smtlib/Printer.h"
#include "smtlib/Reader.h"
#include "solver/PositionSolver.h"

#include <gtest/gtest.h>

using namespace postr;
using strings::AssertKind;
using strings::Problem;

namespace {

TEST(SmtlibTest, DeclarationsAndDiseq) {
  Result<Problem> P = smtlib::parseString(R"(
    (set-logic QF_S)
    (declare-fun x () String)
    (declare-const y String)
    (assert (not (= x y)))
    (check-sat))");
  ASSERT_TRUE(static_cast<bool>(P)) << P.error();
  EXPECT_EQ(P->numStrVars(), 2u);
  ASSERT_EQ(P->assertions().size(), 1u);
  EXPECT_EQ(P->assertions()[0].Kind, AssertKind::Diseq);
}

TEST(SmtlibTest, GetInfoReasonUnknownIsRecorded) {
  Result<Problem> P = smtlib::parseString(R"(
    (declare-fun x () String)
    (assert (not (= x "a")))
    (check-sat)
    (get-info :reason-unknown))");
  ASSERT_TRUE(static_cast<bool>(P)) << P.error();
  EXPECT_TRUE(P->wantsReasonUnknown());
  // Other info queries are accepted and ignored, like set-info.
  Result<Problem> Q = smtlib::parseString(R"(
    (declare-fun x () String)
    (assert (not (= x "a")))
    (check-sat)
    (get-info :version))");
  ASSERT_TRUE(static_cast<bool>(Q)) << Q.error();
  EXPECT_FALSE(Q->wantsReasonUnknown());
}

TEST(SmtlibTest, SetOptionTimeoutIsRecorded) {
  Result<Problem> P = smtlib::parseString(R"(
    (set-option :timeout 2500)
    (set-option :produce-models true)
    (declare-fun x () String)
    (assert (= x "a"))
    (check-sat))");
  ASSERT_TRUE(static_cast<bool>(P)) << P.error();
  EXPECT_EQ(P->timeoutMs(), 2500u);
  // Malformed / negative timeouts are hard errors, not silent defaults.
  EXPECT_FALSE(
      static_cast<bool>(smtlib::parseString("(set-option :timeout x)")));
  EXPECT_FALSE(
      static_cast<bool>(smtlib::parseString("(set-option :timeout -5)")));
  EXPECT_FALSE(
      static_cast<bool>(smtlib::parseString("(set-option :timeout)")));
  // Unrelated options stay accepted-and-ignored.
  EXPECT_TRUE(
      static_cast<bool>(smtlib::parseString("(set-option :random-seed 7)")));
}

TEST(SmtlibTest, ResetDiscardsAllState) {
  Result<Problem> P = smtlib::parseString(R"(
    (set-option :timeout 1000)
    (declare-fun x () String)
    (declare-fun n () Int)
    (assert (= x "a"))
    (get-info :reason-unknown)
    (reset)
    (declare-fun y () String)
    (assert (not (= y "b")))
    (check-sat))");
  ASSERT_TRUE(static_cast<bool>(P)) << P.error();
  // Only the post-reset problem survives: one string var, no int vars,
  // one assertion, options and info requests back to defaults.
  EXPECT_EQ(P->numStrVars(), 1u);
  EXPECT_EQ(P->numIntVars(), 0u);
  ASSERT_EQ(P->assertions().size(), 1u);
  EXPECT_EQ(P->assertions()[0].Kind, AssertKind::Diseq);
  EXPECT_FALSE(P->hasStrVar("x"));
  EXPECT_TRUE(P->hasStrVar("y"));
  EXPECT_EQ(P->timeoutMs(), 0u);
  EXPECT_FALSE(P->wantsReasonUnknown());
  // A variable may be redeclared with a different sort across a reset.
  EXPECT_TRUE(static_cast<bool>(smtlib::parseString(R"(
    (declare-fun x () String)
    (reset)
    (declare-fun x () Int))")));
  // Pre-reset declarations do not leak into post-reset scope.
  EXPECT_FALSE(static_cast<bool>(smtlib::parseString(R"(
    (declare-fun x () String)
    (reset)
    (assert (= x "a")))")));
  EXPECT_FALSE(static_cast<bool>(smtlib::parseString("(reset extra)")));
}

TEST(SmtlibTest, RegexMembership) {
  Result<Problem> P = smtlib::parseString(R"(
    (declare-fun x () String)
    (assert (str.in_re x (re.+ (re.union (str.to_re "ab") (re.range "x" "z"))))))");
  ASSERT_TRUE(static_cast<bool>(P)) << P.error();
  ASSERT_EQ(P->assertions().size(), 1u);
  EXPECT_EQ(P->assertions()[0].Kind, AssertKind::InRe);
  EXPECT_NE(P->assertions()[0].Re, nullptr);
}

TEST(SmtlibTest, PositionPredicates) {
  Result<Problem> P = smtlib::parseString(R"(
    (declare-fun x () String)
    (declare-fun y () String)
    (assert (not (str.prefixof x y)))
    (assert (not (str.suffixof "s" y)))
    (assert (not (str.contains y x)))
    (assert (str.contains y "n")))");
  ASSERT_TRUE(static_cast<bool>(P)) << P.error();
  ASSERT_EQ(P->assertions().size(), 4u);
  EXPECT_EQ(P->assertions()[0].Kind, AssertKind::NotPrefixof);
  EXPECT_EQ(P->assertions()[1].Kind, AssertKind::NotSuffixof);
  // (str.contains haystack needle): needle lands on Lhs.
  EXPECT_EQ(P->assertions()[2].Kind, AssertKind::NotContains);
  EXPECT_TRUE(P->assertions()[2].Lhs[0].IsVar);
  EXPECT_EQ(P->assertions()[3].Kind, AssertKind::Contains);
  EXPECT_FALSE(P->assertions()[3].Lhs[0].IsVar);
}

TEST(SmtlibTest, IntegerAtomsAndLen) {
  Result<Problem> P = smtlib::parseString(R"(
    (declare-fun x () String)
    (declare-fun n () Int)
    (assert (<= (str.len x) 5))
    (assert (not (< n (- (str.len x) 1))))
    (assert (= n (+ (str.len x) 2))))");
  ASSERT_TRUE(static_cast<bool>(P)) << P.error();
  EXPECT_EQ(P->numIntVars(), 1u);
  ASSERT_EQ(P->assertions().size(), 3u);
  for (const auto &A : P->assertions())
    EXPECT_EQ(A.Kind, AssertKind::IntAtom);
  // ¬(n < t) flips to n >= t.
  EXPECT_EQ(P->assertions()[1].Op, lia::Cmp::Ge);
}

TEST(SmtlibTest, StrAtForms) {
  Result<Problem> P = smtlib::parseString(R"(
    (declare-fun x () String)
    (declare-fun h () String)
    (assert (= x (str.at h 2)))
    (assert (not (= (str.at h 0) "a"))))");
  ASSERT_TRUE(static_cast<bool>(P)) << P.error();
  ASSERT_EQ(P->assertions().size(), 2u);
  EXPECT_EQ(P->assertions()[0].Kind, AssertKind::StrAtEq);
  EXPECT_EQ(P->assertions()[1].Kind, AssertKind::StrAtNe);
}

TEST(SmtlibTest, ConcatAndLiterals) {
  Result<Problem> P = smtlib::parseString(R"(
    (declare-fun x () String)
    (assert (= (str.++ "a" x "b") (str.++ x "ab"))))");
  ASSERT_TRUE(static_cast<bool>(P)) << P.error();
  ASSERT_EQ(P->assertions().size(), 1u);
  EXPECT_EQ(P->assertions()[0].Lhs.size(), 3u);
  EXPECT_EQ(P->assertions()[0].Rhs.size(), 2u);
}

TEST(SmtlibTest, ErrorsCarryLocation) {
  Result<Problem> P = smtlib::parseString("(assert (= x y))");
  ASSERT_FALSE(static_cast<bool>(P));
  EXPECT_NE(P.error().find("undeclared"), std::string::npos);
  Result<Problem> Q = smtlib::parseString("(assert (= \"a\" ");
  ASSERT_FALSE(static_cast<bool>(Q));
  Result<Problem> R = smtlib::parseString("(frobnicate)");
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.error().find("unsupported command"), std::string::npos);
}

TEST(SmtlibTest, CommentsAndEscapedQuotes) {
  Result<Problem> P = smtlib::parseString(R"(
    ; a comment
    (declare-fun x () String) ; trailing comment
    (assert (= x "say "" twice")))");
  // "" escapes to a single quote character inside the literal.
  ASSERT_TRUE(static_cast<bool>(P)) << P.error();
  const std::string &Lit = P->assertions()[0].Rhs[0].Lit;
  EXPECT_NE(Lit.find('"'), std::string::npos);
}

TEST(SmtlibTest, EndToEndSolve) {
  Result<Problem> P = smtlib::parseString(R"(
    (declare-fun x () String)
    (declare-fun y () String)
    (assert (str.in_re x (re.* (str.to_re "ab"))))
    (assert (str.in_re y (re.* (str.to_re "ab"))))
    (assert (not (= (str.++ x y) (str.++ y x))))
    (check-sat))");
  ASSERT_TRUE(static_cast<bool>(P)) << P.error();
  solver::SolveOptions Opts;
  Opts.TimeoutMs = 20000;
  EXPECT_EQ(solver::solveProblem(*P, Opts).V, Verdict::Unsat);
}

TEST(PrinterTest, RoundTripIsAPrintFixpoint) {
  // print ∘ parse ∘ print = print over the generator's whole surface:
  // one reparse canonicalizes nothing, so the printed form is stable and
  // every construct the printer emits is one the reader accepts.
  for (uint64_t Seed = 1; Seed <= 50; ++Seed) {
    strings::Problem P = fuzz::generate(Seed);
    std::string Text = smtlib::printProblem(P);
    Result<strings::Problem> Q = smtlib::parseString(Text);
    ASSERT_TRUE(static_cast<bool>(Q)) << "seed " << Seed << ": " << Q.error()
                                      << "\n" << Text;
    EXPECT_EQ(Q->numStrVars(), P.numStrVars()) << "seed " << Seed;
    EXPECT_EQ(Q->assertions().size(), P.assertions().size())
        << "seed " << Seed;
    EXPECT_EQ(smtlib::printProblem(*Q), Text) << "seed " << Seed;
  }
}

TEST(SmtlibTest, MalformedInputCorpus) {
  // Every rejection is structured: no crash, and the diagnostic carries
  // a source location.
  std::string Deep(300, '('), DeepClose(300, ')');
  const std::string Corpus[] = {
      // Nesting beyond the 200-level recursion bound.
      "(assert " + Deep + "x" + DeepClose + ")",
      // Trailing input after (exit).
      "(exit)(check-sat)",
      "(exit) x",
      // Stray closer / unterminated forms.
      "(declare-fun x () String))",
      "(assert (= \"a",
      "(assert (= \"a\" ",
      // Malformed numerals: sign mid-token, overflow-length digits.
      "(declare-fun x () String)(assert (>= (str.len x) 1-2))",
      "(declare-fun x () String)(assert (>= (str.len x) "
      "12345678901234567890123))",
      // re.loop bound violations.
      "(declare-fun x () String)"
      "(assert (str.in_re x (re.loop (str.to_re \"a\") 3 2)))",
      "(declare-fun x () String)"
      "(assert (str.in_re x (re.loop (str.to_re \"a\") 0 99999)))",
      // Cross-sort redeclaration.
      "(declare-fun x () String)(declare-fun x () Int)",
  };
  for (const std::string &Text : Corpus) {
    Result<Problem> P = smtlib::parseString(Text);
    ASSERT_FALSE(static_cast<bool>(P)) << Text;
    EXPECT_NE(P.error().find("line "), std::string::npos)
        << "no location in: " << P.error() << "\nfor input: " << Text;
  }
}

} // namespace
