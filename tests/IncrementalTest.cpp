//===- tests/IncrementalTest.cpp - Incremental solver context tests --------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
// Property tests for the PR-4 incrementality layer: IncrementalContext
// push/pop + solve-under-assumptions against scratch `solveQF` under
// randomized assertion/pop/solve sequences, MBQI incremental-vs-scratch
// (and both against a brute-force expansion of the quantified query),
// and a Sweep/* verdict-equality pass over the bench workload
// generators (compiled in directly so the suite does not depend on
// POSTR_BUILD_BENCH).
//
//===----------------------------------------------------------------------===//

#include "lia/Incremental.h"
#include "lia/Mbqi.h"
#include "solver/PositionSolver.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>

using namespace postr;
using namespace postr::lia;

namespace {

//===----------------------------------------------------------------------===
// Context push/pop + assumptions vs scratch solveQF
//===----------------------------------------------------------------------===

LinTerm randomAtomTerm(std::mt19937 &Rng, const std::vector<Var> &Vars) {
  LinTerm T(static_cast<int64_t>(Rng() % 9) - 4);
  for (Var V : Vars)
    T += LinTerm::variable(V, static_cast<int64_t>(Rng() % 5) - 2);
  return T;
}

FormulaId randomFormula(std::mt19937 &Rng, Arena &A,
                        const std::vector<Var> &Vars) {
  uint32_t NumAtoms = 1 + Rng() % 3;
  std::vector<FormulaId> Parts;
  for (uint32_t I = 0; I < NumAtoms; ++I) {
    Cmp Op = static_cast<Cmp>(Rng() % 6);
    FormulaId Atom = A.atom(randomAtomTerm(Rng, Vars), Op);
    if (Rng() % 3 == 0)
      Atom = A.neg(Atom);
    Parts.push_back(Atom);
  }
  FormulaId F = Parts[0];
  for (size_t I = 1; I < Parts.size(); ++I)
    F = (Rng() % 2) ? A.conj({F, Parts[I]}) : A.disj({F, Parts[I]});
  return F;
}

/// The central property: a context driven through an arbitrary
/// assert/push/pop/solve(assumptions) sequence answers every solve
/// exactly like a scratch `solveQF` over the currently active
/// conjunction, and its Sat models satisfy every active formula.
TEST(IncrementalContextTest, RandomOpsMatchScratchSolveQf) {
  std::mt19937 Rng(20260726);
  for (int Iter = 0; Iter < 40; ++Iter) {
    Arena A;
    std::vector<Var> Vars;
    uint32_t NumVars = 2 + Rng() % 2;
    for (uint32_t V = 0; V < NumVars; ++V)
      Vars.push_back(A.freshVar("v" + std::to_string(V), 0, 4));

    IncrementalContext Ctx(A);
    // Mirror of the context's visible state: one frame per open scope.
    std::vector<std::vector<FormulaId>> Frames{{}};
    uint32_t Solves = 0;

    for (int Op = 0; Op < 40; ++Op) {
      uint32_t Kind = Rng() % 8;
      if (Kind <= 2) {
        FormulaId F = randomFormula(Rng, A, Vars);
        Ctx.assertFormula(F);
        Frames.back().push_back(F);
      } else if (Kind == 3) {
        Ctx.push();
        Frames.emplace_back();
        ASSERT_EQ(Ctx.numScopes(), Frames.size() - 1);
      } else if (Kind == 4 && Frames.size() > 1) {
        Ctx.pop();
        Frames.pop_back();
        ASSERT_EQ(Ctx.numScopes(), Frames.size() - 1);
      } else {
        std::vector<FormulaId> Assumps;
        for (uint32_t I = Rng() % 3; I > 0; --I)
          Assumps.push_back(randomFormula(Rng, A, Vars));
        std::vector<FormulaId> Active;
        for (const std::vector<FormulaId> &Frame : Frames)
          Active.insert(Active.end(), Frame.begin(), Frame.end());
        std::vector<FormulaId> All = Active;
        All.insert(All.end(), Assumps.begin(), Assumps.end());
        QfResult Expected = solveQF(A, A.conj(All));
        QfResult Got = Ctx.solve(Assumps);
        ++Solves;
        ASSERT_EQ(Got.V, Expected.V)
            << "iteration " << Iter << " op " << Op;
        if (Got.V == Verdict::Sat) {
          ASSERT_EQ(Got.Model.size(), A.numVars());
          for (FormulaId F : Active)
            EXPECT_TRUE(A.eval(F, Got.Model))
                << "model violates active assertion; iteration " << Iter;
          for (FormulaId F : Assumps)
            EXPECT_TRUE(A.eval(F, Got.Model))
                << "model violates assumption; iteration " << Iter;
        } else if (Got.V == Verdict::Unsat && !Assumps.empty()) {
          // The blamed assumptions must be real indices, and the
          // context must refute them again when re-assumed alone with
          // the same assertions (core soundness) — unless the active
          // set is unsatisfiable on its own (empty core).
          std::vector<FormulaId> Core;
          for (uint32_t Idx : Ctx.unsatAssumptions()) {
            ASSERT_LT(Idx, Assumps.size());
            Core.push_back(Assumps[Idx]);
          }
          QfResult CoreR = Ctx.solve(Core);
          ++Solves;
          EXPECT_EQ(CoreR.V, Verdict::Unsat)
              << "assumption core is not itself refutable; iteration "
              << Iter;
        }
      }
    }
    EXPECT_GT(Solves, 0u);
  }
}

TEST(IncrementalContextTest, SurvivesUnsatUnderAssumptionsAndPop) {
  Arena A;
  Var X = A.freshVar("x", 0, 100);
  IncrementalContext Ctx(A);
  Ctx.assertFormula(A.cmp(LinTerm::variable(X), Cmp::Ge, LinTerm(10)));

  // Compatible assumption: Sat, model respects both.
  QfResult R1 =
      Ctx.solve({A.cmp(LinTerm::variable(X), Cmp::Le, LinTerm(20))});
  ASSERT_EQ(R1.V, Verdict::Sat);
  EXPECT_GE(R1.Model[X], 10);
  EXPECT_LE(R1.Model[X], 20);

  // Clashing assumption: Unsat under assumptions, core names it, and the
  // context stays usable.
  QfResult R2 =
      Ctx.solve({A.cmp(LinTerm::variable(X), Cmp::Le, LinTerm(5))});
  ASSERT_EQ(R2.V, Verdict::Unsat);
  ASSERT_EQ(Ctx.unsatAssumptions().size(), 1u);
  EXPECT_EQ(Ctx.unsatAssumptions()[0], 0u);

  QfResult R3 = Ctx.solve();
  ASSERT_EQ(R3.V, Verdict::Sat);

  // Scoped assertion: Unsat while the scope is open, Sat again after pop.
  Ctx.push();
  Ctx.assertFormula(A.cmp(LinTerm::variable(X), Cmp::Le, LinTerm(5)));
  EXPECT_EQ(Ctx.solve().V, Verdict::Unsat);
  EXPECT_TRUE(Ctx.unsatAssumptions().empty());
  Ctx.pop();
  EXPECT_EQ(Ctx.solve().V, Verdict::Sat);

  // Permanent contradiction: Unsat with no assumptions to blame.
  Ctx.assertFormula(A.cmp(LinTerm::variable(X), Cmp::Le, LinTerm(5)));
  QfResult R4 = Ctx.solve();
  EXPECT_EQ(R4.V, Verdict::Unsat);
  EXPECT_TRUE(Ctx.unsatAssumptions().empty());
}

TEST(IncrementalContextTest, RefinerRunsInsideContext) {
  // A one-cut CEGAR loop through the context's refinement hook: first
  // model gets cut, the strengthened query stays Sat.
  Arena A;
  Var X = A.freshVar("x", 0, 10);
  IncrementalContext Ctx(A);
  Ctx.assertFormula(A.cmp(LinTerm::variable(X), Cmp::Ge, LinTerm(0)));
  uint32_t Cuts = 0;
  ModelRefiner Refine =
      [&](Arena &Ar,
          const std::vector<int64_t> &Model) -> std::optional<FormulaId> {
    if (Cuts > 0 || Model[X] >= 7)
      return std::nullopt;
    ++Cuts;
    return Ar.cmp(LinTerm::variable(X), Cmp::Ge, LinTerm(7));
  };
  QfResult R = Ctx.solve({}, Refine);
  ASSERT_EQ(R.V, Verdict::Sat);
  EXPECT_GE(R.Model[X], 7);
}

//===----------------------------------------------------------------------===
// MBQI: incremental vs scratch vs brute-force expansion
//===----------------------------------------------------------------------===

/// Brute-force decision of an MbqiQuery whose variables all live in the
/// box [0, Box]: enumerate outer assignments, and for each offset κ the
/// inner existentials. The oracle for both MBQI implementations.
Verdict bruteForceMbqi(Arena &A, const MbqiQuery &Q, int64_t Box,
                       int64_t MaxOffsets) {
  std::vector<int64_t> M(A.numVars(), 0);
  uint32_t NumOuter = static_cast<uint32_t>(Q.OuterVars.size());
  uint64_t OuterTotal = 1;
  for (uint32_t I = 0; I < NumOuter; ++I)
    OuterTotal *= static_cast<uint64_t>(Box + 1);
  for (uint64_t Code = 0; Code < OuterTotal; ++Code) {
    uint64_t C = Code;
    for (uint32_t I = 0; I < NumOuter; ++I) {
      M[Q.OuterVars[I]] = static_cast<int64_t>(C % (Box + 1));
      C /= static_cast<uint64_t>(Box + 1);
    }
    if (!A.eval(Q.Outer, M))
      continue;
    bool AllBlocksHold = true;
    for (const ForallBlock &B : Q.Blocks) {
      int64_t Upper = B.Upper.eval(M);
      if (Upper > MaxOffsets)
        Upper = MaxOffsets;
      for (int64_t K = 0; K <= Upper && AllBlocksHold; ++K) {
        M[B.Kappa] = K;
        bool Witness = false;
        uint64_t InnerTotal = 1;
        for (size_t I = 0; I < B.InnerVars.size(); ++I)
          InnerTotal *= static_cast<uint64_t>(Box + 1);
        for (uint64_t ICode = 0; ICode < InnerTotal && !Witness; ++ICode) {
          uint64_t IC = ICode;
          for (Var V : B.InnerVars) {
            M[V] = static_cast<int64_t>(IC % (Box + 1));
            IC /= static_cast<uint64_t>(Box + 1);
          }
          if (A.eval(B.Inner, M))
            Witness = true;
        }
        if (!Witness)
          AllBlocksHold = false;
      }
      if (!AllBlocksHold)
        break;
    }
    if (AllBlocksHold)
      return Verdict::Sat;
  }
  return Verdict::Unsat;
}

TEST(MbqiIncrementalTest, MatchesScratchAndBruteForce) {
  std::mt19937 Rng(4251);
  const int64_t Box = 3;
  int SatSeen = 0, UnsatSeen = 0;
  for (int Iter = 0; Iter < 50; ++Iter) {
    Arena A;
    MbqiQuery Q;
    uint32_t NumOuter = 1 + Rng() % 2;
    for (uint32_t I = 0; I < NumOuter; ++I)
      Q.OuterVars.push_back(A.freshVar("o" + std::to_string(I), 0, Box));
    Q.Outer = randomFormula(Rng, A, Q.OuterVars);

    uint32_t NumBlocks = 1 + Rng() % 2;
    for (uint32_t BI = 0; BI < NumBlocks; ++BI) {
      ForallBlock B;
      B.Kappa = A.freshVar("k" + std::to_string(BI), 0, Box);
      uint32_t NumInner = 1 + Rng() % 2;
      for (uint32_t I = 0; I < NumInner; ++I)
        B.InnerVars.push_back(
            A.freshVar("i" + std::to_string(BI) + "_" + std::to_string(I),
                       0, Box));
      B.Upper = LinTerm::variable(Q.OuterVars[Rng() % NumOuter]);
      if (Rng() % 2)
        B.Upper = B.Upper - LinTerm(static_cast<int64_t>(Rng() % 2));
      std::vector<Var> Scope = Q.OuterVars;
      Scope.push_back(B.Kappa);
      Scope.insert(Scope.end(), B.InnerVars.begin(), B.InnerVars.end());
      B.Inner = randomFormula(Rng, A, Scope);
      Q.Blocks.push_back(std::move(B));
    }

    Verdict Expected = bruteForceMbqi(A, Q, Box, /*MaxOffsets=*/4096);
    uint32_t QueryVars = A.numVars(); // both solvers mint lemma vars later

    MbqiOptions Inc;
    Inc.Incremental = true;
    std::vector<int64_t> IncModel;
    Verdict VInc = solveMbqi(A, Q, &IncModel, Inc);

    MbqiOptions Scratch;
    Scratch.Incremental = false;
    Verdict VScratch = solveMbqi(A, Q, nullptr, Scratch);

    ASSERT_EQ(VInc, Expected) << "incremental diverged, iteration " << Iter;
    ASSERT_EQ(VScratch, Expected) << "scratch diverged, iteration " << Iter;
    (Expected == Verdict::Sat ? SatSeen : UnsatSeen) += 1;

    if (VInc == Verdict::Sat) {
      // The incremental model must satisfy the outer part and survive
      // the brute-force ∀κ∃inner check for every block.
      ASSERT_GE(IncModel.size(), QueryVars);
      EXPECT_TRUE(A.eval(Q.Outer, IncModel));
      std::vector<int64_t> M = IncModel;
      M.resize(A.numVars(), 0);
      for (const ForallBlock &B : Q.Blocks) {
        int64_t Upper = B.Upper.eval(IncModel);
        for (int64_t K = 0; K <= Upper; ++K) {
          M[B.Kappa] = K;
          bool Witness = false;
          for (int64_t I0 = 0; I0 <= Box && !Witness; ++I0) {
            for (int64_t I1 = 0; I1 <= Box && !Witness; ++I1) {
              if (!B.InnerVars.empty())
                M[B.InnerVars[0]] = I0;
              if (B.InnerVars.size() > 1)
                M[B.InnerVars[1]] = I1;
              if (A.eval(B.Inner, M))
                Witness = true;
            }
          }
          EXPECT_TRUE(Witness)
              << "Sat model refuted at offset " << K << ", iteration "
              << Iter;
        }
      }
    }
  }
  // The generator must exercise both verdicts for the sweep to mean
  // anything.
  EXPECT_GT(SatSeen, 0);
  EXPECT_GT(UnsatSeen, 0);
}

TEST(MbqiIncrementalTest, StatsCountersAdvance) {
  // The UnsatWhenEveryModelRefuted shape: every candidate is refuted at
  // some offset, so candidates, inner queries, instantiation lemmas and
  // context reuses all move.
  Arena A;
  Var X = A.freshVar("x", 1, 3);
  Var K = A.freshVar("kappa");
  MbqiQuery Q;
  Q.Outer = A.trueF();
  Q.OuterVars = {X};
  ForallBlock B;
  B.Kappa = K;
  B.Upper = LinTerm::variable(X);
  B.Inner = A.cmp(LinTerm::variable(K), Cmp::Le, LinTerm(0));
  Q.Blocks.push_back(B);
  MbqiStats St;
  MbqiOptions Opts;
  Opts.Stats = &St;
  EXPECT_EQ(solveMbqi(A, Q, nullptr, Opts), Verdict::Unsat);
  EXPECT_GT(St.Candidates, 0u);
  EXPECT_GT(St.OuterSolves, St.Candidates - 1);
  EXPECT_GT(St.InnerQueries, 0u);
  EXPECT_GT(St.InstLemmas, 0u);
  EXPECT_GT(St.ContextReuses, 0u);
}

//===----------------------------------------------------------------------===
// Workload-generator sweep: incremental vs scratch through the full
// pipeline (slow — registered under the Sweep/* label)
//===----------------------------------------------------------------------===

struct WlParams {
  bench::Family F;
  uint32_t Seed;
  uint32_t Index;
};

class MbqiWorkloadSweep : public ::testing::TestWithParam<WlParams> {};

TEST_P(MbqiWorkloadSweep, IncrementalMatchesScratch) {
  WlParams P = GetParam();
  strings::Problem Prob = bench::generate(P.F, P.Seed, P.Index);

  solver::SolveOptions O;
  O.TimeoutMs = 30000;
  O.ValidateModels = false;

  O.Mp.Mbqi.Incremental = true;
  solver::SolveResult Inc = solver::solveProblem(Prob, O);

  O.Mp.Mbqi.Incremental = false;
  solver::SolveResult Scratch = solver::solveProblem(Prob, O);

  // Both are decision procedures over the same query: whenever both
  // decide, they must agree (resource-outs aside, which differ only in
  // where the budgets land).
  if (Inc.V != Verdict::Unknown && Scratch.V != Verdict::Unknown)
    EXPECT_EQ(Inc.V, Scratch.V)
        << bench::familyName(P.F) << " seed " << P.Seed << " index "
        << P.Index;
  EXPECT_NE(Inc.V, Verdict::Unknown)
      << "incremental path resource-out where the bench expects a verdict";
}

//===----------------------------------------------------------------------===
// Adaptive pivot-rule regression pins over the workload generators
// (workload-level solves — registered under the Sweep/* label like the
// other generator-driven tests, so the default ctest set stays fast and
// CI's unoptimized build can't flake on the deadlines; CI runs them in
// its slow pass)
//===----------------------------------------------------------------------===

struct AdaptivePinParams {
  bench::Family F;
  uint32_t Seed;
  uint32_t Index;
  /// Require a decided (non-Unknown) verdict: set on instances measured
  /// to decide well inside the deadline under Bland, so an
  /// adaptive-rule stall can't hide behind "both timed out".
  bool RequireDecided;
};

class AdaptivePivotRuleSweep
    : public ::testing::TestWithParam<AdaptivePinParams> {};

/// The per-family fence pins: the pivot-rule A/B measured SparsestRow
/// losing 37% end-to-end on the django prefix/suffix-dispatch shapes
/// (and Markowitz stalling the thefuck word equations), which is why
/// word-equation-heavy disjuncts start on Bland and the adaptive
/// machine degrades to Bland on a bad signal. Pin the default
/// (adaptive) configuration to the forced-Bland verdicts — if the
/// classification or the fence regresses, the verdicts (or a blown
/// deadline) catch it.
TEST_P(AdaptivePivotRuleSweep, AdaptiveMatchesBland) {
  // The env override is applied process-wide in the Simplex constructor,
  // so under POSTR_SIMPLEX_PIVOT_RULE both legs below would run the same
  // forced rule: the pin compares a rule against itself and the
  // RequireDecided deadlines may spuriously blow under a slow rule.
  if (std::getenv("POSTR_SIMPLEX_PIVOT_RULE"))
    GTEST_SKIP() << "POSTR_SIMPLEX_PIVOT_RULE forces both legs to one rule";
  AdaptivePinParams P = GetParam();
  strings::Problem Prob = bench::generate(P.F, P.Seed, P.Index);

  solver::SolveOptions O;
  O.TimeoutMs = 30000;
  O.ValidateModels = false;
  // Default: PivotRule::Adaptive with per-disjunct classification.
  solver::SolveResult Adaptive = solver::solveProblem(Prob, O);

  O.Mp.Qf.Pivot.Rule = lia::PivotRule::Bland;
  O.Mp.Mbqi.Qf.Pivot.Rule = lia::PivotRule::Bland;
  solver::SolveResult Bland = solver::solveProblem(Prob, O);

  EXPECT_EQ(Adaptive.V, Bland.V)
      << bench::familyName(P.F) << " seed " << P.Seed << " index "
      << P.Index << ": adaptive rule flipped a verdict vs Bland";
  if (P.RequireDecided)
    EXPECT_NE(Adaptive.V, Verdict::Unknown)
        << bench::familyName(P.F) << " seed " << P.Seed << " index "
        << P.Index << ": adaptive rule resource-out where Bland decides";
}

INSTANTIATE_TEST_SUITE_P(
    // Django indices chosen to decide well inside the deadline under
    // Bland (0–2 Sat in ~1–2 s, 5 Unsat; 3/4/6/7 are ≥10 s-hard under
    // *every* rule and only ever time out).
    Sweep, AdaptivePivotRuleSweep,
    ::testing::Values(
        AdaptivePinParams{bench::Family::Django, 97, 0, true},
        AdaptivePinParams{bench::Family::Django, 97, 1, true},
        AdaptivePinParams{bench::Family::Django, 97, 2, true},
        AdaptivePinParams{bench::Family::Django, 97, 5, true},
        AdaptivePinParams{bench::Family::Thefuck, 131, 0, false},
        AdaptivePinParams{bench::Family::Thefuck, 131, 1, false}),
    [](const ::testing::TestParamInfo<AdaptivePinParams> &Info) {
      std::string Name = bench::familyName(Info.param.F);
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name + "_s" + std::to_string(Info.param.Seed) + "_i" +
             std::to_string(Info.param.Index);
    });

INSTANTIATE_TEST_SUITE_P(
    Sweep, MbqiWorkloadSweep,
    ::testing::Values(WlParams{bench::Family::PositionHard, 97, 0},
                      WlParams{bench::Family::PositionHard, 97, 2},
                      WlParams{bench::Family::PositionHard, 131, 1},
                      WlParams{bench::Family::PositionHard, 131, 3},
                      WlParams{bench::Family::Biopython, 97, 0},
                      WlParams{bench::Family::Biopython, 97, 1},
                      WlParams{bench::Family::Django, 97, 2},
                      WlParams{bench::Family::Thefuck, 131, 0}),
    [](const ::testing::TestParamInfo<WlParams> &Info) {
      std::string Name = bench::familyName(Info.param.F);
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name + "_s" + std::to_string(Info.param.Seed) + "_i" +
             std::to_string(Info.param.Index);
    });

} // namespace
