//===- tests/FuzzTest.cpp - Differential fuzzing subsystem tests ------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
// Deterministic smoke coverage of src/fuzz/: the generator/mutator, the
// differential check against the enumeration oracle, the delta-debugging
// shrinker (driven by the test-only model-tamper hook), byte-level reader
// fuzzing, and fault-injected no-verdict-flip runs. Everything is seeded,
// so a failure here replays byte for byte.
//
//===----------------------------------------------------------------------===//

#include "base/Budget.h"
#include "fuzz/Fuzz.h"
#include "smtlib/Printer.h"
#include "smtlib/Reader.h"
#include "solver/PositionSolver.h"

#include <gtest/gtest.h>

using namespace postr;
using fuzz::DiffOptions;
using fuzz::DiffResult;
using fuzz::FailureKind;
using fuzz::GenOptions;
using strings::Problem;

namespace {

/// splitmix64 combiner — the same per-iteration seed derivation the
/// postr_fuzz driver uses, so a failing index maps to a driver rerun.
uint64_t mix(uint64_t A, uint64_t B) {
  uint64_t X = A + 0x9e3779b97f4a7c15ull * (B + 1);
  X ^= X >> 30;
  X *= 0xbf58476d1ce4e5b9ull;
  X ^= X >> 27;
  X *= 0x94d049bb133111ebull;
  X ^= X >> 31;
  return X;
}

/// Suite-wide bounds: tight enough that 500 iterations stay in test
/// time, loose enough that most verdicts are determinate.
DiffOptions smokeOptions() {
  DiffOptions O;
  O.SolverStepLimit = 1'000;
  O.SolverMaxDisjuncts = 8;
  O.OracleStepLimit = 10'000;
  return O;
}

TEST(FuzzGenTest, GeneratorIsDeterministic) {
  for (uint64_t Seed : {1ull, 42ull, 0xdeadbeefull}) {
    Problem A = fuzz::generate(Seed);
    Problem B = fuzz::generate(Seed);
    EXPECT_EQ(smtlib::printProblem(A), smtlib::printProblem(B));
    Problem M1 = fuzz::mutate(A, Seed + 1);
    Problem M2 = fuzz::mutate(B, Seed + 1);
    EXPECT_EQ(smtlib::printProblem(M1), smtlib::printProblem(M2));
  }
}

TEST(FuzzGenTest, GeneratedProblemsParseBackExactly) {
  for (uint64_t Seed = 1; Seed <= 25; ++Seed) {
    Problem P = fuzz::generate(mix(7, Seed));
    std::string Text = smtlib::printProblem(P);
    Result<Problem> Q = smtlib::parseString(Text);
    ASSERT_TRUE(static_cast<bool>(Q)) << Q.error() << "\n" << Text;
    EXPECT_EQ(smtlib::printProblem(*Q), Text);
  }
}

TEST(FuzzDiffTest, Smoke500IterationsFindNothing) {
  DiffOptions O = smokeOptions();
  uint32_t Determinate = 0;
  for (uint64_t I = 0; I < 500; ++I) {
    uint64_t Seed = mix(1, I);
    Problem P = I % 4 == 3 ? fuzz::mutate(fuzz::generate(Seed), mix(Seed, 1))
                           : fuzz::generate(Seed);
    DiffResult D = fuzz::differentialCheck(P, O);
    EXPECT_EQ(D.Kind, FailureKind::None)
        << "iteration " << I << ": " << fuzz::failureKindName(D.Kind) << " — "
        << D.Detail << "\n" << smtlib::printProblem(P);
    if (D.SolverV != Verdict::Unknown && D.OracleV != Verdict::Unknown)
      ++Determinate;
  }
  // The check only bites when both sides answer; make sure the bounds
  // above do not silently degrade the sweep into skipped comparisons.
  EXPECT_GE(Determinate, 200u);
}

TEST(FuzzShrinkTest, ShrinksTamperedSatToMinimalRepro) {
  // Inject a model-corruption bug through the test-only hook: every Sat
  // turns into a self-check ValidationFailure. The shrinker must converge
  // to a small failing problem, and the .smt2 repro it implies must
  // round-trip through the reader and still fail.
  DiffOptions O = smokeOptions();
  O.TamperModel = [](std::map<VarId, Word> &Words,
                     std::map<strings::IntVarId, int64_t> &) {
    for (auto &[V, W] : Words)
      W.push_back(0);
  };
  auto Fails = [&O](const Problem &P) {
    return fuzz::differentialCheck(P, O).Kind == FailureKind::ValidationFailure;
  };

  // Find a seeded instance the injected bug bites.
  Problem Seeded = fuzz::generate(1);
  bool Found = false;
  for (uint64_t I = 0; I < 64 && !Found; ++I) {
    Seeded = fuzz::generate(mix(3, I));
    Found = Fails(Seeded);
  }
  ASSERT_TRUE(Found) << "no Sat instance in 64 seeds — generator regressed?";

  Problem Small = fuzz::shrink(Seeded, Fails);
  EXPECT_TRUE(Fails(Small));
  EXPECT_LE(fuzz::atomCount(Small), fuzz::atomCount(Seeded));
  EXPECT_LE(fuzz::problemWeight(Small), fuzz::problemWeight(Seeded));
  // A fully shrunk tampered-Sat witness is tiny — one surviving atom.
  EXPECT_EQ(fuzz::atomCount(Small), 1u);

  std::string Repro = smtlib::printProblem(Small);
  Result<Problem> Re = smtlib::parseString(Repro);
  ASSERT_TRUE(static_cast<bool>(Re)) << Re.error() << "\n" << Repro;
  EXPECT_TRUE(Fails(*Re)) << Repro;
}

TEST(FuzzReaderTest, ByteMutationsNeverCrashTheReader) {
  std::vector<std::string> Corpus;
  for (uint64_t Seed = 1; Seed <= 4; ++Seed)
    Corpus.push_back(smtlib::printProblem(fuzz::generate(mix(11, Seed))));
  Corpus.push_back("(declare-fun x () String)\n"
                   "(assert (str.in_re x (re.loop (str.to_re \"ab\") 1 4)))\n"
                   "(check-sat)\n(exit)\n");
  for (uint64_t I = 0; I < 300; ++I) {
    const std::string &Base = Corpus[I % Corpus.size()];
    std::string Mutated = fuzz::mutateBytes(Base, mix(13, I));
    Result<Problem> P = smtlib::parseString(Mutated);
    if (!P)
      continue; // structured rejection is the expected common case
    // Accepted mutants must still print/reparse to a fixpoint.
    std::string Text = smtlib::printProblem(*P);
    Result<Problem> Q = smtlib::parseString(Text);
    ASSERT_TRUE(static_cast<bool>(Q)) << Q.error() << "\n" << Text;
    EXPECT_EQ(smtlib::printProblem(*Q), Text);
  }
}

TEST(FuzzFaultTest, InjectedFaultsNeverFlipVerdicts) {
  DiffOptions O = smokeOptions();
  solver::SolveOptions SO;
  SO.StepLimit = O.SolverStepLimit;
  SO.Stabilize.MaxDisjuncts = O.SolverMaxDisjuncts;
  for (uint64_t I = 0; I < 24; ++I) {
    Problem P = fuzz::generate(mix(17, I));
    solver::SolveResult Clean = solver::solveProblem(P, SO);

    FaultInjector Inj("lia.simplex", 3, mix(19, I));
    FaultInjector::arm(&Inj);
    solver::SolveResult Faulted = solver::solveProblem(P, SO);
    FaultInjector::arm(nullptr);

    if (Clean.V == Verdict::Unknown || Faulted.V == Verdict::Unknown)
      continue; // a trip may only degrade, never flip
    EXPECT_EQ(Faulted.V, Clean.V) << "iteration " << I << "\n"
                                  << smtlib::printProblem(P);
  }
}

} // namespace
