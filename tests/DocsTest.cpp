//===- tests/DocsTest.cpp - Documentation coverage checks ------------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
// Keeps docs/KNOBS.md from rotting: every `POSTR_*` environment variable
// the sources read (and every CMake `POSTR_*` option) must appear there,
// every knob the doc mentions must still exist, and every field of the
// public options structs must be documented as `Struct::Field`. Pure
// file inspection — no solver linkage; POSTR_SOURCE_DIR is injected by
// CMake.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

#ifndef POSTR_SOURCE_DIR
#error "CMake must define POSTR_SOURCE_DIR for DocsTest"
#endif

const fs::path Root = POSTR_SOURCE_DIR;

std::string slurp(const fs::path &P) {
  std::ifstream In(P);
  EXPECT_TRUE(In.good()) << "cannot read " << P;
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

/// All `"POSTR_[A-Z0-9_]+"` string literals under \p Dir (.h/.cpp) — the
/// env-var knob set. Quoting filters out include guards and macro names,
/// which are upper-case but never appear as string literals.
void collectEnvKnobs(const fs::path &Dir, std::set<std::string> &Out) {
  static const std::regex Lit("\"(POSTR_[A-Z0-9_]+)\"");
  for (const fs::directory_entry &E : fs::recursive_directory_iterator(Dir)) {
    if (!E.is_regular_file())
      continue;
    fs::path Ext = E.path().extension();
    if (Ext != ".h" && Ext != ".cpp")
      continue;
    std::string Text = slurp(E.path());
    for (std::sregex_iterator It(Text.begin(), Text.end(), Lit), End;
         It != End; ++It)
      Out.insert((*It)[1].str());
  }
}

/// CMake `option(POSTR_... )` build options — documented alongside the
/// env vars.
void collectCMakeOptions(std::set<std::string> &Out) {
  static const std::regex Opt("option\\(\\s*(POSTR_[A-Z0-9_]+)");
  std::string Text = slurp(Root / "CMakeLists.txt");
  for (std::sregex_iterator It(Text.begin(), Text.end(), Opt), End; It != End;
       ++It)
    Out.insert((*It)[1].str());
}

/// Field names of `struct Name { ... };` in \p Header. Tolerant
/// line-based parse, sufficient for the plain aggregate options structs
/// (no methods, no nested types): a depth-1 line ending in `;` without
/// `(` is a field, whose name is the last identifier before `=`/`;`/`[`.
std::vector<std::string> structFields(const fs::path &Header,
                                      const std::string &Name) {
  std::string Text = slurp(Header);
  size_t Begin = Text.find("struct " + Name + " {");
  EXPECT_NE(Begin, std::string::npos)
      << "struct " << Name << " not found in " << Header;
  std::vector<std::string> Fields;
  if (Begin == std::string::npos)
    return Fields;
  std::istringstream In(Text.substr(Text.find('{', Begin) + 1));
  int Depth = 1;
  std::string Line;
  while (Depth > 0 && std::getline(In, Line)) {
    size_t Comment = Line.find("//");
    if (Comment != std::string::npos)
      Line.resize(Comment);
    for (char C : Line)
      Depth += C == '{' ? 1 : C == '}' ? -1 : 0;
    if (Depth != 1)
      continue;
    size_t End = Line.find_last_not_of(" \t");
    if (End == std::string::npos || Line[End] != ';' ||
        Line.find('(') != std::string::npos)
      continue;
    std::string Decl = Line.substr(0, End);
    if (size_t Eq = Decl.find('='); Eq != std::string::npos)
      Decl.resize(Eq);
    if (size_t Br = Decl.find('['); Br != std::string::npos)
      Decl.resize(Br);
    size_t NameEnd = Decl.find_last_not_of(" \t");
    if (NameEnd == std::string::npos)
      continue;
    size_t NameBegin = NameEnd;
    while (NameBegin > 0 && (std::isalnum(static_cast<unsigned char>(
                                 Decl[NameBegin - 1])) ||
                             Decl[NameBegin - 1] == '_'))
      --NameBegin;
    Fields.push_back(Decl.substr(NameBegin, NameEnd - NameBegin + 1));
  }
  return Fields;
}

TEST(KnobCoverageTest, EveryEnvVarAndBuildOptionIsInKnobsDoc) {
  std::set<std::string> Knobs;
  collectEnvKnobs(Root / "src", Knobs);
  collectEnvKnobs(Root / "bench", Knobs);
  collectEnvKnobs(Root / "examples", Knobs);
  collectEnvKnobs(Root / "tools", Knobs);
  collectCMakeOptions(Knobs);
  ASSERT_FALSE(Knobs.empty()) << "knob scan found nothing — broken scan?";
  std::string Doc = slurp(Root / "docs" / "KNOBS.md");
  for (const std::string &K : Knobs)
    EXPECT_NE(Doc.find(K), std::string::npos)
        << K << " is read by the sources but missing from docs/KNOBS.md";
}

TEST(KnobCoverageTest, KnobsDocMentionsNoDeadKnobs) {
  std::set<std::string> Knobs;
  collectEnvKnobs(Root / "src", Knobs);
  collectEnvKnobs(Root / "bench", Knobs);
  collectEnvKnobs(Root / "examples", Knobs);
  collectEnvKnobs(Root / "tools", Knobs);
  collectCMakeOptions(Knobs);
  std::string Doc = slurp(Root / "docs" / "KNOBS.md");
  static const std::regex Tok("POSTR_[A-Z0-9_]+");
  for (std::sregex_iterator It(Doc.begin(), Doc.end(), Tok), End; It != End;
       ++It)
    EXPECT_TRUE(Knobs.count(It->str()))
        << It->str()
        << " is documented in docs/KNOBS.md but no source reads it";
}

TEST(KnobCoverageTest, EveryOptionsStructFieldIsInKnobsDoc) {
  const std::pair<const char *, const char *> Structs[] = {
      {"src/solver/PositionSolver.h", "SolveOptions"},
      {"src/lia/Solver.h", "QfOptions"},
      {"src/lia/Mbqi.h", "MbqiOptions"},
      {"src/tagaut/MpSolver.h", "MpOptions"},
      {"src/lia/Simplex.h", "PivotPolicy"},
      {"src/tagaut/Encoder.h", "EncoderOptions"},
      {"src/eq/Stabilize.h", "StabilizeOptions"},
  };
  std::string Doc = slurp(Root / "docs" / "KNOBS.md");
  for (const auto &[Header, Name] : Structs) {
    std::vector<std::string> Fields = structFields(Root / Header, Name);
    EXPECT_FALSE(Fields.empty())
        << Name << " parsed to zero fields — parser or header changed?";
    for (const std::string &F : Fields)
      EXPECT_NE(Doc.find(std::string(Name) + "::" + F), std::string::npos)
          << Name << "::" << F << " (" << Header
          << ") is missing from docs/KNOBS.md";
  }
}

} // namespace
