//===- tests/AutomataTest.cpp - NFA algorithm tests -------------------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "automata/Nfa.h"

#include <gtest/gtest.h>

#include <random>

using namespace postr;
using namespace postr::automata;

namespace {

/// Builds an NFA for (ab)* over symbols {0=a, 1=b}.
Nfa abStar() {
  Nfa A(2);
  State Q0 = A.addState(), Q1 = A.addState();
  A.markInitial(Q0);
  A.markFinal(Q0);
  A.addTransition(Q0, 0, Q1);
  A.addTransition(Q1, 1, Q0);
  return A;
}

/// Random NFA generator for property tests.
Nfa randomNfa(std::mt19937 &Rng, uint32_t MaxStates, uint32_t Sigma) {
  std::uniform_int_distribution<uint32_t> StateCount(1, MaxStates);
  uint32_t N = StateCount(Rng);
  Nfa A(Sigma);
  A.addStates(N);
  std::uniform_int_distribution<uint32_t> StateDist(0, N - 1);
  std::uniform_int_distribution<uint32_t> SymDist(0, Sigma - 1);
  std::uniform_int_distribution<uint32_t> EdgeCount(0, 2 * N);
  uint32_t E = EdgeCount(Rng);
  for (uint32_t I = 0; I < E; ++I)
    A.addTransition(StateDist(Rng), SymDist(Rng), StateDist(Rng));
  A.markInitial(StateDist(Rng));
  A.markFinal(StateDist(Rng));
  if (Rng() % 2)
    A.markFinal(StateDist(Rng));
  return A;
}

TEST(NfaTest, EmptyAndEpsilonLanguages) {
  Nfa E = Nfa::emptyLanguage(2);
  EXPECT_TRUE(E.isEmpty());
  EXPECT_FALSE(E.accepts({}));

  Nfa Eps = Nfa::epsilonLanguage(2);
  EXPECT_FALSE(Eps.isEmpty());
  EXPECT_TRUE(Eps.accepts({}));
  EXPECT_FALSE(Eps.accepts({0}));
}

TEST(NfaTest, FromWordAcceptsExactlyThatWord) {
  Word W{0, 1, 1, 0};
  Nfa A = Nfa::fromWord(2, W);
  EXPECT_TRUE(A.accepts(W));
  EXPECT_FALSE(A.accepts({0, 1, 1}));
  EXPECT_FALSE(A.accepts({0, 1, 1, 1}));
  EXPECT_EQ(A.enumerateWords(5).size(), 1u);
}

TEST(NfaTest, AbStarMembership) {
  Nfa A = abStar();
  EXPECT_TRUE(A.accepts({}));
  EXPECT_TRUE(A.accepts({0, 1}));
  EXPECT_TRUE(A.accepts({0, 1, 0, 1}));
  EXPECT_FALSE(A.accepts({0}));
  EXPECT_FALSE(A.accepts({1, 0}));
}

TEST(NfaTest, EnumerateWordsMatchesMembership) {
  Nfa A = abStar();
  std::vector<Word> Words = A.enumerateWords(6);
  EXPECT_EQ(Words.size(), 4u); // eps, ab, abab, ababab
  for (const Word &W : Words)
    EXPECT_TRUE(A.accepts(W));
}

TEST(NfaTest, RemoveEpsilonPreservesLanguage) {
  // a then eps then b.
  Nfa A(2);
  State Q0 = A.addState(), Q1 = A.addState(), Q2 = A.addState(),
        Q3 = A.addState();
  A.markInitial(Q0);
  A.markFinal(Q3);
  A.addTransition(Q0, 0, Q1);
  A.addTransition(Q1, Nfa::Epsilon, Q2);
  A.addTransition(Q2, 1, Q3);
  Nfa B = A.removeEpsilon();
  EXPECT_FALSE(B.hasEpsilon());
  EXPECT_TRUE(B.accepts({0, 1}));
  EXPECT_FALSE(B.accepts({0}));
  EXPECT_FALSE(B.accepts({1}));
}

TEST(NfaTest, IntersectUniteConcatenate) {
  Nfa A = abStar();
  Nfa AllB(2); // b*
  State Q = AllB.addState();
  AllB.markInitial(Q);
  AllB.markFinal(Q);
  AllB.addTransition(Q, 1, Q);

  Nfa I = intersect(A, AllB);
  // (ab)* ∩ b* = {eps}
  EXPECT_TRUE(I.accepts({}));
  EXPECT_EQ(I.enumerateWords(6).size(), 1u);

  Nfa U = unite(A, AllB);
  EXPECT_TRUE(U.accepts({0, 1}));
  EXPECT_TRUE(U.accepts({1, 1}));
  EXPECT_FALSE(U.accepts({0}));

  Nfa C = concatenate(A, AllB).removeEpsilon();
  EXPECT_TRUE(C.accepts({0, 1, 1, 1}));
  EXPECT_TRUE(C.accepts({1}));
  EXPECT_FALSE(C.accepts({0}));
}

TEST(NfaTest, DeterminizeComplementAgreeWithMembership) {
  std::mt19937 Rng(12345);
  for (int Iter = 0; Iter < 50; ++Iter) {
    Nfa A = randomNfa(Rng, 5, 2);
    Nfa D = determinize(A);
    Nfa C = complement(A);
    for (const Word &W : Nfa::universal(2).enumerateWords(5)) {
      EXPECT_EQ(A.accepts(W), D.accepts(W)) << A.debugString();
      EXPECT_EQ(A.accepts(W), !C.accepts(W)) << A.debugString();
    }
  }
}

TEST(NfaTest, ReverseReversesLanguage) {
  Nfa A = Nfa::fromWord(2, {0, 0, 1});
  Nfa R = reverse(A);
  EXPECT_TRUE(R.accepts({1, 0, 0}));
  EXPECT_FALSE(R.accepts({0, 0, 1}));
}

TEST(NfaTest, EquivalentOnSyntacticVariants) {
  Nfa A = abStar();
  // Another (ab)* with redundant states.
  Nfa B(2);
  State Q0 = B.addState(), Q1 = B.addState(), Dead = B.addState();
  B.markInitial(Q0);
  B.markFinal(Q0);
  B.addTransition(Q0, 0, Q1);
  B.addTransition(Q1, 1, Q0);
  B.addTransition(Dead, 0, Dead);
  EXPECT_TRUE(equivalent(A, B));
  Nfa C = Nfa::universal(2);
  EXPECT_FALSE(equivalent(A, C));
}

TEST(NfaTest, ShortestWord) {
  Nfa A = abStar();
  ASSERT_TRUE(A.shortestWordLength().has_value());
  EXPECT_EQ(*A.shortestWordLength(), 0u);

  Nfa B = Nfa::fromWord(2, {0, 1, 0});
  ASSERT_TRUE(B.someWord().has_value());
  EXPECT_EQ(*B.someWord(), (Word{0, 1, 0}));

  EXPECT_FALSE(Nfa::emptyLanguage(2).someWord().has_value());
}

TEST(FlatnessTest, FlatExamplesFromPaper) {
  // (ab)*c((ab)* + (ba)*) is flat (Sec. 2).
  // Build it by hand: loop1 -c-> branch to loop2 or loop3.
  Nfa A(3); // 0=a,1=b,2=c
  State L0 = A.addState(), L1 = A.addState();
  State M0 = A.addState(), M1 = A.addState();
  State N0 = A.addState(), N1 = A.addState();
  A.markInitial(L0);
  A.addTransition(L0, 0, L1);
  A.addTransition(L1, 1, L0);
  A.addTransition(L0, 2, M0);
  A.addTransition(L0, 2, N0);
  A.markFinal(M0);
  A.markFinal(N0);
  A.addTransition(M0, 0, M1);
  A.addTransition(M1, 1, M0);
  A.addTransition(N0, 1, N1);
  A.addTransition(N1, 0, N0);
  EXPECT_TRUE(A.isFlat());
}

TEST(FlatnessTest, NonFlatTwoSelfLoops) {
  // (a+b)* is not flat (Sec. 2 example): two self-loops on one state.
  Nfa A(2);
  State Q = A.addState();
  A.markInitial(Q);
  A.markFinal(Q);
  A.addTransition(Q, 0, Q);
  A.addTransition(Q, 1, Q);
  EXPECT_FALSE(A.isFlat());
}

TEST(FlatnessTest, NestedLoopsNotFlat) {
  Nfa A(2);
  State Q0 = A.addState(), Q1 = A.addState();
  A.markInitial(Q0);
  A.markFinal(Q0);
  A.addTransition(Q0, 0, Q1);
  A.addTransition(Q1, 1, Q0);
  A.addTransition(Q1, 0, Q1); // nested self-loop
  EXPECT_FALSE(A.isFlat());
}

TEST(FlatnessTest, WordAutomatonIsFlat) {
  EXPECT_TRUE(Nfa::fromWord(2, {0, 1, 0}).isFlat());
  EXPECT_TRUE(Nfa::epsilonLanguage(2).isFlat());
}

TEST(FlatnessTest, SingleSelfLoopIsFlat) {
  // a* is flat.
  Nfa A(2);
  State Q = A.addState();
  A.markInitial(Q);
  A.markFinal(Q);
  A.addTransition(Q, 0, Q);
  EXPECT_TRUE(A.isFlat());
}

/// Random NFA that may also carry ε-transitions.
Nfa randomNfaEps(std::mt19937 &Rng, uint32_t MaxStates, uint32_t Sigma,
                 uint32_t EpsEdges) {
  Nfa A = randomNfa(Rng, MaxStates, Sigma);
  uint32_t N = A.numStates();
  std::uniform_int_distribution<uint32_t> StateDist(0, N - 1);
  for (uint32_t I = 0; I < EpsEdges; ++I)
    A.addTransition(StateDist(Rng), Nfa::Epsilon, StateDist(Rng));
  return A;
}

TEST(NfaTest, HasEpsilonFlag) {
  Nfa A(2);
  State Q0 = A.addState(), Q1 = A.addState();
  A.markInitial(Q0);
  A.markFinal(Q1);
  EXPECT_FALSE(A.hasEpsilon());
  A.addTransition(Q0, 0, Q1);
  EXPECT_FALSE(A.hasEpsilon());
  A.addTransition(Q0, Nfa::Epsilon, Q1);
  EXPECT_TRUE(A.hasEpsilon());
  EXPECT_FALSE(A.removeEpsilon().hasEpsilon());
}

// Property: the hashed-interning determinization is language-equivalent
// to the source NFA under the bounded word-enumeration oracle, including
// on inputs with ε-transitions (and the result is a complete DFA).
TEST(NfaTest, DeterminizeMatchesEnumerationOracle) {
  std::mt19937 Rng(777);
  for (int Iter = 0; Iter < 60; ++Iter) {
    Nfa A = randomNfaEps(Rng, 6, 2, Iter % 3);
    Nfa D = determinize(A);
    EXPECT_FALSE(D.hasEpsilon());
    EXPECT_EQ(A.enumerateWords(5), D.enumerateWords(5)) << A.debugString();
    // Completeness: every state has exactly Sigma out-transitions.
    for (State Q = 0; Q < D.numStates(); ++Q) {
      auto [Begin, End] = D.outgoing(Q);
      EXPECT_EQ(static_cast<uint32_t>(End - Begin), D.alphabetSize());
    }
  }
}

// Property: the hashed-interning product accepts exactly the
// intersection of the two languages (brute-force oracle).
TEST(NfaTest, IntersectMatchesEnumerationOracle) {
  std::mt19937 Rng(4242);
  for (int Iter = 0; Iter < 60; ++Iter) {
    Nfa A = randomNfaEps(Rng, 5, 2, Iter % 2).removeEpsilon();
    Nfa B = randomNfaEps(Rng, 5, 2, Iter % 2).removeEpsilon();
    Nfa P = intersect(A, B);
    std::vector<Word> Expect;
    for (const Word &W : A.enumerateWords(5))
      if (B.accepts(W))
        Expect.push_back(W);
    EXPECT_EQ(P.enumerateWords(5), Expect)
        << A.debugString() << " x " << B.debugString();
  }
}

// Property: the SCC-memoized ε-removal preserves the language, also
// through ε-cycles and ε-chains.
TEST(NfaTest, RemoveEpsilonMatchesEnumerationOracle) {
  std::mt19937 Rng(31337);
  for (int Iter = 0; Iter < 60; ++Iter) {
    Nfa A = randomNfaEps(Rng, 6, 2, 1 + Iter % 4);
    Nfa B = A.removeEpsilon();
    EXPECT_FALSE(B.hasEpsilon());
    EXPECT_EQ(A.enumerateWords(5), B.enumerateWords(5)) << A.debugString();
  }
}

TEST(NfaTest, RemoveEpsilonHandlesEpsilonCycle) {
  // Q0 -ε-> Q1 -ε-> Q2 -ε-> Q0 cycle with exits: accepts {a, b}.
  Nfa A(2);
  State Q0 = A.addState(), Q1 = A.addState(), Q2 = A.addState(),
        QF = A.addState();
  A.markInitial(Q0);
  A.markFinal(QF);
  A.addTransition(Q0, Nfa::Epsilon, Q1);
  A.addTransition(Q1, Nfa::Epsilon, Q2);
  A.addTransition(Q2, Nfa::Epsilon, Q0);
  A.addTransition(Q1, 0, QF);
  A.addTransition(Q2, 1, QF);
  Nfa B = A.removeEpsilon();
  EXPECT_TRUE(B.accepts({0}));
  EXPECT_TRUE(B.accepts({1}));
  EXPECT_FALSE(B.accepts({}));
  EXPECT_FALSE(B.accepts({0, 1}));
}

TEST(NfaTest, TrimDropsUnreachableAndDead) {
  Nfa A(2);
  State Q0 = A.addState(), Q1 = A.addState(), Q2 = A.addState(),
        Q3 = A.addState();
  A.markInitial(Q0);
  A.markFinal(Q1);
  A.addTransition(Q0, 0, Q1);
  A.addTransition(Q1, 0, Q2); // dead: Q2 cannot reach final
  A.addTransition(Q3, 1, Q1); // unreachable
  Nfa T = A.trim();
  EXPECT_EQ(T.numStates(), 2u);
  EXPECT_TRUE(T.accepts({0}));
}

} // namespace
