//===- tests/LiaTest.cpp - LIA solver tests ---------------------------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "lia/Mbqi.h"
#include "lia/Sat.h"
#include "lia/Simplex.h"
#include "lia/Solver.h"

#include <gtest/gtest.h>

#include <random>

using namespace postr;
using namespace postr::lia;

namespace {

TEST(RationalTest, Arithmetic) {
  Rational Half(1, 2), Third(1, 3);
  EXPECT_EQ((Half + Third), Rational(5, 6));
  EXPECT_EQ((Half - Third), Rational(1, 6));
  EXPECT_EQ((Half * Third), Rational(1, 6));
  EXPECT_EQ((Half / Third), Rational(3, 2));
  EXPECT_TRUE(Third < Half);
  EXPECT_EQ(Rational(-7, 2).floor(), Rational(-4));
  EXPECT_EQ(Rational(-7, 2).ceil(), Rational(-3));
  EXPECT_EQ(Rational(7, 2).floor(), Rational(3));
  EXPECT_EQ(Rational(7, 2).ceil(), Rational(4));
  EXPECT_EQ(Rational(2, -4), Rational(-1, 2));
  EXPECT_EQ(Rational(4, 2).asInt64(), 2);
}

TEST(LinTermTest, AlgebraAndEval) {
  LinTerm X = LinTerm::variable(0), Y = LinTerm::variable(1);
  LinTerm T = X * 2 + Y - LinTerm(3);
  std::vector<int64_t> Model{5, 1};
  EXPECT_EQ(T.eval(Model), 8);
  LinTerm Zero = T - T;
  EXPECT_TRUE(Zero.isConstant());
  EXPECT_EQ(Zero.constant(), 0);
  EXPECT_EQ(((X + Y) - X).coeffs().size(), 1u);
}

TEST(RationalTest, IntegerFastPathComparisons) {
  // Den==1 comparisons short-circuit; mixed ones still cross-multiply.
  EXPECT_TRUE(Rational(2) < Rational(3));
  EXPECT_TRUE(Rational(-3) <= Rational(-3));
  EXPECT_FALSE(Rational(3) < Rational(3));
  EXPECT_TRUE(Rational(1, 2) < Rational(1));
  EXPECT_TRUE(Rational(1) < Rational(3, 2));
  EXPECT_EQ(Rational(5).floor(), Rational(5));
  EXPECT_EQ(Rational(-5).ceil(), Rational(-5));
}

/// Reference merge with the pre-optimization copy semantics of
/// LinTerm::operator+ (merge-and-reallocate), used as the oracle for the
/// in-place fast paths.
LinTerm refAdd(const LinTerm &A, const LinTerm &B, int64_t Sign = 1) {
  std::map<Var, int64_t> Acc;
  for (auto [V, C] : A.coeffs())
    Acc[V] += C;
  for (auto [V, C] : B.coeffs())
    Acc[V] += Sign * C;
  LinTerm R(A.constant() + Sign * B.constant());
  for (auto [V, C] : Acc)
    if (C != 0)
      R += LinTerm::variable(V, C);
  return R;
}

LinTerm randomTerm(std::mt19937 &Rng, uint32_t MaxVars) {
  std::uniform_int_distribution<int64_t> CoeffDist(-3, 3);
  std::uniform_int_distribution<uint32_t> VarDist(0, MaxVars - 1);
  std::uniform_int_distribution<uint32_t> LenDist(0, MaxVars);
  LinTerm T(CoeffDist(Rng));
  for (uint32_t I = LenDist(Rng); I > 0; --I)
    T += LinTerm::variable(VarDist(Rng), CoeffDist(Rng));
  return T;
}

// Regression: the in-place sorted-merge += / -= match the old
// copy-and-merge semantics, including cancellation to zero.
TEST(LinTermTest, InPlaceAddSubMatchesCopySemantics) {
  std::mt19937 Rng(99);
  for (int Iter = 0; Iter < 500; ++Iter) {
    LinTerm A = randomTerm(Rng, 8), B = randomTerm(Rng, 8);
    LinTerm Sum = A;
    Sum += B;
    EXPECT_EQ(Sum, refAdd(A, B, 1)) << A.str() << " += " << B.str();
    LinTerm Diff = A;
    Diff -= B;
    EXPECT_EQ(Diff, refAdd(A, B, -1)) << A.str() << " -= " << B.str();
    // No zero coefficients may survive.
    for (auto [V, C] : Sum.coeffs())
      EXPECT_NE(C, 0);
    LinTerm Zero = A;
    Zero -= A;
    EXPECT_TRUE(Zero.isConstant());
    EXPECT_EQ(Zero.constant(), 0);
    // Self-aliasing: t += t doubles, t -= t cancels to zero.
    LinTerm Doubled = A;
    Doubled += Doubled;
    EXPECT_EQ(Doubled, refAdd(A, A, 1));
    LinTerm SelfZero = A;
    SelfZero -= SelfZero;
    EXPECT_TRUE(SelfZero.isConstant());
    EXPECT_EQ(SelfZero.constant(), 0);
  }
}

TEST(LinTermTest, AddMonomialMatchesVariableAdd) {
  std::mt19937 Rng(1234);
  for (int Iter = 0; Iter < 200; ++Iter) {
    LinTerm A = randomTerm(Rng, 6);
    LinTerm ViaMonomial = A, ViaAdd = A;
    std::uniform_int_distribution<int64_t> CoeffDist(-2, 2);
    for (Var V = 0; V < 10; ++V) {
      int64_t C = CoeffDist(Rng);
      ViaMonomial.addMonomial(V, C);
      ViaAdd += LinTerm::variable(V, C);
    }
    EXPECT_EQ(ViaMonomial, ViaAdd);
  }
}

TEST(LinTermTest, SumBuilderCollapsesRepeats) {
  // sum() over an unsorted list with repeats equals iterated addition.
  std::vector<Var> Vars{5, 1, 3, 1, 5, 5, 0};
  LinTerm ViaSum = LinTerm::sum(Vars);
  LinTerm ViaAdd;
  for (Var V : Vars)
    ViaAdd += LinTerm::variable(V);
  EXPECT_EQ(ViaSum, ViaAdd);
  EXPECT_EQ(ViaSum.coeffs().size(), 4u);
  EXPECT_TRUE(LinTerm::sum({}).isConstant());
}

TEST(SatTest, TrivialSatUnsat) {
  SatSolver S;
  uint32_t A = S.newVar(), B = S.newVar();
  S.addClause({Lit(A, false), Lit(B, false)});
  S.addClause({Lit(A, true)});
  EXPECT_EQ(S.solve(), SatSolver::Res::Sat);
  EXPECT_FALSE(S.modelValue(A));
  EXPECT_TRUE(S.modelValue(B));
  S.addClause({Lit(B, true)});
  EXPECT_EQ(S.solve(), SatSolver::Res::Unsat);
}

TEST(SatTest, PigeonHole3Into2IsUnsat) {
  // p[i][j]: pigeon i in hole j; 3 pigeons, 2 holes.
  SatSolver S;
  uint32_t P[3][2];
  for (auto &Row : P)
    for (uint32_t &V : Row)
      V = S.newVar();
  for (int I = 0; I < 3; ++I)
    S.addClause({Lit(P[I][0], false), Lit(P[I][1], false)});
  for (int J = 0; J < 2; ++J)
    for (int I1 = 0; I1 < 3; ++I1)
      for (int I2 = I1 + 1; I2 < 3; ++I2)
        S.addClause({Lit(P[I1][J], true), Lit(P[I2][J], true)});
  EXPECT_EQ(S.solve(), SatSolver::Res::Unsat);
}

/// Brute-force SAT check by enumeration, used as a differential oracle.
bool bruteForceSat(uint32_t NumVars,
                   const std::vector<std::vector<Lit>> &Clauses) {
  assert(NumVars <= 20);
  for (uint32_t M = 0; M < (1u << NumVars); ++M) {
    bool All = true;
    for (const std::vector<Lit> &C : Clauses) {
      bool Any = false;
      for (Lit L : C)
        if (((M >> L.var()) & 1) != (L.negated() ? 1u : 0u))
          Any = true;
      if (!Any) {
        All = false;
        break;
      }
    }
    if (All)
      return true;
  }
  return false;
}

/// True when the model stored in \p S satisfies every clause.
bool modelSatisfies(const SatSolver &S,
                    const std::vector<std::vector<Lit>> &Clauses) {
  for (const std::vector<Lit> &C : Clauses) {
    bool Any = false;
    for (Lit L : C)
      if (S.modelValue(L.var()) != L.negated())
        Any = true;
    if (!Any)
      return false;
  }
  return true;
}

TEST(SatTest, RandomDifferentialAgainstBruteForce) {
  std::mt19937 Rng(777);
  for (int Iter = 0; Iter < 200; ++Iter) {
    uint32_t NumVars = 3 + Rng() % 8;
    uint32_t NumClauses = 1 + Rng() % (3 * NumVars);
    std::vector<std::vector<Lit>> Clauses;
    for (uint32_t C = 0; C < NumClauses; ++C) {
      uint32_t Len = 1 + Rng() % 3;
      std::vector<Lit> Clause;
      for (uint32_t K = 0; K < Len; ++K)
        Clause.push_back(Lit(Rng() % NumVars, Rng() % 2));
      Clauses.push_back(std::move(Clause));
    }
    SatSolver S;
    for (uint32_t V = 0; V < NumVars; ++V)
      S.newVar();
    for (const std::vector<Lit> &C : Clauses)
      S.addClause(C);
    bool Expected = bruteForceSat(NumVars, Clauses);
    bool GotSat = S.solve() == SatSolver::Res::Sat;
    EXPECT_EQ(GotSat, Expected) << "iteration " << Iter;
    if (GotSat)
      EXPECT_TRUE(modelSatisfies(S, Clauses)) << "iteration " << Iter;
  }
}

TEST(SatTest, ClauseReductionStressAgainstOracle) {
  // A near-degenerate reduction schedule forces clause-DB reductions on
  // tiny instances, with clauses added incrementally between solve()
  // calls (the DPLL(T) usage pattern). Verdicts and models must still
  // agree with the truth-table oracle.
  std::mt19937 Rng(4711);
  uint64_t TotalDeleted = 0, TotalReductions = 0;
  for (int Iter = 0; Iter < 40; ++Iter) {
    uint32_t NumVars = 10 + Rng() % 5;
    uint32_t NumClauses = 4 * NumVars + Rng() % (2 * NumVars);
    std::vector<std::vector<Lit>> Clauses;
    for (uint32_t C = 0; C < NumClauses; ++C) {
      uint32_t Len = 3 + Rng() % 2;
      std::vector<Lit> Clause;
      for (uint32_t K = 0; K < Len; ++K)
        Clause.push_back(Lit(Rng() % NumVars, Rng() % 2));
      Clauses.push_back(std::move(Clause));
    }
    SatSolver S;
    S.setReduceSchedule(1, 0);
    for (uint32_t V = 0; V < NumVars; ++V)
      S.newVar();
    // First batch, solve, then the rest — learnt clauses and level-0
    // assignments carry over into the incremental continuation.
    size_t Half = Clauses.size() / 2;
    for (size_t C = 0; C < Half; ++C)
      S.addClause(Clauses[C]);
    S.solve();
    for (size_t C = Half; C < Clauses.size(); ++C)
      S.addClause(Clauses[C]);
    bool Expected = bruteForceSat(NumVars, Clauses);
    bool GotSat = S.solve() == SatSolver::Res::Sat;
    EXPECT_EQ(GotSat, Expected) << "iteration " << Iter;
    if (GotSat)
      EXPECT_TRUE(modelSatisfies(S, Clauses)) << "iteration " << Iter;
    TotalDeleted += S.stats().ClausesDeleted;
    TotalReductions += S.stats().Reductions;
  }
  // The schedule above must actually have exercised the reduction path.
  EXPECT_GT(TotalReductions, 0u);
  EXPECT_GT(TotalDeleted, 0u);
}

TEST(SatTest, ReductionNeverDropsReasonClauses) {
  // Pigeonhole 6-into-5 with a reduce-after-every-conflict schedule:
  // reductions constantly fire while asserted literals hold learnt
  // reason clauses. reduceDB must keep locked clauses (a debug assert
  // backs this; in release the Unsat verdict would be corrupted if a
  // reason vanished), and the run must still refute the instance.
  SatSolver S;
  S.setReduceSchedule(1, 0);
  constexpr int NP = 6, NH = 5;
  uint32_t P[NP][NH];
  for (auto &Row : P)
    for (uint32_t &V : Row)
      V = S.newVar();
  for (int I = 0; I < NP; ++I) {
    std::vector<Lit> AtLeastOne;
    for (int J = 0; J < NH; ++J)
      AtLeastOne.push_back(Lit(P[I][J], false));
    S.addClause(AtLeastOne);
  }
  for (int J = 0; J < NH; ++J)
    for (int I1 = 0; I1 < NP; ++I1)
      for (int I2 = I1 + 1; I2 < NP; ++I2)
        S.addClause({Lit(P[I1][J], true), Lit(P[I2][J], true)});
  EXPECT_EQ(S.solve(), SatSolver::Res::Unsat);
  EXPECT_GT(S.stats().Conflicts, 0u);
  EXPECT_GT(S.stats().Reductions, 0u);
  EXPECT_GT(S.stats().ClausesDeleted, 0u);
}

TEST(SatTest, StatsCountersAdvance) {
  // A satisfiable chain with forced conflicts: decisions, propagations
  // and learnt-literal minimization all show up in the counters.
  SatSolver S;
  std::vector<uint32_t> V;
  for (int I = 0; I < 24; ++I)
    V.push_back(S.newVar());
  for (int I = 0; I + 1 < 24; ++I)
    S.addClause({Lit(V[I], true), Lit(V[I + 1], false)});
  S.addClause({Lit(V[0], false), Lit(V[23], false)});
  EXPECT_EQ(S.solve(), SatSolver::Res::Sat);
  const SatStats &St = S.stats();
  EXPECT_GT(St.Decisions, 0u);
  EXPECT_GT(St.Propagations, 0u);
}

TEST(SimplexTest, FeasibleSystem) {
  // x + y <= 4, x - y <= 1, x >= 0, y >= 0.
  Simplex S(2);
  S.setIntrinsicBounds(0, 0, INT64_MAX);
  S.setIntrinsicBounds(1, 0, INT64_MAX);
  uint32_t R1 = S.rowFor(LinTerm::variable(0) + LinTerm::variable(1));
  uint32_t R2 = S.rowFor(LinTerm::variable(0) - LinTerm::variable(1));
  EXPECT_TRUE(S.assertUpper(R1, Rational(4)));
  EXPECT_TRUE(S.assertUpper(R2, Rational(1)));
  EXPECT_TRUE(S.checkRational());
  std::vector<int64_t> Model;
  EXPECT_EQ(S.checkInteger(Model), TheoryResult::Sat);
  EXPECT_LE(Model[0] + Model[1], 4);
  EXPECT_LE(Model[0] - Model[1], 1);
}

TEST(SimplexTest, InfeasibleSystem) {
  // x >= 3 and x <= 2.
  Simplex S(1);
  EXPECT_TRUE(S.assertLower(0, Rational(3)));
  EXPECT_FALSE(S.assertUpper(0, Rational(2)));
}

TEST(SimplexTest, RationalFeasibleIntegerInfeasible) {
  // 2x = 1 (x free): rationally feasible, integrally infeasible.
  Simplex S(1);
  uint32_t R = S.rowFor(LinTerm::variable(0) * 2);
  EXPECT_TRUE(S.assertLower(R, Rational(1)));
  EXPECT_TRUE(S.assertUpper(R, Rational(1)));
  EXPECT_TRUE(S.checkRational());
  std::vector<int64_t> Model;
  EXPECT_EQ(S.checkInteger(Model), TheoryResult::Unsat);
}

TEST(SimplexTest, SnapshotRestore) {
  Simplex S(1);
  uint32_t R = S.rowFor(LinTerm::variable(0) * 3);
  Simplex::Snapshot Snap = S.save();
  EXPECT_TRUE(S.assertLower(R, Rational(6)));
  EXPECT_TRUE(S.assertUpper(R, Rational(6)));
  std::vector<int64_t> Model;
  EXPECT_EQ(S.checkInteger(Model), TheoryResult::Sat);
  EXPECT_EQ(Model[0], 2);
  S.restore(Snap);
  EXPECT_TRUE(S.assertUpper(R, Rational(-3)));
  EXPECT_EQ(S.checkInteger(Model), TheoryResult::Sat);
  EXPECT_LE(Model[0], -1);
}

TEST(SolveQfTest, SimpleConjunction) {
  Arena A;
  Var X = A.freshVar("x"), Y = A.freshVar("y");
  FormulaId F = A.conj({
      A.cmp(LinTerm::variable(X) + LinTerm::variable(Y), Cmp::Eq,
            LinTerm(10)),
      A.cmp(LinTerm::variable(X) - LinTerm::variable(Y), Cmp::Ge,
            LinTerm(4)),
      A.cmp(LinTerm::variable(Y), Cmp::Ge, LinTerm(1)),
  });
  QfResult R = solveQF(A, F);
  ASSERT_EQ(R.V, Verdict::Sat);
  EXPECT_EQ(R.Model[X] + R.Model[Y], 10);
  EXPECT_GE(R.Model[X] - R.Model[Y], 4);
}

TEST(SolveQfTest, UnsatConjunction) {
  Arena A;
  Var X = A.freshVar("x");
  FormulaId F = A.conj({
      A.cmp(LinTerm::variable(X), Cmp::Ge, LinTerm(5)),
      A.cmp(LinTerm::variable(X), Cmp::Le, LinTerm(4)),
  });
  EXPECT_EQ(solveQF(A, F).V, Verdict::Unsat);
}

TEST(SolveQfTest, DisjunctionNeedsTheoryConflicts) {
  Arena A;
  Var X = A.freshVar("x", 0, INT64_MAX);
  // (x <= 2 or x >= 10) and x = 5 -> unsat.
  FormulaId F = A.conj({
      A.disj({A.cmp(LinTerm::variable(X), Cmp::Le, LinTerm(2)),
              A.cmp(LinTerm::variable(X), Cmp::Ge, LinTerm(10))}),
      A.cmp(LinTerm::variable(X), Cmp::Eq, LinTerm(5)),
  });
  EXPECT_EQ(solveQF(A, F).V, Verdict::Unsat);

  // (x <= 2 or x >= 10) and x >= 6 -> sat with x >= 10.
  FormulaId G = A.conj({
      A.disj({A.cmp(LinTerm::variable(X), Cmp::Le, LinTerm(2)),
              A.cmp(LinTerm::variable(X), Cmp::Ge, LinTerm(10))}),
      A.cmp(LinTerm::variable(X), Cmp::Ge, LinTerm(6)),
  });
  QfResult R = solveQF(A, G);
  ASSERT_EQ(R.V, Verdict::Sat);
  EXPECT_GE(R.Model[X], 10);
}

TEST(SolveQfTest, NotEqualLowering) {
  Arena A;
  Var X = A.freshVar("x", 0, 1);
  Var Y = A.freshVar("y", 0, 1);
  FormulaId F = A.conj({
      A.cmp(LinTerm::variable(X), Cmp::Ne, LinTerm::variable(Y)),
      A.cmp(LinTerm::variable(X), Cmp::Le, LinTerm(0)),
  });
  QfResult R = solveQF(A, F);
  ASSERT_EQ(R.V, Verdict::Sat);
  EXPECT_EQ(R.Model[X], 0);
  EXPECT_EQ(R.Model[Y], 1);
}

TEST(SolveQfTest, IntrinsicBoundsRespected) {
  Arena A;
  Var X = A.freshVar("x", 3, 7);
  FormulaId F = A.cmp(LinTerm::variable(X), Cmp::Le, LinTerm(100));
  QfResult R = solveQF(A, F);
  ASSERT_EQ(R.V, Verdict::Sat);
  EXPECT_GE(R.Model[X], 3);
  EXPECT_LE(R.Model[X], 7);
  FormulaId G = A.cmp(LinTerm::variable(X), Cmp::Ge, LinTerm(8));
  EXPECT_EQ(solveQF(A, G).V, Verdict::Unsat);
}

/// Differential test: random small formulae vs brute-force enumeration of
/// variable values in a small box.
TEST(SolveQfTest, RandomDifferentialAgainstEnumeration) {
  std::mt19937 Rng(4242);
  for (int Iter = 0; Iter < 120; ++Iter) {
    Arena A;
    uint32_t NumVars = 2 + Rng() % 2;
    std::vector<Var> Vars;
    for (uint32_t V = 0; V < NumVars; ++V)
      Vars.push_back(A.freshVar("v" + std::to_string(V), 0, 4));

    auto RandTerm = [&] {
      LinTerm T(static_cast<int64_t>(Rng() % 9) - 4);
      for (Var V : Vars)
        T += LinTerm::variable(V, static_cast<int64_t>(Rng() % 5) - 2);
      return T;
    };
    std::vector<FormulaId> Parts;
    uint32_t NumAtoms = 2 + Rng() % 4;
    for (uint32_t I = 0; I < NumAtoms; ++I) {
      Cmp Op = static_cast<Cmp>(Rng() % 6);
      FormulaId Atom = A.atom(RandTerm(), Op);
      if (Rng() % 3 == 0)
        Atom = A.neg(Atom);
      Parts.push_back(Atom);
    }
    // Random and/or tree: pair up parts.
    FormulaId F = Parts[0];
    for (size_t I = 1; I < Parts.size(); ++I)
      F = (Rng() % 2) ? A.conj({F, Parts[I]}) : A.disj({F, Parts[I]});

    // Brute force over the box [0,4]^n.
    bool Expected = false;
    std::vector<int64_t> M(NumVars, 0);
    uint32_t Total = 1;
    for (uint32_t V = 0; V < NumVars; ++V)
      Total *= 5;
    for (uint32_t Code = 0; Code < Total && !Expected; ++Code) {
      uint32_t C = Code;
      for (uint32_t V = 0; V < NumVars; ++V) {
        M[V] = C % 5;
        C /= 5;
      }
      if (A.eval(F, M))
        Expected = true;
    }

    QfResult R = solveQF(A, F);
    ASSERT_NE(R.V, Verdict::Unknown) << "iteration " << Iter;
    EXPECT_EQ(R.V == Verdict::Sat, Expected)
        << "iteration " << Iter << ": " << A.str(F);
  }
}

TEST(MbqiTest, NoBlocksBehavesLikeQf) {
  Arena A;
  Var X = A.freshVar("x", 0, 10);
  MbqiQuery Q;
  Q.Outer = A.cmp(LinTerm::variable(X), Cmp::Ge, LinTerm(3));
  Q.OuterVars = {X};
  std::vector<int64_t> Model;
  EXPECT_EQ(solveMbqi(A, Q, &Model), Verdict::Sat);
  EXPECT_GE(Model[X], 3);
}

TEST(MbqiTest, ForallBlockFiltersModels) {
  // ∃x ∈ [0,4] ∀κ ∈ [0,x] ∃y: y = κ ∧ y ≤ 2 ∧ x ≥ 2.
  // For x ∈ {3,4} the offset κ=3 fails; x=2 works.
  Arena A;
  Var X = A.freshVar("x", 0, 4);
  Var K = A.freshVar("kappa");
  Var Y = A.freshVar("y");
  MbqiQuery Q;
  Q.Outer = A.cmp(LinTerm::variable(X), Cmp::Ge, LinTerm(2));
  Q.OuterVars = {X};
  ForallBlock B;
  B.Kappa = K;
  B.Upper = LinTerm::variable(X);
  B.Inner = A.conj({
      A.cmp(LinTerm::variable(Y), Cmp::Eq, LinTerm::variable(K)),
      A.cmp(LinTerm::variable(Y), Cmp::Le, LinTerm(2)),
  });
  Q.Blocks.push_back(B);
  std::vector<int64_t> Model;
  ASSERT_EQ(solveMbqi(A, Q, &Model), Verdict::Sat);
  EXPECT_EQ(Model[X], 2);
}

TEST(MbqiTest, UnsatWhenEveryModelRefuted) {
  // ∃x ∈ [1,3] ∀κ ∈ [0,x] : κ <= 0 — fails for every x >= 1.
  Arena A;
  Var X = A.freshVar("x", 1, 3);
  Var K = A.freshVar("kappa");
  MbqiQuery Q;
  Q.Outer = A.trueF();
  Q.OuterVars = {X};
  ForallBlock B;
  B.Kappa = K;
  B.Upper = LinTerm::variable(X);
  B.Inner = A.cmp(LinTerm::variable(K), Cmp::Le, LinTerm(0));
  Q.Blocks.push_back(B);
  EXPECT_EQ(solveMbqi(A, Q), Verdict::Unsat);
}

TEST(ArenaTest, EvalAndLowerAgree) {
  std::mt19937 Rng(99);
  for (int Iter = 0; Iter < 100; ++Iter) {
    Arena A;
    Var X = A.freshVar("x"), Y = A.freshVar("y");
    LinTerm T = LinTerm::variable(X, static_cast<int64_t>(Rng() % 5) - 2) +
                LinTerm::variable(Y, static_cast<int64_t>(Rng() % 5) - 2) +
                LinTerm(static_cast<int64_t>(Rng() % 7) - 3);
    Cmp Op = static_cast<Cmp>(Rng() % 6);
    FormulaId F = A.atom(T, Op);
    if (Rng() % 2)
      F = A.neg(F);
    FormulaId L = A.lower(F);
    for (int64_t XV = -2; XV <= 2; ++XV)
      for (int64_t YV = -2; YV <= 2; ++YV) {
        std::vector<int64_t> M{XV, YV};
        EXPECT_EQ(A.eval(F, M), A.eval(L, M))
            << A.str(F) << " vs " << A.str(L);
      }
  }
}

} // namespace
