//===- tests/LiaTest.cpp - LIA solver tests ---------------------------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "lia/Mbqi.h"
#include "lia/Sat.h"
#include "lia/Simplex.h"
#include "lia/Solver.h"

#include <gtest/gtest.h>

#include <random>

using namespace postr;
using namespace postr::lia;

namespace {

TEST(RationalTest, Arithmetic) {
  Rational Half(1, 2), Third(1, 3);
  EXPECT_EQ((Half + Third), Rational(5, 6));
  EXPECT_EQ((Half - Third), Rational(1, 6));
  EXPECT_EQ((Half * Third), Rational(1, 6));
  EXPECT_EQ((Half / Third), Rational(3, 2));
  EXPECT_TRUE(Third < Half);
  EXPECT_EQ(Rational(-7, 2).floor(), Rational(-4));
  EXPECT_EQ(Rational(-7, 2).ceil(), Rational(-3));
  EXPECT_EQ(Rational(7, 2).floor(), Rational(3));
  EXPECT_EQ(Rational(7, 2).ceil(), Rational(4));
  EXPECT_EQ(Rational(2, -4), Rational(-1, 2));
  EXPECT_EQ(Rational(4, 2).asInt64(), 2);
}

TEST(LinTermTest, AlgebraAndEval) {
  LinTerm X = LinTerm::variable(0), Y = LinTerm::variable(1);
  LinTerm T = X * 2 + Y - LinTerm(3);
  std::vector<int64_t> Model{5, 1};
  EXPECT_EQ(T.eval(Model), 8);
  LinTerm Zero = T - T;
  EXPECT_TRUE(Zero.isConstant());
  EXPECT_EQ(Zero.constant(), 0);
  EXPECT_EQ(((X + Y) - X).coeffs().size(), 1u);
}

TEST(RationalTest, IntegerFastPathComparisons) {
  // Den==1 comparisons short-circuit; mixed ones still cross-multiply.
  EXPECT_TRUE(Rational(2) < Rational(3));
  EXPECT_TRUE(Rational(-3) <= Rational(-3));
  EXPECT_FALSE(Rational(3) < Rational(3));
  EXPECT_TRUE(Rational(1, 2) < Rational(1));
  EXPECT_TRUE(Rational(1) < Rational(3, 2));
  EXPECT_EQ(Rational(5).floor(), Rational(5));
  EXPECT_EQ(Rational(-5).ceil(), Rational(-5));
}

/// Reference merge with the pre-optimization copy semantics of
/// LinTerm::operator+ (merge-and-reallocate), used as the oracle for the
/// in-place fast paths.
LinTerm refAdd(const LinTerm &A, const LinTerm &B, int64_t Sign = 1) {
  std::map<Var, int64_t> Acc;
  for (auto [V, C] : A.coeffs())
    Acc[V] += C;
  for (auto [V, C] : B.coeffs())
    Acc[V] += Sign * C;
  LinTerm R(A.constant() + Sign * B.constant());
  for (auto [V, C] : Acc)
    if (C != 0)
      R += LinTerm::variable(V, C);
  return R;
}

LinTerm randomTerm(std::mt19937 &Rng, uint32_t MaxVars) {
  std::uniform_int_distribution<int64_t> CoeffDist(-3, 3);
  std::uniform_int_distribution<uint32_t> VarDist(0, MaxVars - 1);
  std::uniform_int_distribution<uint32_t> LenDist(0, MaxVars);
  LinTerm T(CoeffDist(Rng));
  for (uint32_t I = LenDist(Rng); I > 0; --I)
    T += LinTerm::variable(VarDist(Rng), CoeffDist(Rng));
  return T;
}

// Regression: the in-place sorted-merge += / -= match the old
// copy-and-merge semantics, including cancellation to zero.
TEST(LinTermTest, InPlaceAddSubMatchesCopySemantics) {
  std::mt19937 Rng(99);
  for (int Iter = 0; Iter < 500; ++Iter) {
    LinTerm A = randomTerm(Rng, 8), B = randomTerm(Rng, 8);
    LinTerm Sum = A;
    Sum += B;
    EXPECT_EQ(Sum, refAdd(A, B, 1)) << A.str() << " += " << B.str();
    LinTerm Diff = A;
    Diff -= B;
    EXPECT_EQ(Diff, refAdd(A, B, -1)) << A.str() << " -= " << B.str();
    // No zero coefficients may survive.
    for (auto [V, C] : Sum.coeffs())
      EXPECT_NE(C, 0);
    LinTerm Zero = A;
    Zero -= A;
    EXPECT_TRUE(Zero.isConstant());
    EXPECT_EQ(Zero.constant(), 0);
    // Self-aliasing: t += t doubles, t -= t cancels to zero.
    LinTerm Doubled = A;
    Doubled += Doubled;
    EXPECT_EQ(Doubled, refAdd(A, A, 1));
    LinTerm SelfZero = A;
    SelfZero -= SelfZero;
    EXPECT_TRUE(SelfZero.isConstant());
    EXPECT_EQ(SelfZero.constant(), 0);
  }
}

TEST(LinTermTest, AddMonomialMatchesVariableAdd) {
  std::mt19937 Rng(1234);
  for (int Iter = 0; Iter < 200; ++Iter) {
    LinTerm A = randomTerm(Rng, 6);
    LinTerm ViaMonomial = A, ViaAdd = A;
    std::uniform_int_distribution<int64_t> CoeffDist(-2, 2);
    for (Var V = 0; V < 10; ++V) {
      int64_t C = CoeffDist(Rng);
      ViaMonomial.addMonomial(V, C);
      ViaAdd += LinTerm::variable(V, C);
    }
    EXPECT_EQ(ViaMonomial, ViaAdd);
  }
}

TEST(LinTermTest, SumBuilderCollapsesRepeats) {
  // sum() over an unsorted list with repeats equals iterated addition.
  std::vector<Var> Vars{5, 1, 3, 1, 5, 5, 0};
  LinTerm ViaSum = LinTerm::sum(Vars);
  LinTerm ViaAdd;
  for (Var V : Vars)
    ViaAdd += LinTerm::variable(V);
  EXPECT_EQ(ViaSum, ViaAdd);
  EXPECT_EQ(ViaSum.coeffs().size(), 4u);
  EXPECT_TRUE(LinTerm::sum({}).isConstant());
}

TEST(SatTest, TrivialSatUnsat) {
  SatSolver S;
  uint32_t A = S.newVar(), B = S.newVar();
  S.addClause({Lit(A, false), Lit(B, false)});
  S.addClause({Lit(A, true)});
  EXPECT_EQ(S.solve(), SatSolver::Res::Sat);
  EXPECT_FALSE(S.modelValue(A));
  EXPECT_TRUE(S.modelValue(B));
  S.addClause({Lit(B, true)});
  EXPECT_EQ(S.solve(), SatSolver::Res::Unsat);
}

TEST(SatTest, PigeonHole3Into2IsUnsat) {
  // p[i][j]: pigeon i in hole j; 3 pigeons, 2 holes.
  SatSolver S;
  uint32_t P[3][2];
  for (auto &Row : P)
    for (uint32_t &V : Row)
      V = S.newVar();
  for (int I = 0; I < 3; ++I)
    S.addClause({Lit(P[I][0], false), Lit(P[I][1], false)});
  for (int J = 0; J < 2; ++J)
    for (int I1 = 0; I1 < 3; ++I1)
      for (int I2 = I1 + 1; I2 < 3; ++I2)
        S.addClause({Lit(P[I1][J], true), Lit(P[I2][J], true)});
  EXPECT_EQ(S.solve(), SatSolver::Res::Unsat);
}

/// Brute-force SAT check by enumeration, used as a differential oracle.
bool bruteForceSat(uint32_t NumVars,
                   const std::vector<std::vector<Lit>> &Clauses) {
  assert(NumVars <= 20);
  for (uint32_t M = 0; M < (1u << NumVars); ++M) {
    bool All = true;
    for (const std::vector<Lit> &C : Clauses) {
      bool Any = false;
      for (Lit L : C)
        if (((M >> L.var()) & 1) != (L.negated() ? 1u : 0u))
          Any = true;
      if (!Any) {
        All = false;
        break;
      }
    }
    if (All)
      return true;
  }
  return false;
}

/// True when the model stored in \p S satisfies every clause.
bool modelSatisfies(const SatSolver &S,
                    const std::vector<std::vector<Lit>> &Clauses) {
  for (const std::vector<Lit> &C : Clauses) {
    bool Any = false;
    for (Lit L : C)
      if (S.modelValue(L.var()) != L.negated())
        Any = true;
    if (!Any)
      return false;
  }
  return true;
}

TEST(SatTest, RandomDifferentialAgainstBruteForce) {
  std::mt19937 Rng(777);
  for (int Iter = 0; Iter < 200; ++Iter) {
    uint32_t NumVars = 3 + Rng() % 8;
    uint32_t NumClauses = 1 + Rng() % (3 * NumVars);
    std::vector<std::vector<Lit>> Clauses;
    for (uint32_t C = 0; C < NumClauses; ++C) {
      uint32_t Len = 1 + Rng() % 3;
      std::vector<Lit> Clause;
      for (uint32_t K = 0; K < Len; ++K)
        Clause.push_back(Lit(Rng() % NumVars, Rng() % 2));
      Clauses.push_back(std::move(Clause));
    }
    SatSolver S;
    for (uint32_t V = 0; V < NumVars; ++V)
      S.newVar();
    for (const std::vector<Lit> &C : Clauses)
      S.addClause(C);
    bool Expected = bruteForceSat(NumVars, Clauses);
    bool GotSat = S.solve() == SatSolver::Res::Sat;
    EXPECT_EQ(GotSat, Expected) << "iteration " << Iter;
    if (GotSat)
      EXPECT_TRUE(modelSatisfies(S, Clauses)) << "iteration " << Iter;
  }
}

TEST(SatTest, ClauseReductionStressAgainstOracle) {
  // A near-degenerate reduction schedule forces clause-DB reductions on
  // tiny instances, with clauses added incrementally between solve()
  // calls (the DPLL(T) usage pattern). Verdicts and models must still
  // agree with the truth-table oracle.
  std::mt19937 Rng(4711);
  uint64_t TotalDeleted = 0, TotalReductions = 0;
  for (int Iter = 0; Iter < 40; ++Iter) {
    uint32_t NumVars = 10 + Rng() % 5;
    uint32_t NumClauses = 4 * NumVars + Rng() % (2 * NumVars);
    std::vector<std::vector<Lit>> Clauses;
    for (uint32_t C = 0; C < NumClauses; ++C) {
      uint32_t Len = 3 + Rng() % 2;
      std::vector<Lit> Clause;
      for (uint32_t K = 0; K < Len; ++K)
        Clause.push_back(Lit(Rng() % NumVars, Rng() % 2));
      Clauses.push_back(std::move(Clause));
    }
    SatSolver S;
    S.setReduceSchedule(1, 0);
    for (uint32_t V = 0; V < NumVars; ++V)
      S.newVar();
    // First batch, solve, then the rest — learnt clauses and level-0
    // assignments carry over into the incremental continuation.
    size_t Half = Clauses.size() / 2;
    for (size_t C = 0; C < Half; ++C)
      S.addClause(Clauses[C]);
    S.solve();
    for (size_t C = Half; C < Clauses.size(); ++C)
      S.addClause(Clauses[C]);
    bool Expected = bruteForceSat(NumVars, Clauses);
    bool GotSat = S.solve() == SatSolver::Res::Sat;
    EXPECT_EQ(GotSat, Expected) << "iteration " << Iter;
    if (GotSat)
      EXPECT_TRUE(modelSatisfies(S, Clauses)) << "iteration " << Iter;
    TotalDeleted += S.stats().ClausesDeleted;
    TotalReductions += S.stats().Reductions;
  }
  // The schedule above must actually have exercised the reduction path.
  EXPECT_GT(TotalReductions, 0u);
  EXPECT_GT(TotalDeleted, 0u);
}

TEST(SatTest, ReductionNeverDropsReasonClauses) {
  // Pigeonhole 6-into-5 with a reduce-after-every-conflict schedule:
  // reductions constantly fire while asserted literals hold learnt
  // reason clauses. reduceDB must keep locked clauses (a debug assert
  // backs this; in release the Unsat verdict would be corrupted if a
  // reason vanished), and the run must still refute the instance.
  SatSolver S;
  S.setReduceSchedule(1, 0);
  constexpr int NP = 6, NH = 5;
  uint32_t P[NP][NH];
  for (auto &Row : P)
    for (uint32_t &V : Row)
      V = S.newVar();
  for (int I = 0; I < NP; ++I) {
    std::vector<Lit> AtLeastOne;
    for (int J = 0; J < NH; ++J)
      AtLeastOne.push_back(Lit(P[I][J], false));
    S.addClause(AtLeastOne);
  }
  for (int J = 0; J < NH; ++J)
    for (int I1 = 0; I1 < NP; ++I1)
      for (int I2 = I1 + 1; I2 < NP; ++I2)
        S.addClause({Lit(P[I1][J], true), Lit(P[I2][J], true)});
  EXPECT_EQ(S.solve(), SatSolver::Res::Unsat);
  EXPECT_GT(S.stats().Conflicts, 0u);
  EXPECT_GT(S.stats().Reductions, 0u);
  EXPECT_GT(S.stats().ClausesDeleted, 0u);
}

TEST(SatTest, StatsCountersAdvance) {
  // A satisfiable chain with forced conflicts: decisions, propagations
  // and learnt-literal minimization all show up in the counters.
  SatSolver S;
  std::vector<uint32_t> V;
  for (int I = 0; I < 24; ++I)
    V.push_back(S.newVar());
  for (int I = 0; I + 1 < 24; ++I)
    S.addClause({Lit(V[I], true), Lit(V[I + 1], false)});
  S.addClause({Lit(V[0], false), Lit(V[23], false)});
  EXPECT_EQ(S.solve(), SatSolver::Res::Sat);
  const SatStats &St = S.stats();
  EXPECT_GT(St.Decisions, 0u);
  EXPECT_GT(St.Propagations, 0u);
}

TEST(SimplexTest, FeasibleSystem) {
  // x + y <= 4, x - y <= 1, x >= 0, y >= 0.
  Simplex S(2);
  S.setIntrinsicBounds(0, 0, INT64_MAX);
  S.setIntrinsicBounds(1, 0, INT64_MAX);
  uint32_t R1 = S.rowFor(LinTerm::variable(0) + LinTerm::variable(1));
  uint32_t R2 = S.rowFor(LinTerm::variable(0) - LinTerm::variable(1));
  EXPECT_TRUE(S.assertUpper(R1, Rational(4)));
  EXPECT_TRUE(S.assertUpper(R2, Rational(1)));
  EXPECT_TRUE(S.checkRational());
  std::vector<int64_t> Model;
  EXPECT_EQ(S.checkInteger(Model), TheoryResult::Sat);
  EXPECT_LE(Model[0] + Model[1], 4);
  EXPECT_LE(Model[0] - Model[1], 1);
}

TEST(SimplexTest, InfeasibleSystem) {
  // x >= 3 and x <= 2.
  Simplex S(1);
  EXPECT_TRUE(S.assertLower(0, Rational(3)));
  EXPECT_FALSE(S.assertUpper(0, Rational(2)));
}

TEST(SimplexTest, RationalFeasibleIntegerInfeasible) {
  // 2x = 1 (x free): rationally feasible, integrally infeasible.
  Simplex S(1);
  uint32_t R = S.rowFor(LinTerm::variable(0) * 2);
  EXPECT_TRUE(S.assertLower(R, Rational(1)));
  EXPECT_TRUE(S.assertUpper(R, Rational(1)));
  EXPECT_TRUE(S.checkRational());
  std::vector<int64_t> Model;
  EXPECT_EQ(S.checkInteger(Model), TheoryResult::Unsat);
}

TEST(SimplexTest, SnapshotRestore) {
  Simplex S(1);
  uint32_t R = S.rowFor(LinTerm::variable(0) * 3);
  Simplex::Snapshot Snap = S.save();
  EXPECT_TRUE(S.assertLower(R, Rational(6)));
  EXPECT_TRUE(S.assertUpper(R, Rational(6)));
  std::vector<int64_t> Model;
  EXPECT_EQ(S.checkInteger(Model), TheoryResult::Sat);
  EXPECT_EQ(Model[0], 2);
  S.restore(Snap);
  EXPECT_TRUE(S.assertUpper(R, Rational(-3)));
  EXPECT_EQ(S.checkInteger(Model), TheoryResult::Sat);
  EXPECT_LE(Model[0], -1);
}

/// Dense reference tableau with the pre-sparse-rewrite representation
/// (one `vector<Rational>` per row, per-entry normalization) and fixed
/// selection rules: Bland's smallest violated basic leaving,
/// fewest-column-nonzeros entering with smaller-index tie-break, Bland
/// fallback past 256 pivots. The production Simplex is explicitly
/// pinned to PivotRule::Bland for this comparison (Bland is also the
/// shipped default, but the pin keeps this representation-equivalence
/// test independent of any future default-rule change; alternate rules
/// legitimately pivot differently and are covered by
/// AlternatePivotRulesStaySound); identical rules + exact arithmetic
/// means the pivot sequences coincide, so the sparse implementation
/// must reproduce the reference β exactly, not just the feasibility
/// verdict.
class DenseRefSimplex {
public:
  static constexpr uint32_t NoReason = ~0u;

  explicit DenseRefSimplex(uint32_t NumProblemVars)
      : NumVars(NumProblemVars), RowOf(NumProblemVars, ~0u),
        Beta(NumProblemVars), Lo(NumProblemVars), Hi(NumProblemVars),
        LoReason(NumProblemVars, NoReason),
        HiReason(NumProblemVars, NoReason) {}

  uint32_t rowFor(const LinTerm &T) {
    if (T.coeffs().size() == 1 && T.coeffs().front().second == 1)
      return T.coeffs().front().first;
    auto It = TermToVar.find(T.coeffs());
    if (It != TermToVar.end())
      return It->second;
    uint32_t Slack = NumVars++;
    RowOf.push_back(static_cast<uint32_t>(Tableau.size()));
    Lo.push_back(std::nullopt);
    Hi.push_back(std::nullopt);
    LoReason.push_back(NoReason);
    HiReason.push_back(NoReason);
    for (std::vector<Rational> &Row : Tableau)
      Row.push_back(Rational::zero());
    std::vector<Rational> Row(NumVars, Rational::zero());
    Rational Value = Rational::zero();
    for (auto [V, C] : T.coeffs()) {
      Rational Coef(C);
      if (RowOf[V] == ~0u) {
        Row[V] += Coef;
      } else {
        const std::vector<Rational> &Sub = Tableau[RowOf[V]];
        for (uint32_t X = 0; X < NumVars; ++X)
          Row[X] += Coef * Sub[X];
      }
      Value += Coef * Beta[V];
    }
    Row[Slack] = Rational::zero();
    Tableau.push_back(std::move(Row));
    BasicVar.push_back(Slack);
    Beta.push_back(Value);
    TermToVar.emplace(T.coeffs(), Slack);
    return Slack;
  }

  bool assertUpper(uint32_t X, const Rational &U, uint32_t Reason) {
    if (Hi[X] && *Hi[X] <= U)
      return true;
    if (Lo[X] && U < *Lo[X]) {
      Conflict.clear();
      if (Reason != NoReason)
        Conflict.push_back(Reason);
      if (LoReason[X] != NoReason)
        Conflict.push_back(LoReason[X]);
      return false;
    }
    Trail.push_back({X, true, Hi[X], HiReason[X]});
    Hi[X] = U;
    HiReason[X] = Reason;
    if (RowOf[X] == ~0u && Beta[X] > U)
      updateNonbasic(X, U);
    return true;
  }

  bool assertLower(uint32_t X, const Rational &L, uint32_t Reason) {
    if (Lo[X] && *Lo[X] >= L)
      return true;
    if (Hi[X] && *Hi[X] < L) {
      Conflict.clear();
      if (Reason != NoReason)
        Conflict.push_back(Reason);
      if (HiReason[X] != NoReason)
        Conflict.push_back(HiReason[X]);
      return false;
    }
    Trail.push_back({X, false, Lo[X], LoReason[X]});
    Lo[X] = L;
    LoReason[X] = Reason;
    if (RowOf[X] == ~0u && Beta[X] < L)
      updateNonbasic(X, L);
    return true;
  }

  size_t mark() const { return Trail.size(); }

  void rollback(size_t Mark) {
    while (Trail.size() > Mark) {
      const Undo &U = Trail.back();
      if (U.Upper) {
        Hi[U.X] = U.Old;
        HiReason[U.X] = U.OldReason;
      } else {
        Lo[U.X] = U.Old;
        LoReason[U.X] = U.OldReason;
      }
      Trail.pop_back();
    }
  }

  bool checkRational() {
    uint64_t Pivots = 0;
    const uint64_t BlandThreshold = 256;
    for (;;) {
      bool Bland = Pivots >= BlandThreshold;
      uint32_t B = ~0u;
      bool NeedIncrease = false;
      for (uint32_t X = 0; X < NumVars && B == ~0u; ++X) {
        if (RowOf[X] == ~0u)
          continue;
        if (Lo[X] && Beta[X] < *Lo[X]) {
          B = X;
          NeedIncrease = true;
        } else if (Hi[X] && Beta[X] > *Hi[X]) {
          B = X;
          NeedIncrease = false;
        }
      }
      if (B == ~0u)
        return true;
      ++Pivots;
      const std::vector<Rational> &Row = Tableau[RowOf[B]];
      uint32_t N = ~0u;
      for (uint32_t X = 0; X < NumVars; ++X) {
        if (X == B || RowOf[X] != ~0u || Row[X].isZero())
          continue;
        const Rational &A = Row[X];
        bool CanUse;
        if (NeedIncrease)
          CanUse = (A > Rational::zero() && (!Hi[X] || Beta[X] < *Hi[X])) ||
                   (A < Rational::zero() && (!Lo[X] || Beta[X] > *Lo[X]));
        else
          CanUse = (A < Rational::zero() && (!Hi[X] || Beta[X] < *Hi[X])) ||
                   (A > Rational::zero() && (!Lo[X] || Beta[X] > *Lo[X]));
        if (!CanUse)
          continue;
        if (N == ~0u ||
            (Bland ? X < N
                   : colCount(X) < colCount(N) ||
                         (colCount(X) == colCount(N) && X < N)))
          N = X;
      }
      if (N == ~0u) {
        Conflict.clear();
        uint32_t BReason = NeedIncrease ? LoReason[B] : HiReason[B];
        if (BReason != NoReason)
          Conflict.push_back(BReason);
        for (uint32_t X = 0; X < NumVars; ++X) {
          if (X == B || RowOf[X] != ~0u || Row[X].isZero())
            continue;
          bool StuckAtHi = NeedIncrease ? (Row[X] > Rational::zero())
                                        : (Row[X] < Rational::zero());
          uint32_t R = StuckAtHi ? HiReason[X] : LoReason[X];
          if (R != NoReason)
            Conflict.push_back(R);
        }
        std::sort(Conflict.begin(), Conflict.end());
        Conflict.erase(std::unique(Conflict.begin(), Conflict.end()),
                       Conflict.end());
        return false;
      }
      pivotAndUpdate(B, N, NeedIncrease ? *Lo[B] : *Hi[B]);
    }
  }

  const Rational &value(uint32_t X) const { return Beta[X]; }
  uint32_t numVars() const { return NumVars; }
  const std::vector<uint32_t> &conflictReasons() const { return Conflict; }

private:
  size_t colCount(uint32_t X) const {
    size_t C = 0;
    for (const std::vector<Rational> &Row : Tableau)
      if (!Row[X].isZero())
        ++C;
    return C;
  }

  void updateNonbasic(uint32_t N, const Rational &V) {
    Rational Delta = V - Beta[N];
    if (Delta.isZero())
      return;
    for (size_t R = 0; R < Tableau.size(); ++R)
      if (!Tableau[R][N].isZero())
        Beta[BasicVar[R]] += Tableau[R][N] * Delta;
    Beta[N] = V;
  }

  void pivotAndUpdate(uint32_t B, uint32_t N, const Rational &V) {
    uint32_t R = RowOf[B];
    Rational A = Tableau[R][N];
    Rational Theta = (V - Beta[B]) / A;
    Beta[B] = V;
    Beta[N] += Theta;
    for (size_t R2 = 0; R2 < Tableau.size(); ++R2)
      if (R2 != R && !Tableau[R2][N].isZero())
        Beta[BasicVar[R2]] += Tableau[R2][N] * Theta;
    pivot(B, N);
  }

  void pivot(uint32_t B, uint32_t N) {
    uint32_t R = RowOf[B];
    std::vector<Rational> &Row = Tableau[R];
    Rational InvA = Rational::one() / Row[N];
    for (uint32_t X = 0; X < NumVars; ++X) {
      if (X == N)
        Row[X] = Rational::zero();
      else if (!Row[X].isZero())
        Row[X] = -Row[X] * InvA;
    }
    Row[B] = InvA;
    BasicVar[R] = N;
    RowOf[N] = R;
    RowOf[B] = ~0u;
    for (size_t R2 = 0; R2 < Tableau.size(); ++R2) {
      if (R2 == R)
        continue;
      std::vector<Rational> &Other = Tableau[R2];
      if (Other[N].isZero())
        continue;
      Rational C = Other[N];
      Other[N] = Rational::zero();
      for (uint32_t X = 0; X < NumVars; ++X)
        if (!Row[X].isZero())
          Other[X] += C * Row[X];
    }
  }

  struct Undo {
    uint32_t X;
    bool Upper;
    std::optional<Rational> Old;
    uint32_t OldReason;
  };

  uint32_t NumVars;
  std::vector<std::vector<Rational>> Tableau;
  std::vector<uint32_t> RowOf, BasicVar;
  std::vector<Rational> Beta;
  std::vector<std::optional<Rational>> Lo, Hi;
  std::vector<uint32_t> LoReason, HiReason;
  std::vector<Undo> Trail;
  std::vector<uint32_t> Conflict;
  std::map<std::vector<std::pair<Var, int64_t>>, uint32_t> TermToVar;
};

std::vector<uint32_t> sortedReasons(const std::vector<uint32_t> &Rs) {
  std::vector<uint32_t> S = Rs;
  std::sort(S.begin(), S.end());
  S.erase(std::unique(S.begin(), S.end()), S.end());
  return S;
}

TEST(SimplexTest, TableauStatsCountersAdvance) {
  // Constructed so that eliminating x from the second row leaves every
  // numerator and the merged denominator sharing a factor of 2: pivoting
  // s1's row solves x = (s1 - 2y)/2, and substituting into s2 = 2x + y
  // gives {s1: 2, y: -2} over denominator 2 — exactly one row-gcd
  // normalization. Fill-in and max-nnz move along the way.
  Simplex S(2);
  uint32_t S1 = S.rowFor(LinTerm::variable(0, 2) + LinTerm::variable(1, 2));
  uint32_t S2 = S.rowFor(LinTerm::variable(0, 2) + LinTerm::variable(1));
  ASSERT_NE(S1, S2);
  EXPECT_TRUE(S.assertLower(S1, Rational(1)));
  EXPECT_TRUE(S.checkRational());
  const SimplexStats &St = S.stats();
  EXPECT_GT(St.Pivots, 0u);
  EXPECT_GT(St.Checks, 0u);
  EXPECT_GT(St.RowFillIn, 0u);
  EXPECT_GE(St.MaxRowNnz, 2u);
  EXPECT_GT(St.DenNormalizations, 0u);
}

TEST(SimplexTest, SparseMatchesDenseReferenceExactly) {
  std::mt19937 Rng(20250726);
  for (int Iter = 0; Iter < 60; ++Iter) {
    const uint32_t K = 5;
    Simplex Sparse(K);
    Sparse.setPivotRule(PivotRule::Bland);
    DenseRefSimplex Dense(K);
    std::vector<std::pair<size_t, size_t>> Marks; // (sparse, dense)
    uint32_t NextReason = 100;

    // Register a few multi-variable rows up front and some lazily below,
    // interleaved with the bound assertions (the DPLL(T) usage pattern
    // registers everything up front; the CEGAR loop adds rows late).
    std::vector<uint32_t> Handles;
    auto Register = [&] {
      LinTerm T;
      uint32_t Width = 1 + Rng() % 4;
      for (uint32_t I = 0; I < Width; ++I)
        T += LinTerm::variable(Rng() % K, static_cast<int64_t>(Rng() % 7) - 3);
      if (T.coeffs().empty())
        T += LinTerm::variable(Rng() % K);
      uint32_t HS = Sparse.rowFor(T);
      uint32_t HD = Dense.rowFor(T);
      ASSERT_EQ(HS, HD) << "slack allocation diverged, iteration " << Iter;
      Handles.push_back(HS);
    };
    for (int I = 0; I < 4; ++I)
      Register();

    for (int Op = 0; Op < 120; ++Op) {
      uint32_t Kind = Rng() % 16;
      if (Kind == 0 && Handles.size() < 12) {
        Register();
      } else if (Kind == 1) {
        Marks.push_back({Sparse.mark(), Dense.mark()});
      } else if (Kind == 2 && !Marks.empty()) {
        size_t I = Rng() % Marks.size();
        Sparse.rollback(Marks[I].first);
        Dense.rollback(Marks[I].second);
        Marks.resize(I + 1);
      } else {
        uint32_t X = Handles[Rng() % Handles.size()];
        // Mostly integral bounds with occasional halves, wide enough to
        // keep a healthy feasible/infeasible mix.
        Rational V(static_cast<int64_t>(Rng() % 41) - 20,
                   (Rng() % 4 == 0) ? 2 : 1);
        uint32_t Reason = (Rng() % 8 == 0) ? Simplex::NoReason : NextReason++;
        bool Upper = Rng() % 2;
        bool OkS = Upper ? Sparse.assertUpper(X, V, Reason)
                         : Sparse.assertLower(X, V, Reason);
        bool OkD = Upper ? Dense.assertUpper(X, V, Reason)
                         : Dense.assertLower(X, V, Reason);
        ASSERT_EQ(OkS, OkD) << "assert verdict diverged, iteration " << Iter;
        if (!OkS) {
          EXPECT_EQ(sortedReasons(Sparse.conflictReasons()),
                    sortedReasons(Dense.conflictReasons()))
              << "assert conflict reasons diverged, iteration " << Iter;
          continue;
        }
      }
      if (Op % 5 == 4) {
        bool FeasS = Sparse.checkRational();
        bool FeasD = Dense.checkRational();
        ASSERT_EQ(FeasS, FeasD)
            << "feasibility verdict diverged, iteration " << Iter;
        if (FeasS) {
          for (uint32_t X = 0; X < Dense.numVars(); ++X)
            ASSERT_EQ(Sparse.value(X), Dense.value(X))
                << "beta diverged at var " << X << ", iteration " << Iter;
        } else {
          EXPECT_EQ(sortedReasons(Sparse.conflictReasons()),
                    sortedReasons(Dense.conflictReasons()))
              << "conflict reason sets diverged, iteration " << Iter;
          // Loosen back to the last mark so the run can continue.
          if (!Marks.empty()) {
            Sparse.rollback(Marks.front().first);
            Dense.rollback(Marks.front().second);
            Marks.resize(1);
          }
        }
      }
    }
  }
}

TEST(SimplexTest, AlternatePivotRulesStaySound) {
  // markowitz / sparsest-row / most-violated change the pivot sequence,
  // so β may legitimately differ from the reference — but feasibility
  // verdicts are representation- and rule-independent, and any feasible
  // β must satisfy every asserted bound and every registered row
  // definition.
  for (PivotRule Rule : {PivotRule::Markowitz, PivotRule::SparsestRow,
                         PivotRule::MostViolated}) {
    std::mt19937 Rng(777 + static_cast<uint32_t>(Rule));
    for (int Iter = 0; Iter < 30; ++Iter) {
      const uint32_t K = 5;
      Simplex Sparse(K);
      DenseRefSimplex Dense(K);
      Sparse.setPivotRule(Rule);
      std::vector<std::pair<LinTerm, uint32_t>> Rows;
      auto Register = [&] {
        LinTerm T;
        uint32_t Width = 1 + Rng() % 4;
        for (uint32_t I = 0; I < Width; ++I)
          T += LinTerm::variable(Rng() % K,
                                 static_cast<int64_t>(Rng() % 7) - 3);
        if (T.coeffs().empty())
          T += LinTerm::variable(Rng() % K);
        uint32_t H = Sparse.rowFor(T);
        ASSERT_EQ(H, Dense.rowFor(T));
        Rows.push_back({T, H});
      };
      for (int I = 0; I < 5; ++I)
        Register();
      uint32_t NextReason = 100;
      for (int Op = 0; Op < 60; ++Op) {
        uint32_t X = Rows[Rng() % Rows.size()].second;
        Rational V(static_cast<int64_t>(Rng() % 31) - 15,
                   (Rng() % 4 == 0) ? 2 : 1);
        uint32_t Reason = NextReason++;
        bool Upper = Rng() % 2;
        bool OkS = Upper ? Sparse.assertUpper(X, V, Reason)
                         : Sparse.assertLower(X, V, Reason);
        bool OkD = Upper ? Dense.assertUpper(X, V, Reason)
                         : Dense.assertLower(X, V, Reason);
        ASSERT_EQ(OkS, OkD);
        if (!OkS)
          break;
        if (Op % 6 == 5) {
          bool FeasS = Sparse.checkRational();
          ASSERT_EQ(FeasS, Dense.checkRational())
              << "rule " << static_cast<int>(Rule) << ", iteration " << Iter;
          if (!FeasS)
            break;
          // Every registered row definition must hold at the vertex.
          for (const auto &[T, H] : Rows) {
            Rational Sum;
            for (auto [Var, C] : T.coeffs())
              Sum += Rational(C) * Sparse.value(Var);
            ASSERT_EQ(Sum, Sparse.value(H))
                << "row definition violated, iteration " << Iter;
          }
        }
      }
    }
  }
}

TEST(SimplexTest, RandomizedRuleSwitchesStaySound) {
  // The adaptive policy changes the leaving rule between checks (never
  // inside one), so the property that matters is: an arbitrary sequence
  // of rule switches at check boundaries still produces exactly the
  // Bland oracle's feasibility verdicts, and every feasible vertex
  // satisfies all bounds and row definitions. Drive a randomized switch
  // schedule — harsher than anything the adaptive machine does — against
  // the dense Bland reference.
  const PivotRule AllRules[] = {PivotRule::Bland, PivotRule::Markowitz,
                                PivotRule::SparsestRow,
                                PivotRule::MostViolated,
                                PivotRule::Adaptive};
  std::mt19937 Rng(424242);
  for (int Iter = 0; Iter < 40; ++Iter) {
    const uint32_t K = 5;
    PivotPolicy Policy;
    Policy.Family = Rng() % 2 ? InstanceFamily::ParikhHeavy
                              : InstanceFamily::WordEqPosition;
    Simplex Sparse(K, Policy);
    DenseRefSimplex Dense(K);
    std::vector<std::pair<LinTerm, uint32_t>> Rows;
    auto Register = [&] {
      LinTerm T;
      uint32_t Width = 1 + Rng() % 4;
      for (uint32_t I = 0; I < Width; ++I)
        T += LinTerm::variable(Rng() % K, static_cast<int64_t>(Rng() % 7) - 3);
      if (T.coeffs().empty())
        T += LinTerm::variable(Rng() % K);
      uint32_t H = Sparse.rowFor(T);
      ASSERT_EQ(H, Dense.rowFor(T));
      Rows.push_back({T, H});
    };
    for (int I = 0; I < 5; ++I)
      Register();
    uint32_t NextReason = 100;
    for (int Op = 0; Op < 80; ++Op) {
      uint32_t X = Rows[Rng() % Rows.size()].second;
      Rational V(static_cast<int64_t>(Rng() % 31) - 15,
                 (Rng() % 4 == 0) ? 2 : 1);
      uint32_t Reason = NextReason++;
      bool Upper = Rng() % 2;
      bool OkS = Upper ? Sparse.assertUpper(X, V, Reason)
                       : Sparse.assertLower(X, V, Reason);
      bool OkD = Upper ? Dense.assertUpper(X, V, Reason)
                       : Dense.assertLower(X, V, Reason);
      ASSERT_EQ(OkS, OkD);
      if (!OkS)
        break;
      if (Op % 4 == 3) {
        // Check boundary: legal switch point. setPivotRule resets the
        // adaptive degradation, which is also legal between checks.
        Sparse.setPivotRule(AllRules[Rng() % 5]);
        bool FeasS = Sparse.checkRational();
        ASSERT_EQ(FeasS, Dense.checkRational())
            << "verdict diverged under switched rules, iteration " << Iter;
        if (!FeasS)
          break;
        for (const auto &[T, H] : Rows) {
          Rational Sum;
          for (auto [Var, C] : T.coeffs())
            Sum += Rational(C) * Sparse.value(Var);
          ASSERT_EQ(Sum, Sparse.value(H))
              << "row definition violated, iteration " << Iter;
        }
      }
    }
    const SimplexStats &St = Sparse.stats();
    uint64_t ByRule = 0;
    for (size_t R = 0; R < NumConcretePivotRules; ++R)
      ByRule += St.PivotsByRule[R];
    EXPECT_EQ(ByRule, St.Pivots)
        << "per-rule pivot attribution does not sum to the pivot count";
  }
}

TEST(SimplexTest, AdaptiveStartRuleFollowsFamily) {
  // setPivotPolicy bypasses the POSTR_SIMPLEX_PIVOT_RULE override, so
  // the expectations hold in any environment.
  PivotPolicy P;
  P.Family = InstanceFamily::ParikhHeavy;
  Simplex Parikh(2);
  Parikh.setPivotPolicy(P);
  EXPECT_EQ(Parikh.activeRule(), PivotRule::SparsestRow);
  P.Family = InstanceFamily::WordEqDiseq;
  Simplex WordEqD(2);
  WordEqD.setPivotPolicy(P);
  EXPECT_EQ(WordEqD.activeRule(), PivotRule::Bland);
  P.Family = InstanceFamily::WordEqPosition;
  Simplex WordEqP(2);
  WordEqP.setPivotPolicy(P);
  EXPECT_EQ(WordEqP.activeRule(), PivotRule::Bland);
  P.Family = InstanceFamily::Unknown;
  Simplex Unclassified(2);
  Unclassified.setPivotPolicy(P);
  EXPECT_EQ(Unclassified.activeRule(), PivotRule::SparsestRow);
  // A forced concrete rule resolves to itself regardless of family.
  Unclassified.setPivotRule(PivotRule::MostViolated);
  EXPECT_EQ(Unclassified.activeRule(), PivotRule::MostViolated);
}

TEST(SimplexTest, AdaptiveFallsBackToBlandWhenSignalDegrades) {
  // Shrink the fallback thresholds so a modest instance trips both
  // triggers, and pin the degraded solver against the Bland oracle: the
  // fence must only change pivot order, never verdicts or models'
  // validity. This is the unit-level pin of the django-family fence (the
  // workload-level pin is IncrementalTest's
  // Sweep/AdaptivePivotRuleSweep.AdaptiveMatchesBland).
  std::mt19937 Rng(99173);
  bool SawSwitch = false;
  for (int Iter = 0; Iter < 30 && !SawSwitch; ++Iter) {
    const uint32_t K = 6;
    PivotPolicy Policy;
    Policy.Family = InstanceFamily::ParikhHeavy; // starts on SparsestRow
    Policy.DegradeRestorationLen = 4;
    Policy.DegradeWindowChecks = 4;
    Policy.DegradeWindowPivotsPerCheck = 1;
    Simplex Sparse(K, Policy);
    Sparse.setPivotPolicy(Policy); // bypass any env override, keep Adaptive
    DenseRefSimplex Dense(K);
    std::vector<uint32_t> Handles;
    auto Register = [&] {
      LinTerm T;
      uint32_t Width = 2 + Rng() % 3;
      for (uint32_t I = 0; I < Width; ++I)
        T += LinTerm::variable(Rng() % K, static_cast<int64_t>(Rng() % 7) - 3);
      if (T.coeffs().empty())
        T += LinTerm::variable(Rng() % K);
      uint32_t H = Sparse.rowFor(T);
      ASSERT_EQ(H, Dense.rowFor(T));
      Handles.push_back(H);
    };
    for (int I = 0; I < 7; ++I)
      Register();
    const size_t BaseS = Sparse.mark(), BaseD = Dense.mark();
    uint32_t NextReason = 100;
    for (int Op = 0; Op < 200; ++Op) {
      uint32_t X = Handles[Rng() % Handles.size()];
      Rational V(static_cast<int64_t>(Rng() % 41) - 20, 1);
      uint32_t Reason = NextReason++;
      bool Upper = Rng() % 2;
      bool OkS = Upper ? Sparse.assertUpper(X, V, Reason)
                       : Sparse.assertLower(X, V, Reason);
      bool OkD = Upper ? Dense.assertUpper(X, V, Reason)
                       : Dense.assertLower(X, V, Reason);
      ASSERT_EQ(OkS, OkD);
      if (!OkS)
        continue; // direct bound clash; keep the run going
      bool FeasS = Sparse.checkRational();
      ASSERT_EQ(FeasS, Dense.checkRational())
          << "verdict diverged across the fallback, iteration " << Iter;
      if (!FeasS) {
        // Loosen everything so the run keeps producing restorations.
        Sparse.rollback(BaseS);
        Dense.rollback(BaseD);
      }
    }
    if (Sparse.adaptiveDegraded()) {
      SawSwitch = true;
      EXPECT_GE(Sparse.stats().RuleSwitches, 1u);
      // Sticky: once fenced, every later check starts on Bland.
      EXPECT_EQ(Sparse.activeRule(), PivotRule::Bland);
    }
  }
  EXPECT_TRUE(SawSwitch)
      << "no instance tripped the shrunken degradation thresholds";
}

TEST(SolveQfTest, SimpleConjunction) {
  Arena A;
  Var X = A.freshVar("x"), Y = A.freshVar("y");
  FormulaId F = A.conj({
      A.cmp(LinTerm::variable(X) + LinTerm::variable(Y), Cmp::Eq,
            LinTerm(10)),
      A.cmp(LinTerm::variable(X) - LinTerm::variable(Y), Cmp::Ge,
            LinTerm(4)),
      A.cmp(LinTerm::variable(Y), Cmp::Ge, LinTerm(1)),
  });
  QfResult R = solveQF(A, F);
  ASSERT_EQ(R.V, Verdict::Sat);
  EXPECT_EQ(R.Model[X] + R.Model[Y], 10);
  EXPECT_GE(R.Model[X] - R.Model[Y], 4);
}

TEST(SolveQfTest, UnsatConjunction) {
  Arena A;
  Var X = A.freshVar("x");
  FormulaId F = A.conj({
      A.cmp(LinTerm::variable(X), Cmp::Ge, LinTerm(5)),
      A.cmp(LinTerm::variable(X), Cmp::Le, LinTerm(4)),
  });
  EXPECT_EQ(solveQF(A, F).V, Verdict::Unsat);
}

TEST(SolveQfTest, DisjunctionNeedsTheoryConflicts) {
  Arena A;
  Var X = A.freshVar("x", 0, INT64_MAX);
  // (x <= 2 or x >= 10) and x = 5 -> unsat.
  FormulaId F = A.conj({
      A.disj({A.cmp(LinTerm::variable(X), Cmp::Le, LinTerm(2)),
              A.cmp(LinTerm::variable(X), Cmp::Ge, LinTerm(10))}),
      A.cmp(LinTerm::variable(X), Cmp::Eq, LinTerm(5)),
  });
  EXPECT_EQ(solveQF(A, F).V, Verdict::Unsat);

  // (x <= 2 or x >= 10) and x >= 6 -> sat with x >= 10.
  FormulaId G = A.conj({
      A.disj({A.cmp(LinTerm::variable(X), Cmp::Le, LinTerm(2)),
              A.cmp(LinTerm::variable(X), Cmp::Ge, LinTerm(10))}),
      A.cmp(LinTerm::variable(X), Cmp::Ge, LinTerm(6)),
  });
  QfResult R = solveQF(A, G);
  ASSERT_EQ(R.V, Verdict::Sat);
  EXPECT_GE(R.Model[X], 10);
}

TEST(SolveQfTest, NotEqualLowering) {
  Arena A;
  Var X = A.freshVar("x", 0, 1);
  Var Y = A.freshVar("y", 0, 1);
  FormulaId F = A.conj({
      A.cmp(LinTerm::variable(X), Cmp::Ne, LinTerm::variable(Y)),
      A.cmp(LinTerm::variable(X), Cmp::Le, LinTerm(0)),
  });
  QfResult R = solveQF(A, F);
  ASSERT_EQ(R.V, Verdict::Sat);
  EXPECT_EQ(R.Model[X], 0);
  EXPECT_EQ(R.Model[Y], 1);
}

TEST(SolveQfTest, IntrinsicBoundsRespected) {
  Arena A;
  Var X = A.freshVar("x", 3, 7);
  FormulaId F = A.cmp(LinTerm::variable(X), Cmp::Le, LinTerm(100));
  QfResult R = solveQF(A, F);
  ASSERT_EQ(R.V, Verdict::Sat);
  EXPECT_GE(R.Model[X], 3);
  EXPECT_LE(R.Model[X], 7);
  FormulaId G = A.cmp(LinTerm::variable(X), Cmp::Ge, LinTerm(8));
  EXPECT_EQ(solveQF(A, G).V, Verdict::Unsat);
}

/// Differential test: random small formulae vs brute-force enumeration of
/// variable values in a small box.
TEST(SolveQfTest, RandomDifferentialAgainstEnumeration) {
  std::mt19937 Rng(4242);
  for (int Iter = 0; Iter < 120; ++Iter) {
    Arena A;
    uint32_t NumVars = 2 + Rng() % 2;
    std::vector<Var> Vars;
    for (uint32_t V = 0; V < NumVars; ++V)
      Vars.push_back(A.freshVar("v" + std::to_string(V), 0, 4));

    auto RandTerm = [&] {
      LinTerm T(static_cast<int64_t>(Rng() % 9) - 4);
      for (Var V : Vars)
        T += LinTerm::variable(V, static_cast<int64_t>(Rng() % 5) - 2);
      return T;
    };
    std::vector<FormulaId> Parts;
    uint32_t NumAtoms = 2 + Rng() % 4;
    for (uint32_t I = 0; I < NumAtoms; ++I) {
      Cmp Op = static_cast<Cmp>(Rng() % 6);
      FormulaId Atom = A.atom(RandTerm(), Op);
      if (Rng() % 3 == 0)
        Atom = A.neg(Atom);
      Parts.push_back(Atom);
    }
    // Random and/or tree: pair up parts.
    FormulaId F = Parts[0];
    for (size_t I = 1; I < Parts.size(); ++I)
      F = (Rng() % 2) ? A.conj({F, Parts[I]}) : A.disj({F, Parts[I]});

    // Brute force over the box [0,4]^n.
    bool Expected = false;
    std::vector<int64_t> M(NumVars, 0);
    uint32_t Total = 1;
    for (uint32_t V = 0; V < NumVars; ++V)
      Total *= 5;
    for (uint32_t Code = 0; Code < Total && !Expected; ++Code) {
      uint32_t C = Code;
      for (uint32_t V = 0; V < NumVars; ++V) {
        M[V] = C % 5;
        C /= 5;
      }
      if (A.eval(F, M))
        Expected = true;
    }

    QfResult R = solveQF(A, F);
    ASSERT_NE(R.V, Verdict::Unknown) << "iteration " << Iter;
    EXPECT_EQ(R.V == Verdict::Sat, Expected)
        << "iteration " << Iter << ": " << A.str(F);
  }
}

TEST(MbqiTest, NoBlocksBehavesLikeQf) {
  Arena A;
  Var X = A.freshVar("x", 0, 10);
  MbqiQuery Q;
  Q.Outer = A.cmp(LinTerm::variable(X), Cmp::Ge, LinTerm(3));
  Q.OuterVars = {X};
  std::vector<int64_t> Model;
  EXPECT_EQ(solveMbqi(A, Q, &Model), Verdict::Sat);
  EXPECT_GE(Model[X], 3);
}

TEST(MbqiTest, ForallBlockFiltersModels) {
  // ∃x ∈ [0,4] ∀κ ∈ [0,x] ∃y: y = κ ∧ y ≤ 2 ∧ x ≥ 2.
  // For x ∈ {3,4} the offset κ=3 fails; x=2 works.
  Arena A;
  Var X = A.freshVar("x", 0, 4);
  Var K = A.freshVar("kappa");
  Var Y = A.freshVar("y");
  MbqiQuery Q;
  Q.Outer = A.cmp(LinTerm::variable(X), Cmp::Ge, LinTerm(2));
  Q.OuterVars = {X};
  ForallBlock B;
  B.Kappa = K;
  B.Upper = LinTerm::variable(X);
  B.Inner = A.conj({
      A.cmp(LinTerm::variable(Y), Cmp::Eq, LinTerm::variable(K)),
      A.cmp(LinTerm::variable(Y), Cmp::Le, LinTerm(2)),
  });
  Q.Blocks.push_back(B);
  std::vector<int64_t> Model;
  ASSERT_EQ(solveMbqi(A, Q, &Model), Verdict::Sat);
  EXPECT_EQ(Model[X], 2);
}

TEST(MbqiTest, UnsatWhenEveryModelRefuted) {
  // ∃x ∈ [1,3] ∀κ ∈ [0,x] : κ <= 0 — fails for every x >= 1.
  Arena A;
  Var X = A.freshVar("x", 1, 3);
  Var K = A.freshVar("kappa");
  MbqiQuery Q;
  Q.Outer = A.trueF();
  Q.OuterVars = {X};
  ForallBlock B;
  B.Kappa = K;
  B.Upper = LinTerm::variable(X);
  B.Inner = A.cmp(LinTerm::variable(K), Cmp::Le, LinTerm(0));
  Q.Blocks.push_back(B);
  EXPECT_EQ(solveMbqi(A, Q), Verdict::Unsat);
}

TEST(ArenaTest, EvalAndLowerAgree) {
  std::mt19937 Rng(99);
  for (int Iter = 0; Iter < 100; ++Iter) {
    Arena A;
    Var X = A.freshVar("x"), Y = A.freshVar("y");
    LinTerm T = LinTerm::variable(X, static_cast<int64_t>(Rng() % 5) - 2) +
                LinTerm::variable(Y, static_cast<int64_t>(Rng() % 5) - 2) +
                LinTerm(static_cast<int64_t>(Rng() % 7) - 3);
    Cmp Op = static_cast<Cmp>(Rng() % 6);
    FormulaId F = A.atom(T, Op);
    if (Rng() % 2)
      F = A.neg(F);
    FormulaId L = A.lower(F);
    for (int64_t XV = -2; XV <= 2; ++XV)
      for (int64_t YV = -2; YV <= 2; ++YV) {
        std::vector<int64_t> M{XV, YV};
        EXPECT_EQ(A.eval(F, M), A.eval(L, M))
            << A.str(F) << " vs " << A.str(L);
      }
  }
}

} // namespace
