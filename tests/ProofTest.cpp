//===- tests/ProofTest.cpp - Unsat certification tests ------------------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
//
// The certification stack, bottom to top: hand-built certificates
// through the checker kernel (positive and tampered-negative), solver
// traces from solveQF, assumption-core refutation properties of the
// CDCL core, and the whole pipeline's certify/demote behaviour
// (CertifyUnsat, TamperCert). The tamper tests mirror the TamperModel
// pattern: corruption must be *rejected*, never silently accepted.
//
//===----------------------------------------------------------------------===//

#include "lia/Sat.h"
#include "lia/Solver.h"
#include "proof/Check.h"
#include "proof/Proof.h"
#include "solver/PositionSolver.h"

#include <gtest/gtest.h>

#include <random>

using namespace postr;
using strings::Problem;
using strings::StrElem;

namespace {

//===----------------------------------------------------------------------===//
// Hand-built certificates: full control over every byte the kernel sees.
//===----------------------------------------------------------------------===//

/// The smallest real Farkas refutation: atoms a0 ⇔ x0 ≤ 0 and
/// a1 ⇔ 1 − x0 ≤ 0 (i.e. x0 ≥ 1), both asserted as units, refuted by
/// the theory lemma {¬a0, ¬a1} whose certificate is 1·(x0 ≤ 0) +
/// 1·(x0 ≥ 1): the variable parts cancel and the constants sum to −1.
proof::QfProof tinyFarkasProof() {
  proof::QfProof P;
  P.Atoms.push_back({0, 0, {{0, 1}}});
  P.Atoms.push_back({1, 1, {{0, -1}}});
  proof::TheoryCert C;
  proof::FarkasLeaf L;
  L.Entries.push_back({proof::FarkasEntry::Kind::Lit, 0, false, {1, 1}});
  L.Entries.push_back({proof::FarkasEntry::Kind::Lit, 2, false, {1, 1}});
  C.Leaves.push_back(std::move(L));
  C.Nodes.push_back({0, 0, 0, -1, -1});
  C.Root = 0;
  P.Certs.push_back(std::move(C));
  P.Steps.push_back({proof::ClauseStep::Kind::Input, {0}, -1});
  P.Steps.push_back({proof::ClauseStep::Kind::Input, {2}, -1});
  P.Steps.push_back({proof::ClauseStep::Kind::Theory, {1, 3}, 0});
  P.Steps.push_back({proof::ClauseStep::Kind::Final, {}, -1});
  return P;
}

proof::Certificate wrap(proof::QfProof P) {
  proof::Certificate C;
  C.Disjuncts.push_back({false, "", std::move(P)});
  return C;
}

TEST(ProofCheckTest, HandBuiltFarkasRefutationVerifies) {
  proof::CheckOutcome Out = proof::checkCertificate(wrap(tinyFarkasProof()));
  EXPECT_TRUE(Out.Ok) << Out.Error;
  EXPECT_EQ(Out.Stats.CheckedRefutations, 1u);
  EXPECT_EQ(Out.Stats.FarkasLeaves, 1u);
}

TEST(ProofCheckTest, TrustedRuleDisjunctsAreCountedNotDerived) {
  proof::Certificate C;
  C.Disjuncts.push_back({true, "one-counter", {}});
  C.Disjuncts.push_back({false, "", tinyFarkasProof()});
  proof::CheckOutcome Out = proof::checkCertificate(C);
  EXPECT_TRUE(Out.Ok) << Out.Error;
  // Rule disjuncts are counted as trusted, never as checked refutations:
  // the two stats partition the disjuncts, so a consumer can tell how
  // much of the certificate rests on axiomatized metatheory.
  EXPECT_EQ(Out.Stats.TrustedRules, 1u);
  EXPECT_EQ(Out.Stats.CheckedRefutations, 1u);
}

TEST(ProofCheckTest, IncompleteStabilizationCertifiesNothing) {
  proof::Certificate C = wrap(tinyFarkasProof());
  C.Complete = false;
  EXPECT_FALSE(proof::checkCertificate(C).Ok);
}

// The four mandated tamper shapes. Each starts from a certificate the
// kernel accepts and applies one corruption; all must be rejected.

TEST(ProofCheckTest, TamperDroppedFarkasTermRejected) {
  proof::QfProof P = tinyFarkasProof();
  P.Certs[0].Leaves[0].Entries.pop_back(); // sum no longer cancels x0
  EXPECT_FALSE(proof::checkCertificate(wrap(std::move(P))).Ok);
}

TEST(ProofCheckTest, TamperPerturbedCoefficientRejected) {
  proof::QfProof P = tinyFarkasProof();
  P.Certs[0].Leaves[0].Entries[0].Mult = {2, 1}; // +2x0 − x0 ≠ 0
  EXPECT_FALSE(proof::checkCertificate(wrap(std::move(P))).Ok);
}

TEST(ProofCheckTest, TamperUseAfterDeleteRejected) {
  // Delete a clause the later RUP derivation needs: the learnt unit
  // {a0} is no longer reverse-unit-propagatable from the live DB.
  // (Deleting a clause never retracts trail literals it already forced
  // — the standard DRUP-checker convention for unit deletions — so the
  // deleted clause here is a non-unit that has forced nothing yet.)
  auto Build = [] {
    proof::QfProof P;
    P.Atoms.push_back({0, 0, {{0, 1}}});
    P.Atoms.push_back({1, 0, {{1, 1}}});
    // (a0 ∨ a1) (a0 ∨ ¬a1) (¬a0 ∨ a1) (¬a0 ∨ ¬a1): propositionally unsat.
    P.Steps.push_back({proof::ClauseStep::Kind::Input, {0, 2}, -1});
    P.Steps.push_back({proof::ClauseStep::Kind::Input, {0, 3}, -1});
    P.Steps.push_back({proof::ClauseStep::Kind::Input, {1, 2}, -1});
    P.Steps.push_back({proof::ClauseStep::Kind::Input, {1, 3}, -1});
    P.Steps.push_back({proof::ClauseStep::Kind::Learnt, {0}, -1});
    P.Steps.push_back({proof::ClauseStep::Kind::Final, {}, -1});
    return P;
  };
  ASSERT_TRUE(proof::checkCertificate(wrap(Build())).Ok);
  proof::QfProof P = Build();
  // Drop (a0 ∨ ¬a1) before the learnt step that propagates through it.
  P.Steps.insert(P.Steps.begin() + 4,
                 {proof::ClauseStep::Kind::Delete, {0, 3}, -1});
  proof::CheckOutcome Out = proof::checkCertificate(wrap(std::move(P)));
  EXPECT_FALSE(Out.Ok);
  EXPECT_NE(Out.Error.find("not RUP"), std::string::npos) << Out.Error;
}

TEST(ProofCheckTest, TamperTruncatedTraceRejected) {
  proof::QfProof P = tinyFarkasProof();
  P.Steps.pop_back(); // no Final refutation event
  EXPECT_FALSE(proof::checkCertificate(wrap(std::move(P))).Ok);
}

TEST(ProofCheckTest, SerializationRoundTripsByteForByte) {
  proof::Certificate C;
  C.Disjuncts.push_back({true, "empty-language", {}});
  C.Disjuncts.push_back({false, "", tinyFarkasProof()});
  std::string Text = proof::serialize(C);
  Result<proof::Certificate> Parsed = proof::parse(Text);
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.error();
  EXPECT_EQ(proof::serialize(*Parsed), Text);
  EXPECT_TRUE(proof::checkCertificate(*Parsed).Ok);
}

TEST(ProofCheckTest, GarbageTextRejectedWithLineInfo) {
  EXPECT_FALSE(static_cast<bool>(proof::parse("not a certificate")));
  std::string Text = proof::serialize(wrap(tinyFarkasProof()));
  Text.resize(Text.size() / 2); // mid-record truncation
  EXPECT_FALSE(static_cast<bool>(proof::parse(Text)));
}

//===----------------------------------------------------------------------===//
// Solver-produced traces: solveQF with a QfTraceBuilder attached.
//===----------------------------------------------------------------------===//

void expectQfUnsatCertified(lia::Arena &A, lia::FormulaId F) {
  proof::QfTraceBuilder B;
  lia::QfOptions O;
  O.Proof = &B;
  lia::QfResult R = lia::solveQF(A, F, O);
  ASSERT_EQ(R.V, Verdict::Unsat);
  // Round-trip through the text format exactly like the pipeline does.
  std::string Text = proof::serialize(wrap(B.P));
  Result<proof::Certificate> Parsed = proof::parse(Text);
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.error();
  proof::CheckOutcome Out = proof::checkCertificate(*Parsed);
  EXPECT_TRUE(Out.Ok) << Out.Error;
}

TEST(ProofQfTest, BoundClashCertified) {
  lia::Arena A;
  lia::Var X = A.freshVar("x");
  expectQfUnsatCertified(
      A, A.conj({A.cmp(lia::LinTerm::variable(X), lia::Cmp::Le,
                       lia::LinTerm(1)),
                 A.cmp(lia::LinTerm::variable(X), lia::Cmp::Ge,
                       lia::LinTerm(3))}));
}

TEST(ProofQfTest, RowConflictCertified) {
  lia::Arena A;
  lia::Var X = A.freshVar("x"), Y = A.freshVar("y");
  expectQfUnsatCertified(
      A, A.conj({A.cmp(lia::LinTerm::variable(X) + lia::LinTerm::variable(Y),
                       lia::Cmp::Le, lia::LinTerm(1)),
                 A.cmp(lia::LinTerm::variable(X), lia::Cmp::Ge,
                       lia::LinTerm(1)),
                 A.cmp(lia::LinTerm::variable(Y), lia::Cmp::Ge,
                       lia::LinTerm(1))}));
}

TEST(ProofQfTest, IntegralityConflictCertified) {
  // 3x − 3y = 1 inside a box: refuting it takes the branch-and-bound
  // tree with split records, not a single rational Farkas leaf.
  lia::Arena A;
  lia::Var X = A.freshVar("x", 0, 100), Y = A.freshVar("y", 0, 100);
  expectQfUnsatCertified(A,
                         A.cmp(lia::LinTerm::variable(X) * 3 -
                                   lia::LinTerm::variable(Y) * 3,
                               lia::Cmp::Eq, lia::LinTerm(1)));
}

TEST(ProofQfTest, BooleanTheoryMixCertified) {
  // Disjunctions force CDCL learning, so the trace carries RUP-checked
  // learnt clauses alongside the Farkas-certified theory lemmas.
  lia::Arena A;
  lia::Var X = A.freshVar("x", 0, 10), Y = A.freshVar("y", 0, 10);
  lia::LinTerm TX = lia::LinTerm::variable(X), TY = lia::LinTerm::variable(Y);
  expectQfUnsatCertified(
      A, A.conj({A.disj({A.cmp(TX, lia::Cmp::Ge, lia::LinTerm(5)),
                         A.cmp(TY, lia::Cmp::Ge, lia::LinTerm(5))}),
                 A.cmp(TX + TY, lia::Cmp::Le, lia::LinTerm(3)),
                 A.disj({A.cmp(TX, lia::Cmp::Ge, lia::LinTerm(2)),
                         A.cmp(TY, lia::Cmp::Ge, lia::LinTerm(2))})}));
}

//===----------------------------------------------------------------------===//
// Assumption cores: the refuting-subset contract behind Final events.
//===----------------------------------------------------------------------===//

TEST(SatCoreTest, AssumptionCoreIsGenuinelyRefuting) {
  // Property: re-solving with only the returned core assumptions stays
  // Unsat (the core really is refuting), and across a randomized sweep
  // dropping a single core element can flip the answer to Sat — a
  // minimality smoke, not an exactness claim (the core is the negation
  // of the final conflict clause, not a minimum hitting set).
  std::mt19937 Rng(20250808);
  uint32_t CoresSeen = 0, SingleDropFlips = 0;
  for (int Iter = 0; Iter < 300; ++Iter) {
    lia::SatSolver S;
    const uint32_t N = 6;
    for (uint32_t V = 0; V < N; ++V)
      S.newVar();
    for (int C = 0; C < 15; ++C) {
      std::vector<lia::Lit> Clause;
      for (int K = 0; K < 3; ++K)
        Clause.push_back(lia::Lit(Rng() % N, Rng() % 2 != 0));
      S.addClause(Clause);
    }
    if (S.solve(nullptr) != lia::SatSolver::Res::Sat)
      continue; // globally unsat instances have no assumption cores
    std::vector<lia::Lit> Assumps;
    for (uint32_t V = 0; V < 4; ++V)
      Assumps.push_back(lia::Lit(Rng() % N, Rng() % 2 != 0));
    if (S.solve(nullptr, Assumps) != lia::SatSolver::Res::Unsat)
      continue;
    ASSERT_FALSE(S.globallyUnsat());
    std::vector<lia::Lit> Core = S.assumptionCore();
    ASSERT_FALSE(Core.empty());
    for (lia::Lit L : Core)
      EXPECT_TRUE(std::find(Assumps.begin(), Assumps.end(), L) !=
                  Assumps.end())
          << "core literal is not an assumption";
    // The core must still refute on its own.
    EXPECT_EQ(S.solve(nullptr, Core), lia::SatSolver::Res::Unsat);
    ++CoresSeen;
    for (size_t Drop = 0; Drop < Core.size(); ++Drop) {
      std::vector<lia::Lit> Sub;
      for (size_t I = 0; I < Core.size(); ++I)
        if (I != Drop)
          Sub.push_back(Core[I]);
      if (S.solve(nullptr, Sub) == lia::SatSolver::Res::Sat)
        ++SingleDropFlips;
    }
  }
  // The sweep must actually exercise the property, and minimality must
  // bite somewhere: at least one single-element drop flips to Sat.
  EXPECT_GT(CoresSeen, 10u);
  EXPECT_GT(SingleDropFlips, 0u);
}

//===----------------------------------------------------------------------===//
// Pipeline-level certification: CertifyUnsat and the TamperCert hook.
//===----------------------------------------------------------------------===//

TEST(PipelineCertifyTest, UnsatIsCertifiedEndToEnd) {
  Problem P;
  VarId X = P.strVar("x");
  P.assertInRe(X, "a*");
  P.assertIntAtom(strings::IntTerm::lenOf(X), lia::Cmp::Ge,
                  strings::IntTerm::constant(2));
  P.assertIntAtom(strings::IntTerm::lenOf(X), lia::Cmp::Le,
                  strings::IntTerm::constant(1));
  solver::SolveOptions O;
  O.TimeoutMs = 20000;
  O.CertifyUnsat = true;
  solver::SolveResult R = solver::solveProblem(P, O);
  ASSERT_EQ(R.V, Verdict::Unsat);
  EXPECT_EQ(R.Stats.UnsatsCertified, 1u);
  EXPECT_EQ(R.Stats.CertificationFailures, 0u);
  ASSERT_FALSE(R.CertText.empty());
  // The returned text is independently re-checkable, the postr_check way.
  Result<proof::Certificate> Parsed = proof::parse(R.CertText);
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.error();
  EXPECT_TRUE(proof::checkCertificate(*Parsed).Ok);
}

TEST(PipelineCertifyTest, SatProducesNoCertificate) {
  Problem P;
  VarId X = P.strVar("x");
  P.assertInRe(X, "(a|b){1,3}");
  solver::SolveOptions O;
  O.TimeoutMs = 20000;
  O.CertifyUnsat = true;
  solver::SolveResult R = solver::solveProblem(P, O);
  ASSERT_EQ(R.V, Verdict::Sat);
  EXPECT_EQ(R.Stats.UnsatsCertified, 0u);
  EXPECT_TRUE(R.CertText.empty());
}

TEST(PipelineCertifyTest, TamperedCertificateDemotesToUnknown) {
  Problem P;
  VarId X = P.strVar("x");
  P.assertInRe(X, "ab");
  P.assertDiseq({StrElem::var(X)}, {StrElem::lit("ab")});
  solver::SolveOptions O;
  O.TimeoutMs = 20000;
  O.CertifyUnsat = true;
  O.TamperCert = [](proof::Certificate &C) {
    for (proof::DisjunctCert &D : C.Disjuncts)
      if (!D.IsRule && !D.Proof.Steps.empty()) {
        D.Proof.Steps.pop_back();
        return;
      }
    C.Complete = false; // rule-only certificates: break completeness
  };
  solver::SolveResult R = solver::solveProblem(P, O);
  EXPECT_EQ(R.V, Verdict::Unknown);
  EXPECT_EQ(R.Stats.CertificationFailures, 1u);
  EXPECT_TRUE(R.Validation.Failed);
  EXPECT_EQ(R.Validation.Detail.rfind("certification failure:", 0), 0u)
      << R.Validation.Detail;
  // The rejected certificate is kept as evidence.
  EXPECT_FALSE(R.CertText.empty());
}

} // namespace
