//===- tests/TagautTest.cpp - Tag automaton & encoder tests -----------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
// The workhorse of the suite: every decision path of the MP solver is
// differential-tested against the brute-force enumeration oracle, and
// every Sat answer is validated against the direct semantics of Fig. 1.
//
//===----------------------------------------------------------------------===//

#include "regex/Regex.h"
#include "solver/BruteForce.h"
#include "solver/Semantics.h"
#include "tagaut/MpSolver.h"
#include "tagaut/Parikh.h"

#include <gtest/gtest.h>

#include <random>

using namespace postr;
using namespace postr::tagaut;
using automata::Nfa;
using solver::BruteForceOptions;
using solver::BruteForceResult;
using solver::solveBruteForce;

namespace {

//===----------------------------------------------------------------------===
// Parikh formula tests (Appendix A)
//===----------------------------------------------------------------------===

/// Wraps an NFA as a tag automaton with per-transition symbol tags (no
/// levels), for Parikh-only testing.
TagAutomaton wrapNfa(const Nfa &A, TagTable &Tags) {
  TagAutomaton Ta;
  Ta.addStates(A.numStates());
  for (uint32_t Q = 0; Q < A.numStates(); ++Q) {
    if (A.isInitial(Q))
      Ta.markInitial(Q);
    if (A.isFinal(Q))
      Ta.markFinal(Q);
  }
  uint32_t Idx = 0;
  for (const automata::Transition &T : A.transitions())
    Ta.addTransition({T.From, T.To, Idx++, /*AtMostOnce=*/false,
                      {Tags.intern(Tag::symbol(T.Sym))}});
  return Ta;
}

TEST(ParikhTest, AbStarCountsMatch) {
  // (ab)*: any model must have #a == #b.
  Nfa A(2);
  uint32_t Q0 = A.addState(), Q1 = A.addState();
  A.markInitial(Q0);
  A.markFinal(Q0);
  A.addTransition(Q0, 0, Q1);
  A.addTransition(Q1, 1, Q0);

  TagTable Tags;
  TagAutomaton Ta = wrapNfa(A, Tags);
  lia::Arena Arena;
  ParikhFormula Pf = buildParikhFormula(Ta, Arena, "t.");

  // Satisfiable alone.
  lia::QfResult R = lia::solveQF(Arena, Pf.Formula);
  ASSERT_EQ(R.V, Verdict::Sat);

  // Force 3 a's: then exactly 3 b's.
  lia::FormulaId F = Arena.conj(
      {Pf.Formula, Arena.cmp(Pf.tagTerm(Tags.intern(Tag::symbol(0))),
                             lia::Cmp::Eq, lia::LinTerm(3))});
  R = lia::solveQF(Arena, F);
  ASSERT_EQ(R.V, Verdict::Sat);
  EXPECT_EQ(Pf.tagTerm(Tags.intern(Tag::symbol(1))).eval(R.Model), 3);

  // Unequal counts are impossible.
  lia::FormulaId G = Arena.conj(
      {Pf.Formula,
       Arena.cmp(Pf.tagTerm(Tags.intern(Tag::symbol(0))), lia::Cmp::Ne,
                 Pf.tagTerm(Tags.intern(Tag::symbol(1))))});
  EXPECT_EQ(lia::solveQF(Arena, G).V, Verdict::Unsat);
}

TEST(ParikhTest, ConnectivityRulesOutFloatingCycles) {
  // Two components: initial/final state P with no transitions, plus a
  // detached cycle Q0 -a-> Q1 -a-> Q0. Without φ_Span the detached cycle
  // could carry flow; the formula must force its counts to zero.
  Nfa A(1);
  uint32_t P = A.addState(), Q0 = A.addState(), Q1 = A.addState();
  A.markInitial(P);
  A.markFinal(P);
  A.addTransition(Q0, 0, Q1);
  A.addTransition(Q1, 0, Q0);

  TagTable Tags;
  TagAutomaton Ta = wrapNfa(A, Tags);
  lia::Arena Arena;
  ParikhFormula Pf = buildParikhFormula(Ta, Arena, "t.");
  lia::FormulaId F = Arena.conj(
      {Pf.Formula, Arena.cmp(Pf.tagTerm(Tags.intern(Tag::symbol(0))),
                             lia::Cmp::Ge, lia::LinTerm(1))});
  EXPECT_EQ(lia::solveQF(Arena, F).V, Verdict::Unsat);
}

TEST(ParikhTest, DecodeRunRoundTrip) {
  std::mt19937 Rng(5150);
  for (int Iter = 0; Iter < 30; ++Iter) {
    // Random small NFA; solve Parikh with a "at least 2 transitions"
    // side constraint and replay the decoded run.
    Nfa A(2);
    uint32_t N = 2 + Rng() % 4;
    for (uint32_t I = 0; I < N; ++I)
      A.addState();
    for (uint32_t E = 0; E < N + 2; ++E)
      A.addTransition(Rng() % N, Rng() % 2, Rng() % N);
    A.markInitial(Rng() % N);
    A.markFinal(Rng() % N);

    TagTable Tags;
    TagAutomaton Ta = wrapNfa(A, Tags);
    lia::Arena Arena;
    ParikhFormula Pf = buildParikhFormula(Ta, Arena, "t.");
    lia::QfResult R = lia::solveQF(Arena, Pf.Formula);
    if (R.V != Verdict::Sat)
      continue; // empty language
    std::vector<uint32_t> Run = decodeRun(Ta, Pf, R.Model);
    // Replay: transitions must chain and end in a final state.
    if (!Run.empty()) {
      for (size_t I = 0; I + 1 < Run.size(); ++I)
        EXPECT_EQ(Ta.transitions()[Run[I]].To,
                  Ta.transitions()[Run[I + 1]].From);
      EXPECT_TRUE(Ta.isInitial(Ta.transitions()[Run.front()].From));
      EXPECT_TRUE(Ta.isFinal(Ta.transitions()[Run.back()].To));
    }
  }
}

//===----------------------------------------------------------------------===
// MP solver end-to-end on hand-crafted cases
//===----------------------------------------------------------------------===

/// Test fixture bundling an alphabet, variable languages from regexes,
/// and predicate construction.
struct Mp {
  Alphabet Sigma;
  std::map<VarId, Nfa> Langs;
  std::vector<PosPredicate> Preds;
  VarId NextVar = 0;

  Mp() {
    // Pre-intern a couple of letters so single-letter tests have a
    // non-degenerate alphabet even before regexes are added.
    Sigma.intern('a');
    Sigma.intern('b');
  }

  VarId var(const std::string &Regex) {
    VarId X = NextVar++;
    Result<regex::NodePtr> R = regex::parse(Regex);
    assert(R && "bad regex in test");
    regex::collectAlphabet(**R, Sigma);
    PendingRegex.emplace_back(X, std::move(*R));
    return X;
  }

  void finalize() {
    for (auto &[X, Node] : PendingRegex)
      Langs[X] = regex::compile(*Node, Sigma);
    PendingRegex.clear();
  }

  MpResult solve(const MpOptions &Opts = {}) {
    finalize();
    lia::Arena A;
    MpResult R = solveMP(A, Langs, Preds, Sigma.size(), nullptr, Opts);
    if (R.V == Verdict::Sat) {
      // Every Sat answer must decode to a model of the direct semantics
      // and respect the regular constraints.
      EXPECT_TRUE(solver::evalSystem(Preds, R.Assignment));
      for (const auto &[X, Lang] : Langs)
        EXPECT_TRUE(Lang.accepts(R.Assignment.at(X)))
            << "variable x" << X << " got a word outside its language";
    }
    return R;
  }

  std::vector<std::pair<VarId, regex::NodePtr>> PendingRegex;
};

TEST(MpSolverTest, TwoVarDiseqSatByLength) {
  Mp M;
  VarId X = M.var("a*"), Y = M.var("b");
  M.Preds.push_back({PredKind::Diseq, {X}, {Y}, {}});
  EXPECT_EQ(M.solve().V, Verdict::Sat);
}

TEST(MpSolverTest, TwoVarDiseqUnsatSingletons) {
  Mp M;
  VarId X = M.var("ab"), Y = M.var("ab");
  M.Preds.push_back({PredKind::Diseq, {X}, {Y}, {}});
  EXPECT_EQ(M.solve().V, Verdict::Unsat);
}

TEST(MpSolverTest, PaperFig2Languages) {
  // x ∈ (ab)*, y ∈ (ac)*: x ≠ y satisfiable (e.g. x=ab, y=ac or lengths).
  Mp M;
  VarId X = M.var("(ab)*"), Y = M.var("(ac)*");
  M.Preds.push_back({PredKind::Diseq, {X}, {Y}, {}});
  EXPECT_EQ(M.solve().V, Verdict::Sat);
}

TEST(MpSolverTest, EqualLengthForcedMismatch) {
  // x, y single symbols from disjoint classes: always a mismatch.
  Mp M;
  VarId X = M.var("a"), Y = M.var("b");
  M.Preds.push_back({PredKind::Diseq, {X}, {Y}, {}});
  EXPECT_EQ(M.solve().V, Verdict::Sat);
}

TEST(MpSolverTest, DiseqSameVarBothSides) {
  // x ≠ x is unsatisfiable.
  Mp M;
  VarId X = M.var("(a|b)*");
  M.Preds.push_back({PredKind::Diseq, {X}, {X}, {}});
  EXPECT_EQ(M.solve().V, Verdict::Unsat);
}

TEST(MpSolverTest, PaperFootnote8Example) {
  // xy ≠ yx with x ∈ ab|a…, y ∈ a: footnote 8's mismatch-in-one-variable
  // case. With x=ab, y=a: xy=aba, yx=aab differ.
  Mp M;
  VarId X = M.var("ab"), Y = M.var("a");
  M.Preds.push_back({PredKind::Diseq, {X, Y}, {Y, X}, {}});
  EXPECT_EQ(M.solve().V, Verdict::Sat);
}

TEST(MpSolverTest, CommutingPowersUnsat) {
  // xy ≠ yx with x ∈ a{2}, y ∈ a{3}: both sides are a^5 — Unsat.
  Mp M;
  VarId X = M.var("aa"), Y = M.var("aaa");
  M.Preds.push_back({PredKind::Diseq, {X, Y}, {Y, X}, {}});
  EXPECT_EQ(M.solve().V, Verdict::Unsat);
}

TEST(MpSolverTest, CommutingStarsUnsat) {
  // xy ≠ yx with x, y ∈ a*: words over a unary alphabet commute — Unsat.
  Mp M;
  VarId X = M.var("a*"), Y = M.var("a*");
  M.Preds.push_back({PredKind::Diseq, {X, Y}, {Y, X}, {}});
  EXPECT_EQ(M.solve().V, Verdict::Unsat);
}

TEST(MpSolverTest, NotPrefixBasic) {
  Mp M;
  VarId X = M.var("a"), Y = M.var("ab*");
  // a IS a prefix of every word in ab*: ¬prefixof(x, y) is Unsat.
  M.Preds.push_back({PredKind::NotPrefix, {X}, {Y}, {}});
  EXPECT_EQ(M.solve().V, Verdict::Unsat);
}

TEST(MpSolverTest, NotPrefixSatByLongerLhs) {
  Mp M;
  VarId X = M.var("aa+"), Y = M.var("a");
  M.Preds.push_back({PredKind::NotPrefix, {X}, {Y}, {}});
  EXPECT_EQ(M.solve().V, Verdict::Sat);
}

TEST(MpSolverTest, NotSuffixBasic) {
  Mp M;
  // b is a suffix of every word of (a|b)*b: Unsat.
  VarId X = M.var("b"), Y = M.var("(a|b)*b");
  M.Preds.push_back({PredKind::NotSuffix, {X}, {Y}, {}});
  EXPECT_EQ(M.solve().V, Verdict::Unsat);
}

TEST(MpSolverTest, NotSuffixSat) {
  Mp M;
  VarId X = M.var("a|b"), Y = M.var("(a|b)*b");
  // Choose x=a: a is not a suffix of ...b.
  MpResult R = M.solve();
  M.Preds.push_back({PredKind::NotSuffix, {X}, {Y}, {}});
  EXPECT_EQ(M.solve().V, Verdict::Sat);
}

TEST(MpSolverTest, SystemOfTwoDiseqs) {
  // Fig. 4's system: x ≠ y ∧ x ≠ z, all single symbols — needs the copy
  // machinery when the mismatch in x is shared.
  Mp M;
  VarId X = M.var("a|b"), Y = M.var("a"), Z = M.var("b");
  M.Preds.push_back({PredKind::Diseq, {X}, {Y}, {}});
  M.Preds.push_back({PredKind::Diseq, {X}, {Z}, {}});
  EXPECT_EQ(M.solve().V, Verdict::Unsat);
}

TEST(MpSolverTest, SystemOfTwoDiseqsSat) {
  Mp M;
  VarId X = M.var("a|b|c"), Y = M.var("a"), Z = M.var("b");
  M.Preds.push_back({PredKind::Diseq, {X}, {Y}, {}});
  M.Preds.push_back({PredKind::Diseq, {X}, {Z}, {}});
  MpResult R = M.solve();
  ASSERT_EQ(R.V, Verdict::Sat);
  EXPECT_EQ(R.Assignment.at(X), Word{M.Sigma.lookup('c').value()});
}

TEST(MpSolverTest, ThreeSatStyleSystem) {
  // The Lemma 7.2 reduction shape: y1y2y3 ≠ 010 etc. encoded with 0/1
  // variables; here (y1 ∨ ¬y2) ∧ (¬y1 ∨ y2) — satisfiable.
  Mp M;
  VarId Y1 = M.var("a|b"), Y2 = M.var("a|b");
  VarId ZeroOne = M.var("ab"); // constant word "ab" ~ pattern 01
  VarId OneZero = M.var("ba");
  M.Preds.push_back({PredKind::Diseq, {Y1, Y2}, {ZeroOne}, {}});
  M.Preds.push_back({PredKind::Diseq, {Y1, Y2}, {OneZero}, {}});
  EXPECT_EQ(M.solve().V, Verdict::Sat);
}

TEST(MpSolverTest, StrAtEqBasic) {
  // x = str.at(y, 1) with y ∈ ab|ba, x ∈ a: forces y = ba.
  Mp M;
  VarId X = M.var("a"), Y = M.var("ab|ba");
  PosPredicate P{PredKind::StrAtEq, {X}, {Y}, lia::LinTerm(1)};
  M.Preds.push_back(P);
  MpResult R = M.solve();
  ASSERT_EQ(R.V, Verdict::Sat);
  Word Ba{M.Sigma.lookup('b').value(), M.Sigma.lookup('a').value()};
  EXPECT_EQ(R.Assignment.at(Y), Ba);
}

TEST(MpSolverTest, StrAtEqOutOfBoundsNeedsEpsilon) {
  // x = str.at(y, 5) with |y| <= 2: str.at yields ε, so x must be ε.
  Mp M;
  VarId X = M.var("a?"), Y = M.var("(a|b){0,2}");
  M.Preds.push_back({PredKind::StrAtEq, {X}, {Y}, lia::LinTerm(5)});
  MpResult R = M.solve();
  ASSERT_EQ(R.V, Verdict::Sat);
  EXPECT_TRUE(R.Assignment.at(X).empty());
}

TEST(MpSolverTest, StrAtEqSharedVariable) {
  // x = str.at(x, 0) with x ∈ a|aa: both satisfiable only via |x| = 1.
  Mp M;
  VarId X = M.var("a|aa");
  M.Preds.push_back({PredKind::StrAtEq, {X}, {X}, lia::LinTerm(0)});
  MpResult R = M.solve();
  ASSERT_EQ(R.V, Verdict::Sat);
  EXPECT_EQ(R.Assignment.at(X).size(), 1u);
}

TEST(MpSolverTest, StrAtNeBasic) {
  // x ≠ str.at(y, 0), x ∈ a, y ∈ a|b: pick y = b.
  Mp M;
  VarId X = M.var("a"), Y = M.var("a|b");
  M.Preds.push_back({PredKind::StrAtNe, {X}, {Y}, lia::LinTerm(0)});
  MpResult R = M.solve();
  ASSERT_EQ(R.V, Verdict::Sat);
  EXPECT_EQ(R.Assignment.at(Y), Word{M.Sigma.lookup('b').value()});
}

TEST(MpSolverTest, StrAtNeUnsat) {
  // x ≠ str.at(y, 0) with x ∈ a, y ∈ a+ is Unsat: str.at(y,0) = a = x.
  Mp M;
  VarId X = M.var("a"), Y = M.var("a+");
  M.Preds.push_back({PredKind::StrAtNe, {X}, {Y}, lia::LinTerm(0)});
  EXPECT_EQ(M.solve().V, Verdict::Unsat);
}

TEST(MpSolverTest, LengthConstraintsViaCallback) {
  // x ≠ y with x,y ∈ a* and len(x) = len(y): only mismatches could help,
  // but the unary alphabet has none — Unsat.
  Mp M;
  VarId X = M.var("a*"), Y = M.var("a*");
  M.Preds.push_back({PredKind::Diseq, {X}, {Y}, {}});
  M.finalize();
  lia::Arena A;
  MpResult R = solveMP(
      A, M.Langs, M.Preds, M.Sigma.size(),
      [&](lia::Arena &Ar, const std::map<VarId, lia::LinTerm> &Len) {
        return Ar.cmp(Len.at(X), lia::Cmp::Eq, Len.at(Y));
      });
  EXPECT_EQ(R.V, Verdict::Unsat);

  // Same but over (a|b)*: now a mismatch exists.
  Mp M2;
  VarId X2 = M2.var("(a|b)*"), Y2 = M2.var("(a|b)*");
  M2.Preds.push_back({PredKind::Diseq, {X2}, {Y2}, {}});
  M2.finalize();
  lia::Arena A2;
  MpResult R2 = solveMP(
      A2, M2.Langs, M2.Preds, M2.Sigma.size(),
      [&](lia::Arena &Ar, const std::map<VarId, lia::LinTerm> &Len) {
        return Ar.conj({Ar.cmp(Len.at(X2), lia::Cmp::Eq, Len.at(Y2)),
                        Ar.cmp(Len.at(X2), lia::Cmp::Ge, lia::LinTerm(2))});
      });
  ASSERT_EQ(R2.V, Verdict::Sat);
  EXPECT_EQ(R2.Assignment.at(X2).size(), R2.Assignment.at(Y2).size());
  EXPECT_GE(R2.Assignment.at(X2).size(), 2u);
  EXPECT_NE(R2.Assignment.at(X2), R2.Assignment.at(Y2));
}

TEST(MpSolverTest, EmptyLanguageIsUnsat) {
  Mp M;
  VarId X = M.var("a"), Y = M.var("b");
  M.finalize();
  // Intersection trick: give X an empty language directly.
  M.Langs[X] = automata::intersect(M.Langs.at(X), M.Langs.at(Y));
  lia::Arena A;
  MpResult R = solveMP(A, M.Langs, M.Preds, M.Sigma.size());
  EXPECT_EQ(R.V, Verdict::Unsat);
}

TEST(MpSolverTest, NoPredicatesDecodesRegularModel) {
  Mp M;
  VarId X = M.var("(ab)+");
  MpResult R = M.solve();
  ASSERT_EQ(R.V, Verdict::Sat);
  EXPECT_TRUE(M.Langs.at(X).accepts(R.Assignment.at(X)));
  EXPECT_GE(R.Assignment.at(X).size(), 2u);
}

//===----------------------------------------------------------------------===
// ¬contains (Sec. 6.4)
//===----------------------------------------------------------------------===

TEST(NotContainsTest, TrivialByLength) {
  // ¬contains(x, y) with |x| forced above |y|: trivially Sat.
  Mp M;
  VarId X = M.var("aaa"), Y = M.var("b{0,2}");
  M.Preds.push_back({PredKind::NotContains, {X}, {Y}, {}});
  EXPECT_EQ(M.solve().V, Verdict::Sat);
}

TEST(NotContainsTest, SimpleSat) {
  // ¬contains(x, y), x ∈ a|b, y ∈ (ab)*: choose x=b? No — b occurs in
  // ab. Choose y = ε: contains(x, ε) fails for any non-empty x. Sat.
  Mp M;
  VarId X = M.var("a|b"), Y = M.var("(ab)*");
  M.Preds.push_back({PredKind::NotContains, {X}, {Y}, {}});
  EXPECT_EQ(M.solve().V, Verdict::Sat);
}

TEST(NotContainsTest, UnsatSingletonFactor) {
  // ¬contains(x, y) with x ∈ a, y ∈ aa: "a" occurs in "aa" — Unsat.
  Mp M;
  VarId X = M.var("a"), Y = M.var("aa");
  M.Preds.push_back({PredKind::NotContains, {X}, {Y}, {}});
  EXPECT_EQ(M.solve().V, Verdict::Unsat);
}

TEST(NotContainsTest, EpsilonNeedleUnsat) {
  // ε is contained in everything.
  Mp M;
  VarId X = M.var(""), Y = M.var("a*");
  M.Preds.push_back({PredKind::NotContains, {X}, {Y}, {}});
  EXPECT_EQ(M.solve().V, Verdict::Unsat);
}

TEST(NotContainsTest, PrimitiveWordStyle) {
  // The position-hard flavour (footnote 10): ¬contains(xy, yx) over
  // flat languages x ∈ a+, y ∈ b+. xy = a^n b^m, yx = b^m a^n; for
  // n=m=1: ab vs ba — ab does not occur in ba. Sat.
  Mp M;
  VarId X = M.var("a+"), Y = M.var("b+");
  M.Preds.push_back({PredKind::NotContains, {X, Y}, {Y, X}, {}});
  EXPECT_EQ(M.solve().V, Verdict::Sat);
}

TEST(NotContainsTest, ContainedPowersUnsat) {
  // ¬contains(x, xx): x always occurs in xx — Unsat (x ∈ a{1,2} keeps
  // the search space tiny).
  Mp M;
  VarId X = M.var("a{1,2}");
  M.Preds.push_back({PredKind::NotContains, {X}, {X, X}, {}});
  EXPECT_EQ(M.solve().V, Verdict::Unsat);
}

TEST(NotContainsTest, NonFlatReportsUnknown) {
  Mp M;
  VarId X = M.var("(a|b)*"), Y = M.var("a");
  M.Preds.push_back({PredKind::NotContains, {X}, {Y}, {}});
  M.finalize();
  lia::Arena A;
  MpResult R = solveMP(A, M.Langs, M.Preds, M.Sigma.size());
  EXPECT_EQ(R.V, Verdict::Unknown);
}

//===----------------------------------------------------------------------===
// Randomized differential suite against the brute-force oracle
//===----------------------------------------------------------------------===

struct DiffParams {
  uint32_t Seed;
  uint32_t NumPreds;
  bool WithNotContains;
};

class MpDifferentialTest : public ::testing::TestWithParam<DiffParams> {};

/// Small regex pool over {a,b} whose languages are all flat, so that the
/// sweep can include ¬contains.
const char *FlatPool[] = {"a",  "b",      "ab",     "a*",      "b*",
                          "a+", "(ab)*",  "ab|ba",  "a|b",     "a{1,2}",
                          "",   "(ab)+b", "a?b",    "(ba)*a?", "b{2}"};
/// Pool with non-flat entries for the diseq-only sweeps.
const char *MixedPool[] = {"a",      "b",     "ab",   "(a|b)*", "a*",
                           "(ab)*",  "a|b",   "a+b*", "(a|b){0,2}",
                           "(ab|b)*", "b(a|b)*"};

TEST_P(MpDifferentialTest, AgreesWithBruteForce) {
  DiffParams Params = GetParam();
  std::mt19937 Rng(Params.Seed);
  int Rounds = Params.WithNotContains ? 12 : 30;

  for (int Iter = 0; Iter < Rounds; ++Iter) {
    Mp M;
    uint32_t NumVars = 1 + Rng() % 3;
    std::vector<VarId> Vars;
    for (uint32_t V = 0; V < NumVars; ++V) {
      const char *Pattern;
      if (Params.WithNotContains)
        Pattern = FlatPool[Rng() % (sizeof(FlatPool) / sizeof(char *))];
      else
        Pattern = MixedPool[Rng() % (sizeof(MixedPool) / sizeof(char *))];
      Vars.push_back(M.var(Pattern));
    }
    auto RandOccs = [&](uint32_t MaxLen) {
      std::vector<VarId> Occs;
      uint32_t Len = 1 + Rng() % MaxLen;
      for (uint32_t I = 0; I < Len; ++I)
        Occs.push_back(Vars[Rng() % Vars.size()]);
      return Occs;
    };
    for (uint32_t P = 0; P < Params.NumPreds; ++P) {
      uint32_t Kind = Rng() % (Params.WithNotContains ? 4 : 5);
      switch (Kind) {
      case 0:
        M.Preds.push_back({PredKind::Diseq, RandOccs(2), RandOccs(2), {}});
        break;
      case 1:
        M.Preds.push_back(
            {PredKind::NotPrefix, RandOccs(2), RandOccs(2), {}});
        break;
      case 2:
        M.Preds.push_back(
            {PredKind::NotSuffix, RandOccs(2), RandOccs(2), {}});
        break;
      case 3:
        if (Params.WithNotContains) {
          M.Preds.push_back(
              {PredKind::NotContains, RandOccs(2), RandOccs(2), {}});
        } else {
          M.Preds.push_back(
              {PredKind::StrAtNe,
               {Vars[Rng() % Vars.size()]},
               RandOccs(2),
               lia::LinTerm(static_cast<int64_t>(Rng() % 3))});
        }
        break;
      default:
        M.Preds.push_back({PredKind::StrAtEq,
                           {Vars[Rng() % Vars.size()]},
                           RandOccs(2),
                           lia::LinTerm(static_cast<int64_t>(Rng() % 3))});
        break;
      }
    }

    M.finalize();
    lia::Arena A;
    MpOptions Opts;
    Opts.TimeoutMs = 30000;
    MpResult R = solveMP(A, M.Langs, M.Preds, M.Sigma.size(), nullptr,
                         Opts);
    ASSERT_NE(R.V, Verdict::Unknown) << "seed " << Params.Seed << " iter "
                                     << Iter;

    BruteForceOptions BfOpts;
    BfOpts.MaxWordLen = 4;
    BruteForceResult Bf = solveBruteForce(M.Langs, M.Preds, BfOpts);

    if (R.V == Verdict::Sat) {
      // Validate the produced model directly — the strongest check.
      EXPECT_TRUE(solver::evalSystem(M.Preds, R.Assignment))
          << "seed " << Params.Seed << " iter " << Iter;
      for (const auto &[X, Lang] : M.Langs)
        EXPECT_TRUE(Lang.accepts(R.Assignment.at(X)));
      // And the oracle must not prove bounded-exhaustive absence when
      // our model is itself within the bound.
      bool WithinBound = true;
      for (const auto &[X, W] : R.Assignment)
        if (W.size() > BfOpts.MaxWordLen)
          WithinBound = false;
      if (WithinBound && Bf.V == Verdict::Unsat)
        ADD_FAILURE() << "oracle missed our in-bound model; seed "
                      << Params.Seed << " iter " << Iter;
    } else {
      EXPECT_NE(Bf.V, Verdict::Sat)
          << "solver said Unsat but oracle found a model; seed "
          << Params.Seed << " iter " << Iter;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MpDifferentialTest,
    ::testing::Values(DiffParams{101, 1, false}, DiffParams{102, 1, false},
                      DiffParams{103, 2, false}, DiffParams{104, 2, false},
                      DiffParams{105, 3, false}, DiffParams{106, 3, false},
                      DiffParams{201, 1, true}, DiffParams{202, 1, true},
                      DiffParams{203, 2, true}),
    [](const ::testing::TestParamInfo<DiffParams> &Info) {
      return "seed" + std::to_string(Info.param.Seed) + "_preds" +
             std::to_string(Info.param.NumPreds) +
             (Info.param.WithNotContains ? "_nc" : "");
    });

} // namespace
