//===- tests/StringsTest.cpp - Normalization tests ----------------------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
// The Sec. 2 normal-form transformation: positive prefixof / suffixof /
// contains become word equations with fresh variables (step (i)),
// literals become singleton-language variables (footnote 3), and every
// variable ends up with exactly one NFA (step (ii)).
//
//===----------------------------------------------------------------------===//

#include "strings/Eval.h"
#include "strings/Normalize.h"

#include <gtest/gtest.h>

using namespace postr;
using namespace postr::strings;

namespace {

TEST(NormalizeTest, EveryVariableGetsOneLanguage) {
  Problem P;
  VarId X = P.strVar("x");
  P.assertInRe(X, "a*");
  P.assertInRe(X, "(aa)*"); // two memberships must intersect
  NormalForm N = normalize(P);
  ASSERT_EQ(N.Langs.count(X), 1u);
  EXPECT_TRUE(N.Langs.at(X).accepts({}));
  Word Aa = {N.Sigma.lookup('a').value(), N.Sigma.lookup('a').value()};
  EXPECT_TRUE(N.Langs.at(X).accepts(Aa));
  Word A = {N.Sigma.lookup('a').value()};
  EXPECT_FALSE(N.Langs.at(X).accepts(A)) << "intersection not applied";
}

TEST(NormalizeTest, PositiveContainsBecomesEquation) {
  Problem P;
  VarId X = P.strVar("x"), Y = P.strVar("y");
  P.assertInRe(X, "(a|b)*");
  P.assertInRe(Y, "(a|b)*");
  P.assertPred(AssertKind::Contains, {StrElem::var(X)}, {StrElem::var(Y)});
  NormalForm N = normalize(P);
  // y = z·x·z′ for fresh z, z′ (Sec. 2 step (i)).
  ASSERT_EQ(N.Equations.size(), 1u);
  EXPECT_EQ(N.Equations[0].Lhs, (std::vector<VarId>{Y}));
  EXPECT_EQ(N.Equations[0].Rhs.size(), 3u);
  EXPECT_TRUE(N.Preds.empty());
}

TEST(NormalizeTest, NegativePredicatesStayInP) {
  Problem P;
  VarId X = P.strVar("x"), Y = P.strVar("y");
  P.assertInRe(X, "a*");
  P.assertInRe(Y, "b*");
  P.assertPred(AssertKind::NotPrefixof, {StrElem::var(X)},
               {StrElem::var(Y)});
  P.assertDiseq({StrElem::var(X)}, {StrElem::var(Y)});
  NormalForm N = normalize(P);
  EXPECT_TRUE(N.Equations.empty());
  ASSERT_EQ(N.Preds.size(), 2u);
  EXPECT_EQ(N.Preds[0].Kind, tagaut::PredKind::NotPrefix);
  EXPECT_EQ(N.Preds[1].Kind, tagaut::PredKind::Diseq);
}

TEST(NormalizeTest, LiteralsBecomeSingletonVariables) {
  Problem P;
  VarId X = P.strVar("x");
  P.assertInRe(X, "(a|b)*");
  P.assertDiseq({StrElem::var(X)}, {StrElem::lit("ab")});
  NormalForm N = normalize(P);
  ASSERT_EQ(N.Preds.size(), 1u);
  ASSERT_EQ(N.Preds[0].Rhs.size(), 1u);
  VarId LitVar = N.Preds[0].Rhs[0];
  EXPECT_NE(LitVar, X);
  Word Ab = {N.Sigma.lookup('a').value(), N.Sigma.lookup('b').value()};
  EXPECT_TRUE(N.Langs.at(LitVar).accepts(Ab));
  EXPECT_FALSE(N.Langs.at(LitVar).accepts({}));
}

TEST(NormalizeTest, SentinelSymbolExtendsAlphabet) {
  // A disequality between variables over disjoint alphabets can only be
  // witnessed by length or by the letters themselves; the normal form
  // must keep the effective alphabet large enough for a fresh-letter
  // witness (DESIGN.md "alphabet closure").
  Problem P;
  VarId X = P.strVar("x");
  P.assertInRe(X, "a");
  P.assertDiseq({StrElem::var(X)}, {StrElem::lit("a")});
  NormalForm N = normalize(P);
  EXPECT_GE(N.Sigma.size(), 2u) << "no room for a witness symbol";
}

TEST(NormalizeTest, IntAtomsAndLenTerms) {
  Problem P;
  VarId X = P.strVar("x");
  IntVarId K = P.intVar("k");
  P.assertInRe(X, "a*");
  P.assertIntAtom(IntTerm::lenOf(X) + IntTerm::constant(1), lia::Cmp::Le,
                  IntTerm::intVar(K));
  NormalForm N = normalize(P);
  ASSERT_EQ(N.IntAtoms.size(), 1u);
  EXPECT_EQ(N.IntAtoms[0].Op, lia::Cmp::Le);
  EXPECT_EQ(N.NumIntVars, 1u);
}

TEST(EvaluatorTest, DirectSemanticsOfFig1) {
  // Spot-check the Fig. 1 semantics through the concrete evaluator.
  Problem P;
  VarId X = P.strVar("x"), Y = P.strVar("y");
  P.assertInRe(X, "(a|b)*");
  P.assertInRe(Y, "(a|b)*");
  P.assertPred(AssertKind::Prefixof, {StrElem::var(X)}, {StrElem::var(Y)});
  P.assertPred(AssertKind::NotContains, {StrElem::lit("bb")},
               {StrElem::var(Y)});
  NormalForm N = normalize(P);
  ConcreteEvaluator Eval(P, N.Sigma);
  Symbol A = N.Sigma.lookup('a').value(), B = N.Sigma.lookup('b').value();
  EXPECT_TRUE(Eval.evalAll({{X, {A}}, {Y, {A, B, A}}}, {}));
  EXPECT_FALSE(Eval.evalAll({{X, {B}}, {Y, {A, B, A}}}, {}));   // not prefix
  EXPECT_FALSE(Eval.evalAll({{X, {A}}, {Y, {A, B, B}}}, {}));   // contains bb
}

} // namespace
