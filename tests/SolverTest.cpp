//===- tests/SolverTest.cpp - End-to-end pipeline tests ----------------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
// End-to-end checks of the Z3-Noodler-pos pipeline (normalize →
// stabilize → tag/LIA), the baselines, and cross-solver agreement on the
// benchmark generators.
//
//===----------------------------------------------------------------------===//

#include "smtlib/Reader.h"
#include "solver/Baselines.h"
#include "solver/PositionSolver.h"
#include "strings/Eval.h"

#include <gtest/gtest.h>

#include <random>

using namespace postr;
using solver::SolveOptions;
using solver::SolveResult;
using strings::AssertKind;
using strings::IntTerm;
using strings::Problem;
using strings::StrElem;

namespace {

SolveResult solve(const Problem &P, uint64_t TimeoutMs = 20000) {
  SolveOptions Opts;
  Opts.TimeoutMs = TimeoutMs;
  return solver::solveProblem(P, Opts);
}

TEST(PipelineTest, LiteralDisequalitySat) {
  Problem P;
  VarId X = P.strVar("x");
  P.assertInRe(X, "(a|b){1,3}");
  P.assertDiseq({StrElem::var(X)}, {StrElem::lit("ab")});
  EXPECT_EQ(solve(P).V, Verdict::Sat);
}

TEST(PipelineTest, LiteralDisequalityUnsat) {
  // x forced to the single word "ab" and x != "ab".
  Problem P;
  VarId X = P.strVar("x");
  P.assertInRe(X, "ab");
  P.assertDiseq({StrElem::var(X)}, {StrElem::lit("ab")});
  EXPECT_EQ(solve(P).V, Verdict::Unsat);
}

TEST(PipelineTest, EquationPlusDisequality) {
  // The paper's flagship combination: E ∧ R ∧ P. uv = vu forces sharing;
  // u != v remains satisfiable (different powers).
  Problem P;
  VarId U = P.strVar("u"), V = P.strVar("v");
  P.assertInRe(U, "a*");
  P.assertInRe(V, "a*");
  P.assertWordEq({StrElem::var(U), StrElem::var(V)},
                 {StrElem::var(V), StrElem::var(U)});
  P.assertDiseq({StrElem::var(U)}, {StrElem::var(V)});
  EXPECT_EQ(solve(P).V, Verdict::Sat);
}

TEST(PipelineTest, PositivePredicatesBecomeEquations) {
  // prefixof + suffixof sandwich: x starts with "ab" and ends with "ba"
  // within length 4 — e.g. "abba".
  Problem P;
  VarId X = P.strVar("x");
  P.assertInRe(X, "(a|b){0,4}");
  P.assertPred(AssertKind::Prefixof, {StrElem::lit("ab")},
               {StrElem::var(X)});
  P.assertPred(AssertKind::Suffixof, {StrElem::lit("ba")},
               {StrElem::var(X)});
  SolveResult R = solve(P);
  ASSERT_EQ(R.V, Verdict::Sat);
  const Word &W = R.Words.at(X);
  EXPECT_GE(W.size(), 2u);
}

TEST(PipelineTest, LengthConstraintInteraction) {
  Problem P;
  VarId X = P.strVar("x"), Y = P.strVar("y");
  P.assertInRe(X, "a*");
  P.assertInRe(Y, "b*");
  P.assertDiseq({StrElem::var(X)}, {StrElem::var(Y)});
  // Force |x| = |y| = 0: then x = y = ε and the disequality dies.
  P.assertIntAtom(IntTerm::lenOf(X) + IntTerm::lenOf(Y), lia::Cmp::Le,
                  IntTerm::constant(0));
  EXPECT_EQ(solve(P).V, Verdict::Unsat);
}

TEST(PipelineTest, StrAtThroughPipeline) {
  Problem P;
  VarId X = P.strVar("x");
  P.assertInRe(X, "(a|b){3}");
  // x[1] = 'b' and x != "aba" and x[0] != 'b'.
  P.assertStrAt(true, StrElem::lit("b"), {StrElem::var(X)},
                IntTerm::constant(1));
  P.assertStrAt(false, StrElem::lit("b"), {StrElem::var(X)},
                IntTerm::constant(0));
  P.assertDiseq({StrElem::var(X)}, {StrElem::lit("aba")});
  SolveResult R = solve(P);
  ASSERT_EQ(R.V, Verdict::Sat);
  EXPECT_EQ(R.Words.at(X).size(), 3u);
}

TEST(PipelineTest, ModelValidatesAgainstConcreteSemantics) {
  Problem P;
  VarId X = P.strVar("x"), Y = P.strVar("y");
  P.assertInRe(X, "(ab|ba)+");
  P.assertInRe(Y, "(a|b){2}");
  P.assertPred(AssertKind::NotPrefixof, {StrElem::var(Y)},
               {StrElem::var(X)});
  SolveResult R = solve(P);
  ASSERT_EQ(R.V, Verdict::Sat);
  // solveProblem(ValidateModels=true by default) already cross-checks;
  // re-validate explicitly through the public evaluator.
  strings::NormalForm N = strings::normalize(P);
  strings::ConcreteEvaluator Eval(P, N.Sigma);
  std::map<VarId, Word> Strs(R.Words.begin(), R.Words.end());
  std::map<strings::IntVarId, int64_t> Ints(R.Ints.begin(), R.Ints.end());
  EXPECT_TRUE(Eval.evalAll(Strs, Ints));
}

TEST(PipelineTest, CommutingPowersUnsatEndToEnd) {
  Problem P;
  VarId X = P.strVar("x"), Y = P.strVar("y");
  P.assertInRe(X, "(abc)*");
  P.assertInRe(Y, "(abc)*");
  P.assertDiseq({StrElem::var(X), StrElem::var(Y)},
                {StrElem::var(Y), StrElem::var(X)});
  EXPECT_EQ(solve(P).V, Verdict::Unsat);
}

TEST(PipelineTest, NotContainsRotationUnsatEndToEnd) {
  Problem P;
  VarId X = P.strVar("x"), Y = P.strVar("y");
  P.assertInRe(X, "(ab)*");
  P.assertInRe(Y, "(ab)*");
  P.assertPred(AssertKind::NotContains,
               {StrElem::var(X), StrElem::var(Y)},
               {StrElem::var(Y), StrElem::var(X)});
  EXPECT_EQ(solve(P).V, Verdict::Unsat);
}

//===----------------------------------------------------------------------===
// Baselines
//===----------------------------------------------------------------------===

TEST(BaselineTest, EnumFindsEasySat) {
  Problem P;
  VarId X = P.strVar("x");
  P.assertInRe(X, "(a|b){1,2}");
  P.assertDiseq({StrElem::var(X)}, {StrElem::lit("a")});
  solver::EnumOptions O;
  O.TimeoutMs = 5000;
  EXPECT_EQ(solver::solveEnum(P, O).V, Verdict::Sat);
}

TEST(BaselineTest, EnumCannotProveUnboundedUnsat) {
  // Commuting powers again: enum has infinitely many assignments to try.
  Problem P;
  VarId X = P.strVar("x"), Y = P.strVar("y");
  P.assertInRe(X, "(ab)*");
  P.assertInRe(Y, "(ab)*");
  P.assertDiseq({StrElem::var(X), StrElem::var(Y)},
                {StrElem::var(Y), StrElem::var(X)});
  solver::EnumOptions O;
  O.TimeoutMs = 1000;
  EXPECT_NE(solver::solveEnum(P, O).V, Verdict::Sat);
}

TEST(BaselineTest, EqReductionAgreesOnEasyCases) {
  for (int Case = 0; Case < 2; ++Case) {
    Problem P;
    VarId X = P.strVar("x");
    P.assertInRe(X, Case == 0 ? "ab" : "(a|b){1,2}");
    P.assertDiseq({StrElem::var(X)}, {StrElem::lit("ab")});
    solver::EqReductionOptions O;
    O.TimeoutMs = 10000;
    Verdict Expect = Case == 0 ? Verdict::Unsat : Verdict::Sat;
    EXPECT_EQ(solver::solveEqReduction(P, O).V, Expect) << Case;
  }
}

//===----------------------------------------------------------------------===
// Cross-solver differential on small random pipelines
//===----------------------------------------------------------------------===

class PipelineDifferential : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PipelineDifferential, SolversNeverContradict) {
  std::mt19937 Rng(GetParam());
  static const char *Regexes[] = {"(a|b){0,2}", "a*", "ab|ba", "b{1,2}"};
  static const char *Lits[] = {"a", "b", "ab", "ba"};
  for (int Iter = 0; Iter < 8; ++Iter) {
    Problem P;
    VarId X = P.strVar("x"), Y = P.strVar("y");
    P.assertInRe(X, Regexes[Rng() % 4]);
    P.assertInRe(Y, Regexes[Rng() % 4]);
    for (int A = 0; A < 2; ++A) {
      const char *Lit = Lits[Rng() % 4];
      switch (Rng() % 4) {
      case 0:
        P.assertDiseq({StrElem::var(X)},
                      {StrElem::var(Y), StrElem::lit(Lit)});
        break;
      case 1:
        P.assertPred(AssertKind::NotPrefixof, {StrElem::lit(Lit)},
                     {StrElem::var(X)});
        break;
      case 2:
        P.assertWordEq({StrElem::var(X), StrElem::var(Y)},
                       {StrElem::var(Y), StrElem::lit(Lit)});
        break;
      default:
        P.assertPred(AssertKind::Suffixof, {StrElem::lit(Lit)},
                     {StrElem::var(Y)});
        break;
      }
    }
    SolveResult Ours = solve(P, 15000);
    solver::EnumOptions EO;
    EO.TimeoutMs = 3000;
    EO.MaxWordLen = 4;
    SolveResult Enum = solver::solveEnum(P, EO);
    // Never a hard contradiction; enum-Sat implies we cannot say Unsat,
    // and vice versa.
    if (Ours.V == Verdict::Sat)
      EXPECT_NE(Enum.V, Verdict::Unsat) << "iter " << Iter;
    if (Ours.V == Verdict::Unsat)
      EXPECT_NE(Enum.V, Verdict::Sat) << "iter " << Iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PipelineDifferential,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u));

//===----------------------------------------------------------------------===
// Parallel disjunct pool
//===----------------------------------------------------------------------===

TEST(PipelineTest, ParallelPoolVerdictsMatchSerial) {
  // Word equations fan stabilization out into several disjuncts; the
  // pool must produce the same verdict as the serial loop at any thread
  // count (models may differ — any satisfied disjunct is a witness).
  // Three fixed shapes: multi-disjunct Sat, Unsat, and ε-heavy Sat.
  auto MkSat = [] {
    Problem P;
    VarId X = P.strVar("x"), Y = P.strVar("y");
    P.assertInRe(X, "a*");
    P.assertInRe(Y, "a*");
    P.assertWordEq({StrElem::var(X), StrElem::var(Y)},
                   {StrElem::var(Y), StrElem::var(X)});
    P.assertDiseq({StrElem::var(X)}, {StrElem::var(Y)});
    return P;
  };
  auto MkUnsat = [] {
    Problem P;
    VarId X = P.strVar("x"), Y = P.strVar("y");
    P.assertInRe(X, "ab");
    P.assertInRe(Y, "(a|b){0,2}");
    P.assertWordEq({StrElem::var(X)}, {StrElem::var(Y)});
    P.assertDiseq({StrElem::var(Y)}, {StrElem::lit("ab")});
    return P;
  };
  auto MkPred = [] {
    Problem P;
    VarId X = P.strVar("x"), Y = P.strVar("y");
    P.assertInRe(X, "ab|ba");
    P.assertInRe(Y, "(a|b){1,2}");
    P.assertWordEq({StrElem::var(X)}, {StrElem::var(Y)});
    P.assertPred(AssertKind::NotPrefixof, {StrElem::lit("a")},
                 {StrElem::var(Y)});
    return P;
  };
  int Case = 0;
  for (const Problem &P : {MkSat(), MkUnsat(), MkPred()}) {
    Verdict Serial = Verdict::Unknown;
    for (uint32_t Threads : {1u, 2u, 4u}) {
      SolveOptions Opts;
      Opts.TimeoutMs = 20000;
      Opts.Threads = Threads;
      SolveResult R = solver::solveProblem(P, Opts);
      if (Threads == 1)
        Serial = R.V;
      else
        EXPECT_EQ(R.V, Serial) << "case " << Case << " threads " << Threads;
    }
    EXPECT_NE(Serial, Verdict::Unknown) << "case " << Case;
    ++Case;
  }
}

TEST(SelfCheckTest, EmptySideEquationIsSat) {
  // Regression: `x = ""` substitutes every variable away, leaving a
  // zero-state system automaton whose Parikh formula must accept the
  // empty run (it used to demand "exactly one first state" over an empty
  // sum and answer Unsat). Found by the differential fuzzer.
  Problem P;
  VarId X = P.strVar("x"), Y = P.strVar("y");
  P.assertWordEq({}, {StrElem::var(X), StrElem::var(Y)});
  SolveResult R = solve(P);
  ASSERT_EQ(R.V, Verdict::Sat);
  EXPECT_TRUE(R.Words.at(X).empty());
  EXPECT_TRUE(R.Words.at(Y).empty());
}

TEST(SelfCheckTest, CleanSatModelIsCountedValidated) {
  Problem P;
  VarId X = P.strVar("x");
  P.assertInRe(X, "(a|b){1,3}");
  P.assertDiseq({StrElem::var(X)}, {StrElem::lit("ab")});
  SolveResult R = solve(P);
  ASSERT_EQ(R.V, Verdict::Sat);
  EXPECT_FALSE(R.Validation.Failed);
  EXPECT_GE(R.Stats.ModelsValidated, 1u);
  EXPECT_EQ(R.Stats.ValidationFailures, 0u);
}

TEST(SelfCheckTest, TamperedModelIsDemotedToUnknown) {
  // Corrupt every produced model through the test-only hook: the
  // always-on self-check must catch it and never let the Sat escape.
  Problem P;
  VarId X = P.strVar("x");
  P.assertInRe(X, "ab");
  SolveOptions Opts;
  Opts.TimeoutMs = 20000;
  Opts.TamperModel = [](std::map<VarId, Word> &Words,
                        std::map<strings::IntVarId, int64_t> &) {
    for (auto &[V, W] : Words)
      W.clear(); // ε no longer matches "ab"
  };
  SolveResult R = solver::solveProblem(P, Opts);
  EXPECT_EQ(R.V, Verdict::Unknown);
  ASSERT_TRUE(R.Validation.Failed);
  EXPECT_NE(R.Validation.Detail.find("falsifies"), std::string::npos);
  EXPECT_GE(R.Stats.ValidationFailures, 1u);
}

TEST(SelfCheckTest, ParanoidCrossCheckKeepsTrueUnsat) {
  Problem P;
  VarId X = P.strVar("x");
  P.assertInRe(X, "ab");
  P.assertDiseq({StrElem::var(X)}, {StrElem::lit("ab")});
  SolveOptions Opts;
  Opts.TimeoutMs = 20000;
  Opts.ParanoidUnsatCheck = true;
  SolveResult R = solver::solveProblem(P, Opts);
  EXPECT_EQ(R.V, Verdict::Unsat);
  EXPECT_FALSE(R.Validation.Failed);
  EXPECT_EQ(R.Stats.ParanoidChecks, 1u);
}

} // namespace
