//===- tests/EqTest.cpp - Stabilization tests --------------------------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
// The monadic-decomposition property (Sec. 3) is the contract everything
// above relies on: every choice of words from a disjunct's languages,
// substituted through its map, must solve the original equations.
//
//===----------------------------------------------------------------------===//

#include "eq/Stabilize.h"
#include "regex/Regex.h"

#include <gtest/gtest.h>

#include <random>

using namespace postr;
using namespace postr::eq;
using automata::Nfa;

namespace {

struct Fixture {
  Alphabet Sigma;
  std::map<VarId, Nfa> Langs;
  std::vector<WordEquation> Eqs;
  VarId Next = 0;

  VarId var(const std::string &Re) {
    VarId X = Next++;
    Langs[X] = regex::compileString(Re, Sigma);
    return X;
  }

  StabilizeResult run(const StabilizeOptions &Opts = {}) {
    // Close the alphabet for every language: recompiling is not needed
    // because compileString interns eagerly in declaration order and the
    // tests only compare words, not complements.
    VarId Fresh = Next + 100;
    return stabilize(Langs, Eqs, Fresh, Opts);
  }
};

/// Checks the monadic-decomposition contract on one disjunct by sampling
/// words (shortest word per terminal variable).
void checkDisjunct(const Fixture &F, const Decomposition &D) {
  std::map<VarId, Word> Terminal;
  for (const auto &[X, L] : D.Langs) {
    std::optional<Word> W = L.someWord();
    ASSERT_TRUE(W.has_value()) << "empty terminal language";
    Terminal[X] = *W;
  }
  auto WordOf = [&](VarId X) {
    Word Out;
    auto It = D.Subst.find(X);
    EXPECT_TRUE(It != D.Subst.end()) << "missing substitution";
    for (VarId T : It->second) {
      const Word &W = Terminal.at(T);
      Out.insert(Out.end(), W.begin(), W.end());
    }
    return Out;
  };
  for (const WordEquation &E : F.Eqs) {
    Word L, R;
    for (VarId X : E.Lhs) {
      Word W = WordOf(X);
      L.insert(L.end(), W.begin(), W.end());
    }
    for (VarId X : E.Rhs) {
      Word W = WordOf(X);
      R.insert(R.end(), W.begin(), W.end());
    }
    EXPECT_EQ(L, R) << "decomposition violates an input equation";
  }
  // And terminal languages respect the original regular constraints:
  // every original variable's substituted word is in its language.
  for (const auto &[X, L] : F.Langs)
    EXPECT_TRUE(L.accepts(WordOf(X)))
        << "substituted word escapes the original language of x" << X;
}

TEST(StabilizeTest, NoEquationsIsIdentity) {
  Fixture F;
  F.var("a*");
  F.var("b|c");
  StabilizeResult R = F.run();
  ASSERT_TRUE(R.Complete);
  ASSERT_EQ(R.Disjuncts.size(), 1u);
  checkDisjunct(F, R.Disjuncts[0]);
}

TEST(StabilizeTest, SimpleSyncEquation) {
  // x = y with x in a*, y in (aa)*: solutions are even powers of a.
  Fixture F;
  VarId X = F.var("a*"), Y = F.var("(aa)*");
  F.Eqs.push_back({{X}, {Y}});
  StabilizeResult R = F.run();
  ASSERT_TRUE(R.Complete);
  ASSERT_FALSE(R.Disjuncts.empty());
  for (const Decomposition &D : R.Disjuncts)
    checkDisjunct(F, D);
}

TEST(StabilizeTest, UnsatByLanguages) {
  // x = y with disjoint languages: no disjuncts.
  Fixture F;
  VarId X = F.var("a+"), Y = F.var("b+");
  F.Eqs.push_back({{X}, {Y}});
  StabilizeResult R = F.run();
  ASSERT_TRUE(R.Complete);
  EXPECT_TRUE(R.Disjuncts.empty());
}

TEST(StabilizeTest, ConcatenationSplit) {
  // xy = z: z in abab? any split works.
  Fixture F;
  VarId X = F.var("(a|b)*"), Y = F.var("(a|b)*"), Z = F.var("abab");
  F.Eqs.push_back({{X, Y}, {Z}});
  StabilizeResult R = F.run();
  ASSERT_TRUE(R.Complete);
  ASSERT_FALSE(R.Disjuncts.empty());
  for (const Decomposition &D : R.Disjuncts)
    checkDisjunct(F, D);
}

TEST(StabilizeTest, CommutationEquation) {
  // xy = yx over (ab)* languages: always satisfiable; decompositions
  // must still verify.
  Fixture F;
  VarId X = F.var("(ab)*"), Y = F.var("(ab)*");
  F.Eqs.push_back({{X, Y}, {Y, X}});
  StabilizeResult R = F.run({/*Fuel=*/2000, /*MaxDisjuncts=*/64});
  ASSERT_FALSE(R.Disjuncts.empty());
  for (const Decomposition &D : R.Disjuncts)
    checkDisjunct(F, D);
}

TEST(StabilizeTest, SystemOfTwoEquations) {
  Fixture F;
  VarId X = F.var("(a|b){0,3}"), Y = F.var("a*"), Z = F.var("(a|b){0,4}");
  F.Eqs.push_back({{X, Y}, {Z}});
  F.Eqs.push_back({{Y}, {X}});
  StabilizeResult R = F.run();
  ASSERT_FALSE(R.Disjuncts.empty());
  for (const Decomposition &D : R.Disjuncts)
    checkDisjunct(F, D);
}

TEST(StabilizeTest, FuelExhaustionIsReported) {
  // Quadratic equation with cyclic structure burns fuel; the result must
  // say so instead of silently claiming Unsat.
  Fixture F;
  VarId X = F.var("(a|b)*"), Y = F.var("(a|b)*"), Z = F.var("(a|b)*");
  F.Eqs.push_back({{X, Y, Z}, {Z, Y, X}});
  StabilizeResult R = F.run({/*Fuel=*/20, /*MaxDisjuncts=*/4});
  EXPECT_FALSE(R.Complete);
}

TEST(StabilizeTest, TinyBudgetsNeverFlipVerdicts) {
  // Cancellation/budget robustness, differentially: for random systems,
  // a run under a tiny deterministic budget (steps or bytes) must either
  // finish with the same answer as the unbudgeted oracle or report an
  // incomplete result carrying the budget's stop reason — never a wrong
  // determinate verdict (e.g. "Unsat" because branches were dropped).
  static const char *Regexes[] = {"(a|b)*", "a*", "(ab)*", "a{0,3}",
                                  "b(a|b){0,2}", "a+", "abab"};
  std::mt19937 Rng(20250808);
  for (int Iter = 0; Iter < 20; ++Iter) {
    Fixture F;
    uint32_t NumVars = 2 + Rng() % 3;
    std::vector<VarId> Vars;
    for (uint32_t I = 0; I < NumVars; ++I)
      Vars.push_back(F.var(Regexes[Rng() % 7]));
    uint32_t NumEqs = 1 + Rng() % 2;
    for (uint32_t E = 0; E < NumEqs; ++E) {
      WordEquation Eq;
      for (uint32_t I = 0, N = 1 + Rng() % 2; I < N; ++I)
        Eq.Lhs.push_back(Vars[Rng() % NumVars]);
      for (uint32_t I = 0, N = 1 + Rng() % 2; I < N; ++I)
        Eq.Rhs.push_back(Vars[Rng() % NumVars]);
      F.Eqs.push_back(Eq);
    }

    // Modest fuel keeps each run cheap; the differential property is
    // about budgets, not search depth, and both sides share the cap.
    StabilizeOptions Base;
    Base.Fuel = 200;
    Base.MaxDisjuncts = 16;
    StabilizeResult Oracle = F.run(Base);

    auto CheckAgainstOracle = [&](Budget &B, const char *What) {
      StabilizeOptions O = Base;
      O.Budget = &B;
      StabilizeResult R = F.run(O);
      if (R.Complete) {
        EXPECT_EQ(R.Stop, StopReason::None) << What;
        if (Oracle.Complete)
          EXPECT_EQ(R.Disjuncts.empty(), Oracle.Disjuncts.empty())
              << What << ": budgeted run flipped the verdict (iter "
              << Iter << ")";
      } else {
        // Dropped branches: must say why, and an empty disjunct list
        // means Unknown, not Unsat — which callers can only know
        // because Complete is false.
        EXPECT_NE(R.Stop, StopReason::None)
            << What << ": incomplete result without a stop reason";
      }
    };

    for (uint64_t Steps : {1ull, 2ull, 8ull, 64ull}) {
      Budget B(Budget::Limits{0, 0, Steps, nullptr});
      CheckAgainstOracle(B, "step budget");
    }
    for (uint64_t Bytes : {256ull, 4096ull, 1048576ull}) {
      Budget B(Budget::Limits{0, Bytes, 0, nullptr});
      CheckAgainstOracle(B, "memory budget");
    }
    // Pre-cancelled: must come back Cancelled without touching a branch.
    std::atomic<bool> Cancel{true};
    Budget B(Budget::Limits{0, 0, 0, &Cancel});
    StabilizeOptions O = Base;
    O.Budget = &B;
    StabilizeResult R = F.run(O);
    EXPECT_FALSE(R.Complete);
    EXPECT_EQ(R.Stop, StopReason::Cancelled);
  }
}

TEST(StabilizeTest, EmptyLanguageShortCircuit) {
  Fixture F;
  VarId X = F.var("a"), Y = F.var("b");
  F.Langs[Y] = automata::Nfa::emptyLanguage(F.Sigma.size());
  F.Eqs.push_back({{X}, {Y}});
  StabilizeResult R = F.run();
  EXPECT_TRUE(R.Complete);
  EXPECT_TRUE(R.Disjuncts.empty());
}

} // namespace
