//===- tests/BudgetTest.cpp - Resource governance & fault injection ---------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
// The shared Budget token (base/Budget.h) and the deterministic fault
// injector. The sweep test arms every registered probe site in turn and
// asserts the property the whole robustness layer exists for: a trip at
// any site unwinds cleanly into a *reasoned* Unknown and never flips a
// determinate verdict.
//
//===----------------------------------------------------------------------===//

#include "base/Budget.h"

#include "eq/Stabilize.h"
#include "lia/Incremental.h"
#include "regex/Regex.h"
#include "solver/Baselines.h"
#include "solver/BruteForce.h"
#include "solver/PositionSolver.h"
#include "tagaut/Encoder.h"
#include "tagaut/Parikh.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <functional>
#include <random>
#include <thread>

using namespace postr;
using automata::Nfa;

namespace {

//===----------------------------------------------------------------------===
// Budget unit tests
//===----------------------------------------------------------------------===

TEST(BudgetTest, UnlimitedBudgetNeverTrips) {
  Budget B;
  for (int I = 0; I < 1000; ++I)
    EXPECT_TRUE(B.checkpoint("lia.sat"));
  EXPECT_FALSE(B.exceeded());
  EXPECT_EQ(B.reason(), StopReason::None);
  EXPECT_EQ(B.remainingMs(), ~0ull);
}

TEST(BudgetTest, StepLimitTripsDeterministically) {
  Budget B(Budget::Limits{0, 0, 5, nullptr});
  int Allowed = 0;
  while (B.checkpoint("lia.sat"))
    ++Allowed;
  EXPECT_EQ(Allowed, 5);
  EXPECT_EQ(B.reason(), StopReason::StepBudget);
  // Sticky: later probes keep refusing.
  EXPECT_FALSE(B.checkpoint("lia.sat"));
}

TEST(BudgetTest, MemCapTrips) {
  Budget B(Budget::Limits{0, 1024, 0, nullptr});
  EXPECT_TRUE(B.chargeMem(512));
  EXPECT_TRUE(B.chargeMem(512)); // exactly at the cap: still fine
  EXPECT_FALSE(B.chargeMem(1));
  EXPECT_EQ(B.reason(), StopReason::MemOut);
  EXPECT_EQ(B.memCharged(), 1025u);
  EXPECT_FALSE(B.checkpoint("nfa.intersect"));
}

TEST(BudgetTest, CancelFlagTrips) {
  std::atomic<bool> Cancel{false};
  Budget B(Budget::Limits{0, 0, 0, &Cancel});
  EXPECT_TRUE(B.checkpoint("eq.stabilize"));
  Cancel.store(true);
  EXPECT_FALSE(B.checkpoint("eq.stabilize"));
  EXPECT_EQ(B.reason(), StopReason::Cancelled);
}

TEST(BudgetTest, DeadlineTrips) {
  Budget B(Budget::Limits{1, 0, 0, nullptr});
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  // The clock is only consulted every ~64th probe; 256 probes guarantee
  // several deadline checks.
  bool Tripped = false;
  for (int I = 0; I < 256 && !Tripped; ++I)
    Tripped = !B.checkpoint("lia.sat");
  EXPECT_TRUE(Tripped);
  EXPECT_EQ(B.reason(), StopReason::Timeout);
  EXPECT_EQ(B.remainingMs(), 0u);
}

TEST(BudgetTest, FirstReasonWins) {
  Budget B;
  EXPECT_EQ(B.trip(StopReason::MemOut), StopReason::MemOut);
  EXPECT_EQ(B.trip(StopReason::Timeout), StopReason::MemOut);
  EXPECT_EQ(B.reason(), StopReason::MemOut);
}

TEST(BudgetTest, ChildLimitsIntersectDeadlinesAndCaps) {
  // Parent with a deadline: the child gets min(cap, remaining), never 0
  // (0 would mean "no deadline" and unbound the child).
  Budget P(Budget::Limits{10000, 100, 1000, nullptr});
  Budget::Limits Tight = P.childLimits(/*CapMs=*/5000);
  EXPECT_GT(Tight.TimeoutMs, 0u);
  EXPECT_LE(Tight.TimeoutMs, 5000u);
  Budget::Limits Loose = P.childLimits(/*CapMs=*/50000);
  EXPECT_LE(Loose.TimeoutMs, 10000u);
  EXPECT_EQ(Tight.Parent, &P);
  // Mem/step limits: inherited by default, tighter-of-the-two when
  // overridden.
  EXPECT_EQ(Tight.MemLimitBytes, 100u);
  EXPECT_EQ(Tight.StepLimit, 1000u);
  EXPECT_EQ(P.childLimits(0, 50, 2000).MemLimitBytes, 50u);
  EXPECT_EQ(P.childLimits(0, 500, 2000).MemLimitBytes, 100u);
  EXPECT_EQ(P.childLimits(0, 0, 10).StepLimit, 10u);
  EXPECT_EQ(P.childLimits(0, 0, 5000).StepLimit, 1000u);
  // Parent without a deadline: only the explicit cap applies.
  Budget Free;
  EXPECT_EQ(Free.childLimits().TimeoutMs, 0u);
  EXPECT_EQ(Free.childLimits(7).TimeoutMs, 7u);
}

TEST(BudgetTest, NestedChildrenFirstReasonWins) {
  // A trip anywhere up the chain reaches every descendant at its next
  // probe, carrying the ancestor's reason.
  Budget Root;
  Budget Mid(Root.childLimits());
  Budget Leaf(Mid.childLimits());
  EXPECT_TRUE(Leaf.checkpoint("lia.sat"));
  Root.trip(StopReason::MemOut);
  EXPECT_FALSE(Leaf.checkpoint("lia.sat"));
  EXPECT_EQ(Leaf.reason(), StopReason::MemOut);
  EXPECT_FALSE(Mid.checkpoint("lia.sat"));
  EXPECT_EQ(Mid.reason(), StopReason::MemOut);

  // A child that already tripped locally keeps its own first reason even
  // when an ancestor trips with a different one afterwards — and its own
  // descendants inherit the child's reason, not the ancestor's.
  Budget Root2;
  Budget Mid2(Root2.childLimits());
  Mid2.trip(StopReason::StepBudget);
  Budget Leaf2(Mid2.childLimits());
  Root2.trip(StopReason::Timeout);
  EXPECT_FALSE(Leaf2.checkpoint("lia.sat"));
  EXPECT_EQ(Leaf2.reason(), StopReason::StepBudget);
  EXPECT_FALSE(Mid2.checkpoint("lia.sat"));
  EXPECT_EQ(Mid2.reason(), StopReason::StepBudget);
}

TEST(BudgetTest, StopReasonNamesAreStable) {
  EXPECT_STREQ(stopReasonName(StopReason::None), "none");
  EXPECT_STREQ(stopReasonName(StopReason::Timeout), "timeout");
  EXPECT_STREQ(stopReasonName(StopReason::Cancelled), "cancelled");
  EXPECT_STREQ(stopReasonName(StopReason::MemOut), "memout");
  EXPECT_STREQ(stopReasonName(StopReason::StepBudget), "stepbudget");
}

//===----------------------------------------------------------------------===
// Fault injector plumbing
//===----------------------------------------------------------------------===

/// Arms a process-wide injector for one scope and always disarms on the
/// way out, so a failing assertion cannot poison later tests.
struct ArmGuard {
  FaultInjector I;
  ArmGuard(const char *Site, uint64_t Nth, uint64_t Seed) : I(Site, Nth, Seed) {
    FaultInjector::arm(&I);
  }
  ~ArmGuard() { FaultInjector::arm(nullptr); }
};

TEST(FaultInjectTest, FiresExactlyOnNthProbe) {
  ArmGuard G("lia.sat", 3, 0);
  Budget B;
  EXPECT_TRUE(B.checkpoint("lia.sat"));
  EXPECT_TRUE(B.checkpoint("nfa.intersect")); // other sites don't count
  EXPECT_TRUE(B.checkpoint("lia.sat"));
  EXPECT_FALSE(B.checkpoint("lia.sat")); // third hit trips
  EXPECT_EQ(G.I.fired(), 1u);
  EXPECT_EQ(G.I.hits(), 3u);
  EXPECT_EQ(B.reason(), G.I.reason());
  // One-shot: a fresh budget sails past the already-spent injector.
  Budget B2;
  EXPECT_TRUE(B2.checkpoint("lia.sat"));
}

TEST(FaultInjectTest, EnvSpecParses) {
  ASSERT_EQ(setenv("POSTR_FAULT_INJECT", "lia.mbqi:2:7", 1), 0);
  FaultInjector *I = faultInjectorFromEnv();
  ASSERT_NE(I, nullptr);
  EXPECT_EQ(FaultInjector::armed(), I);
  Budget B;
  EXPECT_TRUE(B.checkpoint("lia.mbqi"));
  EXPECT_FALSE(B.checkpoint("lia.mbqi"));
  EXPECT_EQ(B.reason(), I->reason());
  FaultInjector::arm(nullptr);
  unsetenv("POSTR_FAULT_INJECT");
}

TEST(FaultInjectTest, BadEnvSpecIsRejected) {
  ASSERT_EQ(setenv("POSTR_FAULT_INJECT", "no.such.site:1", 1), 0);
  EXPECT_EQ(faultInjectorFromEnv(), nullptr);
  ASSERT_EQ(setenv("POSTR_FAULT_INJECT", "missing-colon", 1), 0);
  EXPECT_EQ(faultInjectorFromEnv(), nullptr);
  unsetenv("POSTR_FAULT_INJECT");
  FaultInjector::arm(nullptr);
}

//===----------------------------------------------------------------------===
// Per-site workloads for the sweep
//===----------------------------------------------------------------------===

/// Random ε-free NFA with a spine (bench_hotpath's shape, smaller).
Nfa randomNfa(uint32_t NumStates, uint32_t Sigma, uint32_t ExtraEdges,
              uint32_t Seed) {
  std::mt19937 Rng(Seed);
  Nfa A(Sigma);
  A.addStates(NumStates);
  A.markInitial(0);
  A.markFinal(NumStates - 1);
  for (uint32_t Q = 0; Q + 1 < NumStates; ++Q)
    A.addTransition(Q, Rng() % Sigma, Q + 1);
  for (uint32_t E = 0; E < ExtraEdges; ++E)
    A.addTransition(Rng() % NumStates, Rng() % Sigma, Rng() % NumStates);
  return A;
}

/// Random tag automaton with real Parikh/Simplex load (bench's solve
/// stage, smaller).
tagaut::TagAutomaton randomTa(tagaut::TagTable &Tags, uint32_t NumStates,
                              uint32_t Seed) {
  std::mt19937 Rng(Seed);
  tagaut::TagAutomaton Ta;
  Ta.addStates(NumStates);
  Ta.markInitial(0);
  Ta.markFinal(NumStates - 1);
  for (uint32_t Q = 0; Q + 1 < NumStates; ++Q)
    Ta.addTransition({Q, Q + 1, 0, false,
                      {Tags.intern(tagaut::Tag::symbol(Rng() % 2))}});
  for (uint32_t E = 0; E < 2 * NumStates; ++E)
    Ta.addTransition({static_cast<uint32_t>(Rng() % NumStates),
                      static_cast<uint32_t>(Rng() % NumStates), 0, false,
                      {Tags.intern(tagaut::Tag::symbol(Rng() % 2))}});
  return Ta;
}

Verdict liaDriver() {
  tagaut::TagTable Tags;
  tagaut::TagAutomaton Ta = randomTa(Tags, 20, 4711);
  lia::Arena A;
  tagaut::ParikhFormula Pf =
      buildParikhFormula(Ta, A, "b.", tagaut::SpanMode::Eager);
  Budget Bud;
  lia::QfOptions O;
  O.Budget = &Bud;
  lia::QfResult R = lia::solveQF(A, Pf.Formula, O);
  if (R.V == Verdict::Unknown)
    EXPECT_NE(R.Stop, StopReason::None);
  return R.V;
}

Verdict mpDriver(std::vector<tagaut::PosPredicate> Preds,
                 std::map<VarId, std::string> Regexes) {
  Alphabet Sigma;
  std::map<VarId, Nfa> Langs;
  for (const auto &[X, Re] : Regexes)
    Langs[X] = regex::compileString(Re, Sigma);
  lia::Arena A;
  Budget Bud;
  tagaut::MpOptions O;
  O.Budget = &Bud;
  tagaut::MpResult R =
      solveMP(A, Langs, Preds, Sigma.size(), nullptr, O);
  if (R.V == Verdict::Unknown)
    EXPECT_NE(R.Stop, StopReason::None);
  return R.V;
}

struct SiteCase {
  const char *Site;
  std::function<Verdict()> Run;
};

std::vector<SiteCase> siteCases() {
  std::vector<SiteCase> Cases;

  Cases.push_back({"nfa.intersect", [] {
    Nfa A = randomNfa(24, 3, 48, 101), B = randomNfa(24, 3, 48, 202);
    Budget Bud;
    Nfa P = automata::intersect(A, B, &Bud);
    if (Bud.exceeded())
      return Verdict::Unknown; // partial product: discarded
    return P.isEmpty() ? Verdict::Unsat : Verdict::Sat;
  }});

  Cases.push_back({"nfa.determinize", [] {
    Nfa A = randomNfa(16, 3, 32, 303);
    Budget Bud;
    Nfa D = automata::determinize(A, &Bud);
    if (Bud.exceeded())
      return Verdict::Unknown;
    return D.isEmpty() ? Verdict::Unsat : Verdict::Sat;
  }});

  Cases.push_back({"nfa.epsilon", [] {
    // Concatenation introduces ε-links, so removal has real work.
    Nfa C = automata::concatenate(randomNfa(12, 3, 24, 404),
                                  randomNfa(12, 3, 24, 505));
    Budget Bud;
    Nfa E = C.removeEpsilon(&Bud);
    if (Bud.exceeded())
      return Verdict::Unknown;
    return E.isEmpty() ? Verdict::Unsat : Verdict::Sat;
  }});

  Cases.push_back({"eq.stabilize", [] {
    // xy = z with z fixed: completes (EqTest's ConcatenationSplit shape).
    Alphabet Sigma;
    std::map<VarId, Nfa> Langs;
    Langs[0] = regex::compileString("(a|b)*", Sigma);
    Langs[1] = regex::compileString("(a|b)*", Sigma);
    Langs[2] = regex::compileString("abab", Sigma);
    std::vector<eq::WordEquation> Eqs = {{{0, 1}, {2}}};
    VarId Fresh = 100;
    Budget Bud;
    eq::StabilizeOptions O;
    O.Budget = &Bud;
    eq::StabilizeResult R = eq::stabilize(Langs, Eqs, Fresh, O);
    if (!R.Complete) {
      EXPECT_NE(R.Stop, StopReason::None);
      return Verdict::Unknown;
    }
    return R.Disjuncts.empty() ? Verdict::Unsat : Verdict::Sat;
  }});

  Cases.push_back({"tagaut.encode", [] {
    Alphabet Sigma;
    std::map<VarId, Nfa> Langs;
    Langs[0] = regex::compileString("a{1,2}", Sigma);
    Langs[1] = regex::compileString("b{1,2}", Sigma);
    std::vector<tagaut::PosPredicate> Preds = {
        {tagaut::PredKind::Diseq, {0}, {1}, {}}};
    lia::Arena A;
    Budget Bud;
    tagaut::EncoderOptions EO;
    EO.Budget = &Bud;
    tagaut::SystemEncoding Enc =
        encodeSystem(A, Langs, Preds, Sigma.size(), EO);
    if (Bud.exceeded())
      return Verdict::Unknown; // partial encoding: discarded
    return Enc.Ta.transitions().empty() ? Verdict::Unsat : Verdict::Sat;
  }});

  Cases.push_back({"tagaut.parikh", [] {
    tagaut::TagTable Tags;
    tagaut::TagAutomaton Ta = randomTa(Tags, 10, 606);
    lia::Arena A;
    Budget Bud;
    buildParikhFormula(Ta, A, "t.", tagaut::SpanMode::Eager, &Bud);
    return Bud.exceeded() ? Verdict::Unknown : Verdict::Sat;
  }});

  Cases.push_back({"lia.sat", liaDriver});
  Cases.push_back({"lia.simplex", liaDriver});

  Cases.push_back({"lia.mbqi", [] {
    // ¬contains(x, y), x ∈ a, y ∈ aa: "a" occurs in "aa", Unsat — and no
    // pre-MBQI short-circuit applies (distinct vars, unequal languages),
    // so the verdict comes from the MBQI refutation loop.
    return mpDriver({{tagaut::PredKind::NotContains, {0}, {1}, {}}},
                    {{0, "a"}, {1, "aa"}});
  }});

  Cases.push_back({"solver.disjunct", [] {
    strings::Problem P;
    VarId U = P.strVar("u"), V = P.strVar("v");
    P.assertInRe(U, "a*");
    P.assertInRe(V, "a*");
    P.assertWordEq({strings::StrElem::var(U), strings::StrElem::var(V)},
                   {strings::StrElem::var(V), strings::StrElem::var(U)});
    P.assertDiseq({strings::StrElem::var(U)}, {strings::StrElem::var(V)});
    solver::SolveOptions O;
    O.TimeoutMs = 20000;
    solver::SolveResult R = solver::solveProblem(P, O);
    if (R.V == Verdict::Unknown)
      EXPECT_NE(R.Stop, StopReason::None);
    return R.V;
  }});

  Cases.push_back({"solver.enum", [] {
    strings::Problem P;
    VarId X = P.strVar("x");
    P.assertInRe(X, "(a|b){1,2}");
    P.assertDiseq({strings::StrElem::var(X)}, {strings::StrElem::lit("a")});
    solver::EnumOptions O;
    O.TimeoutMs = 20000;
    solver::SolveResult R = solver::solveEnum(P, O);
    if (R.V == Verdict::Unknown)
      EXPECT_NE(R.Stop, StopReason::None);
    return R.V;
  }});

  Cases.push_back({"solver.bruteforce", [] {
    Alphabet Sigma;
    std::map<VarId, Nfa> Langs;
    Langs[0] = regex::compileString("a|b", Sigma);
    Langs[1] = regex::compileString("a", Sigma);
    std::vector<tagaut::PosPredicate> Preds = {
        {tagaut::PredKind::Diseq, {0}, {1}, {}}};
    solver::BruteForceResult R = solver::solveBruteForce(Langs, Preds);
    if (R.V == Verdict::Unknown)
      EXPECT_NE(R.Stop, StopReason::None);
    return R.V;
  }});

  return Cases;
}

//===----------------------------------------------------------------------===
// The sweep: every registered site trips cleanly and never flips
//===----------------------------------------------------------------------===

TEST(FaultSweepTest, EverySiteRegisteredAndCovered) {
  std::vector<SiteCase> Cases = siteCases();
  const std::vector<const char *> &Names = faultSiteNames();
  ASSERT_EQ(Cases.size(), Names.size());
  for (const SiteCase &C : Cases) {
    bool Known = false;
    for (const char *N : Names)
      Known = Known || std::strcmp(N, C.Site) == 0;
    EXPECT_TRUE(Known) << "driver for unregistered site " << C.Site;
  }
}

TEST(FaultSweepTest, TripsUnwindCleanlyWithoutVerdictFlips) {
  for (const SiteCase &C : siteCases()) {
    FaultInjector::arm(nullptr);
    Verdict Oracle = C.Run();
    ASSERT_NE(Oracle, Verdict::Unknown)
        << C.Site << ": oracle workload must be determinate";
    for (uint64_t Nth : {1ull, 3ull}) {
      ArmGuard G(C.Site, Nth, /*Seed=*/Nth * 97 + 13);
      Verdict V = C.Run();
      if (Nth == 1)
        EXPECT_GE(G.I.fired(), 1u)
            << C.Site << ": workload never probes its own site";
      if (G.I.fired())
        EXPECT_TRUE(V == Verdict::Unknown || V == Oracle)
            << C.Site << ": injected " << stopReasonName(G.I.reason())
            << " flipped " << static_cast<int>(Oracle) << " to "
            << static_cast<int>(V);
      else
        EXPECT_EQ(V, Oracle) << C.Site;
    }
  }
}

//===----------------------------------------------------------------------===
// Tripped contexts stay reusable
//===----------------------------------------------------------------------===

TEST(FaultSweepTest, TrippedIncrementalContextIsReusable) {
  tagaut::TagTable Tags;
  tagaut::TagAutomaton Ta = randomTa(Tags, 14, 777);
  lia::Arena A;
  tagaut::ParikhFormula Pf =
      buildParikhFormula(Ta, A, "t.", tagaut::SpanMode::Eager);

  lia::QfResult Oracle = lia::solveQF(A, Pf.Formula);
  ASSERT_NE(Oracle.V, Verdict::Unknown);

  lia::IncrementalContext IC(A);
  IC.assertFormula(Pf.Formula);
  {
    ArmGuard G("lia.sat", 1, 5);
    lia::QfResult R = IC.solve();
    EXPECT_EQ(G.I.fired(), 1u);
    EXPECT_EQ(R.V, Verdict::Unknown);
    EXPECT_NE(R.Stop, StopReason::None);
  }
  // The context must survive the mid-solve unwind: re-solving with the
  // injector disarmed matches the one-shot oracle.
  lia::QfResult R2 = IC.solve();
  EXPECT_EQ(R2.V, Oracle.V);
  EXPECT_EQ(R2.Stop, StopReason::None);
}

TEST(FaultSweepTest, TrippedSolveRetriesOnFreshBudget) {
  // End-to-end flavour of the same property: a solve stopped by a step
  // budget answers Unknown with the reason, and the identical problem
  // solved again without the cap gives the real verdict.
  strings::Problem P;
  VarId X = P.strVar("x");
  P.assertInRe(X, "(ab)*");
  P.assertDiseq({strings::StrElem::var(X)}, {strings::StrElem::lit("ab")});

  solver::SolveOptions Full;
  Full.TimeoutMs = 20000;
  solver::SolveResult Oracle = solver::solveProblem(P, Full);
  ASSERT_NE(Oracle.V, Verdict::Unknown);

  solver::SolveOptions Tiny = Full;
  Tiny.StepLimit = 1;
  solver::SolveResult R = solver::solveProblem(P, Tiny);
  ASSERT_EQ(R.V, Verdict::Unknown);
  EXPECT_EQ(R.Stop, StopReason::StepBudget);

  solver::SolveResult Again = solver::solveProblem(P, Full);
  EXPECT_EQ(Again.V, Oracle.V);
  EXPECT_EQ(Again.Stop, StopReason::None);
}

TEST(BudgetTest, BruteForceTimeoutComposesWithSharedBudget) {
  // Regression: a caller-supplied Budget used to silently replace the
  // legacy TimeoutMs deadline in solveBruteForce — an unlimited shared
  // budget turned a 1 ms deadline into minutes of enumeration. Both are
  // probed now; the tighter limit wins.
  Alphabet Sigma;
  std::map<VarId, Nfa> Langs;
  Langs[0] = regex::compileString("(a|b)*", Sigma);
  Langs[1] = regex::compileString("(a|b)*", Sigma);
  // x != x never holds, so enumeration can only stop on a limit.
  std::vector<tagaut::PosPredicate> Preds = {
      {tagaut::PredKind::Diseq, {0}, {0}, {}}};

  Budget Unlimited(Budget::Limits{0, 0, 0, nullptr});
  solver::BruteForceOptions O;
  O.MaxWordLen = 12;
  O.TimeoutMs = 1;
  O.Budget = &Unlimited;
  solver::BruteForceResult R = solver::solveBruteForce(Langs, Preds, O);
  EXPECT_EQ(R.V, Verdict::Unknown);
  EXPECT_EQ(R.Stop, StopReason::Timeout);
}

TEST(BudgetTest, BruteForceSharedBudgetComposesWithTimeout) {
  // The other direction: a step-limited shared budget must still trip
  // under a generous TimeoutMs.
  Alphabet Sigma;
  std::map<VarId, Nfa> Langs;
  Langs[0] = regex::compileString("(a|b)*", Sigma);
  std::vector<tagaut::PosPredicate> Preds = {
      {tagaut::PredKind::Diseq, {0}, {0}, {}}};

  Budget Stepped(Budget::Limits{0, 0, 1, nullptr});
  solver::BruteForceOptions O;
  O.MaxWordLen = 12;
  O.TimeoutMs = 20000;
  O.Budget = &Stepped;
  solver::BruteForceResult R = solver::solveBruteForce(Langs, Preds, O);
  EXPECT_EQ(R.V, Verdict::Unknown);
  EXPECT_EQ(R.Stop, StopReason::StepBudget);
}

TEST(BudgetTest, EnumTimeoutComposesWithSharedBudget) {
  strings::Problem P;
  VarId X = P.strVar("x"), Y = P.strVar("y");
  P.assertInRe(X, "(a|b)*");
  P.assertInRe(Y, "(a|b)*");
  P.assertDiseq({strings::StrElem::var(X)}, {strings::StrElem::var(X)});

  Budget Unlimited(Budget::Limits{0, 0, 0, nullptr});
  solver::EnumOptions O;
  O.MaxWordLen = 12;
  O.TimeoutMs = 1;
  O.Budget = &Unlimited;
  solver::SolveResult R = solver::solveEnum(P, O);
  EXPECT_EQ(R.V, Verdict::Unknown);
  EXPECT_EQ(R.Stop, StopReason::Timeout);
}

} // namespace
