//===- tests/CounterTest.cpp - One-counter fast path tests ------------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
// Differential-tests the PTime path of Theorem 7.1 against the NP
// tag-automaton/LIA path and against the brute-force oracle.
//
//===----------------------------------------------------------------------===//

#include "counter/OneCounter.h"
#include "regex/Regex.h"
#include "solver/BruteForce.h"
#include "tagaut/MpSolver.h"

#include <gtest/gtest.h>

#include <random>

using namespace postr;
using namespace postr::counter;
using namespace postr::tagaut;
using automata::Nfa;

namespace {

struct Fixture {
  Alphabet Sigma;
  std::map<VarId, Nfa> Langs;
  VarId NextVar = 0;
  std::vector<std::pair<VarId, regex::NodePtr>> Pending;

  Fixture() {
    Sigma.intern('a');
    Sigma.intern('b');
  }
  VarId var(const std::string &Regex) {
    VarId X = NextVar++;
    Result<regex::NodePtr> R = regex::parse(Regex);
    assert(R && "bad regex in test");
    regex::collectAlphabet(**R, Sigma);
    Pending.emplace_back(X, std::move(*R));
    return X;
  }
  void finalize() {
    for (auto &[X, Node] : Pending)
      Langs[X] = regex::compile(*Node, Sigma);
    Pending.clear();
  }
  Verdict decide(const PosPredicate &Pred) {
    finalize();
    return decideSinglePredicate(Langs, Pred, Sigma.size());
  }
};

TEST(OneCounterTest, Eligibility) {
  PosPredicate D{PredKind::Diseq, {0}, {1}, {}};
  PosPredicate C{PredKind::NotContains, {0}, {1}, {}};
  EXPECT_TRUE(isEligible({D}));
  EXPECT_FALSE(isEligible({C}));
  EXPECT_FALSE(isEligible({D, D}));
  EXPECT_FALSE(isEligible({}));
}

TEST(OneCounterTest, DiseqByLength) {
  Fixture F;
  VarId X = F.var("a*"), Y = F.var("b");
  EXPECT_EQ(F.decide({PredKind::Diseq, {X}, {Y}, {}}), Verdict::Sat);
}

TEST(OneCounterTest, DiseqUnsatIdentical) {
  Fixture F;
  VarId X = F.var("ab");
  EXPECT_EQ(F.decide({PredKind::Diseq, {X}, {X}, {}}), Verdict::Unsat);
}

TEST(OneCounterTest, DiseqMismatchOnly) {
  // x, y ∈ a|b, same length always; mismatch must be found.
  Fixture F;
  VarId X = F.var("a|b"), Y = F.var("a|b");
  EXPECT_EQ(F.decide({PredKind::Diseq, {X}, {Y}, {}}), Verdict::Sat);
}

TEST(OneCounterTest, CommutingPowersUnsat) {
  Fixture F;
  VarId X = F.var("aa"), Y = F.var("aaa");
  EXPECT_EQ(F.decide({PredKind::Diseq, {X, Y}, {Y, X}, {}}),
            Verdict::Unsat);
}

TEST(OneCounterTest, RepeatedVarMismatch) {
  // xy ≠ yx with x ∈ ab, y ∈ a (footnote 8 example) — Sat.
  Fixture F;
  VarId X = F.var("ab"), Y = F.var("a");
  EXPECT_EQ(F.decide({PredKind::Diseq, {X, Y}, {Y, X}, {}}), Verdict::Sat);
}

TEST(OneCounterTest, NotPrefixCases) {
  Fixture F;
  VarId X = F.var("a"), Y = F.var("ab*");
  EXPECT_EQ(F.decide({PredKind::NotPrefix, {X}, {Y}, {}}), Verdict::Unsat);

  Fixture F2;
  VarId X2 = F2.var("aa+"), Y2 = F2.var("a");
  EXPECT_EQ(F2.decide({PredKind::NotPrefix, {X2}, {Y2}, {}}),
            Verdict::Sat);
}

TEST(OneCounterTest, NotSuffixCases) {
  Fixture F;
  VarId X = F.var("b"), Y = F.var("(a|b)*b");
  EXPECT_EQ(F.decide({PredKind::NotSuffix, {X}, {Y}, {}}), Verdict::Unsat);

  Fixture F2;
  VarId X2 = F2.var("a|b"), Y2 = F2.var("(a|b)*b");
  EXPECT_EQ(F2.decide({PredKind::NotSuffix, {X2}, {Y2}, {}}),
            Verdict::Sat);
}

/// The key property: the PTime path agrees with the NP tag/LIA path and
/// the brute-force oracle on random single predicates.
TEST(OneCounterTest, DifferentialAgainstLiaPathAndOracle) {
  const char *Pool[] = {"a",      "b",  "ab",     "(a|b)*", "a*",
                        "(ab)*",  "a|b", "a+b*",  "ba|ab",  "a{1,3}",
                        "",       "b+",  "(ab)+", "(a|b){0,2}"};
  std::mt19937 Rng(31337);
  for (int Iter = 0; Iter < 60; ++Iter) {
    Fixture F;
    uint32_t NumVars = 1 + Rng() % 3;
    std::vector<VarId> Vars;
    for (uint32_t V = 0; V < NumVars; ++V)
      Vars.push_back(F.var(Pool[Rng() % (sizeof(Pool) / sizeof(char *))]));
    auto RandOccs = [&] {
      std::vector<VarId> Occs;
      uint32_t Len = 1 + Rng() % 2;
      for (uint32_t I = 0; I < Len; ++I)
        Occs.push_back(Vars[Rng() % Vars.size()]);
      return Occs;
    };
    PredKind Kind = static_cast<PredKind>(Rng() % 3); // Diseq/NotPre/NotSuf
    PosPredicate Pred{Kind, RandOccs(), RandOccs(), {}};

    Verdict Fast = F.decide(Pred);
    ASSERT_NE(Fast, Verdict::Unknown) << "budget hit on tiny instance";

    lia::Arena A;
    MpResult Slow = solveMP(A, F.Langs, {Pred}, F.Sigma.size());
    ASSERT_NE(Slow.V, Verdict::Unknown);
    EXPECT_EQ(Fast, Slow.V) << "iteration " << Iter;

    solver::BruteForceOptions BfOpts;
    BfOpts.MaxWordLen = 4;
    solver::BruteForceResult Bf = solver::solveBruteForce(F.Langs, {Pred},
                                                          BfOpts);
    if (Bf.V == Verdict::Sat)
      EXPECT_EQ(Fast, Verdict::Sat) << "iteration " << Iter;
  }
}

} // namespace
