//===- tests/ServeTest.cpp - Resident solver service tests -------------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
// In-process coverage of the postr-serve stack: wire protocol round
// trips and framing hardening, both cache tiers (LRU/eviction, the
// structural-equality guard, staged/validated insertion), the server's
// containment ladder (simulated crash → quarantine → rebuilt session →
// degraded retry), the poisoned-entry gate (a self-check-failing result
// must never be served from the cache), and a randomized concurrent
// soak mixing sat/unsat/malformed/timeout traffic whose served verdicts
// are checked against one-shot solves. Everything runs in-process so
// the sanitizer jobs see every allocation.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzz.h"
#include "serve/Cache.h"
#include "serve/Protocol.h"
#include "serve/Server.h"
#include "serve/Worker.h"
#include "smtlib/Printer.h"
#include "smtlib/Reader.h"
#include "solver/PositionSolver.h"

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>
#include <unistd.h>

using namespace postr;
using serve::Request;
using serve::Response;

namespace {

//===----------------------------------------------------------------------===//
// Protocol
//===----------------------------------------------------------------------===//

TEST(ServeProtocolTest, RequestRoundTrip) {
  Request R;
  R.K = Request::Solve;
  R.Id = "query-17";
  R.TimeoutMs = 1234;
  R.NoCache = true;
  R.TestAbort = true;
  R.Degraded = true;
  R.Smt2 = "(declare-fun x () String)\n(check-sat)\n";
  Result<Request> D = serve::decodeRequest(serve::encodeRequest(R));
  ASSERT_TRUE(static_cast<bool>(D)) << D.error();
  EXPECT_EQ(D->K, Request::Solve);
  EXPECT_EQ(D->Id, "query-17");
  EXPECT_EQ(D->TimeoutMs, 1234u);
  EXPECT_TRUE(D->NoCache);
  EXPECT_TRUE(D->TestAbort);
  EXPECT_TRUE(D->Degraded);
  EXPECT_EQ(D->Smt2, R.Smt2);

  // Header values are sanitized: an id cannot desynchronize the header
  // block.
  Request Evil;
  Evil.Id = "a\nverdict: sat";
  Result<Request> E = serve::decodeRequest(serve::encodeRequest(Evil));
  ASSERT_TRUE(static_cast<bool>(E)) << E.error();
  EXPECT_EQ(E->Id.find('\n'), std::string::npos);
}

TEST(ServeProtocolTest, ResponseRoundTrip) {
  Response R;
  R.S = Response::Ok;
  R.Id = "q";
  R.Verdict = "unknown";
  R.Reason = "timeout";
  R.ExitCode = 3;
  R.Cache = "miss";
  R.RetryAfterMs = 250;
  R.Body = "; x has length 4\n";
  R.Publishable = true;
  R.SelfCheckFailed = true;
  R.BudgetTrips = 2;
  R.DegradedRetries = 1;
  R.FaultFired = true;
  Result<Response> D = serve::decodeResponse(serve::encodeResponse(R));
  ASSERT_TRUE(static_cast<bool>(D)) << D.error();
  EXPECT_EQ(D->S, Response::Ok);
  EXPECT_EQ(D->Verdict, "unknown");
  EXPECT_EQ(D->Reason, "timeout");
  EXPECT_EQ(D->ExitCode, 3);
  EXPECT_EQ(D->Cache, "miss");
  EXPECT_EQ(D->RetryAfterMs, 250u);
  EXPECT_EQ(D->Body, R.Body);
  EXPECT_TRUE(D->Publishable);
  EXPECT_TRUE(D->SelfCheckFailed);
  EXPECT_EQ(D->BudgetTrips, 2u);
  EXPECT_EQ(D->DegradedRetries, 1u);
  EXPECT_TRUE(D->FaultFired);
}

TEST(ServeProtocolTest, MalformedPayloadsAreStructuredErrors) {
  const char *Bad[] = {
      "",                             // no header line
      "junk\nx",                      // bad magic
      "postr-serve/1\n",              // missing command
      "postr-serve/1 frobnicate\n",   // unknown command
      "postr-serve/1 solve\nbad\n\n", // malformed header line
      "postr-serve/1 solve\n: v\n\n", // empty key
  };
  for (const char *P : Bad)
    EXPECT_FALSE(static_cast<bool>(serve::decodeRequest(P))) << P;
  // Hostile numerals must not wrap.
  EXPECT_FALSE(static_cast<bool>(serve::decodeRequest(
      "postr-serve/1 solve\ntimeout-ms: 99999999999999999999999\n\n")));
  // Unknown headers are skipped so the protocol can grow.
  EXPECT_TRUE(static_cast<bool>(
      serve::decodeRequest("postr-serve/1 solve\nx-future: 1\n\n(a)")));
}

TEST(ServeProtocolTest, FramingOverPipe) {
  int Fds[2];
  ASSERT_EQ(::pipe(Fds), 0);
  ASSERT_TRUE(serve::writeFrame(Fds[1], "hello frame"));
  Result<std::string> R = serve::readFrame(Fds[0], 1024);
  ASSERT_TRUE(static_cast<bool>(R)) << R.error();
  EXPECT_EQ(*R, "hello frame");

  // A hostile length prefix is rejected without allocating.
  ASSERT_TRUE(serve::writeFrame(Fds[1], std::string(64, 'x')));
  Result<std::string> Big = serve::readFrame(Fds[0], 16);
  ASSERT_FALSE(static_cast<bool>(Big));
  EXPECT_NE(Big.error().find("cap"), std::string::npos);

  // Deadline: nothing to read within 50ms fails with "timeout".
  int Empty[2];
  ASSERT_EQ(::pipe(Empty), 0);
  Result<std::string> T = serve::readFrame(Empty[0], 1024, 50);
  ASSERT_FALSE(static_cast<bool>(T));
  EXPECT_EQ(T.error(), "timeout");

  // A truncated frame is "unexpected eof", a clean close is "eof".
  unsigned char Prefix[4] = {0, 0, 0, 10};
  ASSERT_EQ(::write(Empty[1], Prefix, 4), 4);
  ASSERT_EQ(::write(Empty[1], "abc", 3), 3);
  ::close(Empty[1]);
  Result<std::string> Trunc = serve::readFrame(Empty[0], 1024);
  ASSERT_FALSE(static_cast<bool>(Trunc));
  EXPECT_NE(Trunc.error().find("unexpected eof"), std::string::npos);
  ::close(Empty[0]);

  ::close(Fds[1]);
  // Drain the leftover rejected-frame bytes (each read consumes a bogus
  // prefix and fails on the cap) until the clean EOF surfaces.
  bool SawEof = false;
  for (int I = 0; I < 100 && !SawEof; ++I) {
    Result<std::string> Left = serve::readFrame(Fds[0], 1024);
    SawEof = !Left && Left.error() == "eof";
  }
  EXPECT_TRUE(SawEof);
  ::close(Fds[0]);
}

//===----------------------------------------------------------------------===//
// Result cache
//===----------------------------------------------------------------------===//

TEST(ResultCacheTest, LruEvictionByBytes) {
  serve::ResultCache C(700);
  auto Reply = [](const char *V) {
    serve::CachedReply R;
    R.Verdict = V;
    return R;
  };
  // Each entry is ~key + verdict + 128 bytes; a 700-byte cap holds ~4.
  for (int I = 0; I < 8; ++I)
    C.publish("key-" + std::to_string(I) + std::string(30, 'k'), Reply("sat"));
  serve::ResultCacheStats St = C.stats();
  EXPECT_GT(St.Evictions, 0u);
  EXPECT_LE(St.Bytes, 700u);
  EXPECT_LT(St.Entries, 8u);
  // The oldest key is gone, the newest is resident.
  EXPECT_FALSE(
      C.lookup("key-0" + std::string(30, 'k')).has_value());
  EXPECT_TRUE(C.lookup("key-7" + std::string(30, 'k')).has_value());
  // LRU recency: touching an old entry protects it from the next
  // eviction round.
  ASSERT_TRUE(C.lookup("key-5" + std::string(30, 'k')).has_value());
  for (int I = 8; I < 11; ++I)
    C.publish("key-" + std::to_string(I) + std::string(30, 'k'), Reply("sat"));
  EXPECT_TRUE(C.lookup("key-5" + std::string(30, 'k')).has_value());

  // An entry bigger than the whole cache is refused outright.
  serve::CachedReply Huge;
  Huge.Verdict = "sat";
  Huge.Body = std::string(4096, 'b');
  C.publish("huge", Huge);
  EXPECT_FALSE(C.lookup("huge").has_value());

  C.rejectPoisoned();
  C.erase("key-5" + std::string(30, 'k')); // still resident (kept by LRU)
  St = C.stats();
  EXPECT_EQ(St.PoisonedRejects, 1u);
  EXPECT_EQ(St.ParanoidMismatches, 1u);
  EXPECT_FALSE(C.lookup("key-5" + std::string(30, 'k')).has_value());
}

//===----------------------------------------------------------------------===//
// Automata-op cache
//===----------------------------------------------------------------------===//

automata::Nfa abStar() {
  automata::Nfa A(2);
  automata::State Q0 = A.addState(), Q1 = A.addState();
  A.markInitial(Q0);
  A.markFinal(Q0);
  A.addTransition(Q0, 0, Q1);
  A.addTransition(Q1, 1, Q0);
  return A;
}

TEST(NfaOpCacheTest, StructuralHashIsInsertionOrderInvariant) {
  automata::Nfa A(2);
  automata::State A0 = A.addState(), A1 = A.addState();
  A.markInitial(A0);
  A.markFinal(A1);
  A.addTransition(A0, 0, A1);
  A.addTransition(A0, 1, A0);
  automata::Nfa B(2);
  automata::State B0 = B.addState(), B1 = B.addState();
  B.markInitial(B0);
  B.markFinal(B1);
  B.addTransition(B0, 1, B0); // same transitions, other order
  B.addTransition(B0, 0, B1);
  EXPECT_EQ(serve::structuralHash(A), serve::structuralHash(B));
  EXPECT_TRUE(serve::structurallyEqual(A, B));
  B.addTransition(B1, 0, B1);
  EXPECT_FALSE(serve::structurallyEqual(A, B));
}

TEST(NfaOpCacheTest, StagedValidatedInsertion) {
  serve::NfaOpCache C(1 << 20);
  automata::Nfa A = abStar(), B = abStar();
  automata::Nfa Fresh = automata::intersect(A, B);

  EXPECT_FALSE(C.lookup(serve::NfaOpCache::Op::Intersect, A, &B).has_value());
  C.stage(serve::NfaOpCache::Op::Intersect, A, &B, Fresh);
  // Staged entries are visible to the in-flight query...
  EXPECT_TRUE(C.lookup(serve::NfaOpCache::Op::Intersect, A, &B).has_value());
  // ...but dropping them (failed query) leaves nothing behind.
  C.dropStaged();
  EXPECT_FALSE(C.lookup(serve::NfaOpCache::Op::Intersect, A, &B).has_value());
  EXPECT_EQ(C.stats().StagedDropped, 1u);

  C.stage(serve::NfaOpCache::Op::Intersect, A, &B, Fresh);
  C.publishStaged();
  std::optional<automata::Nfa> Hit =
      C.lookup(serve::NfaOpCache::Op::Intersect, A, &B);
  ASSERT_TRUE(Hit.has_value());
  // A verified hit is bit-identical to recomputation.
  EXPECT_TRUE(serve::structurallyEqual(*Hit, Fresh));
  EXPECT_EQ(C.stats().Entries, 1u);
}

TEST(NfaOpCacheTest, HookMemoizesIntersectAndDeterminize) {
  serve::NfaOpCache C(1 << 20);
  automata::Nfa A = abStar(), B = abStar();
  automata::Nfa Cold, Warm, DCold, DWarm;
  {
    serve::NfaCacheScope Scope(&C);
    Cold = automata::intersect(A, B);
    DCold = automata::determinize(A);
    C.publishStaged();
    Warm = automata::intersect(A, B);
    DWarm = automata::determinize(A);
  }
  EXPECT_TRUE(serve::structurallyEqual(Cold, Warm));
  EXPECT_TRUE(serve::structurallyEqual(DCold, DWarm));
  EXPECT_GE(C.stats().Hits, 2u);
  // Outside the scope the hook is inert: no hits accrue.
  uint64_t HitsBefore = C.stats().Hits + C.stats().Misses;
  automata::intersect(A, B);
  EXPECT_EQ(C.stats().Hits + C.stats().Misses, HitsBefore);
}

//===----------------------------------------------------------------------===//
// Server: deadlines
//===----------------------------------------------------------------------===//

TEST(ServeWorkerTest, EffectiveTimeoutIsTightestBound) {
  serve::ServeOptions O;
  O.MaxTimeoutMs = 60000;
  EXPECT_EQ(serve::effectiveTimeoutMs(0, 0, O), 60000u);
  EXPECT_EQ(serve::effectiveTimeoutMs(500, 0, O), 500u);
  EXPECT_EQ(serve::effectiveTimeoutMs(0, 700, O), 700u);
  EXPECT_EQ(serve::effectiveTimeoutMs(500, 700, O), 500u);
  EXPECT_EQ(serve::effectiveTimeoutMs(900, 700, O), 700u);
  O.MaxTimeoutMs = 100;
  EXPECT_EQ(serve::effectiveTimeoutMs(500, 700, O), 100u);
  O.MaxTimeoutMs = 0; // falls back to the smtlib_cli default cap
  EXPECT_EQ(serve::effectiveTimeoutMs(0, 0, O), 60000u);
}

//===----------------------------------------------------------------------===//
// Server: cold/warm equality and verdict fidelity
//===----------------------------------------------------------------------===//

struct CorpusItem {
  std::string Text;
  Verdict Expected;
};

/// Fuzz seeds filtered to instances the pipeline settles quickly (tight
/// step/memory probe, determinate verdict). The solver is deterministic,
/// so a served solve of the same script follows the same fast search —
/// this keeps the suite bounded without capping the server itself.
std::vector<CorpusItem> quickCorpus(uint64_t FirstSeed, size_t Want) {
  std::vector<CorpusItem> Out;
  for (uint64_t Seed = FirstSeed; Out.size() < Want && Seed < FirstSeed + 300;
       ++Seed) {
    strings::Problem P = fuzz::generate(Seed);
    solver::SolveOptions Probe;
    Probe.TimeoutMs = 10000;
    Probe.MemLimitBytes = 64ull << 20;
    Probe.StepLimit = 20000;
    solver::SolveResult R = solver::solveProblem(P, Probe);
    if (R.V == Verdict::Unknown)
      continue;
    Out.push_back({smtlib::printProblem(P), R.V});
  }
  return Out;
}

TEST(ServeServerTest, ColdAndWarmRepliesAreBitEqualAndMatchOneShot) {
  std::vector<CorpusItem> Corpus = quickCorpus(1, 10);
  ASSERT_GE(Corpus.size(), 4u);
  serve::ServeOptions O;
  O.Workers = 2;
  O.MaxTimeoutMs = 20000;
  serve::Server S(O);
  for (size_t I = 0; I < Corpus.size(); ++I) {
    Request Q;
    Q.K = Request::Solve;
    Q.Id = "corpus-" + std::to_string(I);
    Q.Smt2 = Corpus[I].Text;
    Response Cold = S.submit(Q);
    ASSERT_EQ(Cold.S, Response::Ok) << Cold.Message;
    EXPECT_EQ(Cold.Verdict, verdictName(Corpus[I].Expected)) << "item " << I;
    EXPECT_EQ(Cold.Cache, "miss") << "item " << I;
    Response Warm = S.submit(Q);
    ASSERT_EQ(Warm.S, Response::Ok);
    EXPECT_EQ(Warm.Cache, "hit") << "item " << I;
    // Warm replies replay the cold bytes exactly.
    EXPECT_EQ(Warm.Verdict, Cold.Verdict);
    EXPECT_EQ(Warm.Reason, Cold.Reason);
    EXPECT_EQ(Warm.ExitCode, Cold.ExitCode);
    EXPECT_EQ(Warm.Body, Cold.Body);
  }
  serve::ResultCacheStats CS = S.cacheStats();
  EXPECT_GT(CS.Hits, 0u);
  EXPECT_GT(CS.Misses, 0u);
}

TEST(ServeServerTest, NoCacheBypassesLookupAndPublish) {
  serve::ServeOptions O;
  O.Workers = 1;
  serve::Server S(O);
  Request Q;
  Q.K = Request::Solve;
  Q.NoCache = true;
  Q.Smt2 = "(declare-fun x () String)(assert (= x \"ab\"))(check-sat)";
  Response A = S.submit(Q);
  ASSERT_EQ(A.S, Response::Ok);
  EXPECT_EQ(A.Verdict, "sat");
  EXPECT_EQ(A.Cache, "bypass");
  Response B = S.submit(Q);
  EXPECT_EQ(B.Cache, "bypass");
  serve::ResultCacheStats CS = S.cacheStats();
  EXPECT_EQ(CS.Hits + CS.Misses, 0u);
  EXPECT_EQ(CS.Entries, 0u);
}

TEST(ServeServerTest, MalformedScriptsNeverReachAWorker) {
  serve::ServeOptions O;
  O.Workers = 1;
  serve::Server S(O);
  Request Q;
  Q.K = Request::Solve;
  Q.Smt2 = "(assert (= x";
  Response R = S.submit(Q);
  EXPECT_EQ(R.S, Response::Error);
  EXPECT_EQ(R.ExitCode, 1);
  EXPECT_NE(R.Message.find("parse error"), std::string::npos);
  EXPECT_EQ(S.stats().ParseErrors, 1u);
  EXPECT_EQ(S.stats().Solved, 0u);
}

//===----------------------------------------------------------------------===//
// Server: containment ladder
//===----------------------------------------------------------------------===//

TEST(ServeServerTest, SimulatedCrashQuarantinesRebuildsAndRetries) {
  serve::ServeOptions O;
  O.Workers = 1;
  O.AllowTestAbort = true;
  serve::Server S(O);
  Request Q;
  Q.K = Request::Solve;
  Q.TestAbort = true;
  Q.Smt2 = "(declare-fun x () String)(assert (= x \"ab\"))(check-sat)";
  Response R = S.submit(Q);
  // The crash is contained: the retry (on a rebuilt session, degraded
  // options) still produces the right verdict.
  ASSERT_EQ(R.S, Response::Ok) << R.Message;
  EXPECT_EQ(R.Verdict, "sat");
  serve::ServerStats St = S.stats();
  EXPECT_EQ(St.Quarantines, 1u);
  EXPECT_EQ(St.WorkerCrashes, 1u);
  EXPECT_EQ(St.DegradedRetries, 1u);
  EXPECT_EQ(St.Exhausted, 0u);

  // Without AllowTestAbort the flag is inert (a hostile client cannot
  // crash workers).
  serve::ServeOptions O2;
  O2.Workers = 1;
  serve::Server S2(O2);
  Response R2 = S2.submit(Q);
  ASSERT_EQ(R2.S, Response::Ok);
  EXPECT_EQ(R2.Verdict, "sat");
  EXPECT_EQ(S2.stats().WorkerCrashes, 0u);
}

TEST(ServeServerTest, ResourceTripQuarantinesRetriesThenAnswersStructured) {
  // Establish the assumption: under a 1-step budget this problem trips
  // one-shot (so the serve-path behavior below is deterministic).
  const char *Text = "(declare-fun x () String)"
                     "(declare-fun y () String)"
                     "(assert (str.in_re x (re.* (str.to_re \"ab\"))))"
                     "(assert (str.in_re y (re.* (str.to_re \"ab\"))))"
                     "(assert (not (= (str.++ x y) (str.++ y x))))"
                     "(check-sat)";
  Result<strings::Problem> P = smtlib::parseString(Text);
  ASSERT_TRUE(static_cast<bool>(P));
  solver::SolveOptions OneShot;
  OneShot.TimeoutMs = 20000;
  OneShot.StepLimit = 1;
  solver::SolveResult OS = solver::solveProblem(*P, OneShot);
  ASSERT_EQ(OS.V, Verdict::Unknown);
  ASSERT_EQ(OS.Stop, StopReason::StepBudget);

  // The hook swaps the serve-wired budget for a 50-step one, putting the
  // worker on the same MemOut/StepBudget containment rung as a real
  // memory blow-up, deterministically.
  serve::ServeOptions O;
  O.Workers = 1;
  O.MutateSolveOptions = [](solver::SolveOptions &SO) {
    SO.Budget = nullptr;
    SO.TimeoutMs = 20000;
    SO.StepLimit = 1;
  };
  serve::Server S(O);
  Request Q;
  Q.K = Request::Solve;
  Q.Smt2 = Text;
  Response R = S.submit(Q);
  ASSERT_EQ(R.S, Response::Ok);
  EXPECT_EQ(R.Verdict, "unknown");
  EXPECT_EQ(R.Reason, "stepbudget");
  EXPECT_EQ(R.ExitCode, 6);
  serve::ServerStats St = S.stats();
  // First attempt trips → quarantine + degraded retry; the retry trips
  // under the same budget → exhausted, structured unknown.
  EXPECT_EQ(St.Quarantines, 2u);
  EXPECT_EQ(St.DegradedRetries, 1u);
  EXPECT_EQ(St.Exhausted, 1u);
  // Resource-tripped results are never published.
  EXPECT_EQ(S.cacheStats().Entries, 0u);
}

TEST(ServeServerTest, PoisonedEntriesAreNeverServed) {
  std::atomic<bool> Tamper{true};
  serve::ServeOptions O;
  O.Workers = 1;
  O.MutateSolveOptions = [&Tamper](solver::SolveOptions &SO) {
    if (!Tamper.load())
      return;
    SO.TamperModel = [](std::map<VarId, Word> &Words,
                        std::map<strings::IntVarId, int64_t> &) {
      for (auto &[X, W] : Words) {
        (void)X;
        W.assign(7, 0); // falsifies (= x "ab") while staying in-alphabet
      }
    };
  };
  serve::Server S(O);
  Request Q;
  Q.K = Request::Solve;
  Q.Smt2 = "(declare-fun x () String)(assert (= x \"ab\"))(check-sat)";

  // The self-check rejects the tampered model on both the first attempt
  // and the degraded retry: structured unknown, exit code 7, and —
  // critically — nothing published to the cache.
  Response R = S.submit(Q);
  ASSERT_EQ(R.S, Response::Ok);
  EXPECT_EQ(R.Verdict, "unknown");
  EXPECT_EQ(R.Reason, "self-check failed");
  EXPECT_EQ(R.ExitCode, 7);
  serve::ServerStats St = S.stats();
  EXPECT_EQ(St.Quarantines, 2u);
  EXPECT_EQ(St.DegradedRetries, 1u);
  EXPECT_EQ(St.Exhausted, 1u);
  EXPECT_EQ(S.cacheStats().Entries, 0u);

  // Heal the worker: the same query must now MISS (the poisoned result
  // was never served from the cache) and return the true verdict...
  Tamper.store(false);
  Response Fresh = S.submit(Q);
  ASSERT_EQ(Fresh.S, Response::Ok);
  EXPECT_EQ(Fresh.Verdict, "sat");
  EXPECT_EQ(Fresh.Cache, "miss");
  // ...and only now is it cached.
  Response Warm = S.submit(Q);
  EXPECT_EQ(Warm.Cache, "hit");
  EXPECT_EQ(Warm.Verdict, "sat");
}

TEST(ServeServerTest, AdmissionControlShedsWithRetryAfter) {
  std::atomic<int> SlowSolves{0};
  serve::ServeOptions O;
  O.Workers = 1;
  O.QueueMax = 0; // no waiting room: a busy worker means shed
  O.MutateSolveOptions = [&SlowSolves](solver::SolveOptions &) {
    ++SlowSolves;
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
  };
  serve::Server S(O);
  Request Q;
  Q.K = Request::Solve;
  Q.NoCache = true;
  Q.Smt2 = "(declare-fun x () String)(assert (= x \"ab\"))(check-sat)";

  std::thread T([&] { (void)S.submit(Q); });
  // Wait until the slow solve holds the only worker, then submit.
  while (SlowSolves.load() == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  Response Shed = S.submit(Q);
  T.join();
  ASSERT_EQ(Shed.S, Response::Busy);
  EXPECT_GT(Shed.RetryAfterMs, 0u);
  EXPECT_EQ(S.stats().Shed, 1u);
}

//===----------------------------------------------------------------------===//
// Soak: randomized concurrent mix, verdicts vs one-shot
//===----------------------------------------------------------------------===//

TEST(ServeServerTest, ConcurrentSoakMatchesOneShotVerdicts) {
  // Precompute a corpus with one-shot expected verdicts.
  std::vector<CorpusItem> Corpus = quickCorpus(40, 10);
  ASSERT_GE(Corpus.size(), 4u);

  serve::ServeOptions O;
  O.Workers = 3;
  O.QueueMax = 16;
  O.AllowTestAbort = true;
  O.MaxTimeoutMs = 15000;
  serve::Server S(O);

  std::atomic<uint32_t> Mismatches{0}, Served{0}, Busy{0}, Errors{0};
  auto Client = [&](uint32_t Tid) {
    std::mt19937 Rng(1234 + Tid);
    for (int I = 0; I < 25; ++I) {
      uint32_t Dice = Rng() % 100;
      Request Q;
      Q.K = Request::Solve;
      Q.Id = std::to_string(Tid) + "-" + std::to_string(I);
      const CorpusItem *Expect = nullptr;
      if (Dice < 10) {
        Q.Smt2 = "(assert (= x"; // malformed
      } else if (Dice < 20) {
        Q.Smt2 = Corpus[Rng() % Corpus.size()].Text;
        Q.TimeoutMs = 1 + Rng() % 2; // mid-solve cancellation pressure
      } else if (Dice < 25) {
        Q.Smt2 = Corpus[Rng() % Corpus.size()].Text;
        Q.TestAbort = true; // crash-containment pressure
        Q.NoCache = true;   // a cache hit would never reach a worker
      } else {
        const CorpusItem &It = Corpus[Rng() % Corpus.size()];
        Q.Smt2 = It.Text;
        Q.NoCache = Rng() % 4 == 0;
        Expect = &It;
      }
      Response R = S.submit(Q);
      // Every reply is structured; nothing crashes the server.
      if (R.S == Response::Busy) {
        ++Busy;
        continue;
      }
      if (R.S == Response::Error) {
        ++Errors;
        EXPECT_NE(R.Message.find("parse error"), std::string::npos)
            << R.Message;
        continue;
      }
      ++Served;
      if (Expect && Expect->Expected != Verdict::Unknown &&
          R.Verdict != verdictName(Expect->Expected))
        ++Mismatches;
    }
  };
  std::vector<std::thread> Threads;
  for (uint32_t T = 0; T < 4; ++T)
    Threads.emplace_back(Client, T);
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Mismatches.load(), 0u);
  EXPECT_GT(Served.load(), 0u);
  serve::ServerStats St = S.stats();
  EXPECT_EQ(St.Requests, 100u);
  EXPECT_GT(St.Quarantines, 0u); // the TestAbort traffic exercised it
  EXPECT_EQ(St.ParseErrors, Errors.load());
}

} // namespace
