//===- tests/RegexTest.cpp - Regex frontend tests ---------------------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//

#include "regex/Regex.h"

#include <gtest/gtest.h>

using namespace postr;
using namespace postr::regex;
using automata::Nfa;

namespace {

/// Compiles \p Pattern against a fresh alphabet and checks membership of
/// the listed words (given as character strings).
void expectLanguage(const std::string &Pattern,
                    const std::vector<std::string> &In,
                    const std::vector<std::string> &Out) {
  Alphabet Sigma;
  Nfa A = compileString(Pattern, Sigma);
  for (const std::string &S : In) {
    Word W;
    for (char C : S)
      W.push_back(Sigma.intern(C));
    EXPECT_TRUE(A.accepts(W)) << Pattern << " should accept \"" << S << "\"";
  }
  for (const std::string &S : Out) {
    Word W;
    bool AllKnown = true;
    for (char C : S) {
      std::optional<Symbol> Sym = Sigma.lookup(C);
      if (!Sym) {
        AllKnown = false;
        break;
      }
      W.push_back(*Sym);
    }
    if (!AllKnown)
      continue; // word uses symbols outside the alphabet: trivially out
    EXPECT_FALSE(A.accepts(W)) << Pattern << " should reject \"" << S
                               << "\"";
  }
}

TEST(RegexTest, Literals) {
  expectLanguage("abc", {"abc"}, {"", "ab", "abcc", "acb"});
}

TEST(RegexTest, UnionAndGrouping) {
  expectLanguage("a|bc", {"a", "bc"}, {"", "b", "c", "abc"});
  expectLanguage("(a|b)c", {"ac", "bc"}, {"c", "ab", "abc"});
}

TEST(RegexTest, StarPlusOptional) {
  expectLanguage("a*", {"", "a", "aaaa"}, {});
  expectLanguage("a+", {"a", "aa"}, {""});
  expectLanguage("ab?", {"a", "ab"}, {"", "abb"});
  expectLanguage("(ab)*", {"", "ab", "abab"}, {"a", "ba", "aba"});
}

TEST(RegexTest, CharacterClasses) {
  expectLanguage("[abc]+", {"a", "cab"}, {""});
  expectLanguage("[a-c]", {"a", "b", "c"}, {""});
  expectLanguage("x[0-2]y", {"x0y", "x2y"}, {"xy", "x3y"});
}

TEST(RegexTest, NegatedClassUsesEffectiveAlphabet) {
  Alphabet Sigma;
  Sigma.intern('a');
  Sigma.intern('b');
  Sigma.intern('c');
  Result<NodePtr> R = parse("[^a]");
  ASSERT_TRUE(static_cast<bool>(R));
  collectAlphabet(**R, Sigma);
  Nfa A = compile(**R, Sigma);
  EXPECT_FALSE(A.accepts({*Sigma.lookup('a')}));
  EXPECT_TRUE(A.accepts({*Sigma.lookup('b')}));
  EXPECT_TRUE(A.accepts({*Sigma.lookup('c')}));
}

TEST(RegexTest, BoundedRepetition) {
  expectLanguage("a{3}", {"aaa"}, {"", "a", "aa", "aaaa"});
  expectLanguage("a{1,3}", {"a", "aa", "aaa"}, {"", "aaaa"});
  expectLanguage("a{2,}", {"aa", "aaaaa"}, {"", "a"});
  expectLanguage("(ab){2}", {"abab"}, {"ab", "ababab"});
}

TEST(RegexTest, Escapes) {
  expectLanguage("\\*\\|", {"*|"}, {"", "*"});
}

TEST(RegexTest, DotMatchesWholeAlphabet) {
  Alphabet Sigma;
  Sigma.intern('a');
  Sigma.intern('b');
  Result<NodePtr> R = parse(".");
  ASSERT_TRUE(static_cast<bool>(R));
  Nfa A = compile(**R, Sigma);
  EXPECT_TRUE(A.accepts({*Sigma.lookup('a')}));
  EXPECT_TRUE(A.accepts({*Sigma.lookup('b')}));
  EXPECT_FALSE(A.accepts({}));
}

TEST(RegexTest, EmptyPatternIsEpsilon) {
  Alphabet Sigma;
  Nfa A = compileString("", Sigma);
  EXPECT_TRUE(A.accepts({}));
}

TEST(RegexTest, ParseErrors) {
  EXPECT_FALSE(static_cast<bool>(parse("(ab")));
  EXPECT_FALSE(static_cast<bool>(parse("a)")));
  EXPECT_FALSE(static_cast<bool>(parse("*a")));
  EXPECT_FALSE(static_cast<bool>(parse("a{,3}")));
  EXPECT_FALSE(static_cast<bool>(parse("a{3,2}")));
  EXPECT_FALSE(static_cast<bool>(parse("[b-a]")));
  EXPECT_FALSE(static_cast<bool>(parse("[]")));
  EXPECT_FALSE(static_cast<bool>(parse("a\\")));
}

TEST(RegexTest, FlatPaperLanguagesCompileFlat) {
  // Languages used by the position-hard family (footnote 10).
  Alphabet Sigma;
  EXPECT_TRUE(compileString("a*", Sigma).isFlat());
  EXPECT_TRUE(compileString("(abc)*", Sigma).isFlat());
  EXPECT_TRUE(compileString("(ab)*c((ab)*|(ba)*)", Sigma).isFlat());
  EXPECT_FALSE(compileString("(a|b)*", Sigma).isFlat());
}

} // namespace
