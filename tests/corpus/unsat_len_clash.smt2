; Pure length-arithmetic clash refuted by a Farkas certificate.
(set-logic QF_SLIA)
(declare-fun x () String)
(assert (str.in_re x (re.* (str.to_re "a"))))
(assert (>= (str.len x) 2))
(assert (<= (str.len x) 1))
(check-sat)
