; The character at position 0 of "ba..." is "b", never "a".
(set-logic QF_S)
(declare-fun x () String)
(assert (str.in_re x (re.++ (str.to_re "ba") (re.* (str.to_re "a")))))
(assert (= (str.at x 0) "a"))
(check-sat)
