; Simple Sat: any word in (a|b){1,3} works; exercises model validation.
(set-logic QF_S)
(declare-fun x () String)
(assert (str.in_re x (re.loop (re.union (str.to_re "a") (str.to_re "b")) 1 3)))
(assert (not (= x "a")))
(check-sat)
