; Powers of a common primitive word always commute: xy != yx is
; refuted through stabilization over (ab)*.
(set-logic QF_S)
(declare-fun x () String)
(declare-fun y () String)
(assert (str.in_re x (re.* (str.to_re "ab"))))
(assert (str.in_re y (re.* (str.to_re "ab"))))
(assert (not (= (str.++ x y) (str.++ y x))))
(check-sat)
