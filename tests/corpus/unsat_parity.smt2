; (ab)* admits only even lengths: the Parikh encoding refutes len = 3.
(set-logic QF_SLIA)
(declare-fun x () String)
(assert (str.in_re x (re.* (str.to_re "ab"))))
(assert (= (str.len x) 3))
(check-sat)
