; a-only strings of length >= 1 must contain "a".
(set-logic QF_SLIA)
(declare-fun x () String)
(assert (str.in_re x (re.+ (str.to_re "a"))))
(assert (not (str.contains x "a")))
(check-sat)
