; x ranges over a singleton language, so x != "ab" cannot hold.
(set-logic QF_S)
(declare-fun x () String)
(assert (str.in_re x (str.to_re "ab")))
(assert (not (= x "ab")))
(check-sat)
