; Every string is a prefix of itself plus a suffix.
(set-logic QF_S)
(declare-fun x () String)
(declare-fun y () String)
(assert (str.in_re x (re.union (str.to_re "a") (str.to_re "ab"))))
(assert (not (str.prefixof x (str.++ x y))))
(check-sat)
