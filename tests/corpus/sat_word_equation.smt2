; Sat word equation with concatenation and a length side constraint.
(set-logic QF_SLIA)
(declare-fun x () String)
(declare-fun y () String)
(assert (= (str.++ "a" x "b") (str.++ x "ab")))
(assert (<= (str.len y) 2))
(assert (str.prefixof y x))
(check-sat)
