#!/usr/bin/env bash
#===- tools/check_docs_links.sh - Intra-repo markdown link checker -------===#
#
# Part of PosTr, a reproduction of "A Uniform Framework for Handling
# Position Constraints in String Solving" (PLDI 2025).
#
# Fails when any relative link target in a tracked markdown file does
# not exist. External (scheme-qualified) links and pure #anchors are
# skipped; anchor suffixes on relative links are stripped before the
# existence check. Run from anywhere; checks the repo containing this
# script. CI runs it in the docs job.
#
#===----------------------------------------------------------------------===#

set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
FAIL=0
CHECKED=0

# Markdown files, excluding build trees.
while IFS= read -r MD; do
  DIR="$(dirname "$MD")"
  # Inline links: ](target). Reference-style links are not used in this
  # repo's docs; grep -o keeps every occurrence, one per line.
  while IFS= read -r TARGET; do
    case "$TARGET" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    CLEAN="${TARGET%%#*}"
    [ -n "$CLEAN" ] || continue
    CHECKED=$((CHECKED + 1))
    if [ ! -e "$DIR/$CLEAN" ]; then
      echo "error: $MD links to missing target '$TARGET'" >&2
      FAIL=1
    fi
  done < <(grep -o '](\([^)]*\))' "$MD" 2>/dev/null \
             | sed 's/^](//; s/)$//')
done < <(find "$ROOT" -name '*.md' -not -path '*/build*/*' \
           -not -path '*/.git/*')

if [ "$CHECKED" -eq 0 ]; then
  echo "error: link checker matched no links — broken extraction?" >&2
  exit 1
fi
echo "checked $CHECKED relative link(s)"
exit "$FAIL"
