//===- tools/postr_client.cpp - postr-serve client --------------------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
// Command-line client for the postr_serve daemon. Solves a script and
// prints what `smtlib_cli` would (verdict line, model comments), with
// the same exit codes, so drivers can swap one-shot and served solving:
//
//   postr_client --socket /tmp/postr.sock file.smt2
//   postr_client --socket /tmp/postr.sock --timeout-ms 500 < q.smt2
//   postr_client --socket /tmp/postr.sock --stats | --ping | --shutdown
//
// `busy` replies (admission control shed the request) are retried with
// jittered exponential backoff seeded from the server's retry-after
// hint; --wait-ms bounds how long connect itself is retried, so CI can
// launch the daemon and the client together.
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

using namespace postr;

namespace {

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s --socket PATH [options] [file.smt2]\n"
      "  --timeout-ms N   client budget (server intersects with its cap)\n"
      "  --id ID          correlation id echoed by the server\n"
      "  --no-cache       bypass the cross-query cache\n"
      "  --retries N      max backoff retries on busy (default 8)\n"
      "  --wait-ms N      keep retrying connect for N ms (default 0)\n"
      "  --stats          print the daemon's counter JSON\n"
      "  --ping           health check (exit 0 iff the daemon answers)\n"
      "  --shutdown       stop the daemon\n"
      "  --test-abort     crash the worker mid-query (test rigs only)\n"
      "With no file, the script is read from stdin.\n",
      Argv0);
  return 64;
}

uint64_t nowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

int connectTo(const std::string &Path, uint64_t WaitMs) {
  uint64_t Deadline = nowMs() + WaitMs;
  for (;;) {
    int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0)
      return -1;
    sockaddr_un Addr = {};
    Addr.sun_family = AF_UNIX;
    std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) == 0)
      return Fd;
    ::close(Fd);
    if (nowMs() >= Deadline)
      return -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
}

std::string readAll(std::FILE *F) {
  std::string S;
  char Buf[65536];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    S.append(Buf, N);
  return S;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string SocketPath, Id, File;
  uint64_t TimeoutMs = 0, WaitMs = 0;
  uint32_t Retries = 8;
  bool NoCache = false, TestAbort = false;
  serve::Request::Kind Kind = serve::Request::Solve;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--socket" && I + 1 < Argc)
      SocketPath = Argv[++I];
    else if (A == "--timeout-ms" && I + 1 < Argc)
      TimeoutMs = std::strtoull(Argv[++I], nullptr, 10);
    else if (A == "--id" && I + 1 < Argc)
      Id = Argv[++I];
    else if (A == "--retries" && I + 1 < Argc)
      Retries = static_cast<uint32_t>(std::strtoul(Argv[++I], nullptr, 10));
    else if (A == "--wait-ms" && I + 1 < Argc)
      WaitMs = std::strtoull(Argv[++I], nullptr, 10);
    else if (A == "--no-cache")
      NoCache = true;
    else if (A == "--test-abort")
      TestAbort = true;
    else if (A == "--stats")
      Kind = serve::Request::Stats;
    else if (A == "--ping")
      Kind = serve::Request::Ping;
    else if (A == "--shutdown")
      Kind = serve::Request::Shutdown;
    else if (!A.empty() && A[0] != '-' && File.empty())
      File = A;
    else
      return usage(Argv[0]);
  }
  if (SocketPath.empty())
    return usage(Argv[0]);

  serve::Request Req;
  Req.K = Kind;
  Req.Id = Id;
  Req.TimeoutMs = TimeoutMs;
  Req.NoCache = NoCache;
  Req.TestAbort = TestAbort;
  if (Kind == serve::Request::Solve) {
    if (!File.empty()) {
      std::FILE *F = std::fopen(File.c_str(), "rb");
      if (!F) {
        std::fprintf(stderr, "cannot open %s\n", File.c_str());
        return 66;
      }
      Req.Smt2 = readAll(F);
      std::fclose(F);
    } else {
      Req.Smt2 = readAll(stdin);
    }
  }

  // Jittered exponential backoff on busy: base from the server's
  // retry-after hint, doubled per attempt, with up to 50% random jitter
  // so a shed burst does not re-arrive in lockstep.
  std::mt19937 Rng(static_cast<uint32_t>(::getpid()) ^
                   static_cast<uint32_t>(nowMs()));
  for (uint32_t Attempt = 0;; ++Attempt) {
    int Fd = connectTo(SocketPath, WaitMs);
    if (Fd < 0) {
      std::fprintf(stderr, "cannot connect to %s\n", SocketPath.c_str());
      return 69;
    }
    serve::Response Resp;
    bool IoOk = serve::writeFrame(Fd, serve::encodeRequest(Req));
    if (IoOk) {
      Result<std::string> Frame =
          serve::readFrame(Fd, serve::DefaultMaxFrameBytes);
      if (Frame) {
        Result<serve::Response> R = serve::decodeResponse(*Frame);
        if (R)
          Resp = *R;
        else
          IoOk = false;
      } else {
        IoOk = false;
      }
    }
    ::close(Fd);
    if (!IoOk) {
      std::fprintf(stderr, "protocol error talking to %s\n",
                   SocketPath.c_str());
      return 70;
    }

    if (Resp.S == serve::Response::Busy) {
      if (Attempt >= Retries) {
        std::fprintf(stderr, "server busy (gave up after %u retries)\n",
                     Retries);
        return 75;
      }
      uint64_t Base = std::max<uint64_t>(Resp.RetryAfterMs, 25)
                      << std::min<uint32_t>(Attempt, 6);
      Base = std::min<uint64_t>(Base, 2000);
      uint64_t Jitter = Rng() % (Base / 2 + 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(Base + Jitter));
      continue;
    }
    if (Resp.S == serve::Response::Error) {
      std::fprintf(stderr, "%s\n", Resp.Message.c_str());
      return Resp.ExitCode ? Resp.ExitCode : 1;
    }
    // Ok.
    switch (Kind) {
    case serve::Request::Ping:
      std::printf("pong\n");
      return 0;
    case serve::Request::Stats:
      std::printf("%s\n", Resp.Body.c_str());
      return 0;
    case serve::Request::Shutdown:
      return 0;
    case serve::Request::Solve:
      break;
    }
    // Print what smtlib_cli would: the verdict line (with the structured
    // reason on unknown), then the model comment lines.
    if (Resp.Verdict == "unknown" && !Resp.Reason.empty())
      std::printf("unknown (%s)\n", Resp.Reason.c_str());
    else
      std::printf("%s\n", Resp.Verdict.c_str());
    if (!Resp.Body.empty())
      std::fputs(Resp.Body.c_str(), stdout);
    if (!Resp.Cache.empty())
      std::printf("; cache %s\n", Resp.Cache.c_str());
    return Resp.ExitCode;
  }
}
