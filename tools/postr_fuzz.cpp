//===- tools/postr_fuzz.cpp - Differential fuzzing driver -------------------===//
//
// Part of PosTr, a reproduction of "A Uniform Framework for Handling
// Position Constraints in String Solving" (PLDI 2025).
//
//===----------------------------------------------------------------------===//
//
// Drives the src/fuzz/ subsystem from the command line:
//
//   postr_fuzz --iters 2000 --seed 1 [--out DIR]
//     Differential mode (default): random problems through the pipeline
//     vs the enumeration oracle. Findings are shrunk to a minimal
//     failing problem and written to DIR as standalone .smt2 repro
//     files, deduplicated by failure signature.
//
//   postr_fuzz --repro FILE
//     Re-runs one repro file through the differential check.
//
//   postr_fuzz --reader-fuzz --iters N --seed S
//     Byte-level mutation of well-formed scripts through the SMT-LIB
//     reader: must never crash, and whatever parses must round-trip
//     through the printer (run under ASan/UBSan in CI).
//
//   postr_fuzz --fault SITE:N[:SEED] --iters N --seed S
//     Fault-injection differential mode: every problem is solved clean
//     and with the injector armed; an injected fault may only turn a
//     verdict into a structured Unknown, never flip it.
//
// Everything is deterministic in --seed: CI failures replay locally.
// Exit code: 0 clean, 1 findings, 2 usage error.
//
//===----------------------------------------------------------------------===//

#include "base/Budget.h"
#include "fuzz/Fuzz.h"
#include "smtlib/Printer.h"
#include "smtlib/Reader.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

using namespace postr;

namespace {

/// splitmix64-style mixing: per-iteration seeds that do not correlate
/// across neighbouring iteration indices.
uint64_t mix(uint64_t A, uint64_t B) {
  uint64_t X = A + 0x9e3779b97f4a7c15ull * (B + 1);
  X ^= X >> 30;
  X *= 0xbf58476d1ce4e5b9ull;
  X ^= X >> 27;
  X *= 0x94d049bb133111ebull;
  X ^= X >> 31;
  return X;
}

struct Args {
  uint64_t Seed = 1;
  uint64_t Iters = 1000;
  std::string Out = "fuzz-corpus";
  bool Shrink = true;
  std::string Repro;
  bool ReaderFuzz = false;
  std::string Fault; ///< SITE:N[:SEED]
  bool Paranoid = false;
  bool Certify = false;
  bool TripsAreFindings = false;
  uint64_t TimeoutMs = 0;
  uint64_t StepLimit = 0;     ///< 0 = keep the DiffOptions default
  uint32_t MaxDisjuncts = 0;  ///< 0 = keep the DiffOptions default
};

void usage() {
  std::fprintf(
      stderr,
      "usage: postr_fuzz [--seed N] [--iters N] [--out DIR] [--no-shrink]\n"
      "                  [--paranoid] [--certify] [--trips-are-findings]\n"
      "                  [--timeout-ms N] [--step-limit N] "
      "[--max-disjuncts N]\n"
      "                  [--repro FILE | --reader-fuzz | --fault "
      "SITE:N[:SEED]]\n");
}

bool parseArgs(int Argc, char **Argv, Args &A) {
  for (int I = 1; I < Argc; ++I) {
    std::string F = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (F == "--seed") {
      const char *V = Next();
      if (!V)
        return false;
      A.Seed = std::strtoull(V, nullptr, 10);
    } else if (F == "--iters") {
      const char *V = Next();
      if (!V)
        return false;
      A.Iters = std::strtoull(V, nullptr, 10);
    } else if (F == "--out") {
      const char *V = Next();
      if (!V)
        return false;
      A.Out = V;
    } else if (F == "--shrink") {
      A.Shrink = true;
    } else if (F == "--no-shrink") {
      A.Shrink = false;
    } else if (F == "--repro") {
      const char *V = Next();
      if (!V)
        return false;
      A.Repro = V;
    } else if (F == "--reader-fuzz") {
      A.ReaderFuzz = true;
    } else if (F == "--fault") {
      const char *V = Next();
      if (!V)
        return false;
      A.Fault = V;
    } else if (F == "--paranoid") {
      A.Paranoid = true;
    } else if (F == "--certify") {
      A.Certify = true;
    } else if (F == "--trips-are-findings") {
      A.TripsAreFindings = true;
    } else if (F == "--timeout-ms") {
      const char *V = Next();
      if (!V)
        return false;
      A.TimeoutMs = std::strtoull(V, nullptr, 10);
    } else if (F == "--step-limit") {
      const char *V = Next();
      if (!V)
        return false;
      A.StepLimit = std::strtoull(V, nullptr, 10);
    } else if (F == "--max-disjuncts") {
      const char *V = Next();
      if (!V)
        return false;
      A.MaxDisjuncts =
          static_cast<uint32_t>(std::strtoul(V, nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", F.c_str());
      return false;
    }
  }
  return true;
}

fuzz::DiffOptions diffOptions(const Args &A) {
  fuzz::DiffOptions O;
  O.SolverTimeoutMs = A.TimeoutMs;
  if (A.StepLimit)
    O.SolverStepLimit = A.StepLimit;
  if (A.MaxDisjuncts)
    O.SolverMaxDisjuncts = A.MaxDisjuncts;
  O.Paranoid = A.Paranoid;
  O.Certify = A.Certify;
  O.TripsAreFindings = A.TripsAreFindings;
  return O;
}

/// Stable signature for deduplication: the failure kind, the two
/// verdicts, and the multiset of assertion kinds of the (shrunk)
/// problem. Distinct root causes that shrink to the same shape are the
/// same bug for triage purposes.
std::string signature(const fuzz::DiffResult &D, const strings::Problem &P) {
  std::string Sig = std::string(fuzz::failureKindName(D.Kind)) + ":" +
                    verdictName(D.SolverV) + ":" + verdictName(D.OracleV);
  std::vector<int> Kinds;
  for (const strings::Assertion &As : P.assertions())
    Kinds.push_back(static_cast<int>(As.Kind));
  std::sort(Kinds.begin(), Kinds.end());
  for (int K : Kinds)
    Sig += ":" + std::to_string(K);
  return Sig;
}

void writeRepro(const std::string &Dir, const std::string &Sig,
                uint64_t Seed, uint64_t Iter, const fuzz::DiffResult &D,
                const strings::Problem &P) {
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  std::string Name = Dir + "/" + fuzz::failureKindName(D.Kind) + "-" +
                     std::to_string(mix(std::hash<std::string>{}(Sig), 0)) +
                     ".smt2";
  std::string Body;
  Body += "; postr_fuzz repro\n";
  Body += "; kind: " + std::string(fuzz::failureKindName(D.Kind)) + "\n";
  Body += "; detail: " + D.Detail + "\n";
  Body += "; seed " + std::to_string(Seed) + " iter " +
          std::to_string(Iter) + "\n";
  Body += smtlib::printProblem(P);
  if (std::FILE *F = std::fopen(Name.c_str(), "wb")) {
    std::fwrite(Body.data(), 1, Body.size(), F);
    std::fclose(F);
    std::fprintf(stderr, "  wrote %s\n", Name.c_str());
  } else {
    std::fprintf(stderr, "  cannot write %s\n", Name.c_str());
  }
}

int runDifferential(const Args &A) {
  fuzz::DiffOptions DO = diffOptions(A);
  fuzz::GenOptions GO;
  std::set<std::string> Seen;
  uint64_t Findings = 0;

  for (uint64_t I = 0; I < A.Iters; ++I) {
    uint64_t S = mix(A.Seed, I);
    strings::Problem P = fuzz::generate(S, GO);
    if ((I & 3) == 3)
      P = fuzz::mutate(P, mix(S, 0x6d757461), GO);
    fuzz::DiffResult D = fuzz::differentialCheck(P, DO);
    if (!D.failed())
      continue;
    ++Findings;
    std::fprintf(stderr,
                 "[iter %" PRIu64 "] %s: %s (%zu atoms)\n", I,
                 fuzz::failureKindName(D.Kind), D.Detail.c_str(),
                 fuzz::atomCount(P));
    strings::Problem Min = fuzz::clone(P);
    fuzz::DiffResult MinD = D;
    if (A.Shrink) {
      fuzz::FailureKind Kind = D.Kind;
      Min = fuzz::shrink(P, [&](const strings::Problem &Q) {
        return fuzz::differentialCheck(Q, DO).Kind == Kind;
      });
      MinD = fuzz::differentialCheck(Min, DO);
      std::fprintf(stderr, "  shrunk to %zu atoms\n",
                   fuzz::atomCount(Min));
    }
    std::string Sig = signature(MinD, Min);
    if (Seen.insert(Sig).second)
      writeRepro(A.Out, Sig, A.Seed, I, MinD, Min);
  }

  std::fprintf(stderr,
               "postr_fuzz: %" PRIu64 " iterations, %" PRIu64
               " findings (%zu unique)\n",
               A.Iters, Findings, Seen.size());
  return Findings ? 1 : 0;
}

int runRepro(const Args &A) {
  Result<strings::Problem> P = smtlib::parseFile(A.Repro);
  if (!P) {
    std::fprintf(stderr, "parse error: %s\n", P.error().c_str());
    return 2;
  }
  fuzz::DiffResult D = fuzz::differentialCheck(*P, diffOptions(A));
  std::fprintf(stderr, "solver: %s, oracle: %s\n", verdictName(D.SolverV),
               verdictName(D.OracleV));
  if (D.failed()) {
    std::fprintf(stderr, "FINDING %s: %s\n", fuzz::failureKindName(D.Kind),
                 D.Detail.c_str());
    return 1;
  }
  std::fprintf(stderr, "clean\n");
  return 0;
}

int runReaderFuzz(const Args &A) {
  // Seed corpus: printed random problems (well-formed, full surface)
  // plus a few handwritten edge shapes worth perturbing.
  std::vector<std::string> Corpus;
  for (uint64_t K = 0; K < 16; ++K)
    Corpus.push_back(smtlib::printProblem(fuzz::generate(mix(A.Seed, K))));
  Corpus.push_back("(set-logic QF_SLIA)\n(declare-fun x () String)\n"
                   "(assert (str.in_re x (re.loop (str.to_re \"ab\") 2 "
                   "7)))\n(check-sat)\n(exit)\n");
  Corpus.push_back("(declare-const n Int)\n(assert (<= (+ n 3) (* 2 "
                   "n)))\n(check-sat)\n");
  Corpus.push_back("(assert (= \"aé\" \"\"))\n");

  uint64_t Findings = 0, Parsed = 0;
  for (uint64_t I = 0; I < A.Iters; ++I) {
    const std::string &Base = Corpus[I % Corpus.size()];
    std::string Text = fuzz::mutateBytes(Base, mix(A.Seed, I));
    // The reader must reject or accept, never crash/hang/leak — the
    // sanitizers judge that part. What parses must also round-trip.
    Result<strings::Problem> P = smtlib::parseString(Text);
    if (!P)
      continue;
    ++Parsed;
    std::string Printed = smtlib::printProblem(*P);
    Result<strings::Problem> Q = smtlib::parseString(Printed);
    if (!Q) {
      ++Findings;
      std::fprintf(stderr,
                   "[iter %" PRIu64 "] printed form fails to re-parse: "
                   "%s\n",
                   I, Q.error().c_str());
      continue;
    }
    if (smtlib::printProblem(*Q) != Printed) {
      ++Findings;
      std::fprintf(stderr,
                   "[iter %" PRIu64 "] print/parse/print not a fixpoint\n",
                   I);
    }
  }
  std::fprintf(stderr,
               "postr_fuzz --reader-fuzz: %" PRIu64 " inputs, %" PRIu64
               " parsed, %" PRIu64 " findings\n",
               A.Iters, Parsed, Findings);
  return Findings ? 1 : 0;
}

int runFault(const Args &A) {
  // SITE:N[:SEED]
  std::string Site = A.Fault;
  uint64_t Nth = 1, FSeed = 0;
  size_t C1 = Site.find(':');
  if (C1 != std::string::npos) {
    std::string Rest = Site.substr(C1 + 1);
    Site = Site.substr(0, C1);
    size_t C2 = Rest.find(':');
    if (C2 != std::string::npos) {
      FSeed = std::strtoull(Rest.substr(C2 + 1).c_str(), nullptr, 10);
      Rest = Rest.substr(0, C2);
    }
    Nth = std::strtoull(Rest.c_str(), nullptr, 10);
    if (Nth == 0)
      Nth = 1;
  }

  uint64_t Findings = 0, Fired = 0;
  fuzz::DiffOptions DO_ = diffOptions(A);
  solver::SolveOptions SO;
  SO.TimeoutMs = A.TimeoutMs;
  SO.StepLimit = DO_.SolverStepLimit;
  SO.Stabilize.MaxDisjuncts = DO_.SolverMaxDisjuncts;
  for (uint64_t I = 0; I < A.Iters; ++I) {
    strings::Problem P = fuzz::generate(mix(A.Seed, I));
    solver::SolveResult Clean = solver::solveProblem(P, SO);

    FaultInjector Inj(Site.c_str(), Nth, mix(FSeed, I));
    FaultInjector::arm(&Inj);
    solver::SolveResult Faulted = solver::solveProblem(P, SO);
    FaultInjector::arm(nullptr);
    if (Inj.fired())
      ++Fired;

    // An injected fault may only degrade a verdict to a structured
    // Unknown. A flipped determinate verdict, or an Unknown that lost
    // its stop reason, is a finding.
    bool CleanDet = Clean.V != Verdict::Unknown;
    bool FaultedDet = Faulted.V != Verdict::Unknown;
    if (CleanDet && FaultedDet && Clean.V != Faulted.V) {
      ++Findings;
      std::fprintf(stderr,
                   "[iter %" PRIu64 "] fault flipped %s -> %s\n", I,
                   verdictName(Clean.V), verdictName(Faulted.V));
    } else if (CleanDet && !FaultedDet && Inj.fired() &&
               Faulted.Stop == StopReason::None &&
               !Faulted.Validation.Failed) {
      ++Findings;
      std::fprintf(stderr,
                   "[iter %" PRIu64 "] fault produced an unstructured "
                   "Unknown\n",
                   I);
    }
  }
  std::fprintf(stderr,
               "postr_fuzz --fault %s: %" PRIu64 " iterations, injector "
               "fired in %" PRIu64 ", %" PRIu64 " findings\n",
               A.Fault.c_str(), A.Iters, Fired, Findings);
  return Findings ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  Args A;
  if (!parseArgs(Argc, Argv, A)) {
    usage();
    return 2;
  }
  if (!A.Repro.empty())
    return runRepro(A);
  if (A.ReaderFuzz)
    return runReaderFuzz(A);
  if (!A.Fault.empty())
    return runFault(A);
  return runDifferential(A);
}
